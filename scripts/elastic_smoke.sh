#!/usr/bin/env bash
# elastic_smoke.sh — end-to-end elasticity smoke: a seed mpserver plus two
# satellites behind an mpgateway. One satellite is gracefully drained through
# the wire admin surface (mpshell \drain); the smoke then asserts the drain is
# visible in every admin view (mpshell topology, the seed's /topology, the
# gateway's /stats), that a bank workload still holds its money-conservation
# invariant on the shrunken cluster, and that the gateway routes zero new
# sessions to the drained backend.
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=elastic-smoke
. scripts/lib.sh

# Loopback ports; the env override keeps parallel CI jobs apart, and the
# picker falls back to a fresh range if the preferred one is taken.
smoke_pick_base "${ELASTIC_SMOKE_PORT:-17270}" 7
SEED_SESS=$BASE SEED_FAB=$((BASE+1)) SEED_HTTP=$((BASE+2))
SAT1_SESS=$((BASE+3))
SAT2_SESS=$((BASE+4))
GW_SESS=$((BASE+5)) GW_HTTP=$((BASE+6))

mpsh() { # run mpshell commands against a session address, print the transcript
    printf '%s\n' "$2" exit | "$BIN/mpshell" -connect "127.0.0.1:$1"
}

echo "elastic-smoke: building daemons"
$GO build -o "$BIN/mpserver" ./cmd/mpserver
$GO build -o "$BIN/mpgateway" ./cmd/mpgateway
$GO build -o "$BIN/mpbench" ./cmd/mpbench
$GO build -o "$BIN/mpshell" ./cmd/mpshell

echo "elastic-smoke: starting seed (sessions :$SEED_SESS fabric :$SEED_FAB)"
"$BIN/mpserver" -listen 127.0.0.1:$SEED_SESS -fabric 127.0.0.1:$SEED_FAB \
    -http 127.0.0.1:$SEED_HTTP -data "$DATA" &
PIDS+=($!)
wait_port $SEED_SESS
wait_port $SEED_FAB

echo "elastic-smoke: starting satellites (sessions :$SAT1_SESS :$SAT2_SESS)"
"$BIN/mpserver" -listen 127.0.0.1:$SAT1_SESS -join 127.0.0.1:$SEED_FAB &
PIDS+=($!)
wait_port $SAT1_SESS
"$BIN/mpserver" -listen 127.0.0.1:$SAT2_SESS -join 127.0.0.1:$SEED_FAB &
PIDS+=($!)
wait_port $SAT2_SESS

echo "elastic-smoke: starting gateway (sessions :$GW_SESS)"
"$BIN/mpgateway" -listen 127.0.0.1:$GW_SESS -http 127.0.0.1:$GW_HTTP \
    -backends 127.0.0.1:$SEED_SESS,127.0.0.1:$SAT1_SESS,127.0.0.1:$SAT2_SESS \
    -probe 200ms &
PIDS+=($!)
wait_port $GW_SESS

echo "elastic-smoke: bank workload through the gateway (3 nodes)"
"$BIN/mpbench" -connect 127.0.0.1:$GW_SESS -dur 2s -threads 6

# The satellites joined sequentially, so sat1 is node 2. Its topology row must
# be active before the drain.
top=$(mpsh $SEED_SESS "topology")
echo "$top" | grep -q 'epoch' || { echo "elastic-smoke: mpshell topology gave no epoch" >&2; exit 1; }
echo "$top" | grep -Eq '^2 +active' || {
    echo "elastic-smoke: node 2 not active before drain" >&2; echo "$top" >&2; exit 1; }

echo "elastic-smoke: draining node 2 via mpshell against its hosting daemon"
out=$(mpsh $SAT1_SESS '\drain 2')
echo "$out" | grep -q 'node 2 drained' || {
    echo "elastic-smoke: drain did not complete" >&2; echo "$out" >&2; exit 1; }

# The drain must be visible from every admin view: mpshell topology at the
# seed, and the seed's HTTP /topology.
top=$(mpsh $SEED_SESS "topology")
echo "$top" | grep -Eq '^2 +drained' || {
    echo "elastic-smoke: node 2 not drained in mpshell topology" >&2; echo "$top" >&2; exit 1; }
httptop=$(http_get $SEED_HTTP /topology)
echo "$httptop" | grep -q '"state":"drained"' || {
    echo "elastic-smoke: /topology missing drained node" >&2; echo "$httptop" >&2; exit 1; }

# The gateway's topology probe (every 5th 200ms tick) must notice and stop
# routing to the drained backend.
for i in $(seq 1 50); do
    gwstats=$(http_get $GW_HTTP /stats)
    sat1=$(echo "$gwstats" | grep -o "{[^{}]*:$SAT1_SESS\"[^{}]*}")
    if echo "$sat1" | grep -q '"state":"drained"'; then break; fi
    if [ "$i" = 50 ]; then
        echo "elastic-smoke: gateway never saw the drain" >&2; echo "$gwstats" >&2; exit 1
    fi
    sleep 0.2
done
before=$(echo "$sat1" | grep -o '"total_sessions":[0-9]*')

echo "elastic-smoke: bank workload through the gateway (2 surviving nodes)"
"$BIN/mpbench" -connect 127.0.0.1:$GW_SESS -dur 2s -threads 6

gwstats=$(http_get $GW_HTTP /stats)
sat1=$(echo "$gwstats" | grep -o "{[^{}]*:$SAT1_SESS\"[^{}]*}")
after=$(echo "$sat1" | grep -o '"total_sessions":[0-9]*')
if [ "$before" != "$after" ]; then
    echo "elastic-smoke: gateway routed new sessions to a drained backend ($before -> $after)" >&2
    echo "$gwstats" >&2
    exit 1
fi
echo "$sat1" | grep -q '"active_sessions":0' || {
    echo "elastic-smoke: drained backend still carries sessions" >&2; echo "$sat1" >&2; exit 1; }

echo "elastic-smoke: PASS"
