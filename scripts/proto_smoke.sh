#!/usr/bin/env bash
# proto_smoke.sh — end-to-end multi-process smoke: a seed mpserver, a
# satellite mpserver joined over the socket fabric, an mpgateway balancing
# across both, and an mpbench -connect bank workload whose money-conservation
# invariant must hold (mpbench exits non-zero on any violation). Also checks
# the daemons' /stats endpoints answer with the expected JSON sections.
set -euo pipefail
cd "$(dirname "$0")/.."

GO=${GO:-go}
BIN=$(mktemp -d)
DATA=$(mktemp -d)
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$BIN" "$DATA"
}
trap cleanup EXIT

# Loopback ports; offset keeps parallel CI jobs from colliding.
BASE=${PROTO_SMOKE_PORT:-17170}
SEED_SESS=$BASE SEED_FAB=$((BASE+1)) SEED_HTTP=$((BASE+2))
SAT_SESS=$((BASE+3))
GW_SESS=$((BASE+4)) GW_HTTP=$((BASE+5))

wait_port() { # host:port comes up within 10s
    for _ in $(seq 1 100); do
        if (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; then exec 3>&- 3<&-; return 0; fi
        sleep 0.1
    done
    echo "proto-smoke: port $1 never came up" >&2
    return 1
}

http_get() { # plain-HTTP GET body via /dev/tcp (no curl dependency)
    exec 3<>"/dev/tcp/127.0.0.1/$1"
    printf 'GET %s HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n' "$2" >&3
    local body="" in_body=0 line
    while IFS= read -r line <&3 || [ -n "$line" ]; do
        line=${line%$'\r'}
        if [ "$in_body" = 1 ]; then body+="$line"; elif [ -z "$line" ]; then in_body=1; fi
    done
    exec 3>&- 3<&-
    printf '%s' "$body"
}

echo "proto-smoke: building daemons"
$GO build -o "$BIN/mpserver" ./cmd/mpserver
$GO build -o "$BIN/mpgateway" ./cmd/mpgateway
$GO build -o "$BIN/mpbench" ./cmd/mpbench

"$BIN/mpserver" -version | grep -q mpserver
"$BIN/mpgateway" -version | grep -q mpgateway

echo "proto-smoke: starting seed (sessions :$SEED_SESS fabric :$SEED_FAB)"
"$BIN/mpserver" -listen 127.0.0.1:$SEED_SESS -fabric 127.0.0.1:$SEED_FAB \
    -http 127.0.0.1:$SEED_HTTP -data "$DATA" &
PIDS+=($!)
wait_port $SEED_SESS
wait_port $SEED_FAB

echo "proto-smoke: starting satellite (sessions :$SAT_SESS, joining :$SEED_FAB)"
"$BIN/mpserver" -listen 127.0.0.1:$SAT_SESS -join 127.0.0.1:$SEED_FAB &
PIDS+=($!)
wait_port $SAT_SESS

echo "proto-smoke: starting gateway (sessions :$GW_SESS)"
"$BIN/mpgateway" -listen 127.0.0.1:$GW_SESS -http 127.0.0.1:$GW_HTTP \
    -backends 127.0.0.1:$SEED_SESS,127.0.0.1:$SAT_SESS -probe 200ms &
PIDS+=($!)
wait_port $GW_SESS

echo "proto-smoke: bank workload through the gateway"
"$BIN/mpbench" -connect 127.0.0.1:$GW_SESS -dur 3s -threads 6

stats=$(http_get $SEED_HTTP /stats)
echo "$stats" | grep -q '"commits"' || { echo "proto-smoke: seed /stats missing commits" >&2; exit 1; }
echo "$stats" | grep -q '"net"'     || { echo "proto-smoke: seed /stats missing net section" >&2; exit 1; }

gwstats=$(http_get $GW_HTTP /stats)
echo "$gwstats" | grep -q '"backends"' || { echo "proto-smoke: gateway /stats missing backends" >&2; exit 1; }
echo "$gwstats" | grep -q '"healthy":true' || { echo "proto-smoke: gateway reports no healthy backend" >&2; exit 1; }
# Both backends must have carried sessions — the balancer actually balanced.
if echo "$gwstats" | grep -q '"total_sessions":0'; then
    echo "proto-smoke: a backend served zero sessions" >&2
    echo "$gwstats" >&2
    exit 1
fi

echo "proto-smoke: PASS"
