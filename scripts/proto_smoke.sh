#!/usr/bin/env bash
# proto_smoke.sh — end-to-end multi-process smoke: a seed mpserver, a
# satellite mpserver joined over the socket fabric, an mpgateway balancing
# across both, and an mpbench -connect bank workload whose money-conservation
# invariant must hold (mpbench exits non-zero on any violation). Also checks
# the daemons' /stats endpoints answer with the expected JSON sections.
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=proto-smoke
. scripts/lib.sh

# Loopback ports; the env override keeps parallel CI jobs apart, and the
# picker falls back to a fresh range if the preferred one is taken.
smoke_pick_base "${PROTO_SMOKE_PORT:-17170}" 6
SEED_SESS=$BASE SEED_FAB=$((BASE+1)) SEED_HTTP=$((BASE+2))
SAT_SESS=$((BASE+3))
GW_SESS=$((BASE+4)) GW_HTTP=$((BASE+5))

echo "proto-smoke: building daemons"
$GO build -o "$BIN/mpserver" ./cmd/mpserver
$GO build -o "$BIN/mpgateway" ./cmd/mpgateway
$GO build -o "$BIN/mpbench" ./cmd/mpbench

"$BIN/mpserver" -version | grep -q mpserver
"$BIN/mpgateway" -version | grep -q mpgateway

echo "proto-smoke: starting seed (sessions :$SEED_SESS fabric :$SEED_FAB)"
"$BIN/mpserver" -listen 127.0.0.1:$SEED_SESS -fabric 127.0.0.1:$SEED_FAB \
    -http 127.0.0.1:$SEED_HTTP -data "$DATA" &
PIDS+=($!)
wait_port $SEED_SESS
wait_port $SEED_FAB

echo "proto-smoke: starting satellite (sessions :$SAT_SESS, joining :$SEED_FAB)"
"$BIN/mpserver" -listen 127.0.0.1:$SAT_SESS -join 127.0.0.1:$SEED_FAB &
PIDS+=($!)
wait_port $SAT_SESS

echo "proto-smoke: starting gateway (sessions :$GW_SESS)"
"$BIN/mpgateway" -listen 127.0.0.1:$GW_SESS -http 127.0.0.1:$GW_HTTP \
    -backends 127.0.0.1:$SEED_SESS,127.0.0.1:$SAT_SESS -probe 200ms &
PIDS+=($!)
wait_port $GW_SESS

echo "proto-smoke: bank workload through the gateway"
"$BIN/mpbench" -connect 127.0.0.1:$GW_SESS -dur 3s -threads 6

stats=$(http_get $SEED_HTTP /stats)
echo "$stats" | grep -q '"commits"' || { echo "proto-smoke: seed /stats missing commits" >&2; exit 1; }
echo "$stats" | grep -q '"net"'     || { echo "proto-smoke: seed /stats missing net section" >&2; exit 1; }

gwstats=$(http_get $GW_HTTP /stats)
echo "$gwstats" | grep -q '"backends"' || { echo "proto-smoke: gateway /stats missing backends" >&2; exit 1; }
echo "$gwstats" | grep -q '"healthy":true' || { echo "proto-smoke: gateway reports no healthy backend" >&2; exit 1; }
# Both backends must have carried sessions — the balancer actually balanced.
if echo "$gwstats" | grep -q '"total_sessions":0'; then
    echo "proto-smoke: a backend served zero sessions" >&2
    echo "$gwstats" >&2
    exit 1
fi

echo "proto-smoke: PASS"
