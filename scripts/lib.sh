# lib.sh — shared plumbing for the multi-process smoke scripts. Sourced, not
# executed: callers set SMOKE (their log prefix) first, then get scratch dirs
# ($BIN for binaries, $DATA for server state), PID tracking with a kill+wait
# cleanup trap, port helpers, and a curl-free HTTP GET.
#
#   SMOKE=proto-smoke
#   . "$(dirname "$0")/lib.sh"
#   smoke_pick_base 17170 6   # sets $BASE to the start of 6 free ports

SMOKE=${SMOKE:-smoke}
GO=${GO:-go}
BIN=$(mktemp -d)
DATA=$(mktemp -d)
PIDS=()

smoke_cleanup() {
    for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$BIN" "$DATA"
}
trap smoke_cleanup EXIT

# port_free: true when nothing is listening on 127.0.0.1:$1 (a successful
# /dev/tcp connect means the port is taken).
port_free() {
    ! (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null
}

# smoke_pick_base <preferred> <count>: set $BASE to the start of a run of
# <count> free loopback ports. The preferred base (usually overridable via an
# env knob) is tried first so runs are normally stable; on a collision —
# parallel CI jobs, a leaked daemon — fresh pseudo-random bases from the
# ephemeral range are tried instead of flaking the smoke.
smoke_pick_base() {
    local preferred=$1 count=$2 try cand p ok
    for try in $(seq 0 19); do
        if [ "$try" = 0 ]; then
            cand=$preferred
        else
            cand=$(( 20000 + (RANDOM * 7 + try * 131) % 40000 ))
        fi
        ok=1
        for ((p = cand; p < cand + count; p++)); do
            port_free "$p" || { ok=0; break; }
        done
        if [ "$ok" = 1 ]; then
            [ "$cand" != "$preferred" ] && \
                echo "$SMOKE: base port $preferred busy, using $cand"
            BASE=$cand
            return 0
        fi
    done
    echo "$SMOKE: no free port range of $count found" >&2
    return 1
}

wait_port() { # host:port comes up within 10s
    for _ in $(seq 1 100); do
        if (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; then exec 3>&- 3<&-; return 0; fi
        sleep 0.1
    done
    echo "$SMOKE: port $1 never came up" >&2
    return 1
}

http_get() { # plain-HTTP GET body via /dev/tcp (no curl dependency)
    exec 3<>"/dev/tcp/127.0.0.1/$1"
    printf 'GET %s HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n' "$2" >&3
    local body="" in_body=0 line
    while IFS= read -r line <&3 || [ -n "$line" ]; do
        line=${line%$'\r'}
        if [ "$in_body" = 1 ]; then body+="$line"; elif [ -z "$line" ]; then in_body=1; fi
    done
    exec 3>&- 3<&-
    printf '%s' "$body"
}
