#!/usr/bin/env bash
# crash_smoke.sh — process-level chaos smoke: builds the daemons and runs the
# mpchaos -proc harness, which spawns a real seed + two satellites + gateway
# as OS processes, drives a marker-augmented bank workload through the
# gateway, SIGKILLs a satellite mid-commit, partitions and heals a live
# fabric link via /netfault, and rejoins a replacement satellite. The harness
# exits non-zero unless: exactly one survivor takeover ran, epochs stayed
# monotone, money was conserved on every snapshot, every acknowledged commit
# survived, every ambiguous commit was resolved through OpTxStatus (never
# guessed), and the survivors passed the goroutine/session leak gate.
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=crash-smoke
. scripts/lib.sh

echo "crash-smoke: building daemons"
$GO build -o "$BIN/mpserver" ./cmd/mpserver
$GO build -o "$BIN/mpgateway" ./cmd/mpgateway
$GO build -o "$BIN/mpchaos" ./cmd/mpchaos

# The harness picks its own ephemeral ports per run, so a busy port shows up
# as a daemon failing to serve, not a bind error here; one retry absorbs
# both that race and pathological CI scheduling around the kill window.
seed=${CRASH_SMOKE_SEED:-1}
if ! "$BIN/mpchaos" -proc -bin "$BIN" -seed "$seed" -timeout 120s; then
    echo "crash-smoke: retrying once with a fresh seed"
    "$BIN/mpchaos" -proc -bin "$BIN" -seed $((seed + 100)) -timeout 120s
fi

echo "crash-smoke: PASS"
