GO ?= go

RACE_PKGS = ./internal/core ./internal/lockfusion ./internal/bufferfusion \
            ./internal/txfusion ./internal/chaos ./internal/rdma \
            ./internal/membership ./internal/trace ./internal/wire \
            ./internal/netsrv ./internal/storage ./internal/pmfsrep

.PHONY: all build test test-full race vet smoke brownout-smoke proto-smoke \
        pmfs-smoke cc-smoke elastic-smoke crash-smoke wire-fuzz check \
        bench-snapshot ab-compare alloc-budget trace-smoke

all: check

build:
	$(GO) build ./...

# Fast suite (<2 min): heavy recovery fuzz / crash-storm / figure tests are
# testing.Short()-guarded or scaled down.
test:
	$(GO) test -short ./...

# Full suite including the figure-harness tests (~1-2 min extra).
test-full:
	$(GO) test -count=1 ./...

race:
	$(GO) test -race -short -count=1 $(RACE_PKGS)

vet:
	$(GO) vet ./...

# End-to-end chaos smoke: workload under the smoke fault plan must PASS its
# durability/rollback/convergence invariants, and an undeclared mid-workload
# node kill must self-heal through lease detection + survivor takeover
# (non-zero exit on violation).
smoke:
	$(GO) run ./cmd/mpchaos -plan smoke -seed 7 -ops 60
	$(GO) run ./cmd/mpchaos -plan crashnode -seed 7 -ops 2000

# Graceful-degradation smoke: a deadline-bounded workload under simultaneous
# storage stalls, a crawling node, and a stalled-DBP-read tail must keep
# goodput above the floor, p99 bounded, zero transactions past budget+grace,
# and zero transactions permanently shed with ErrOverloaded (see DESIGN.md
# §11; non-zero exit on violation).
brownout-smoke:
	$(GO) run ./cmd/mpchaos -plan brownout -seed 7 -ops 60

# Replicated shared-memory smoke: a 3-replica PMFS tier under load and light
# fabric noise loses its leader replica mid-workload; the run must absorb the
# kill (exactly one failover, pmfs epoch +1), keep every committed row, and
# hand out no duplicate commit CSN (TSO monotonic across the failover;
# non-zero exit on violation).
pmfs-smoke:
	$(GO) run ./cmd/mpchaos -plan pmfsfailover -seed 7 -ops 400

# Multi-process smoke: a seed mpserver + a satellite mpserver joined over the
# socket fabric + an mpgateway balancing across both; a bank workload through
# the gateway must hold its money-conservation invariant and both daemons'
# /stats endpoints must answer (non-zero exit on violation).
proto-smoke:
	./scripts/proto_smoke.sh

# Elasticity smoke. In-process first: graceful drain/rejoin cycles under load
# and light fabric noise must abort zero transactions for membership reasons,
# trigger zero takeovers, and keep topology epochs monotone. Then
# multi-process: drain a satellite through the wire admin surface (mpshell
# \drain) and assert every admin view agrees and the gateway migrates its
# routing off the drained backend (non-zero exit on violation).
elastic-smoke:
	$(GO) run ./cmd/mpchaos -plan elastic -seed 7 -ops 600
	./scripts/elastic_smoke.sh

# Process-level chaos smoke: seed + two satellites + gateway as real OS
# processes; SIGKILL a satellite mid-commit, partition a live fabric link via
# /netfault, heal, rejoin a replacement. Non-zero exit unless exactly one
# takeover ran under a monotone epoch, every acked commit survived (verified
# per-account by marker replay), every ambiguous commit was resolved through
# OpTxStatus, and survivors pass the goroutine/session leak gate.
crash-smoke:
	./scripts/crash_smoke.sh

# Fuzz the wire frame codec (round-trip + truncated/oversized rejection) and
# the pmfs replication record codec (same contract: errors consume nothing,
# decoded records re-encode byte-identically).
wire-fuzz:
	$(GO) test ./internal/wire -run '^$$' -fuzz FuzzFrameDecode -fuzztime 10s
	$(GO) test ./internal/pmfsrep -run '^$$' -fuzz FuzzRecordDecode -fuzztime 10s

# Second-engine chaos smokes: the OCC engine must survive the same fault
# plans as the default 2PL path — undeclared node kill with takeover,
# gray-failure brownout with goodput/deadline floors, and a PMFS replica
# failover — with identical invariants (non-zero exit on violation).
cc-smoke:
	$(GO) run ./cmd/mpchaos -plan crashnode -seed 7 -ops 2000 -cc occ
	$(GO) run ./cmd/mpchaos -plan brownout -seed 7 -ops 60 -cc occ
	$(GO) run ./cmd/mpchaos -plan pmfsfailover -seed 7 -ops 400 -cc occ

check: build vet test race smoke brownout-smoke pmfs-smoke cc-smoke proto-smoke elastic-smoke crash-smoke

# Disabled-tracer alloc budget: the commit hot path's tracer hooks must stay
# at 0 allocs/op when tracing is off (asserted by TestNilTracerZeroAllocs;
# the bench run proves the harness still compiles and runs).
alloc-budget:
	$(GO) test ./internal/trace -run TestNilTracerZeroAllocs -count=1 -v
	$(GO) test ./internal/trace -run '^$$' -bench BenchmarkTracerDisabledCommitHooks -benchtime=1x

# Trace smoke: run one traced rw/50 cell through mpbench and validate the
# emitted per-stage JSON against the schema (TraceRun self-validates and
# exits non-zero on a malformed document).
trace-smoke:
	$(GO) run ./cmd/mpbench -trace trace_smoke.json -nodes 2 -quick
	rm -f trace_smoke.json

# Perf snapshot: the Figure-7 read-write sweep + verb micro benches at the
# canonical settings (scale=25, 2s/config, 3 threads/node), written as JSON
# with per-commit fabric op counts and the pre-batching baseline numbers.
# Each cell runs 3 times; the JSON records the median with min/max spread.
bench-snapshot:
	$(GO) run ./cmd/mpbench -snapshot BENCH_pr10.json -dur 2s -threads 3 -repeats 3

# Interleaved A/B compare: the pre-PR commit path (pipeline/spec-CTS/adaptive
# TSO off) and the new engine alternate slice by slice inside one process, so
# per-cell gains are paired and clear the ±10% run-to-run noise band noted in
# ROADMAP (median gain with min/max spread over 3 paired slices per cell).
ab-compare:
	$(GO) run ./cmd/mpbench -ab AB_pr8.json -dur 2s -threads 3 -repeats 3
