package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"polardbmp/internal/wire"
)

// runRemote is the -connect shell: the same data commands as the in-process
// shell, executed over the wire session protocol against a live mpserver or
// mpgateway, plus the v2 admin surface — topology to see the cluster and
// drain to take a node out gracefully. Crash orchestration
// (crash/restart/checkpoint) stays a deliberate non-feature here: injecting
// failures is the server operator's control, not a network client's; elastic
// topology changes are exactly what the admin ops exist for.
func runRemote(addr string) int {
	cl, err := wire.DialSession(addr, wire.SessionConfig{Name: "mpshell"})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer cl.Close()
	fmt.Printf("polardbmp shell — connected to %s (%s)\ntype 'help' for commands\n", addr, cl.ServerName())
	sh := &remoteShell{cl: cl}
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("mp> ")
		if !sc.Scan() {
			return 0
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "exit" || line == "quit" {
			return 0
		}
		if err := sh.exec(line); err != nil {
			fmt.Println("error:", err)
		}
	}
}

type remoteShell struct {
	cl    *wire.Client
	space uint32
	named bool
}

func (s *remoteShell) exec(line string) error {
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	// Accept the \command spelling for the admin ops (`\topology`, `\drain 2`)
	// alongside the bare words the rest of the shell uses.
	cmd = strings.TrimPrefix(cmd, `\`)
	switch cmd {
	case "help":
		fmt.Printf(`commands (remote session):
  use <table>              create/open a table (required before data ops)
  put <key> <value>        upsert a row
  get <key>                read a row
  del <key>                delete a row
  scan [prefix] [limit]    list rows
  ping                     round-trip a no-op request
  stats                    server ClusterStats snapshot (summary)
  stats json               full snapshot as JSON
  topology                 cluster membership snapshot (also: \topology)
  topology json            raw topology JSON
  drain <node>             gracefully drain a node (also: \drain <node>)
  exit
admin commands need a v2 server (this session: v%d)
`, s.cl.ProtoVersion())
		return nil
	case "use":
		if len(args) != 1 {
			return errors.New("usage: use <table>")
		}
		sp, err := s.cl.CreateSpace(args[0])
		if err != nil {
			return err
		}
		s.space, s.named = sp, true
		fmt.Println("using table", args[0])
		return nil
	case "ping":
		return s.cl.Ping()
	case "stats":
		raw, err := s.cl.StatsJSON()
		if err != nil {
			return err
		}
		if len(args) == 1 && args[0] == "json" {
			var pretty bytes.Buffer
			if err := json.Indent(&pretty, raw, "", "  "); err != nil {
				return err
			}
			fmt.Println(pretty.String())
			return nil
		}
		var st struct {
			Commits uint64 `json:"commits"`
			Aborts  uint64 `json:"aborts"`
			Net     *struct {
				ConnsOpen uint64 `json:"conns_open"`
				FramesIn  uint64 `json:"frames_in"`
				FramesOut uint64 `json:"frames_out"`
			} `json:"net"`
			// Decoded by name, not by a fixed taxonomy: any stage the server
			// reports with a nonzero count renders, so stages added after
			// this shell was built still show up.
			Stages []struct {
				Stage string `json:"stage"`
				Count int64  `json:"count"`
				Mean  int64  `json:"mean_ns"`
				P95   int64  `json:"p95_ns"`
				P99   int64  `json:"p99_ns"`
				Ops   struct {
					RPCs int64 `json:"rpcs"`
				} `json:"ops"`
			} `json:"stages"`
		}
		if err := json.Unmarshal(raw, &st); err != nil {
			return err
		}
		fmt.Printf("commits=%d aborts=%d\n", st.Commits, st.Aborts)
		if st.Net != nil {
			fmt.Printf("net: conns=%d frames in=%d out=%d\n", st.Net.ConnsOpen, st.Net.FramesIn, st.Net.FramesOut)
		}
		header := false
		for _, sg := range st.Stages {
			if sg.Count == 0 {
				continue
			}
			if !header {
				fmt.Printf("%-14s %10s %12s %12s %12s %8s\n",
					"stage", "count", "mean", "p95", "p99", "rpcs")
				header = true
			}
			fmt.Printf("%-14s %10d %12v %12v %12v %8d\n",
				sg.Stage, sg.Count,
				time.Duration(sg.Mean).Round(time.Nanosecond),
				time.Duration(sg.P95).Round(time.Nanosecond),
				time.Duration(sg.P99).Round(time.Nanosecond),
				sg.Ops.RPCs)
		}
		return nil
	case "topology":
		raw, err := s.cl.TopologyJSON()
		if err != nil {
			return err
		}
		if len(args) == 1 && args[0] == "json" {
			var pretty bytes.Buffer
			if err := json.Indent(&pretty, raw, "", "  "); err != nil {
				return err
			}
			fmt.Println(pretty.String())
			return nil
		}
		var top struct {
			Epoch uint64 `json:"epoch"`
			Nodes []struct {
				ID          int    `json:"id"`
				State       string `json:"state"`
				Incarnation uint64 `json:"incarnation"`
				Sessions    int64  `json:"sessions"`
				Hosted      bool   `json:"hosted"`
			} `json:"nodes"`
		}
		if err := json.Unmarshal(raw, &top); err != nil {
			return err
		}
		fmt.Printf("epoch %d, %d nodes\n", top.Epoch, len(top.Nodes))
		fmt.Printf("%-6s %-10s %12s %10s %s\n", "node", "state", "incarnation", "sessions", "")
		for _, n := range top.Nodes {
			hosted := ""
			if n.Hosted {
				hosted = "hosted here"
			}
			fmt.Printf("%-6d %-10s %12d %10d %s\n", n.ID, n.State, n.Incarnation, n.Sessions, hosted)
		}
		return nil
	case "drain":
		if len(args) != 1 {
			return errors.New("usage: drain <node>")
		}
		n, err := strconv.Atoi(args[0])
		if err != nil || n <= 0 || n > 1<<16-1 {
			return fmt.Errorf("bad node id %q", args[0])
		}
		if err := s.cl.Drain(uint16(n)); err != nil {
			return err
		}
		fmt.Printf("node %d drained\n", n)
		return nil
	case "put", "get", "del", "scan":
		return s.dataOp(cmd, args)
	default:
		return fmt.Errorf("unknown command %q (try 'help')", cmd)
	}
}

func (s *remoteShell) dataOp(cmd string, args []string) error {
	if !s.named {
		return errors.New("no table selected: use <table>")
	}
	tx, err := s.cl.Begin(0, 0)
	if err != nil {
		return err
	}
	fail := func(err error) error { _ = tx.Rollback(); return err }
	switch cmd {
	case "put":
		if len(args) < 2 {
			return fail(errors.New("usage: put <key> <value>"))
		}
		if err := tx.Upsert(s.space, []byte(args[0]), []byte(strings.Join(args[1:], " "))); err != nil {
			return fail(err)
		}
	case "get":
		if len(args) != 1 {
			return fail(errors.New("usage: get <key>"))
		}
		v, err := tx.Get(s.space, []byte(args[0]))
		if err != nil {
			return fail(err)
		}
		fmt.Println(string(v))
	case "del":
		if len(args) != 1 {
			return fail(errors.New("usage: del <key>"))
		}
		if err := tx.Delete(s.space, []byte(args[0])); err != nil {
			return fail(err)
		}
	case "scan":
		var from, to []byte
		limit := 50
		if len(args) >= 1 {
			from = []byte(args[0])
			to = append([]byte(args[0]), 0xFF)
		}
		if len(args) >= 2 {
			if n, err := strconv.Atoi(args[1]); err == nil {
				limit = n
			}
		}
		kvs, err := tx.Scan(s.space, from, to, limit)
		if err != nil {
			return fail(err)
		}
		for _, kv := range kvs {
			fmt.Printf("%s = %s\n", kv.Key, kv.Value)
		}
		fmt.Printf("(%d rows)\n", len(kvs))
	}
	return tx.Commit()
}
