// Command mpshell is a small interactive shell over a PolarDB-MP cluster:
// open (optionally persistent) storage, run reads and writes against any
// primary, crash and recover nodes, and inspect engine statistics.
//
//	$ go run ./cmd/mpshell -nodes 2 -data /tmp/mpdata
//	$ go run ./cmd/mpshell -connect host:7090   # against a live mpserver/mpgateway
//	mp> use orders
//	mp> put k1 hello
//	mp> on 2 get k1
//	hello
//	mp> crash 1
//	mp> restart 1
//	mp> stats
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"polardbmp"
)

func main() {
	nodes := flag.Int("nodes", 2, "primary nodes")
	data := flag.String("data", "", "data directory (empty = in-memory)")
	traced := flag.Bool("trace", false, "enable the commit-path span tracer")
	slowTx := flag.Duration("slowtx", 0, "log transactions slower than this (implies -trace)")
	connect := flag.String("connect", "", "session address of a live mpserver/mpgateway; run as a network client instead of opening an in-process cluster")
	flag.Parse()

	if *connect != "" {
		os.Exit(runRemote(*connect))
	}

	var extra []polardbmp.Option
	if *traced {
		extra = append(extra, polardbmp.WithTracer())
	}
	if *slowTx > 0 {
		extra = append(extra, polardbmp.WithSlowTxThreshold(*slowTx))
	}
	db, err := polardbmp.Open(polardbmp.Options{Nodes: *nodes, DataDir: *data}, extra...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer db.Close()
	sh := &shell{db: db, node: 1}
	fmt.Printf("polardbmp shell — %d primaries", *nodes)
	if *data != "" {
		fmt.Printf(", data dir %s", *data)
	}
	fmt.Println("\ntype 'help' for commands")
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Printf("mp:%d> ", sh.node)
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "exit" || line == "quit" {
			return
		}
		if err := sh.exec(line); err != nil {
			fmt.Println("error:", err)
		}
	}
}

type shell struct {
	db    *polardbmp.Cluster
	node  int
	table *polardbmp.Table
}

func (s *shell) exec(line string) error {
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]

	// "on N <cmd...>" runs one command against primary N.
	if cmd == "on" {
		if len(args) < 2 {
			return errors.New("usage: on <node> <command...>")
		}
		n, err := strconv.Atoi(args[0])
		if err != nil {
			return err
		}
		saved := s.node
		s.node = n
		defer func() { s.node = saved }()
		return s.exec(strings.Join(args[1:], " "))
	}

	switch cmd {
	case "help":
		fmt.Print(`commands:
  use <table>              create/open a table (required before data ops)
  put <key> <value>        upsert a row
  get <key>                read a row
  del <key>                delete a row
  scan [prefix] [limit]    list rows
  on <node> <cmd...>       run one command on another primary
  node <n>                 switch the current primary
  addnode                  scale out by one primary
  crash <n> | restart <n>  fail-stop / recover a node
  checkpoint               flush buffers + truncate logs (quiesced)
  stats                    engine counters (+ per-stage trace breakdown with -trace)
  stats json               full ClusterStats snapshot as JSON
  exit
`)
		return nil
	case "use":
		if len(args) != 1 {
			return errors.New("usage: use <table>")
		}
		t, err := s.db.CreateTable(args[0])
		if err != nil {
			return err
		}
		s.table = &t
		fmt.Println("using table", args[0])
		return nil
	case "node":
		if len(args) != 1 {
			return errors.New("usage: node <n>")
		}
		n, err := strconv.Atoi(args[0])
		if err != nil {
			return err
		}
		s.node = n
		return nil
	case "addnode":
		n, err := s.db.AddNode()
		if err != nil {
			return err
		}
		fmt.Println("added node", n.ID())
		return nil
	case "crash":
		if len(args) != 1 {
			return errors.New("usage: crash <n>")
		}
		n, err := strconv.Atoi(args[0])
		if err != nil {
			return err
		}
		s.db.CrashNode(n)
		fmt.Println("crashed node", n)
		return nil
	case "restart":
		if len(args) != 1 {
			return errors.New("usage: restart <n>")
		}
		n, err := strconv.Atoi(args[0])
		if err != nil {
			return err
		}
		if _, err := s.db.RestartNode(n); err != nil {
			return err
		}
		fmt.Println("node", n, "recovered")
		return nil
	case "checkpoint":
		if err := s.db.Checkpoint(); err != nil {
			return err
		}
		fmt.Println("checkpointed")
		return nil
	case "stats":
		st := s.db.Stats()
		if len(args) == 1 && args[0] == "json" {
			out, err := json.MarshalIndent(st, "", "  ")
			if err != nil {
				return err
			}
			fmt.Println(string(out))
			return nil
		}
		fmt.Printf("commits=%d aborts=%d deadlocks=%d\n", st.Commits, st.Aborts, st.Deadlocks)
		fmt.Printf("fabric: reads=%d writes=%d atomics=%d rpcs=%d\n",
			st.Fabric.Reads, st.Fabric.Writes, st.Fabric.Atomics, st.Fabric.RPCs)
		fmt.Printf("storage: page-reads=%d log-syncs=%d | DBP pages=%d\n",
			st.Storage.PageReads, st.Storage.LogSyncs, st.DBPResident)
		fmt.Printf("locks: plock-negotiations=%d rlock-waits=%d rlock-deadlocks=%d\n",
			st.Locks.PLockNegotiations, st.Locks.RLockWaits, st.Locks.RLockDeadlocks)
		if len(st.Stages) > 0 {
			fmt.Printf("%-14s %10s %12s %12s %12s %8s\n",
				"stage", "count", "mean", "p95", "p99", "rpcs")
			for _, sg := range st.Stages {
				fmt.Printf("%-14s %10d %12v %12v %12v %8d\n",
					sg.Stage, sg.Count,
					time.Duration(sg.Mean).Round(time.Nanosecond),
					sg.P95.Round(time.Nanosecond),
					sg.P99.Round(time.Nanosecond),
					sg.Ops.RPCs)
			}
		}
		if len(st.SlowTxs) > 0 {
			fmt.Printf("slow txs (%d):\n", len(st.SlowTxs))
			for _, tx := range st.SlowTxs {
				fmt.Printf("  %s node=%d total=%v spans=%d\n",
					tx.GTrx, tx.Node, time.Duration(tx.TotalNS), len(tx.Spans))
			}
		}
		return nil
	case "put", "get", "del", "scan":
		return s.dataOp(cmd, args)
	default:
		return fmt.Errorf("unknown command %q (try 'help')", cmd)
	}
}

func (s *shell) dataOp(cmd string, args []string) error {
	if s.table == nil {
		return errors.New("no table selected: use <table>")
	}
	tx, err := s.db.Node(s.node).Begin()
	if err != nil {
		return err
	}
	fail := func(err error) error { tx.Rollback(); return err }
	switch cmd {
	case "put":
		if len(args) < 2 {
			return fail(errors.New("usage: put <key> <value>"))
		}
		if err := tx.Upsert(*s.table, []byte(args[0]), []byte(strings.Join(args[1:], " "))); err != nil {
			return fail(err)
		}
	case "get":
		if len(args) != 1 {
			return fail(errors.New("usage: get <key>"))
		}
		v, err := tx.Get(*s.table, []byte(args[0]))
		if err != nil {
			return fail(err)
		}
		fmt.Println(string(v))
	case "del":
		if len(args) != 1 {
			return fail(errors.New("usage: del <key>"))
		}
		if err := tx.Delete(*s.table, []byte(args[0])); err != nil {
			return fail(err)
		}
	case "scan":
		var from, to []byte
		limit := 50
		if len(args) >= 1 {
			from = []byte(args[0])
			to = append([]byte(args[0]), 0xFF)
		}
		if len(args) >= 2 {
			if n, err := strconv.Atoi(args[1]); err == nil {
				limit = n
			}
		}
		kvs, err := tx.Scan(*s.table, from, to, limit)
		if err != nil {
			return fail(err)
		}
		for _, kv := range kvs {
			fmt.Printf("%s = %s\n", kv.Key, kv.Value)
		}
		fmt.Printf("(%d rows)\n", len(kvs))
	}
	return tx.Commit()
}
