// Command mpload is a bulk loader and smoke tool: it builds a cluster,
// loads a keyspace through all primaries, verifies every row from every
// node, optionally crash-tests a node, and prints engine statistics.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"polardbmp"
)

func main() {
	nodes := flag.Int("nodes", 2, "primary nodes")
	rows := flag.Int("rows", 5000, "rows to load")
	crash := flag.Bool("crash", false, "crash and restart node 1 after loading")
	flag.Parse()

	db, err := polardbmp.Open(polardbmp.Options{Nodes: *nodes})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	tab, err := db.CreateTable("load")
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	const batch = 200
	for base := 0; base < *rows; base += batch {
		node := db.Node(1 + (base/batch)%*nodes)
		tx, err := node.Begin()
		if err != nil {
			log.Fatal(err)
		}
		for i := base; i < base+batch && i < *rows; i++ {
			key := fmt.Sprintf("row-%09d", i)
			if err := tx.Insert(tab, []byte(key), []byte(fmt.Sprintf("value-%d", i))); err != nil {
				log.Fatalf("insert %s: %v", key, err)
			}
		}
		if err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
	}
	loadDur := time.Since(start)
	fmt.Printf("loaded %d rows through %d primaries in %v (%.0f rows/s)\n",
		*rows, *nodes, loadDur.Round(time.Millisecond), float64(*rows)/loadDur.Seconds())

	if *crash {
		fmt.Println("crashing node 1...")
		db.CrashNode(1)
		t0 := time.Now()
		if _, err := db.RestartNode(1); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("node 1 recovered in %v\n", time.Since(t0).Round(time.Millisecond))
	}

	// Verify every row from every node.
	start = time.Now()
	for n := 1; n <= *nodes; n++ {
		tx, err := db.Node(n).Begin()
		if err != nil {
			log.Fatal(err)
		}
		kvs, err := tx.Scan(tab, nil, nil, 0)
		if err != nil {
			log.Fatal(err)
		}
		if len(kvs) != *rows {
			log.Fatalf("node %d sees %d rows, want %d", n, len(kvs), *rows)
		}
		if err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("verified %d rows from every node in %v — OK\n",
		*rows, time.Since(start).Round(time.Millisecond))

	s := db.Stats()
	fmt.Printf("stats: commits=%d aborts=%d | fabric reads=%d writes=%d atomics=%d rpcs=%d | storage page-reads=%d log-syncs=%d | DBP pages=%d | plock negotiations=%d rlock waits=%d\n",
		s.Commits, s.Aborts, s.Fabric.Reads, s.Fabric.Writes, s.Fabric.Atomics, s.Fabric.RPCs,
		s.Storage.PageReads, s.Storage.LogSyncs, s.DBPResident, s.Locks.PLockNegotiations, s.Locks.RLockWaits)
}
