package main

// Process-level chaos (-proc): where every other mpchaos plan injects faults
// into an in-process cluster, this mode spawns a real multi-process
// deployment — a seed mpserver, two satellite mpservers joined over the
// socket fabric, and an mpgateway balancing across all three — then breaks
// it the way production breaks: SIGKILL of a satellite under gateway load, a
// runtime-injected link partition (POST /netfault) that later heals, and a
// replacement satellite rejoining the cluster. Throughout, bank-transfer
// workers drive money-conservation traffic through the gateway, every
// transaction also inserting a unique marker row so each acknowledged commit
// can be individually accounted for afterwards.
//
// The verdict asserts the ISSUE's process-level invariants:
//   - exactly one survivor takeover, epochs monotone, zero takeover failures
//   - money conserved on every snapshot sum and on the final sum
//   - zero lost committed transactions (every acked marker present)
//   - zero unresolved ambiguous commits: every ErrCommitAmbiguous is
//     settled through ResolveTx/OpTxStatus — committed markers present,
//     aborted markers absent, nothing guessed
//   - no leaked goroutines or sessions on the survivors once clients close

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"polardbmp/internal/common"
	"polardbmp/internal/wire"
)

const (
	procAccounts = 32
	procSeedBal  = 100
	procWorkers  = 6

	// Lease cadence for the spawned daemons: long enough that the injected
	// 500ms partition (plus redial backoff) never costs the partitioned
	// satellite its lease, short enough that the SIGKILL is detected fast.
	procLeaseRenew   = 25 * time.Millisecond
	procLeaseTimeout = 2 * time.Second
	procPartitionMs  = 500
)

// runProc is the -proc entrypoint; returns the process exit code.
func runProc(binDir string, seed int64, timeout time.Duration, verbose bool) int {
	h := &procHarness{verbose: verbose}
	defer h.stopAll()

	// Watchdog: a wedged harness is itself an invariant violation.
	if timeout <= 0 {
		timeout = 120 * time.Second
	}
	done := make(chan int, 1)
	go func() { done <- h.run(binDir, seed) }()
	select {
	case code := <-done:
		return code
	case <-time.After(timeout):
		fmt.Printf("  INVARIANT VIOLATED: harness wedged (no verdict within %v)\n", timeout)
		h.dumpLogs()
		fmt.Println("verdict: FAIL")
		return 1
	}
}

type procHarness struct {
	verbose bool
	dir     string // scratch: binaries (if built here) and daemon logs

	mu    sync.Mutex
	procs []*managedProc

	failed bool
}

type managedProc struct {
	name string
	cmd  *exec.Cmd
	log  string
}

func (h *procHarness) fail(format string, args ...any) {
	h.failed = true
	fmt.Printf("  INVARIANT VIOLATED: %s\n", fmt.Sprintf(format, args...))
}

func (h *procHarness) run(binDir string, seed int64) int {
	var err error
	h.dir, err = os.MkdirTemp("", "mpchaos-proc-")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	defer os.RemoveAll(h.dir)

	if binDir == "" {
		fmt.Println("proc: building mpserver and mpgateway")
		for _, tool := range []string{"mpserver", "mpgateway"} {
			out, err := exec.Command("go", "build", "-o", filepath.Join(h.dir, tool), "./cmd/"+tool).CombinedOutput()
			if err != nil {
				fmt.Fprintf(os.Stderr, "building %s: %v\n%s", tool, err, out)
				return 2
			}
		}
		binDir = h.dir
	}

	ports, err := pickPorts(9)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	seedSess, seedFab, seedHTTP := ports[0], ports[1], ports[2]
	sat1Sess, sat1HTTP := ports[3], ports[4]
	sat2Sess, sat2HTTP := ports[5], ports[6]
	gwSess, gwHTTP := ports[7], ports[8]
	addr := func(p int) string { return fmt.Sprintf("127.0.0.1:%d", p) }

	lease := []string{
		"-selfheal",
		"-lease-renew", procLeaseRenew.String(),
		"-lease-timeout", procLeaseTimeout.String(),
	}
	fmt.Printf("proc: seed=%s sats=%s,%s gateway=%s\n",
		addr(seedSess), addr(sat1Sess), addr(sat2Sess), addr(gwSess))

	server := filepath.Join(binDir, "mpserver")
	if _, err := h.spawn("seed", server, append([]string{
		"-listen", addr(seedSess), "-fabric", addr(seedFab), "-http", addr(seedHTTP),
		"-name", "seed"}, lease...)...); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if err := waitSession(addr(seedSess), 10*time.Second); err != nil {
		fmt.Fprintln(os.Stderr, "seed never came up:", err)
		h.dumpLogs()
		return 2
	}
	sat1, err := h.spawn("sat1", server, append([]string{
		"-listen", addr(sat1Sess), "-join", addr(seedFab), "-http", addr(sat1HTTP),
		"-name", "sat1"}, lease...)...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if _, err := h.spawn("sat2", server, append([]string{
		"-listen", addr(sat2Sess), "-join", addr(seedFab), "-http", addr(sat2HTTP),
		"-name", "sat2"}, lease...)...); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for _, a := range []string{addr(sat1Sess), addr(sat2Sess)} {
		if err := waitSession(a, 10*time.Second); err != nil {
			fmt.Fprintln(os.Stderr, "satellite never came up:", err)
			h.dumpLogs()
			return 2
		}
	}
	if _, err := h.spawn("gateway", filepath.Join(binDir, "mpgateway"),
		"-listen", addr(gwSess), "-http", addr(gwHTTP),
		"-backends", strings.Join([]string{addr(seedSess), addr(sat1Sess), addr(sat2Sess)}, ","),
		"-probe", "100ms"); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if err := waitSession(addr(gwSess), 10*time.Second); err != nil {
		fmt.Fprintln(os.Stderr, "gateway never came up:", err)
		h.dumpLogs()
		return 2
	}

	// Schema + balances, through the gateway like any client.
	setup, err := wire.DialSession(addr(gwSess), wire.SessionConfig{Name: "proc-setup"})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	defer setup.Close()
	space, err := setup.CreateSpace("bank")
	if err != nil {
		fmt.Fprintln(os.Stderr, "create space:", err)
		return 2
	}
	stx, err := setup.Begin(0, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for i := 0; i < procAccounts; i++ {
		if err := stx.Upsert(space, procAcctKey(i), []byte(strconv.Itoa(procSeedBal))); err != nil {
			fmt.Fprintln(os.Stderr, "seed balance:", err)
			return 2
		}
	}
	if err := stx.Commit(); err != nil {
		fmt.Fprintln(os.Stderr, "seed commit:", err)
		return 2
	}

	// Leak-gate baselines: after the cluster is fully up, before workload
	// sessions exist.
	baseSeedG := readGoroutines(seedHTTP)
	baseSat2G := readGoroutines(sat2HTTP)
	baseGwG := readGoroutines(gwHTTP)

	epoch0 := h.seedMembership(seedHTTP).Epoch
	lastEpoch := epoch0

	// Workload: procWorkers independent sessions through the gateway.
	w := newProcWorkload(addr(gwSess), space)
	w.start(procWorkers, seed)

	// Snapshot-sum checker rides along; every successful sum is an
	// invariant check, and epochs observed on the way must be monotone.
	checkerStop := make(chan struct{})
	var checkerWG sync.WaitGroup
	var sumChecks, sumViolations int
	checkerWG.Add(1)
	go func() {
		defer checkerWG.Done()
		for {
			select {
			case <-checkerStop:
				return
			case <-time.After(200 * time.Millisecond):
			}
			got, detail, err := procSumBalances(setup, space)
			if err != nil {
				continue // transient mid-chaos; the final sum decides
			}
			sumChecks++
			if got != procAccounts*procSeedBal {
				sumViolations++
				h.fail("snapshot sum %d, want %d", got, procAccounts*procSeedBal)
				fmt.Printf("    accounts: %s\n", detail)
			}
			if m := h.seedMembership(seedHTTP); m.Epoch != 0 {
				if m.Epoch < lastEpoch {
					h.fail("epoch moved backwards: %d -> %d", lastEpoch, m.Epoch)
				}
				lastEpoch = m.Epoch
			}
		}
	}()

	// Phase 1: warm-up under load.
	time.Sleep(1500 * time.Millisecond)
	preKill := w.commits()

	// Phase 2: SIGKILL sat1 mid-load — in-flight commits through the
	// gateway to it become the ambiguous cohort.
	fmt.Println("proc: SIGKILL sat1 under load")
	_ = sat1.cmd.Process.Kill()

	takeoverDeadline := time.Now().Add(20 * time.Second)
	var m seedMembershipStats
	for {
		m = h.seedMembership(seedHTTP)
		if m.Takeovers >= 1 {
			break
		}
		if time.Now().After(takeoverDeadline) {
			h.fail("survivors never took over the killed satellite (takeovers=0 after 20s, takeover_err=%q)", m.TakeoverErr)
			h.dumpLogs()
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if m.Takeovers >= 1 {
		fmt.Printf("proc: takeover complete (epoch %d -> %d, fails=%d)\n", epoch0, m.Epoch, m.TakeoverFails)
	}
	if m.Epoch <= epoch0 {
		h.fail("takeover did not bump the epoch (%d -> %d)", epoch0, m.Epoch)
	}
	if m.TakeoverFails > 0 {
		h.fail("takeover needed %d failed attempts (last: %q) — recovery must succeed first try", m.TakeoverFails, m.TakeoverErr)
	}

	// Phase 3: partition the surviving satellite's fabric uplink briefly,
	// then heal. Shorter than the lease timeout: service degrades
	// transiently but nobody else is evicted.
	fmt.Printf("proc: partitioning sat2's uplink for %dms, then healing\n", procPartitionMs)
	if err := postNetfault(sat2HTTP, "", "partition", procPartitionMs); err != nil {
		h.fail("installing netfault: %v", err)
	}
	time.Sleep(procPartitionMs * time.Millisecond)
	if err := postNetfault(sat2HTTP, "", "heal", 0); err != nil {
		h.fail("healing netfault: %v", err)
	}

	// Progress gate: commits must keep flowing after the heal.
	healWait := time.Now().Add(10 * time.Second)
	healBase := w.commits()
	for w.commits() < healBase+20 {
		if time.Now().After(healWait) {
			h.fail("workload made no progress after the partition healed (%d commits since)", w.commits()-healBase)
			fmt.Println("  recent workload errors:")
			w.dumpErrs()
			h.dumpRawStats(gwHTTP, "gateway")
			h.dumpRawStats(seedHTTP, "seed")
			h.dumpRawStats(sat2HTTP, "sat2")
			break
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Phase 4: a replacement satellite rejoins on the killed one's session
	// port, so the gateway's prober re-admits the backend it lost.
	fmt.Println("proc: rejoining a replacement satellite")
	if _, err := h.spawn("sat1b", server, append([]string{
		"-listen", addr(sat1Sess), "-join", addr(seedFab), "-name", "sat1b"}, lease...)...); err != nil {
		h.fail("respawning satellite: %v", err)
	} else if err := waitSession(addr(sat1Sess), 10*time.Second); err != nil {
		h.fail("replacement satellite never served: %v", err)
	}
	rejoinDeadline := time.Now().Add(10 * time.Second)
	for {
		if h.gatewayHealthy(gwHTTP, addr(sat1Sess)) {
			break
		}
		if time.Now().After(rejoinDeadline) {
			h.fail("gateway never re-admitted the rejoined backend")
			break
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Phase 5: let the full-strength cluster carry load again, then stop.
	time.Sleep(1500 * time.Millisecond)
	w.stop()
	close(checkerStop)
	checkerWG.Wait()

	acked, ambiguous, failed, attempts := w.results()
	fmt.Printf("workload: %d attempts, %d acked commits (%d before the kill), %d ambiguous, %d failed\n",
		attempts, len(acked), preKill, len(ambiguous), len(failed))

	// Resolution: every ambiguous commit is settled through the wire
	// protocol — OpTxStatus via ResolveTx — never guessed.
	resolver, err := wire.DialSession(addr(gwSess), wire.SessionConfig{Name: "proc-resolver"})
	if err != nil {
		h.fail("dialing resolver: %v", err)
	}
	var mustPresent, mustAbsent []string
	mustPresent = append(mustPresent, acked...)
	resolvedC, resolvedA := 0, 0
	for _, amb := range ambiguous {
		if resolver == nil {
			h.fail("ambiguous commit %v unresolvable: no resolver session", amb.g)
			continue
		}
		outcome, _, err := resolver.ResolveTx(amb.g, 15*time.Second)
		switch {
		case err != nil:
			h.fail("ambiguous commit %v unresolved: %v", amb.g, err)
		case outcome == wire.TxStatusCommitted:
			resolvedC++
			mustPresent = append(mustPresent, amb.marker)
		case outcome == wire.TxStatusAborted:
			resolvedA++
			mustAbsent = append(mustAbsent, amb.marker)
		default:
			h.fail("ambiguous commit %v resolved to unexpected outcome %d", amb.g, outcome)
		}
	}
	if resolver != nil {
		resolver.Close()
	}
	fmt.Printf("ambiguity: %d resolved committed, %d resolved aborted, 0 guessed\n", resolvedC, resolvedA)

	// Final account: one snapshot covering balances and markers, so the
	// forensics below reason about a single consistent state.
	balances, markers, err := procFinalState(setup, space)
	for retry := 0; err != nil && retry < 50; retry++ {
		time.Sleep(100 * time.Millisecond)
		balances, markers, err = procFinalState(setup, space)
	}
	if err != nil {
		h.fail("final state unreadable: %v", err)
	}

	final := 0
	for _, b := range balances {
		final += b
	}
	if err == nil && final != procAccounts*procSeedBal {
		h.fail("final sum %d, want %d", final, procAccounts*procSeedBal)
	}

	// Marker fate: every acked or resolved-committed marker present, every
	// resolved-aborted or definitively-failed marker absent.
	lost, leaked := 0, 0
	for _, mk := range mustPresent {
		if _, ok := markers[mk]; !ok {
			lost++
			if lost <= 5 {
				h.fail("committed transaction lost: marker %s absent", mk)
			}
		}
	}
	mustAbsent = append(mustAbsent, failed...)
	for _, mk := range mustAbsent {
		if _, ok := markers[mk]; ok {
			leaked++
			if leaked <= 5 {
				h.fail("rolled-back transaction published: marker %s present (value %s)", mk, markers[mk])
			}
		}
	}
	if lost > 5 || leaked > 5 {
		h.fail("…and %d more lost / %d more leaked markers", max(0, lost-5), max(0, leaked-5))
	}

	// Forensic replay: each marker's value encodes its transfer
	// (from:to:amount), so the present markers fully determine what every
	// balance should be. A mismatch pinpoints a half-applied transaction —
	// one leg visible without the other — which a total-sum check alone
	// could hide.
	if err == nil {
		expect := make(map[int]int, procAccounts)
		for i := 0; i < procAccounts; i++ {
			expect[i] = procSeedBal
		}
		replayOK := true
		for mk, val := range markers {
			var from, to, amt int
			if _, err := fmt.Sscanf(val, "%d:%d:%d", &from, &to, &amt); err != nil {
				h.fail("marker %s carries malformed transfer %q", mk, val)
				replayOK = false
				continue
			}
			expect[from] -= amt
			expect[to] += amt
		}
		if replayOK {
			for i := 0; i < procAccounts; i++ {
				got, ok := balances[i]
				if !ok {
					h.fail("account %03d missing from the final snapshot", i)
					continue
				}
				if got != expect[i] {
					h.fail("account %03d holds %d but the %d present markers replay to %d (drift %+d)",
						i, got, len(markers), expect[i], got-expect[i])
				}
			}
		}
	}
	fmt.Printf("durability: %d markers checked present, %d checked absent, %d snapshot sums (%d violations)\n",
		len(mustPresent), len(mustAbsent), sumChecks, sumViolations)

	// Leak gate: with every workload session closed, the survivors'
	// goroutine counts must settle back near their pre-workload baselines,
	// and the gateway must report zero active sessions.
	w.closeClients()
	h.leakGate("seed", seedHTTP, baseSeedG)
	h.leakGate("sat2", sat2HTTP, baseSat2G)
	h.leakGate("gateway", gwHTTP, baseGwG)
	if n, err := gatewayActiveSessions(gwHTTP); err == nil && n > 1 { // setup session may still be open
		h.fail("gateway still carries %d active sessions after clients closed", n)
	}

	mEnd := h.seedMembership(seedHTTP)
	if mEnd.Takeovers != 1 {
		h.fail("expected exactly one takeover, saw %d", mEnd.Takeovers)
	}
	if mEnd.Epoch < lastEpoch {
		h.fail("final epoch %d below last observed %d", mEnd.Epoch, lastEpoch)
	}

	if h.failed {
		h.dumpLogs()
		fmt.Println("verdict: FAIL")
		return 1
	}
	fmt.Println("verdict: PASS")
	return 0
}

// --- process management ------------------------------------------------------

func (h *procHarness) spawn(name, bin string, args ...string) (*managedProc, error) {
	logPath := filepath.Join(h.dir, name+".log")
	lf, err := os.Create(logPath)
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(bin, args...)
	cmd.Stdout = lf
	cmd.Stderr = lf
	if err := cmd.Start(); err != nil {
		lf.Close()
		return nil, fmt.Errorf("starting %s: %w", name, err)
	}
	// Reap without blocking stopAll; the log file closes with the process.
	go func() { _ = cmd.Wait(); lf.Close() }()
	p := &managedProc{name: name, cmd: cmd, log: logPath}
	h.mu.Lock()
	h.procs = append(h.procs, p)
	h.mu.Unlock()
	if h.verbose {
		fmt.Printf("proc: started %s (pid %d)\n", name, cmd.Process.Pid)
	}
	return p, nil
}

func (h *procHarness) stopAll() {
	h.mu.Lock()
	procs := h.procs
	h.procs = nil
	h.mu.Unlock()
	for _, p := range procs {
		if p.cmd.Process != nil {
			_ = p.cmd.Process.Kill()
		}
	}
}

func (h *procHarness) dumpLogs() {
	h.mu.Lock()
	procs := append([]*managedProc(nil), h.procs...)
	h.mu.Unlock()
	for _, p := range procs {
		data, err := os.ReadFile(p.log)
		if err != nil || len(data) == 0 {
			continue
		}
		const tail = 2000
		if len(data) > tail {
			data = data[len(data)-tail:]
		}
		fmt.Printf("---- %s log tail ----\n%s\n", p.name, data)
	}
}

// --- HTTP admin surface ------------------------------------------------------

type seedMembershipStats struct {
	Epoch         uint64 `json:"epoch"`
	Takeovers     int64  `json:"takeovers"`
	TakeoverFails int64  `json:"takeover_fails"`
	TakeoverErr   string `json:"takeover_err"`
}

func (h *procHarness) seedMembership(port int) seedMembershipStats {
	var s struct {
		Membership seedMembershipStats `json:"membership"`
	}
	if err := httpJSON(port, "/stats", &s); err != nil {
		return seedMembershipStats{}
	}
	return s.Membership
}

func (h *procHarness) gatewayHealthy(port int, backend string) bool {
	var s struct {
		Backends []struct {
			Addr    string `json:"addr"`
			Healthy bool   `json:"healthy"`
		} `json:"backends"`
	}
	if err := httpJSON(port, "/stats", &s); err != nil {
		return false
	}
	for _, b := range s.Backends {
		if b.Addr == backend && b.Healthy {
			return true
		}
	}
	return false
}

func gatewayActiveSessions(port int) (int, error) {
	var s struct {
		Backends []struct {
			Active int `json:"active_sessions"`
		} `json:"backends"`
	}
	if err := httpJSON(port, "/stats", &s); err != nil {
		return 0, err
	}
	n := 0
	for _, b := range s.Backends {
		n += b.Active
	}
	return n, nil
}

func (h *procHarness) leakGate(name string, port, base int) {
	if base <= 0 {
		return // baseline unreadable; nothing to compare
	}
	const slack = 16
	deadline := time.Now().Add(10 * time.Second)
	for {
		now := readGoroutines(port)
		if now > 0 && now <= base+slack {
			if h.verbose {
				fmt.Printf("proc: %s goroutines %d -> %d (ok)\n", name, base, now)
			}
			return
		}
		if time.Now().After(deadline) {
			h.fail("%s leaked goroutines: baseline %d, now %d (slack %d)", name, base, now, slack)
			return
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// dumpRawStats prints a node's /stats verbatim — stall diagnostics only.
func (h *procHarness) dumpRawStats(port int, name string) {
	resp, err := http.Get(fmt.Sprintf("http://127.0.0.1:%d/stats", port))
	if err != nil {
		fmt.Printf("  %s stats: %v\n", name, err)
		return
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	fmt.Printf("  %s stats: %s\n", name, body)
}

func httpJSON(port int, path string, v any) error {
	resp, err := http.Get(fmt.Sprintf("http://127.0.0.1:%d%s", port, path))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

func readGoroutines(port int) int {
	resp, err := http.Get(fmt.Sprintf("http://127.0.0.1:%d/goroutines", port))
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	n, _ := strconv.Atoi(strings.TrimSpace(string(body)))
	return n
}

func postNetfault(port int, peer, mode string, ms int) error {
	body := fmt.Sprintf(`{"peer":%q,"mode":%q,"ms":%d}`, peer, mode, ms)
	resp, err := http.Post(fmt.Sprintf("http://127.0.0.1:%d/netfault", port),
		"application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("netfault %s: %s: %s", mode, resp.Status, strings.TrimSpace(string(msg)))
	}
	return nil
}

// --- ports -------------------------------------------------------------------

// pickPorts reserves n distinct loopback ports by binding ephemeral
// listeners, then releasing them. The tiny window between release and the
// daemon's own bind can race another process; the caller's wait-for-ready
// catches that, and scripts/lib.sh retries the whole harness on a fresh set.
func pickPorts(n int) ([]int, error) {
	var ls []net.Listener
	defer func() {
		for _, l := range ls {
			l.Close()
		}
	}()
	ports := make([]int, 0, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		ls = append(ls, l)
		ports = append(ports, l.Addr().(*net.TCPAddr).Port)
	}
	return ports, nil
}

func waitSession(addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		cl, err := wire.DialSession(addr, wire.SessionConfig{Name: "proc-probe", DialTimeout: time.Second})
		if err == nil {
			err = cl.Ping()
			cl.Close()
			if err == nil {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%s not serving after %v: %w", addr, timeout, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// --- workload ----------------------------------------------------------------

type ambCommit struct {
	g      common.GTrxID
	marker string
}

type procWorkload struct {
	addr  string
	space uint32

	stopCh chan struct{}
	wg     sync.WaitGroup

	mu        sync.Mutex
	clients   []*wire.Client
	acked     []string
	ambiguous []ambCommit
	failed    []string
	attempts  int
	nCommits  int64
	errCounts map[string]int
}

// noteErr tallies failed-attempt causes for stall diagnostics.
func (w *procWorkload) noteErr(err error) {
	msg := err.Error()
	if len(msg) > 120 {
		msg = msg[:120]
	}
	w.mu.Lock()
	if w.errCounts == nil {
		w.errCounts = make(map[string]int)
	}
	if len(w.errCounts) < 50 {
		w.errCounts[msg]++
	}
	w.mu.Unlock()
}

func (w *procWorkload) dumpErrs() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for msg, n := range w.errCounts {
		fmt.Printf("    %5dx %s\n", n, msg)
	}
}

func newProcWorkload(addr string, space uint32) *procWorkload {
	return &procWorkload{addr: addr, space: space, stopCh: make(chan struct{})}
}

func (w *procWorkload) commits() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nCommits
}

func (w *procWorkload) results() (acked []string, ambiguous []ambCommit, failed []string, attempts int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.acked, w.ambiguous, w.failed, w.attempts
}

func (w *procWorkload) start(workers int, seed int64) {
	for i := 0; i < workers; i++ {
		w.wg.Add(1)
		go w.worker(i, seed)
	}
}

func (w *procWorkload) stop() {
	close(w.stopCh)
	w.wg.Wait()
}

func (w *procWorkload) closeClients() {
	w.mu.Lock()
	clients := w.clients
	w.clients = nil
	w.mu.Unlock()
	for _, cl := range clients {
		cl.Close()
	}
}

func (w *procWorkload) worker(id int, seed int64) {
	defer w.wg.Done()
	cl, err := wire.DialSession(w.addr, wire.SessionConfig{Name: fmt.Sprintf("proc-worker-%d", id)})
	if err != nil {
		return
	}
	w.mu.Lock()
	w.clients = append(w.clients, cl)
	w.mu.Unlock()

	rng := newProcRng(seed + int64(id)*7919)
	for seq := 0; ; seq++ {
		select {
		case <-w.stopCh:
			return
		default:
		}
		marker := fmt.Sprintf("mark:%d:%d", id, seq)
		w.mu.Lock()
		w.attempts++
		w.mu.Unlock()
		err := w.oneTransfer(cl, rng, marker)
		switch {
		case err == nil:
			w.mu.Lock()
			w.acked = append(w.acked, marker)
			w.nCommits++
			w.mu.Unlock()
		case errors.Is(err, common.ErrCommitAmbiguous):
			var amb *wire.AmbiguousCommitError
			if errors.As(err, &amb) && !amb.GTrx.Zero() {
				w.mu.Lock()
				w.ambiguous = append(w.ambiguous, ambCommit{g: amb.GTrx, marker: marker})
				w.mu.Unlock()
			}
		default:
			// Rolled back (conflict, transient fault, failover): the
			// marker must never surface. Brief pause keeps retry storms
			// off a mid-failover gateway.
			w.mu.Lock()
			w.failed = append(w.failed, marker)
			w.mu.Unlock()
			w.noteErr(err)
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// oneTransfer moves a random amount between two accounts and inserts the
// attempt's unique marker row, all in one transaction. Row locks are taken
// in key order so transfers cannot deadlock each other.
func (w *procWorkload) oneTransfer(cl *wire.Client, rng *procRng, marker string) error {
	i, j := rng.intn(procAccounts), rng.intn(procAccounts)
	for i == j {
		j = rng.intn(procAccounts)
	}
	if i > j {
		i, j = j, i
	}
	tx, err := cl.Begin(0, 2*time.Second)
	if err != nil {
		return err
	}
	abort := func(err error) error { _ = tx.Rollback(); return err }
	vi, err := tx.GetForUpdate(w.space, procAcctKey(i))
	if err != nil {
		return abort(err)
	}
	vj, err := tx.GetForUpdate(w.space, procAcctKey(j))
	if err != nil {
		return abort(err)
	}
	bi, _ := strconv.Atoi(string(vi))
	bj, _ := strconv.Atoi(string(vj))
	amt := rng.intn(10) + 1
	if err := tx.Update(w.space, procAcctKey(i), []byte(strconv.Itoa(bi-amt))); err != nil {
		return abort(err)
	}
	if err := tx.Update(w.space, procAcctKey(j), []byte(strconv.Itoa(bj+amt))); err != nil {
		return abort(err)
	}
	// The marker's value records the transfer itself, so a post-run replay
	// of the present markers can re-derive every expected balance.
	transfer := fmt.Sprintf("%d:%d:%d", i, j, amt)
	if err := tx.Insert(w.space, []byte(marker), []byte(transfer)); err != nil {
		return abort(err)
	}
	return tx.Commit()
}

func procAcctKey(i int) []byte { return []byte(fmt.Sprintf("acct-%03d", i)) }

// procSumBalances sums every account under one snapshot; detail carries the
// per-account balances for violation dumps.
func procSumBalances(cl *wire.Client, space uint32) (sum int, detail string, err error) {
	tx, err := cl.Begin(1, 0)
	if err != nil {
		return 0, "", err
	}
	defer tx.Rollback()
	kvs, err := tx.Scan(space, []byte("acct-"), []byte("acct-\xff"), 0)
	if err != nil {
		return 0, "", err
	}
	var sb strings.Builder
	for _, kv := range kvs {
		n, err := strconv.Atoi(string(kv.Value))
		if err != nil {
			return 0, "", fmt.Errorf("account %s holds %q: %w", kv.Key, kv.Value, common.ErrCorrupt)
		}
		sum += n
		fmt.Fprintf(&sb, "%s=%d ", kv.Key, n)
	}
	if len(kvs) != procAccounts {
		return 0, sb.String(), fmt.Errorf("scan saw %d accounts, want %d: %w", len(kvs), procAccounts, common.ErrCorrupt)
	}
	if err := tx.Commit(); err != nil && !errors.Is(err, common.ErrTxDone) {
		return 0, "", err
	}
	return sum, sb.String(), nil
}

// procFinalState reads every account balance and every marker row under ONE
// snapshot, so the forensic replay compares mutually consistent data.
func procFinalState(cl *wire.Client, space uint32) (map[int]int, map[string]string, error) {
	tx, err := cl.Begin(1, 0)
	if err != nil {
		return nil, nil, err
	}
	defer tx.Rollback()
	accts, err := tx.Scan(space, []byte("acct-"), []byte("acct-\xff"), 0)
	if err != nil {
		return nil, nil, err
	}
	marks, err := tx.Scan(space, []byte("mark:"), []byte("mark:\xff"), 0)
	if err != nil {
		return nil, nil, err
	}
	balances := make(map[int]int, len(accts))
	for _, kv := range accts {
		var i int
		if _, err := fmt.Sscanf(string(kv.Key), "acct-%d", &i); err != nil {
			return nil, nil, fmt.Errorf("unparseable account key %q: %w", kv.Key, common.ErrCorrupt)
		}
		n, err := strconv.Atoi(string(kv.Value))
		if err != nil {
			return nil, nil, fmt.Errorf("account %s holds %q: %w", kv.Key, kv.Value, common.ErrCorrupt)
		}
		balances[i] = n
	}
	markers := make(map[string]string, len(marks))
	for _, kv := range marks {
		markers[string(kv.Key)] = string(kv.Value)
	}
	return balances, markers, nil
}

// procRng is a tiny deterministic PRNG (xorshift64*) so the workload shape
// is reproducible from -seed without sharing math/rand state across workers.
type procRng struct{ s uint64 }

func newProcRng(seed int64) *procRng {
	if seed == 0 {
		seed = 1
	}
	return &procRng{s: uint64(seed)}
}

func (r *procRng) intn(n int) int {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return int((r.s * 2685821657736338717) % uint64(n))
}
