// Command mpchaos runs a multi-node read-write workload under a seeded
// fault-injection plan and verifies the cluster's crash-consistency
// invariants: committed data stays durable and visible from every node,
// rolled-back data disappears, and the cluster converges once faults stop
// (including after a network partition heals). Fault decisions are
// deterministic in the seed: for a given -plan and -seed, the i-th
// occurrence of each operation stream always draws the same verdict, so a
// failure found under one seed can be replayed by rerunning with it (the
// exact timeline varies only as far as goroutine scheduling reorders the
// workload's own operations).
//
// With -retries=false the hardened transport retry layer is disabled; fault
// plans that drop ops then leak transient errors to the application (or,
// for write-dropping plans, break the flush-before-release protocol
// outright), demonstrating why the retry layer exists. The verdict is
// printed and the exit code is non-zero on any invariant violation.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"polardbmp/internal/chaos"
	"polardbmp/internal/common"
	"polardbmp/internal/core"
)

func main() {
	planName := flag.String("plan", "smoke", "fault plan: smoke, drop, lossy, slownode, stalledstorage, partition, crashnode, brownout, pmfsfailover, elastic, none")
	seed := flag.Int64("seed", 1, "chaos seed (same seed + plan => same fault timeline)")
	nodes := flag.Int("nodes", 3, "primary nodes")
	ops := flag.Int("ops", 150, "transactions per node")
	retries := flag.Bool("retries", true, "transient-fault retries in the fusion client paths")
	cc := flag.String("cc", "", "concurrency-control engine: 2pl (default) or occ")
	verbose := flag.Bool("v", false, "print the full fault timeline")
	timeout := flag.Duration("timeout", 60*time.Second, "workload watchdog (a wedged run is an invariant violation)")
	proc := flag.Bool("proc", false, "process-level chaos: spawn real mpserver/mpgateway processes and kill/partition them (ignores -plan)")
	binDir := flag.String("bin", "", "with -proc: directory holding prebuilt mpserver/mpgateway (empty = go build them)")
	flag.Parse()

	if *proc {
		os.Exit(runProc(*binDir, *seed, *timeout, *verbose))
	}

	plan, err := resolvePlan(*planName, *nodes, *ops)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	eng, err := chaos.New(*seed, plan)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *cc != "" && !core.ValidCC(*cc) {
		fmt.Fprintln(os.Stderr, "mpchaos: unknown -cc engine", *cc)
		os.Exit(2)
	}
	cfg := core.Config{
		CC:              *cc,
		LockWaitTimeout: 5 * time.Second,
		DisableRetry:    !*retries,
	}
	if *planName == "partition" {
		// The simulated topology is a star through PMFS; the only direct
		// node↔node traffic is one-sided TIT reads resolving another
		// node's commit timestamp. CTS stamping short-circuits most of
		// those, so turn it off to give the partition something to cut.
		cfg.DisableCTSStamp = true
	}
	if *planName == "crashnode" {
		// The crash is undeclared: the harness never calls CrashNode. The
		// cluster's own lease-based detection must notice the silence,
		// fence the victim under a new epoch, and take over.
		cfg.SelfHeal = true
	}
	if *planName == "brownout" {
		// Graceful-degradation scenario: everything slows, nothing dies.
		// SelfHeal arms the lease detector so fail-slow suspicion runs; the
		// tight renew cadence lets the slow node's stretched heartbeat gap
		// (~3x the cadence under the 10ms link delay) trip the EWMA while
		// staying far under the lease timeout — suspected, never evicted.
		cfg.SelfHeal = true
		cfg.LeaseRenewInterval = 10 * time.Millisecond
		cfg.LeaseTimeout = 200 * time.Millisecond
	}
	c := core.NewCluster(cfg)
	defer c.Close()
	for i := 0; i < *nodes; i++ {
		if _, err := c.AddNode(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	sp, err := c.CreateSpace("t")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	fmt.Printf("mpchaos: plan=%s seed=%d nodes=%d ops=%d retries=%v\n",
		plan.Name, *seed, *nodes, *ops, *retries)
	// ActCrashNode rules fail-stop their victim via KillNode — a silent
	// kill, with none of CrashNode's declared-failure cleanup. A rule naming
	// the PMFS pseudo-node instead fail-stops a shared-memory replica: the
	// current leader, so the kill also exercises follower promotion.
	eng.SetCrashHandler(func(id common.NodeID) {
		if id == common.PMFSNode {
			if rep := c.PmfsReplicator(); rep != nil {
				_ = c.KillPMFSReplica(rep.Leader())
			}
			return
		}
		_ = c.KillNode(id)
	})
	epoch0 := c.Stats().Membership.Epoch
	pmfsEpoch0 := c.Stats().Pmfs.Epoch
	eng.Install(c.Fabric(), c.Store())
	start := time.Now()
	// Watchdog: without retries, a single lost lock-service message can
	// strand every waiter behind the server's wait backstop — a wedged
	// workload IS an invariant violation, so report it instead of hanging.
	resCh := make(chan *result, 1)
	var bres *brownoutMetrics
	var eres *elasticMetrics
	go func() {
		switch *planName {
		case "brownout":
			r, b := runBrownout(c, sp, *nodes, *ops)
			bres = b // written before the send, read after the receive
			resCh <- r
		case "elastic":
			r, e := runElastic(c, sp, *nodes, *ops)
			eres = e
			resCh <- r
		default:
			resCh <- runWorkload(c, sp, *nodes, *ops)
		}
	}()
	var res *result
	select {
	case res = <-resCh:
	case <-time.After(*timeout):
		printFaultSummary(eng, *verbose)
		fmt.Printf("  INVARIANT VIOLATED: workload wedged (no progress within %v)\n", *timeout)
		fmt.Println("verdict: FAIL")
		os.Exit(1)
	}
	elapsed := time.Since(start)
	// Faults off for verification: the invariants are about what the run
	// left behind once the network behaves again (e.g. after a partition
	// heals).
	chaos.Uninstall(c.Fabric(), c.Store())

	// Crash plans: give the survivors' failure detector time to finish the
	// takeover it started (or to start it, if the kill landed late in the
	// run). The harness only waits — it never intervenes.
	if crashVictims(plan) != nil {
		deadline := time.Now().Add(15 * time.Second)
		for c.Stats().Membership.Takeovers == 0 && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
	}

	printFaultSummary(eng, *verbose)
	fmt.Printf("workload: %v, %d committed, %d rolled back, %d aborted-retryable, %d severed\n",
		elapsed.Round(time.Millisecond), len(res.committed), len(res.rolledBack), res.retryable, res.severed)

	ok := verify(c, sp, *nodes, res, plan, epoch0, pmfsEpoch0)
	if bres != nil && !verifyBrownout(c, bres) {
		ok = false
	}
	if eres != nil && !verifyElastic(c, eres, epoch0) {
		ok = false
	}
	if !ok {
		fmt.Println("verdict: FAIL")
		os.Exit(1)
	}
	fmt.Println("verdict: PASS")
}

// resolvePlan maps -plan to a chaos.Plan. "partition" and "crashnode" are
// built here (they need the node set): partition cuts node 1 off from the
// rest for a mid-run op window; crashnode fail-stops the last node a third
// of the way through the workload.
func resolvePlan(name string, nodes, ops int) (chaos.Plan, error) {
	// Rough scale: each transaction costs 10-20 fabric ops; the estimated
	// run length positions mid-run fault windows.
	window := uint64(nodes * ops * 12)
	switch name {
	case "partition":
		var a, b []common.NodeID
		a = append(a, 1)
		for i := 2; i <= nodes; i++ {
			b = append(b, common.NodeID(i))
		}
		return chaos.PartitionPlan(a, b, window/3, 2*window/3), nil
	case "crashnode":
		if nodes < 2 {
			return chaos.Plan{}, fmt.Errorf("mpchaos: crashnode needs at least 2 nodes (use -nodes)")
		}
		return chaos.CrashNodePlan(common.NodeID(nodes), window/3), nil
	case "pmfsfailover":
		// Kill a shared-memory replica a third of the way in, while the
		// workload keeps committing through the replicated tier.
		return chaos.PmfsFailoverPlan(window / 3), nil
	case "brownout":
		if nodes < 2 {
			return chaos.Plan{}, fmt.Errorf("mpchaos: brownout needs at least 2 nodes (use -nodes)")
		}
		// Last node gets the degraded link; 20% of storage I/O stalls 2ms;
		// 5% of one-sided DBP frame reads stall 10ms (the hedgeable tail).
		return chaos.BrownoutPlan(common.NodeID(nodes),
			10*time.Millisecond, 2*time.Millisecond, 10*time.Millisecond), nil
	case "elastic":
		if nodes < 2 {
			return chaos.Plan{}, fmt.Errorf("mpchaos: elastic needs at least 2 nodes (use -nodes)")
		}
		return chaos.ElasticPlan(), nil
	}
	return chaos.PresetPlan(name)
}

// crashVictims lists the database nodes a plan fail-stops (nil for
// fault-only plans). ActCrashNode rules on the PMFS pseudo-node kill a
// shared-memory replica, not a database node — see pmfsKills.
func crashVictims(plan chaos.Plan) map[common.NodeID]bool {
	var victims map[common.NodeID]bool
	for _, r := range plan.Rules {
		if r.Action.Kind == chaos.ActCrashNode && r.Action.Node != common.PMFSNode {
			if victims == nil {
				victims = make(map[common.NodeID]bool)
			}
			victims[r.Action.Node] = true
		}
	}
	return victims
}

// pmfsKills counts the shared-memory replica fail-stops a plan fires.
func pmfsKills(plan chaos.Plan) int64 {
	var n int64
	for _, r := range plan.Rules {
		if r.Action.Kind == chaos.ActCrashNode && r.Action.Node == common.PMFSNode {
			n++
		}
	}
	return n
}

type result struct {
	mu         sync.Mutex
	committed  map[string]string
	csns       []uint64 // commit timestamps of successful writes
	rolledBack []string
	leaked     []error
	retryable  int
	severed    int // errors from talking to a fail-stopped node
}

// severedErr reports an error a client sees when its node (or its peer) has
// been fail-stopped or fenced: expected under crash plans, a leak otherwise.
func severedErr(err error) bool {
	return errors.Is(err, common.ErrNodeDown) ||
		errors.Is(err, common.ErrClosed) ||
		errors.Is(err, common.ErrStaleEpoch)
}

// runWorkload drives ops transactions per node concurrently: 2/3 committed
// upserts (each read back from a peer node), 1/3 rolled-back inserts. Keys
// are disjoint per node; shared B-tree pages still exercise Lock Fusion and
// Buffer Fusion across nodes.
func runWorkload(c *core.Cluster, sp common.SpaceID, nodes, ops int) *result {
	res := &result{committed: make(map[string]string)}
	classify := func(err error) {
		res.mu.Lock()
		defer res.mu.Unlock()
		switch {
		case common.IsRetryable(err):
			res.retryable++
		case severedErr(err):
			res.severed++
		default:
			res.leaked = append(res.leaked, err)
		}
	}
	var wg sync.WaitGroup
	for ni := 1; ni <= nodes; ni++ {
		ni := ni
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				// Re-resolve the handle each round: a crash plan may
				// fail-stop this node mid-run.
				n := c.Node(ni)
				if n == nil {
					res.mu.Lock()
					res.severed++
					res.mu.Unlock()
					continue
				}
				key := fmt.Sprintf("n%d-k%05d", ni, i)
				tx, err := n.Begin()
				if err != nil {
					classify(err)
					continue
				}
				if i%3 == 2 {
					rbKey := "rb-" + key
					if err := tx.Insert(sp, []byte(rbKey), []byte("junk")); err != nil {
						classify(err)
						_ = tx.Rollback()
						continue
					}
					if err := tx.Rollback(); err != nil {
						classify(err)
						continue
					}
					res.mu.Lock()
					res.rolledBack = append(res.rolledBack, rbKey)
					res.mu.Unlock()
					continue
				}
				val := fmt.Sprintf("v%d-%d", ni, i)
				if err := tx.Upsert(sp, []byte(key), []byte(val)); err != nil {
					classify(err)
					_ = tx.Rollback()
					continue
				}
				if err := tx.Commit(); err != nil {
					classify(err)
					continue
				}
				res.mu.Lock()
				res.committed[key] = val
				res.csns = append(res.csns, tx.Info().CTS)
				res.mu.Unlock()

				peer := c.Node(ni%nodes + 1)
				if peer == nil {
					res.mu.Lock()
					res.severed++
					res.mu.Unlock()
					continue
				}
				rtx, err := peer.Begin()
				if err != nil {
					classify(err)
					continue
				}
				if _, err := rtx.Get(sp, []byte(key)); err != nil && !errors.Is(err, common.ErrNotFound) {
					classify(err)
				}
				_ = rtx.Commit()
			}
		}()
	}
	wg.Wait()
	return res
}

func printFaultSummary(eng *chaos.Engine, verbose bool) {
	events := eng.Events()
	byRule := map[string]int{}
	for _, ev := range events {
		byRule[ev.Rule+"/"+ev.Action]++
	}
	keys := make([]string, 0, len(byRule))
	for k := range byRule {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Printf("faults: %d injected over %d fabric/storage ops (log fingerprint %016x)\n",
		len(events), eng.OpCount(), eng.Fingerprint())
	for _, k := range keys {
		fmt.Printf("  %-32s %d\n", k, byRule[k])
	}
	if verbose {
		fmt.Print(eng.Timeline())
	}
}

// verify checks the crash-consistency invariants from every surviving node,
// on a quiet fabric.
func verify(c *core.Cluster, sp common.SpaceID, nodes int, res *result, plan chaos.Plan, epoch0, pmfsEpoch0 uint64) bool {
	ok := true
	fail := func(format string, args ...any) {
		ok = false
		fmt.Printf("  INVARIANT VIOLATED: "+format+"\n", args...)
	}

	// Invariant 0: faults never leak past the retry layer as non-retryable
	// application errors. Under a partition plan, unreachable windows are
	// expected to surface (retries cannot outwait a partition); under a
	// crash plan, severed-connection errors from the dead node are the
	// point. Everything else must be absorbed.
	partitioned := len(plan.Partitions) > 0
	victims := crashVictims(plan)
	var unexpected []error
	for _, err := range res.leaked {
		if partitioned && errors.Is(err, common.ErrUnreachable) {
			continue
		}
		unexpected = append(unexpected, err)
	}
	if n := len(res.leaked) - len(unexpected); n > 0 {
		fmt.Printf("  tolerated %d unreachable errors during the partition window\n", n)
	}
	if len(unexpected) > 0 {
		fail("%d faults leaked to the application; first: %v", len(unexpected), unexpected[0])
	}
	if res.severed > 0 && victims == nil {
		fail("%d severed-node errors surfaced but the plan crashes nobody", res.severed)
	}

	// Invariant 4 (crash plans): the harness made zero CrashNode calls, so
	// any recovery happened through the cluster's own failure detection —
	// the lease table must show a fenced epoch bump and a finished takeover.
	if victims != nil {
		st := c.Stats()
		if st.Membership.Takeovers < int64(len(victims)) {
			fail("survivors finished %d takeovers, want %d (failure detection never completed)",
				st.Membership.Takeovers, len(victims))
		}
		if st.Membership.Epoch <= epoch0 {
			fail("cluster epoch %d never advanced past pre-crash epoch %d", st.Membership.Epoch, epoch0)
		}
		fmt.Printf("self-healing: %d takeover(s) at epoch %d (mean %v), %d lease renewals, 0 harness CrashNode calls\n",
			st.Membership.Takeovers, st.Membership.Epoch, st.Membership.TakeoverMean.Round(time.Microsecond), st.Membership.LeaseRenewals)
	}

	// Invariant 5: the TSO never hands out the same timestamp twice — a
	// replayed or double-advanced grant (duplicate fabric delivery, replica
	// failover promoting a stale copy) would reissue commit CSNs.
	seenCSN := make(map[uint64]bool, len(res.csns))
	dupCSNs := 0
	for _, csn := range res.csns {
		if csn == 0 {
			continue
		}
		if seenCSN[csn] {
			dupCSNs++
		}
		seenCSN[csn] = true
	}
	if dupCSNs > 0 {
		fail("%d duplicate commit CSNs — the TSO double-advanced or regressed", dupCSNs)
	}

	// Invariant 6 (pmfs failover plans): the replica kill was absorbed by
	// the replicated shared-memory tier — every kill became exactly one
	// failover, and the pmfs epoch advanced exactly once per kill.
	if kills := pmfsKills(plan); kills > 0 {
		st := c.Stats()
		if st.Pmfs.Failovers != kills {
			fail("pmfs tier absorbed %d failovers, want %d (replica kill not handled)",
				st.Pmfs.Failovers, kills)
		}
		if st.Pmfs.Epoch != pmfsEpoch0+uint64(kills) {
			fail("pmfs epoch %d, want exactly %d (pre-kill %d + %d kill(s)) — epoch must advance exactly once per failover",
				st.Pmfs.Epoch, pmfsEpoch0+uint64(kills), pmfsEpoch0, kills)
		}
		fmt.Printf("pmfs: %d/%d replicas live at epoch %d after %d failover(s), leader=%d, %d quorum ops (p99 %v), %d read repairs, %d dup-suppressed\n",
			st.Pmfs.Live, st.Pmfs.Replicas, st.Pmfs.Epoch, st.Pmfs.Failovers, st.Pmfs.Leader,
			st.Pmfs.QuorumOps, st.Pmfs.QuorumP99.Round(time.Microsecond),
			st.Pmfs.ReadRepairs, st.Pmfs.DupSuppressed)
	}

	// Invariants 1-3: committed rows durable and identical from every
	// surviving node (convergence after faults stop / partition heals);
	// rolled-back rows gone. Crashed nodes are skipped — their committed
	// rows must still be visible from everyone else.
	verified := 0
	for ni := 1; ni <= nodes; ni++ {
		nd := c.Node(ni)
		if nd == nil || !nd.Live() {
			if victims[common.NodeID(ni)] {
				continue
			}
			fail("node %d is down but the plan never crashed it", ni)
			continue
		}
		verified++
		tx, err := nd.Begin()
		if err != nil {
			fail("node %d cannot open verify transaction: %v", ni, err)
			continue
		}
		lost, wrong, resurfaced := 0, 0, 0
		for key, want := range res.committed {
			got, err := tx.Get(sp, []byte(key))
			switch {
			case err != nil:
				lost++
			case string(got) != want:
				wrong++
			}
		}
		for _, key := range res.rolledBack {
			if _, err := tx.Get(sp, []byte(key)); !errors.Is(err, common.ErrNotFound) {
				resurfaced++
			}
		}
		_ = tx.Commit()
		if lost > 0 {
			fail("node %d: %d committed rows lost", ni, lost)
		}
		if wrong > 0 {
			fail("node %d: %d committed rows with wrong values", ni, wrong)
		}
		if resurfaced > 0 {
			fail("node %d: %d rolled-back rows resurfaced", ni, resurfaced)
		}
	}
	if ok {
		fmt.Printf("invariants: durable=%d rows visible from all %d surviving nodes, rollback=%d rows absent, converged\n",
			len(res.committed), verified, len(res.rolledBack))
	}
	return ok
}

// --- brownout: graceful degradation under gray failure ----------------------

// Brownout workload tuning. Every transaction carries a fresh deadline
// budget; grace is the slack allowed past the budget for work a transaction
// finishes after its last checkpoint (commit publication, rollback). The
// invariants assert graceful degradation, not full speed: a goodput floor,
// a bounded tail, zero transactions outliving budget+grace, and zero
// transactions permanently rejected with ErrOverloaded after backoff.
const (
	brownoutBudget     = 400 * time.Millisecond
	brownoutGrace      = 600 * time.Millisecond
	brownoutMaxRetries = 8
	brownoutGoodputPct = 40
	brownoutP99Bound   = 2 * time.Second
)

type brownoutMetrics struct {
	mu             sync.Mutex
	attempts       int             // logical write transactions attempted
	deadlineAborts int             // ended with ErrDeadlineExceeded
	overloadFinal  int             // still ErrOverloaded after all backoff rounds
	overruns       int             // single attempts that ran past budget+grace
	worstOverrun   time.Duration   // max(elapsed - budget) across attempts
	lats           []time.Duration // wall time per logical op (incl. retries)
}

// runBrownout drives the same disjoint-key upsert/rollback mix as
// runWorkload, but every transaction carries a deadline budget and retryable
// failures (ErrOverloaded shed, lock timeouts, conflicts) are retried with
// exponential backoff — the contract the admission controller's "retryable"
// promise makes to well-behaved clients.
func runBrownout(c *core.Cluster, sp common.SpaceID, nodes, ops int) (*result, *brownoutMetrics) {
	res := &result{committed: make(map[string]string)}
	bm := &brownoutMetrics{}

	// attempt runs body in one bounded transaction and reports the outcome
	// plus the attempt's wall time (its budget is fresh, so elapsed compares
	// directly against brownoutBudget).
	attempt := func(n *core.Node, body func(tx *core.Tx) error) (time.Duration, error) {
		start := time.Now()
		tx, err := n.BeginDeadline(core.ReadCommitted, common.DeadlineAfter(brownoutBudget))
		if err != nil {
			return time.Since(start), err
		}
		if err := body(tx); err != nil {
			_ = tx.Rollback()
			return time.Since(start), err
		}
		return time.Since(start), nil
	}

	var wg sync.WaitGroup
	for ni := 1; ni <= nodes; ni++ {
		ni := ni
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := c.Node(ni)
			for i := 0; i < ops; i++ {
				key := fmt.Sprintf("n%d-k%05d", ni, i)
				rollback := i%3 == 2
				opStart := time.Now()
				bm.mu.Lock()
				bm.attempts++
				bm.mu.Unlock()

				var lastErr error
				for try := 0; try <= brownoutMaxRetries; try++ {
					if try > 0 {
						// Jittered exponential backoff; the jitter source is
						// the (node, op, try) triple so runs stay seeded.
						backoff := time.Millisecond << uint(min(try-1, 4))
						backoff += time.Duration((ni*7919+i*104729+try*1299721)%1000) * time.Microsecond
						time.Sleep(backoff)
					}
					var elapsed time.Duration
					elapsed, lastErr = attempt(n, func(tx *core.Tx) error {
						if rollback {
							if err := tx.Insert(sp, []byte("rb-"+key), []byte("junk")); err != nil {
								return err
							}
							return tx.Rollback()
						}
						if err := tx.Upsert(sp, []byte(key), []byte(fmt.Sprintf("v%d-%d", ni, i))); err != nil {
							return err
						}
						return tx.Commit()
					})
					if over := elapsed - brownoutBudget; over > brownoutGrace {
						bm.mu.Lock()
						bm.overruns++
						if over > bm.worstOverrun {
							bm.worstOverrun = over
						}
						bm.mu.Unlock()
					} else if over > 0 {
						bm.mu.Lock()
						if over > bm.worstOverrun {
							bm.worstOverrun = over
						}
						bm.mu.Unlock()
					}
					if lastErr == nil || !common.IsRetryable(lastErr) {
						break
					}
				}

				bm.mu.Lock()
				bm.lats = append(bm.lats, time.Since(opStart))
				bm.mu.Unlock()
				res.mu.Lock()
				switch {
				case lastErr == nil && rollback:
					res.rolledBack = append(res.rolledBack, "rb-"+key)
				case lastErr == nil:
					res.committed[key] = fmt.Sprintf("v%d-%d", ni, i)
				case errors.Is(lastErr, common.ErrDeadlineExceeded):
					bm.mu.Lock()
					bm.deadlineAborts++
					bm.mu.Unlock()
				case errors.Is(lastErr, common.ErrOverloaded):
					bm.mu.Lock()
					bm.overloadFinal++
					bm.mu.Unlock()
				case common.IsRetryable(lastErr):
					res.retryable++
				case severedErr(lastErr):
					res.severed++
				default:
					res.leaked = append(res.leaked, lastErr)
				}
				res.mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return res, bm
}

// verifyBrownout checks the graceful-degradation invariants and prints the
// overload/hedge/fail-slow observability the run produced.
func verifyBrownout(c *core.Cluster, bm *brownoutMetrics) bool {
	ok := true
	fail := func(format string, args ...any) {
		ok = false
		fmt.Printf("  INVARIANT VIOLATED: "+format+"\n", args...)
	}

	sort.Slice(bm.lats, func(i, j int) bool { return bm.lats[i] < bm.lats[j] })
	q := func(p float64) time.Duration {
		if len(bm.lats) == 0 {
			return 0
		}
		i := int(p * float64(len(bm.lats)-1))
		return bm.lats[i]
	}
	st := c.Stats()
	goodput := 0.0
	done := bm.attempts - bm.deadlineAborts - bm.overloadFinal
	if bm.attempts > 0 {
		goodput = 100 * float64(done) / float64(bm.attempts)
	}
	fmt.Printf("brownout: goodput %.1f%% (%d/%d), p50 %v, p99 %v, %d deadline aborts (worst overrun %v)\n",
		goodput, done, bm.attempts, q(0.50).Round(time.Millisecond), q(0.99).Round(time.Millisecond),
		bm.deadlineAborts, bm.worstOverrun.Round(time.Millisecond))
	fmt.Printf("overload: plock sheds=%d buf sheds=%d hedges fired=%d won=%d deadline aborts=%d\n",
		st.Overload.PLockSheds, st.Overload.BufSheds,
		st.Overload.HedgesFired, st.Overload.HedgeWins, st.Overload.DeadlineAborts)
	fmt.Printf("fail-slow: %d suspicions, slow peers %v\n",
		st.Membership.FailSlowSuspicions, st.Membership.SlowPeers)

	if goodput < brownoutGoodputPct {
		fail("goodput %.1f%% under the %d%% floor — degradation is not graceful", goodput, brownoutGoodputPct)
	}
	if p99 := q(0.99); p99 > brownoutP99Bound {
		fail("p99 %v exceeds the %v bound", p99.Round(time.Millisecond), brownoutP99Bound)
	}
	if bm.overruns > 0 {
		fail("%d transactions outlived budget+grace (worst overrun %v) — deadlines did not bound the work",
			bm.overruns, bm.worstOverrun.Round(time.Millisecond))
	}
	if bm.overloadFinal > 0 {
		fail("%d transactions still ErrOverloaded after %d backoff rounds — shedding must be transient",
			bm.overloadFinal, brownoutMaxRetries)
	}
	return ok
}
