// Command mpchaos runs a multi-node read-write workload under a seeded
// fault-injection plan and verifies the cluster's crash-consistency
// invariants: committed data stays durable and visible from every node,
// rolled-back data disappears, and the cluster converges once faults stop
// (including after a network partition heals). Fault decisions are
// deterministic in the seed: for a given -plan and -seed, the i-th
// occurrence of each operation stream always draws the same verdict, so a
// failure found under one seed can be replayed by rerunning with it (the
// exact timeline varies only as far as goroutine scheduling reorders the
// workload's own operations).
//
// With -retries=false the hardened transport retry layer is disabled; fault
// plans that drop ops then leak transient errors to the application (or,
// for write-dropping plans, break the flush-before-release protocol
// outright), demonstrating why the retry layer exists. The verdict is
// printed and the exit code is non-zero on any invariant violation.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"polardbmp/internal/chaos"
	"polardbmp/internal/common"
	"polardbmp/internal/core"
)

func main() {
	planName := flag.String("plan", "smoke", "fault plan: smoke, drop, lossy, slownode, stalledstorage, partition, none")
	seed := flag.Int64("seed", 1, "chaos seed (same seed + plan => same fault timeline)")
	nodes := flag.Int("nodes", 3, "primary nodes")
	ops := flag.Int("ops", 150, "transactions per node")
	retries := flag.Bool("retries", true, "transient-fault retries in the fusion client paths")
	verbose := flag.Bool("v", false, "print the full fault timeline")
	timeout := flag.Duration("timeout", 60*time.Second, "workload watchdog (a wedged run is an invariant violation)")
	flag.Parse()

	plan, err := resolvePlan(*planName, *nodes, *ops)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	eng, err := chaos.New(*seed, plan)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := core.Config{
		LockWaitTimeout: 5 * time.Second,
		DisableRetry:    !*retries,
	}
	if *planName == "partition" {
		// The simulated topology is a star through PMFS; the only direct
		// node↔node traffic is one-sided TIT reads resolving another
		// node's commit timestamp. CTS stamping short-circuits most of
		// those, so turn it off to give the partition something to cut.
		cfg.DisableCTSStamp = true
	}
	c := core.NewCluster(cfg)
	defer c.Close()
	for i := 0; i < *nodes; i++ {
		if _, err := c.AddNode(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	sp, err := c.CreateSpace("t")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	fmt.Printf("mpchaos: plan=%s seed=%d nodes=%d ops=%d retries=%v\n",
		plan.Name, *seed, *nodes, *ops, *retries)
	eng.Install(c.Fabric(), c.Store())
	start := time.Now()
	// Watchdog: without retries, a single lost lock-service message can
	// strand every waiter behind the server's wait backstop — a wedged
	// workload IS an invariant violation, so report it instead of hanging.
	resCh := make(chan *result, 1)
	go func() { resCh <- runWorkload(c, sp, *nodes, *ops) }()
	var res *result
	select {
	case res = <-resCh:
	case <-time.After(*timeout):
		printFaultSummary(eng, *verbose)
		fmt.Printf("  INVARIANT VIOLATED: workload wedged (no progress within %v)\n", *timeout)
		fmt.Println("verdict: FAIL")
		os.Exit(1)
	}
	elapsed := time.Since(start)
	// Faults off for verification: the invariants are about what the run
	// left behind once the network behaves again (e.g. after a partition
	// heals).
	chaos.Uninstall(c.Fabric(), c.Store())

	printFaultSummary(eng, *verbose)
	fmt.Printf("workload: %v, %d committed, %d rolled back, %d aborted-retryable\n",
		elapsed.Round(time.Millisecond), len(res.committed), len(res.rolledBack), res.retryable)

	ok := verify(c, sp, *nodes, res, plan)
	if !ok {
		fmt.Println("verdict: FAIL")
		os.Exit(1)
	}
	fmt.Println("verdict: PASS")
}

// resolvePlan maps -plan to a chaos.Plan. "partition" is built here (it
// needs the node set): nodes {1} vs {2..n} are cut for a mid-run op window
// and must re-converge after the heal.
func resolvePlan(name string, nodes, ops int) (chaos.Plan, error) {
	if name != "partition" {
		return chaos.PresetPlan(name)
	}
	var a, b []common.NodeID
	a = append(a, 1)
	for i := 2; i <= nodes; i++ {
		b = append(b, common.NodeID(i))
	}
	// Rough scale: each transaction costs 10-20 fabric ops; cut the
	// middle third of the run.
	window := uint64(nodes * ops * 12)
	return chaos.PartitionPlan(a, b, window/3, 2*window/3), nil
}

type result struct {
	mu         sync.Mutex
	committed  map[string]string
	rolledBack []string
	leaked     []error
	retryable  int
}

// runWorkload drives ops transactions per node concurrently: 2/3 committed
// upserts (each read back from a peer node), 1/3 rolled-back inserts. Keys
// are disjoint per node; shared B-tree pages still exercise Lock Fusion and
// Buffer Fusion across nodes.
func runWorkload(c *core.Cluster, sp common.SpaceID, nodes, ops int) *result {
	res := &result{committed: make(map[string]string)}
	classify := func(err error) {
		res.mu.Lock()
		defer res.mu.Unlock()
		if common.IsRetryable(err) {
			res.retryable++
		} else {
			res.leaked = append(res.leaked, err)
		}
	}
	var wg sync.WaitGroup
	for ni := 1; ni <= nodes; ni++ {
		ni := ni
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := c.Node(ni)
			for i := 0; i < ops; i++ {
				key := fmt.Sprintf("n%d-k%05d", ni, i)
				tx, err := n.Begin()
				if err != nil {
					classify(err)
					continue
				}
				if i%3 == 2 {
					rbKey := "rb-" + key
					if err := tx.Insert(sp, []byte(rbKey), []byte("junk")); err != nil {
						classify(err)
						_ = tx.Rollback()
						continue
					}
					if err := tx.Rollback(); err != nil {
						classify(err)
						continue
					}
					res.mu.Lock()
					res.rolledBack = append(res.rolledBack, rbKey)
					res.mu.Unlock()
					continue
				}
				val := fmt.Sprintf("v%d-%d", ni, i)
				if err := tx.Upsert(sp, []byte(key), []byte(val)); err != nil {
					classify(err)
					_ = tx.Rollback()
					continue
				}
				if err := tx.Commit(); err != nil {
					classify(err)
					continue
				}
				res.mu.Lock()
				res.committed[key] = val
				res.mu.Unlock()

				peer := c.Node(ni%nodes + 1)
				rtx, err := peer.Begin()
				if err != nil {
					classify(err)
					continue
				}
				if _, err := rtx.Get(sp, []byte(key)); err != nil && !errors.Is(err, common.ErrNotFound) {
					classify(err)
				}
				_ = rtx.Commit()
			}
		}()
	}
	wg.Wait()
	return res
}

func printFaultSummary(eng *chaos.Engine, verbose bool) {
	events := eng.Events()
	byRule := map[string]int{}
	for _, ev := range events {
		byRule[ev.Rule+"/"+ev.Action]++
	}
	keys := make([]string, 0, len(byRule))
	for k := range byRule {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Printf("faults: %d injected over %d fabric/storage ops (log fingerprint %016x)\n",
		len(events), eng.OpCount(), eng.Fingerprint())
	for _, k := range keys {
		fmt.Printf("  %-32s %d\n", k, byRule[k])
	}
	if verbose {
		fmt.Print(eng.Timeline())
	}
}

// verify checks the three invariants from every node, on a quiet fabric.
func verify(c *core.Cluster, sp common.SpaceID, nodes int, res *result, plan chaos.Plan) bool {
	ok := true
	fail := func(format string, args ...any) {
		ok = false
		fmt.Printf("  INVARIANT VIOLATED: "+format+"\n", args...)
	}

	// Invariant 0: faults never leak past the retry layer as non-retryable
	// application errors. Under a partition plan, unreachable windows are
	// expected to surface (retries cannot outwait a partition); everything
	// else must be absorbed.
	partitioned := len(plan.Partitions) > 0
	var unexpected []error
	for _, err := range res.leaked {
		if partitioned && errors.Is(err, common.ErrUnreachable) {
			continue
		}
		unexpected = append(unexpected, err)
	}
	if n := len(res.leaked) - len(unexpected); n > 0 {
		fmt.Printf("  tolerated %d unreachable errors during the partition window\n", n)
	}
	if len(unexpected) > 0 {
		fail("%d faults leaked to the application; first: %v", len(unexpected), unexpected[0])
	}

	// Invariants 1-3: committed rows durable and identical from every node
	// (convergence after faults stop / partition heals); rolled-back rows
	// gone.
	for ni := 1; ni <= nodes; ni++ {
		tx, err := c.Node(ni).Begin()
		if err != nil {
			fail("node %d cannot open verify transaction: %v", ni, err)
			continue
		}
		lost, wrong, resurfaced := 0, 0, 0
		for key, want := range res.committed {
			got, err := tx.Get(sp, []byte(key))
			switch {
			case err != nil:
				lost++
			case string(got) != want:
				wrong++
			}
		}
		for _, key := range res.rolledBack {
			if _, err := tx.Get(sp, []byte(key)); !errors.Is(err, common.ErrNotFound) {
				resurfaced++
			}
		}
		_ = tx.Commit()
		if lost > 0 {
			fail("node %d: %d committed rows lost", ni, lost)
		}
		if wrong > 0 {
			fail("node %d: %d committed rows with wrong values", ni, wrong)
		}
		if resurfaced > 0 {
			fail("node %d: %d rolled-back rows resurfaced", ni, resurfaced)
		}
	}
	if ok {
		fmt.Printf("invariants: durable=%d rows visible from all %d nodes, rollback=%d rows absent, converged\n",
			len(res.committed), nodes, len(res.rolledBack))
	}
	return ok
}
