package main

// The elastic sub-harness: topology churn under load. An orchestrator
// gracefully drains one node and rejoins it, several times, while workers on
// every node keep committing. The headline invariant is the drain contract —
// zero transactions aborted for membership reasons: in-flight work admitted
// before a drain commits normally, work arriving after sees ErrDraining at
// Begin and reroutes to another primary. ErrStaleEpoch / ErrFenced /
// ErrNodeDown anywhere in a transaction means the drain behaved like a crash,
// and fails the run.

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"polardbmp/internal/common"
	"polardbmp/internal/core"
)

const (
	elasticCycles    = 3
	elasticMaxTries  = 10
	elasticDrainGap  = 30 * time.Millisecond // load runs before each drain
	elasticRejoinGap = 20 * time.Millisecond // slot sits drained before reuse
)

type elasticMetrics struct {
	mu               sync.Mutex
	rerouted         int // Begins refused with ErrDraining and retried elsewhere
	membershipAborts []error
	drains           int
	rejoins          int
	epochs           []uint64 // topology epochs sampled around each transition
	orchErrs         []error
}

// membershipAbort reports an error that means a transaction was killed by a
// topology transition — exactly what a graceful drain must never cause.
func membershipAbort(err error) bool {
	return errors.Is(err, common.ErrStaleEpoch) ||
		errors.Is(err, common.ErrFenced) ||
		errors.Is(err, common.ErrNodeDown) ||
		errors.Is(err, common.ErrClosed)
}

// runElastic drives the workload while the orchestrator cycles the last node
// out and back in. Workers prefer their own node and fall over round-robin
// when a Begin is refused with ErrDraining.
func runElastic(c *core.Cluster, sp common.SpaceID, nodes, ops int) (*result, *elasticMetrics) {
	res := &result{committed: make(map[string]string)}
	em := &elasticMetrics{}
	victim := nodes

	sampleEpoch := func() {
		if t, err := c.Topology(); err == nil {
			em.mu.Lock()
			em.epochs = append(em.epochs, t.Epoch)
			em.mu.Unlock()
		}
	}

	orchDone := make(chan struct{})
	go func() {
		defer close(orchDone)
		for cy := 0; cy < elasticCycles; cy++ {
			time.Sleep(elasticDrainGap)
			sampleEpoch()
			if err := c.DrainNode(common.NodeID(victim)); err != nil {
				em.mu.Lock()
				em.orchErrs = append(em.orchErrs, fmt.Errorf("cycle %d drain: %w", cy, err))
				em.mu.Unlock()
				return
			}
			em.mu.Lock()
			em.drains++
			em.mu.Unlock()
			sampleEpoch()
			time.Sleep(elasticRejoinGap)
			if _, err := c.AddNode(); err != nil {
				em.mu.Lock()
				em.orchErrs = append(em.orchErrs, fmt.Errorf("cycle %d rejoin: %w", cy, err))
				em.mu.Unlock()
				return
			}
			em.mu.Lock()
			em.rejoins++
			em.mu.Unlock()
			sampleEpoch()
		}
	}()

	var wg sync.WaitGroup
	for ni := 1; ni <= nodes; ni++ {
		ni := ni
		wg.Add(1)
		go func() {
			defer wg.Done()
			target := ni
			for i := 0; i < ops; i++ {
				key := fmt.Sprintf("n%d-k%05d", ni, i)
				rollback := i%3 == 2
				for try := 0; try < elasticMaxTries; try++ {
					// Re-resolve every attempt: the drained node vanishes from
					// the cluster map and its rejoined successor reuses the id.
					n := c.Node(target)
					if n == nil || !n.Live() {
						em.mu.Lock()
						em.rerouted++
						em.mu.Unlock()
						target = target%nodes + 1
						continue
					}
					tx, err := n.Begin()
					if err != nil {
						if errors.Is(err, common.ErrDraining) {
							// The admission refusal IS the protocol: route the
							// transaction to another primary, abort nothing.
							em.mu.Lock()
							em.rerouted++
							em.mu.Unlock()
							target = target%nodes + 1
							continue
						}
						classifyElastic(res, em, err)
						continue
					}
					err = func() error {
						if rollback {
							if err := tx.Insert(sp, []byte("rb-"+key), []byte("junk")); err != nil {
								_ = tx.Rollback()
								return err
							}
							return tx.Rollback()
						}
						if err := tx.Upsert(sp, []byte(key), []byte(fmt.Sprintf("v%d-%d", ni, i))); err != nil {
							_ = tx.Rollback()
							return err
						}
						return tx.Commit()
					}()
					if err != nil {
						classifyElastic(res, em, err)
						if common.IsRetryable(err) {
							continue
						}
						break
					}
					res.mu.Lock()
					if rollback {
						res.rolledBack = append(res.rolledBack, "rb-"+key)
					} else {
						res.committed[key] = fmt.Sprintf("v%d-%d", ni, i)
						res.csns = append(res.csns, tx.Info().CTS)
					}
					res.mu.Unlock()
					break
				}
			}
		}()
	}
	wg.Wait()
	<-orchDone
	return res, em
}

// classifyElastic sorts a transaction error into the elastic buckets:
// membership aborts are the invariant violation under test, retryable
// conflicts are workload noise, anything else leaks to verify's invariant 0.
func classifyElastic(res *result, em *elasticMetrics, err error) {
	if membershipAbort(err) {
		em.mu.Lock()
		em.membershipAborts = append(em.membershipAborts, err)
		em.mu.Unlock()
		return
	}
	res.mu.Lock()
	defer res.mu.Unlock()
	if common.IsRetryable(err) {
		res.retryable++
		return
	}
	res.leaked = append(res.leaked, err)
}

// verifyElastic gates on the elasticity invariants: every drain and rejoin
// completed, zero membership aborts, zero takeovers (a graceful exit needs no
// recovery), and monotone topology epochs.
func verifyElastic(c *core.Cluster, em *elasticMetrics, epoch0 uint64) bool {
	ok := true
	fail := func(format string, args ...any) {
		ok = false
		fmt.Printf("  INVARIANT VIOLATED: "+format+"\n", args...)
	}

	st := c.Stats()
	fmt.Printf("elastic: %d drain/rejoin cycles, %d rerouted begins, epoch %d -> %d\n",
		em.drains, em.rerouted, epoch0, st.Membership.Epoch)

	for _, err := range em.orchErrs {
		fail("orchestration failed: %v", err)
	}
	if em.drains < elasticCycles || em.rejoins < elasticCycles {
		fail("only %d/%d drains and %d/%d rejoins completed",
			em.drains, elasticCycles, em.rejoins, elasticCycles)
	}
	if n := len(em.membershipAborts); n > 0 {
		fail("%d transactions aborted for membership reasons during graceful drains; first: %v",
			n, em.membershipAborts[0])
	}
	if st.Membership.Takeovers != 0 {
		fail("graceful drains triggered %d takeovers, want 0 (nothing to recover)", st.Membership.Takeovers)
	}
	for i := 1; i < len(em.epochs); i++ {
		if em.epochs[i] < em.epochs[i-1] {
			fail("topology epoch regressed: %d after %d", em.epochs[i], em.epochs[i-1])
			break
		}
	}
	if st.Membership.Epoch <= epoch0 {
		fail("cluster epoch %d never advanced past %d despite %d topology changes",
			st.Membership.Epoch, epoch0, em.drains+em.rejoins)
	}
	return ok
}
