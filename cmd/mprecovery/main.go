// Command mprecovery demonstrates Figure 15 (§5.5) interactively: a
// two-node cluster runs disjoint workloads, node 1 is killed mid-run and
// restarted, and the per-node throughput timeline plus the recovery time
// are printed. Node 2 must be undisturbed, and node 1's recovery should be
// served mostly from the shared memory pool (DBP) rather than storage.
package main

import (
	"flag"
	"fmt"

	"polardbmp/internal/figures"
)

func main() {
	quick := flag.Bool("quick", false, "shorter run")
	flag.Parse()

	o := figures.Options{Quick: *quick}
	_, _, recovery := figures.Fig15(o)
	fmt.Printf("\nrecovery wall time: %v\n", recovery)
	fmt.Println("expected shape (paper §5.5): node 2's line is flat through the crash;")
	fmt.Println("node 1 returns after a short recovery gap, back at full throughput.")
}
