// Command mpbench regenerates the tables and figures of the PolarDB-MP
// paper's evaluation (§5) under the scaled-time simulation described in
// internal/figures.
//
// Usage:
//
//	mpbench -fig all                 # every figure (long)
//	mpbench -fig 7 -quick            # one figure, trimmed sweep
//	mpbench -fig 11 -nodes 1,2,4,8 -dur 3s -threads 4
//	mpbench -fig ablations           # §4 design-choice ablations
//	mpbench -fig micro               # TSO / TIT one-sided verb costs
//	mpbench -trace trace.json        # rw/50 per-stage commit-path decomposition
//	mpbench -connect host:7090 -dur 5s -threads 8
//	                                 # bank workload against a live mpserver/mpgateway
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"polardbmp/internal/core"
	"polardbmp/internal/figures"
)

func main() {
	fig := flag.String("fig", "all", "figure to run: 7,8,9,10,11,12,13,15,ablations,micro,all")
	quick := flag.Bool("quick", false, "trimmed sweep (fewer configs, shorter runs)")
	dur := flag.Duration("dur", 0, "measured duration per config (default 3s, quick 1.2s)")
	warmup := flag.Duration("warmup", 0, "warmup per config")
	threads := flag.Int("threads", 0, "threads per node (default 4)")
	scale := flag.Int("scale", 0, "latency time-scale factor (default 25)")
	nodes := flag.String("nodes", "", "comma-separated node counts (default 1,2,4,8)")
	cc := flag.String("cc", "", "concurrency-control engine: 2pl (default) or occ")
	repeats := flag.Int("repeats", 0, "with -snapshot: measurements per cell, median reported (default 3)")
	snapshot := flag.String("snapshot", "", "run the Fig7 read-write sweep + micro benches and write a JSON snapshot (with per-commit fabric op counts and the pre-batching baseline) to this path")
	ab := flag.String("ab", "", "run the interleaved A/B commit-path compare (old vs pipelined commit path alternating per time slice in one process) and write per-cell gain with spread as JSON to this path")
	tracePath := flag.String("trace", "", "run the rw/50 cell with the commit-path tracer on and write the per-stage latency/fabric-op decomposition as JSON to this path (honors -nodes; default 8)")
	slowTx := flag.Duration("slowtx", 0, "with -trace: also log transactions slower than this into the snapshot")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this path")
	memprofile := flag.String("memprofile", "", "write an allocation profile of the run to this path")
	connect := flag.String("connect", "", "run the bank invariant workload against a live mpserver/mpgateway session address instead of the in-process figures")
	flag.Parse()

	if *connect != "" {
		os.Exit(runConnect(*connect, *dur, *threads))
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memprofile != "" {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			_ = pprof.Lookup("allocs").WriteTo(f, 0)
		}
	}()

	if *cc != "" && !core.ValidCC(*cc) {
		fmt.Fprintf(os.Stderr, "unknown -cc engine %q (want 2pl or occ)\n", *cc)
		os.Exit(2)
	}
	o := figures.Options{
		Quick:    *quick,
		Duration: *dur,
		Warmup:   *warmup,
		Threads:  *threads,
		Scale:    *scale,
		CC:       *cc,
		Repeats:  *repeats,
	}
	if *nodes != "" {
		for _, part := range strings.Split(*nodes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "bad -nodes value %q\n", part)
				os.Exit(2)
			}
			o.Nodes = append(o.Nodes, n)
		}
	}

	if *tracePath != "" {
		start := time.Now()
		o.SlowTx = *slowTx
		if _, err := figures.TraceRun(o, *tracePath); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("[trace done in %v]\n", time.Since(start).Round(time.Second))
		return
	}

	if *ab != "" {
		start := time.Now()
		if _, err := figures.ABCompare(o, *ab); err != nil {
			fmt.Fprintf(os.Stderr, "ab: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("[ab done in %v]\n", time.Since(start).Round(time.Second))
		return
	}

	if *snapshot != "" {
		start := time.Now()
		if _, err := figures.Snapshot(o, *snapshot); err != nil {
			fmt.Fprintf(os.Stderr, "snapshot: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("[snapshot done in %v]\n", time.Since(start).Round(time.Second))
		return
	}

	run := func(name string) {
		start := time.Now()
		switch name {
		case "7":
			figures.Fig7(o)
		case "8":
			figures.Fig8(o)
		case "9":
			figures.Fig9(o)
		case "10":
			figures.Fig10(o)
		case "11":
			figures.Fig11(o)
		case "12":
			figures.Fig12(o)
		case "13":
			figures.Fig13(o)
		case "15":
			figures.Fig15(o)
		case "ablations":
			figures.Ablations(o)
		case "micro":
			figures.Micro(o)
		default:
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", name)
			os.Exit(2)
		}
		fmt.Printf("[%s done in %v]\n", name, time.Since(start).Round(time.Second))
	}

	if *fig == "all" {
		for _, name := range []string{"micro", "7", "8", "9", "10", "11", "12", "13", "15", "ablations"} {
			run(name)
		}
		return
	}
	run(*fig)
}
