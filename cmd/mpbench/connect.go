package main

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"polardbmp/internal/common"
	"polardbmp/internal/wire"
)

// runConnect drives a bank-transfer workload against a session-protocol
// endpoint (an mpserver or an mpgateway fronting several) and verifies the
// money-conservation invariant: concurrent random transfers between N
// accounts must never change the total balance, observed both by periodic
// snapshot-isolation sums while transfers are in flight and by a final sum
// after the last commit. Returns a non-zero exit code on any violation, so
// the proto-smoke harness can gate on it.
func runConnect(addr string, dur time.Duration, threads int) int {
	if dur <= 0 {
		dur = 3 * time.Second
	}
	if threads <= 0 {
		threads = 4
	}
	const accounts = 64
	const seed = 100
	want := accounts * seed

	setup, err := wire.DialSession(addr, wire.SessionConfig{Name: "mpbench-setup"})
	if err != nil {
		fmt.Fprintf(os.Stderr, "connect %s: %v\n", addr, err)
		return 1
	}
	fmt.Printf("connected to %s (%s), %d threads for %v\n", addr, setup.ServerName(), threads, dur)
	space, err := setup.CreateSpace("bank")
	if err != nil {
		fmt.Fprintf(os.Stderr, "create space: %v\n", err)
		return 1
	}
	tx, err := setup.Begin(0, 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "begin: %v\n", err)
		return 1
	}
	for i := 0; i < accounts; i++ {
		if err := tx.Upsert(space, acctKey(i), []byte(strconv.Itoa(seed))); err != nil {
			fmt.Fprintf(os.Stderr, "seed account: %v\n", err)
			return 1
		}
	}
	if err := tx.Commit(); err != nil {
		fmt.Fprintf(os.Stderr, "seed commit: %v\n", err)
		return 1
	}

	var commits, aborts, checks, violations atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Transfer workers: each its own client, so a gateway spreads them
	// across backends and the workload is genuinely multi-primary.
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := wire.DialSession(addr, wire.SessionConfig{Name: fmt.Sprintf("mpbench-%d", w)})
			if err != nil {
				fmt.Fprintf(os.Stderr, "worker dial: %v\n", err)
				return
			}
			defer cl.Close()
			rng := rand.New(rand.NewSource(int64(w)*7919 + 1))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if transfer(cl, space, rng) == nil {
					commits.Add(1)
				} else {
					aborts.Add(1)
				}
			}
		}(w)
	}

	// Checker: snapshot-isolation sums while transfers are in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(200 * time.Millisecond):
			}
			got, err := sumBalances(setup, space)
			if err != nil {
				continue // transient (e.g. backend restart); final check decides
			}
			checks.Add(1)
			if got != want {
				violations.Add(1)
				fmt.Fprintf(os.Stderr, "INVARIANT VIOLATION: mid-run balance sum %d, want %d\n", got, want)
			}
		}
	}()

	time.Sleep(dur)
	close(stop)
	wg.Wait()

	got, err := sumBalances(setup, space)
	if err != nil {
		fmt.Fprintf(os.Stderr, "final sum: %v\n", err)
		return 1
	}
	checks.Add(1)
	if got != want {
		violations.Add(1)
		fmt.Fprintf(os.Stderr, "INVARIANT VIOLATION: final balance sum %d, want %d\n", got, want)
	}
	setup.Close()

	c, a := commits.Load(), aborts.Load()
	fmt.Printf("commits=%d aborts=%d sum-checks=%d violations=%d (%.0f tx/s)\n",
		c, a, checks.Load(), violations.Load(), float64(c)/dur.Seconds())
	if violations.Load() > 0 {
		return 1
	}
	if c == 0 {
		fmt.Fprintln(os.Stderr, "no transaction ever committed")
		return 1
	}
	return 0
}

func acctKey(i int) []byte { return []byte(fmt.Sprintf("acct-%03d", i)) }

// transfer moves a random amount between two random accounts, locking rows
// in key order so transfers never deadlock each other.
func transfer(cl *wire.Client, space uint32, rng *rand.Rand) error {
	i, j := rng.Intn(64), rng.Intn(64)
	for i == j {
		j = rng.Intn(64)
	}
	if i > j {
		i, j = j, i
	}
	tx, err := cl.Begin(0, 2*time.Second)
	if err != nil {
		return err
	}
	fail := func(err error) error { _ = tx.Rollback(); return err }
	vi, err := tx.GetForUpdate(space, acctKey(i))
	if err != nil {
		return fail(err)
	}
	vj, err := tx.GetForUpdate(space, acctKey(j))
	if err != nil {
		return fail(err)
	}
	bi, _ := strconv.Atoi(string(vi))
	bj, _ := strconv.Atoi(string(vj))
	amt := rng.Intn(10) + 1
	if err := tx.Update(space, acctKey(i), []byte(strconv.Itoa(bi-amt))); err != nil {
		return fail(err)
	}
	if err := tx.Update(space, acctKey(j), []byte(strconv.Itoa(bj+amt))); err != nil {
		return fail(err)
	}
	return tx.Commit()
}

// sumBalances scans all accounts under snapshot isolation and returns the
// total; transfers committed before the read view are fully visible, so the
// sum is exact at any moment.
func sumBalances(cl *wire.Client, space uint32) (int, error) {
	tx, err := cl.Begin(1, 0)
	if err != nil {
		return 0, err
	}
	defer tx.Rollback()
	kvs, err := tx.Scan(space, nil, nil, 0)
	if err != nil {
		return 0, err
	}
	sum := 0
	for _, kv := range kvs {
		n, err := strconv.Atoi(string(kv.Value))
		if err != nil {
			return 0, fmt.Errorf("account %s holds %q: %w", kv.Key, kv.Value, common.ErrCorrupt)
		}
		sum += n
	}
	if err := tx.Commit(); err != nil && !errors.Is(err, common.ErrTxDone) {
		return 0, err
	}
	return sum, nil
}
