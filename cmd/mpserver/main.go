// Command mpserver hosts one PolarDB-MP primary as an OS process behind the
// wire session protocol. A seed process owns the shared substrate (PMFS +
// store) and optionally serves the fabric so satellite mpservers — full
// primaries in their own processes — can join the same cluster.
//
//	# seed: sessions on :7070, fabric for satellites on :7071, stats on :7072
//	$ mpserver -listen :7070 -fabric :7071 -http :7072 -data /var/lib/mp
//
//	# satellite: a second primary process joining the seed's fabric
//	$ mpserver -listen :7080 -join seedhost:7071
//
// Clients (mpshell -connect, mpbench -connect, mpgateway) speak the session
// protocol to -listen; GET /stats on -http returns the ClusterStats JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"polardbmp"
	"polardbmp/internal/common"
	"polardbmp/internal/core"
	"polardbmp/internal/netsrv"
	"polardbmp/internal/rdma"
	"polardbmp/internal/storage"
	"polardbmp/internal/wire"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7070", "session-protocol listener for clients and gateways")
	fabricAddr := flag.String("fabric", "", "fabric listener for satellite mpservers (seed mode)")
	join := flag.String("join", "", "a seed's -fabric address: run as a satellite primary of that cluster")
	data := flag.String("data", "", "data directory (seed mode; empty = in-memory)")
	httpAddr := flag.String("http", "", "HTTP listener serving GET /stats (ClusterStats JSON)")
	name := flag.String("name", "", "server name echoed in handshakes (default mpserver-<pid>)")
	pmfsReplicas := flag.Int("pmfs-replicas", 0, "shared-memory replication factor (seed mode; 0 = default 3, <2 disables)")
	cc := flag.String("cc", "", "concurrency-control engine: 2pl (default) or occ")
	fenceTTL := flag.Duration("fence-ttl", 0, "fenced-piggyback cache TTL for the storage uplink (satellite mode; 0 = default 100ms)")
	selfHeal := flag.Bool("selfheal", false, "lease-based failure detection: survivors fence and take over a silent node")
	leaseRenew := flag.Duration("lease-renew", 0, "membership heartbeat cadence under -selfheal (0 = default 15ms)")
	leaseTimeout := flag.Duration("lease-timeout", 0, "silence before peers declare a node dead under -selfheal (0 = default 90ms)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Printf("mpserver %s\n", polardbmp.Version)
		return
	}
	if *name == "" {
		*name = fmt.Sprintf("mpserver-%d", os.Getpid())
	}
	if *cc != "" && !core.ValidCC(*cc) {
		fmt.Fprintf(os.Stderr, "mpserver: unknown -cc engine %q (want 2pl or occ)\n", *cc)
		os.Exit(2)
	}
	cfg := core.Config{
		PmfsReplicas:       *pmfsReplicas,
		FenceTTL:           *fenceTTL,
		CC:                 *cc,
		SelfHeal:           *selfHeal,
		LeaseRenewInterval: *leaseRenew,
		LeaseTimeout:       *leaseTimeout,
	}
	if err := run(*listen, *fabricAddr, *join, *data, *httpAddr, *name, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "mpserver:", err)
		os.Exit(1)
	}
}

func run(listen, fabricAddr, join, data, httpAddr, name string, cfg core.Config) error {
	nc := &wire.NetCounters{}
	var (
		c   *core.Cluster
		n   *core.Node
		err error
	)
	switch {
	case join != "":
		// Satellite: every cross-node interaction rides the fabric to the seed.
		if fabricAddr != "" || data != "" {
			return fmt.Errorf("-fabric and -data are seed-mode flags, incompatible with -join")
		}
		c, n, err = core.JoinRemote(cfg, join, nc)
		if err != nil {
			return err
		}
		fmt.Printf("mpserver %s: joined %s as node %d\n", polardbmp.Version, join, n.ID())
	case data != "":
		// Seed over a persistent store; a non-empty directory is recovered
		// before serving.
		store, err := storage.OpenDir(data, storage.Latency{})
		if err != nil {
			return err
		}
		existing := store.PageCount() > 0
		c = core.NewClusterWithStore(cfg, store)
		if existing {
			if err := c.RecoverAll(); err != nil {
				return fmt.Errorf("recovering %s: %w", data, err)
			}
		}
		if n, err = c.AddNode(); err != nil {
			return err
		}
	default:
		c = core.NewCluster(cfg)
		if n, err = c.AddNode(); err != nil {
			return err
		}
	}
	defer c.Close()
	c.SetNetStats(func() core.NetStats { return netsrv.NetStats(nc) })

	if fabricAddr != "" {
		flis, err := net.Listen("tcp", fabricAddr)
		if err != nil {
			return err
		}
		fsrv := rdma.ServeFabric(c.Fabric(), flis, name, nc)
		defer fsrv.Close()
		fmt.Printf("mpserver %s: fabric for satellites on %s\n", polardbmp.Version, fsrv.Addr())
	}

	lis, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	be := netsrv.New(c, n)
	// Join info: what a new `mpserver -join` needs. A seed advertises its
	// own fabric listener; a satellite relays the address it joined through.
	ji := netsrv.JoinInfo{Cluster: name, FabricAddr: fabricAddr}
	if join != "" {
		ji.FabricAddr = join
	}
	be.SetJoinInfo(ji)
	srv := wire.ServeSessions(lis, name, be, nc)
	defer srv.Close()
	fmt.Printf("mpserver %s: node %d serving sessions on %s\n", polardbmp.Version, n.ID(), srv.Addr())

	if httpAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(c.Stats())
		})
		mux.HandleFunc("/topology", func(w http.ResponseWriter, r *http.Request) {
			b, err := c.TopologyJSON()
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadGateway)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(b)
		})
		// POST /drain?node=N gracefully drains a node hosted here; with no
		// node parameter it drains this daemon's own node.
		mux.HandleFunc("/drain", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				http.Error(w, "POST only", http.StatusMethodNotAllowed)
				return
			}
			id := int(n.ID())
			if q := r.URL.Query().Get("node"); q != "" {
				if _, err := fmt.Sscanf(q, "%d", &id); err != nil {
					http.Error(w, "bad node parameter", http.StatusBadRequest)
					return
				}
			}
			if err := c.DrainNode(common.NodeID(id)); err != nil {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			fmt.Fprintf(w, "node %d drained\n", id)
		})
		// POST /netfault injects connection-level faults on this process's
		// fabric links (JSON {"peer":"","mode":"partition|blackhole|flap|heal",
		// "ms":5000}); GET lists the active rules. The chaos harness cuts and
		// heals specific peer pairs here while the cluster is under load.
		mux.HandleFunc("/netfault", func(w http.ResponseWriter, r *http.Request) {
			switch r.Method {
			case http.MethodGet:
				w.Header().Set("Content-Type", "application/json")
				_ = json.NewEncoder(w).Encode(c.Fabric().Faults().Snapshot())
			case http.MethodPost:
				var req struct {
					Peer string `json:"peer"`
					Mode string `json:"mode"`
					Ms   int    `json:"ms"`
				}
				if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
					http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
					return
				}
				d := time.Duration(req.Ms) * time.Millisecond
				if err := c.Fabric().SetLinkFault(req.Peer, req.Mode, d); err != nil {
					http.Error(w, err.Error(), http.StatusBadRequest)
					return
				}
				fmt.Fprintf(w, "%s %q for %v\n", req.Mode, req.Peer, d)
			default:
				http.Error(w, "GET or POST", http.StatusMethodNotAllowed)
			}
		})
		// GET /goroutines reports the process's goroutine count — the chaos
		// harness's leak gate polls it on survivors after kills and heals.
		mux.HandleFunc("/goroutines", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintf(w, "%d\n", runtime.NumGoroutine())
		})
		mux.HandleFunc("/version", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintf(w, "mpserver %s\n", polardbmp.Version)
		})
		hlis, err := net.Listen("tcp", httpAddr)
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: mux}
		go func() { _ = hs.Serve(hlis) }()
		defer hs.Close()
		fmt.Printf("mpserver %s: stats endpoint on http://%s/stats\n", polardbmp.Version, hlis.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("mpserver: %v, shutting down\n", s)
	return nil
}
