package main

import (
	"errors"
	"testing"
)

// A backend that failed repeatedly must not stay shunned forever: clean
// probes alone (zero sessions routed to it) decay the failure EWMA back
// under the shun threshold.
func TestIdleProbeDecayUnshuns(t *testing.T) {
	b := &backend{addr: "x"}
	for i := 0; i < 10; i++ {
		b.mu.Lock()
		b.failLocked(errors.New("connection refused"))
		b.mu.Unlock()
	}
	if b.failEWMA < failEWMAShun {
		t.Fatalf("failEWMA %.3f after 10 failures, want >= shun threshold %.2f", b.failEWMA, failEWMAShun)
	}
	// The backend recovers; each probe succeeds and decays the average.
	probes := 0
	for b.failEWMA >= failEWMAShun {
		b.mu.Lock()
		b.healthy = true
		b.failEWMA *= failEWMADecay // what probeLoop does on a clean probe
		b.mu.Unlock()
		probes++
		if probes > 100 {
			t.Fatalf("failEWMA never decayed below %.2f (stuck at %.3f)", failEWMAShun, b.failEWMA)
		}
	}
	if probes > 10 {
		t.Fatalf("took %d clean probes to unshun, want <= 10", probes)
	}
}

// pick must prefer a clean backend over a flaky-but-healthy one, and a
// flaky one over a dead one; once the flaky backend's EWMA decays it
// competes on sessions again.
func TestPickRespectsFailureTiers(t *testing.T) {
	clean := &backend{addr: "clean", healthy: true}
	flaky := &backend{addr: "flaky", healthy: true, failEWMA: failEWMAShun + 0.1}
	dead := &backend{addr: "dead"}
	gw := &gateway{backends: []*backend{dead, flaky, clean}}

	if got := gw.pick(nil); got != clean {
		t.Fatalf("pick = %s, want clean", got.addr)
	}
	// Load the clean backend far past the flaky tier penalty: tiers still
	// dominate session counts.
	clean.active = 1 << 18
	if got := gw.pick(nil); got != flaky {
		t.Fatalf("pick with clean overloaded = %s, want flaky (tier beats load)", got.addr)
	}
	// Decay the flaky backend below the threshold: it is a normal candidate
	// again and wins on sessions.
	flaky.failEWMA = failEWMAShun / 2
	clean.active = 1
	if got := gw.pick(nil); got != flaky {
		t.Fatalf("pick after decay = %s, want flaky (fewest sessions)", got.addr)
	}
}

// Topology-aware routing: a draining backend ranks below any active one but
// above a dead one, and a drained backend is never picked at all — not even
// when it is the only one left.
func TestPickTopologyTiers(t *testing.T) {
	active := &backend{addr: "active", healthy: true, node: 1, state: "active"}
	draining := &backend{addr: "draining", healthy: true, node: 2, state: "draining"}
	drained := &backend{addr: "drained", healthy: true, node: 3, state: "drained"}
	gw := &gateway{backends: []*backend{drained, draining, active}}

	if got := gw.pick(nil); got != active {
		t.Fatalf("pick = %s, want active", got.addr)
	}
	// The draining tier dominates load: even a massively loaded active
	// backend beats a draining one...
	active.active = 1 << 18
	if got := gw.pick(nil); got != active {
		t.Fatalf("pick with active loaded = %s, want active (draining tier beats load)", got.addr)
	}
	// ...until the load exceeds the tier penalty itself.
	active.active = 1 << 20
	if got := gw.pick(nil); got != draining {
		t.Fatalf("pick with active saturated = %s, want draining", got.addr)
	}
	// Excluding the current backend (migration target selection) skips it.
	active.active = 0
	if got := gw.pick(active); got != draining {
		t.Fatalf("pick excluding active = %s, want draining", got.addr)
	}
	// A drained backend is gone for good: with nothing else routable there is
	// no backend at all.
	only := &gateway{backends: []*backend{drained}}
	if got := only.pick(nil); got != nil {
		t.Fatalf("pick among drained = %s, want nil", got.addr)
	}
}
