// Command mpgateway load-balances wire session-protocol clients across the
// primaries of a multi-process PolarDB-MP cluster. Each accepted session is
// pinned to one backend mpserver — transactions live on a single connection,
// so the gateway needs almost no transaction state — picked by health, load,
// and topology: backends that fail their ping probe are skipped, backends
// whose node is draining are deprioritized (and drained ones excluded), and
// ties break to the fewest live sessions.
//
//	$ mpgateway -listen :7090 -backends host1:7070,host2:7080 -http :7091
//
// Frames are relayed (and validated) individually in both directions, so the
// gateway's /stats endpoint reports real frame/byte/pipeline counters. The
// relay tracks just enough protocol state — open transactions and in-flight
// requests per session — to migrate a pinned session to another backend at a
// transaction boundary when its backend starts draining: the next OpBegin
// that arrives with nothing open and nothing in flight is preceded by a
// silent re-handshake against a healthy backend, so long-lived client
// connections follow the topology instead of dying with their primary.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"polardbmp"
	"polardbmp/internal/common"
	"polardbmp/internal/core"
	"polardbmp/internal/netsrv"
	"polardbmp/internal/wire"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7090", "session-protocol listener for clients")
	backends := flag.String("backends", "", "comma-separated mpserver session addresses (required)")
	httpAddr := flag.String("http", "", "HTTP listener serving GET /stats (gateway + backend health JSON)")
	probe := flag.Duration("probe", time.Second, "backend health-probe interval")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Printf("mpgateway %s\n", polardbmp.Version)
		return
	}
	var addrs []string
	for _, a := range strings.Split(*backends, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		fmt.Fprintln(os.Stderr, "mpgateway: -backends is required")
		os.Exit(2)
	}
	if err := run(*listen, addrs, *httpAddr, *probe); err != nil {
		fmt.Fprintln(os.Stderr, "mpgateway:", err)
		os.Exit(1)
	}
}

func run(listen string, addrs []string, httpAddr string, probe time.Duration) error {
	gw := &gateway{nc: &wire.NetCounters{}, stop: make(chan struct{})}
	for _, a := range addrs {
		gw.backends = append(gw.backends, &backend{addr: a})
	}
	for _, b := range gw.backends {
		gw.wg.Add(1)
		go gw.probeLoop(b, probe)
	}

	lis, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	go gw.acceptLoop(lis)
	fmt.Printf("mpgateway %s: %d backends, serving sessions on %s\n",
		polardbmp.Version, len(gw.backends), lis.Addr())

	if httpAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(gw.stats())
		})
		// GET /goroutines: the chaos harness's leak gate polls this while
		// killing backends under the gateway.
		mux.HandleFunc("/goroutines", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintf(w, "%d\n", runtime.NumGoroutine())
		})
		mux.HandleFunc("/version", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintf(w, "mpgateway %s\n", polardbmp.Version)
		})
		hlis, err := net.Listen("tcp", httpAddr)
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: mux}
		go func() { _ = hs.Serve(hlis) }()
		defer hs.Close()
		fmt.Printf("mpgateway %s: stats endpoint on http://%s/stats\n", polardbmp.Version, hlis.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("mpgateway: %v, shutting down\n", s)
	close(gw.stop)
	_ = lis.Close()
	gw.wg.Wait()
	return nil
}

// Failure-EWMA tuning: every observed failure (probe or session dial) mixes
// in at failEWMAGain; every successful probe decays the average — including
// on a backend carrying zero sessions, so a recovered backend earns its way
// back from probes alone instead of staying shunned forever. At one probe
// per second a fully-failed backend (EWMA 1.0) drops under the shun
// threshold in ~4 clean probes.
const (
	failEWMADecay = 0.7
	failEWMAGain  = 0.3
	failEWMAShun  = 0.5
)

// backend is one mpserver the gateway can route sessions to.
type backend struct {
	addr string

	mu       sync.Mutex
	healthy  bool
	slow     bool    // its own membership stats suspect a fail-slow peer
	failEWMA float64 // recent failure rate, decayed by idle probes
	active   int     // live proxied sessions
	sessions uint64
	lastErr  string
	// node is the backend's node id (from OpJoinInfo; 0 until learned) and
	// state its topology state ("active", "draining", "drained", ...; empty
	// against a v1 backend, which predates the admin ops).
	node  int
	state string
}

// routable reports whether new sessions may be pinned to the backend: a
// drained node is gone for good and never receives another session.
// Caller holds b.mu.
func (b *backend) routableLocked() bool { return b.state != "drained" }

// drainingLocked reports a backend whose node is leaving: existing sessions
// should migrate off it and new ones prefer anywhere else.
// Caller holds b.mu.
func (b *backend) drainingLocked() bool { return b.state == "draining" || b.state == "drained" }

// fail records one observed failure (probe or session dial).
// Caller holds b.mu.
func (b *backend) failLocked(err error) {
	b.healthy = false
	b.lastErr = err.Error()
	b.failEWMA = b.failEWMA*failEWMADecay + failEWMAGain
}

type gateway struct {
	backends []*backend
	nc       *wire.NetCounters
	stop     chan struct{}
	wg       sync.WaitGroup
}

// probeLoop keeps one backend's health fresh: a ping each tick, and every
// few ticks its stats document, whose membership section carries the
// fail-slow suspicions used to deprioritize it.
func (gw *gateway) probeLoop(b *backend, interval time.Duration) {
	defer gw.wg.Done()
	var cl *wire.Client
	defer func() {
		if cl != nil {
			cl.Close()
		}
	}()
	tick := 0
	for {
		var err error
		if cl == nil {
			cl, err = wire.DialSession(b.addr, wire.SessionConfig{Name: "mpgateway-probe", DialTimeout: interval})
		}
		if err == nil {
			err = cl.Ping()
		}
		slow := false
		state := ""
		if err == nil && tick%5 == 0 {
			if raw, serr := cl.StatsJSON(); serr == nil {
				var doc struct {
					Membership struct {
						SlowPeers []int `json:"slow_peers"`
					} `json:"membership"`
				}
				if json.Unmarshal(raw, &doc) == nil {
					slow = len(doc.Membership.SlowPeers) > 0
				}
			}
			// Topology probe (v2 admin ops): which node does this backend
			// front, and is it draining? A v1 backend answers ErrNoService
			// and simply never gets a topology state.
			b.mu.Lock()
			node := b.node
			b.mu.Unlock()
			if node == 0 {
				if raw, jerr := cl.JoinInfoJSON(); jerr == nil {
					var ji struct {
						Node int `json:"node"`
					}
					if json.Unmarshal(raw, &ji) == nil {
						node = ji.Node
					}
				}
			}
			if node != 0 {
				if raw, terr := cl.TopologyJSON(); terr == nil {
					var top struct {
						Nodes []struct {
							ID    int    `json:"id"`
							State string `json:"state"`
						} `json:"nodes"`
					}
					if json.Unmarshal(raw, &top) == nil {
						state = "drained" // a node absent from the topology is gone
						for _, n := range top.Nodes {
							if n.ID == node {
								state = n.State
							}
						}
					}
				}
			}
			b.mu.Lock()
			b.node = node
			if state != "" {
				b.state = state
			}
			b.mu.Unlock()
		}
		b.mu.Lock()
		if err != nil {
			b.failLocked(err)
		} else {
			b.healthy = true
			b.lastErr = ""
			// Idle-probe decay: a clean probe pays down the failure average
			// even when the backend carries no sessions.
			b.failEWMA *= failEWMADecay
			if tick%5 == 0 {
				b.slow = slow
			}
		}
		b.mu.Unlock()
		if err != nil && cl != nil {
			cl.Close()
			cl = nil
		}
		tick++
		select {
		case <-gw.stop:
			return
		case <-time.After(interval):
		}
	}
}

// pick returns the best backend other than exclude: healthy and unsuspected
// first, then draining, then healthy-but-flaky (recent failures or fail-slow
// suspicion), unhealthy last, fewest live sessions within a tier. Drained
// backends are excluded outright — that node left the topology for good and
// never receives another session.
func (gw *gateway) pick(exclude *backend) *backend {
	var best *backend
	bestScore := 1 << 30
	for _, b := range gw.backends {
		if b == exclude {
			continue
		}
		b.mu.Lock()
		routable := b.routableLocked()
		score := b.active
		switch {
		case !b.healthy:
			score += 1 << 20
		case b.drainingLocked():
			score += 1 << 19
		case b.failEWMA >= failEWMAShun:
			score += 1 << 15
		case b.slow:
			score += 1 << 10
		}
		b.mu.Unlock()
		if !routable {
			continue
		}
		if score < bestScore {
			best, bestScore = b, score
		}
	}
	return best
}

func (gw *gateway) acceptLoop(lis net.Listener) {
	for {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		gw.wg.Add(1)
		go gw.serve(conn)
	}
}

// session is one proxied client connection, pinned to a backend but
// migratable: the request loop owns the client->upstream direction and the
// migration decision, the pump goroutine owns upstream->client. The two
// counters gate migration — a session only moves when nothing is open and
// nothing is awaited, so the swap never strands a response.
//
// When the pinned backend dies mid-session (SIGKILL, partition), the session
// does not die with it: failover() answers every in-flight request with a
// typed status — ErrCommitAmbiguous for an OpCommit whose outcome the dead
// backend took with it (the client resolves it via OpTxStatus/ResolveTx
// against a survivor), ErrUnreachable for everything else — then re-pins the
// session to a healthy backend. Transaction handles opened on the dead
// backend are remembered as stale so later requests against them fail typed
// at the gateway instead of confusing the new backend.
type session struct {
	gw     *gateway
	client net.Conn
	hello  []byte // client hello payload, replayed at the new backend on migration

	// umu guards the pinned-upstream state (b, upstream, pumpDone, gen,
	// alive) across migration and failover; gen stamps each pinning so
	// concurrent death reports for the same upstream collapse into one
	// failover.
	umu      sync.Mutex
	b        *backend
	upstream net.Conn
	pumpDone chan struct{}
	gen      int
	dead     bool

	// cmu serializes writes to the client between the pump and the
	// stale-transaction synthesizer in the request loop.
	cmu sync.Mutex

	// pmu guards the in-flight request table and the transaction-handle
	// sets. pending remembers enough of each forwarded request to synthesize
	// its response if the upstream dies first; liveTx holds handles opened on
	// the current upstream, staleTx those stranded on dead ones.
	pmu     sync.Mutex
	pending map[uint64]pendingReq
	liveTx  map[uint64]bool
	staleTx map[uint64]bool

	openTx    atomic.Int64 // successful Begins minus Commit/Rollback responses
	inflight  atomic.Int64 // requests forwarded minus responses delivered
	migrating atomic.Bool  // pump: upstream close is a cutover, not a failure
}

// pendingReq is what failover needs to answer one in-flight request: the op
// (an OpCommit becomes ErrCommitAmbiguous, anything else ErrUnreachable) and
// the transaction handle it referenced, if any.
type pendingReq struct {
	op uint8
	tx uint64
}

// txHandleOps: requests whose payload leads with a transaction handle.
func txHandleOp(op uint8) bool { return op >= wire.OpGet && op <= wire.OpRollback }

// decClamped decrements a gate counter, refusing to go negative (a stray
// response would otherwise wedge the counter below zero and block migration
// forever; clamping just delays it until the counters realign).
func decClamped(a *atomic.Int64) {
	for {
		v := a.Load()
		if v <= 0 {
			return
		}
		if a.CompareAndSwap(v, v-1) {
			return
		}
	}
}

// dialBackend dials b and runs the session handshake with the given client
// hello payload, returning the open conn and the backend's hello-ack frame
// payload (copied). The ack's status is the backend's verdict; a refused
// handshake is returned as an error.
func (gw *gateway) dialBackend(b *backend, hello []byte) (net.Conn, []byte, error) {
	conn, err := net.DialTimeout("tcp", b.addr, 3*time.Second)
	if err != nil {
		b.mu.Lock()
		b.failLocked(err)
		b.mu.Unlock()
		return nil, nil, err
	}
	_, err = wire.WriteFrame(conn, nil, wire.Frame{Kind: wire.KindControl, Op: wire.SessHello, Payload: hello})
	var ack wire.Frame
	if err == nil {
		ack, _, err = wire.ReadFrame(conn, nil)
	}
	if err == nil && (ack.Kind != wire.KindControl || ack.Op != wire.SessHelloAck) {
		err = errors.New("mpgateway: backend handshake: unexpected frame")
	}
	if err == nil {
		err = wire.DecodeStatus(wire.NewReader(ack.Payload))
	}
	if err != nil {
		_ = conn.Close()
		return nil, nil, err
	}
	return conn, append([]byte(nil), ack.Payload...), nil
}

// serve pins one client session to one backend and proxies frames both ways
// until either side hangs up. The gateway terminates the handshake read so it
// can replay the client's hello on migration, but relays the backend's ack
// verbatim — the client still sees the backend's name and the negotiated
// protocol version end to end.
func (gw *gateway) serve(client net.Conn) {
	defer gw.wg.Done()
	defer client.Close()

	hf, _, err := wire.ReadFrame(client, nil)
	if err != nil || hf.Kind != wire.KindControl || hf.Op != wire.SessHello {
		return
	}
	gw.nc.FrameIn(hf.WireSize())
	hello := append([]byte(nil), hf.Payload...)

	b := gw.pick(nil)
	if b == nil {
		return
	}
	upstream, ack, err := gw.dialBackend(b, hello)
	if err != nil {
		return
	}
	gw.nc.ConnOpened(true)
	defer gw.nc.ConnClosed()
	af := wire.Frame{Kind: wire.KindControl, Op: wire.SessHelloAck, Payload: ack}
	if _, err := wire.WriteFrame(client, nil, af); err != nil {
		_ = upstream.Close()
		return
	}
	gw.nc.FrameOut(af.WireSize())

	b.mu.Lock()
	b.active++
	b.sessions++
	b.mu.Unlock()

	s := &session{
		gw: gw, client: client, hello: hello, b: b, upstream: upstream,
		pumpDone: make(chan struct{}),
		pending:  make(map[uint64]pendingReq),
		liveTx:   make(map[uint64]bool),
		staleTx:  make(map[uint64]bool),
	}
	go s.pump(upstream, s.pumpDone, 0)
	s.requestLoop()

	s.umu.Lock()
	s.dead = true // end of session: a late death report must not re-pin
	up, done, last := s.upstream, s.pumpDone, s.b
	s.umu.Unlock()
	_ = up.Close()
	<-done
	last.mu.Lock()
	last.active--
	last.mu.Unlock()
}

// requestLoop reads client frames and forwards them upstream, counting the
// in-flight window and, when the pinned backend starts draining, migrating
// the session at the next transaction boundary: an OpBegin arriving with no
// transaction open and no response outstanding is preceded by a silent
// re-handshake against a healthier backend.
func (s *session) requestLoop() {
	var rbuf, wbuf []byte
	for {
		f, buf, err := wire.ReadFrame(s.client, rbuf)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !errors.Is(err, io.ErrUnexpectedEOF) {
				s.gw.nc.CodecError()
			}
			return
		}
		rbuf = buf
		s.gw.nc.FrameIn(f.WireSize())
		if f.Kind == wire.KindRequest {
			var tx uint64
			if txHandleOp(f.Op) {
				tx = wire.NewReader(f.Payload).U64()
				s.pmu.Lock()
				stale := s.staleTx[tx]
				s.pmu.Unlock()
				if stale {
					// The handle belongs to a backend that died: answer here
					// instead of confusing the new backend with a foreign id.
					// The dead backend rolled the transaction back when the
					// gateway's connection to it dropped, so a rollback is
					// trivially satisfied and anything else failed transient —
					// a commit for a stale handle was never sent anywhere, so
					// it is a plain failure, not an ambiguous one.
					if f.Op == wire.OpRollback {
						s.synthesize(f.ID, f.Op, nil)
					} else {
						s.synthesize(f.ID, f.Op, common.ErrUnreachable)
					}
					continue
				}
			}
			if f.Op == wire.OpBegin && s.openTx.Load() == 0 && s.inflight.Load() == 0 {
				s.b.mu.Lock()
				leaving := s.b.drainingLocked()
				s.b.mu.Unlock()
				if leaving {
					s.migrate()
				}
			}
			s.pmu.Lock()
			s.pending[f.ID] = pendingReq{op: f.Op, tx: tx}
			s.pmu.Unlock()
			s.inflight.Add(1)
		}
		for {
			up, gen := s.up()
			if up == nil {
				return
			}
			wbuf, err = wire.WriteFrame(up, wbuf, f)
			if err == nil {
				break
			}
			if !s.failover(gen) {
				return
			}
			if f.Kind == wire.KindRequest {
				// failover answered every pending request — including this
				// one — so there is nothing left to forward.
				break
			}
		}
	}
}

// up snapshots the pinned upstream and its generation (nil once the session
// is dead).
func (s *session) up() (net.Conn, int) {
	s.umu.Lock()
	defer s.umu.Unlock()
	if s.dead {
		return nil, s.gen
	}
	return s.upstream, s.gen
}

// synthesize answers one client request at the gateway with a typed status.
func (s *session) synthesize(id uint64, op uint8, err error) {
	f := wire.Frame{Kind: wire.KindResponse, Op: op, ID: id, Payload: wire.AppendStatus(nil, err)}
	s.cmu.Lock()
	_, werr := wire.WriteFrame(s.client, nil, f)
	s.cmu.Unlock()
	if werr == nil {
		s.gw.nc.FrameOut(f.WireSize())
	}
}

// failover handles the death of the upstream pinned at generation gen:
// answer everything in flight with a typed status (an OpCommit's outcome
// died with the backend — ErrCommitAmbiguous tells the client to resolve it
// via OpTxStatus on a survivor; anything else failed transient), mark the
// open transaction handles stale, and re-pin the session to a healthy
// backend with a replayed hello. Idempotent per generation: late death
// reports for an already-replaced upstream are no-ops. Returns false when
// the session is over (no backend left; the client connection is closed).
func (s *session) failover(gen int) bool {
	s.umu.Lock()
	defer s.umu.Unlock()
	if s.dead {
		return false
	}
	if s.gen != gen {
		return true // a concurrent report already replaced this upstream
	}
	_ = s.upstream.Close()
	<-s.pumpDone // pump exited: client writes are ours until a new pump runs

	s.pmu.Lock()
	pend := s.pending
	s.pending = make(map[uint64]pendingReq)
	for tx := range s.liveTx {
		s.staleTx[tx] = true
	}
	s.liveTx = make(map[uint64]bool)
	s.pmu.Unlock()
	for id, pr := range pend {
		if pr.op == wire.OpCommit {
			s.synthesize(id, pr.op, common.ErrCommitAmbiguous)
		} else {
			s.synthesize(id, pr.op, common.ErrUnreachable)
		}
	}
	s.inflight.Store(0)
	s.openTx.Store(0)

	old := s.b
	old.mu.Lock()
	old.failLocked(errors.New("session upstream died"))
	old.mu.Unlock()

	nb := s.gw.pick(old)
	var conn net.Conn
	var err error
	if nb != nil {
		conn, _, err = s.gw.dialBackend(nb, s.hello)
	}
	if nb == nil || err != nil {
		// Nowhere to go: end the session; the client's next connect lands on
		// whatever the gateway has then.
		s.dead = true
		_ = s.client.Close()
		return false
	}
	s.gw.nc.ConnClosed()
	s.gw.nc.ConnOpened(true)
	old.mu.Lock()
	old.active--
	old.mu.Unlock()
	nb.mu.Lock()
	nb.active++
	nb.sessions++
	nb.mu.Unlock()

	s.b, s.upstream = nb, conn
	s.gen++
	s.pumpDone = make(chan struct{})
	go s.pump(conn, s.pumpDone, s.gen)
	return true
}

// migrate moves the session to a better backend: dial and handshake first,
// and only on success stop the old pump, swap the upstream, and restart. Any
// failure leaves the session where it was — the draining backend keeps
// serving in-flight work, so staying put is always safe.
func (s *session) migrate() {
	s.umu.Lock()
	defer s.umu.Unlock()
	if s.dead {
		return
	}
	nb := s.gw.pick(s.b)
	if nb == nil {
		return
	}
	nb.mu.Lock()
	better := nb.healthy && !nb.drainingLocked()
	nb.mu.Unlock()
	if !better {
		return
	}
	conn, _, err := s.gw.dialBackend(nb, s.hello)
	if err != nil {
		return
	}
	// Cut over. inflight == 0 means the old upstream owes nothing; closing it
	// stops the pump, whose exit confirms nobody is writing to the client.
	s.migrating.Store(true)
	_ = s.upstream.Close()
	<-s.pumpDone
	s.migrating.Store(false)
	s.gw.nc.ConnClosed()
	s.gw.nc.ConnOpened(true)

	s.b.mu.Lock()
	s.b.active--
	s.b.mu.Unlock()
	nb.mu.Lock()
	nb.active++
	nb.sessions++
	nb.mu.Unlock()

	s.b, s.upstream = nb, conn
	s.gen++
	s.pumpDone = make(chan struct{})
	go s.pump(conn, s.pumpDone, s.gen)
}

// pump relays upstream responses to the client, maintaining the migration
// gate: a delivered response closes one inflight slot, a successful OpBegin
// opens a transaction, and a Commit/Rollback response closes one whatever its
// status (the server forgets the transaction either way). Responses echo the
// request's op, so no request/response correlation state is needed.
func (s *session) pump(upstream net.Conn, done chan struct{}, gen int) {
	defer close(done)
	var rbuf, wbuf []byte
	for {
		f, buf, err := wire.ReadFrame(upstream, rbuf)
		if err != nil {
			if s.migrating.Load() {
				return // cutover: requestLoop owns the client now
			}
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !errors.Is(err, io.ErrUnexpectedEOF) {
				s.gw.nc.CodecError()
			}
			// The backend died for real. Hand the death to failover from a
			// fresh goroutine (it waits for this one's exit) — it answers the
			// in-flight window and re-pins the session instead of killing it.
			go s.failover(gen)
			return
		}
		rbuf = buf
		if f.Kind == wire.KindResponse {
			s.pmu.Lock()
			pr, tracked := s.pending[f.ID]
			delete(s.pending, f.ID)
			s.pmu.Unlock()
			switch f.Op {
			case wire.OpBegin:
				rd := wire.NewReader(f.Payload)
				if wire.DecodeStatus(rd) == nil {
					s.openTx.Add(1)
					if tx := rd.U64(); rd.Err() == nil {
						s.pmu.Lock()
						s.liveTx[tx] = true
						// Handles are per-upstream counters: a new backend
						// reissues numbers its dead predecessor used, and a
						// reborn handle belongs to the live transaction.
						delete(s.staleTx, tx)
						s.pmu.Unlock()
					}
				}
			case wire.OpCommit, wire.OpRollback:
				decClamped(&s.openTx)
				if tracked && pr.tx != 0 {
					s.pmu.Lock()
					delete(s.liveTx, pr.tx)
					s.pmu.Unlock()
				}
			}
		}
		s.cmu.Lock()
		wbuf, err = wire.WriteFrame(s.client, wbuf, f)
		s.cmu.Unlock()
		if err != nil {
			_ = upstream.Close()
			return
		}
		s.gw.nc.FrameOut(f.WireSize())
		if f.Kind == wire.KindResponse {
			decClamped(&s.inflight)
		}
	}
}

// stats is the /stats document: the gateway's own net counters plus each
// backend's health as the prober sees it.
func (gw *gateway) stats() any {
	type backendStats struct {
		Addr     string  `json:"addr"`
		Healthy  bool    `json:"healthy"`
		Node     int     `json:"node,omitempty"`
		State    string  `json:"state,omitempty"`
		Slow     bool    `json:"slow,omitempty"`
		FailEWMA float64 `json:"fail_ewma,omitempty"`
		Active   int     `json:"active_sessions"`
		Sessions uint64  `json:"total_sessions"`
		LastErr  string  `json:"last_err,omitempty"`
	}
	doc := struct {
		Version  string         `json:"version"`
		Backends []backendStats `json:"backends"`
		Net      core.NetStats  `json:"net"`
	}{Version: polardbmp.Version, Net: netsrv.NetStats(gw.nc)}
	for _, b := range gw.backends {
		b.mu.Lock()
		doc.Backends = append(doc.Backends, backendStats{
			Addr: b.addr, Healthy: b.healthy, Node: b.node, State: b.state,
			Slow: b.slow, FailEWMA: b.failEWMA,
			Active: b.active, Sessions: b.sessions, LastErr: b.lastErr,
		})
		b.mu.Unlock()
	}
	return doc
}
