// Command mpgateway load-balances wire session-protocol clients across the
// primaries of a multi-process PolarDB-MP cluster. Each accepted session is
// pinned to one backend mpserver — transactions live on a single connection,
// so the gateway needs no transaction state — picked by health and load:
// backends that fail their ping probe are skipped, backends whose own
// membership stats report fail-slow suspicions are deprioritized, and ties
// break to the fewest live sessions.
//
//	$ mpgateway -listen :7090 -backends host1:7070,host2:7080 -http :7091
//
// Frames are relayed (and validated) individually in both directions, so the
// gateway's /stats endpoint reports real frame/byte/pipeline counters.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"polardbmp"
	"polardbmp/internal/core"
	"polardbmp/internal/netsrv"
	"polardbmp/internal/wire"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7090", "session-protocol listener for clients")
	backends := flag.String("backends", "", "comma-separated mpserver session addresses (required)")
	httpAddr := flag.String("http", "", "HTTP listener serving GET /stats (gateway + backend health JSON)")
	probe := flag.Duration("probe", time.Second, "backend health-probe interval")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Printf("mpgateway %s\n", polardbmp.Version)
		return
	}
	var addrs []string
	for _, a := range strings.Split(*backends, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		fmt.Fprintln(os.Stderr, "mpgateway: -backends is required")
		os.Exit(2)
	}
	if err := run(*listen, addrs, *httpAddr, *probe); err != nil {
		fmt.Fprintln(os.Stderr, "mpgateway:", err)
		os.Exit(1)
	}
}

func run(listen string, addrs []string, httpAddr string, probe time.Duration) error {
	gw := &gateway{nc: &wire.NetCounters{}, stop: make(chan struct{})}
	for _, a := range addrs {
		gw.backends = append(gw.backends, &backend{addr: a})
	}
	for _, b := range gw.backends {
		gw.wg.Add(1)
		go gw.probeLoop(b, probe)
	}

	lis, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	go gw.acceptLoop(lis)
	fmt.Printf("mpgateway %s: %d backends, serving sessions on %s\n",
		polardbmp.Version, len(gw.backends), lis.Addr())

	if httpAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(gw.stats())
		})
		mux.HandleFunc("/version", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintf(w, "mpgateway %s\n", polardbmp.Version)
		})
		hlis, err := net.Listen("tcp", httpAddr)
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: mux}
		go func() { _ = hs.Serve(hlis) }()
		defer hs.Close()
		fmt.Printf("mpgateway %s: stats endpoint on http://%s/stats\n", polardbmp.Version, hlis.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("mpgateway: %v, shutting down\n", s)
	close(gw.stop)
	_ = lis.Close()
	gw.wg.Wait()
	return nil
}

// Failure-EWMA tuning: every observed failure (probe or session dial) mixes
// in at failEWMAGain; every successful probe decays the average — including
// on a backend carrying zero sessions, so a recovered backend earns its way
// back from probes alone instead of staying shunned forever. At one probe
// per second a fully-failed backend (EWMA 1.0) drops under the shun
// threshold in ~4 clean probes.
const (
	failEWMADecay = 0.7
	failEWMAGain  = 0.3
	failEWMAShun  = 0.5
)

// backend is one mpserver the gateway can route sessions to.
type backend struct {
	addr string

	mu       sync.Mutex
	healthy  bool
	slow     bool    // its own membership stats suspect a fail-slow peer
	failEWMA float64 // recent failure rate, decayed by idle probes
	active   int     // live proxied sessions
	sessions uint64
	lastErr  string
}

// fail records one observed failure (probe or session dial).
// Caller holds b.mu.
func (b *backend) failLocked(err error) {
	b.healthy = false
	b.lastErr = err.Error()
	b.failEWMA = b.failEWMA*failEWMADecay + failEWMAGain
}

type gateway struct {
	backends []*backend
	nc       *wire.NetCounters
	stop     chan struct{}
	wg       sync.WaitGroup
}

// probeLoop keeps one backend's health fresh: a ping each tick, and every
// few ticks its stats document, whose membership section carries the
// fail-slow suspicions used to deprioritize it.
func (gw *gateway) probeLoop(b *backend, interval time.Duration) {
	defer gw.wg.Done()
	var cl *wire.Client
	defer func() {
		if cl != nil {
			cl.Close()
		}
	}()
	tick := 0
	for {
		var err error
		if cl == nil {
			cl, err = wire.DialSession(b.addr, wire.SessionConfig{Name: "mpgateway-probe", DialTimeout: interval})
		}
		if err == nil {
			err = cl.Ping()
		}
		slow := false
		if err == nil && tick%5 == 0 {
			if raw, serr := cl.StatsJSON(); serr == nil {
				var doc struct {
					Membership struct {
						SlowPeers []int `json:"slow_peers"`
					} `json:"membership"`
				}
				if json.Unmarshal(raw, &doc) == nil {
					slow = len(doc.Membership.SlowPeers) > 0
				}
			}
		}
		b.mu.Lock()
		if err != nil {
			b.failLocked(err)
		} else {
			b.healthy = true
			b.lastErr = ""
			// Idle-probe decay: a clean probe pays down the failure average
			// even when the backend carries no sessions.
			b.failEWMA *= failEWMADecay
			if tick%5 == 0 {
				b.slow = slow
			}
		}
		b.mu.Unlock()
		if err != nil && cl != nil {
			cl.Close()
			cl = nil
		}
		tick++
		select {
		case <-gw.stop:
			return
		case <-time.After(interval):
		}
	}
}

// pick returns the best backend: healthy and unsuspected first, then
// healthy-but-flaky (recent failures or fail-slow suspicion), unhealthy
// last, fewest live sessions within a tier.
func (gw *gateway) pick() *backend {
	var best *backend
	bestScore := 1 << 30
	for _, b := range gw.backends {
		b.mu.Lock()
		score := b.active
		switch {
		case !b.healthy:
			score += 1 << 20
		case b.failEWMA >= failEWMAShun:
			score += 1 << 15
		case b.slow:
			score += 1 << 10
		}
		b.mu.Unlock()
		if score < bestScore {
			best, bestScore = b, score
		}
	}
	return best
}

func (gw *gateway) acceptLoop(lis net.Listener) {
	for {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		gw.wg.Add(1)
		go gw.serve(conn)
	}
}

// serve pins one client session to one backend and relays frames both ways
// until either side hangs up. The handshake passes through, so the client
// sees the backend's name and version checks stay end to end.
func (gw *gateway) serve(client net.Conn) {
	defer gw.wg.Done()
	defer client.Close()
	b := gw.pick()
	if b == nil {
		return
	}
	upstream, err := net.DialTimeout("tcp", b.addr, 3*time.Second)
	if err != nil {
		b.mu.Lock()
		b.failLocked(err)
		b.mu.Unlock()
		return
	}
	defer upstream.Close()
	gw.nc.ConnOpened(true)
	defer gw.nc.ConnClosed()
	b.mu.Lock()
	b.active++
	b.sessions++
	b.mu.Unlock()
	defer func() {
		b.mu.Lock()
		b.active--
		b.mu.Unlock()
	}()

	done := make(chan struct{}, 2)
	go func() { gw.relay(upstream, client, true); done <- struct{}{} }()
	go func() { gw.relay(client, upstream, false); done <- struct{}{} }()
	<-done
	// Unblock the other direction, then wait it out.
	_ = client.Close()
	_ = upstream.Close()
	<-done
}

// relay copies frames from src to dst, validating each and keeping the
// gateway's frame/byte counters honest. in marks the client->backend
// direction (requests enter, responses leave).
func (gw *gateway) relay(dst io.Writer, src io.Reader, in bool) {
	var rbuf, wbuf []byte
	for {
		f, buf, err := wire.ReadFrame(src, rbuf)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !errors.Is(err, io.ErrUnexpectedEOF) {
				gw.nc.CodecError()
			}
			return
		}
		rbuf = buf
		if in {
			gw.nc.FrameIn(f.WireSize())
		}
		wbuf, err = wire.WriteFrame(dst, wbuf, f)
		if err != nil {
			return
		}
		if !in {
			gw.nc.FrameOut(f.WireSize())
		}
	}
}

// stats is the /stats document: the gateway's own net counters plus each
// backend's health as the prober sees it.
func (gw *gateway) stats() any {
	type backendStats struct {
		Addr     string  `json:"addr"`
		Healthy  bool    `json:"healthy"`
		Slow     bool    `json:"slow,omitempty"`
		FailEWMA float64 `json:"fail_ewma,omitempty"`
		Active   int     `json:"active_sessions"`
		Sessions uint64  `json:"total_sessions"`
		LastErr  string  `json:"last_err,omitempty"`
	}
	doc := struct {
		Version  string         `json:"version"`
		Backends []backendStats `json:"backends"`
		Net      core.NetStats  `json:"net"`
	}{Version: polardbmp.Version, Net: netsrv.NetStats(gw.nc)}
	for _, b := range gw.backends {
		b.mu.Lock()
		doc.Backends = append(doc.Backends, backendStats{
			Addr: b.addr, Healthy: b.healthy, Slow: b.slow, FailEWMA: b.failEWMA,
			Active: b.active, Sessions: b.sessions, LastErr: b.lastErr,
		})
		b.mu.Unlock()
	}
	return doc
}
