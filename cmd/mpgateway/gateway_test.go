package main

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"

	"polardbmp/internal/common"
	"polardbmp/internal/wire"
)

// fakeBackend is a minimal wire.Backend whose commits can be stalled, so a
// test can arrange for an OpCommit to be in flight at the exact moment the
// backend dies — the window where the gateway must answer with
// ErrCommitAmbiguous rather than guess.
type fakeBackend struct {
	commitGate chan struct{} // nil = commit immediately; else commit blocks on it
}

func (f *fakeBackend) Begin(iso uint8, budget time.Duration) (wire.Tx, error) {
	return &fakeTx{be: f}, nil
}
func (f *fakeBackend) CreateSpace(name string) (uint32, error) { return 1, nil }
func (f *fakeBackend) SpaceID(name string) (uint32, error)     { return 1, nil }
func (f *fakeBackend) StatsJSON() ([]byte, error)              { return []byte(`{}`), nil }

type fakeTx struct {
	be *fakeBackend
}

func (t *fakeTx) Get(space uint32, key []byte) ([]byte, error)          { return []byte("v"), nil }
func (t *fakeTx) GetForUpdate(space uint32, key []byte) ([]byte, error) { return []byte("v"), nil }
func (t *fakeTx) Insert(space uint32, key, value []byte) error          { return nil }
func (t *fakeTx) Update(space uint32, key, value []byte) error          { return nil }
func (t *fakeTx) Upsert(space uint32, key, value []byte) error          { return nil }
func (t *fakeTx) Delete(space uint32, key []byte) error                 { return nil }
func (t *fakeTx) Scan(space uint32, from, to []byte, limit int) ([]wire.KV, error) {
	return nil, nil
}
func (t *fakeTx) Commit() error {
	if t.be.commitGate != nil {
		<-t.be.commitGate
	}
	return nil
}
func (t *fakeTx) Rollback() error { return nil }

// GTrxID marks the transaction globally identifiable: the v3 OpBegin token
// must be non-zero or the client will not arm commit-ambiguity handling.
func (t *fakeTx) GTrxID() common.GTrxID {
	return common.GTrxID{Node: 1, Trx: 42, Slot: 7, Version: 1}
}

var _ wire.GlobalTx = (*fakeTx)(nil)

// startFake serves a fakeBackend on an ephemeral port.
func startFake(t *testing.T, be *fakeBackend, name string) (addr string, stop func()) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := wire.ServeSessions(lis, name, be, &wire.NetCounters{})
	return lis.Addr().String(), srv.Close
}

// startGateway wires a gateway over the given backend addresses with fast
// probes, serving on an ephemeral port.
func startGateway(t *testing.T, addrs ...string) (gw *gateway, addr string, stop func()) {
	t.Helper()
	gw = &gateway{nc: &wire.NetCounters{}, stop: make(chan struct{})}
	for _, a := range addrs {
		gw.backends = append(gw.backends, &backend{addr: a})
	}
	for _, b := range gw.backends {
		gw.wg.Add(1)
		go gw.probeLoop(b, 50*time.Millisecond)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go gw.acceptLoop(lis)
	return gw, lis.Addr().String(), func() {
		close(gw.stop)
		_ = lis.Close()
		gw.wg.Wait()
	}
}

// waitHealthy blocks until the prober has marked addr healthy.
func waitHealthy(t *testing.T, gw *gateway, addr string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, b := range gw.backends {
			if b.addr == addr {
				b.mu.Lock()
				ok := b.healthy
				b.mu.Unlock()
				if ok {
					return
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("backend %s never became healthy", addr)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestGatewayAmbiguousCommitOnBackendDeath kills a backend while an OpCommit
// is in flight through the gateway. The client must receive the typed
// ErrCommitAmbiguous (with the transaction's global id attached), not a
// generic disconnect, and the session itself must survive by failing over to
// the second backend.
func TestGatewayAmbiguousCommitOnBackendDeath(t *testing.T) {
	stall := &fakeBackend{commitGate: make(chan struct{})}
	defer close(stall.commitGate) // unwedge the stuck handler at exit
	aAddr, aStop := startFake(t, stall, "backend-a")
	bAddr, bStop := startFake(t, &fakeBackend{}, "backend-b")
	defer bStop()

	gw, gwAddr, gwStop := startGateway(t, aAddr, bAddr)
	defer gwStop()
	waitHealthy(t, gw, aAddr)
	waitHealthy(t, gw, bAddr)

	// Force the session onto backend-a by making b look loaded.
	for _, b := range gw.backends {
		if b.addr == bAddr {
			b.mu.Lock()
			b.active += 10
			b.mu.Unlock()
		}
	}
	cl, err := wire.DialSession(gwAddr, wire.SessionConfig{Name: "chaos-test"})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	tx, err := cl.Begin(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tx.GTrx().Zero() {
		t.Fatal("v3 Begin did not carry a global transaction id")
	}

	commitErr := make(chan error, 1)
	go func() { commitErr <- tx.Commit() }()
	time.Sleep(100 * time.Millisecond) // let OpCommit reach the stalled backend
	// SIGKILL-equivalent: connections die with responses owed. Close waits
	// for the stalled commit handler, so it runs detached until the deferred
	// gate close unwedges it.
	go aStop()

	select {
	case err := <-commitErr:
		if !errors.Is(err, common.ErrCommitAmbiguous) {
			t.Fatalf("in-flight commit at backend death: want ErrCommitAmbiguous, got %v", err)
		}
		var amb *wire.AmbiguousCommitError
		if !errors.As(err, &amb) || amb.GTrx.Zero() {
			t.Fatalf("ambiguous commit lost its global id: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("commit hung after backend death")
	}

	// The session failed over: the same connection keeps working against b.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := cl.Ping(); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("session did not survive backend death")
		}
		time.Sleep(10 * time.Millisecond)
	}
	tx2, err := cl.Begin(0, 0)
	if err != nil {
		t.Fatalf("begin after failover: %v", err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatalf("commit after failover: %v", err)
	}
}

// TestGatewayStaleHandlesAfterFailover opens a transaction, kills its
// backend while the session is idle, and checks that later requests against
// the stranded handle fail typed at the gateway (the dead backend rolled it
// back on disconnect) while rollback succeeds trivially.
func TestGatewayStaleHandlesAfterFailover(t *testing.T) {
	aAddr, aStop := startFake(t, &fakeBackend{}, "backend-a")
	bAddr, bStop := startFake(t, &fakeBackend{}, "backend-b")
	defer bStop()

	gw, gwAddr, gwStop := startGateway(t, aAddr, bAddr)
	defer gwStop()
	waitHealthy(t, gw, aAddr)
	waitHealthy(t, gw, bAddr)
	for _, b := range gw.backends {
		if b.addr == bAddr {
			b.mu.Lock()
			b.active += 10
			b.mu.Unlock()
		}
	}

	cl, err := wire.DialSession(gwAddr, wire.SessionConfig{Name: "chaos-test"})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	tx, err := cl.Begin(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	aStop()

	// The gateway notices the death lazily (on the next forward) or eagerly
	// (pump read error) — either way the handle must come back typed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err = tx.Get(1, []byte("k"))
		if err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("requests against a dead backend's handle kept succeeding")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !errors.Is(err, common.ErrUnreachable) {
		t.Fatalf("stale-handle request: want ErrUnreachable, got %v", err)
	}
	// Once the failover has quarantined the handle, rollback is trivially
	// satisfied and reads stay typed.
	deadline = time.Now().Add(5 * time.Second)
	for {
		if _, err := tx.Get(1, []byte("k")); errors.Is(err, common.ErrUnreachable) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stale handle never quarantined")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatalf("rollback of stale handle: %v", err)
	}
}

// TestGatewayNoGoroutineLeakUnderRepeatedKills cycles sacrificial backends
// through kill/failover while a client keeps working, then checks the
// gateway-side goroutine count settles back to baseline — the regression
// gate for leaked pumps, probers, or half-dead sessions.
func TestGatewayNoGoroutineLeakUnderRepeatedKills(t *testing.T) {
	keepAddr, keepStop := startFake(t, &fakeBackend{}, "backend-keep")
	defer keepStop()

	base := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		sacAddr, sacStop := startFake(t, &fakeBackend{}, fmt.Sprintf("backend-sac-%d", i))
		gw, gwAddr, gwStop := startGateway(t, sacAddr, keepAddr)
		waitHealthy(t, gw, sacAddr)
		waitHealthy(t, gw, keepAddr)

		cl, err := wire.DialSession(gwAddr, wire.SessionConfig{Name: "leak-test"})
		if err != nil {
			t.Fatal(err)
		}
		tx, err := cl.Begin(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		_ = tx
		sacStop() // kill whichever backend the session landed on (or its peer)

		// Keep the session busy across the death so failover paths run.
		deadline := time.Now().Add(5 * time.Second)
		for {
			if err := cl.Ping(); err == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("session never recovered")
			}
			time.Sleep(10 * time.Millisecond)
		}
		cl.Close()
		gwStop()
	}

	// Everything closed: the goroutine count must return to (near) baseline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+3 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked under repeated kills: base %d, now %d", base, runtime.NumGoroutine())
		}
		time.Sleep(50 * time.Millisecond)
	}
}
