// Elastic cluster: scale a live PolarDB-MP cluster out and back in without
// stopping the workload. AddNode joins a new primary online; Drain removes
// one gracefully — in-flight transactions commit, new ones are refused with
// ErrDraining and route to another primary, and nothing is recovered or
// replayed. Topology shows every transition.
package main

import (
	"errors"
	"fmt"
	"log"

	"polardbmp"
)

func main() {
	db, err := polardbmp.Open(polardbmp.Options{Nodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	tab, err := db.CreateTable("events")
	if err != nil {
		log.Fatal(err)
	}

	// Scale out under load: node 3 joins the live cluster.
	n3, err := db.AddNode()
	if err != nil {
		log.Fatal(err)
	}
	tx, err := n3.Begin()
	if err != nil {
		log.Fatal(err)
	}
	if err := tx.Insert(tab, []byte("from-node-3"), []byte("hello")); err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	printTopology(db, "after scale-out")

	// Scale back in: drain node 3 gracefully. Its committed rows stay —
	// they live in shared memory and shared storage, not on the node.
	if err := db.Drain(3); err != nil {
		log.Fatal(err)
	}
	printTopology(db, "after drain")

	if _, err := n3.Begin(); err != nil {
		routed := errors.Is(err, polardbmp.ErrDraining) || errors.Is(err, polardbmp.ErrNodeDown)
		fmt.Printf("begin on drained node refused (%v) — route elsewhere: %v\n", routed, err)
	}
	tx2, err := db.Node(1).Begin()
	if err != nil {
		log.Fatal(err)
	}
	v, err := tx2.Get(tab, []byte("from-node-3"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node 1 still reads the drained node's row: %s\n", v)
	if err := tx2.Commit(); err != nil {
		log.Fatal(err)
	}

	// A future join reuses the drained slot.
	again, err := db.AddNode()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rejoined as node %d (slot reused)\n", again.ID())
	printTopology(db, "after rejoin")
}

func printTopology(db *polardbmp.Cluster, when string) {
	top, err := db.Topology()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology %s (epoch %d):\n", when, top.Epoch)
	for _, n := range top.Nodes {
		fmt.Printf("  node %d: %s (incarnation %d)\n", n.ID, n.State, n.Incarnation)
	}
}
