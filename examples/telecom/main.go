// Telecom: a TATP-style partitioned workload (§5.2, Figure 8) on four
// primaries. Subscribers are range-partitioned so each node works its own
// key range; because each data page then belongs to one node, PLocks are
// acquired once and retained (lazy release), and throughput scales with
// node count. The example prints the measured scaling 1→4 nodes.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"polardbmp"
)

const (
	subscribersPerNode = 1000
	threadsPerNode     = 2
)

func subKey(id int) []byte { return []byte(fmt.Sprintf("sub-%08d", id)) }

func main() {
	fmt.Println("raw (unscaled) engine throughput; on a box with few cores the")
	fmt.Println("larger clusters are CPU-bound — the figure harness (cmd/mpbench)")
	fmt.Println("uses scaled time to measure protocol scaling instead.")
	for _, nodes := range []int{1, 2, 4} {
		tps := run(nodes)
		fmt.Printf("%d node(s) x %d threads: %8.0f tx/s\n", nodes, threadsPerNode, tps)
	}
}

func run(nodes int) float64 {
	db, err := polardbmp.Open(polardbmp.Options{Nodes: nodes})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	sub, err := db.CreateTable("subscriber")
	if err != nil {
		log.Fatal(err)
	}
	// Load each node's partition through that node.
	for n := 1; n <= nodes; n++ {
		lo := (n - 1) * subscribersPerNode
		for base := lo; base < lo+subscribersPerNode; base += 200 {
			tx, err := db.Node(n).Begin()
			if err != nil {
				log.Fatal(err)
			}
			for i := base; i < base+200 && i < lo+subscribersPerNode; i++ {
				if err := tx.Insert(sub, subKey(i), []byte(fmt.Sprintf(`{"vlr":%d}`, i))); err != nil {
					log.Fatal(err)
				}
			}
			if err := tx.Commit(); err != nil {
				log.Fatal(err)
			}
		}
	}

	// 80% GetSubscriberData / 20% UpdateLocation, each node on its range.
	var ops atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for n := 1; n <= nodes; n++ {
		for th := 0; th < threadsPerNode; th++ {
			wg.Add(1)
			go func(n, th int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(n*100 + th)))
				node := db.Node(n)
				lo := (n - 1) * subscribersPerNode
				for {
					select {
					case <-stop:
						return
					default:
					}
					id := lo + rng.Intn(subscribersPerNode)
					tx, err := node.Begin()
					if err != nil {
						continue
					}
					if rng.Intn(10) < 8 {
						_, err = tx.Get(sub, subKey(id))
					} else {
						err = tx.Update(sub, subKey(id), []byte(fmt.Sprintf(`{"vlr":%d}`, rng.Intn(1<<16))))
					}
					if err != nil {
						tx.Rollback()
						continue
					}
					if tx.Commit() == nil {
						ops.Add(1)
					}
				}
			}(n, th)
		}
	}
	const dur = 2 * time.Second
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	return float64(ops.Load()) / dur.Seconds()
}
