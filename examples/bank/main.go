// Bank: concurrent money transfers from four primaries over shared
// accounts, exercising cross-node row locking (RLock via Lock Fusion),
// deadlock detection, and MVCC reads. The invariant — total money is
// conserved — is checked at the end from a node that made none of the
// transfers.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"

	"polardbmp"
)

const (
	nodes       = 4
	accounts    = 32
	initialEach = 1000
	transfers   = 200 // per node
)

func acctKey(i int) []byte { return []byte(fmt.Sprintf("acct-%03d", i)) }

func main() {
	db, err := polardbmp.Open(polardbmp.Options{Nodes: nodes})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	bank, err := db.CreateTable("bank")
	if err != nil {
		log.Fatal(err)
	}
	seed, err := db.Node(1).Begin()
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < accounts; i++ {
		if err := seed.Insert(bank, acctKey(i), []byte(strconv.Itoa(initialEach))); err != nil {
			log.Fatal(err)
		}
	}
	if err := seed.Commit(); err != nil {
		log.Fatal(err)
	}

	var committed, deadlocks atomic.Int64
	var wg sync.WaitGroup
	for n := 1; n <= nodes; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(n)))
			node := db.Node(n)
			for i := 0; i < transfers; i++ {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				if from == to {
					continue
				}
				amount := 1 + rng.Intn(20)
				for {
					err := transfer(node, bank, from, to, amount)
					if err == nil {
						committed.Add(1)
						break
					}
					if polardbmp.IsRetryable(err) {
						deadlocks.Add(1)
						continue
					}
					log.Fatalf("node %d transfer: %v", n, err)
				}
			}
		}(n)
	}
	wg.Wait()

	// Verify conservation from every node's view.
	for n := 1; n <= nodes; n++ {
		total, err := sumAll(db.Node(n), bank)
		if err != nil {
			log.Fatal(err)
		}
		if total != accounts*initialEach {
			log.Fatalf("node %d sees total %d, want %d — money not conserved!",
				n, total, accounts*initialEach)
		}
	}
	fmt.Printf("done: %d transfers committed across %d primaries, %d retries (deadlock/conflict), money conserved (%d)\n",
		committed.Load(), nodes, deadlocks.Load(), accounts*initialEach)
}

// transfer moves amount between two accounts with locking reads; lock
// acquisition order is randomized by the caller, so Lock Fusion's wait-for
// cycle detection gets real work.
func transfer(node *polardbmp.Node, bank polardbmp.Table, from, to, amount int) error {
	tx, err := node.Begin()
	if err != nil {
		return err
	}
	fail := func(err error) error { tx.Rollback(); return err }
	fromRaw, err := tx.GetForUpdate(bank, acctKey(from))
	if err != nil {
		return fail(err)
	}
	toRaw, err := tx.GetForUpdate(bank, acctKey(to))
	if err != nil {
		return fail(err)
	}
	fromBal, _ := strconv.Atoi(string(fromRaw))
	toBal, _ := strconv.Atoi(string(toRaw))
	if fromBal < amount {
		return tx.Rollback() // insufficient funds: no-op
	}
	if err := tx.Update(bank, acctKey(from), []byte(strconv.Itoa(fromBal-amount))); err != nil {
		return fail(err)
	}
	if err := tx.Update(bank, acctKey(to), []byte(strconv.Itoa(toBal+amount))); err != nil {
		return fail(err)
	}
	return tx.Commit()
}

func sumAll(node *polardbmp.Node, bank polardbmp.Table) (int, error) {
	tx, err := node.BeginSnapshot()
	if err != nil {
		return 0, err
	}
	defer tx.Commit()
	rows, err := tx.Scan(bank, nil, nil, 0)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, kv := range rows {
		v, _ := strconv.Atoi(string(kv.Value))
		total += v
	}
	return total, nil
}
