// Secondaryindex: maintaining global secondary indexes in PolarDB-MP
// (§5.4, Figure 13). Each index is simply another B-tree over the shared
// storage and shared memory, so an insert that updates the primary key and
// two secondary indexes is still a single-node transaction — no two-phase
// commit, unlike shared-nothing systems where each index lives in other
// partitions.
package main

import (
	"fmt"
	"log"
	"time"

	"polardbmp"
)

func main() {
	db, err := polardbmp.Open(polardbmp.Options{Nodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// An orders table with two global secondary indexes.
	orders, err := db.CreateTable("orders")
	if err != nil {
		log.Fatal(err)
	}
	byCustomer, err := db.CreateTable("orders_by_customer")
	if err != nil {
		log.Fatal(err)
	}
	byDate, err := db.CreateTable("orders_by_date")
	if err != nil {
		log.Fatal(err)
	}

	insertOrder := func(node *polardbmp.Node, orderID, customer, date string, payload []byte) error {
		tx, err := node.Begin()
		if err != nil {
			return err
		}
		fail := func(err error) error { tx.Rollback(); return err }
		if err := tx.Insert(orders, []byte(orderID), payload); err != nil {
			return fail(err)
		}
		// Index entries: secondary key + primary key -> primary key.
		if err := tx.Insert(byCustomer, []byte(customer+"/"+orderID), []byte(orderID)); err != nil {
			return fail(err)
		}
		if err := tx.Insert(byDate, []byte(date+"/"+orderID), []byte(orderID)); err != nil {
			return fail(err)
		}
		return tx.Commit()
	}

	// Insert orders from both primaries.
	start := time.Now()
	const n = 200
	for i := 0; i < n; i++ {
		node := db.Node(1 + i%2)
		orderID := fmt.Sprintf("order-%06d", i)
		customer := fmt.Sprintf("cust-%03d", i%17)
		date := fmt.Sprintf("2026-07-%02d", 1+i%28)
		if err := insertOrder(node, orderID, customer, date, []byte(`{"total":42}`)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("inserted %d orders with 2 GSIs each in %v (single-node transactions, no 2PC)\n",
		n, time.Since(start).Round(time.Millisecond))

	// Query by secondary key from the other node.
	tx, err := db.Node(2).Begin()
	if err != nil {
		log.Fatal(err)
	}
	defer tx.Commit()
	hits, err := tx.Scan(byCustomer, []byte("cust-003/"), []byte("cust-003/\xff"), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index lookup: customer cust-003 has %d orders:\n", len(hits))
	for _, kv := range hits[:min(3, len(hits))] {
		order, err := tx.Get(orders, kv.Value)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s -> %s\n", kv.Value, order)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
