// Quickstart: a two-primary PolarDB-MP cluster where both nodes write and
// read the same table — no distributed transactions, coherence via the
// disaggregated shared memory (PMFS).
package main

import (
	"fmt"
	"log"

	"polardbmp"
)

func main() {
	db, err := polardbmp.Open(polardbmp.Options{Nodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	accounts, err := db.CreateTable("accounts")
	if err != nil {
		log.Fatal(err)
	}

	// Write on primary 1.
	tx, err := db.Node(1).Begin()
	if err != nil {
		log.Fatal(err)
	}
	if err := tx.Insert(accounts, []byte("alice"), []byte("100")); err != nil {
		log.Fatal(err)
	}
	if err := tx.Insert(accounts, []byte("bob"), []byte("50")); err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("node 1: inserted alice=100, bob=50")

	// Read AND write on primary 2 — it is an equal primary, not a replica.
	tx2, err := db.Node(2).Begin()
	if err != nil {
		log.Fatal(err)
	}
	alice, err := tx2.Get(accounts, []byte("alice"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node 2: read alice=%s (transferred through the shared buffer pool)\n", alice)
	if err := tx2.Update(accounts, []byte("bob"), []byte("75")); err != nil {
		log.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("node 2: updated bob=75")

	// Node 1 sees node 2's committed write immediately.
	tx3, err := db.Node(1).Begin()
	if err != nil {
		log.Fatal(err)
	}
	bob, err := tx3.Get(accounts, []byte("bob"))
	if err != nil {
		log.Fatal(err)
	}
	if err := tx3.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node 1: read bob=%s\n", bob)

	rows, _ := listAll(db, accounts)
	fmt.Printf("final state: %v\n", rows)
}

func listAll(db *polardbmp.Cluster, tab polardbmp.Table) (map[string]string, error) {
	tx, err := db.Node(1).Begin()
	if err != nil {
		return nil, err
	}
	defer tx.Commit()
	kvs, err := tx.Scan(tab, nil, nil, 0)
	if err != nil {
		return nil, err
	}
	out := make(map[string]string, len(kvs))
	for _, kv := range kvs {
		out[string(kv.Key)] = string(kv.Value)
	}
	return out, nil
}
