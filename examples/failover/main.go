// Failover: cross-region high availability (§3). A standby region ships the
// primary cluster's write-ahead logs continuously; when the primary region
// is lost, the standby is promoted — committed transactions survive,
// uncommitted ones are rolled back — and serves as a fresh multi-primary
// cluster.
package main

import (
	"fmt"
	"log"
	"time"

	"polardbmp"
)

func main() {
	primary, err := polardbmp.Open(polardbmp.Options{Nodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	orders, err := primary.CreateTable("orders")
	if err != nil {
		log.Fatal(err)
	}

	// Standby region ships the WAL every 10ms.
	sb := primary.NewStandby()
	sb.Run(10 * time.Millisecond)

	// Business as usual on both primaries.
	for i := 0; i < 200; i++ {
		tx, err := primary.Node(1 + i%2).Begin()
		if err != nil {
			log.Fatal(err)
		}
		key := fmt.Sprintf("order-%05d", i)
		if err := tx.Insert(orders, []byte(key), []byte(`{"total":42}`)); err != nil {
			log.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
	}
	// Wait for the standby to catch up.
	for sb.Lag() != 0 {
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Println("primary region: 200 orders committed; standby lag: 0 bytes")

	// Regional failure: the primary region is gone. Promote the standby.
	primary.Close()
	start := time.Now()
	region2, err := sb.Promote()
	if err != nil {
		log.Fatal(err)
	}
	defer region2.Close()
	if _, err := region2.AddNode(); err != nil {
		log.Fatal(err)
	}
	if _, err := region2.AddNode(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("standby promoted to a 2-primary cluster in %v\n", time.Since(start).Round(time.Millisecond))

	// All committed data is there, and the new region serves writes.
	ordersNew, err := region2.CreateTable("orders") // opens the existing table
	if err != nil {
		log.Fatal(err)
	}
	tx, err := region2.Node(1).Begin()
	if err != nil {
		log.Fatal(err)
	}
	rows, err := tx.Scan(ordersNew, nil, nil, 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("promoted region sees %d orders\n", len(rows))

	tx2, _ := region2.Node(2).Begin()
	if err := tx2.Insert(ordersNew, []byte("order-after-failover"), []byte(`{"total":7}`)); err != nil {
		log.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("new writes accepted after failover")
}
