// Package btree implements the B-tree index used for every table and
// secondary index, built directly on PolarDB-MP's shared pages.
//
// Physical consistency across nodes follows §4.3.1: every page access holds
// the page's PLock (S to read, X to write), acquired top-down with latch
// coupling during descent; structure modifications (splits) run as
// mini-transactions that X-lock the whole root-to-leaf path, so no
// transaction — local or remote — can observe an inconsistent tree.
//
// The tree's root pointer lives in an "anchor" page whose id never changes;
// the anchor participates in PLocking, Buffer Fusion and logging like any
// other page, which is how all nodes agree on root changes.
package btree

import (
	"fmt"

	"polardbmp/internal/common"
	"polardbmp/internal/lockfusion"
	"polardbmp/internal/page"
)

// Ref is a pinned, latched, PLocked page handle returned by a Pager.
type Ref struct {
	// Page is the latched page; valid until Release.
	Page *page.Page
	// Mode is the PLock/latch mode held.
	Mode lockfusion.Mode
	// Opaque is for the Pager's bookkeeping (e.g. the LBP frame).
	Opaque any
}

// Pager is the engine surface the tree runs on: PLock + buffer + logging.
type Pager interface {
	// Acquire PLocks (mode), pins, and latches the page.
	Acquire(pg common.PageID, mode lockfusion.Mode) (*Ref, error)
	// Release unlatches, unpins, and releases one PLock reference.
	Release(ref *Ref)
	// AllocPage creates a new X-locked, latched, dirty page.
	AllocPage(space common.SpaceID, t page.Type, level uint8) (*Ref, error)
	// LogImage redo-logs the full page image (SMO physical logging),
	// assigning a fresh LLSN and marking the ref dirty. Caller holds X.
	LogImage(ref *Ref)
}

// Tree is a B-tree over a space. It is stateless apart from the anchor id,
// so every node constructs its own Tree for a space and all coordination
// happens through the pages.
type Tree struct {
	pager  Pager
	space  common.SpaceID
	anchor common.PageID
}

// New attaches to an existing tree by its anchor page.
func New(pager Pager, space common.SpaceID, anchor common.PageID) *Tree {
	return &Tree{pager: pager, space: space, anchor: anchor}
}

// Space returns the tree's tablespace id.
func (t *Tree) Space() common.SpaceID { return t.space }

// Anchor returns the anchor page id.
func (t *Tree) Anchor() common.PageID { return t.anchor }

// Create builds a fresh tree: an anchor pointing at an empty root leaf.
// It returns the anchor page id. The pages are logged and left to the
// pager's buffer management.
func Create(pager Pager, space common.SpaceID) (common.PageID, error) {
	root, err := pager.AllocPage(space, page.TypeLeaf, 0)
	if err != nil {
		return 0, err
	}
	pager.LogImage(root)
	anchor, err := pager.AllocPage(space, page.TypeInternal, anchorLevel)
	if err != nil {
		pager.Release(root)
		return 0, err
	}
	anchor.Page.SetChild(nil, root.Page.ID)
	setRootLevelHint(anchor.Page, 0)
	pager.LogImage(anchor)
	id := anchor.Page.ID
	pager.Release(anchor)
	pager.Release(root)
	return id, nil
}

// anchorLevel marks the anchor page; it sits "above" any real level.
const anchorLevel = 0xFF

// Leaf descends to the leaf owning key, holding S PLocks on internal pages
// with latch coupling, and returns the leaf locked in leafMode. The caller
// must Release the returned ref.
func (t *Tree) Leaf(key []byte, leafMode lockfusion.Mode) (*Ref, error) {
	cur, err := t.pager.Acquire(t.anchor, lockfusion.ModeS)
	if err != nil {
		return nil, err
	}
	for {
		child := cur.Page.ChildFor(key)
		if child == common.InvalidPageID {
			t.pager.Release(cur)
			return nil, fmt.Errorf("btree: space %d: no child for key on page %d: %w",
				t.space, cur.Page.ID, common.ErrCorrupt)
		}
		mode := lockfusion.ModeS
		if cur.Page.Level == 1 || (cur.Page.Level == anchorLevel && childIsLeaf(cur)) {
			mode = leafMode
		}
		next, err := t.pager.Acquire(child, mode)
		if err != nil {
			t.pager.Release(cur)
			return nil, err
		}
		t.pager.Release(cur)
		if next.Page.Type == page.TypeLeaf {
			return next, nil
		}
		cur = next
	}
}

// childIsLeaf reports whether the anchor's root child is a leaf (height-1
// tree), from the level hint stored beside the root pointer. The anchor is
// read under its PLock and updated (and logged) only by root-split SMOs
// under X, so the hint is always current.
func childIsLeaf(anchor *Ref) bool {
	r := anchor.Page.Rows
	if len(r) == 0 {
		return false
	}
	v := r[0].Head().Value
	return len(v) >= 9 && v[8] == 0
}

// rootValue encodes a root pointer with its level hint for the anchor.
func rootValue(id common.PageID, level uint8) []byte {
	v := page.ChildValue(id)
	return append(v, level)
}

// LeafSafe is like Leaf but retries if the descent lands on a leaf in a
// weaker mode than requested (defense in depth against hint corruption).
func (t *Tree) LeafSafe(key []byte, leafMode lockfusion.Mode) (*Ref, error) {
	for attempt := 0; attempt < 4; attempt++ {
		ref, err := t.Leaf(key, leafMode)
		if err != nil {
			return nil, err
		}
		if ref.Mode.Covers(leafMode) {
			return ref, nil
		}
		// Wrong mode (stale hint): release and retry; the next descent
		// sees the refreshed level fields.
		t.pager.Release(ref)
	}
	return nil, fmt.Errorf("btree: space %d: could not reach leaf for key in mode %v", t.space, leafMode)
}

// First returns the leftmost leaf in the given mode (scan start).
func (t *Tree) First(leafMode lockfusion.Mode) (*Ref, error) {
	return t.LeafSafe(nil, leafMode)
}

// Next moves a scan to the right sibling of ref, releasing ref. It returns
// (nil, nil) at the end of the leaf chain. Coupling left-to-right is safe:
// all multi-page holds in the system order pages left-to-right or top-down.
func (t *Tree) Next(ref *Ref, leafMode lockfusion.Mode) (*Ref, error) {
	nextID := ref.Page.Next
	t.pager.Release(ref)
	if nextID == common.InvalidPageID {
		return nil, nil
	}
	return t.pager.Acquire(nextID, leafMode)
}

// SplitFor runs the structure-modification mini-transaction that makes room
// for `need` more bytes on the leaf owning key. It is a two-phase SMO: an
// S-mode descent plans which levels must split, then only the affected
// subpath — from the deepest ancestor that can absorb a separator without
// itself splitting, down to the leaf — is X-locked (top-down, revalidating
// the routing) and split bottom-up. The tree anchor is X-locked only for
// root splits, so concurrent SMOs under different subtrees proceed in
// parallel, per §4.3.1's mini-transaction design. All modified pages are
// image-logged under their X PLocks before the mini-transaction commits.
func (t *Tree) SplitFor(key []byte, need int) error {
	for attempt := 0; attempt < 24; attempt++ {
		done, err := t.trySplit(key, need)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
	// Persistent revalidation failure: heavy concurrent restructuring.
	// Surface it as retryable so the transaction layer backs off.
	return fmt.Errorf("btree: space %d: SMO did not converge: %w", t.space, common.ErrLockTimeout)
}

// sepCost over-approximates the parent-entry bytes a split inserts.
func sepCost(key []byte) int { return len(key) + 96 }

// trySplit is one optimistic SMO attempt; done=false asks for a retry.
func (t *Tree) trySplit(key []byte, need int) (bool, error) {
	// Phase 1: plan with a read-only descent (latch-coupled S locks).
	type level struct {
		id   common.PageID
		size int
	}
	var plan []level
	cur, err := t.pager.Acquire(t.anchor, lockfusion.ModeS)
	if err != nil {
		return false, err
	}
	plan = append(plan, level{t.anchor, cur.Page.SizeEstimate()})
	for cur.Page.Type != page.TypeLeaf {
		child := cur.Page.ChildFor(key)
		if child == common.InvalidPageID {
			t.pager.Release(cur)
			return false, fmt.Errorf("btree: space %d: broken routing during SMO: %w", t.space, common.ErrCorrupt)
		}
		next, err := t.pager.Acquire(child, lockfusion.ModeS)
		if err != nil {
			t.pager.Release(cur)
			return false, err
		}
		t.pager.Release(cur)
		plan = append(plan, level{child, next.Page.SizeEstimate()})
		cur = next
	}
	leafSize := cur.Page.SizeEstimate()
	t.pager.Release(cur)
	if leafSize+need <= page.SplitThreshold {
		return true, nil // raced: room already
	}
	// lockFrom: deepest ancestor that absorbs a separator without
	// overflowing; everything below it splits. Index 0 is the anchor
	// (root split).
	sep := sepCost(key)
	lockFrom := 0
	for i := len(plan) - 2; i >= 1; i-- {
		if plan[i].size+sep <= page.SplitThreshold {
			lockFrom = i
			break
		}
	}

	// Phase 2: X-lock the subpath top-down, revalidating the routing.
	var path []*Ref
	release := func() {
		for i := len(path) - 1; i >= 0; i-- {
			t.pager.Release(path[i])
		}
	}
	top, err := t.pager.Acquire(plan[lockFrom].id, lockfusion.ModeX)
	if err != nil {
		return false, err
	}
	path = append(path, top)
	for i := lockFrom; i < len(plan)-1; i++ {
		child := path[len(path)-1].Page.ChildFor(key)
		if child != plan[i+1].id {
			release()
			return false, nil // routing changed: retry
		}
		next, err := t.pager.Acquire(child, lockfusion.ModeX)
		if err != nil {
			release()
			return false, err
		}
		path = append(path, next)
	}
	leaf := path[len(path)-1]
	if leaf.Page.Type != page.TypeLeaf {
		release()
		return false, nil // structure changed: retry
	}
	if leaf.Page.SizeEstimate()+need <= page.SplitThreshold {
		release()
		return true, nil // another SMO already made room
	}
	// The ceiling must still absorb the separators (it may have grown
	// since the plan); the anchor handles root splits itself.
	if lockFrom > 0 && path[0].Page.SizeEstimate()+sep > page.SplitThreshold {
		release()
		return false, nil // plan stale: retry with a higher ceiling
	}

	// Phase 3: split bottom-up within the locked subpath. path[0] is the
	// ceiling (anchor when lockFrom == 0).
	if err := t.splitLocked(path, need); err != nil {
		release()
		return false, err
	}
	release()
	return true, nil
}

// splitLocked performs the bottom-up splits over an X-locked subpath whose
// first element is the non-splitting ceiling (or the anchor).
func (t *Tree) splitLocked(path []*Ref, need int) error {
	for i := len(path) - 1; i >= 1; i-- {
		ref := path[i]
		slack := 0
		if i == len(path)-1 {
			slack = need
		}
		if ref.Page.SizeEstimate()+slack <= page.SplitThreshold {
			break
		}
		if len(ref.Page.Rows) < 2 {
			return fmt.Errorf("btree: space %d: page %d oversized with %d rows (value too large)",
				t.space, ref.Page.ID, len(ref.Page.Rows))
		}
		right, err := t.pager.AllocPage(t.space, ref.Page.Type, ref.Page.Level)
		if err != nil {
			return err
		}
		mid := len(ref.Page.Rows) / 2
		sep := append([]byte(nil), ref.Page.Rows[mid].Key...)
		right.Page.Rows = append(right.Page.Rows, ref.Page.Rows[mid:]...)
		ref.Page.Rows = ref.Page.Rows[:mid:mid]
		if ref.Page.Type == page.TypeLeaf {
			right.Page.Next = ref.Page.Next
			ref.Page.Next = right.Page.ID
		}
		parent := path[i-1]
		if parent.Page.Level == anchorLevel && i == 1 {
			// Root split: build a new root above ref and right.
			newRoot, err := t.pager.AllocPage(t.space, page.TypeInternal, ref.Page.Level+1)
			if err != nil {
				t.pager.Release(right)
				return err
			}
			newRoot.Page.SetChild(nil, ref.Page.ID)
			newRoot.Page.SetChild(sep, right.Page.ID)
			parent.Page.Rows = nil
			parent.Page.SetChild(nil, newRoot.Page.ID)
			setRootLevelHint(parent.Page, newRoot.Page.Level)
			t.pager.LogImage(ref)
			t.pager.LogImage(right)
			t.pager.LogImage(newRoot)
			t.pager.LogImage(parent)
			t.pager.Release(newRoot)
			t.pager.Release(right)
			break
		}
		parent.Page.SetChild(sep, right.Page.ID)
		t.pager.LogImage(ref)
		t.pager.LogImage(right)
		t.pager.LogImage(parent)
		t.pager.Release(right)
	}
	return nil
}

// UnlinkEmptyLeaf is the shrink half of structure modification: if the leaf
// owning key is empty (all rows purged), it is spliced out of the leaf chain
// and its routing entry removed from the parent, under a mini-transaction
// holding X PLocks on parent, left sibling and the leaf. The leftmost leaf
// under a parent is never unlinked (its routing entry is the subtree's lower
// bound), and the root leaf never shrinks away. Returns true if a leaf was
// unlinked. The orphaned page is left to the page allocator (never reused,
// like a freed extent awaiting truncation).
func (t *Tree) UnlinkEmptyLeaf(key []byte) (bool, error) {
	// Descend with S to find the parent of the leaf (level 1 page).
	cur, err := t.pager.Acquire(t.anchor, lockfusion.ModeS)
	if err != nil {
		return false, err
	}
	for cur.Page.Type != page.TypeLeaf && cur.Page.Level != 1 {
		child := cur.Page.ChildFor(key)
		if child == common.InvalidPageID {
			t.pager.Release(cur)
			return false, fmt.Errorf("btree: space %d: broken routing: %w", t.space, common.ErrCorrupt)
		}
		next, err := t.pager.Acquire(child, lockfusion.ModeS)
		if err != nil {
			t.pager.Release(cur)
			return false, err
		}
		t.pager.Release(cur)
		cur = next
	}
	if cur.Page.Type == page.TypeLeaf {
		// Height-1 tree: the root leaf is never unlinked.
		t.pager.Release(cur)
		return false, nil
	}
	parentID := cur.Page.ID
	t.pager.Release(cur)

	// Re-acquire the parent in X and locate the leaf and its left sibling
	// under the lock (the structure may have changed since the descent).
	parent, err := t.pager.Acquire(parentID, lockfusion.ModeX)
	if err != nil {
		return false, err
	}
	release := func(refs ...*Ref) {
		for i := len(refs) - 1; i >= 0; i-- {
			t.pager.Release(refs[i])
		}
	}
	if parent.Page.Type != page.TypeInternal || parent.Page.Level != 1 {
		release(parent)
		return false, nil // structure changed: give up quietly
	}
	idx := routeIndex(parent.Page, key)
	if idx <= 0 {
		// Leftmost child (or no route): never unlinked.
		release(parent)
		return false, nil
	}
	leafID := page.ChildEntry(parent.Page.Rows[idx].Head())
	leftID := page.ChildEntry(parent.Page.Rows[idx-1].Head())
	// Lock order: left sibling before right (scan order), both after the
	// parent (descent order).
	left, err := t.pager.Acquire(leftID, lockfusion.ModeX)
	if err != nil {
		release(parent)
		return false, err
	}
	leaf, err := t.pager.Acquire(leafID, lockfusion.ModeX)
	if err != nil {
		release(parent, left)
		return false, err
	}
	if leaf.Page.Type != page.TypeLeaf || len(leaf.Page.Rows) != 0 ||
		left.Page.Type != page.TypeLeaf || left.Page.Next != leafID {
		release(parent, left, leaf)
		return false, nil // raced with inserts or another SMO
	}
	left.Page.Next = leaf.Page.Next
	parent.Page.Rows = append(parent.Page.Rows[:idx], parent.Page.Rows[idx+1:]...)
	t.pager.LogImage(left)
	t.pager.LogImage(parent)
	t.pager.LogImage(leaf) // final (empty, unlinked) image for replay
	release(parent, left, leaf)
	return true, nil
}

// routeIndex returns the index of the routing entry ChildFor(key) uses.
func routeIndex(p *page.Page, key []byte) int {
	i, found := p.Search(key)
	if found {
		return i
	}
	return i - 1
}

// setRootLevelHint stores the root's level beside its pointer in the anchor.
func setRootLevelHint(anchor *page.Page, level uint8) {
	if len(anchor.Rows) == 0 {
		return
	}
	head := anchor.Rows[0].Head()
	head.Value = rootValue(page.ChildEntry(head), level)
}

// Height walks the leftmost spine and returns the tree height (leaf = 1);
// a diagnostic helper for tests.
func (t *Tree) Height() (int, error) {
	cur, err := t.pager.Acquire(t.anchor, lockfusion.ModeS)
	if err != nil {
		return 0, err
	}
	h := 0
	for {
		child := cur.Page.ChildFor(nil)
		if child == common.InvalidPageID && cur.Page.Type == page.TypeInternal && cur.Page.Level != anchorLevel {
			t.pager.Release(cur)
			return 0, fmt.Errorf("btree: empty internal page %d", cur.Page.ID)
		}
		if cur.Page.Type == page.TypeLeaf {
			t.pager.Release(cur)
			return h, nil
		}
		next, err := t.pager.Acquire(child, lockfusion.ModeS)
		if err != nil {
			t.pager.Release(cur)
			return 0, err
		}
		t.pager.Release(cur)
		cur = next
		h++
	}
}
