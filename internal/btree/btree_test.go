package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"polardbmp/internal/common"
	"polardbmp/internal/lockfusion"
	"polardbmp/internal/page"
)

// memPager is a minimal single-process Pager: per-page RWMutex standing in
// for PLock+latch, pages in a map, logging counted but discarded.
type memPager struct {
	mu     sync.Mutex
	pages  map[common.PageID]*page.Page
	locks  map[common.PageID]*sync.RWMutex
	nextID common.PageID
	logged int
}

func newMemPager() *memPager {
	return &memPager{
		pages:  make(map[common.PageID]*page.Page),
		locks:  make(map[common.PageID]*sync.RWMutex),
		nextID: 1,
	}
}

func (m *memPager) lockOf(id common.PageID) *sync.RWMutex {
	m.mu.Lock()
	defer m.mu.Unlock()
	l := m.locks[id]
	if l == nil {
		l = &sync.RWMutex{}
		m.locks[id] = l
	}
	return l
}

func (m *memPager) Acquire(pg common.PageID, mode lockfusion.Mode) (*Ref, error) {
	l := m.lockOf(pg)
	if mode == lockfusion.ModeX {
		l.Lock()
	} else {
		l.RLock()
	}
	m.mu.Lock()
	p := m.pages[pg]
	m.mu.Unlock()
	if p == nil {
		if mode == lockfusion.ModeX {
			l.Unlock()
		} else {
			l.RUnlock()
		}
		return nil, fmt.Errorf("mempager: page %d: %w", pg, common.ErrNotFound)
	}
	return &Ref{Page: p, Mode: mode, Opaque: l}, nil
}

func (m *memPager) Release(ref *Ref) {
	l := ref.Opaque.(*sync.RWMutex)
	if ref.Mode == lockfusion.ModeX {
		l.Unlock()
	} else {
		l.RUnlock()
	}
}

func (m *memPager) AllocPage(space common.SpaceID, t page.Type, level uint8) (*Ref, error) {
	m.mu.Lock()
	id := m.nextID
	m.nextID++
	p := page.New(id, space, t)
	p.Level = level
	m.pages[id] = p
	l := m.locks[id]
	if l == nil {
		l = &sync.RWMutex{}
		m.locks[id] = l
	}
	m.mu.Unlock()
	l.Lock()
	return &Ref{Page: p, Mode: lockfusion.ModeX, Opaque: l}, nil
}

func (m *memPager) LogImage(ref *Ref) {
	m.mu.Lock()
	m.logged++
	m.mu.Unlock()
	ref.Page.LLSN++
}

func key(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }

// insert puts a single-version row through the tree's public surface the
// way the engine does: X leaf, split when full, insert.
func insert(t *testing.T, tr *Tree, k, v []byte) {
	t.Helper()
	for attempt := 0; ; attempt++ {
		if attempt > 50 {
			t.Fatalf("insert %q: too many split retries", k)
		}
		ref, err := tr.LeafSafe(k, lockfusion.ModeX)
		if err != nil {
			t.Fatal(err)
		}
		need := len(k) + len(v) + 64
		if ref.Page.SizeEstimate()+need > page.SplitThreshold {
			tr.pager.Release(ref)
			if err := tr.SplitFor(k, need); err != nil {
				t.Fatal(err)
			}
			continue
		}
		ref.Page.InsertVersion(k, page.Version{Value: append([]byte(nil), v...)})
		tr.pager.Release(ref)
		return
	}
}

func newTree(t *testing.T) (*memPager, *Tree) {
	t.Helper()
	mp := newMemPager()
	anchor, err := Create(mp, 1)
	if err != nil {
		t.Fatal(err)
	}
	return mp, New(mp, 1, anchor)
}

func TestCreateAndEmptyLookup(t *testing.T) {
	_, tr := newTree(t)
	ref, err := tr.LeafSafe(key(1), lockfusion.ModeS)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Page.Type != page.TypeLeaf || len(ref.Page.Rows) != 0 {
		t.Fatalf("unexpected leaf: %+v", ref.Page)
	}
	tr.pager.Release(ref)
	h, err := tr.Height()
	if err != nil || h != 1 {
		t.Fatalf("height = %d, %v", h, err)
	}
}

func TestLeafModes(t *testing.T) {
	_, tr := newTree(t)
	for _, mode := range []lockfusion.Mode{lockfusion.ModeS, lockfusion.ModeX} {
		ref, err := tr.LeafSafe(key(1), mode)
		if err != nil {
			t.Fatal(err)
		}
		if ref.Mode != mode {
			t.Fatalf("got mode %v want %v", ref.Mode, mode)
		}
		tr.pager.Release(ref)
	}
}

func TestInsertAndSplitGrowth(t *testing.T) {
	mp, tr := newTree(t)
	const n = 3000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		insert(t, tr, key(i), bytes.Repeat([]byte("v"), 50))
	}
	// Every key findable.
	for i := 0; i < n; i++ {
		ref, err := tr.LeafSafe(key(i), lockfusion.ModeS)
		if err != nil {
			t.Fatal(err)
		}
		if ref.Page.Find(key(i)) == nil {
			t.Fatalf("key %d missing", i)
		}
		tr.pager.Release(ref)
	}
	h, err := tr.Height()
	if err != nil {
		t.Fatal(err)
	}
	if h < 2 {
		t.Fatalf("height %d after %d inserts (no internal levels?)", h, n)
	}
	if mp.logged == 0 {
		t.Fatal("SMOs produced no image logs")
	}
}

// TestLeafChainComplete walks the leaf chain and checks it covers every key
// exactly once in order.
func TestLeafChainComplete(t *testing.T) {
	_, tr := newTree(t)
	const n = 1500
	for i := 0; i < n; i++ {
		insert(t, tr, key(i), bytes.Repeat([]byte("x"), 40))
	}
	ref, err := tr.First(lockfusion.ModeS)
	if err != nil {
		t.Fatal(err)
	}
	var last []byte
	count := 0
	for ref != nil {
		for i := range ref.Page.Rows {
			k := ref.Page.Rows[i].Key
			if last != nil && bytes.Compare(k, last) <= 0 {
				t.Fatalf("leaf chain out of order: %q after %q", k, last)
			}
			last = append(last[:0], k...)
			count++
		}
		ref, err = tr.Next(ref, lockfusion.ModeS)
		if err != nil {
			t.Fatal(err)
		}
	}
	if count != n {
		t.Fatalf("leaf chain has %d rows, want %d", count, n)
	}
}

// TestRoutingInvariant checks, for every leaf row, that a fresh descent for
// its key lands on the same leaf (routing and leaf contents agree).
func TestRoutingInvariant(t *testing.T) {
	_, tr := newTree(t)
	const n = 1200
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		insert(t, tr, key(rng.Intn(5000)), bytes.Repeat([]byte("y"), 60))
	}
	ref, err := tr.First(lockfusion.ModeS)
	if err != nil {
		t.Fatal(err)
	}
	type pair struct {
		key  []byte
		page common.PageID
	}
	var rows []pair
	for ref != nil {
		for i := range ref.Page.Rows {
			rows = append(rows, pair{append([]byte(nil), ref.Page.Rows[i].Key...), ref.Page.ID})
		}
		ref, err = tr.Next(ref, lockfusion.ModeS)
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range rows {
		ref, err := tr.LeafSafe(r.key, lockfusion.ModeS)
		if err != nil {
			t.Fatal(err)
		}
		if ref.Page.ID != r.page {
			t.Fatalf("descent for %q lands on page %d; leaf chain says %d", r.key, ref.Page.ID, r.page)
		}
		tr.pager.Release(ref)
	}
}

func TestConcurrentInsertDisjointRanges(t *testing.T) {
	_, tr := newTree(t)
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				k := []byte(fmt.Sprintf("w%d-%06d", w, i))
				for attempt := 0; ; attempt++ {
					ref, err := tr.LeafSafe(k, lockfusion.ModeX)
					if err != nil {
						errs <- err
						return
					}
					if ref.Page.SizeEstimate()+100 > page.SplitThreshold {
						tr.pager.Release(ref)
						if err := tr.SplitFor(k, 100); err != nil {
							errs <- err
							return
						}
						continue
					}
					ref.Page.InsertVersion(k, page.Version{Value: []byte("v")})
					tr.pager.Release(ref)
					break
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// All 1200 rows present via chain walk.
	ref, err := tr.First(lockfusion.ModeS)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for ref != nil {
		count += len(ref.Page.Rows)
		ref, err = tr.Next(ref, lockfusion.ModeS)
		if err != nil {
			t.Fatal(err)
		}
	}
	if count != 1200 {
		t.Fatalf("rows = %d, want 1200", count)
	}
}

func TestSplitForNoopWhenRoomy(t *testing.T) {
	mp, tr := newTree(t)
	insert(t, tr, key(1), []byte("v"))
	before := mp.logged
	if err := tr.SplitFor(key(1), 100); err != nil {
		t.Fatal(err)
	}
	if mp.logged != before {
		t.Fatal("SplitFor logged images without splitting")
	}
}

func TestOversizedSingleRowError(t *testing.T) {
	_, tr := newTree(t)
	// One row too large to ever split: SplitFor must error, not loop.
	big := bytes.Repeat([]byte("z"), page.SplitThreshold)
	ref, err := tr.LeafSafe(key(1), lockfusion.ModeX)
	if err != nil {
		t.Fatal(err)
	}
	ref.Page.InsertVersion(key(1), page.Version{Value: big})
	tr.pager.Release(ref)
	if err := tr.SplitFor(key(1), 10); err == nil {
		t.Fatal("SplitFor of an unsplittable page should error")
	}
}

func TestUnlinkEmptyLeaf(t *testing.T) {
	_, tr := newTree(t)
	// Build a multi-leaf tree, then empty a middle leaf and unlink it.
	const n = 800
	for i := 0; i < n; i++ {
		insert(t, tr, key(i), bytes.Repeat([]byte("v"), 60))
	}
	// Walk to a middle leaf and record its key range + neighbours.
	ref, err := tr.First(lockfusion.ModeS)
	if err != nil {
		t.Fatal(err)
	}
	var leaves []common.PageID
	var firstKeys [][]byte
	for ref != nil {
		leaves = append(leaves, ref.Page.ID)
		firstKeys = append(firstKeys, append([]byte(nil), ref.Page.Rows[0].Key...))
		ref, err = tr.Next(ref, lockfusion.ModeS)
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(leaves) < 4 {
		t.Skipf("only %d leaves; need 4+", len(leaves))
	}
	victimIdx := 2
	victimKey := firstKeys[victimIdx]
	// Empty the victim leaf in place.
	vref, err := tr.LeafSafe(victimKey, lockfusion.ModeX)
	if err != nil {
		t.Fatal(err)
	}
	if vref.Page.ID != leaves[victimIdx] {
		t.Fatalf("descent found %d, want %d", vref.Page.ID, leaves[victimIdx])
	}
	removedRows := len(vref.Page.Rows)
	vref.Page.Rows = nil
	tr.pager.Release(vref)

	unlinked, err := tr.UnlinkEmptyLeaf(victimKey)
	if err != nil {
		t.Fatal(err)
	}
	if !unlinked {
		t.Fatal("empty leaf not unlinked")
	}
	// Chain skips the victim; count matches.
	ref, err = tr.First(lockfusion.ModeS)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for ref != nil {
		if ref.Page.ID == leaves[victimIdx] {
			t.Fatal("unlinked leaf still in chain")
		}
		count += len(ref.Page.Rows)
		ref, err = tr.Next(ref, lockfusion.ModeS)
		if err != nil {
			t.Fatal(err)
		}
	}
	if count != n-removedRows {
		t.Fatalf("rows after unlink = %d, want %d", count, n-removedRows)
	}
	// Keys from the removed range route to the left sibling and can be
	// re-inserted.
	insert(t, tr, victimKey, []byte("back"))
	rref, err := tr.LeafSafe(victimKey, lockfusion.ModeS)
	if err != nil {
		t.Fatal(err)
	}
	if rref.Page.Find(victimKey) == nil {
		t.Fatal("re-inserted key not found")
	}
	tr.pager.Release(rref)
}

func TestUnlinkRefusesNonEmptyAndLeftmost(t *testing.T) {
	_, tr := newTree(t)
	for i := 0; i < 800; i++ {
		insert(t, tr, key(i), bytes.Repeat([]byte("v"), 60))
	}
	// Non-empty leaf: refused.
	if ok, err := tr.UnlinkEmptyLeaf(key(100)); err != nil || ok {
		t.Fatalf("non-empty unlink = %v, %v", ok, err)
	}
	// Leftmost leaf (even when emptied): refused.
	ref, err := tr.First(lockfusion.ModeX)
	if err != nil {
		t.Fatal(err)
	}
	first := append([]byte(nil), ref.Page.Rows[0].Key...)
	ref.Page.Rows = nil
	tr.pager.Release(ref)
	if ok, err := tr.UnlinkEmptyLeaf(first); err != nil || ok {
		t.Fatalf("leftmost unlink = %v, %v", ok, err)
	}
}
