// Package netsrv adapts a core node to the wire session protocol: it is the
// thin layer between mpserver's network front door and the engine. The
// adapter is deliberately stateless — session and transaction bookkeeping
// live in wire.Server, engine semantics in core — so it is also where the
// cluster's stats JSON (including the NetStats section) is assembled for
// both the session protocol's OpStats and the daemons' /stats endpoint.
package netsrv

import (
	"encoding/json"
	"time"

	"polardbmp/internal/common"
	"polardbmp/internal/core"
	"polardbmp/internal/wire"
)

// NetStats converts a process's wire counters into the NetStats section of
// the stats JSON; daemons install it with cluster.SetNetStats(func()
// core.NetStats { return netsrv.NetStats(nc) }).
func NetStats(nc *wire.NetCounters) core.NetStats {
	s := nc.Snapshot()
	return core.NetStats{
		ConnsOpen:     s.ConnsOpen,
		ConnsAccepted: s.ConnsAccepted,
		ConnsDialed:   s.ConnsDialed,
		FramesIn:      s.FramesIn,
		FramesOut:     s.FramesOut,
		BytesIn:       s.BytesIn,
		BytesOut:      s.BytesOut,
		CodecErrors:   s.CodecErrors,
		PipelineDepth: s.PipelineDepth,
	}
}

// Backend serves one node of a cluster (in-process or satellite) over the
// session protocol.
type Backend struct {
	c *core.Cluster
	n *core.Node

	join JoinInfo
}

// New returns the wire backend for node n of cluster c.
func New(c *core.Cluster, n *core.Node) *Backend { return &Backend{c: c, n: n} }

var (
	_ wire.Backend       = (*Backend)(nil)
	_ wire.AdminBackend  = (*Backend)(nil)
	_ wire.StatusBackend = (*Backend)(nil)
	_ wire.GlobalTx      = (*netTx)(nil)
)

// TxStatus resolves a transaction's outcome from its global id
// (wire.StatusBackend; protocol v3's OpTxStatus). The resolution chain —
// journal, TIT, owner fabric call, membership fate rule — lives in core.
func (b *Backend) TxStatus(g common.GTrxID) (uint8, uint64, error) {
	out, cts, err := b.c.TxStatus(g)
	return uint8(out), uint64(cts), err
}

// JoinInfo is the OpJoinInfo document: the coordinates a new daemon needs to
// join this cluster, plus which node answered. The daemon fills what it
// knows (a satellite learns the fabric address from its own -join flag).
type JoinInfo struct {
	// Cluster is the daemon's display name.
	Cluster string `json:"cluster,omitempty"`
	// FabricAddr is the seed's fabric listener — what a new `mpserver -join`
	// should dial. Empty when this daemon does not serve a fabric.
	FabricAddr string `json:"fabric_addr,omitempty"`
	// Node is the node this backend serves transactions through.
	Node int `json:"node"`
	// Seed reports whether this process hosts the PMFS substrate.
	Seed bool `json:"seed"`
}

// SetJoinInfo installs the daemon-level join coordinates served by
// OpJoinInfo (the Node field is overwritten with this backend's node).
func (b *Backend) SetJoinInfo(ji JoinInfo) {
	ji.Node = int(b.n.ID())
	b.join = ji
}

// TopologyJSON serves the cluster topology snapshot (wire.AdminBackend).
func (b *Backend) TopologyJSON() ([]byte, error) {
	return b.c.TopologyJSON()
}

// Drain gracefully drains a node hosted by this process (wire.AdminBackend).
func (b *Backend) Drain(node uint16) error {
	return b.c.DrainNode(common.NodeID(node))
}

// JoinInfoJSON serves the join coordinates (wire.AdminBackend).
func (b *Backend) JoinInfoJSON() ([]byte, error) {
	ji := b.join
	ji.Node = int(b.n.ID())
	ji.Seed = !b.c.Remote()
	return json.Marshal(ji)
}

// Begin opens an engine transaction; budget > 0 becomes the transaction's
// end-to-end deadline, which the engine propagates down to fabric verbs.
func (b *Backend) Begin(iso uint8, budget time.Duration) (wire.Tx, error) {
	tx, err := b.n.BeginDeadline(core.Isolation(iso), common.DeadlineAfter(budget))
	if err != nil {
		return nil, err
	}
	return (*netTx)(tx), nil
}

// CreateSpace creates (or finds) a named tablespace.
func (b *Backend) CreateSpace(name string) (uint32, error) {
	sp, err := b.c.CreateSpace(name)
	return uint32(sp), err
}

// SpaceID resolves a tablespace name.
func (b *Backend) SpaceID(name string) (uint32, error) {
	sp, err := b.c.SpaceID(name)
	return uint32(sp), err
}

// StatsJSON marshals the cluster snapshot (the same document the daemons'
// /stats endpoint serves).
func (b *Backend) StatsJSON() ([]byte, error) {
	return json.Marshal(b.c.Stats())
}

// netTx adapts *core.Tx to wire.Tx.
type netTx core.Tx

func (t *netTx) tx() *core.Tx { return (*core.Tx)(t) }

func (t *netTx) Get(space uint32, key []byte) ([]byte, error) {
	return t.tx().Get(common.SpaceID(space), key)
}

func (t *netTx) GetForUpdate(space uint32, key []byte) ([]byte, error) {
	return t.tx().GetForUpdate(common.SpaceID(space), key)
}

func (t *netTx) Insert(space uint32, key, value []byte) error {
	return t.tx().Insert(common.SpaceID(space), key, value)
}

func (t *netTx) Update(space uint32, key, value []byte) error {
	return t.tx().Update(common.SpaceID(space), key, value)
}

func (t *netTx) Upsert(space uint32, key, value []byte) error {
	return t.tx().Upsert(common.SpaceID(space), key, value)
}

func (t *netTx) Delete(space uint32, key []byte) error {
	return t.tx().Delete(common.SpaceID(space), key)
}

func (t *netTx) Scan(space uint32, from, to []byte, limit int) ([]wire.KV, error) {
	kvs, err := t.tx().Scan(common.SpaceID(space), from, to, limit)
	if err != nil {
		return nil, err
	}
	out := make([]wire.KV, len(kvs))
	for i, kv := range kvs {
		out[i] = wire.KV{Key: kv.Key, Value: kv.Value}
	}
	return out, nil
}

func (t *netTx) Commit() error   { return t.tx().Commit() }
func (t *netTx) Rollback() error { return t.tx().Rollback() }

// GTrxID exposes the engine's global transaction id (wire.GlobalTx): a v3
// OpBegin response carries it so the client can resolve ambiguous commits.
func (t *netTx) GTrxID() common.GTrxID { return t.tx().GTrxID() }
