package netsrv_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"polardbmp/internal/chaos"
	"polardbmp/internal/common"
	"polardbmp/internal/core"
	"polardbmp/internal/netsrv"
	"polardbmp/internal/wire"
)

// sessionServer stands up a one-node cluster behind a session-protocol
// listener: the in-test mpserver.
func sessionServer(t *testing.T, cfg core.Config) (*core.Cluster, *wire.Server, string) {
	t.Helper()
	c := core.NewCluster(cfg)
	n, err := c.AddNode()
	if err != nil {
		t.Fatal(err)
	}
	nc := &wire.NetCounters{}
	c.SetNetStats(func() core.NetStats { return netsrv.NetStats(nc) })
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := wire.ServeSessions(lis, "testsrv", netsrv.New(c, n), nc)
	t.Cleanup(func() {
		srv.Close()
		c.Close()
	})
	return c, srv, lis.Addr().String()
}

func TestSessionEndToEnd(t *testing.T) {
	_, _, addr := sessionServer(t, core.Config{RecycleInterval: -1})
	cl, err := wire.DialSession(addr, wire.SessionConfig{Name: "e2e", Conns: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if got := cl.ServerName(); got != "testsrv" {
		t.Fatalf("server name %q", got)
	}

	space, err := cl.CreateSpace("t")
	if err != nil {
		t.Fatal(err)
	}
	if again, err := cl.CreateSpace("t"); err != nil || again != space {
		t.Fatalf("create twice: %d %v", again, err)
	}
	if resolved, err := cl.SpaceID("t"); err != nil || resolved != space {
		t.Fatalf("space id: %d %v", resolved, err)
	}
	if _, err := cl.SpaceID("nope"); !errors.Is(err, common.ErrNotFound) {
		t.Fatalf("missing space: %v", err)
	}

	tx, err := cl.Begin(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(space, []byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(space, []byte("a"), []byte("dup")); !errors.Is(err, common.ErrKeyExists) {
		t.Fatalf("dup insert: %v", err)
	}
	if err := tx.Upsert(space, []byte("b"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	if v, err := tx.Get(space, []byte("a")); err != nil || string(v) != "1" {
		t.Fatalf("own read: %q %v", v, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Finished transactions are gone server-side.
	if _, err := tx.Get(space, []byte("a")); !errors.Is(err, common.ErrTxDone) {
		t.Fatalf("use after commit: %v", err)
	}

	tx2, _ := cl.Begin(1, 0) // snapshot isolation across the wire
	if v, err := tx2.GetForUpdate(space, []byte("b")); err != nil || string(v) != "2" {
		t.Fatalf("locked read: %q %v", v, err)
	}
	if err := tx2.Update(space, []byte("b"), []byte("2x")); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Delete(space, []byte("a")); err != nil {
		t.Fatal(err)
	}
	kvs, err := tx2.Scan(space, nil, nil, 0)
	if err != nil || len(kvs) != 1 || string(kvs[0].Key) != "b" || string(kvs[0].Value) != "2x" {
		t.Fatalf("scan: %v %v", kvs, err)
	}
	if err := tx2.Rollback(); err != nil {
		t.Fatal(err)
	}
	tx3, _ := cl.Begin(0, 0)
	if v, err := tx3.Get(space, []byte("a")); err != nil || string(v) != "1" {
		t.Fatalf("rollback did not restore: %q %v", v, err)
	}
	_ = tx3.Rollback()

	if _, err := tx3.Get(space, []byte("missing-key-tx")); !errors.Is(err, common.ErrTxDone) {
		t.Fatalf("rolled back tx must be done: %v", err)
	}

	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	raw, err := cl.StatsJSON()
	if err != nil {
		t.Fatal(err)
	}
	var stats core.ClusterStats
	if err := json.Unmarshal(raw, &stats); err != nil {
		t.Fatalf("stats json: %v", err)
	}
	if stats.Commits == 0 {
		t.Fatal("stats lost the commit counter")
	}
	if stats.Net == nil || stats.Net.FramesIn == 0 || stats.Net.ConnsAccepted != 2 {
		t.Fatalf("net stats section: %+v", stats.Net)
	}
}

func TestSessionDeadlinePropagation(t *testing.T) {
	_, _, addr := sessionServer(t, core.Config{RecycleInterval: -1})
	cl, err := wire.DialSession(addr, wire.SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	space, err := cl.CreateSpace("dl")
	if err != nil {
		t.Fatal(err)
	}
	tx, err := cl.Begin(0, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond)
	err = tx.Upsert(space, []byte("k"), []byte("v"))
	if err == nil {
		err = tx.Commit()
	}
	if !errors.Is(err, common.ErrDeadlineExceeded) {
		t.Fatalf("expired budget must map to ErrDeadlineExceeded over the wire, got %v", err)
	}
}

func TestSessionDisconnectRollsBackOpenTx(t *testing.T) {
	_, _, addr := sessionServer(t, core.Config{LockWaitTimeout: 500 * time.Millisecond, RecycleInterval: -1})
	setup, err := wire.DialSession(addr, wire.SessionConfig{Name: "setup"})
	if err != nil {
		t.Fatal(err)
	}
	defer setup.Close()
	space, err := setup.CreateSpace("locks")
	if err != nil {
		t.Fatal(err)
	}
	stx, _ := setup.Begin(0, 0)
	if err := stx.Insert(space, []byte("row"), []byte("v0")); err != nil {
		t.Fatal(err)
	}
	if err := stx.Commit(); err != nil {
		t.Fatal(err)
	}

	// A client takes a row lock, then its process "dies" (connection drop
	// without rollback). The server must roll the orphan back so the lock
	// frees for everyone else.
	dying, err := wire.DialSession(addr, wire.SessionConfig{Name: "dying"})
	if err != nil {
		t.Fatal(err)
	}
	dtx, _ := dying.Begin(0, 0)
	if _, err := dtx.GetForUpdate(space, []byte("row")); err != nil {
		t.Fatal(err)
	}
	dying.Close()

	tx, _ := setup.Begin(0, 0)
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err = tx.GetForUpdate(space, []byte("row"))
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("row lock never released after client death: %v", err)
		}
		_ = tx.Rollback()
		time.Sleep(10 * time.Millisecond)
		tx, _ = setup.Begin(0, 0)
	}
	_ = tx.Rollback()
}

// TestSessionGoroutineLeakUnderChaos drives pipelined sessions while the
// fabric drops and duplicates traffic, kills half the client connections
// mid-flight, and then asserts the server side released every goroutine —
// connection handlers, per-request workers, and the engine workers behind
// them.
func TestSessionGoroutineLeakUnderChaos(t *testing.T) {
	base := runtime.NumGoroutine()
	func() {
		c, srv, addr := sessionServer(t, core.Config{LockWaitTimeout: 300 * time.Millisecond})
		eng := chaos.MustNew(11, chaos.LossyPlan(0.02))
		eng.Install(c.Fabric(), nil)
		defer chaos.Uninstall(c.Fabric(), nil)

		setup, err := wire.DialSession(addr, wire.SessionConfig{Name: "setup"})
		if err != nil {
			t.Fatal(err)
		}
		space, err := setup.CreateSpace("leak")
		if err != nil {
			t.Fatal(err)
		}
		setup.Close()

		const clients = 6
		var wg sync.WaitGroup
		for ci := 0; ci < clients; ci++ {
			wg.Add(1)
			go func(ci int) {
				defer wg.Done()
				cl, err := wire.DialSession(addr, wire.SessionConfig{Name: fmt.Sprintf("c%d", ci), Conns: 2})
				if err != nil {
					t.Errorf("dial: %v", err)
					return
				}
				defer cl.Close()
				for i := 0; i < 25; i++ {
					tx, err := cl.Begin(0, 0)
					if err != nil {
						continue
					}
					key := []byte(fmt.Sprintf("c%d-%d", ci, i))
					if err := tx.Upsert(space, key, key); err != nil {
						_ = tx.Rollback()
						continue
					}
					if ci%2 == 0 && i == 12 {
						// Die abruptly with the transaction open.
						cl.Close()
						return
					}
					_ = tx.Commit()
				}
			}(ci)
		}
		wg.Wait()
		srv.Close()
		c.Close()
	}()

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > base {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("goroutine leak: %d live, %d at start\n%s", g, base, buf[:n])
	}
}
