package netsrv_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"polardbmp/internal/chaos"
	"polardbmp/internal/common"
	"polardbmp/internal/core"
	"polardbmp/internal/netsrv"
	"polardbmp/internal/wire"
)

// sessionServer stands up a one-node cluster behind a session-protocol
// listener: the in-test mpserver.
func sessionServer(t *testing.T, cfg core.Config) (*core.Cluster, *wire.Server, string) {
	t.Helper()
	c := core.NewCluster(cfg)
	n, err := c.AddNode()
	if err != nil {
		t.Fatal(err)
	}
	nc := &wire.NetCounters{}
	c.SetNetStats(func() core.NetStats { return netsrv.NetStats(nc) })
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := wire.ServeSessions(lis, "testsrv", netsrv.New(c, n), nc)
	t.Cleanup(func() {
		srv.Close()
		c.Close()
	})
	return c, srv, lis.Addr().String()
}

func TestSessionEndToEnd(t *testing.T) {
	_, _, addr := sessionServer(t, core.Config{RecycleInterval: -1})
	cl, err := wire.DialSession(addr, wire.SessionConfig{Name: "e2e", Conns: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if got := cl.ServerName(); got != "testsrv" {
		t.Fatalf("server name %q", got)
	}

	space, err := cl.CreateSpace("t")
	if err != nil {
		t.Fatal(err)
	}
	if again, err := cl.CreateSpace("t"); err != nil || again != space {
		t.Fatalf("create twice: %d %v", again, err)
	}
	if resolved, err := cl.SpaceID("t"); err != nil || resolved != space {
		t.Fatalf("space id: %d %v", resolved, err)
	}
	if _, err := cl.SpaceID("nope"); !errors.Is(err, common.ErrNotFound) {
		t.Fatalf("missing space: %v", err)
	}

	tx, err := cl.Begin(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(space, []byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(space, []byte("a"), []byte("dup")); !errors.Is(err, common.ErrKeyExists) {
		t.Fatalf("dup insert: %v", err)
	}
	if err := tx.Upsert(space, []byte("b"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	if v, err := tx.Get(space, []byte("a")); err != nil || string(v) != "1" {
		t.Fatalf("own read: %q %v", v, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Finished transactions are gone server-side.
	if _, err := tx.Get(space, []byte("a")); !errors.Is(err, common.ErrTxDone) {
		t.Fatalf("use after commit: %v", err)
	}

	tx2, _ := cl.Begin(1, 0) // snapshot isolation across the wire
	if v, err := tx2.GetForUpdate(space, []byte("b")); err != nil || string(v) != "2" {
		t.Fatalf("locked read: %q %v", v, err)
	}
	if err := tx2.Update(space, []byte("b"), []byte("2x")); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Delete(space, []byte("a")); err != nil {
		t.Fatal(err)
	}
	kvs, err := tx2.Scan(space, nil, nil, 0)
	if err != nil || len(kvs) != 1 || string(kvs[0].Key) != "b" || string(kvs[0].Value) != "2x" {
		t.Fatalf("scan: %v %v", kvs, err)
	}
	if err := tx2.Rollback(); err != nil {
		t.Fatal(err)
	}
	tx3, _ := cl.Begin(0, 0)
	if v, err := tx3.Get(space, []byte("a")); err != nil || string(v) != "1" {
		t.Fatalf("rollback did not restore: %q %v", v, err)
	}
	_ = tx3.Rollback()

	if _, err := tx3.Get(space, []byte("missing-key-tx")); !errors.Is(err, common.ErrTxDone) {
		t.Fatalf("rolled back tx must be done: %v", err)
	}

	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	raw, err := cl.StatsJSON()
	if err != nil {
		t.Fatal(err)
	}
	var stats core.ClusterStats
	if err := json.Unmarshal(raw, &stats); err != nil {
		t.Fatalf("stats json: %v", err)
	}
	if stats.Commits == 0 {
		t.Fatal("stats lost the commit counter")
	}
	if stats.Net == nil || stats.Net.FramesIn == 0 || stats.Net.ConnsAccepted != 2 {
		t.Fatalf("net stats section: %+v", stats.Net)
	}
}

func TestSessionDeadlinePropagation(t *testing.T) {
	_, _, addr := sessionServer(t, core.Config{RecycleInterval: -1})
	cl, err := wire.DialSession(addr, wire.SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	space, err := cl.CreateSpace("dl")
	if err != nil {
		t.Fatal(err)
	}
	tx, err := cl.Begin(0, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond)
	err = tx.Upsert(space, []byte("k"), []byte("v"))
	if err == nil {
		err = tx.Commit()
	}
	if !errors.Is(err, common.ErrDeadlineExceeded) {
		t.Fatalf("expired budget must map to ErrDeadlineExceeded over the wire, got %v", err)
	}
}

func TestSessionDisconnectRollsBackOpenTx(t *testing.T) {
	_, _, addr := sessionServer(t, core.Config{LockWaitTimeout: 500 * time.Millisecond, RecycleInterval: -1})
	setup, err := wire.DialSession(addr, wire.SessionConfig{Name: "setup"})
	if err != nil {
		t.Fatal(err)
	}
	defer setup.Close()
	space, err := setup.CreateSpace("locks")
	if err != nil {
		t.Fatal(err)
	}
	stx, _ := setup.Begin(0, 0)
	if err := stx.Insert(space, []byte("row"), []byte("v0")); err != nil {
		t.Fatal(err)
	}
	if err := stx.Commit(); err != nil {
		t.Fatal(err)
	}

	// A client takes a row lock, then its process "dies" (connection drop
	// without rollback). The server must roll the orphan back so the lock
	// frees for everyone else.
	dying, err := wire.DialSession(addr, wire.SessionConfig{Name: "dying"})
	if err != nil {
		t.Fatal(err)
	}
	dtx, _ := dying.Begin(0, 0)
	if _, err := dtx.GetForUpdate(space, []byte("row")); err != nil {
		t.Fatal(err)
	}
	dying.Close()

	tx, _ := setup.Begin(0, 0)
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err = tx.GetForUpdate(space, []byte("row"))
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("row lock never released after client death: %v", err)
		}
		_ = tx.Rollback()
		time.Sleep(10 * time.Millisecond)
		tx, _ = setup.Begin(0, 0)
	}
	_ = tx.Rollback()
}

// TestSessionGoroutineLeakUnderChaos drives pipelined sessions while the
// fabric drops and duplicates traffic, kills half the client connections
// mid-flight, and then asserts the server side released every goroutine —
// connection handlers, per-request workers, and the engine workers behind
// them.
func TestSessionGoroutineLeakUnderChaos(t *testing.T) {
	base := runtime.NumGoroutine()
	func() {
		c, srv, addr := sessionServer(t, core.Config{LockWaitTimeout: 300 * time.Millisecond})
		eng := chaos.MustNew(11, chaos.LossyPlan(0.02))
		eng.Install(c.Fabric(), nil)
		defer chaos.Uninstall(c.Fabric(), nil)

		setup, err := wire.DialSession(addr, wire.SessionConfig{Name: "setup"})
		if err != nil {
			t.Fatal(err)
		}
		space, err := setup.CreateSpace("leak")
		if err != nil {
			t.Fatal(err)
		}
		setup.Close()

		const clients = 6
		var wg sync.WaitGroup
		for ci := 0; ci < clients; ci++ {
			wg.Add(1)
			go func(ci int) {
				defer wg.Done()
				cl, err := wire.DialSession(addr, wire.SessionConfig{Name: fmt.Sprintf("c%d", ci), Conns: 2})
				if err != nil {
					t.Errorf("dial: %v", err)
					return
				}
				defer cl.Close()
				for i := 0; i < 25; i++ {
					tx, err := cl.Begin(0, 0)
					if err != nil {
						continue
					}
					key := []byte(fmt.Sprintf("c%d-%d", ci, i))
					if err := tx.Upsert(space, key, key); err != nil {
						_ = tx.Rollback()
						continue
					}
					if ci%2 == 0 && i == 12 {
						// Die abruptly with the transaction open.
						cl.Close()
						return
					}
					_ = tx.Commit()
				}
			}(ci)
		}
		wg.Wait()
		srv.Close()
		c.Close()
	}()

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > base {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("goroutine leak: %d live, %d at start\n%s", g, base, buf[:n])
	}
}

// TestSessionProtoNegotiation covers the v1/v2 hello negotiation matrix: a
// current client gets the full admin surface, a v1 client keeps its whole
// transactional surface and is refused only the admin ops, and a client from
// the future is refused at connect time.
func TestSessionProtoNegotiation(t *testing.T) {
	c, _, addr := sessionServer(t, core.Config{RecycleInterval: -1})
	if _, err := c.AddNode(); err != nil { // a second node so drain keeps quorum of one
		t.Fatal(err)
	}

	// Current client: negotiates the newest version; topology, join info,
	// and drain all work.
	v2, err := wire.DialSession(addr, wire.SessionConfig{Name: "v2"})
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	if got := v2.ProtoVersion(); got != wire.SessionProtoVersion {
		t.Fatalf("negotiated v%d, want v%d", got, wire.SessionProtoVersion)
	}
	raw, err := v2.TopologyJSON()
	if err != nil {
		t.Fatal(err)
	}
	var top core.Topology
	if err := json.Unmarshal(raw, &top); err != nil {
		t.Fatal(err)
	}
	if len(top.Nodes) != 2 {
		t.Fatalf("topology nodes = %d, want 2", len(top.Nodes))
	}
	ji, err := v2.JoinInfoJSON()
	if err != nil {
		t.Fatal(err)
	}
	var info netsrv.JoinInfo
	if err := json.Unmarshal(ji, &info); err != nil {
		t.Fatal(err)
	}
	if info.Node != 1 || !info.Seed {
		t.Fatalf("join info = %+v, want node 1 on a seed", info)
	}

	// v1 client against the v2 server: the session is negotiated down, the
	// transactional surface is untouched, the admin ops answer ErrNoService.
	v1, err := wire.DialSession(addr, wire.SessionConfig{Name: "v1", ProtoCeiling: wire.SessionProtoV1})
	if err != nil {
		t.Fatalf("v1 client refused by v2 server: %v", err)
	}
	defer v1.Close()
	if got := v1.ProtoVersion(); got != wire.SessionProtoV1 {
		t.Fatalf("negotiated v%d, want v%d", got, wire.SessionProtoV1)
	}
	space, err := v1.CreateSpace("t")
	if err != nil {
		t.Fatal(err)
	}
	tx, err := v1.Begin(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Upsert(space, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := v1.TopologyJSON(); !errors.Is(err, common.ErrNoService) {
		t.Fatalf("v1 topology: %v, want ErrNoService", err)
	}
	if err := v1.Drain(2); !errors.Is(err, common.ErrNoService) {
		t.Fatalf("v1 drain: %v, want ErrNoService", err)
	}

	// Drain over the wire (v2): node 2 leaves gracefully; the topology
	// reflects it on both a fresh snapshot and the v1-invisible epoch bump.
	if err := v2.Drain(2); err != nil {
		t.Fatalf("drain over the wire: %v", err)
	}
	raw2, err := v2.TopologyJSON()
	if err != nil {
		t.Fatal(err)
	}
	var top2 core.Topology
	if err := json.Unmarshal(raw2, &top2); err != nil {
		t.Fatal(err)
	}
	if top2.Epoch <= top.Epoch {
		t.Fatalf("epoch %d did not advance past %d over a drain", top2.Epoch, top.Epoch)
	}
	var state core.NodeState
	for _, ni := range top2.Nodes {
		if ni.ID == 2 {
			state = ni.State
		}
	}
	if state != core.NodeDrained {
		t.Fatalf("node 2 state over the wire = %q, want drained", state)
	}
	if err := v2.Drain(99); !errors.Is(err, common.ErrUnknownNode) {
		t.Fatalf("drain unknown node: %v, want ErrUnknownNode (typed across the wire)", err)
	}

	// A client claiming a version newer than the server is refused at
	// connect time, not mid-workload. (The config cap clamps ProtoCeiling,
	// so speak the hello by hand.)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hello := wire.Frame{Kind: wire.KindControl, Op: wire.SessHello,
		Payload: wire.AppendHello(nil, wire.SessionProtoVersion+1, "future")}
	if _, err := wire.WriteFrame(conn, nil, hello); err != nil {
		t.Fatal(err)
	}
	f, _, err := wire.ReadFrame(conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.DecodeStatus(wire.NewReader(f.Payload)); err == nil {
		t.Fatal("server accepted a session version from the future")
	}
}

// TestSessionDrainingBeginIsTyped: a Begin against a draining/drained node
// crosses the wire as ErrDraining, so a gateway can reroute instead of
// retrying the same backend.
func TestSessionDrainingBeginIsTyped(t *testing.T) {
	c, _, addr := sessionServer(t, core.Config{RecycleInterval: -1})
	cl, err := wire.DialSession(addr, wire.SessionConfig{Name: "drainee"})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := c.AddNode(); err != nil {
		t.Fatal(err)
	}
	// Drain the node this server fronts (node 1).
	if err := cl.Drain(1); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Begin(0, 0); !errors.Is(err, common.ErrDraining) {
		t.Fatalf("Begin on drained backend: %v, want ErrDraining", err)
	}
}
