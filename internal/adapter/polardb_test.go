package adapter

import (
	"errors"
	"testing"

	"polardbmp/internal/common"
	"polardbmp/internal/core"
	"polardbmp/internal/workload"
)

func newDB(t *testing.T) *PolarDB {
	t.Helper()
	db, err := NewPolarDB(core.Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Cluster.Close)
	return db
}

func TestAdapterRoundTrip(t *testing.T) {
	db := newDB(t)
	if db.NodeCount() != 2 {
		t.Fatalf("nodes = %d", db.NodeCount())
	}
	tab, err := db.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	tx, err := db.Begin(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(tab, []byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(tab, []byte("b"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx2, err := db.Begin(1) // other node
	if err != nil {
		t.Fatal(err)
	}
	if v, err := tx2.Get(tab, []byte("a")); err != nil || string(v) != "1" {
		t.Fatalf("get = %q, %v", v, err)
	}
	if v, err := tx2.GetForUpdate(tab, []byte("b")); err != nil || string(v) != "2" {
		t.Fatalf("get for update = %q, %v", v, err)
	}
	if err := tx2.Update(tab, []byte("b"), []byte("22")); err != nil {
		t.Fatal(err)
	}
	kvs, err := tx2.Scan(tab, nil, nil, 0)
	if err != nil || len(kvs) != 2 {
		t.Fatalf("scan = %d rows, %v", len(kvs), err)
	}
	if err := tx2.Delete(tab, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}

	tx3, _ := db.Begin(0)
	defer tx3.Rollback()
	if _, err := tx3.Get(tab, []byte("a")); !errors.Is(err, common.ErrNotFound) {
		t.Fatalf("deleted row get err = %v", err)
	}
}

func TestAdapterBeginOnDeadNode(t *testing.T) {
	db := newDB(t)
	db.Cluster.CrashNode(1)
	if _, err := db.Begin(0); !errors.Is(err, common.ErrNodeDown) {
		t.Fatalf("begin on crashed node err = %v", err)
	}
}

func TestAdapterImplementsWorkloadDB(t *testing.T) {
	var _ workload.DB = (*PolarDB)(nil)
}

func TestAdapterBeginOutOfRange(t *testing.T) {
	db := newDB(t)
	if _, err := db.Begin(7); err == nil {
		t.Fatal("begin on missing node should fail")
	}
}
