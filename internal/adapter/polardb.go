// Package adapter bridges engines to the workload driver interface so the
// same generators run against PolarDB-MP and every baseline.
package adapter

import (
	"fmt"

	"polardbmp/internal/common"
	"polardbmp/internal/core"
	"polardbmp/internal/workload"
)

// PolarDB adapts a PolarDB-MP cluster to workload.DB.
type PolarDB struct {
	Cluster *core.Cluster
}

// NewPolarDB builds a cluster with n nodes and wraps it.
func NewPolarDB(cfg core.Config, n int) (*PolarDB, error) {
	c := core.NewCluster(cfg)
	for i := 0; i < n; i++ {
		if _, err := c.AddNode(); err != nil {
			return nil, err
		}
	}
	return &PolarDB{Cluster: c}, nil
}

// NodeCount implements workload.DB.
func (p *PolarDB) NodeCount() int { return len(p.Cluster.Nodes()) }

// CreateTable implements workload.DB.
func (p *PolarDB) CreateTable(name string) (workload.Table, error) {
	sp, err := p.Cluster.CreateSpace(name)
	if err != nil {
		return nil, err
	}
	return table(sp), nil
}

// Begin implements workload.DB.
func (p *PolarDB) Begin(node int) (workload.Tx, error) {
	n := p.Cluster.Node(node + 1)
	if n == nil {
		return nil, fmt.Errorf("polardb adapter: node %d: %w", node+1, common.ErrNodeDown)
	}
	tx, err := n.Begin()
	if err != nil {
		return nil, err
	}
	return polarTx{tx}, nil
}

type table common.SpaceID

// Space implements workload.Table.
func (t table) Space() common.SpaceID { return common.SpaceID(t) }

type polarTx struct{ tx *core.Tx }

func (t polarTx) Get(tab workload.Table, key []byte) ([]byte, error) {
	return t.tx.Get(tab.Space(), key)
}

func (t polarTx) GetForUpdate(tab workload.Table, key []byte) ([]byte, error) {
	return t.tx.GetForUpdate(tab.Space(), key)
}

func (t polarTx) Insert(tab workload.Table, key, value []byte) error {
	return t.tx.Insert(tab.Space(), key, value)
}

func (t polarTx) Update(tab workload.Table, key, value []byte) error {
	return t.tx.Update(tab.Space(), key, value)
}

func (t polarTx) Delete(tab workload.Table, key []byte) error {
	return t.tx.Delete(tab.Space(), key)
}

func (t polarTx) Scan(tab workload.Table, from, to []byte, limit int) ([]workload.KV, error) {
	kvs, err := t.tx.Scan(tab.Space(), from, to, limit)
	if err != nil {
		return nil, err
	}
	out := make([]workload.KV, len(kvs))
	for i, kv := range kvs {
		out[i] = workload.KV{Key: kv.Key, Value: kv.Value}
	}
	return out, nil
}

func (t polarTx) Commit() error   { return t.tx.Commit() }
func (t polarTx) Rollback() error { return t.tx.Rollback() }
