// Package txfusion implements Transaction Fusion (§4.1): the global
// Timestamp Oracle (TSO) hosted in PMFS shared memory, the per-node
// Transaction Information Table (TIT) exposed as an RDMA region, global
// transaction ids, Algorithm 1 (GetCTSForRow), TIT recycling via a global
// minimum view, and the Linear Lamport timestamp reuse from PolarDB-SCC.
//
// Transaction metadata is fully decentralized: each node stores only its own
// transactions' state in its TIT; any other node resolves a transaction's
// commit timestamp with a single one-sided read of the owning slot.
package txfusion

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"polardbmp/internal/common"
	"polardbmp/internal/rdma"
	"polardbmp/internal/trace"
)

// Region and service names on the fabric.
const (
	RegionTSO  = "pmfs.tso" // 8-byte global timestamp counter (on PMFS)
	RegionGMV  = "pmfs.gmv" // 8-byte global minimum view (on PMFS)
	RegionTIT  = "tit"      // per-node TIT slot array
	ServiceTxF = "txfusion" // PMFS RPC service (min-view reports)
)

// TIT region layout: a 16-byte header followed by the slot array. Each
// field is an 8-byte word so one-sided CAS works on any of them.
//
// The header's fence word supports the tailored recovery policy (§4.4): a
// restarting node raises the fence so that its pre-crash transactions —
// whose slots were lost with its memory — resolve as "still active" until
// their uncommitted changes are rolled back; with the fence down, a slot
// mismatch safely means "finished and recycled ⇒ visible to all".
const (
	hdrFence     = 0 // 1 while the node is recovering pre-crash transactions
	hdrSpecFloor = 8 // speculative-CTS recycle floor (see Begin/Recycle)
	headerSize   = 16

	slotTrx     = 0  // local transaction id ("pointer"; 0 = free slot)
	slotCTS     = 8  // commit timestamp (CSNInit while active)
	slotVersion = 16 // reuse generation
	slotRef     = 24 // waiter flag (§4.3.2): set by blocked remote trxs
	slotActive  = 32 // 1 while the slot is allocated
	SlotSize    = 40
)

// Server is the Transaction Fusion side of PMFS: it owns the TSO and the
// global-minimum-view word, and aggregates per-node minimum views.
type Server struct {
	fabric *rdma.Fabric
	tso    *rdma.Region
	gmv    *rdma.Region
	gate   common.EpochGate

	// Min-view reports are striped by reporting node so that the 5ms
	// report ticks of N nodes do not serialize on one mutex. The GMV fold
	// walks every stripe; a fold racing a concurrent report may publish a
	// momentarily lower minimum, which is conservative (recycle and purge
	// treat the GMV as a lower bound).
	stripes [minViewStripes]minViewStripe
}

type minViewStripe struct {
	mu    sync.Mutex
	views map[common.NodeID]common.CSN
}

const minViewStripes = 8

func (s *Server) stripe(node common.NodeID) *minViewStripe {
	return &s.stripes[int(node)%minViewStripes]
}

// NewServer attaches Transaction Fusion to the PMFS endpoint.
func NewServer(ep *rdma.Endpoint, fabric *rdma.Fabric) *Server {
	s := &Server{
		fabric: fabric,
		tso:    ep.RegisterRegion(RegionTSO, 8),
		gmv:    ep.RegisterRegion(RegionGMV, 8),
	}
	for i := range s.stripes {
		s.stripes[i].views = make(map[common.NodeID]common.CSN)
	}
	// The TSO starts above CSNMin so no real commit shares the sentinel.
	if err := s.tso.LocalWrite64(0, uint64(common.CSNMin)); err != nil {
		panic(err)
	}
	if err := s.gmv.LocalWrite64(0, uint64(common.CSNMin)); err != nil {
		panic(err)
	}
	ep.Serve(ServiceTxF, s.handle)
	return s
}

// RPC wire ops.
const (
	opReportMinView = 1
	opRemoveNode    = 2
)

func (s *Server) handle(req []byte) ([]byte, error) {
	if len(req) < 1 {
		return nil, common.ErrShortBuffer
	}
	switch req[0] {
	case opReportMinView:
		if len(req) < 11 {
			return nil, common.ErrShortBuffer
		}
		node := common.NodeID(binary.LittleEndian.Uint16(req[1:]))
		csn := common.CSN(binary.LittleEndian.Uint64(req[3:]))
		// Gated: an evicted zombie's stale min-view report would hold the
		// global min view back (blocking TIT recycling and purge) forever.
		if s.gate != nil {
			if err := s.gate(node, common.TrailingEpoch(req, 11)); err != nil {
				return nil, err
			}
		}
		gmv := s.report(node, csn)
		return binary.LittleEndian.AppendUint64(nil, uint64(gmv)), nil
	case opRemoveNode:
		if len(req) < 3 {
			return nil, common.ErrShortBuffer
		}
		node := common.NodeID(binary.LittleEndian.Uint16(req[1:]))
		st := s.stripe(node)
		st.mu.Lock()
		delete(st.views, node)
		st.mu.Unlock()
		return nil, nil
	default:
		return nil, fmt.Errorf("txfusion: unknown op %d", req[0])
	}
}

// report folds one node's minimum view in and publishes the new global
// minimum to the GMV region, which nodes read with one-sided verbs.
func (s *Server) report(node common.NodeID, csn common.CSN) common.CSN {
	st := s.stripe(node)
	st.mu.Lock()
	st.views[node] = csn
	st.mu.Unlock()
	gmv := csn
	for i := range s.stripes {
		s.stripes[i].mu.Lock()
		for _, v := range s.stripes[i].views {
			if v < gmv {
				gmv = v
			}
		}
		s.stripes[i].mu.Unlock()
	}
	if err := s.gmv.LocalWrite64(0, uint64(gmv)); err != nil {
		panic(err)
	}
	return gmv
}

// SetEpochGate installs the membership epoch gate on the min-view report
// path; stamped reports from evicted incarnations are rejected.
func (s *Server) SetEpochGate(g common.EpochGate) { s.gate = g }

// SetTSO force-sets the oracle (full-cluster recovery: the new oracle must
// exceed every CTS found in the durable commit records).
func (s *Server) SetTSO(v common.CSN) {
	if err := s.tso.LocalWrite64(0, uint64(v)); err != nil {
		panic(err)
	}
}

// CurrentTSO returns the oracle's current value (test/inspection hook).
func (s *Server) CurrentTSO() common.CSN {
	v, err := s.tso.LocalRead64(0)
	if err != nil {
		panic(err)
	}
	return common.CSN(v)
}

// Config tunes a node's Transaction Fusion client.
type Config struct {
	// TITSlots is the slot-array size (default 4096).
	TITSlots int
	// LamportReuse enables the Linear Lamport timestamp optimization for
	// read-snapshot fetches (§4.1, PolarDB-SCC). Default on; the ablation
	// bench turns it off.
	LamportReuse bool
	// CTSCacheSize bounds the committed-CTS lookaside cache (0 disables).
	CTSCacheSize int
	// DisableSpecCTS turns off speculative CTS resolution from peer recycle
	// floors (ablation; see hdrSpecFloor).
	DisableSpecCTS bool
	// DisableAdaptiveTSO forces every commit-CSN allocation through the
	// flat-combining path even when the grant queue is empty (ablation).
	DisableAdaptiveTSO bool
}

func (c *Config) fill() {
	if c.TITSlots <= 0 {
		c.TITSlots = 4096
	}
	if c.CTSCacheSize < 0 {
		c.CTSCacheSize = 0
	}
}

// DefaultConfig returns the production defaults.
func DefaultConfig() Config {
	return Config{TITSlots: 4096, LamportReuse: true, CTSCacheSize: 1 << 14}
}

// Client is one node's Transaction Fusion: its local TIT plus access paths
// to the TSO and every peer TIT.
type Client struct {
	node   common.NodeID
	fabric rdma.Conn
	tit    *rdma.Region
	cfg    Config
	retry  common.RetryPolicy
	stamp  *common.EpochStamp

	mu      sync.Mutex
	free    []uint32 // free slot ids
	inUse   map[uint32]common.TrxID
	views   map[common.CSN]int // active read-view multiset (for min view)
	lastGMV common.CSN

	// Linear Lamport timestamp state.
	tsMu      sync.Mutex
	cachedTS  common.CSN
	fetchedAt time.Time

	cacheMu  sync.Mutex
	ctsCache map[common.GTrxID]common.CSN

	// TSO group-allocation combiner state (see NextCommitCSN). tsoSolos
	// counts direct fetch-adds in flight for the adaptive solo fast path.
	tsoMu      sync.Mutex
	tsoWaiters []chan tsoGrant
	tsoLeader  bool
	tsoSolos   int

	// Speculative-CTS state. Owner side: specNext is the lowest local trx
	// id not yet finished-and-freed; ids finishing out of order park in
	// specDone until the contiguous floor (specNext-1) advances, which is
	// then published at hdrSpecFloor for one-sided pickup. Reader side:
	// peerFloor caches each peer's last-seen floor; a g.Trx at or below it
	// resolves to CSNMin with no fabric op.
	specMu    sync.Mutex
	specNext  common.TrxID
	specDone  map[common.TrxID]struct{}
	floorMu   sync.Mutex
	peerFloor map[common.NodeID]common.TrxID
	specHits  atomic.Int64
	specReads atomic.Int64

	tr *trace.Tracer

	closed atomic.Bool
}

// tsoGrant is one CSN handed out of a group fetch-add. grouped reports
// whether the round's single fetch-add covered more than one committer.
type tsoGrant struct {
	cts     common.CSN
	grouped bool
	err     error
}

// NewClient registers the node's TIT region and returns its client.
func NewClient(ep *rdma.Endpoint, fabric *rdma.Fabric, cfg Config) *Client {
	cfg.fill()
	c := &Client{
		node:     ep.Node(),
		fabric:   fabric.From(ep.Node()),
		tit:      ep.RegisterRegion(RegionTIT, headerSize+cfg.TITSlots*SlotSize),
		cfg:      cfg,
		retry:    common.DefaultRetryPolicy(),
		inUse:    make(map[uint32]common.TrxID),
		views:    make(map[common.CSN]int),
		lastGMV:  common.CSNMin,
		ctsCache: make(map[common.GTrxID]common.CSN),
	}
	c.peerFloor = make(map[common.NodeID]common.TrxID)
	c.specDone = make(map[common.TrxID]struct{})
	c.free = make([]uint32, cfg.TITSlots)
	for i := range c.free {
		c.free[i] = uint32(cfg.TITSlots - 1 - i)
	}
	return c
}

// Node returns the owning node id.
func (c *Client) Node() common.NodeID { return c.node }

// SetRetryPolicy overrides the transient-fault retry policy for the
// client's one-sided and RPC paths (chaos ablations disable it).
func (c *Client) SetRetryPolicy(p common.RetryPolicy) { c.retry = p }

// SetEpochStamp makes the client stamp its min-view reports with the node's
// incarnation epoch so PMFS can fence evicted incarnations.
func (c *Client) SetEpochStamp(s *common.EpochStamp) { c.stamp = s }

// SetTracer attaches the node's commit-path tracer (nil disables). TSO
// allocations are observed as StageTSOSolo or StageTSOGroup by whether the
// grant came out of a flat-combined round.
func (c *Client) SetTracer(t *trace.Tracer) { c.tr = t }

func slotOff(slot uint32) int { return headerSize + int(slot)*SlotSize }

// SetRecovering raises or lowers the recovery fence. A restarting node must
// raise it before re-registering its TIT region and lower it only after its
// pre-crash uncommitted transactions are rolled back.
func (c *Client) SetRecovering(on bool) {
	v := uint64(0)
	if on {
		v = 1
	}
	must(c.tit.LocalWrite64(hdrFence, v))
}

// InitTrxFloor seeds the speculative-CTS floor at the node's restored
// transaction-id watermark: every id at or below hw either finished before
// the restart or was never allocated (watermark slack), so — once the
// recovery fence is down — a version stamped with it is visible to all views
// or no longer exists, exactly the CSNMin contract. Readers never cache a
// floor read together with a raised fence, so a mid-recovery publication is
// harmless. Core calls this once per incarnation, before the node serves
// transactions; local trx ids are strictly monotone across incarnations
// (persisted watermark), which is what keeps stale cached floors sound.
func (c *Client) InitTrxFloor(hw common.TrxID) {
	c.specMu.Lock()
	c.specNext = hw + 1
	c.specMu.Unlock()
	if !c.cfg.DisableSpecCTS {
		must(c.tit.LocalWrite64(hdrSpecFloor, uint64(hw)))
	}
}

// markFinished records that local transaction trx can never again resolve to
// anything but CSNMin — it was recycled under the GMV gate, aborted with its
// versions rolled back, or never admitted — and advances the published floor
// when the finished prefix is contiguous.
func (c *Client) markFinished(trx common.TrxID) {
	c.specMu.Lock()
	if c.specNext == 0 || trx < c.specNext {
		c.specMu.Unlock()
		return
	}
	if trx != c.specNext {
		c.specDone[trx] = struct{}{}
		c.specMu.Unlock()
		return
	}
	c.specNext++
	for {
		if _, ok := c.specDone[c.specNext]; !ok {
			break
		}
		delete(c.specDone, c.specNext)
		c.specNext++
	}
	floor := c.specNext - 1
	c.specMu.Unlock()
	if !c.cfg.DisableSpecCTS {
		must(c.tit.LocalWrite64(hdrSpecFloor, uint64(floor)))
	}
}

// noteFloor folds a peer's floor observed on a one-sided header read into the
// reader-side cache. Floors only grow (monotone trx ids across incarnations).
func (c *Client) noteFloor(node common.NodeID, floor common.TrxID) {
	if floor == 0 || c.cfg.DisableSpecCTS {
		return
	}
	c.floorMu.Lock()
	if floor > c.peerFloor[node] {
		c.peerFloor[node] = floor
	}
	c.floorMu.Unlock()
}

// specCTS consults the cached recycle floor of g's owner: at or below it, g
// is proven finished (committed below the GMV, or aborted) without touching
// the fabric. Hit/read counters feed ClusterStats.
func (c *Client) specCTS(g common.GTrxID) (common.CSN, bool) {
	if c.cfg.DisableSpecCTS || g.Node == c.node {
		return 0, false
	}
	c.specReads.Add(1)
	c.floorMu.Lock()
	floor := c.peerFloor[g.Node]
	c.floorMu.Unlock()
	if g.Trx == 0 || g.Trx > floor {
		return 0, false
	}
	c.specHits.Add(1)
	return common.CSNMin, true
}

// SpecCTSStats returns (hits, lookups) of the speculative CTS path.
func (c *Client) SpecCTSStats() (hits, reads int64) {
	return c.specHits.Load(), c.specReads.Load()
}

// Begin allocates a TIT slot for a new local transaction and returns its
// global id. It fails with ErrTITFull when every slot is pinned by an
// unrecycled transaction.
func (c *Client) Begin(trx common.TrxID) (common.GTrxID, error) {
	if c.closed.Load() {
		return common.GTrxID{}, fmt.Errorf("txfusion: node %d: %w", c.node, common.ErrClosed)
	}
	c.mu.Lock()
	if len(c.free) == 0 {
		c.mu.Unlock()
		// Opportunistic recycle against the last seen global min view,
		// then retry once.
		c.Recycle(c.LastGMV())
		c.mu.Lock()
		if len(c.free) == 0 {
			c.mu.Unlock()
			// The id was never admitted, so no version will ever carry it:
			// finish it immediately or it would pin the recycle floor.
			c.markFinished(trx)
			return common.GTrxID{}, ErrTITFull
		}
	}
	slot := c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	c.inUse[slot] = trx
	c.mu.Unlock()

	off := slotOff(slot)
	// Bump the reuse generation first so a racing remote reader of the
	// old generation sees a version mismatch, never a half-written slot.
	ver, err := c.tit.LocalRead64(off + slotVersion)
	if err != nil {
		return common.GTrxID{}, err
	}
	ver++
	must(c.tit.LocalWrite64(off+slotVersion, ver))
	must(c.tit.LocalWrite64(off+slotCTS, uint64(common.CSNInit)))
	must(c.tit.LocalWrite64(off+slotRef, 0))
	must(c.tit.LocalWrite64(off+slotTrx, uint64(trx)))
	must(c.tit.LocalWrite64(off+slotActive, 1))
	return common.GTrxID{Node: c.node, Trx: trx, Slot: slot, Version: uint32(ver)}, nil
}

// ErrTITFull reports TIT slot exhaustion; the caller should back off and let
// recycling catch up.
var ErrTITFull = fmt.Errorf("txfusion: transaction information table full")

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// Commit publishes the transaction's CTS in its TIT slot, making it globally
// committed/inactive. It returns true if a waiter flagged the slot (§4.3.2);
// the caller must then notify Lock Fusion.
func (c *Client) Commit(g common.GTrxID, cts common.CSN) (waiters bool, err error) {
	if g.Node != c.node {
		return false, fmt.Errorf("txfusion: commit of foreign transaction %v", g)
	}
	if c.closed.Load() {
		return false, fmt.Errorf("txfusion: node %d: %w", c.node, common.ErrClosed)
	}
	off := slotOff(g.Slot)
	must(c.tit.LocalWrite64(off+slotCTS, uint64(cts)))
	ref, err := c.tit.LocalRead64(off + slotRef)
	if err != nil {
		return false, err
	}
	return ref != 0, nil
}

// Finish releases the slot of an aborted transaction (its page versions have
// already been rolled back, so nothing can reference the slot). It returns
// true if a waiter flagged the slot.
func (c *Client) Finish(g common.GTrxID) (waiters bool) {
	off := slotOff(g.Slot)
	ref, err := c.tit.LocalRead64(off + slotRef)
	if err != nil {
		panic(err)
	}
	c.freeSlot(g.Slot)
	return ref != 0
}

func (c *Client) freeSlot(slot uint32) {
	off := slotOff(slot)
	must(c.tit.LocalWrite64(off+slotActive, 0))
	must(c.tit.LocalWrite64(off+slotTrx, 0))
	c.mu.Lock()
	trx, ok := c.inUse[slot]
	if ok {
		delete(c.inUse, slot)
		c.free = append(c.free, slot)
	}
	c.mu.Unlock()
	if ok {
		// A slot is freed only for a recycled (GMV-covered) or aborted
		// transaction — exactly the floor's CSNMin contract.
		c.markFinished(trx)
	}
}

// slotState is one decoded TIT slot.
type slotState struct {
	trx     common.TrxID
	cts     common.CSN
	version uint64
	active  bool
}

func decodeSlot(b []byte) slotState {
	return slotState{
		trx:     common.TrxID(binary.LittleEndian.Uint64(b[slotTrx:])),
		cts:     common.CSN(binary.LittleEndian.Uint64(b[slotCTS:])),
		version: binary.LittleEndian.Uint64(b[slotVersion:]),
		active:  binary.LittleEndian.Uint64(b[slotActive:]) == 1,
	}
}

// GetTrxCTS implements the TIT half of Algorithm 1: resolve the effective
// CTS of transaction g. CSNMin means "slot reused ⇒ committed and visible to
// all"; CSNMax means "still active ⇒ visible to nobody else". A committed
// CTS is cached (it is immutable).
func (c *Client) GetTrxCTS(g common.GTrxID) (common.CSN, error) {
	if c.cfg.CTSCacheSize > 0 {
		c.cacheMu.Lock()
		cts, ok := c.ctsCache[g]
		c.cacheMu.Unlock()
		if ok {
			return cts, nil
		}
	}
	var buf [SlotSize]byte
	if g.Node == c.node {
		if err := c.tit.LocalRead(slotOff(g.Slot), buf[:]); err != nil {
			return 0, err
		}
		s := decodeSlot(buf[:])
		if s.version != uint64(g.Version) || s.trx != g.Trx || !s.active {
			fenced, err := c.readFence(g.Node)
			if err != nil || fenced {
				return common.CSNMax, nil
			}
			c.cacheCTS(g, common.CSNMin)
			return common.CSNMin, nil
		}
		if s.cts == common.CSNInit {
			return common.CSNMax, nil
		}
		c.cacheCTS(g, s.cts)
		return s.cts, nil
	}
	// Speculative path: the owner's published recycle floor may already
	// prove g finished — committed below the GMV bound (visible to every
	// view) or aborted — with no round-trip at all.
	tok := c.tr.Start()
	if cts, ok := c.specCTS(g); ok {
		c.tr.Observe(trace.StageCTSSpec, tok)
		return cts, nil
	}
	// One-sided RDMA read of the remote slot (Algorithm 1 line 11), with the
	// owner's header (recovery fence + recycle floor) riding the same
	// doorbell batch: the mismatch rule needs the fence anyway, and the
	// floor refreshes the speculative cache for free. Transient fabric
	// faults are retried: the read chain is idempotent.
	var hdr [headerSize]byte
	segs := []rdma.Seg{
		{Off: hdrFence, Buf: hdr[:]},
		{Off: slotOff(g.Slot), Buf: buf[:]},
	}
	if err := common.Retry(c.retry, func() error {
		return c.fabric.ReadV(g.Node, RegionTIT, segs)
	}); err != nil {
		return 0, err
	}
	fenced := binary.LittleEndian.Uint64(hdr[hdrFence:]) == 1
	if !fenced {
		c.noteFloor(g.Node, common.TrxID(binary.LittleEndian.Uint64(hdr[hdrSpecFloor:])))
	}
	s := decodeSlot(buf[:])
	if s.version != uint64(g.Version) || s.trx != g.Trx || !s.active {
		// Slot reused or freed. With the owner's recovery fence down,
		// the transaction finished and its slot was recycled, which
		// only happens once its changes are visible to every view
		// (lines 13-15) — or it aborted, leaving no surviving row
		// version. With the fence up, the owning node crashed and the
		// transaction's fate is unknown until its recovery completes:
		// treat it as active.
		if fenced {
			return common.CSNMax, nil
		}
		c.cacheCTS(g, common.CSNMin)
		return common.CSNMin, nil
	}
	if s.cts == common.CSNInit {
		return common.CSNMax, nil // still active (lines 17-19)
	}
	c.cacheCTS(g, s.cts)
	return s.cts, nil
}

// GetTrxCTSBatch resolves the effective CTS of many transactions at once:
// cached entries are served locally, the rest are grouped by owning node and
// fetched with ONE doorbell-batched ReadV per node — the node's recovery
// fence word rides in the same batch as the slots, so the mismatch rule
// needs no second fabric op. Transactions whose owner is unreachable are
// omitted from the result; the caller applies its membership fate rule.
//
// Committed CTSes and slot-recycled (CSNMin) outcomes are cached exactly as
// in GetTrxCTS. The CSNMin negative cache is sound because TIT recycling is
// GMV-gated: a slot is reused only once its transaction's changes are
// visible to every present and future view, so "recycled" can never later
// resolve to anything a reader would treat differently.
func (c *Client) GetTrxCTSBatch(gs []common.GTrxID) map[common.GTrxID]common.CSN {
	out := make(map[common.GTrxID]common.CSN, len(gs))
	var remote map[common.NodeID][]common.GTrxID
	for _, g := range gs {
		if _, done := out[g]; done {
			continue
		}
		if c.cfg.CTSCacheSize > 0 {
			c.cacheMu.Lock()
			cts, ok := c.ctsCache[g]
			c.cacheMu.Unlock()
			if ok {
				out[g] = cts
				continue
			}
		}
		if g.Node == c.node {
			if cts, err := c.GetTrxCTS(g); err == nil {
				out[g] = cts
			}
			continue
		}
		if cts, ok := c.specCTS(g); ok {
			out[g] = cts
			continue
		}
		if remote == nil {
			remote = make(map[common.NodeID][]common.GTrxID)
		}
		if !containsG(remote[g.Node], g) {
			remote[g.Node] = append(remote[g.Node], g)
		}
	}
	for node, ids := range remote {
		var hdr [headerSize]byte
		bufs := make([]byte, len(ids)*SlotSize)
		segs := make([]rdma.Seg, 0, len(ids)+1)
		segs = append(segs, rdma.Seg{Off: hdrFence, Buf: hdr[:]})
		for i, g := range ids {
			segs = append(segs, rdma.Seg{Off: slotOff(g.Slot), Buf: bufs[i*SlotSize : (i+1)*SlotSize]})
		}
		// Idempotent one-sided read chain: retried whole on transient faults.
		if err := common.Retry(c.retry, func() error {
			return c.fabric.ReadV(node, RegionTIT, segs)
		}); err != nil {
			continue
		}
		fenced := binary.LittleEndian.Uint64(hdr[hdrFence:]) == 1
		if !fenced {
			c.noteFloor(node, common.TrxID(binary.LittleEndian.Uint64(hdr[hdrSpecFloor:])))
		}
		for i, g := range ids {
			s := decodeSlot(bufs[i*SlotSize:])
			switch {
			case s.version != uint64(g.Version) || s.trx != g.Trx || !s.active:
				if fenced {
					out[g] = common.CSNMax
				} else {
					out[g] = common.CSNMin
					c.cacheCTS(g, common.CSNMin)
				}
			case s.cts == common.CSNInit:
				out[g] = common.CSNMax
			default:
				out[g] = s.cts
				c.cacheCTS(g, s.cts)
			}
		}
	}
	return out
}

func containsG(gs []common.GTrxID, g common.GTrxID) bool {
	for _, x := range gs {
		if x == g {
			return true
		}
	}
	return false
}

// readFence reads the recovery fence of node's TIT region.
func (c *Client) readFence(node common.NodeID) (bool, error) {
	if node == c.node {
		v, err := c.tit.LocalRead64(hdrFence)
		return v == 1, err
	}
	var v uint64
	err := common.Retry(c.retry, func() (e error) {
		v, e = c.fabric.Read64(node, RegionTIT, hdrFence)
		return e
	})
	return v == 1, err
}

func (c *Client) cacheCTS(g common.GTrxID, cts common.CSN) {
	if c.cfg.CTSCacheSize == 0 {
		return
	}
	c.cacheMu.Lock()
	if len(c.ctsCache) >= c.cfg.CTSCacheSize {
		// Cheap wholesale reset; entries repopulate on demand.
		c.ctsCache = make(map[common.GTrxID]common.CSN)
	}
	c.ctsCache[g] = cts
	c.cacheMu.Unlock()
}

// IsActive reports whether transaction g is still running (used by the
// RLock protocol to test the row lock field, §4.3.2).
func (c *Client) IsActive(g common.GTrxID) (bool, error) {
	cts, err := c.GetTrxCTS(g)
	if err != nil {
		return false, err
	}
	return cts == common.CSNMax, nil
}

// SetRefFlag marks transaction g's TIT slot as awaited, with a one-sided
// CAS on the slot's ref word (§4.3.2). It returns false if the slot no
// longer holds the same generation (the holder already finished).
func (c *Client) SetRefFlag(g common.GTrxID) (bool, error) {
	off := slotOff(g.Slot)
	if g.Node == c.node {
		// Local waiter (same node, different transaction).
		var buf [SlotSize]byte
		if err := c.tit.LocalRead(off, buf[:]); err != nil {
			return false, err
		}
		s := decodeSlot(buf[:])
		if s.version != uint64(g.Version) || s.trx != g.Trx || !s.active || s.cts != common.CSNInit {
			return false, nil
		}
		must(c.tit.LocalWrite64(off+slotRef, 1))
		return true, nil
	}
	var buf [SlotSize]byte
	if err := common.Retry(c.retry, func() error {
		return c.fabric.Read(g.Node, RegionTIT, off, buf[:])
	}); err != nil {
		return false, err
	}
	s := decodeSlot(buf[:])
	if s.version != uint64(g.Version) || s.trx != g.Trx || !s.active || s.cts != common.CSNInit {
		return false, nil
	}
	// The 0->1 CAS is idempotent, so a retried attempt that already landed
	// just observes ref=1 and reports success.
	if err := common.Retry(c.retry, func() error {
		_, e := c.fabric.CAS64(g.Node, RegionTIT, off+slotRef, 0, 1)
		return e
	}); err != nil {
		return false, err
	}
	return true, nil
}

// --- timestamps ---------------------------------------------------------

// NextCommitCSN draws a fresh commit timestamp from the TSO (§4.1: "usually
// fetched using a one-sided RDMA operation ... completed within several
// microseconds"), group-allocating under concurrency: committers on one node
// that arrive while a fetch is in flight are combined into a single
// fetch-add of k, and each takes a distinct CSN from the returned block.
//
// CSN-ordering argument: a block CSN is handed only to committers that
// registered BEFORE the group's fetch-add executed, so for any snapshot read
// that observed TSO=V before that fetch-add, every CSN in the block is > V —
// the same anomaly window as k individual fetch-adds. (Pre-fetching blocks
// for FUTURE committers would break this: a commit could then receive a CSN
// at or below an already-open read view.)
func (c *Client) NextCommitCSN() (common.CSN, error) {
	cts, _, err := c.NextCommitCSNEx()
	return cts, err
}

// tsoSoloLimit bounds concurrent direct fetch-adds: past it, arrivals fold
// into the flat-combining queue so the oracle word sees bounded contention.
const tsoSoloLimit = 2

// NextCommitCSNEx is NextCommitCSN plus classification: grouped reports
// whether the CSN came out of a flat-combined round (one fetch-add shared by
// k committers) rather than a solo allocation.
//
// Adaptive switching: with the grant queue empty — no combiner leader, no
// waiters, few solo fetch-adds outstanding — a committer skips the combiner
// entirely and issues its own fetch-add, saving the grant channel and two
// handoffs; under queue depth the existing flat-combining path takes over.
// Both paths draw the CSN from a fetch-add that executes after the committer
// arrived, so the CSN-ordering argument below is unchanged, and a solo
// commit still costs exactly one PMFS atomic.
func (c *Client) NextCommitCSNEx() (common.CSN, bool, error) {
	tok := c.tr.Start()
	if !c.cfg.DisableAdaptiveTSO {
		c.tsoMu.Lock()
		if !c.tsoLeader && len(c.tsoWaiters) == 0 && c.tsoSolos < tsoSoloLimit {
			c.tsoSolos++
			c.tsoMu.Unlock()
			var prev uint64
			err := common.Retry(c.retry, func() (e error) {
				prev, e = c.fabric.FetchAdd64(common.PMFSNode, RegionTSO, 0, 1)
				return e
			})
			c.tsoMu.Lock()
			c.tsoSolos--
			c.tsoMu.Unlock()
			if err != nil {
				return 0, false, err
			}
			cts := common.CSN(prev + 1)
			c.noteTS(cts)
			c.tr.Observe(trace.StageTSOSolo, tok)
			return cts, false, nil
		}
		c.tsoMu.Unlock()
	}
	ch := make(chan tsoGrant, 1)
	c.tsoMu.Lock()
	c.tsoWaiters = append(c.tsoWaiters, ch)
	if c.tsoLeader {
		c.tsoMu.Unlock()
		return c.tsoWait(ch, tok)
	}
	c.tsoLeader = true
	c.tsoMu.Unlock()

	// Combiner leader: drain registration rounds until no committer is
	// waiting. Each round issues ONE fetch-add of the round's group size.
	for {
		c.tsoMu.Lock()
		batch := c.tsoWaiters
		c.tsoWaiters = nil
		if len(batch) == 0 {
			c.tsoLeader = false
			c.tsoMu.Unlock()
			break
		}
		c.tsoMu.Unlock()
		// A dropped fetch-add never executed (injection fails ops before
		// they run), so retrying cannot double-advance the oracle; and even
		// if it did, timestamps only need to be unique and monotonic, not
		// dense.
		var prev uint64
		err := common.Retry(c.retry, func() (e error) {
			prev, e = c.fabric.FetchAdd64(common.PMFSNode, RegionTSO, 0, uint64(len(batch)))
			return e
		})
		if err == nil {
			c.noteTS(common.CSN(prev + uint64(len(batch))))
		}
		grouped := len(batch) > 1
		for i, w := range batch {
			if err != nil {
				w <- tsoGrant{err: err}
			} else {
				w <- tsoGrant{cts: common.CSN(prev + 1 + uint64(i)), grouped: grouped}
			}
		}
	}
	return c.tsoWait(ch, tok)
}

// tsoWait collects this committer's grant and observes the allocation into
// the tracer aggregate, classified solo vs group.
func (c *Client) tsoWait(ch chan tsoGrant, tok trace.Token) (common.CSN, bool, error) {
	g := <-ch
	if g.err == nil {
		st := trace.StageTSOSolo
		if g.grouped {
			st = trace.StageTSOGroup
		}
		c.tr.Observe(st, tok)
	}
	return g.cts, g.grouped, g.err
}

// CurrentReadCSN returns a snapshot timestamp for a new read view. Under the
// Linear Lamport optimization a request reuses the last fetched timestamp if
// that fetch completed after the request arrived; otherwise it performs a
// one-sided TSO read.
func (c *Client) CurrentReadCSN() (common.CSN, error) {
	if c.cfg.LamportReuse {
		arrived := time.Now()
		c.tsMu.Lock()
		if c.cachedTS != 0 && c.fetchedAt.After(arrived) {
			ts := c.cachedTS
			c.tsMu.Unlock()
			return ts, nil
		}
		c.tsMu.Unlock()
	}
	var v uint64
	err := common.Retry(c.retry, func() (e error) {
		v, e = c.fabric.Read64(common.PMFSNode, RegionTSO, 0)
		return e
	})
	if err != nil {
		return 0, err
	}
	ts := common.CSN(v)
	c.noteTS(ts)
	return ts, nil
}

func (c *Client) noteTS(ts common.CSN) {
	now := time.Now()
	c.tsMu.Lock()
	if ts > c.cachedTS {
		c.cachedTS = ts
		c.fetchedAt = now
	}
	c.tsMu.Unlock()
}

// --- read views & recycling ----------------------------------------------

// OpenView registers an active read view at snapshot csn (for min-view
// accounting) and returns it.
func (c *Client) OpenView(csn common.CSN) common.CSN {
	c.mu.Lock()
	c.views[csn]++
	c.mu.Unlock()
	return csn
}

// CloseView unregisters a read view.
func (c *Client) CloseView(csn common.CSN) {
	c.mu.Lock()
	if n := c.views[csn]; n <= 1 {
		delete(c.views, csn)
	} else {
		c.views[csn] = n - 1
	}
	c.mu.Unlock()
}

// MinLocalView returns the smallest snapshot any local view holds, or the
// current TSO value when the node is idle.
func (c *Client) MinLocalView() (common.CSN, error) {
	c.mu.Lock()
	min := common.CSNMax
	for v := range c.views {
		if v < min {
			min = v
		}
	}
	c.mu.Unlock()
	if min != common.CSNMax {
		return min, nil
	}
	var v uint64
	err := common.Retry(c.retry, func() (e error) {
		v, e = c.fabric.Read64(common.PMFSNode, RegionTSO, 0)
		return e
	})
	if err != nil {
		return 0, err
	}
	return common.CSN(v), nil
}

// ReportMinView sends the node's minimum view to Transaction Fusion,
// receives the global minimum, recycles eligible TIT slots, and returns the
// global minimum (the background thread of §4.1 "TIT recycle").
func (c *Client) ReportMinView() (common.CSN, error) {
	min, err := c.MinLocalView()
	if err != nil {
		return 0, err
	}
	req := make([]byte, 11)
	req[0] = opReportMinView
	binary.LittleEndian.PutUint16(req[1:], uint16(c.node))
	binary.LittleEndian.PutUint64(req[3:], uint64(min))
	req = c.stamp.Stamp(req)
	// Min-view reports are idempotent (the server folds an absolute value),
	// so lost responses are safely retried.
	var resp []byte
	err = common.Retry(c.retry, func() (e error) {
		resp, e = c.fabric.Call(common.PMFSNode, ServiceTxF, req)
		return e
	})
	if err != nil {
		return 0, err
	}
	if len(resp) < 8 {
		return 0, common.ErrShortBuffer
	}
	gmv := common.CSN(binary.LittleEndian.Uint64(resp))
	c.mu.Lock()
	if gmv > c.lastGMV {
		c.lastGMV = gmv
	}
	c.mu.Unlock()
	c.Recycle(gmv)
	return gmv, nil
}

// LastGMV returns the most recently learned global minimum view.
func (c *Client) LastGMV() common.CSN {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastGMV
}

// Recycle frees every committed slot whose CTS is at or below gmv: under
// the visibility rule "cts <= view ⇒ visible", such changes are visible to
// every present and future view (all views are >= gmv), so a reuse-version
// mismatch can safely be interpreted as CSNMin.
func (c *Client) Recycle(gmv common.CSN) int {
	c.mu.Lock()
	slots := make([]uint32, 0, len(c.inUse))
	for s := range c.inUse {
		slots = append(slots, s)
	}
	c.mu.Unlock()
	n := 0
	for _, s := range slots {
		cts, err := c.tit.LocalRead64(slotOff(s) + slotCTS)
		if err != nil {
			continue
		}
		if common.CSN(cts) != common.CSNInit && common.CSN(cts) <= gmv {
			c.freeSlot(s)
			n++
		}
	}
	return n
}

// Close fences the client after a node crash.
func (c *Client) Close() { c.closed.Store(true) }

// ActiveSlots returns the number of allocated TIT slots (tests/inspection).
func (c *Client) ActiveSlots() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.inUse)
}
