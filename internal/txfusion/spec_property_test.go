package txfusion

import (
	"math/rand"
	"sync"
	"testing"

	"polardbmp/internal/common"
	"polardbmp/internal/rdma"
)

// TestPropertySpecCTSMatchesTITGroundTruth pins the §14 speculative-CTS
// safety argument: a speculative hit (resolving a peer transaction from its
// owner's published recycle floor, skipping the TIT round-trip) must never
// answer differently from the real TIT read. A writer churns transactions —
// commit, abort, recycle under a growing GMV — while a spec-enabled reader
// resolves random ids; every time the reader's spec counter ticks, the same
// id is re-resolved through a DisableSpecCTS client whose only source is the
// TIT itself, and both must say CSNMin ("finished, visible to all").
func TestPropertySpecCTSMatchesTITGroundTruth(t *testing.T) {
	fabric := rdma.NewFabric(rdma.Latency{})
	NewServer(fabric.Register(common.PMFSNode), fabric)
	writer := NewClient(fabric.Register(common.NodeID(1)), fabric, Config{})
	reader := NewClient(fabric.Register(common.NodeID(2)), fabric, Config{})
	ground := NewClient(fabric.Register(common.NodeID(3)), fabric, Config{DisableSpecCTS: true})
	writer.InitTrxFloor(0)

	const churn = 400
	var (
		mu     sync.Mutex
		issued []common.GTrxID
	)
	done := make(chan struct{})
	go func() {
		defer close(done)
		rng := rand.New(rand.NewSource(11))
		var csn common.CSN
		for i := 1; i <= churn; i++ {
			g, err := writer.Begin(common.TrxID(i))
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			issued = append(issued, g)
			mu.Unlock()
			if rng.Intn(4) == 0 {
				writer.Finish(g) // abort: rolled back, slot released
			} else {
				csn++
				if _, err := writer.Commit(g, csn); err != nil {
					t.Error(err)
					return
				}
			}
			// Recycle committed slots under the advancing GMV so the
			// published floor actually moves during the run.
			if i%7 == 0 {
				writer.Recycle(csn)
			}
		}
		writer.Recycle(csn)
	}()

	rng := rand.New(rand.NewSource(13))
	specHits := 0
	check := func(g common.GTrxID) {
		h0, _ := reader.SpecCTSStats()
		cts, err := reader.GetTrxCTS(g)
		if err != nil {
			t.Fatal(err)
		}
		h1, _ := reader.SpecCTSStats()
		if h1 == h0 {
			return // real TIT read — nothing speculative to cross-check
		}
		specHits++
		if cts != common.CSNMin {
			t.Fatalf("spec hit for %v returned %d, want CSNMin", g, cts)
		}
		// The floor proved g finished; the TIT itself must agree, and the
		// answer is immutable from here on.
		gt, err := ground.GetTrxCTS(g)
		if err != nil {
			t.Fatal(err)
		}
		if gt != common.CSNMin {
			t.Fatalf("spec hit for %v but TIT ground truth = %d, want CSNMin", g, gt)
		}
	}
	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
		}
		mu.Lock()
		n := len(issued)
		var g common.GTrxID
		if n > 0 {
			g = issued[rng.Intn(n)]
		}
		mu.Unlock()
		if n == 0 || t.Failed() {
			continue
		}
		check(g)
	}
	if t.Failed() {
		return
	}
	// Final sweep: every issued transaction is finished now; after one real
	// read refreshes the floor cache, old ids must hit the spec path and
	// still agree with the TIT.
	mu.Lock()
	all := append([]common.GTrxID(nil), issued...)
	mu.Unlock()
	for _, g := range all {
		check(g)
	}
	if specHits == 0 {
		t.Fatal("speculative CTS path never hit — property not exercised")
	}
	if hits, reads := reader.SpecCTSStats(); hits == 0 || reads < hits {
		t.Fatalf("implausible spec counters: hits=%d reads=%d", hits, reads)
	}
}
