package txfusion

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"polardbmp/internal/common"
	"polardbmp/internal/rdma"
)

// harness wires a PMFS server plus n node clients on one fabric.
func harness(t testing.TB, n int, cfg Config) (*Server, []*Client) {
	t.Helper()
	fabric := rdma.NewFabric(rdma.Latency{})
	srv := NewServer(fabric.Register(common.PMFSNode), fabric)
	clients := make([]*Client, n)
	for i := range clients {
		clients[i] = NewClient(fabric.Register(common.NodeID(i+1)), fabric, cfg)
	}
	return srv, clients
}

func TestTSOMonotonic(t *testing.T) {
	_, cs := harness(t, 2, Config{})
	var last common.CSN
	for i := 0; i < 100; i++ {
		c := cs[i%2]
		cts, err := c.NextCommitCSN()
		if err != nil {
			t.Fatal(err)
		}
		if cts <= last {
			t.Fatalf("TSO not monotonic: %d after %d", cts, last)
		}
		last = cts
	}
}

func TestBeginCommitLocalCTS(t *testing.T) {
	_, cs := harness(t, 1, Config{})
	c := cs[0]
	g, err := c.Begin(1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Node != 1 || g.Trx != 1 {
		t.Fatalf("gtrx = %v", g)
	}
	// Active transaction resolves to CSNMax.
	cts, err := c.GetTrxCTS(g)
	if err != nil || cts != common.CSNMax {
		t.Fatalf("active cts = %d err = %v", cts, err)
	}
	if active, _ := c.IsActive(g); !active {
		t.Fatal("IsActive = false for running transaction")
	}
	if _, err := c.Commit(g, 42); err != nil {
		t.Fatal(err)
	}
	cts, err = c.GetTrxCTS(g)
	if err != nil || cts != 42 {
		t.Fatalf("committed cts = %d err = %v", cts, err)
	}
	if active, _ := c.IsActive(g); active {
		t.Fatal("IsActive = true after commit")
	}
}

func TestRemoteCTSRead(t *testing.T) {
	_, cs := harness(t, 2, Config{CTSCacheSize: -1})
	g, err := cs[0].Begin(7)
	if err != nil {
		t.Fatal(err)
	}
	// Node 2 resolves node 1's transaction via one-sided read.
	cts, err := cs[1].GetTrxCTS(g)
	if err != nil || cts != common.CSNMax {
		t.Fatalf("remote active cts = %d err = %v", cts, err)
	}
	if _, err := cs[0].Commit(g, 77); err != nil {
		t.Fatal(err)
	}
	cts, err = cs[1].GetTrxCTS(g)
	if err != nil || cts != 77 {
		t.Fatalf("remote committed cts = %d err = %v", cts, err)
	}
}

func TestSlotReuseVersionMismatch(t *testing.T) {
	// One slot: the second Begin must reuse it with a bumped version,
	// and the stale gtrx must then resolve to CSNMin.
	_, cs := harness(t, 1, Config{TITSlots: 1})
	c := cs[0]
	g1, err := c.Begin(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Commit(g1, 10); err != nil {
		t.Fatal(err)
	}
	c.Recycle(100) // g1's CTS 10 < 100: slot freed
	g2, err := c.Begin(2)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Slot != g1.Slot || g2.Version == g1.Version {
		t.Fatalf("slot not reused with new version: %v vs %v", g1, g2)
	}
	cts, err := c.GetTrxCTS(g1)
	if err != nil || cts != common.CSNMin {
		t.Fatalf("stale gtrx cts = %d err = %v (want CSNMin)", cts, err)
	}
}

func TestRecycleRespectsGMV(t *testing.T) {
	_, cs := harness(t, 1, Config{})
	c := cs[0]
	g1, _ := c.Begin(1)
	c.Commit(g1, 50)
	if n := c.Recycle(49); n != 0 {
		t.Fatalf("recycled %d slots with CTS above gmv", n)
	}
	if n := c.Recycle(50); n != 1 {
		t.Fatalf("recycled %d slots, want 1 (CTS==gmv is eligible)", n)
	}
	// Active transactions are never recycled.
	g2, _ := c.Begin(2)
	if n := c.Recycle(common.CSNMax); n != 0 {
		t.Fatalf("recycled active slot")
	}
	_ = g2
}

func TestTITFullAndRecovery(t *testing.T) {
	_, cs := harness(t, 1, Config{TITSlots: 2})
	c := cs[0]
	g1, _ := c.Begin(1)
	if _, err := c.Begin(2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Begin(3); !errors.Is(err, ErrTITFull) {
		t.Fatalf("err = %v, want ErrTITFull", err)
	}
	// Commit one with a real TSO timestamp + learn the GMV, then Begin
	// succeeds again via the opportunistic recycle.
	cts, err := c.NextCommitCSN()
	if err != nil {
		t.Fatal(err)
	}
	c.Commit(g1, cts)
	if _, err := c.ReportMinView(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Begin(3); err != nil {
		t.Fatalf("begin after recycle: %v", err)
	}
}

func TestRefFlag(t *testing.T) {
	_, cs := harness(t, 2, Config{})
	g, _ := cs[0].Begin(1)
	ok, err := cs[1].SetRefFlag(g)
	if err != nil || !ok {
		t.Fatalf("SetRefFlag = %v, %v", ok, err)
	}
	waiters, err := cs[0].Commit(g, 9)
	if err != nil || !waiters {
		t.Fatalf("commit waiters = %v err = %v", waiters, err)
	}
	// Setting the flag on a finished transaction reports false.
	ok, err = cs[1].SetRefFlag(g)
	if err != nil || ok {
		t.Fatalf("SetRefFlag on committed = %v, %v", ok, err)
	}
}

func TestRefFlagLocal(t *testing.T) {
	_, cs := harness(t, 1, Config{})
	g, _ := cs[0].Begin(1)
	ok, err := cs[0].SetRefFlag(g)
	if err != nil || !ok {
		t.Fatalf("local SetRefFlag = %v, %v", ok, err)
	}
	if waiters, _ := cs[0].Commit(g, 9); !waiters {
		t.Fatal("local ref flag not observed at commit")
	}
}

func TestAbortFinish(t *testing.T) {
	_, cs := harness(t, 2, Config{})
	g, _ := cs[0].Begin(1)
	waiters := cs[0].Finish(g)
	if waiters {
		t.Fatal("no waiters expected")
	}
	// After Finish the slot is freed; remote resolution sees CSNMin
	// (no surviving row version can reference an aborted transaction).
	cts, err := cs[1].GetTrxCTS(g)
	if err != nil || cts != common.CSNMin {
		t.Fatalf("aborted cts = %d err = %v", cts, err)
	}
	if cs[0].ActiveSlots() != 0 {
		t.Fatal("slot not freed by Finish")
	}
}

func TestMinViewAggregation(t *testing.T) {
	srv, cs := harness(t, 2, Config{})
	v1 := cs[0].OpenView(10)
	cs[1].OpenView(20)
	gmv, err := cs[0].ReportMinView()
	if err != nil {
		t.Fatal(err)
	}
	if gmv != 10 {
		t.Fatalf("gmv = %d, want 10", gmv)
	}
	gmv, _ = cs[1].ReportMinView()
	if gmv != 10 {
		t.Fatalf("gmv from node 2 = %d, want 10 (node 1 still holds view 10)", gmv)
	}
	cs[0].CloseView(v1)
	gmv, _ = cs[0].ReportMinView()
	// Node 1 idle now: its min view is the current TSO (>= 1); global is
	// min(node1, node2=20).
	if gmv > 20 {
		t.Fatalf("gmv = %d, want <= 20", gmv)
	}
	_ = srv
}

func TestViewRefCounting(t *testing.T) {
	_, cs := harness(t, 1, Config{})
	c := cs[0]
	c.OpenView(5)
	c.OpenView(5)
	c.CloseView(5)
	min, err := c.MinLocalView()
	if err != nil || min != 5 {
		t.Fatalf("min = %d err = %v (second view at 5 still open)", min, err)
	}
	c.CloseView(5)
	min, _ = c.MinLocalView()
	if min == 5 {
		t.Fatal("view multiset leaked")
	}
}

func TestLamportReuse(t *testing.T) {
	_, cs := harness(t, 1, Config{LamportReuse: true})
	c := cs[0]
	// Prime the cache with a fetch "in the future" relative to the next
	// request's arrival: NextCommitCSN refreshes the cached timestamp.
	if _, err := c.NextCommitCSN(); err != nil {
		t.Fatal(err)
	}
	// A read arriving now (before the cached fetch... the cached fetch
	// happened already, so reuse only applies if fetchedAt > arrival;
	// issue a commit concurrently to refresh while requests arrive).
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			c.NextCommitCSN()
		}
	}()
	var prev common.CSN
	for i := 0; i < 200; i++ {
		ts, err := c.CurrentReadCSN()
		if err != nil {
			t.Fatal(err)
		}
		if ts < prev {
			t.Fatalf("read timestamp regressed: %d after %d", ts, prev)
		}
		prev = ts
	}
	<-done
}

func TestConcurrentBeginCommit(t *testing.T) {
	_, cs := harness(t, 4, Config{TITSlots: 256})
	var wg sync.WaitGroup
	for n := range cs {
		wg.Add(1)
		go func(c *Client, base int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				g, err := c.Begin(common.TrxID(base*1000 + i))
				if err != nil {
					t.Error(err)
					return
				}
				cts, err := c.NextCommitCSN()
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := c.Commit(g, cts); err != nil {
					t.Error(err)
					return
				}
				if i%50 == 0 {
					if _, err := c.ReportMinView(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(cs[n], n)
	}
	wg.Wait()
}

func TestGetTrxCTSCache(t *testing.T) {
	fabric := rdma.NewFabric(rdma.Latency{})
	NewServer(fabric.Register(common.PMFSNode), fabric)
	c1 := NewClient(fabric.Register(1), fabric, Config{CTSCacheSize: 16})
	c2 := NewClient(fabric.Register(2), fabric, Config{CTSCacheSize: 16})
	g, _ := c1.Begin(1)
	c1.Commit(g, 33)
	if _, err := c2.GetTrxCTS(g); err != nil {
		t.Fatal(err)
	}
	before, _, _, _, _, _ := fabric.Stats().Snapshot()
	for i := 0; i < 10; i++ {
		cts, err := c2.GetTrxCTS(g)
		if err != nil || cts != 33 {
			t.Fatalf("cts=%d err=%v", cts, err)
		}
	}
	after, _, _, _, _, _ := fabric.Stats().Snapshot()
	if after != before {
		t.Fatalf("cached lookups still issued %d fabric reads", after-before)
	}
}

func TestRecoveryFenceSemantics(t *testing.T) {
	fabric := rdma.NewFabric(rdma.Latency{})
	NewServer(fabric.Register(common.PMFSNode), fabric)
	c1 := NewClient(fabric.Register(1), fabric, Config{CTSCacheSize: -1})
	c2 := NewClient(fabric.Register(2), fabric, Config{CTSCacheSize: -1})

	// A gtrx that never existed on node 1 (simulates a pre-crash id whose
	// slot was lost with the node's memory).
	ghost := common.GTrxID{Node: 1, Trx: 12345, Slot: 3, Version: 9}

	// Fence down: mismatch means recycled => visible to all.
	cts, err := c2.GetTrxCTS(ghost)
	if err != nil || cts != common.CSNMin {
		t.Fatalf("fence down: cts=%d err=%v, want CSNMin", cts, err)
	}
	// Fence up: unknown ids must be treated as still active.
	c1.SetRecovering(true)
	cts, err = c2.GetTrxCTS(ghost)
	if err != nil || cts != common.CSNMax {
		t.Fatalf("fence up: cts=%d err=%v, want CSNMax", cts, err)
	}
	// SetRefFlag on a fenced ghost reports "not flagged" (caller retries).
	if ok, err := c2.SetRefFlag(ghost); err != nil || ok {
		t.Fatalf("fenced SetRefFlag = %v, %v", ok, err)
	}
	c1.SetRecovering(false)
	cts, _ = c2.GetTrxCTS(ghost)
	if cts != common.CSNMin {
		t.Fatalf("fence lowered: cts=%d, want CSNMin", cts)
	}
}

func TestSlotTrxMismatchIsRecycled(t *testing.T) {
	// A slot occupied by a DIFFERENT transaction (same slot id, different
	// trx id) must read as recycled, even if versions collide.
	fabric := rdma.NewFabric(rdma.Latency{})
	NewServer(fabric.Register(common.PMFSNode), fabric)
	c := NewClient(fabric.Register(1), fabric, Config{TITSlots: 1, CTSCacheSize: -1})
	g1, err := c.Begin(100)
	if err != nil {
		t.Fatal(err)
	}
	stale := common.GTrxID{Node: 1, Trx: 42, Slot: g1.Slot, Version: g1.Version}
	cts, err := c.GetTrxCTS(stale)
	if err != nil || cts != common.CSNMin {
		t.Fatalf("trx-mismatched slot cts=%d err=%v, want CSNMin", cts, err)
	}
	// The real occupant still reads as active.
	if cts, _ := c.GetTrxCTS(g1); cts != common.CSNMax {
		t.Fatalf("occupant cts=%d, want CSNMax", cts)
	}
}

func TestBeginCommitRecycleQuick(t *testing.T) {
	fabric := rdma.NewFabric(rdma.Latency{})
	srv := NewServer(fabric.Register(common.PMFSNode), fabric)
	c := NewClient(fabric.Register(1), fabric, Config{TITSlots: 8, CTSCacheSize: -1})
	_ = srv
	f := func(ops []uint8) bool {
		live := map[common.TrxID]common.GTrxID{}
		next := common.TrxID(1000)
		for _, op := range ops {
			switch op % 3 {
			case 0: // begin
				g, err := c.Begin(next)
				if err != nil {
					// Full table is legal; recycle and move on.
					if _, rerr := c.ReportMinView(); rerr != nil {
						return false
					}
					continue
				}
				live[next] = g
				next++
			case 1: // commit one
				for id, g := range live {
					cts, err := c.NextCommitCSN()
					if err != nil {
						return false
					}
					if _, err := c.Commit(g, cts); err != nil {
						return false
					}
					delete(live, id)
					break
				}
			case 2: // recycle
				if _, err := c.ReportMinView(); err != nil {
					return false
				}
			}
			// Invariant: every live transaction still reads as active.
			for _, g := range live {
				cts, err := c.GetTrxCTS(g)
				if err != nil || cts != common.CSNMax {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
