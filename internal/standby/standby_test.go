package standby

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"polardbmp/internal/common"
	"polardbmp/internal/core"
)

func primary(t *testing.T, nodes int) (*core.Cluster, common.SpaceID) {
	t.Helper()
	c := core.NewCluster(core.Config{RecycleInterval: 5 * time.Millisecond})
	for i := 0; i < nodes; i++ {
		if _, err := c.AddNode(); err != nil {
			t.Fatal(err)
		}
	}
	sp, err := c.CreateSpace("t")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, sp
}

func write(t *testing.T, c *core.Cluster, sp common.SpaceID, node int, key, val string) {
	t.Helper()
	tx, err := c.Node(node).Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Upsert(sp, []byte(key), []byte(val)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestPromoteCarriesCommittedData(t *testing.T) {
	c, sp := primary(t, 2)
	for i := 0; i < 100; i++ {
		write(t, c, sp, 1+i%2, fmt.Sprintf("k%03d", i), fmt.Sprintf("v%d", i))
	}
	sb := New(c.Store())
	if err := sb.Sync(); err != nil {
		t.Fatal(err)
	}
	// An uncommitted transaction's log reaches the standby too; promotion
	// must roll it back.
	tx, _ := c.Node(1).Begin()
	if err := tx.Upsert(sp, []byte("k000"), []byte("uncommitted")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Upsert(sp, []byte("ghost"), []byte("boo")); err != nil {
		t.Fatal(err)
	}
	// Simulate the log racing ahead of the commit record, then "regional
	// failure": no commit ever lands.
	c.Node(1).ForceLogSync()
	if err := sb.Sync(); err != nil {
		t.Fatal(err)
	}

	promoted, err := sb.Promote(core.Config{RecycleInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer promoted.Close()
	if _, err := promoted.AddNode(); err != nil {
		t.Fatal(err)
	}
	spNew, err := promoted.SpaceID("t")
	if err != nil {
		t.Fatal(err)
	}
	ptx, err := promoted.Node(1).Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer ptx.Commit()
	for i := 0; i < 100; i++ {
		want := fmt.Sprintf("v%d", i)
		got, err := ptx.Get(spNew, []byte(fmt.Sprintf("k%03d", i)))
		if err != nil || string(got) != want {
			t.Fatalf("k%03d = %q, %v (want %q)", i, got, err, want)
		}
	}
	if _, err := ptx.Get(spNew, []byte("ghost")); !errors.Is(err, common.ErrNotFound) {
		t.Fatalf("uncommitted row survived promotion: %v", err)
	}
	// The promoted cluster accepts new writes.
	wtx, _ := promoted.Node(1).Begin()
	if err := wtx.Insert(spNew, []byte("post-failover"), []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := wtx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalSyncAndLag(t *testing.T) {
	c, sp := primary(t, 1)
	write(t, c, sp, 1, "a", "1")
	sb := New(c.Store())
	if err := sb.Sync(); err != nil {
		t.Fatal(err)
	}
	if lag := sb.Lag(); lag != 0 {
		t.Fatalf("lag after sync = %d", lag)
	}
	write(t, c, sp, 1, "b", "2")
	if lag := sb.Lag(); lag == 0 {
		t.Fatal("no lag after new writes")
	}
	if err := sb.Sync(); err != nil {
		t.Fatal(err)
	}
	if lag := sb.Lag(); lag != 0 {
		t.Fatalf("lag after second sync = %d", lag)
	}
}

func TestContinuousRun(t *testing.T) {
	c, sp := primary(t, 2)
	sb := New(c.Store())
	sb.Run(5 * time.Millisecond)
	for i := 0; i < 50; i++ {
		write(t, c, sp, 1+i%2, fmt.Sprintf("r%03d", i), "v")
	}
	deadline := time.Now().Add(2 * time.Second)
	for sb.Lag() != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	sb.Stop()
	if sb.Lag() != 0 {
		t.Fatalf("standby never caught up: lag %d", sb.Lag())
	}
}

func TestSyncAcrossPrimaryCheckpoint(t *testing.T) {
	c, sp := primary(t, 1)
	for i := 0; i < 50; i++ {
		write(t, c, sp, 1, fmt.Sprintf("k%03d", i), "v")
	}
	sb := New(c.Store())
	// Primary checkpoints (truncating logs) BEFORE the standby's first
	// sync: the shipped page images must cover the truncated history.
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 50; i < 80; i++ {
		write(t, c, sp, 1, fmt.Sprintf("k%03d", i), "v")
	}
	if err := sb.Sync(); err != nil {
		t.Fatal(err)
	}
	promoted, err := sb.Promote(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer promoted.Close()
	if _, err := promoted.AddNode(); err != nil {
		t.Fatal(err)
	}
	spNew, _ := promoted.SpaceID("t")
	ptx, _ := promoted.Node(1).Begin()
	defer ptx.Commit()
	kvs, err := ptx.Scan(spNew, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 80 {
		t.Fatalf("promoted rows = %d, want 80", len(kvs))
	}
}

func TestSyncAfterPromoteRefused(t *testing.T) {
	c, _ := primary(t, 1)
	sb := New(c.Store())
	if _, err := sb.Promote(core.Config{}); err != nil {
		t.Fatal(err)
	}
	if err := sb.Sync(); !errors.Is(err, common.ErrClosed) {
		t.Fatalf("sync after promote err = %v", err)
	}
}
