// Package standby implements the cross-region high-availability of §3:
// "PolarDB-MP also incorporates a standby node to ensure high availability
// across regions. Changes occurring in the primary cluster are synchronized
// to the standby cluster using the write-ahead log."
//
// The standby region keeps its own shared store. Sync ships every primary
// node's WAL stream byte-for-byte (plus page images and metadata, the
// equivalent of continuous backup shipping), so the standby store always
// holds a recoverable prefix of the primary's history. Promotion after a
// regional failure is exactly full-cluster recovery over the standby store:
// the shipped logs are merged in LLSN order, uncommitted transactions are
// rolled back, and a fresh cluster starts on the result. Because page
// images are only ever *older* than the shipped logs or byte-identical to
// replayed state, the LLSN idempotence rule (§4.4) makes any interleaving
// of page and log shipping safe.
package standby

import (
	"fmt"
	"sync"
	"time"

	"polardbmp/internal/common"
	"polardbmp/internal/core"
	"polardbmp/internal/storage"
)

// Standby replicates a primary region's shared store into a local one.
type Standby struct {
	src   storage.API
	local *storage.Store

	mu       sync.Mutex
	shipped  map[common.NodeID]common.LSN
	promoted bool

	stopOnce sync.Once
	stop     chan struct{}
	done     sync.WaitGroup
}

// New attaches a standby to the primary region's shared store. The standby
// store carries no injected latency of its own here; cross-region transfer
// cost is the Sync cadence.
func New(src storage.API) *Standby {
	return &Standby{
		src:     src,
		local:   storage.New(storage.Latency{}),
		shipped: make(map[common.NodeID]common.LSN),
		stop:    make(chan struct{}),
	}
}

// LocalStore exposes the standby replica (inspection/tests).
func (s *Standby) LocalStore() *storage.Store { return s.local }

// Sync ships everything new: log bytes per stream, page images, metadata.
// It is safe to call concurrently with primary traffic; each call captures
// a consistent durable prefix.
func (s *Standby) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.promoted {
		return fmt.Errorf("standby: already promoted: %w", common.ErrClosed)
	}
	// Logs first: the WAL is the source of truth; pages shipped later can
	// only be newer than these logs, never ahead of un-shipped ones in a
	// way replay can't fix (LLSN idempotence).
	for _, node := range s.src.LogNodes() {
		from, ok := s.shipped[node]
		if !ok {
			from = s.src.LogStartLSN(node)
		}
		// The primary may have truncated past our position (checkpoint
		// while the standby lagged); the page shipping below covers the
		// truncated history, so fast-forward.
		if base := s.src.LogStartLSN(node); base > from {
			from = base
			s.local.LogTruncate(node, base)
		}
		durable := s.src.LogDurableLSN(node)
		for from < durable {
			buf := make([]byte, 256*1024)
			n, err := s.src.LogRead(node, from, buf)
			if err != nil {
				return err
			}
			if n == 0 {
				break
			}
			if err := s.local.LogShip(node, from, buf[:n]); err != nil {
				return err
			}
			from += common.LSN(n)
		}
		s.shipped[node] = from
	}
	for _, id := range s.src.PageIDs() {
		img, err := s.src.ReadPage(id)
		if err != nil {
			continue
		}
		if err := s.local.WritePage(id, img); err != nil {
			return err
		}
	}
	for _, k := range s.src.MetaKeys() {
		s.local.PutMeta(k, s.src.GetMeta(k))
	}
	return nil
}

// Run ships continuously at the given interval until Stop or promotion.
func (s *Standby) Run(interval time.Duration) {
	s.done.Add(1)
	go func() {
		defer s.done.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-tick.C:
				_ = s.Sync()
			}
		}
	}()
}

// Stop halts continuous shipping.
func (s *Standby) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.done.Wait()
}

// Lag returns how many durable log bytes the standby is behind, summed over
// all streams.
func (s *Standby) Lag() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var lag int64
	for _, node := range s.src.LogNodes() {
		from, ok := s.shipped[node]
		if !ok {
			from = s.src.LogStartLSN(node)
		}
		if d := s.src.LogDurableLSN(node); d > from {
			lag += int64(d - from)
		}
	}
	return lag
}

// Promote turns the standby into a fresh primary cluster after a regional
// failure: final catch-up sync (best effort — the primary region may be
// gone), full-cluster recovery over the shipped logs, then a new cluster
// over the recovered store. The caller adds nodes to it.
func (s *Standby) Promote(cfg core.Config) (*core.Cluster, error) {
	s.Stop()
	_ = s.Sync() // best effort; ignore a dead primary region
	s.mu.Lock()
	s.promoted = true
	s.mu.Unlock()

	c := core.NewClusterWithStore(cfg, s.local)
	if err := c.RecoverAll(); err != nil {
		return nil, fmt.Errorf("standby: promotion recovery: %w", err)
	}
	return c, nil
}
