package figures

import (
	"time"

	"polardbmp/internal/adapter"
	"polardbmp/internal/core"
	"polardbmp/internal/workload"
)

// AblationResult is one on/off comparison.
type AblationResult struct {
	Name     string
	OnTPS    float64
	OffTPS   float64
	OnNote   string
	OffNote  string
	Improves float64 // OnTPS / OffTPS
}

// Ablations measures the design choices §4 calls out, each on vs off, under
// a 4-node 50%-shared read-write SysBench:
//
//   - lazy PLock release (§4.3.1) — saves lock RPCs on locality;
//   - Buffer Fusion's DBP (§4.2) — vs the storage + log-replay path;
//   - commit-time CTS stamping (§4.1) — saves remote TIT reads;
//   - Linear Lamport timestamp reuse (§4.1) — saves TSO fetches.
func Ablations(o Options) []AblationResult {
	o.fill()
	o.header("Ablations: §4 design choices on vs off (sysbench rw, 50% shared, 4 nodes)")
	nodes := 4

	run := func(mutate func(*core.Config)) (float64, *adapter.PolarDB) {
		cfg := o.clusterConfig()
		if mutate != nil {
			mutate(&cfg)
		}
		db, err := adapter.NewPolarDB(cfg, nodes)
		if err != nil {
			panic(err)
		}
		sb := workload.DefaultSysbench(workload.SysbenchReadWrite, nodes, 50)
		sb.TablesPerGroup = 2
		sb.RowsPerTable = 800
		sb.StatementDelay = o.stmtDelay()
		if err := sb.Load(db); err != nil {
			panic(err)
		}
		res := o.runner().Run(db, sb.TxFunc)
		return o.simTPS(res), db
	}

	var out []AblationResult
	record := func(name string, on, off float64, onNote, offNote string) {
		r := AblationResult{Name: name, OnTPS: on, OffTPS: off, OnNote: onNote, OffNote: offNote}
		if off > 0 {
			r.Improves = on / off
		}
		out = append(out, r)
	}

	// Lazy PLock release: compare remote lock acquisitions.
	onTPS, db := run(nil)
	onRemote := sumRemoteAcquires(db)
	db.Cluster.Close()
	offTPS, db := run(func(c *core.Config) { c.DisableLazyPLock = true })
	offRemote := sumRemoteAcquires(db)
	db.Cluster.Close()
	record("lazy-plock-release", onTPS, offTPS,
		noteCount("remote lock RPCs", onRemote), noteCount("remote lock RPCs", offRemote))

	// Buffer Fusion DBP vs storage page sync.
	onTPS, db = run(nil)
	db.Cluster.Close()
	offTPS, db = run(func(c *core.Config) { c.StoragePageSync = true })
	db.Cluster.Close()
	record("buffer-fusion-dbp", onTPS, offTPS, "DBP page transfer", "storage+replay transfer")

	// CTS stamping.
	onTPS, db = run(nil)
	db.Cluster.Close()
	offTPS, db = run(func(c *core.Config) { c.DisableCTSStamp = true })
	db.Cluster.Close()
	record("cts-row-stamping", onTPS, offTPS, "CTS in-row fast path", "always TIT lookup")

	// Linear Lamport timestamp reuse.
	onTPS, db = run(nil)
	db.Cluster.Close()
	offTPS, db = run(func(c *core.Config) { c.DisableLamport = true })
	db.Cluster.Close()
	record("lamport-tso-reuse", onTPS, offTPS, "reuse recent timestamps", "fetch per statement")

	o.printf("%-22s %12s %12s %8s  %s | %s\n", "design choice", "on tps", "off tps", "gain", "on", "off")
	for _, r := range out {
		o.printf("%-22s %12.0f %12.0f %7.2fx  %s | %s\n",
			r.Name, r.OnTPS, r.OffTPS, r.Improves, r.OnNote, r.OffNote)
	}
	return out
}

func sumRemoteAcquires(db *adapter.PolarDB) int64 {
	var total int64
	for _, n := range db.Cluster.Nodes() {
		total += n.PLocks().RemoteAcquires.Load()
	}
	return total
}

func noteCount(what string, n int64) string {
	return what + ": " + itoa(n)
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var buf [24]byte
	i := len(buf)
	neg := n < 0
	if neg {
		n = -n
	}
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// Micro measures the §4.1 claim that TSO fetches complete "within several
// microseconds" and are not a bottleneck, plus the one-sided TIT read path.
// Results are real (unscaled) in-process costs standing in for one-sided
// RDMA verbs.
func Micro(o Options) (tsoFetch, titRead time.Duration) {
	o.fill()
	o.header("Micro: TSO fetch and remote TIT read (real in-process verb cost)")
	db, err := adapter.NewPolarDB(core.Config{}, 2)
	if err != nil {
		panic(err)
	}
	defer db.Cluster.Close()
	n1 := db.Cluster.Node(1)
	n2 := db.Cluster.Node(2)

	const iters = 20000
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := n1.TxFusion().NextCommitCSN(); err != nil {
			panic(err)
		}
	}
	tsoFetch = time.Since(start) / iters

	tx, err := n2.Begin()
	if err != nil {
		panic(err)
	}
	g := tx.GTrxID()
	start = time.Now()
	for i := 0; i < iters; i++ {
		if _, err := n1.TxFusion().GetTrxCTS(g); err != nil {
			panic(err)
		}
	}
	titRead = time.Since(start) / iters
	tx.Rollback()

	st := db.Cluster.Stats()
	microLastBytes.read, microLastBytes.written = st.Fabric.BytesRead, st.Fabric.BytesWrite
	o.printf("TSO fetch (one-sided fetch-add): %v/op\n", tsoFetch)
	o.printf("remote TIT read (one-sided read): %v/op\n", titRead)
	o.printf("fabric bytes moved: read %d, written %d (%d reads, %d writes, %d atomics, %d rpcs)\n",
		st.Fabric.BytesRead, st.Fabric.BytesWrite,
		st.Fabric.Reads, st.Fabric.Writes, st.Fabric.Atomics, st.Fabric.RPCs)
	return tsoFetch, titRead
}
