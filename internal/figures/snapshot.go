package figures

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"polardbmp/internal/workload"
)

// fig7RWBaseline records the pre-batching Figure-7 read-write sweep at the
// snapshot settings (scale=25, 2s/config, 3 threads/node), measured from
// the commit immediately before the doorbell-verb / batching work on the
// same single-core box and same day as this PR's numbers (the original
// mpbench_output.txt recording — e.g. 29007 at rw/50/8 — came from a
// faster box; same-day re-measurement keeps the before/after honest).
// `make bench-snapshot` writes these next to the fresh numbers so the JSON
// is a self-contained before/after.
var fig7RWBaseline = map[string]float64{
	"rw/0/1": 4587, "rw/0/2": 9056, "rw/0/4": 17711, "rw/0/8": 33596,
	"rw/10/1": 4639, "rw/10/2": 9010, "rw/10/4": 17294, "rw/10/8": 30677,
	"rw/50/1": 4620, "rw/50/2": 8714, "rw/50/4": 15491, "rw/50/8": 25576,
	"rw/100/1": 4588, "rw/100/2": 8076, "rw/100/4": 14457, "rw/100/8": 21732,
}

// SnapshotCell is one measured Figure-7 read-write configuration with its
// per-commit fabric op profile and the pre-batching baseline.
type SnapshotCell struct {
	Cell   string `json:"cell"` // "rw/<shared%>/<nodes>"
	Shared int    `json:"shared_pct"`
	Nodes  int    `json:"nodes"`
	// TPS is the median over Repeats measurements; TPSMin/TPSMax record the
	// spread so a single noisy run can't carry a perf claim.
	TPS         float64 `json:"tps_sim"`
	TPSMin      float64 `json:"tps_sim_min,omitempty"`
	TPSMax      float64 `json:"tps_sim_max,omitempty"`
	Repeats     int     `json:"repeats,omitempty"`
	BaselineTPS float64 `json:"baseline_tps_sim,omitempty"`
	Gain        float64 `json:"gain,omitempty"` // TPS / BaselineTPS
	Aborts      int64   `json:"aborts"`

	// Per-commit fabric op counts over the whole run (warmup-corrected).
	ReadsPerCommit   float64 `json:"fabric_reads_per_commit"`
	WritesPerCommit  float64 `json:"fabric_writes_per_commit"`
	AtomicsPerCommit float64 `json:"fabric_atomics_per_commit"`
	RPCsPerCommit    float64 `json:"fabric_rpcs_per_commit"`
}

// BenchSnapshot is the document `make bench-snapshot` writes to
// BENCH_pr3.json.
type BenchSnapshot struct {
	Config struct {
		Scale    int    `json:"scale"`
		Duration string `json:"duration_per_config"`
		Warmup   string `json:"warmup_per_config"`
		Threads  int    `json:"threads_per_node"`
		Nodes    []int  `json:"nodes"`
	} `json:"config"`
	Fig7RW []SnapshotCell `json:"fig7_read_write"`
	Micro  struct {
		TSOFetchNS       int64 `json:"tso_fetch_ns_per_op"`
		TITReadNS        int64 `json:"tit_read_ns_per_op"`
		FabricBytesRead  int64 `json:"fabric_bytes_read"`
		FabricBytesWrite int64 `json:"fabric_bytes_written"`
	} `json:"micro"`
}

// Snapshot runs the Figure-7 read-write sweep plus the verb micro benches
// and writes the results (with per-commit fabric op counts and the
// pre-batching baseline) as JSON to path.
func Snapshot(o Options, path string) (*BenchSnapshot, error) {
	o.fill()
	o.header("Bench snapshot: Fig7 read-write sweep + micro, with per-commit fabric ops")

	snap := &BenchSnapshot{}
	snap.Config.Scale = o.Scale
	snap.Config.Duration = o.Duration.String()
	snap.Config.Warmup = o.Warmup.String()
	snap.Config.Threads = o.Threads
	snap.Config.Nodes = o.Nodes

	if o.Repeats <= 0 {
		o.Repeats = 3
	}
	for _, shared := range []int{0, 10, 50, 100} {
		for _, n := range o.Nodes {
			cell, err := o.runSnapshotCellRepeats(shared, n)
			if err != nil {
				return nil, err
			}
			snap.Fig7RW = append(snap.Fig7RW, cell)
			o.printf("%-10s %12.0f tps [%.0f..%.0f ×%d]  (baseline %6.0f, %5.2fx)  ops/commit: r=%.2f w=%.2f a=%.2f rpc=%.2f\n",
				cell.Cell, cell.TPS, cell.TPSMin, cell.TPSMax, cell.Repeats, cell.BaselineTPS, cell.Gain,
				cell.ReadsPerCommit, cell.WritesPerCommit, cell.AtomicsPerCommit, cell.RPCsPerCommit)
		}
	}

	tso, tit := Micro(o)
	snap.Micro.TSOFetchNS = tso.Nanoseconds()
	snap.Micro.TITReadNS = tit.Nanoseconds()
	snap.Micro.FabricBytesRead = microLastBytes.read
	snap.Micro.FabricBytesWrite = microLastBytes.written

	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return nil, err
	}
	o.printf("wrote %s\n", path)
	return snap, nil
}

// runSnapshotCellRepeats measures one cell Repeats times on fresh clusters
// and reports the median with min/max spread. The fabric op profile and
// abort count come from the median run's cell (they are deterministic per
// configuration to within noise).
func (o Options) runSnapshotCellRepeats(shared, n int) (SnapshotCell, error) {
	runs := make([]SnapshotCell, 0, o.Repeats)
	for i := 0; i < o.Repeats; i++ {
		cell, err := o.runSnapshotCell(shared, n)
		if err != nil {
			return SnapshotCell{}, err
		}
		runs = append(runs, cell)
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].TPS < runs[j].TPS })
	cell := runs[len(runs)/2]
	if len(runs)%2 == 0 {
		cell.TPS = (runs[len(runs)/2-1].TPS + runs[len(runs)/2].TPS) / 2
	}
	cell.TPSMin, cell.TPSMax = runs[0].TPS, runs[len(runs)-1].TPS
	cell.Repeats = len(runs)
	if cell.BaselineTPS > 0 {
		cell.Gain = cell.TPS / cell.BaselineTPS
	}
	return cell, nil
}

// runSnapshotCell measures one read-write cell and its fabric op profile.
func (o Options) runSnapshotCell(shared, n int) (SnapshotCell, error) {
	db, err := o.newMP(n)
	if err != nil {
		return SnapshotCell{}, err
	}
	defer db.Cluster.Close()
	sb := workload.DefaultSysbench(workload.SysbenchReadWrite, n, shared)
	sb.TablesPerGroup = 2
	sb.RowsPerTable = 800
	sb.StatementDelay = o.stmtDelay()
	if err := sb.Load(db); err != nil {
		return SnapshotCell{}, fmt.Errorf("snapshot: sysbench load (%d nodes): %w", n, err)
	}
	before := db.Cluster.Stats()
	res := o.runner().Run(db, sb.TxFunc)
	after := db.Cluster.Stats()

	cell := SnapshotCell{
		Cell:   fmt.Sprintf("rw/%d/%d", shared, n),
		Shared: shared, Nodes: n,
		TPS:    o.simTPS(res),
		Aborts: res.Aborts,
	}
	if base, ok := fig7RWBaseline[cell.Cell]; ok {
		cell.BaselineTPS = base
		cell.Gain = cell.TPS / base
	}
	// The stats delta spans warmup + measurement but res.Commits only the
	// measured window; scale commits by the steady-state ratio.
	commits := float64(res.Commits) * float64(o.Warmup+o.Duration) / float64(o.Duration)
	if commits > 0 {
		cell.ReadsPerCommit = float64(after.Fabric.Reads-before.Fabric.Reads) / commits
		cell.WritesPerCommit = float64(after.Fabric.Writes-before.Fabric.Writes) / commits
		cell.AtomicsPerCommit = float64(after.Fabric.Atomics-before.Fabric.Atomics) / commits
		cell.RPCsPerCommit = float64(after.Fabric.RPCs-before.Fabric.RPCs) / commits
	}
	return cell, nil
}

// microLastBytes captures the byte counters of the most recent Micro run so
// Snapshot can embed them without re-deriving cluster internals.
var microLastBytes struct{ read, written int64 }
