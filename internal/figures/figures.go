// Package figures regenerates every table and figure of the paper's
// evaluation (§5) on a single machine.
//
// # Scaled-time simulation
//
// The paper's testbed is a fleet of multi-core hosts on a 100Gb RDMA
// network; this reproduction typically runs on a small (often single-core)
// box whose sleep granularity is ~1ms. Wall-clock throughput therefore
// cannot express node-count scaling directly, so the harness runs a scaled
// simulation:
//
//   - every injected I/O latency is multiplied by Scale (default 25): a
//     100µs storage read sleeps 2.5ms of real time;
//   - per-statement engine service time (the CPU each node would burn) is
//     injected as a ~1ms real sleep ≈ 40µs of simulated time — the single
//     benchmark core is the simulator, not the bottleneck;
//   - RDMA verbs keep their real in-process cost (sub-µs), which at this
//     scale correctly models "orders of magnitude cheaper than storage".
//
// Because sleeping goroutines overlap perfectly, simulated throughput
// (reported as measured × Scale) scales with nodes exactly as far as the
// protocols allow — which is what the paper's figures measure. Absolute
// numbers are not comparable to the paper's testbed (see EXPERIMENTS.md);
// shapes and ratios are.
package figures

import (
	"fmt"
	"io"
	"os"
	"time"

	"polardbmp/internal/adapter"
	"polardbmp/internal/core"
	"polardbmp/internal/storage"
	"polardbmp/internal/trace"
	"polardbmp/internal/workload"
)

// Options configures a figure run.
type Options struct {
	// Out receives the printed rows (default os.Stdout).
	Out io.Writer
	// Scale is the latency time-scale factor (default 25).
	Scale int
	// Duration is the measured window per configuration, in real time
	// (default 3s; Quick: 1.2s).
	Duration time.Duration
	// Warmup precedes each measurement (default 500ms).
	Warmup time.Duration
	// Threads per node (default 4).
	Threads int
	// Nodes lists the cluster sizes to sweep (default 1,2,4,8).
	Nodes []int
	// Quick trims the sweep for CI/bench use.
	Quick bool
	// Trace enables the commit-path span tracer on every node of every
	// cluster the run builds (TraceRun sets it implicitly).
	Trace bool
	// SlowTx, when > 0, logs transactions slower than this into the
	// per-node slow-transaction log (implies Trace).
	SlowTx time.Duration
	// CC selects the concurrency-control engine for every cluster the run
	// builds ("2pl" default, "occ" optimistic; see core.Config.CC).
	CC string
	// Repeats is how many times Snapshot measures each cell (default 3);
	// the reported tps_sim is the median, with min/max recorded as spread.
	Repeats int
}

func (o *Options) fill() {
	if o.Out == nil {
		o.Out = os.Stdout
	}
	if o.Scale <= 0 {
		o.Scale = 25
	}
	if o.Duration <= 0 {
		o.Duration = 3 * time.Second
		if o.Quick {
			o.Duration = 1200 * time.Millisecond
		}
	}
	if o.Warmup <= 0 {
		o.Warmup = 500 * time.Millisecond
		if o.Quick {
			o.Warmup = 200 * time.Millisecond
		}
	}
	if o.Threads <= 0 {
		o.Threads = 4
	}
	if len(o.Nodes) == 0 {
		o.Nodes = []int{1, 2, 4, 8}
		if o.Quick {
			o.Nodes = []int{1, 2, 4}
		}
	}
}

// stmtDelay is the injected per-statement service time in real time; at the
// default scale it simulates ~40µs of engine CPU per statement.
func (o Options) stmtDelay() time.Duration { return time.Millisecond }

// storageLatency returns the scaled shared-storage cost model.
func (o Options) storageLatency() storage.Latency {
	base := storage.DefaultLatency()
	s := time.Duration(o.Scale)
	return storage.Latency{
		PageRead:  base.PageRead * s,
		PageWrite: base.PageWrite * s,
		LogAppend: base.LogAppend * s,
		LogRead:   base.LogRead * s,
	}
}

// simTPS converts a measured result into simulated transactions/second.
func (o Options) simTPS(res workload.Result) float64 {
	return res.TPS() * float64(o.Scale)
}

// clusterConfig is the engine configuration for figure runs.
func (o Options) clusterConfig() core.Config {
	cfg := core.Config{
		CC:              o.CC,
		LBPFrames:       8192,
		DBPFrames:       32768,
		StorageLatency:  o.storageLatency(),
		LockWaitTimeout: 10 * time.Second, // scaled time dilates waits too
	}
	if o.Trace || o.SlowTx > 0 {
		cfg.Trace = &trace.Config{SlowTxThreshold: o.SlowTx}
	}
	return cfg
}

// newMP builds an n-node PolarDB-MP under the scaled latency model.
func (o Options) newMP(n int) (*adapter.PolarDB, error) {
	return adapter.NewPolarDB(o.clusterConfig(), n)
}

// newLogShip builds the Taurus-MM-like baseline: identical engine, but page
// synchronization through the page store + log replay instead of the DBP.
func (o Options) newLogShip(n int) (*adapter.PolarDB, error) {
	cfg := o.clusterConfig()
	cfg.StoragePageSync = true
	return adapter.NewPolarDB(cfg, n)
}

func (o Options) runner() workload.Runner {
	return workload.Runner{
		Threads:  o.Threads,
		Duration: o.Duration,
		Warmup:   o.Warmup,
	}
}

func (o Options) printf(format string, args ...any) {
	fmt.Fprintf(o.Out, format, args...)
}

func (o Options) header(title string) {
	o.printf("\n=== %s ===\n", title)
	o.printf("(scaled-time simulation: scale=%dx, %v/config, %d threads/node; tps are simulated tx/s)\n",
		o.Scale, o.Duration, o.Threads)
}

// SweepPoint is one measured configuration.
type SweepPoint struct {
	System  string
	Kind    string
	Shared  int
	Nodes   int
	TPS     float64
	Aborts  int64
	P95     time.Duration
	Scaling float64 // TPS normalized to the 1-node point of the same series
}

// normalize fills Scaling against each (System, Kind, Shared) series' 1-node
// point.
func normalize(points []SweepPoint) {
	base := map[string]float64{}
	for _, p := range points {
		if p.Nodes == 1 {
			base[p.System+p.Kind+fmt.Sprint(p.Shared)] = p.TPS
		}
	}
	for i := range points {
		if b := base[points[i].System+points[i].Kind+fmt.Sprint(points[i].Shared)]; b > 0 {
			points[i].Scaling = points[i].TPS / b
		}
	}
}
