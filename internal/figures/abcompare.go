package figures

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"polardbmp/internal/adapter"
	"polardbmp/internal/workload"
)

// Interleaved A/B compare: measure the pipelined commit path against the
// pre-PR path by alternating the two engines slice by slice in one process.
// Back-to-back slices see the same machine load, scheduler state, and heap,
// so drift that would bias two separate long runs cancels out; pairing each
// new-path slice with the old-path slice that immediately preceded it turns
// the run into Repeats paired samples per cell, reported as a median gain
// with min/max spread.

// ABArm is one engine's side of a cell: the per-slice simulated tps and
// their median/min/max.
type ABArm struct {
	TPS    float64   `json:"tps_sim"` // median over slices
	TPSMin float64   `json:"tps_sim_min"`
	TPSMax float64   `json:"tps_sim_max"`
	Slices []float64 `json:"slices"`
	Aborts int64     `json:"aborts"`
}

// ABCell is one read-write configuration measured under both commit paths.
type ABCell struct {
	Cell   string `json:"cell"` // "rw/<shared%>/<nodes>"
	Shared int    `json:"shared_pct"`
	Nodes  int    `json:"nodes"`
	Old    ABArm  `json:"old"` // pipeline, spec-CTS and adaptive TSO off
	New    ABArm  `json:"new"` // this PR's commit path

	// Gain is the median of the paired per-slice gains new_i/old_i;
	// GainMin/GainMax are that pairing's spread.
	Gain    float64 `json:"gain"`
	GainMin float64 `json:"gain_min"`
	GainMax float64 `json:"gain_max"`
}

// ABReport is the document mpbench -ab writes.
type ABReport struct {
	Config struct {
		Scale    int    `json:"scale"`
		Slice    string `json:"duration_per_slice"`
		Warmup   string `json:"warmup_per_slice"`
		Threads  int    `json:"threads_per_node"`
		Nodes    []int  `json:"nodes"`
		Repeats  int    `json:"slices_per_arm"`
		CC       string `json:"cc_engine"`
		OldKnobs string `json:"old_arm"`
	} `json:"config"`
	Cells []ABCell `json:"cells"`
}

// ABCompare runs the interleaved old-vs-new commit-path compare over the
// read-write sweep and writes the per-cell gains as JSON to path.
func ABCompare(o Options, path string) (*ABReport, error) {
	o.fill()
	if o.Repeats <= 0 {
		o.Repeats = 3
	}
	o.header("Interleaved A/B: pre-PR commit path vs pipelined (paired slices)")

	rep := &ABReport{}
	rep.Config.Scale = o.Scale
	rep.Config.Slice = o.Duration.String()
	rep.Config.Warmup = o.Warmup.String()
	rep.Config.Threads = o.Threads
	rep.Config.Nodes = o.Nodes
	rep.Config.Repeats = o.Repeats
	rep.Config.CC = o.ccName()
	rep.Config.OldKnobs = "DisableCommitPipeline+DisableSpecCTS+DisableAdaptiveTSO"

	sharedSet := []int{0, 50, 100}
	if o.Quick {
		sharedSet = []int{50}
	}
	for _, shared := range sharedSet {
		for _, n := range o.Nodes {
			cell, err := o.runABCell(shared, n)
			if err != nil {
				return nil, err
			}
			rep.Cells = append(rep.Cells, cell)
			o.printf("%-10s old=%8.0f new=%8.0f  gain=%+.1f%% [%+.1f%% .. %+.1f%%]\n",
				cell.Cell, cell.Old.TPS, cell.New.TPS,
				(cell.Gain-1)*100, (cell.GainMin-1)*100, (cell.GainMax-1)*100)
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return nil, err
	}
	o.printf("wrote %s\n", path)
	return rep, nil
}

// runABCell measures one cell under both commit paths, alternating slices.
func (o Options) runABCell(shared, n int) (ABCell, error) {
	// The old arm is the pre-PR engine: 2PL with the serial commit path.
	// The new arm is this PR's full configuration — pipelined commit plus
	// whatever Options.CC selects (so `-ab -cc occ` compares the OCC engine
	// against the pre-PR 2PL baseline).
	oldOpts := o
	oldOpts.CC = ""
	oldCfg := oldOpts.clusterConfig()
	oldCfg.DisableCommitPipeline = true
	oldCfg.DisableSpecCTS = true
	oldCfg.DisableAdaptiveTSO = true
	dbOld, err := adapter.NewPolarDB(oldCfg, n)
	if err != nil {
		return ABCell{}, err
	}
	defer dbOld.Cluster.Close()
	dbNew, err := o.newMP(n)
	if err != nil {
		return ABCell{}, err
	}
	defer dbNew.Cluster.Close()

	arms := [2]*adapter.PolarDB{dbOld, dbNew}
	var fns [2]func(node, thread int) workload.TxFunc
	for i, db := range arms {
		sb := workload.DefaultSysbench(workload.SysbenchReadWrite, n, shared)
		sb.TablesPerGroup = 2
		sb.RowsPerTable = 800
		sb.StatementDelay = o.stmtDelay()
		if err := sb.Load(db); err != nil {
			return ABCell{}, fmt.Errorf("ab: sysbench load (%d nodes): %w", n, err)
		}
		fns[i] = sb.TxFunc
	}

	cell := ABCell{
		Cell:   fmt.Sprintf("rw/%d/%d", shared, n),
		Shared: shared, Nodes: n,
	}
	var gains []float64
	for i := 0; i < o.Repeats; i++ {
		resOld := o.runner().Run(arms[0], fns[0])
		resNew := o.runner().Run(arms[1], fns[1])
		a, b := o.simTPS(resOld), o.simTPS(resNew)
		cell.Old.Slices = append(cell.Old.Slices, a)
		cell.New.Slices = append(cell.New.Slices, b)
		cell.Old.Aborts += resOld.Aborts
		cell.New.Aborts += resNew.Aborts
		if a > 0 {
			gains = append(gains, b/a)
		}
	}
	cell.Old.TPS, cell.Old.TPSMin, cell.Old.TPSMax = medianSpread(cell.Old.Slices)
	cell.New.TPS, cell.New.TPSMin, cell.New.TPSMax = medianSpread(cell.New.Slices)
	cell.Gain, cell.GainMin, cell.GainMax = medianSpread(gains)
	return cell, nil
}

// ccName reports the effective concurrency-control engine for run metadata.
func (o Options) ccName() string {
	if o.CC == "" {
		return "2pl"
	}
	return o.CC
}

// medianSpread returns the median, min and max of vs (zeros when empty).
func medianSpread(vs []float64) (med, lo, hi float64) {
	if len(vs) == 0 {
		return 0, 0, 0
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	lo, hi = s[0], s[len(s)-1]
	med = s[len(s)/2]
	if len(s)%2 == 0 {
		med = (s[len(s)/2-1] + s[len(s)/2]) / 2
	}
	return med, lo, hi
}
