package figures

import (
	"fmt"
	"sync"
	"time"

	"polardbmp/internal/adapter"
	"polardbmp/internal/metrics"
	"polardbmp/internal/workload"
)

// Fig7 reproduces Figure 7: SysBench read-only / read-write / write-only
// throughput for 1..8 nodes across shared-data percentages. The paper's
// headline points: read-only scales linearly; at 100% shared data the
// 8-node cluster still reaches ~5.4x (read-write) and ~3x (write-only).
func Fig7(o Options) []SweepPoint {
	o.fill()
	o.header("Figure 7: SysBench throughput vs nodes and shared%")
	kinds := []workload.SysbenchKind{
		workload.SysbenchReadOnly, workload.SysbenchReadWrite, workload.SysbenchWriteOnly,
	}
	sharedPcts := []int{0, 10, 50, 100}
	if o.Quick {
		kinds = []workload.SysbenchKind{workload.SysbenchReadWrite}
		sharedPcts = []int{0, 100}
	}
	var points []SweepPoint
	for _, kind := range kinds {
		for _, shared := range sharedPcts {
			for _, n := range o.Nodes {
				tps, res := o.runSysbench("polardb-mp", kind, shared, n, o.newMP)
				points = append(points, SweepPoint{
					System: "polardb-mp", Kind: kind.String(), Shared: shared,
					Nodes: n, TPS: tps, Aborts: res.Aborts,
					P95: res.Latency.Quantile(0.95) / time.Duration(1),
				})
			}
		}
	}
	normalize(points)
	o.printf("%-12s %7s %6s %12s %8s %8s\n", "workload", "shared%", "nodes", "tps(sim)", "scaling", "aborts")
	for _, p := range points {
		o.printf("%-12s %7d %6d %12.0f %7.2fx %8d\n", p.Kind, p.Shared, p.Nodes, p.TPS, p.Scaling, p.Aborts)
	}
	return points
}

// runSysbench builds, loads and measures one sysbench configuration.
func (o Options) runSysbench(system string, kind workload.SysbenchKind, shared, n int,
	build func(int) (*adapter.PolarDB, error)) (float64, workload.Result) {
	db, err := build(n)
	if err != nil {
		panic(err)
	}
	defer db.Cluster.Close()
	sb := workload.DefaultSysbench(kind, n, shared)
	sb.TablesPerGroup = 2
	sb.RowsPerTable = 800
	sb.StatementDelay = o.stmtDelay()
	if err := sb.Load(db); err != nil {
		panic(fmt.Sprintf("fig: sysbench load (%s, %d nodes): %v", system, n, err))
	}
	res := o.runner().Run(db, sb.TxFunc)
	return o.simTPS(res), res
}

// Fig8 reproduces Figure 8: TATP scaling 1..8 nodes (paper: linear, because
// the subscriber-partitioned workload gives each page a single owner).
func Fig8(o Options) []SweepPoint {
	o.fill()
	o.header("Figure 8: TATP throughput vs nodes")
	var points []SweepPoint
	for _, n := range o.Nodes {
		db, err := o.newMP(n)
		if err != nil {
			panic(err)
		}
		ta := workload.DefaultTATP(n)
		ta.SubscribersPerNode = 1500
		ta.StatementDelay = o.stmtDelay()
		if err := ta.Load(db); err != nil {
			panic(err)
		}
		res := o.runner().Run(db, ta.TxFunc)
		db.Cluster.Close()
		points = append(points, SweepPoint{
			System: "polardb-mp", Kind: "tatp", Nodes: n,
			TPS: o.simTPS(res), Aborts: res.Aborts,
		})
	}
	normalize(points)
	o.printf("%6s %12s %8s\n", "nodes", "tps(sim)", "scaling")
	for _, p := range points {
		o.printf("%6d %12.0f %7.2fx\n", p.Nodes, p.TPS, p.Scaling)
	}
	return points
}

// Fig9 reproduces Figure 9: TPC-C within a large cluster — New-Order
// throughput (tpmC) and P95 latency as nodes scale (paper: 1..32 nodes,
// near-linear to 24, 28x at 32; we sweep to 16 on one box).
func Fig9(o Options) []SweepPoint {
	o.fill()
	nodes := []int{1, 2, 4, 8, 16}
	if o.Quick {
		nodes = []int{1, 2, 4}
	}
	o.header("Figure 9: TPC-C tpmC and P95 latency vs nodes")
	var points []SweepPoint
	for _, n := range nodes {
		db, err := o.newMP(n)
		if err != nil {
			panic(err)
		}
		tp := workload.DefaultTPCC(2 * n) // two warehouses per node
		tp.Customers = 30
		tp.Items = 200
		tp.StatementDelay = o.stmtDelay()
		if err := tp.Load(db); err != nil {
			panic(err)
		}
		res := o.runner().Run(db, tp.TxFunc)
		db.Cluster.Close()
		// tpmC counts New-Order commits: 45% of the standard mix.
		tpmC := float64(res.Commits) * 0.45 / res.Elapsed.Minutes() * float64(o.Scale)
		points = append(points, SweepPoint{
			System: "polardb-mp", Kind: "tpcc", Nodes: n,
			TPS: tpmC, Aborts: res.Aborts,
			P95: res.Latency.Quantile(0.95) * time.Duration(1) / time.Duration(o.Scale),
		})
	}
	normalize(points)
	o.printf("%6s %14s %8s %12s\n", "nodes", "tpmC(sim)", "scaling", "p95(sim)")
	for _, p := range points {
		o.printf("%6d %14.0f %7.2fx %12v\n", p.Nodes, p.TPS, p.Scaling, p.P95.Round(10*time.Microsecond))
	}
	return points
}

// Fig10 reproduces Figure 10: the production trading workload's throughput
// timeline while nodes are added live (paper: at 60/120/180s; here at
// proportional points of a shorter run). Near-linear steps are expected
// because the trace is well-partitioned.
func Fig10(o Options) []float64 {
	o.fill()
	o.header("Figure 10: production workload timeline with live node additions")
	const maxNodes = 4
	segment := 2 * o.Duration
	db, err := o.newMP(maxNodes)
	if err != nil {
		panic(err)
	}
	defer db.Cluster.Close()
	pm := workload.DefaultProdMix(maxNodes)
	pm.HotRows = 800
	pm.StatementDelay = o.stmtDelay()
	if err := pm.Load(db); err != nil {
		panic(err)
	}

	// All nodes exist (data pre-loaded), but traffic is attached to node k
	// only when its segment starts — the paper's "add more nodes" moments.
	tl := metrics.NewTimeline(segment / 4)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	startNode := func(n int) {
		for th := 0; th < o.Threads; th++ {
			wg.Add(1)
			go func(th int) {
				defer wg.Done()
				txf := pm.TxFunc(n, th)
				for {
					select {
					case <-stop:
						return
					default:
					}
					if txf(db, n) == nil {
						tl.Tick(1)
					}
				}
			}(th)
		}
	}
	for n := 0; n < maxNodes; n++ {
		startNode(n)
		time.Sleep(segment)
	}
	close(stop)
	wg.Wait()

	rates := tl.Rates()
	if len(rates) > 1 {
		rates = rates[:len(rates)-1] // drop the partial final bucket
	}
	o.printf("%8s %12s %s\n", "t", "tps(sim)", "active-nodes")
	for i, r := range rates {
		active := min(i/4+1, maxNodes)
		o.printf("%8v %12.0f %d\n", time.Duration(i)*tl.Interval()*time.Duration(o.Scale), r*float64(o.Scale), active)
	}
	return rates
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
