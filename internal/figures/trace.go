package figures

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"polardbmp/internal/trace"
	"polardbmp/internal/workload"
)

// TraceCell is one traced Figure-7 read-write cell: throughput plus the
// cluster-wide per-stage latency / fabric-op decomposition and (when a slow
// threshold is set) the slow-transaction log.
type TraceCell struct {
	Cell    string                `json:"cell"` // "rw/<shared%>/<nodes>"
	Shared  int                   `json:"shared_pct"`
	Nodes   int                   `json:"nodes"`
	TPS     float64               `json:"tps_sim"`
	Aborts  int64                 `json:"aborts"`
	Stages  []trace.StageSnapshot `json:"stages"`
	SlowTxs []trace.TxSummary     `json:"slow_txs,omitempty"`
}

// TraceSnapshot is the document `mpbench -trace <path>` writes: the same
// config block as BENCH_*.json snapshots plus per-stage decompositions.
type TraceSnapshot struct {
	Config struct {
		Scale    int    `json:"scale"`
		Duration string `json:"duration_per_config"`
		Warmup   string `json:"warmup_per_config"`
		Threads  int    `json:"threads_per_node"`
		Nodes    []int  `json:"nodes"`
	} `json:"config"`
	SlowTxThreshold string      `json:"slow_tx_threshold,omitempty"`
	Cells           []TraceCell `json:"trace_cells"`
}

// TraceRun measures the rw/50 cell with tracing enabled for each node count
// (default just 8, the headline cell), writes the per-stage decomposition as
// JSON to path, and validates the written document round-trips against the
// schema before returning it.
func TraceRun(o Options, path string) (*TraceSnapshot, error) {
	if len(o.Nodes) == 0 {
		o.Nodes = []int{8}
	}
	o.Trace = true
	o.fill()
	o.header("Commit-path trace: rw/50 per-stage decomposition")

	snap := &TraceSnapshot{}
	snap.Config.Scale = o.Scale
	snap.Config.Duration = o.Duration.String()
	snap.Config.Warmup = o.Warmup.String()
	snap.Config.Threads = o.Threads
	snap.Config.Nodes = o.Nodes
	if o.SlowTx > 0 {
		snap.SlowTxThreshold = o.SlowTx.String()
	}

	for _, n := range o.Nodes {
		cell, err := o.runTraceCell(50, n)
		if err != nil {
			return nil, err
		}
		snap.Cells = append(snap.Cells, cell)
		o.printf("%-10s %12.0f tps  %d stages traced\n", cell.Cell, cell.TPS, len(cell.Stages))
		for _, sg := range cell.Stages {
			o.printf("  %-14s count=%-9d mean=%-12v p99=%-12v rpcs=%d reads=%d writes=%d\n",
				sg.Stage, sg.Count, sg.Mean.Round(time.Nanosecond),
				sg.P99.Round(time.Nanosecond), sg.Ops.RPCs, sg.Ops.Reads, sg.Ops.Writes)
		}
	}

	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := validateTraceJSON(buf); err != nil {
		return nil, fmt.Errorf("trace snapshot failed validation: %w", err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return nil, err
	}
	o.printf("wrote %s\n", path)
	return snap, nil
}

// runTraceCell measures one read-write cell on a traced cluster.
func (o Options) runTraceCell(shared, n int) (TraceCell, error) {
	db, err := o.newMP(n)
	if err != nil {
		return TraceCell{}, err
	}
	defer db.Cluster.Close()
	sb := workload.DefaultSysbench(workload.SysbenchReadWrite, n, shared)
	sb.TablesPerGroup = 2
	sb.RowsPerTable = 800
	sb.StatementDelay = o.stmtDelay()
	if err := sb.Load(db); err != nil {
		return TraceCell{}, fmt.Errorf("trace: sysbench load (%d nodes): %w", n, err)
	}
	res := o.runner().Run(db, sb.TxFunc)
	st := db.Cluster.Stats()

	return TraceCell{
		Cell:   fmt.Sprintf("rw/%d/%d", shared, n),
		Shared: shared, Nodes: n,
		TPS:     o.simTPS(res),
		Aborts:  res.Aborts,
		Stages:  st.Stages,
		SlowTxs: st.SlowTxs,
	}, nil
}

// validateTraceJSON checks a marshalled TraceSnapshot against the schema:
// it must round-trip, every cell must carry a non-empty stage decomposition,
// every stage name must be in the tracer's taxonomy, and each stage's
// quantiles must be ordered (p50 ≤ p95 ≤ p99 ≤ max, all ≥ 0).
func validateTraceJSON(buf []byte) error {
	var snap TraceSnapshot
	if err := json.Unmarshal(buf, &snap); err != nil {
		return fmt.Errorf("round-trip: %w", err)
	}
	known := map[string]bool{}
	for _, name := range trace.StageNames() {
		known[name] = true
	}
	if len(snap.Cells) == 0 {
		return fmt.Errorf("no trace cells")
	}
	for _, cell := range snap.Cells {
		if cell.Cell == "" || cell.Nodes <= 0 {
			return fmt.Errorf("malformed cell %+v", cell)
		}
		if len(cell.Stages) == 0 {
			return fmt.Errorf("cell %s has no stage decomposition", cell.Cell)
		}
		var commits int64
		for _, sg := range cell.Stages {
			if !known[sg.Stage] {
				return fmt.Errorf("cell %s: unknown stage %q", cell.Cell, sg.Stage)
			}
			if sg.Count <= 0 {
				return fmt.Errorf("cell %s: stage %s has count %d", cell.Cell, sg.Stage, sg.Count)
			}
			if sg.P50 < 0 || sg.P50 > sg.P95 || sg.P95 > sg.P99 || sg.P99 > sg.Max {
				return fmt.Errorf("cell %s: stage %s quantiles out of order: p50=%v p95=%v p99=%v max=%v",
					cell.Cell, sg.Stage, sg.P50, sg.P95, sg.P99, sg.Max)
			}
			if sg.Stage == "commit" {
				commits = sg.Count
			}
		}
		if commits == 0 {
			return fmt.Errorf("cell %s: no commit stage observed", cell.Cell)
		}
	}
	return nil
}
