package figures

import (
	"sync"
	"time"

	"polardbmp/internal/baseline"
	"polardbmp/internal/common"
	"polardbmp/internal/metrics"
	"polardbmp/internal/workload"
)

// Fig11 reproduces Figure 11: PolarDB-MP vs the Taurus-MM-like log-ship
// baseline under the heaviest-sharing SysBench settings of Taurus-MM's
// evaluation — read-write at 50% shared and write-only at 30% shared.
// Paper shape: MP's 8-node scalability 5.64x (rw) / 4.62x (wo) vs
// Taurus-MM's 1.88x / 1.5x; 8-node throughput ratios ~3.17x / ~4.02x.
func Fig11(o Options) []SweepPoint {
	o.fill()
	o.header("Figure 11: vs Taurus-MM-like log-ship (rw@50% shared, wo@30% shared)")
	cases := []struct {
		kind   workload.SysbenchKind
		shared int
	}{
		{workload.SysbenchReadWrite, 50},
		{workload.SysbenchWriteOnly, 30},
	}
	if o.Quick {
		cases = cases[1:]
	}
	var points []SweepPoint
	for _, c := range cases {
		for _, n := range o.Nodes {
			tps, res := o.runSysbench("polardb-mp", c.kind, c.shared, n, o.newMP)
			points = append(points, SweepPoint{System: "polardb-mp", Kind: c.kind.String(),
				Shared: c.shared, Nodes: n, TPS: tps, Aborts: res.Aborts})
			tps, res = o.runSysbench("log-ship", c.kind, c.shared, n, o.newLogShip)
			points = append(points, SweepPoint{System: "log-ship(taurus)", Kind: c.kind.String(),
				Shared: c.shared, Nodes: n, TPS: tps, Aborts: res.Aborts})
		}
	}
	normalize(points)
	o.printf("%-18s %-12s %7s %6s %12s %8s\n", "system", "workload", "shared%", "nodes", "tps(sim)", "scaling")
	for _, p := range points {
		o.printf("%-18s %-12s %7d %6d %12.0f %7.2fx\n", p.System, p.Kind, p.Shared, p.Nodes, p.TPS, p.Scaling)
	}
	return points
}

// Fig12 reproduces Figure 12: the light-conflict comparison (10% shared)
// against both Aurora-MM-like OCC and the Taurus-MM-like baseline. Paper
// shape: even at 10% shared, Aurora-MM's write-only 2/4-node clusters are
// at or below single-node throughput; MP scales near-linearly.
func Fig12(o Options) []SweepPoint {
	o.fill()
	o.header("Figure 12: light conflict (10% shared) vs Aurora-MM-like OCC and log-ship")
	kinds := []workload.SysbenchKind{workload.SysbenchReadWrite, workload.SysbenchWriteOnly}
	if o.Quick {
		kinds = kinds[1:]
	}
	var points []SweepPoint
	for _, kind := range kinds {
		for _, n := range o.Nodes {
			tps, res := o.runSysbench("polardb-mp", kind, 10, n, o.newMP)
			points = append(points, SweepPoint{System: "polardb-mp", Kind: kind.String(),
				Shared: 10, Nodes: n, TPS: tps, Aborts: res.Aborts})
			tps, res = o.runSysbench("log-ship", kind, 10, n, o.newLogShip)
			points = append(points, SweepPoint{System: "log-ship(taurus)", Kind: kind.String(),
				Shared: 10, Nodes: n, TPS: tps, Aborts: res.Aborts})
			if n <= 4 { // Aurora-MM supported at most 4 nodes
				tps, res = o.runOCC(kind, 10, n)
				points = append(points, SweepPoint{System: "occ(aurora)", Kind: kind.String(),
					Shared: 10, Nodes: n, TPS: tps, Aborts: res.Aborts})
			}
		}
	}
	normalize(points)
	o.printf("%-18s %-12s %6s %12s %8s %8s\n", "system", "workload", "nodes", "tps(sim)", "scaling", "aborts")
	for _, p := range points {
		o.printf("%-18s %-12s %6d %12.0f %7.2fx %8d\n", p.System, p.Kind, p.Nodes, p.TPS, p.Scaling, p.Aborts)
	}
	return points
}

// runOCC measures the Aurora-MM-like baseline on one sysbench config.
func (o Options) runOCC(kind workload.SysbenchKind, shared, n int) (float64, workload.Result) {
	lat := baseline.DefaultOCCLatency()
	s := time.Duration(o.Scale)
	lat.StorageRead *= s
	lat.VersionCheck = 0 // sub-µs at scale; below sleep granularity
	lat.CommitRound *= s
	db := baseline.NewOCCMM(n, lat)
	sb := workload.DefaultSysbench(kind, n, shared)
	sb.TablesPerGroup = 2
	sb.RowsPerTable = 800
	// Page-granular conflicts: a 16KB page holds ~100 sysbench rows, so
	// 800 rows span ~8 "pages" per table — Aurora-MM's page-conflict
	// behaviour at realistic density.
	db.Buckets = sb.RowsPerTable / 100
	sb.StatementDelay = o.stmtDelay()
	if err := sb.Load(db); err != nil {
		panic(err)
	}
	r := o.runner()
	r.MaxRetries = 16 // applications retry "deadlock errors"
	res := r.Run(db, sb.TxFunc)
	return o.simTPS(res), res
}

// Fig13 reproduces Figure 13: insert throughput and single-thread latency
// as global secondary indexes are added, PolarDB-MP vs shared-nothing 2PC.
// Paper shape: MP loses ~20% with one GSI; the shared-nothing systems lose
// 60-70% with one and fall below 20% of baseline at eight.
func Fig13(o Options) []SweepPoint {
	o.fill()
	o.header("Figure 13: global secondary index updates vs shared-nothing 2PC")
	indexCounts := []int{0, 1, 2, 4, 8}
	if o.Quick {
		indexCounts = []int{0, 1, 4}
	}
	nodes := 4
	var points []SweepPoint
	for _, k := range indexCounts {
		// PolarDB-MP.
		mp, err := o.newMP(nodes)
		if err != nil {
			panic(err)
		}
		g := workload.DefaultGSI(k)
		g.StatementDelay = o.stmtDelay()
		if err := g.Load(mp); err != nil {
			panic(err)
		}
		res := o.runner().Run(mp, g.TxFunc)
		lat1 := o.singleThreadLatency(mp, g)
		mp.Cluster.Close()
		points = append(points, SweepPoint{System: "polardb-mp", Kind: "gsi", Shared: k,
			Nodes: nodes, TPS: o.simTPS(res), P95: lat1})

		// Shared-nothing 2PC. Each participant's log force is a Raft
		// majority round (TiDB/CockroachDB/OceanBase replicate every
		// write through consensus, ~0.5-2ms in-DC), which is the cost
		// asymmetry §5.4 exploits: PolarDB-MP forces its log to an
		// append-optimized shared store in tens of microseconds.
		lat := baseline.DefaultShardedLatency()
		s := time.Duration(o.Scale)
		lat.RPC *= s
		lat.LogSync = 400 * time.Microsecond * s
		sn := baseline.NewSharded(nodes, lat)
		g2 := workload.DefaultGSI(k)
		g2.StatementDelay = o.stmtDelay()
		if err := g2.Load(sn); err != nil {
			panic(err)
		}
		res2 := o.runner().Run(sn, g2.TxFunc)
		lat2 := o.singleThreadLatency(sn, g2)
		points = append(points, SweepPoint{System: "shared-nothing", Kind: "gsi", Shared: k,
			Nodes: nodes, TPS: o.simTPS(res2), P95: lat2})
	}
	// Normalize against the same system's 0-GSI point (Fig 13's y-axis).
	base := map[string]float64{}
	for _, p := range points {
		if p.Shared == 0 {
			base[p.System] = p.TPS
		}
	}
	for i := range points {
		if b := base[points[i].System]; b > 0 {
			points[i].Scaling = points[i].TPS / b
		}
	}
	o.printf("%-16s %5s %12s %10s %14s\n", "system", "#GSI", "tps(sim)", "vs-0-GSI", "latency(sim)")
	for _, p := range points {
		o.printf("%-16s %5d %12.0f %9.0f%% %14v\n", p.System, p.Shared, p.TPS,
			p.Scaling*100, p.P95.Round(10*time.Microsecond))
	}
	return points
}

// singleThreadLatency measures mean insert latency with one client thread,
// in simulated time.
func (o Options) singleThreadLatency(db workload.DB, g *workload.GSI) time.Duration {
	txf := g.TxFunc(0, 99)
	var total time.Duration
	const n = 30
	for i := 0; i < n; i++ {
		start := time.Now()
		for txf(db, 0) != nil {
		}
		total += time.Since(start)
	}
	return total / n / time.Duration(o.Scale)
}

// Fig15 reproduces Figure 15 (the recovery evaluation of §5.5): a two-node
// cluster on disjoint table groups; node 1 is killed mid-run and restarted;
// node 2's throughput must be undisturbed and node 1 must return quickly,
// recovering mostly from the DBP rather than storage.
func Fig15(o Options) (node1, node2 []float64, recovery time.Duration) {
	o.fill()
	o.header("Figure 15: recovery — kill node 1 at t, node 2 unaffected")
	db, err := o.newMP(2)
	if err != nil {
		panic(err)
	}
	defer db.Cluster.Close()
	// Disjoint groups: 0% shared, exactly the paper's setup.
	sb := workload.DefaultSysbench(workload.SysbenchReadWrite, 2, 0)
	sb.TablesPerGroup = 2
	sb.RowsPerTable = 600
	sb.StatementDelay = o.stmtDelay()
	if err := sb.Load(db); err != nil {
		panic(err)
	}
	// Checkpoint the freshly-loaded state (production checkpoints run
	// continuously) so crash recovery replays only the run's log tail.
	if err := db.Cluster.Checkpoint(); err != nil {
		panic(err)
	}

	interval := o.Duration / 4
	tl1 := metrics.NewTimeline(interval)
	tl2 := metrics.NewTimeline(interval)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for node := 0; node < 2; node++ {
		tl := tl1
		if node == 1 {
			tl = tl2
		}
		for th := 0; th < o.Threads; th++ {
			wg.Add(1)
			go func(node, th int, tl *metrics.Timeline) {
				defer wg.Done()
				txf := sb.TxFunc(node, th)
				for {
					select {
					case <-stop:
						return
					default:
					}
					if err := txf(db, node); err == nil {
						tl.Tick(1)
					} else if !common.IsRetryable(err) {
						time.Sleep(time.Millisecond) // node down
					}
				}
			}(node, th, tl)
		}
	}

	// Run, crash node 1, restart it immediately, keep running.
	time.Sleep(2 * o.Duration)
	db.Cluster.CrashNode(1)
	crashAt := time.Now()
	if _, err := db.Cluster.RestartNode(1); err != nil {
		panic(err)
	}
	recovery = time.Since(crashAt)
	time.Sleep(2 * o.Duration)
	close(stop)
	wg.Wait()

	node1 = tl1.Rates()
	node2 = tl2.Rates()
	if len(node1) > 1 {
		node1 = node1[:len(node1)-1] // drop the partial final bucket
	}
	if len(node2) > 1 {
		node2 = node2[:len(node2)-1]
	}
	o.printf("node 1 recovery completed in %v real (%v simulated)\n",
		recovery.Round(time.Millisecond), (recovery * time.Duration(o.Scale)).Round(time.Millisecond))
	o.printf("%8s %14s %14s\n", "t(sim)", "node1 tps", "node2 tps")
	for i := 0; i < len(node1) || i < len(node2); i++ {
		var r1, r2 float64
		if i < len(node1) {
			r1 = node1[i] * float64(o.Scale)
		}
		if i < len(node2) {
			r2 = node2[i] * float64(o.Scale)
		}
		o.printf("%8v %14.0f %14.0f\n",
			(time.Duration(i) * interval * time.Duration(o.Scale)).Round(time.Millisecond), r1, r2)
	}
	return node1, node2, recovery
}
