package figures

import (
	"io"
	"strings"
	"testing"
	"time"
)

// tinyOpts shrinks every knob so each figure runs in a couple of seconds;
// these tests guard the harness code paths, not the numbers.
func tinyOpts() Options {
	return Options{
		Out:      io.Discard,
		Quick:    true,
		Scale:    25,
		Duration: 250 * time.Millisecond,
		Warmup:   50 * time.Millisecond,
		Threads:  1,
		Nodes:    []int{1, 2},
	}
}

func TestFig7Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test")
	}
	points := Fig7(tinyOpts())
	if len(points) == 0 {
		t.Fatal("no points")
	}
	for _, p := range points {
		if p.TPS <= 0 {
			t.Fatalf("zero throughput at %+v", p)
		}
	}
}

func TestFig8And13Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test")
	}
	if pts := Fig8(tinyOpts()); len(pts) != 2 {
		t.Fatalf("fig8 points = %d", len(pts))
	}
	pts := Fig13(tinyOpts())
	if len(pts) == 0 {
		t.Fatal("fig13 empty")
	}
	seen := map[string]bool{}
	for _, p := range pts {
		seen[p.System] = true
	}
	if !seen["polardb-mp"] || !seen["shared-nothing"] {
		t.Fatalf("fig13 systems = %v", seen)
	}
}

func TestFig15Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test")
	}
	o := tinyOpts()
	n1, n2, recovery := Fig15(o)
	if len(n1) == 0 || len(n2) == 0 {
		t.Fatal("empty timelines")
	}
	if recovery <= 0 || recovery > 30*time.Second {
		t.Fatalf("recovery = %v", recovery)
	}
}

func TestMicroSmoke(t *testing.T) {
	tso, tit := Micro(tinyOpts())
	// In-process one-sided verbs must stay well under the several-µs
	// budget §4.1 cites for real RDMA.
	if tso <= 0 || tso > 100*time.Microsecond {
		t.Fatalf("tso fetch = %v", tso)
	}
	if tit <= 0 || tit > 100*time.Microsecond {
		t.Fatalf("tit read = %v", tit)
	}
}

func TestHeaderMentionsScale(t *testing.T) {
	var sb strings.Builder
	o := tinyOpts()
	o.Out = &sb
	o.fill()
	o.header("x")
	if !strings.Contains(sb.String(), "scale=25x") {
		t.Fatalf("header missing scale: %q", sb.String())
	}
}

func TestNormalize(t *testing.T) {
	pts := []SweepPoint{
		{System: "a", Kind: "k", Nodes: 1, TPS: 100},
		{System: "a", Kind: "k", Nodes: 4, TPS: 350},
		{System: "b", Kind: "k", Nodes: 1, TPS: 200},
		{System: "b", Kind: "k", Nodes: 4, TPS: 300},
	}
	normalize(pts)
	if pts[1].Scaling != 3.5 || pts[3].Scaling != 1.5 {
		t.Fatalf("scalings = %v %v", pts[1].Scaling, pts[3].Scaling)
	}
}
