package core

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"polardbmp/internal/btree"
	"polardbmp/internal/bufferfusion"
	"polardbmp/internal/common"
	"polardbmp/internal/lockfusion"
	"polardbmp/internal/page"
	"polardbmp/internal/trace"
	"polardbmp/internal/wal"
)

// MaxRowSize bounds key+value so a single row can never overflow a page
// even with a short version chain.
const MaxRowSize = 3 * 1024

// Isolation selects the transaction's snapshot behaviour.
type Isolation uint8

const (
	// ReadCommitted takes a fresh read view per statement (the paper's
	// evaluation default, §5.1).
	ReadCommitted Isolation = iota
	// SnapshotIsolation fixes the read view at Begin.
	SnapshotIsolation
)

// Tx is a transaction bound to one node. A Tx must be used from a single
// goroutine, like database/sql.Tx.
type Tx struct {
	n    *Node
	g    common.GTrxID
	iso  Isolation
	view common.CSN // fixed view under SI (0 until first use)

	undo    []undoEntry
	touched []common.PageID // pages written, for commit-time CTS stamping
	writes  bool
	done    bool
	started time.Time

	// deadline is the transaction's total latency budget (zero = unbounded).
	// It bounds every blocking step — PLock queue waits, row-lock parks, DBP
	// fetches, retry backoff — and is checkpointed at statement entry and
	// around the commit pipeline.
	deadline common.Deadline

	cts common.CSN // set on a successful writing commit

	// occ is the staged write set, used only under the OCC engine (nil
	// under 2PL, where writes claim rows in the pages immediately).
	occ *occState

	// tr is the transaction's span trace (nil when tracing is off); trees
	// holds the private traced B-tree handles a traced transaction walks
	// instead of the node's shared ones.
	tr    *trace.TxTrace
	trees map[common.SpaceID]*btree.Tree
}

type undoEntry struct {
	space common.SpaceID
	key   []byte
}

// Begin starts a read-committed transaction.
func (n *Node) Begin() (*Tx, error) { return n.BeginIso(ReadCommitted) }

// BeginIso starts a transaction at the given isolation level.
func (n *Node) BeginIso(iso Isolation) (*Tx, error) {
	return n.BeginDeadline(iso, common.Deadline{})
}

// BeginDeadline starts a transaction with a total latency budget. Every
// blocking step charges against dl: PLock queue waits (the budget rides the
// acquire request so the SERVER bounds the wait), row-lock parks, DBP/storage
// fetches, retry backoff. Once the budget is spent the transaction fails
// with the non-retryable ErrDeadlineExceeded and must be rolled back. A zero
// dl is unbounded and stays on the allocation-free fast path.
func (n *Node) BeginDeadline(iso Isolation, dl common.Deadline) (*Tx, error) {
	start := time.Now()
	if err := dl.Err(); err != nil {
		return nil, fmt.Errorf("core: node %d begin: %w", n.id, err)
	}
	btok := n.tracer.Start()
	if !n.live.Load() {
		// A node that left via graceful drain keeps answering ErrDraining
		// (route elsewhere), not ErrNodeDown (crashed, recovery pending).
		if n.draining.Load() {
			return nil, fmt.Errorf("core: node %d: %w", n.id, common.ErrDraining)
		}
		return nil, fmt.Errorf("core: node %d: %w", n.id, common.ErrNodeDown)
	}
	// Admission handshake with DrainNode (a Dekker pair over seq-cst
	// atomics): register in activeTx BEFORE checking the drain flag, while
	// the drain sets the flag before reading activeTx. Either this Begin
	// sees the flag and refuses, or the drain's wait loop sees this
	// transaction and waits it out — a transaction can never slip past a
	// drain and then abort mid-flight for membership reasons.
	n.activeTx.Add(1)
	if n.draining.Load() {
		n.activeTx.Add(-1)
		return nil, fmt.Errorf("core: node %d: %w", n.id, common.ErrDraining)
	}
	if n.agent.Evicted() {
		n.activeTx.Add(-1)
		return nil, fmt.Errorf("core: node %d: %w", n.id, common.ErrStaleEpoch)
	}
	g, err := n.tf.Begin(n.nextTrx())
	if err != nil {
		// TIT exhaustion: refresh the global minimum view synchronously
		// (recycling committed slots) and retry once.
		if _, rerr := n.tf.ReportMinView(); rerr == nil {
			g, err = n.tf.Begin(n.nextTrx())
		}
		if err != nil {
			n.activeTx.Add(-1)
			return nil, err
		}
	}
	tx := &Tx{n: n, g: g, iso: iso, started: start, deadline: dl}
	if iso == SnapshotIsolation {
		csn, err := n.tf.CurrentReadCSN()
		if err != nil {
			n.tf.Finish(g)
			n.activeTx.Add(-1)
			return nil, err
		}
		tx.view = n.tf.OpenView(csn)
	}
	tx.tr = n.tracer.StartTx(g, start)
	tx.tr.Observe(trace.StageBegin, btok)
	return tx, nil
}

// GTrxID returns the transaction's global id (diagnostics).
func (tx *Tx) GTrxID() common.GTrxID { return tx.g }

// TxInfo is a transaction's introspection surface: identity, state, and —
// when tracing is on — its span timeline.
type TxInfo struct {
	GTrx    string    `json:"gtrx"`
	Node    uint16    `json:"node"`
	Started time.Time `json:"started"`
	Done    bool      `json:"done"`
	Writes  bool      `json:"writes"`
	// CTS is the commit timestamp (non-zero only after a successful
	// writing commit).
	CTS uint64 `json:"cts,omitempty"`
	// Trace is the span summary; nil when tracing is off.
	Trace *trace.TxSummary `json:"trace,omitempty"`
}

// Info returns the transaction's introspection snapshot. Valid before or
// after Commit/Rollback, from the transaction's own goroutine.
func (tx *Tx) Info() TxInfo {
	info := TxInfo{
		GTrx:    tx.g.String(),
		Node:    uint16(tx.g.Node),
		Started: tx.started,
		Done:    tx.done,
		Writes:  tx.writes,
		CTS:     uint64(tx.cts),
	}
	if tx.tr != nil {
		sum := tx.tr.Summary()
		info.Trace = &sum
	}
	return info
}

// tree returns the B-tree handle this transaction walks space through: the
// node's shared tree normally, a private tree over the traced pager (same
// anchor, span recording on page access) when the transaction is traced or
// carries a deadline (the private pager threads the budget into PLock
// acquires and page fetches). Unbounded untraced transactions — the hot
// path — never leave the shared tree.
func (tx *Tx) tree(space common.SpaceID) (*btree.Tree, error) {
	t, err := tx.n.tree(space)
	if err != nil || (tx.tr == nil && tx.deadline.IsZero()) {
		return t, err
	}
	if pt := tx.trees[space]; pt != nil {
		return pt, nil
	}
	pt := btree.New(&tracePager{n: tx.n, tt: tx.tr, dl: tx.deadline}, space, t.Anchor())
	if tx.trees == nil {
		tx.trees = make(map[common.SpaceID]*btree.Tree)
	}
	tx.trees[space] = pt
	return pt, nil
}

// checkDeadline is the statement/commit checkpoint: once the budget is
// spent it counts the abort, marks the span timeline, and returns the
// non-retryable ErrDeadlineExceeded.
func (tx *Tx) checkDeadline() error {
	if !tx.deadline.Expired() {
		return nil
	}
	tx.n.DeadlineAborts.Inc()
	tok := tx.tr.Start()
	tx.tr.Mark(trace.StageDeadlineAbort, tok)
	return fmt.Errorf("core: tx %v: budget spent: %w", tx.g, common.ErrDeadlineExceeded)
}

// statementView returns the read view for one statement and a release func.
func (tx *Tx) statementView() (common.CSN, func(), error) {
	if tx.iso == SnapshotIsolation {
		return tx.view, func() {}, nil
	}
	csn, err := tx.n.tf.CurrentReadCSN()
	if err != nil {
		return 0, nil, err
	}
	v := tx.n.tf.OpenView(csn)
	return v, func() { tx.n.tf.CloseView(v) }, nil
}

// visibleValue walks a version chain and returns the value visible to view
// (own writes always visible). The second result is false when no version
// is visible or the visible version is a tombstone. resolve maps a version
// to its effective CTS — n.resolveCTS for point lookups, a page-scoped
// batch resolver for scans.
func (tx *Tx) visibleValue(row *page.Row, view common.CSN, resolve func(*page.Version) common.CSN) ([]byte, bool) {
	if row == nil {
		return nil, false
	}
	for i := range row.Versions {
		v := &row.Versions[i]
		if v.Trx != tx.g && resolve(v) > view {
			continue
		}
		if v.Deleted {
			return nil, false
		}
		return append([]byte(nil), v.Value...), true
	}
	return nil, false
}

// Get returns the value of key under the transaction's isolation level, or
// ErrNotFound.
func (tx *Tx) Get(space common.SpaceID, key []byte) ([]byte, error) {
	if tx.done {
		return nil, common.ErrTxDone
	}
	if err := tx.checkDeadline(); err != nil {
		return nil, err
	}
	// Engine staging overlay: under OCC the transaction's own writes are
	// not in the pages yet; read-your-writes comes from the staged set.
	if val, deleted, ok := tx.n.c.cc.StagedRead(tx, space, key); ok {
		if deleted {
			return nil, fmt.Errorf("core: key %q: %w", key, common.ErrNotFound)
		}
		return val, nil
	}
	view, release, err := tx.statementView()
	if err != nil {
		return nil, err
	}
	defer release()
	t, err := tx.tree(space)
	if err != nil {
		return nil, err
	}
	ref, err := t.LeafSafe(key, lockfusion.ModeS)
	if err != nil {
		return nil, err
	}
	val, ok := tx.visibleValue(ref.Page.Find(key), view, tx.n.resolveCTS)
	tx.n.releasePager(ref)
	if !ok {
		return nil, fmt.Errorf("core: key %q: %w", key, common.ErrNotFound)
	}
	return val, nil
}

// GetForUpdate returns the latest committed value of key and leaves the row
// X-locked by this transaction (SELECT ... FOR UPDATE): it waits out any
// active writer, then claims the row lock by prepending a version that
// carries the same value. Read-modify-write sequences use it to avoid the
// read-committed lost-update anomaly.
func (tx *Tx) GetForUpdate(space common.SpaceID, key []byte) ([]byte, error) {
	if tx.done {
		return nil, common.ErrTxDone
	}
	if err := tx.write(space, key, nil, opLockRow); err != nil {
		return nil, err
	}
	// The row is now locked by us; its pre-lock value was copied into the
	// version we just wrote.
	return tx.Get(space, key)
}

// KV is a key/value pair returned by Scan.
type KV struct {
	Key   []byte
	Value []byte
}

// Scan returns up to limit visible rows with from <= key < to (to==nil means
// unbounded), in key order, under one statement view.
func (tx *Tx) Scan(space common.SpaceID, from, to []byte, limit int) ([]KV, error) {
	if tx.done {
		return nil, common.ErrTxDone
	}
	if err := tx.checkDeadline(); err != nil {
		return nil, err
	}
	view, release, err := tx.statementView()
	if err != nil {
		return nil, err
	}
	defer release()
	t, err := tx.tree(space)
	if err != nil {
		return nil, err
	}
	// Engine staging overlay: staged writes in range shadow (or extend)
	// what the pages hold. When the overlay is empty — always, under 2PL —
	// the walk honours limit directly; otherwise the walk covers the whole
	// range and the merge truncates.
	staged := tx.n.c.cc.StagedRange(tx, space, from, to)
	pageLimit := limit
	if len(staged) > 0 {
		pageLimit = 0
	}
	ref, err := t.LeafSafe(from, lockfusion.ModeS)
	if err != nil {
		return nil, err
	}
	var out []KV
	for ref != nil {
		start, _ := ref.Page.Search(from)
		// One vectored TIT exchange resolves every unstamped version on
		// the leaf before the row loop starts.
		resolve := tx.n.batchResolver(ref.Page)
		for i := start; i < len(ref.Page.Rows); i++ {
			row := &ref.Page.Rows[i]
			if to != nil && bytes.Compare(row.Key, to) >= 0 {
				tx.n.releasePager(ref)
				return mergeStaged(out, staged, limit), nil
			}
			if val, ok := tx.visibleValue(row, view, resolve); ok {
				out = append(out, KV{Key: append([]byte(nil), row.Key...), Value: val})
				if pageLimit > 0 && len(out) >= pageLimit {
					tx.n.releasePager(ref)
					return out, nil
				}
			}
		}
		ref, err = t.Next(ref, lockfusion.ModeS)
		if err != nil {
			return mergeStaged(out, staged, limit), err
		}
	}
	return mergeStaged(out, staged, limit), nil
}

// mergeStaged overlays a transaction's staged writes onto one scan's page
// results (both key-sorted): a staged entry replaces the page row of the
// same key (dropped when it is a staged delete) and staged-only keys are
// spliced in, then the merge is truncated to limit. A nil overlay — the 2PL
// engine, or an OCC transaction with no staged write in range — returns rows
// unchanged.
func mergeStaged(rows []KV, staged []stagedKV, limit int) []KV {
	if len(staged) == 0 {
		return rows
	}
	out := make([]KV, 0, len(rows)+len(staged))
	i, j := 0, 0
	for i < len(rows) || j < len(staged) {
		var cmp int
		switch {
		case i >= len(rows):
			cmp = 1
		case j >= len(staged):
			cmp = -1
		default:
			cmp = bytes.Compare(rows[i].Key, staged[j].key)
		}
		switch {
		case cmp < 0:
			out = append(out, rows[i])
			i++
		case cmp > 0:
			s := staged[j]
			j++
			if !s.deleted {
				out = append(out, KV{
					Key:   append([]byte(nil), s.key...),
					Value: append([]byte(nil), s.value...),
				})
			}
		default:
			s := staged[j]
			i++
			j++
			if !s.deleted {
				out = append(out, KV{Key: rows[i-1].Key, Value: append([]byte(nil), s.value...)})
			}
		}
		if limit > 0 && len(out) >= limit {
			return out[:limit]
		}
	}
	return out
}

// releasePager releases a btree ref through the node's pager.
func (n *Node) releasePager(ref *btree.Ref) { (*pager)(n).Release(ref) }

// writeOp discriminates the three mutations.
type writeOp uint8

const (
	opInsert writeOp = iota
	opUpdate
	opDelete
)

// Insert adds a row; ErrKeyExists if a visible (committed-latest or own)
// live row already exists.
func (tx *Tx) Insert(space common.SpaceID, key, value []byte) error {
	return tx.write(space, key, value, opInsert)
}

// Update replaces a row's value; ErrNotFound if no live row exists.
func (tx *Tx) Update(space common.SpaceID, key, value []byte) error {
	return tx.write(space, key, value, opUpdate)
}

// Delete removes a row (tombstone); ErrNotFound if no live row exists.
func (tx *Tx) Delete(space common.SpaceID, key []byte) error {
	return tx.write(space, key, nil, opDelete)
}

// Upsert inserts or replaces unconditionally.
func (tx *Tx) Upsert(space common.SpaceID, key, value []byte) error {
	return tx.write(space, key, value, opUpsert)
}

const (
	opUpsert  writeOp = 3
	opLockRow writeOp = 4
)

// write runs the shared statement preconditions and dispatches the mutation
// to the cluster's concurrency-control engine: 2PL claims the row now under
// the X leaf (twopl.go), OCC stages it until commit (occ.go).
func (tx *Tx) write(space common.SpaceID, key, value []byte, op writeOp) error {
	if tx.done {
		return common.ErrTxDone
	}
	if len(key) == 0 {
		return fmt.Errorf("core: empty key")
	}
	if len(key)+len(value) > MaxRowSize {
		return fmt.Errorf("core: row of %d bytes exceeds MaxRowSize %d", len(key)+len(value), MaxRowSize)
	}
	if err := tx.checkDeadline(); err != nil {
		return err
	}
	return tx.n.c.cc.Write(tx, space, key, value, op)
}

// mutate applies one logged version-prepend under the held X leaf.
func (tx *Tx) mutate(ref *btree.Ref, frame *bufferfusion.Frame, space common.SpaceID, key, value []byte, deleted bool) {
	n := tx.n
	llsn := n.llsn.Next()
	ref.Page.InsertVersion(key, page.Version{
		Trx:     tx.g,
		CTS:     common.CSNInit,
		Deleted: deleted,
		Value:   append([]byte(nil), value...),
	})
	ref.Page.LLSN = llsn
	end := n.wal.Append(&wal.Record{
		Type:    wal.RecInsert,
		Node:    n.id,
		LLSN:    llsn,
		Trx:     tx.g,
		Page:    ref.Page.ID,
		Space:   space,
		Key:     key,
		Deleted: deleted,
		Value:   value,
	})
	frame.Dirty = true
	if end > frame.FlushLSN {
		frame.FlushLSN = end
	}
	tx.undo = append(tx.undo, undoEntry{space: space, key: append([]byte(nil), key...)})
	tx.touched = append(tx.touched, ref.Page.ID)
	tx.writes = true
}

// Commit makes the transaction durable and visible: run the engine's
// commit-time work (OCC validation + apply; none under 2PL), then the shared
// pipeline — fetch a CTS from the TSO (one-sided fetch-add), force the redo
// log through the commit record, publish the CTS in the TIT slot, best-effort
// stamp rows still cached, and notify Lock Fusion if a waiter flagged us
// (§4.1, §4.3.2).
func (tx *Tx) Commit() error {
	if tx.done {
		return common.ErrTxDone
	}
	tx.finish()
	n := tx.n
	if !tx.writes {
		// Journal the trivial commit too: a client resolving an ambiguous
		// read-only commit gets "committed" (CSNMin: visible to all), not
		// an unresolvable recycled slot.
		n.c.txlog.record(tx.g, common.CSNMin)
		n.tf.Finish(tx.g)
		n.Commits.Inc()
		n.TxLatency.Observe(time.Since(tx.started))
		n.tracer.FinishTx(tx.tr, 0, true)
		return nil
	}
	// Deadline checkpoint: a transaction whose budget is already spent must
	// not start the commit pipeline (TSO grant, log force) it cannot afford.
	if err := tx.checkDeadline(); err != nil {
		tx.rollbackLocked()
		return err
	}
	// Lease self-check: a slow-but-alive node that lost its lease has been
	// taken over — its in-flight writes are already resolved by a survivor,
	// so publishing this commit would fork history. Abort instead.
	if err := n.leaseCheck(); err != nil {
		tx.rollbackLocked()
		return err
	}
	// Engine commit work: under OCC this validates the staged set and
	// applies it to the pages (populating tx.undo); a conflict aborts with
	// nothing applied, so the rollback is a pure TIT release.
	if err := n.c.cc.Prepare(tx); err != nil {
		tx.rollbackLocked()
		return err
	}
	return tx.commitPipeline()
}

// commitPipeline is the engine-independent commit tail: TSO grant, commit
// record force (the durability point), TIT publish, CTS stamping. Waiters
// are notified right after the TIT publish — before stamping — so a parked
// writer resumes while this committer is still walking its touched pages
// (the waiter's own resolveCTS finds the published CTS through the TIT).
func (tx *Tx) commitPipeline() error {
	n := tx.n
	ttok := tx.tr.Start()
	cts, grouped, err := n.tf.NextCommitCSNEx()
	if err != nil {
		// Cannot reach the TSO (PMFS partition/crash): the transaction
		// cannot commit; roll it back.
		tx.rollbackLocked()
		return err
	}
	// Post-grant checkpoint: the flat-combined TSO round may have stalled
	// past the budget (the leader retries on behalf of the whole group).
	// Aborting here wastes one CSN — timestamps need only be monotonic, not
	// dense — and keeps the overrun bounded before the log force.
	if err := tx.checkDeadline(); err != nil {
		tx.rollbackLocked()
		return err
	}
	if grouped {
		n.TSOGroup.Inc()
		tx.tr.Mark(trace.StageTSOGroup, ttok)
	} else {
		n.TSOSolo.Inc()
		tx.tr.Mark(trace.StageTSOSolo, ttok)
	}
	atok := tx.tr.Start()
	end := n.wal.Append(&wal.Record{Type: wal.RecCommit, Node: n.id, LLSN: n.llsn.Next(), Trx: tx.g, CTS: cts})
	tx.tr.Mark(trace.StageLogAppend, atok)
	stok := tx.tr.Start()
	n.wal.Sync(end) // durability point (group-committed)
	tx.tr.Mark(trace.StageLogSync, stok)
	if n.wal.Durable() < end {
		// The stream was fenced or closed under us (a survivor began
		// takeover between the lease check and the sync): the commit
		// record is not durable and must not be published.
		tx.rollbackLocked()
		if n.agent.Evicted() {
			return fmt.Errorf("core: node %d commit: %w", n.id, common.ErrStaleEpoch)
		}
		return fmt.Errorf("core: node %d commit: %w", n.id, common.ErrNodeDown)
	}
	waiters, err := n.tf.Commit(tx.g, cts)
	if err != nil {
		n.tracer.FinishTx(tx.tr, 0, false)
		return err
	}
	// The commit record is durable and the CTS published: journal the
	// outcome so a client that lost its connection mid-commit can resolve
	// the ambiguity (txstatus.go) even after the TIT slot recycles.
	n.c.txlog.record(tx.g, cts)
	if waiters {
		n.rl.NotifyCommitted(tx.g)
	}
	if !n.c.cfg.DisableCTSStamp {
		ctok := tx.tr.Start()
		tx.stampCTS(cts)
		tx.tr.Observe(trace.StageCTSStamp, ctok)
	}
	tx.cts = cts
	n.Commits.Inc()
	n.TxLatency.Observe(time.Since(tx.started))
	n.tracer.FinishTx(tx.tr, cts, true)
	return nil
}

// stampCTS fills the CTS of this transaction's versions on pages still
// cached and locally lockable — the §4.1 fast path sparing readers the TIT
// lookup. Best-effort: pages gone from the LBP (or whose PLock left the
// node) are skipped. All stamped (and still-dirty) pages are then pushed to
// the DBP through ONE vectored write: the commit record is already durable,
// so the covering log force is free, and a later revoke finds the pages
// clean — the transfer flush moves off the waiter's critical path onto the
// committer's already-paid one.
func (tx *Tx) stampCTS(cts common.CSN) {
	n := tx.n
	seen := make(map[common.PageID]bool, len(tx.touched))
	var push []common.PageID
	for _, pg := range tx.touched {
		if seen[pg] {
			continue
		}
		seen[pg] = true
		// Only stamp where the X PLock is already held by this node
		// (lazy retention makes this the common case); a remote
		// acquisition just to stamp would cost more than it saves.
		if n.pl.HeldMode(pg) != lockfusion.ModeX {
			continue
		}
		if err := n.pl.Acquire(pg, lockfusion.ModeX); err != nil {
			continue
		}
		f, err := n.lbp.Get(pg)
		if err != nil {
			n.pl.Release(pg)
			continue
		}
		f.Mu.Lock()
		if f.Pg.StampCTS(tx.g, cts) > 0 {
			f.Dirty = true
		}
		dirty := f.Dirty
		f.Mu.Unlock()
		n.lbp.Unpin(f)
		if dirty && n.pl.RevokePending(pg) {
			// A peer is waiting on this page: push it now, off the
			// waiter's critical path. Keep the PLock reference until
			// the batched push below — peers must not read these
			// frames mid-batch. Uncontended dirty pages stay in the
			// LBP (pushing them would tax every commit for a transfer
			// nobody asked for).
			push = append(push, pg)
		} else {
			n.pl.Release(pg)
		}
	}
	if len(push) > 0 {
		_ = n.lbp.PushMany(push) // best-effort; failures stay dirty for revoke flush
		for _, pg := range push {
			n.pl.Release(pg)
		}
	}
}

// Rollback undoes the transaction: each written version is removed (logged
// as a compensation record) and the TIT slot is freed.
func (tx *Tx) Rollback() error {
	if tx.done {
		return common.ErrTxDone
	}
	tx.finish()
	tx.rollbackLocked()
	return nil
}

func (tx *Tx) finish() {
	tx.done = true
	tx.n.activeTx.Add(-1)
	if tx.iso == SnapshotIsolation {
		tx.n.tf.CloseView(tx.view)
	}
}

func (tx *Tx) rollbackLocked() {
	n := tx.n
	// Journal before the TIT slot is freed: once Finish recycles it, the
	// journal is the only witness that this was an abort, not a commit.
	n.c.txlog.record(tx.g, 0)
	left := n.rollbackEntries(tx.g, tx.undo)
	if len(left) > 0 {
		// Some pages were unreachable (a peer's crash fence or a network
		// partition): their versions are still on the pages, uncompensated.
		// The TIT slot must stay active until every one is removed — a
		// recycled slot resolves CSNMin ("committed, visible to all"), so
		// freeing it now would publish the rolled-back writes as committed
		// the moment the fault heals. RecAbort is likewise withheld: after
		// a crash the log must show this transaction as unfinished so
		// restart recovery redoes the compensation itself.
		n.deferLiveRollback(tx.g, left)
		n.Aborts.Inc()
		n.tracer.FinishTx(tx.tr, 0, false)
		return
	}
	n.wal.Append(&wal.Record{Type: wal.RecAbort, Node: n.id, LLSN: n.llsn.Next(), Trx: tx.g})
	waiters := n.tf.Finish(tx.g)
	if waiters {
		n.rl.NotifyCommitted(tx.g)
	}
	n.Aborts.Inc()
	n.tracer.FinishTx(tx.tr, 0, false)
}

// deferLiveRollback keeps retrying the compensation of undo entries whose
// pages were unreachable when a live transaction rolled back. Writers that
// hit the leaked versions wait on the still-active TIT slot, and readers
// resolve them CSNMax (invisible), so the deferral is safe — just slow for
// the affected rows until the fault heals. Only once every entry is undone
// are the abort record logged and the slot freed.
func (n *Node) deferLiveRollback(g common.GTrxID, undo []undoEntry) {
	n.DeferredAborts.Inc()
	n.bgDone.Add(1)
	go func() {
		defer n.bgDone.Done()
		for n.live.Load() {
			undo = n.rollbackEntries(g, undo)
			if len(undo) == 0 {
				n.wal.Append(&wal.Record{Type: wal.RecAbort, Node: n.id, LLSN: n.llsn.Next(), Trx: g})
				if waiters := n.tf.Finish(g); waiters {
					n.rl.NotifyCommitted(g)
				}
				return
			}
			select {
			case <-n.stopBG:
				return
			case <-time.After(20 * time.Millisecond):
			}
		}
	}()
}

// rollbackEntries removes g's newest versions for the given undo entries in
// reverse order, logging compensation records. Shared by live rollback and
// node-restart recovery. Entries whose pages are currently unreachable
// (fenced by another crashed node) are returned for deferred retry.
func (n *Node) rollbackEntries(g common.GTrxID, undo []undoEntry) []undoEntry {
	var unreachable []undoEntry
	for i := len(undo) - 1; i >= 0; i-- {
		e := undo[i]
		t, err := n.tree(e.space)
		if err != nil {
			continue
		}
		ref, err := t.LeafSafe(e.key, lockfusion.ModeX)
		if err != nil {
			// Any failure to reach the page leaves its version
			// uncompensated; the entry MUST come back for retry, because
			// the caller frees the TIT slot only once the list drains and
			// a freed slot flips the leaked version to "committed".
			// ErrUnreachable/ErrNodeDown (partition, dead peer) are not in
			// IsRetryable — they still heal: partitions mend and dead
			// peers are taken over.
			if common.IsRetryable(err) || errors.Is(err, common.ErrUnreachable) ||
				errors.Is(err, common.ErrNodeDown) || errors.Is(err, common.ErrInjected) {
				unreachable = append(unreachable, e)
			}
			continue
		}
		if ref.Page.RollbackVersion(e.key, g) {
			llsn := n.llsn.Next()
			ref.Page.LLSN = llsn
			end := n.wal.Append(&wal.Record{
				Type:  wal.RecRollback,
				Node:  n.id,
				LLSN:  llsn,
				Trx:   g,
				Page:  ref.Page.ID,
				Space: e.space,
				Key:   e.key,
			})
			f := ref.Opaque.(*bufferfusion.Frame)
			f.Dirty = true
			if end > f.FlushLSN {
				f.FlushLSN = end
			}
		}
		n.releasePager(ref)
	}
	return unreachable
}
