package core

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"polardbmp/internal/common"
	"polardbmp/internal/lockfusion"
	"polardbmp/internal/wal"
)

func lockfusionModeS() lockfusion.Mode { return lockfusion.ModeS }

// TestPropertyNoLostUpdates hammers one counter row from every node with
// locking read-modify-write transactions; the final value must equal the
// number of successful commits (the §4.3.2 RLock guarantee).
func TestPropertyNoLostUpdates(t *testing.T) {
	c, sp := testCluster(t, 4)
	put(t, c.Node(1), sp, "counter", "0")

	var commits atomic.Int64
	var wg sync.WaitGroup
	for n := 1; n <= 4; n++ {
		for th := 0; th < 2; th++ {
			wg.Add(1)
			go func(n int) {
				defer wg.Done()
				node := c.Node(n)
				for i := 0; i < 40; i++ {
					for {
						tx, err := node.Begin()
						if err != nil {
							t.Error(err)
							return
						}
						raw, err := tx.GetForUpdate(sp, []byte("counter"))
						if err != nil {
							tx.Rollback()
							if common.IsRetryable(err) {
								continue
							}
							t.Error(err)
							return
						}
						v, _ := strconv.Atoi(string(raw))
						err = tx.Update(sp, []byte("counter"), []byte(strconv.Itoa(v+1)))
						if err == nil {
							err = tx.Commit()
						} else {
							tx.Rollback()
						}
						if err == nil {
							commits.Add(1)
							break
						}
						if !common.IsRetryable(err) {
							t.Error(err)
							return
						}
					}
				}
			}(n)
		}
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	got, err := get(t, c.Node(2), sp, "counter")
	if err != nil {
		t.Fatal(err)
	}
	if got != strconv.Itoa(int(commits.Load())) {
		t.Fatalf("counter = %s, commits = %d: lost update", got, commits.Load())
	}
	if commits.Load() != 8*40 {
		t.Fatalf("commits = %d, want 320", commits.Load())
	}
}

// TestPropertyLLSNPerPageOrder verifies §4.4's core invariant on the real
// engine's logs: merging every node's redo stream yields, for each page,
// strictly increasing LLSNs.
func TestPropertyLLSNPerPageOrder(t *testing.T) {
	c, sp := testCluster(t, 3)
	var wg sync.WaitGroup
	for n := 1; n <= 3; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			node := c.Node(n)
			for i := 0; i < 120; i++ {
				tx, err := node.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				// Mix shared and private keys so pages migrate.
				key := fmt.Sprintf("shared-%02d", i%8)
				if i%3 == 0 {
					key = fmt.Sprintf("own-%d-%03d", n, i)
				}
				if err := tx.Upsert(sp, []byte(key), []byte("v")); err != nil {
					tx.Rollback()
					continue
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(n)
	}
	wg.Wait()
	for _, n := range c.Nodes() {
		n.wal.Sync(n.wal.End())
	}

	var readers []*wal.StreamReader
	for _, node := range c.store.LogNodes() {
		readers = append(readers, wal.NewStreamReader(c.store, node, c.store.LogStartLSN(node), 0))
	}
	m := wal.NewMergeReader(readers...)
	lastPerPage := map[common.PageID]common.LLSN{}
	records := 0
	for {
		rec, err := m.Next()
		if err != nil {
			t.Fatal(err)
		}
		if rec == nil {
			break
		}
		records++
		if rec.Page == common.InvalidPageID {
			continue // commit/abort records carry no page
		}
		if rec.LLSN <= lastPerPage[rec.Page] {
			t.Fatalf("page %d: LLSN %d after %d (type %d, node %d)",
				rec.Page, rec.LLSN, lastPerPage[rec.Page], rec.Type, rec.Node)
		}
		lastPerPage[rec.Page] = rec.LLSN
	}
	if records == 0 {
		t.Fatal("no records merged")
	}
}

// TestPropertyVisibilityMonotonic opens snapshot views in commit order and
// checks each sees a value at least as new as the previous view's.
func TestPropertyVisibilityMonotonic(t *testing.T) {
	c, sp := testCluster(t, 2)
	put(t, c.Node(1), sp, "k", "0")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 1
		for {
			select {
			case <-stop:
				return
			default:
			}
			tx, err := c.Node(1).Begin()
			if err != nil {
				return
			}
			if tx.Update(sp, []byte("k"), []byte(strconv.Itoa(i))) == nil {
				if tx.Commit() == nil {
					i++
				}
			} else {
				tx.Rollback()
			}
		}
	}()

	last := -1
	for i := 0; i < 200; i++ {
		tx, err := c.Node(2).BeginIso(SnapshotIsolation)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := tx.Get(sp, []byte("k"))
		tx.Commit()
		if err != nil {
			t.Fatal(err)
		}
		v, _ := strconv.Atoi(string(raw))
		if v < last {
			t.Fatalf("snapshot regressed: saw %d after %d", v, last)
		}
		last = v
	}
	close(stop)
	wg.Wait()
}

// TestAblationConfigsCorrect runs a conflict-heavy mixed workload under each
// ablation switch; results must stay correct (the switches trade
// performance, never correctness).
func TestAblationConfigsCorrect(t *testing.T) {
	configs := map[string]Config{
		"no-lazy-plock": {DisableLazyPLock: true},
		"no-lamport":    {DisableLamport: true},
		"no-cts-stamp":  {DisableCTSStamp: true},
		"storage-sync":  {StoragePageSync: true},
		"tiny-buffers":  {LBPFrames: 24, DBPFrames: 48},
	}
	for name, cfg := range configs {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			cfg.LockWaitTimeout = 2 * time.Second
			cfg.RecycleInterval = 5 * time.Millisecond
			c := NewCluster(cfg)
			defer c.Close()
			for i := 0; i < 2; i++ {
				if _, err := c.AddNode(); err != nil {
					t.Fatal(err)
				}
			}
			sp, err := c.CreateSpace("t")
			if err != nil {
				t.Fatal(err)
			}
			put(t, c.Node(1), sp, "shared", "0")
			var commits atomic.Int64
			var wg sync.WaitGroup
			for n := 1; n <= 2; n++ {
				wg.Add(1)
				go func(n int) {
					defer wg.Done()
					node := c.Node(n)
					for i := 0; i < 30; i++ {
						for {
							tx, err := node.Begin()
							if err != nil {
								t.Error(err)
								return
							}
							raw, err := tx.GetForUpdate(sp, []byte("shared"))
							if err != nil {
								tx.Rollback()
								if common.IsRetryable(err) {
									continue
								}
								t.Error(err)
								return
							}
							v, _ := strconv.Atoi(string(raw))
							err = tx.Update(sp, []byte("shared"), []byte(strconv.Itoa(v+1)))
							if err == nil {
								err = tx.Commit()
							} else {
								tx.Rollback()
							}
							if err == nil {
								commits.Add(1)
								break
							}
							if !common.IsRetryable(err) {
								t.Error(err)
								return
							}
						}
					}
				}(n)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			got, err := get(t, c.Node(1), sp, "shared")
			if err != nil || got != strconv.Itoa(int(commits.Load())) {
				t.Fatalf("counter=%s commits=%d err=%v", got, commits.Load(), err)
			}
		})
	}
}

// TestTinyBufferEvictionPressure forces constant LBP and DBP eviction and
// verifies durability through the full storage path.
func TestTinyBufferEvictionPressure(t *testing.T) {
	c := NewCluster(Config{
		LBPFrames:       16,
		DBPFrames:       24,
		RecycleInterval: 5 * time.Millisecond,
	})
	defer c.Close()
	for i := 0; i < 2; i++ {
		if _, err := c.AddNode(); err != nil {
			t.Fatal(err)
		}
	}
	sp, err := c.CreateSpace("t")
	if err != nil {
		t.Fatal(err)
	}
	const rows = 1200
	payload := make([]byte, 300)
	for i := 0; i < rows; i++ {
		tx, err := c.Node(1 + i%2).Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Upsert(sp, []byte(fmt.Sprintf("k%05d", i)), payload); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
	}
	if c.store.Stats().PageWrites.Load() == 0 {
		t.Fatal("no storage writes despite tiny buffer pools")
	}
	// All rows visible from both nodes (through storage re-reads).
	for n := 1; n <= 2; n++ {
		tx, err := c.Node(n).Begin()
		if err != nil {
			t.Fatal(err)
		}
		kvs, err := tx.Scan(sp, nil, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		tx.Commit()
		if len(kvs) != rows {
			t.Fatalf("node %d sees %d rows, want %d", n, len(kvs), rows)
		}
	}
}

// TestSequentialCrashesOfBothNodes alternates crash/restart of the two
// nodes under committed traffic and verifies nothing is lost.
func TestSequentialCrashesOfBothNodes(t *testing.T) {
	c, sp := testCluster(t, 2)
	total := 0
	write := func(n int, k string) {
		put(t, c.Node(n), sp, k, "v")
		total++
	}
	write(1, "a1")
	write(2, "b1")
	c.CrashNode(1)
	if _, err := c.RestartNode(1); err != nil {
		t.Fatal(err)
	}
	write(1, "a2")
	c.CrashNode(2)
	if _, err := c.RestartNode(2); err != nil {
		t.Fatal(err)
	}
	write(2, "b2")
	c.CrashNode(1)
	c.CrashNode(2)
	if _, err := c.RestartNode(1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RestartNode(2); err != nil {
		t.Fatal(err)
	}
	tx, err := c.Node(1).Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Commit()
	kvs, err := tx.Scan(sp, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != total {
		t.Fatalf("rows = %d, want %d", len(kvs), total)
	}
}

// TestBothNodesCrashSimultaneously is the double-crash variant: both nodes
// die with fences up; both recoveries must complete and lift each other's
// fences without deadlocking.
func TestBothNodesCrashSimultaneously(t *testing.T) {
	c, sp := testCluster(t, 2)
	put(t, c.Node(1), sp, "x", "1")
	put(t, c.Node(2), sp, "y", "2")
	c.CrashNode(1)
	c.CrashNode(2)
	if _, err := c.RestartNode(1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RestartNode(2); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"x", "y"} {
		if _, err := get(t, c.Node(1), sp, k); err != nil {
			t.Fatalf("%s: %v", k, err)
		}
	}
}

// TestPurgeShrinksTree deletes a whole key range, purges, and checks the
// leaf chain shrank (empty-leaf unlink SMO) while remaining data survives.
func TestPurgeShrinksTree(t *testing.T) {
	c, sp := testCluster(t, 2)
	n := c.Node(1)
	payload := make([]byte, 200)
	const rows = 1500
	for i := 0; i < rows; i++ {
		tx, err := n.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Insert(sp, []byte(fmt.Sprintf("k%05d", i)), payload); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
	}
	countLeaves := func() int {
		tr, err := n.tree(sp)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := tr.First(lockfusionModeS())
		if err != nil {
			t.Fatal(err)
		}
		leaves := 0
		for ref != nil {
			leaves++
			ref, err = tr.Next(ref, lockfusionModeS())
			if err != nil {
				t.Fatal(err)
			}
		}
		return leaves
	}
	before := countLeaves()
	if before < 6 {
		t.Skipf("tree too small (%d leaves)", before)
	}
	// Delete the middle half.
	for i := rows / 4; i < 3*rows/4; i++ {
		tx, _ := n.Begin()
		if err := tx.Delete(sp, []byte(fmt.Sprintf("k%05d", i))); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
	}
	if _, err := n.tf.ReportMinView(); err != nil {
		t.Fatal(err)
	}
	if _, err := n.PurgeSpace(sp); err != nil {
		t.Fatal(err)
	}
	after := countLeaves()
	if after >= before {
		t.Fatalf("leaves before=%d after=%d: purge did not shrink the tree", before, after)
	}
	// Remaining rows intact, from the other node.
	tx, _ := c.Node(2).Begin()
	defer tx.Commit()
	kvs, err := tx.Scan(sp, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != rows/2 {
		t.Fatalf("rows after purge = %d, want %d", len(kvs), rows/2)
	}
}

// TestBackgroundPurgeTrimsChains runs the background purger and checks hot
// rows' version chains stay bounded.
func TestBackgroundPurgeTrimsChains(t *testing.T) {
	c := NewCluster(Config{
		RecycleInterval: 5 * time.Millisecond,
		PurgeInterval:   10 * time.Millisecond,
	})
	defer c.Close()
	if _, err := c.AddNode(); err != nil {
		t.Fatal(err)
	}
	sp, err := c.CreateSpace("t")
	if err != nil {
		t.Fatal(err)
	}
	n := c.Node(1)
	put(t, n, sp, "hot", "0")
	for i := 0; i < 300; i++ {
		tx, _ := n.Begin()
		if err := tx.Update(sp, []byte("hot"), []byte(fmt.Sprintf("%d", i))); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
	}
	time.Sleep(60 * time.Millisecond) // let the purger run
	tr, err := n.tree(sp)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := tr.LeafSafe([]byte("hot"), lockfusionModeS())
	if err != nil {
		t.Fatal(err)
	}
	chain := len(ref.Page.Find([]byte("hot")).Versions)
	n.releasePager(ref)
	if chain > 50 {
		t.Fatalf("version chain length %d after 300 updates; purge not running", chain)
	}
	if v, _ := get(t, n, sp, "hot"); v != "299" {
		t.Fatalf("hot = %q", v)
	}
}

func TestClusterStats(t *testing.T) {
	c, sp := testCluster(t, 2)
	put(t, c.Node(1), sp, "k", "v")
	if v, err := get(t, c.Node(2), sp, "k"); err != nil || v != "v" {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Commits < 2 {
		t.Fatalf("commits = %d", s.Commits)
	}
	if s.Fabric.RPCs == 0 || s.Fabric.Atomics == 0 {
		t.Fatalf("fabric counters empty: %+v", s)
	}
	if s.DBPResident == 0 {
		t.Fatal("no pages resident in DBP")
	}
}
