// Package core assembles PolarDB-MP: a multi-primary cluster of full
// database nodes over disaggregated shared memory (PMFS: Transaction Fusion,
// Buffer Fusion, Lock Fusion) and disaggregated shared storage, exactly as
// Figure 2 of the paper lays it out.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"polardbmp/internal/bufferfusion"
	"polardbmp/internal/common"
	"polardbmp/internal/lockfusion"
	"polardbmp/internal/membership"
	"polardbmp/internal/metrics"
	"polardbmp/internal/page"
	"polardbmp/internal/pmfsrep"
	"polardbmp/internal/rdma"
	"polardbmp/internal/storage"
	"polardbmp/internal/trace"
	"polardbmp/internal/txfusion"
)

// Config tunes a cluster. The zero value is a sensible test-scale cluster;
// DefaultConfig returns benchmark-scale defaults with realistic storage
// latency.
type Config struct {
	// LBPFrames is each node's local buffer pool capacity in pages.
	LBPFrames int
	// DBPFrames is the distributed buffer pool capacity in pages.
	DBPFrames int
	// TITSlots sizes each node's transaction information table.
	TITSlots int
	// StorageLatency injects shared-storage I/O delays.
	StorageLatency storage.Latency
	// FabricLatency injects RDMA verb delays.
	FabricLatency rdma.Latency
	// LockWaitTimeout bounds RLock waits (backstop behind deadlock
	// detection). Default 2s.
	LockWaitTimeout time.Duration
	// RecycleInterval is the background TIT-recycle / min-view report
	// period. Default 20ms; negative disables the background thread
	// (tests drive recycling explicitly).
	RecycleInterval time.Duration
	// PurgeInterval is the background version-purge period (the MVCC
	// vacuum). Zero disables it; purge still runs inline when pages fill.
	PurgeInterval time.Duration

	// CC selects the concurrency-control engine: "2pl" (default, the
	// paper's 2PL + CTS design) or "occ" (optimistic validation at commit,
	// one-sided-verb heavy; see DESIGN.md §14).
	CC string

	// Ablation switches (all default off = paper design).
	DisableLazyPLock bool // §4.3.1 lazy release off
	DisableLamport   bool // §4.1 Linear Lamport timestamp reuse off
	DisableCTSStamp  bool // §4.1 commit-time row CTS stamping off
	// DisableCommitPipeline turns off pipelined group commit (§14): the
	// background sync launcher that keeps staggered log-sync rounds in
	// flight so committers pay only the residual wait to the next round
	// completion instead of a full storage round.
	DisableCommitPipeline bool
	// DisableSpecCTS turns off speculative CTS resolution (§14): readers
	// then always take the one-sided TIT read for unstamped rows instead
	// of first consulting the writer's recycle floor.
	DisableSpecCTS bool
	// DisableAdaptiveTSO pins TSO allocation to the flat-combining path
	// (§14): solo fast-path fetch-add on an uncontended grant queue is
	// then never taken.
	DisableAdaptiveTSO bool
	// StoragePageSync replaces Buffer Fusion's DBP transfer with the
	// page-store + log-replay synchronization of Taurus-MM (§2.3): the
	// log-ship baseline and the DBP ablation.
	StoragePageSync bool

	// DisableRetry turns off transient-fault retries in the PMFS client
	// paths (the chaos ablation that demonstrates why the retries exist).
	// Crash fences, deadlocks and timeouts always fail fast either way.
	DisableRetry bool

	// AdmitPerStripe overrides the fusion servers' admission bound: the
	// number of concurrently admitted requests per PLock/Buffer directory
	// stripe before new work is shed with the retryable ErrOverloaded.
	// Zero keeps the server defaults; negative disables shedding.
	AdmitPerStripe int
	// HedgeDelayFloor overrides the minimum delay before a slow DBP frame
	// read is hedged with a fallback read (see bufferfusion; the effective
	// delay is max(floor, 8x the node's read-latency EWMA)). Zero keeps
	// the default (1ms); negative disables hedging.
	HedgeDelayFloor time.Duration

	// SelfHeal enables online crash recovery: every node heartbeats a
	// lease into the PMFS membership table and watches its peers; when a
	// lease expires a survivor fences the dead node under a new cluster
	// epoch and runs the takeover pipeline (lock drop, in-doubt
	// resolution, redo replay, frame reclamation) without operator
	// involvement. Off by default: harnesses then declare crashes
	// explicitly via CrashNode/RestartNode.
	SelfHeal bool
	// LeaseRenewInterval is the heartbeat/detection period. Default 15ms.
	LeaseRenewInterval time.Duration
	// LeaseTimeout is how long a heartbeat may stand still before peers
	// suspect the node. Default 90ms (six renew intervals).
	LeaseTimeout time.Duration

	// PmfsReplicas is the replication factor of the shared-memory tier:
	// every verb against a PMFS region is mirrored across K replicas with
	// quorum (K/2+1) acknowledgement before it returns. Default 3; values
	// below 2 (including negative) disable replication — the single-copy
	// PMFS of the earlier PRs. Zero means "use the default".
	PmfsReplicas int
	// FenceTTL bounds how long a satellite's storage client keeps treating
	// a node as fenced after the seed's fenced-piggyback notification, so
	// log appends fail fast during takeover. Zero keeps the storage-layer
	// default (100ms); slow-fabric tests raise it to stop racing takeover.
	FenceTTL time.Duration

	// DrainTimeout bounds how long DrainNode waits for the victim's
	// in-flight transactions to finish before giving up with
	// ErrDeadlineExceeded (the node stays draining; the drain may be
	// retried). Default 30s.
	DrainTimeout time.Duration

	// Trace enables the commit-path span tracer on every node (nil = off;
	// the disabled hooks cost one pointer check and zero allocations).
	Trace *trace.Config
}

// retryPolicy resolves the transient-fault retry policy for this config.
func (c *Config) retryPolicy() common.RetryPolicy {
	if c.DisableRetry {
		return common.NoRetryPolicy()
	}
	return common.DefaultRetryPolicy()
}

func (c *Config) fill() {
	if c.LBPFrames <= 0 {
		c.LBPFrames = 2048
	}
	if c.DBPFrames <= 0 {
		c.DBPFrames = 8192
	}
	if c.TITSlots <= 0 {
		// Sized for sustained throughput: slots are recycled only as the
		// global minimum view advances (once per RecycleInterval per
		// node), so the table must absorb RecycleInterval's worth of
		// write transactions with margin.
		c.TITSlots = 32768
	}
	if c.LockWaitTimeout <= 0 {
		c.LockWaitTimeout = 2 * time.Second
	}
	if c.RecycleInterval == 0 {
		c.RecycleInterval = 5 * time.Millisecond
	}
	if c.LeaseRenewInterval <= 0 {
		c.LeaseRenewInterval = 15 * time.Millisecond
	}
	if c.LeaseTimeout <= 0 {
		c.LeaseTimeout = 90 * time.Millisecond
	}
	if c.PmfsReplicas == 0 {
		c.PmfsReplicas = 3
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.CC == "" {
		c.CC = CC2PL
	}
}

// DefaultConfig returns benchmark defaults: realistic storage latency and
// production-shaped pool sizes (scaled to a single machine).
func DefaultConfig() Config {
	return Config{
		LBPFrames:      4096,
		DBPFrames:      16384,
		StorageLatency: storage.DefaultLatency(),
	}
}

// Cluster is a PolarDB-MP deployment: shared storage, PMFS, and N primary
// nodes.
type Cluster struct {
	cfg    Config
	fabric *rdma.Fabric
	store  storage.API

	txSrv   *txfusion.Server
	lockSrv *lockfusion.Server
	bufSrv  *bufferfusion.Server
	members *membership.Table

	// pmfsRep replicates the shared-memory tier (nil when PmfsReplicas < 2
	// or in a satellite). pmfsTracers is the replication observer's lock-free
	// node→tracer snapshot, rebuilt whenever a node comes up.
	pmfsRep     *pmfsrep.Replicator
	pmfsTracers atomic.Value // map[common.NodeID]*trace.Tracer

	// Satellite mode (JoinRemote): this process hosts no PMFS and no store;
	// txSrv/lockSrv/bufSrv/members are nil, verbs route over peer to the
	// seed, and view answers the recovery-fate question members would.
	remote bool
	peer   *rdma.Peer
	view   *membership.RemoteView

	// netStats, when set, contributes the process's network-layer counters
	// to ClusterStats (wired by the daemons; core stays wire-agnostic).
	netStats func() NetStats

	mu       sync.Mutex
	nodes    map[common.NodeID]*Node
	nextNode common.NodeID
	spaceMu  sync.Mutex // serializes space-directory read-modify-write

	// takeoverMu serializes surviving-node takeovers (one dead peer is
	// recovered at a time; concurrent failures queue).
	takeoverMu    sync.Mutex
	takeovers     metrics.Counter
	takeoverFails metrics.Counter
	takeoverDur   metrics.Histogram
	takeoverErrMu sync.Mutex
	takeoverErr   string // last failed-takeover diagnostic, "" when none

	// txlog is this process's bounded transaction-outcome journal
	// (txstatus.go): every commit, rollback, and takeover-resolved fate is
	// recorded so an ambiguous client commit can be resolved, not guessed.
	txlog txJournal

	// Pipelined group commit (pipeline.go): the cluster syncer's wake/stop
	// channels and round counter. pipeWake is non-nil only when the syncer
	// is running; writers attach to it in newNode.
	pipeWake    chan struct{}
	pipeStop    chan struct{}
	pipeOnce    sync.Once
	pipeRounds  atomic.Int64
	pipeStagger time.Duration

	// cc is the concurrency-control engine every node's transactions run
	// under, resolved once from Config.CC (cc.go).
	cc ccEngine
}

// NewCluster builds the shared substrate (storage + PMFS) with no nodes.
func NewCluster(cfg Config) *Cluster {
	cfg.fill()
	return NewClusterWithStore(cfg, storage.New(cfg.StorageLatency))
}

// NewClusterWithStore builds a cluster over an existing shared store — a
// recovered store, or a promoted standby replica (§3's cross-region HA).
func NewClusterWithStore(cfg Config, store storage.API) *Cluster {
	cfg.fill()
	c := &Cluster{
		cfg:      cfg,
		fabric:   rdma.NewFabric(cfg.FabricLatency),
		nodes:    make(map[common.NodeID]*Node),
		nextNode: 1,
	}
	c.cc = newCCEngine(cfg.CC)
	c.store = store
	c.startPMFS()
	c.startLogPipeline()
	return c
}

// startPMFS registers the PMFS endpoint and its three fusion services.
func (c *Cluster) startPMFS() {
	ep := c.fabric.Register(common.PMFSNode)
	c.txSrv = txfusion.NewServer(ep, c.fabric)
	c.lockSrv = lockfusion.NewServer(ep, c.fabric)
	c.bufSrv = bufferfusion.NewServerMode(ep, c.fabric, c.store, c.cfg.DBPFrames, c.cfg.StoragePageSync)
	c.members = membership.NewTable(ep)
	gate := c.members.Gate()
	c.txSrv.SetEpochGate(gate)
	c.lockSrv.SetEpochGate(gate)
	c.bufSrv.SetEpochGate(gate)
	rp := c.cfg.retryPolicy()
	c.lockSrv.SetRetryPolicy(rp)
	c.bufSrv.SetRetryPolicy(rp)
	if c.cfg.AdmitPerStripe != 0 {
		c.lockSrv.PLock.SetAdmissionLimit(c.cfg.AdmitPerStripe)
		c.bufSrv.SetAdmissionLimit(c.cfg.AdmitPerStripe)
	}
	// Remote-process services: satellite nodes reach the shared store and
	// cluster administration through these endpoints.
	storage.Serve(ep, c.store)
	ep.Serve(ServiceCluster, c.handleAdmin)

	if c.cfg.PmfsReplicas > 1 {
		rep := pmfsrep.New(c.fabric, common.PMFSNode, c.cfg.PmfsReplicas)
		rep.AddRegion(txfusion.RegionTSO, 8, false)
		rep.AddRegion(txfusion.RegionGMV, 8, false)
		// The membership table is the lease/fate oracle: quorum reads so a
		// survivor's fate query never trusts a single stale copy.
		rep.AddRegion(membership.Region, membership.RegionSize, true)
		rep.AddRegion(bufferfusion.RegionDBP, c.cfg.DBPFrames*page.FrameSize, false)
		rep.OnFailover(func(uint64) {
			// Join/Evict serialize through the Table and mirror with local
			// writes that bypass the replicated path; re-seed the promoted
			// copy from what the Table actually holds.
			c.members.Remirror()
		})
		if c.cfg.Trace != nil {
			rep.SetObserver(func(src common.NodeID, d time.Duration) {
				m, _ := c.pmfsTracers.Load().(map[common.NodeID]*trace.Tracer)
				m[src].ObserveStage(trace.StagePmfsReplicate, d)
			})
		}
		rep.Attach(c.fabric)
		c.pmfsRep = rep
	}
}

// Store exposes the shared storage (harness/inspection).
func (c *Cluster) Store() storage.API { return c.store }

// Fabric exposes the RDMA fabric (harness/inspection).
func (c *Cluster) Fabric() *rdma.Fabric { return c.fabric }

// BufferServer exposes Buffer Fusion stats (harness/inspection).
func (c *Cluster) BufferServer() *bufferfusion.Server { return c.bufSrv }

// LockServer exposes Lock Fusion stats (harness/inspection).
func (c *Cluster) LockServer() *lockfusion.Server { return c.lockSrv }

// Members exposes the membership table (harness/inspection).
func (c *Cluster) Members() *membership.Table { return c.members }

// AddNode joins a fresh primary node to the live cluster and returns it.
// This is the online join protocol, identical for the seed and for a
// satellite growing a second node: a slot is allocated dynamically from the
// membership table (reusing cleanly-drained slots; ErrUnknownNode when all
// MaxNodes slots are taken), the node is announced on the fabric before it
// serves, and it registers with the fusion services under a fresh
// incarnation epoch. Options.Nodes-style static counts are initial-topology
// sugar over this same path.
func (c *Cluster) AddNode() (*Node, error) {
	id, err := c.allocNodeID()
	if err != nil {
		return nil, err
	}
	if c.remote {
		// Announce before the node serves (see JoinRemote): the seed must be
		// able to call back into this process once the node can hold locks.
		if err := c.peer.Announce(id); err != nil {
			return nil, fmt.Errorf("core: announce node %d: %w", id, err)
		}
	}
	n, err := c.newNode(id, false)
	if err != nil {
		c.freeNodeID(id)
		return nil, err
	}
	c.mu.Lock()
	c.nodes[id] = n
	c.mu.Unlock()
	c.refreshPmfsTracers()
	return n, nil
}

// allocNodeID reserves a cluster-unique node id: from the membership table
// on the seed (lowest free or cleanly-drained slot), via the seed's admin
// service from a satellite. nextNode tracks the local high watermark so
// id-order iteration keeps working when low slots are reused.
func (c *Cluster) allocNodeID() (common.NodeID, error) {
	if c.members == nil {
		return c.allocNodeRemote()
	}
	id, err := c.members.Alloc()
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	if id >= c.nextNode {
		c.nextNode = id + 1
	}
	c.mu.Unlock()
	return id, nil
}

// freeNodeID returns a reserved-but-never-joined slot to the table (best
// effort; a satellite's failed reservation ages out as Joining).
func (c *Cluster) freeNodeID(id common.NodeID) {
	if c.members != nil {
		_ = c.members.Free(id)
	}
}

// refreshPmfsTracers rebuilds the replication observer's node→tracer map (a
// copy-on-write snapshot: the observer runs on the replicated hot path and
// must not take c.mu).
func (c *Cluster) refreshPmfsTracers() {
	if c.pmfsRep == nil || c.cfg.Trace == nil {
		return
	}
	m := make(map[common.NodeID]*trace.Tracer)
	c.mu.Lock()
	for id, n := range c.nodes {
		m[id] = n.tracer
	}
	c.mu.Unlock()
	c.pmfsTracers.Store(m)
}

// Node returns the i-th (1-based) node, or nil if it is down.
func (c *Cluster) Node(i int) *Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[common.NodeID(i)]
}

// Nodes returns the live nodes in id order.
func (c *Cluster) Nodes() []*Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Node, 0, len(c.nodes))
	for id := common.NodeID(1); id < c.nextNode; id++ {
		if n := c.nodes[id]; n != nil {
			out = append(out, n)
		}
	}
	return out
}

// ErrUnknownNode reports a node id that was never added to the cluster (or,
// from slot allocation, a full membership table). It aliases the shared
// sentinel so errors.Is matches across membership, core, and the wire.
var ErrUnknownNode = common.ErrUnknownNode

// ErrDraining reports a node that is gracefully draining and refuses new
// transactions; route the work to another primary (alias of the shared
// sentinel, preserved across the wire).
var ErrDraining = common.ErrDraining

// ErrNotHosted reports an operation that needs the hosting (seed) process —
// crash orchestration, checkpointing, recovery — attempted from a satellite.
var ErrNotHosted = errors.New("core: operation requires the hosting process")

// recoveredPeer answers the recovery-fate question (did node's takeover
// complete?) from the local membership table, or in a satellite through a
// one-sided read of the seed's mirrored table.
func (c *Cluster) recoveredPeer(node common.NodeID) bool {
	if c.members != nil {
		return c.members.Recovered(node)
	}
	return c.view.Recovered(node)
}

// knownNode reports whether id was ever allocated in this cluster: its
// membership slot is occupied, or it falls under the local allocation
// watermark (the only signal a satellite has). Callers must not hold c.mu.
func (c *Cluster) knownNode(id common.NodeID) bool {
	if id < 1 || id > membership.MaxNodes {
		return false
	}
	c.mu.Lock()
	underHW := id < c.nextNode
	c.mu.Unlock()
	if underHW {
		return true
	}
	if c.members != nil {
		return c.members.State(id) != membership.StateFree
	}
	return false
}

// takeNode validates id and removes its live node from the map, returning
// the node (nil with a nil error means "known but already down").
func (c *Cluster) takeNode(id common.NodeID) (*Node, error) {
	if !c.knownNode(id) {
		return nil, fmt.Errorf("core: node %d: %w", id, ErrUnknownNode)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.nodes[id]
	delete(c.nodes, id)
	return n, nil
}

// CrashNode simulates a declared fail-stop crash of node id: its volatile
// state (LBP, TIT, un-synced log tail) is lost; its PLocks remain as a fence
// until recovery (§4.4). Foreign transactions blocked on its row locks are
// woken to retry. Crashing an unknown id returns ErrUnknownNode; crashing an
// already-down node returns ErrNodeDown without side effects (idempotent).
func (c *Cluster) CrashNode(id common.NodeID) error {
	if c.remote {
		return ErrNotHosted
	}
	n, err := c.takeNode(id)
	if err != nil {
		return err
	}
	if n == nil {
		return fmt.Errorf("core: crash node %d: %w", id, common.ErrNodeDown)
	}
	n.crash()
	c.store.LogCrashVolatile(id)
	c.lockSrv.PLock.MarkDead(id)
	c.lockSrv.DropNodeRLock(uint16(id))
	c.bufSrv.DropNode(uint16(id))
	c.removeMinView(id)
	return nil
}

// KillNode is an undeclared fail-stop: the node's volatile state is lost and
// nothing else is told — no lock cleanup, no min-view removal, no fencing.
// With SelfHeal enabled the survivors must notice the silence through the
// lease table, fence the node under a new epoch, and run takeover recovery
// themselves; this is the failure the membership layer exists for.
func (c *Cluster) KillNode(id common.NodeID) error {
	n, err := c.takeNode(id)
	if err != nil {
		return err
	}
	if n == nil {
		return fmt.Errorf("core: kill node %d: %w", id, common.ErrNodeDown)
	}
	n.crash()
	c.store.LogCrashVolatile(id)
	return nil
}

// removeMinView drops a crashed node from the min-view aggregation. The
// removal must land even on a faulty fabric or the global min view stalls
// forever, so it retries transient faults (removal is idempotent).
func (c *Cluster) removeMinView(id common.NodeID) {
	req := make([]byte, 3)
	req[0] = 2 // opRemoveNode
	binary.LittleEndian.PutUint16(req[1:], uint16(id))
	_ = common.Retry(c.cfg.retryPolicy(), func() error {
		_, err := c.fabric.Call(common.PMFSNode, txfusion.ServiceTxF, req)
		return err
	})
}

// RestartNode brings a crashed node back: it replays its own redo log
// (mostly against pages still in the DBP, §5.5), rolls back its pre-crash
// uncommitted transactions, lifts its PLock fence, and rejoins under a fresh
// incarnation epoch. Restarting an id that was never added returns
// ErrUnknownNode; restarting a live node returns an error without side
// effects. If a survivor is mid-takeover of this node's previous
// incarnation, the membership join waits for the takeover to finish.
func (c *Cluster) RestartNode(id common.NodeID) (*Node, error) {
	if c.remote {
		return nil, ErrNotHosted
	}
	if !c.knownNode(id) {
		return nil, fmt.Errorf("core: restart node %d: %w", id, ErrUnknownNode)
	}
	c.mu.Lock()
	if c.nodes[id] != nil {
		c.mu.Unlock()
		return nil, fmt.Errorf("core: node %d is still live", id)
	}
	c.mu.Unlock()
	n, err := c.newNode(id, true)
	if err != nil {
		return nil, err
	}
	if err := n.recoverSelf(); err != nil {
		return nil, fmt.Errorf("core: node %d recovery: %w", id, err)
	}
	c.mu.Lock()
	c.nodes[id] = n
	c.mu.Unlock()
	c.refreshPmfsTracers()
	return n, nil
}

// KillPMFSReplica fail-stops one replica of the replicated shared-memory
// tier: the replica is fenced, the pmfs epoch advances exactly once, and if
// the leader died the most-advanced follower is promoted. In-flight verbs
// caught in the failover window fail with a typed-transient error the
// common.Retry paths absorb. Returns an error when replication is disabled,
// the replica is already fenced, or it is the last live copy.
func (c *Cluster) KillPMFSReplica(id int) error {
	if c.remote {
		return ErrNotHosted
	}
	if c.pmfsRep == nil {
		return errors.New("core: pmfs replication disabled")
	}
	return c.pmfsRep.KillReplica(id)
}

// PmfsReplicator exposes the shared-memory replication tier
// (harness/inspection; nil when replication is disabled).
func (c *Cluster) PmfsReplicator() *pmfsrep.Replicator { return c.pmfsRep }

// CrashAll simulates a full-cluster failure including PMFS: every node's
// volatile state and the disaggregated memory (DBP, TSO, lock tables) are
// lost; only shared storage survives. Use RecoverCluster + AddNode to come
// back.
func (c *Cluster) CrashAll() {
	if c.remote {
		return
	}
	c.mu.Lock()
	nodes := make([]*Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	c.nodes = make(map[common.NodeID]*Node)
	c.nextNode = 1
	c.mu.Unlock()
	for _, n := range nodes {
		n.crash()
		c.store.LogCrashVolatile(n.id)
	}
	// PMFS dies too: rebuild it empty over the same fabric ids.
	c.bufSrv.Reset()
	c.members.Reset()
	for _, n := range nodes {
		c.lockSrv.DropNode(uint16(n.id))
		c.removeMinView(n.id)
	}
	c.txSrv.SetTSO(common.CSNMin)
	if c.pmfsRep != nil {
		// The resets above mutate regions through local writes; re-baseline
		// the follower mirrors so they track the rebuilt leader copy.
		c.pmfsRep.Resync()
	}
}

// FabricStats is a snapshot of RDMA fabric verb and byte counters.
// Vectored (doorbell-batched) verbs count as one op; bytes accumulate every
// segment.
type FabricStats struct {
	Reads      int64 `json:"reads"`
	Writes     int64 `json:"writes"`
	Atomics    int64 `json:"atomics"`
	RPCs       int64 `json:"rpcs"`
	BytesRead  int64 `json:"bytes_read"`
	BytesWrite int64 `json:"bytes_write"`
}

func fabricStats(s *rdma.Stats) FabricStats {
	var f FabricStats
	f.Reads, f.Writes, f.Atomics, f.RPCs, f.BytesRead, f.BytesWrite = s.Snapshot()
	return f
}

// StorageStats is a snapshot of shared-storage I/O counters.
type StorageStats struct {
	PageReads int64 `json:"page_reads"`
	LogSyncs  int64 `json:"log_syncs"`
}

// LockStats is a snapshot of Lock Fusion server counters.
type LockStats struct {
	PLockNegotiations int64 `json:"plock_negotiations"`
	RLockWaits        int64 `json:"rlock_waits"`
	RLockDeadlocks    int64 `json:"rlock_deadlocks"`
}

// OverloadStats is a snapshot of the graceful-degradation counters:
// admission-control sheds on the fusion servers, fail-slow read hedges, and
// transaction latency-budget aborts.
type OverloadStats struct {
	// PLockSheds / BufSheds count requests the fusion servers rejected with
	// the retryable ErrOverloaded (per-stripe admission control).
	PLockSheds int64 `json:"plock_sheds"`
	BufSheds   int64 `json:"buf_sheds"`
	// HedgesFired counts DBP frame reads that outlived the hedge delay;
	// HedgeWins counts those where the fallback answered first.
	HedgesFired int64 `json:"hedges_fired"`
	HedgeWins   int64 `json:"hedge_wins"`
	// DeadlineAborts counts transactions aborted on a spent latency budget.
	DeadlineAborts int64 `json:"deadline_aborts"`
}

// MembershipStats is a snapshot of the lease/online-recovery counters.
type MembershipStats struct {
	Epoch           uint64        `json:"epoch"`            // current cluster epoch
	EpochBumps      int64         `json:"epoch_bumps"`      // evictions won (each bumps the epoch)
	FalseSuspicions int64         `json:"false_suspicions"` // evictions refused by a racing renewal
	LeaseRenewals   int64         `json:"lease_renewals"`   // heartbeat writes by live nodes
	Takeovers       int64         `json:"takeovers"`        // completed surviving-node takeovers
	TakeoverFails   int64         `json:"takeover_fails"`   // takeover attempts abandoned by a recovery error
	TakeoverErr     string        `json:"takeover_err,omitempty"` // last failed-takeover diagnostic
	TakeoverMean    time.Duration `json:"takeover_mean_ns"` // mean takeover duration
	// FailSlowSuspicions counts fail-slow marks raised across all agents: a
	// peer whose heartbeat-gap EWMA grew well past the renewal cadence while
	// its lease stayed valid (gray failure — too slow to trust, too alive to
	// evict). SlowPeers is the union of peers currently under suspicion.
	FailSlowSuspicions int64 `json:"fail_slow_suspicions"`
	SlowPeers          []int `json:"slow_peers,omitempty"`
}

// PmfsStats is a snapshot of the replicated shared-memory tier: replica
// census, the pmfs epoch, quorum-ack latency, and the replication-protocol
// counters. With replication disabled the section reports a single live copy
// and zeros elsewhere.
type PmfsStats struct {
	Replicas int    `json:"replicas"`
	Live     int    `json:"live"`
	Leader   int    `json:"leader"`
	Epoch    uint64 `json:"epoch"`
	// Failovers counts replica fail-stops absorbed (each advances Epoch
	// exactly once).
	Failovers int64 `json:"failovers"`
	// Grants counts replicated atomic post-images (TSO grants, CAS
	// publishes); MirroredWrites/MirroredBytes count replicated one-sided
	// writes.
	Grants         int64 `json:"grants"`
	MirroredWrites int64 `json:"mirrored_writes"`
	MirroredBytes  int64 `json:"mirrored_bytes"`
	// ReadRepairs counts divergent version words healed on quorum reads;
	// DupSuppressed counts duplicate records the seq gate refused to
	// re-apply; DegradedOps counts ops acknowledged below quorum.
	ReadRepairs   int64 `json:"read_repairs"`
	DupSuppressed int64 `json:"dup_suppressed"`
	DegradedOps   int64 `json:"degraded_ops"`
	// Quorum-ack latency (leader op + mirror applies, one doorbell batch).
	QuorumOps  int64         `json:"quorum_ops"`
	QuorumMean time.Duration `json:"quorum_mean_ns"`
	QuorumP50  time.Duration `json:"quorum_p50_ns"`
	QuorumP99  time.Duration `json:"quorum_p99_ns"`
}

// NodeStats is one node's slice of the cluster snapshot: engine counters,
// transaction latency quantiles, the fabric ops this node issued, and (with
// tracing on) its per-stage breakdown.
type NodeStats struct {
	Node      int   `json:"node"`
	Commits   int64 `json:"commits"`
	Aborts    int64 `json:"aborts"`
	Deadlocks int64 `json:"deadlocks"`
	// Conflicts counts OCC validation aborts (zero under 2PL).
	Conflicts int64 `json:"conflicts,omitempty"`
	// DeferredAborts counts rollbacks finished in the background because a
	// page was unreachable (partition, peer crash fence) at abort time.
	DeferredAborts int64 `json:"deferred_aborts,omitempty"`
	// DeadlineAborts counts this node's latency-budget aborts; HedgesFired/
	// HedgeWins its fail-slow DBP read hedges.
	DeadlineAborts int64         `json:"deadline_aborts"`
	HedgesFired    int64         `json:"hedges_fired"`
	HedgeWins      int64         `json:"hedge_wins"`
	TxP50          time.Duration `json:"tx_p50_ns"`
	TxP99          time.Duration `json:"tx_p99_ns"`
	// Fabric counts ops issued BY this node (per-source attribution).
	Fabric FabricStats           `json:"fabric"`
	Stages []trace.StageSnapshot `json:"stages,omitempty"`
}

// NetStats is the network-layer section of the stats JSON: frame and
// connection counters for every socket this process speaks the wire
// protocol on (fabric peer links and client sessions combined).
type NetStats struct {
	ConnsOpen     int64 `json:"conns_open"`
	ConnsAccepted int64 `json:"conns_accepted"`
	ConnsDialed   int64 `json:"conns_dialed"`
	FramesIn      int64 `json:"frames_in"`
	FramesOut     int64 `json:"frames_out"`
	BytesIn       int64 `json:"bytes_in"`
	BytesOut      int64 `json:"bytes_out"`
	CodecErrors   int64 `json:"codec_errors"`
	// PipelineDepth is the high watermark of concurrently in-flight
	// requests — the observable showing pipelining actually happens.
	PipelineDepth int64 `json:"pipeline_depth"`
}

// SetNetStats installs the provider of the NetStats stats section (nil
// removes it). The daemons wire this to their wire.NetCounters; in-process
// clusters have no network layer and leave it unset.
func (c *Cluster) SetNetStats(fn func() NetStats) { c.netStats = fn }

// ClusterStats is the unified observability surface: cluster totals, the
// per-node decomposition, and — when tracing is enabled — merged
// cluster-wide per-stage histograms and the slow-transaction log.
// CommitPipeStats is the commit-path section of the stats JSON: which CC
// engine ran, how much work the pipelined group commit absorbed, and how
// often the speculative CTS / adaptive TSO fast paths fired (DESIGN.md §14).
type CommitPipeStats struct {
	Engine string `json:"engine"`
	// PipelineRounds counts syncer log-sync rounds; PipelineRides counts
	// commits whose durability wait was absorbed by an in-flight round
	// instead of running a sync of their own.
	PipelineRounds int64 `json:"pipeline_rounds"`
	PipelineRides  int64 `json:"pipeline_rides"`
	// SpecCTSHits of SpecCTSReads remote CTS lookups were answered from
	// the owner's published recycle floor without touching the TIT slot.
	SpecCTSReads int64 `json:"spec_cts_reads"`
	SpecCTSHits  int64 `json:"spec_cts_hits"`
	// TSOSolo/TSOGroup split CTS grants between the adaptive solo
	// fetch-add path and flat-combined group rounds.
	TSOSolo  int64 `json:"tso_solo"`
	TSOGroup int64 `json:"tso_group"`
	// OCCConflicts counts validation aborts (zero under 2PL).
	OCCConflicts int64 `json:"occ_conflicts"`
}

type ClusterStats struct {
	Commits   int64 `json:"commits"`
	Aborts    int64 `json:"aborts"`
	Deadlocks int64 `json:"deadlocks"`

	Commit CommitPipeStats `json:"commit"`

	Fabric      FabricStats     `json:"fabric"`
	Storage     StorageStats    `json:"storage"`
	DBPResident int             `json:"dbp_resident_pages"`
	Locks       LockStats       `json:"locks"`
	Membership  MembershipStats `json:"membership"`
	Overload    OverloadStats   `json:"overload"`
	Pmfs        PmfsStats       `json:"pmfs"`
	// Net is present only in processes that speak the socket transport or
	// serve client sessions (mpserver, mpgateway).
	Net *NetStats `json:"net,omitempty"`

	Nodes []NodeStats `json:"nodes,omitempty"`

	// Stages merges every node's per-stage aggregates (histogram merge is
	// associative, so the fold order does not matter). Empty when tracing
	// is off.
	Stages []trace.StageSnapshot `json:"stages,omitempty"`
	// SlowTxs collects every node's slow-transaction log, newest first per
	// node. Empty unless a slow-transaction threshold is configured.
	SlowTxs []trace.TxSummary `json:"slow_txs,omitempty"`
}

// Stats aggregates engine counters across nodes and PMFS.
func (c *Cluster) Stats() ClusterStats {
	var s ClusterStats
	var merged trace.StagesDump
	traced := false
	for _, n := range c.Nodes() {
		ns := NodeStats{
			Node:           int(n.id),
			Commits:        n.Commits.Load(),
			Aborts:         n.Aborts.Load(),
			Deadlocks:      n.Deadlocks.Load(),
			Conflicts:      n.Conflicts.Load(),
			DeferredAborts: n.DeferredAborts.Load(),
			DeadlineAborts: n.DeadlineAborts.Load(),
			HedgesFired:    n.lbp.HedgesFired.Load(),
			HedgeWins:      n.lbp.HedgeWins.Load(),
			TxP50:          n.TxLatency.Quantile(0.50),
			TxP99:          n.TxLatency.Quantile(0.99),
			Fabric:         fabricStats(c.fabric.SrcStats(n.id)),
		}
		if n.tracer != nil {
			traced = true
			d := n.tracer.Dump()
			ns.Stages = d.Snapshots()
			merged.Merge(d)
			s.SlowTxs = append(s.SlowTxs, n.tracer.Slow()...)
		}
		s.Commits += ns.Commits
		s.Aborts += ns.Aborts
		s.Deadlocks += ns.Deadlocks
		s.Commit.OCCConflicts += ns.Conflicts
		s.Commit.TSOSolo += n.TSOSolo.Load()
		s.Commit.TSOGroup += n.TSOGroup.Load()
		s.Commit.PipelineRides += n.wal.Rides()
		specHits, specReads := n.tf.SpecCTSStats()
		s.Commit.SpecCTSHits += specHits
		s.Commit.SpecCTSReads += specReads
		s.Overload.DeadlineAborts += ns.DeadlineAborts
		s.Overload.HedgesFired += ns.HedgesFired
		s.Overload.HedgeWins += ns.HedgeWins
		s.Membership.LeaseRenewals += n.agent.Renewals.Load()
		s.Membership.FailSlowSuspicions += n.agent.FailSlowSuspicions.Load()
		for _, p := range n.agent.SlowPeers() {
			if !slices.Contains(s.Membership.SlowPeers, int(p)) {
				s.Membership.SlowPeers = append(s.Membership.SlowPeers, int(p))
			}
		}
		s.Nodes = append(s.Nodes, ns)
	}
	slices.Sort(s.Membership.SlowPeers)
	s.Commit.Engine = c.cc.Name()
	s.Commit.PipelineRounds = c.pipeRounds.Load()
	if traced {
		s.Stages = merged.Snapshots()
	}
	s.Fabric = fabricStats(c.fabric.Stats())
	s.Storage.PageReads = c.store.Stats().PageReads.Load()
	s.Storage.LogSyncs = c.store.Stats().LogSyncs.Load()
	// A satellite hosts no PMFS: the fusion-server and membership-table
	// sections belong to the seed process's snapshot.
	if c.bufSrv != nil {
		s.DBPResident = c.bufSrv.Len()
		s.Overload.BufSheds = c.bufSrv.Sheds.Load()
	}
	if c.lockSrv != nil {
		s.Locks.PLockNegotiations = c.lockSrv.PLock.Negotiations.Load()
		s.Locks.RLockWaits = c.lockSrv.RLock.Waits.Load()
		s.Locks.RLockDeadlocks = c.lockSrv.RLock.Deadlocks.Load()
		s.Overload.PLockSheds = c.lockSrv.PLock.Sheds.Load()
	}
	if c.members != nil {
		s.Membership.Epoch = uint64(c.members.CurrentEpoch())
		s.Membership.EpochBumps = c.members.EpochBumps.Load()
		s.Membership.FalseSuspicions = c.members.FalseSuspicions.Load()
	}
	if c.pmfsRep != nil {
		ps := c.pmfsRep.Snapshot()
		s.Pmfs = PmfsStats{
			Replicas:       ps.Replicas,
			Live:           ps.Live,
			Leader:         ps.Leader,
			Epoch:          ps.Epoch,
			Failovers:      ps.Failovers,
			Grants:         ps.Grants,
			MirroredWrites: ps.MirroredWrites,
			MirroredBytes:  ps.MirroredBytes,
			ReadRepairs:    ps.ReadRepairs,
			DupSuppressed:  ps.DupSuppressed,
			DegradedOps:    ps.DegradedOps,
			QuorumOps:      ps.QuorumOps,
			QuorumMean:     ps.QuorumMean,
			QuorumP50:      ps.QuorumP50,
			QuorumP99:      ps.QuorumP99,
		}
	} else if !c.remote {
		s.Pmfs = PmfsStats{Replicas: 1, Live: 1}
	}
	s.Membership.Takeovers = c.takeovers.Load()
	s.Membership.TakeoverFails = c.takeoverFails.Load()
	c.takeoverErrMu.Lock()
	s.Membership.TakeoverErr = c.takeoverErr
	c.takeoverErrMu.Unlock()
	s.Membership.TakeoverMean = c.takeoverDur.Mean()
	if c.netStats != nil {
		ns := c.netStats()
		s.Net = &ns
	}
	return s
}

// Checkpoint flushes every LBP and the DBP to shared storage and truncates
// all redo streams. The cluster must be quiesced (no active transactions):
// truncation would otherwise discard undo information of in-flight work.
func (c *Cluster) Checkpoint() error {
	if c.remote {
		return fmt.Errorf("core: checkpoint: %w", ErrNotHosted)
	}
	for _, n := range c.Nodes() {
		if a := n.activeTx.Load(); a != 0 {
			return fmt.Errorf("core: checkpoint with %d active transactions on node %d", a, n.id)
		}
	}
	for _, n := range c.Nodes() {
		if err := n.lbp.FlushAll(); err != nil {
			return err
		}
	}
	if err := c.bufSrv.FlushAll(); err != nil {
		return err
	}
	for _, n := range c.Nodes() {
		n.wal.Sync(n.wal.End())
		c.store.LogTruncate(n.id, n.wal.Durable())
	}
	return nil
}

// Close shuts down all nodes (flushing buffers) without simulating a crash.
// A satellite flushes its LBPs through the uplink, then drops the peer
// connections.
func (c *Cluster) Close() {
	c.stopLogPipeline()
	for _, n := range c.Nodes() {
		n.agent.Stop()
		n.stopBackground()
		_ = n.lbp.FlushAll()
	}
	if c.bufSrv != nil {
		_ = c.bufSrv.FlushAll()
	}
	if c.peer != nil {
		_ = c.peer.Close()
	}
}

// --- space directory --------------------------------------------------------

const spaceDirKey = "spacedir"

type spaceInfo struct {
	Name   string
	Space  common.SpaceID
	Anchor common.PageID
}

func decodeSpaceDir(b []byte) []spaceInfo {
	var out []spaceInfo
	for len(b) >= 4 {
		nameLen := int(binary.LittleEndian.Uint32(b))
		b = b[4:]
		if len(b) < nameLen+12 {
			break
		}
		si := spaceInfo{
			Name:   string(b[:nameLen]),
			Space:  common.SpaceID(binary.LittleEndian.Uint32(b[nameLen:])),
			Anchor: common.PageID(binary.LittleEndian.Uint64(b[nameLen+4:])),
		}
		b = b[nameLen+12:]
		out = append(out, si)
	}
	return out
}

func encodeSpaceDir(dir []spaceInfo) []byte {
	var b []byte
	for _, si := range dir {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(si.Name)))
		b = append(b, si.Name...)
		b = binary.LittleEndian.AppendUint32(b, uint32(si.Space))
		b = binary.LittleEndian.AppendUint64(b, uint64(si.Anchor))
	}
	return b
}

// lookupSpace returns the directory entry for name, if present.
func (c *Cluster) lookupSpace(name string) (spaceInfo, bool) {
	for _, si := range decodeSpaceDir(c.store.GetMeta(spaceDirKey)) {
		if si.Name == name {
			return si, true
		}
	}
	return spaceInfo{}, false
}

// lookupSpaceByID returns the directory entry for a space id.
func (c *Cluster) lookupSpaceByID(id common.SpaceID) (spaceInfo, bool) {
	for _, si := range decodeSpaceDir(c.store.GetMeta(spaceDirKey)) {
		if si.Space == id {
			return si, true
		}
	}
	return spaceInfo{}, false
}

// CreateSpace creates a named tablespace (one B-tree) through any live node
// and returns its id. Creating an existing name returns its id.
func (c *Cluster) CreateSpace(name string) (common.SpaceID, error) {
	if c.remote {
		// The seed serializes directory read-modify-write under ITS spaceMu;
		// a satellite mutating the directory locally would race it.
		return c.createSpaceRemote(name)
	}
	c.spaceMu.Lock()
	defer c.spaceMu.Unlock()
	if si, ok := c.lookupSpace(name); ok {
		return si.Space, nil
	}
	nodes := c.Nodes()
	if len(nodes) == 0 {
		return 0, fmt.Errorf("core: create space %q: no live nodes", name)
	}
	n := nodes[0]
	dir := decodeSpaceDir(c.store.GetMeta(spaceDirKey))
	id := common.SpaceID(len(dir) + 1)
	anchor, err := n.createTree(id)
	if err != nil {
		return 0, err
	}
	// The tree pages must be durable before the directory names them.
	n.wal.Sync(n.wal.End())
	dir = append(dir, spaceInfo{Name: name, Space: id, Anchor: anchor})
	c.store.PutMeta(spaceDirKey, encodeSpaceDir(dir))
	return id, nil
}

// SpaceID resolves a space name.
func (c *Cluster) SpaceID(name string) (common.SpaceID, error) {
	if si, ok := c.lookupSpace(name); ok {
		return si.Space, nil
	}
	return 0, fmt.Errorf("core: space %q: %w", name, common.ErrNotFound)
}

// storeMetaTrxHW persists a node's transaction-id watermark.
func (c *Cluster) storeMetaTrxHW(id common.NodeID, hw common.TrxID) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(hw))
	c.store.PutMeta(fmt.Sprintf("trxhw/%d", id), b[:])
}

func (c *Cluster) loadMetaTrxHW(id common.NodeID) common.TrxID {
	b := c.store.GetMeta(fmt.Sprintf("trxhw/%d", id))
	if len(b) < 8 {
		return 0
	}
	return common.TrxID(binary.LittleEndian.Uint64(b))
}
