package core

import (
	"polardbmp/internal/btree"
	"polardbmp/internal/bufferfusion"
	"polardbmp/internal/common"
	"polardbmp/internal/lockfusion"
	"polardbmp/internal/page"
	"polardbmp/internal/trace"
)

// tracePager is the pager a traced transaction walks B-trees through: the
// same stack as pager (PLock → LBP fetch → latch → LLSN fold) but with the
// expensive events — remote PLock fetches, DBP page transfers, storage
// fills — recorded as spans on the transaction's timeline. Fast local
// grants and LBP hits are deliberately NOT recorded as spans (they would
// flood the bounded span list during scans); they still land in the node's
// stage aggregates via the subsystem hooks. btree.Tree is stateless, so a
// traced transaction builds private trees over this pager without touching
// the node's shared ones. Deadline-bounded transactions also walk through
// it (tt may then be nil — every TxTrace method is nil-receiver safe): the
// budget rides into the PLock acquire (bounding the server-side queue wait)
// and the page fetch (bounding verbs, retries, and storage reads).
type tracePager struct {
	n  *Node
	tt *trace.TxTrace
	dl common.Deadline
}

// Acquire implements btree.Pager.
func (p *tracePager) Acquire(pg common.PageID, mode lockfusion.Mode) (*btree.Ref, error) {
	n := p.n
	tok := p.tt.Start()
	remote, err := n.pl.AcquireDeadlineEx(pg, mode, p.dl)
	if err != nil {
		return nil, err
	}
	if remote {
		p.tt.Mark(trace.StagePLockRemote, tok)
	}
	tok = p.tt.Start()
	f, kind, err := n.lbp.GetDeadlineEx(pg, p.dl)
	if err != nil {
		n.pl.Release(pg)
		return nil, err
	}
	switch kind {
	case bufferfusion.FetchDBP:
		p.tt.Mark(trace.StageFrameDBP, tok)
	case bufferfusion.FetchStorage:
		p.tt.Mark(trace.StageFrameStorage, tok)
	}
	if mode == lockfusion.ModeX {
		f.Mu.Lock()
	} else {
		f.Mu.RLock()
	}
	n.llsn.Observe(f.Pg.LLSN)
	return &btree.Ref{Page: f.Pg, Mode: mode, Opaque: f}, nil
}

// Release implements btree.Pager.
func (p *tracePager) Release(ref *btree.Ref) { (*pager)(p.n).Release(ref) }

// AllocPage implements btree.Pager.
func (p *tracePager) AllocPage(space common.SpaceID, t page.Type, level uint8) (*btree.Ref, error) {
	return (*pager)(p.n).AllocPage(space, t, level)
}

// LogImage implements btree.Pager.
func (p *tracePager) LogImage(ref *btree.Ref) { (*pager)(p.n).LogImage(ref) }
