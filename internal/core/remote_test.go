package core

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"polardbmp/internal/common"
	"polardbmp/internal/rdma"
	"polardbmp/internal/wire"
)

// multiProcess stands up a seed cluster serving its fabric on a real TCP
// socket plus nSat satellite processes joined through it — the in-test
// equivalent of one mpserver -fabric seed and nSat mpserver -join daemons.
func multiProcess(t *testing.T, cfg Config, nSat int) (seed *Cluster, sats []*Cluster) {
	t.Helper()
	seed = NewCluster(cfg)
	if _, err := seed.AddNode(); err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := rdma.ServeFabric(seed.Fabric(), lis, "seed", &wire.NetCounters{})
	for i := 0; i < nSat; i++ {
		sat, _, err := JoinRemote(cfg, lis.Addr().String(), &wire.NetCounters{})
		if err != nil {
			t.Fatalf("join satellite %d: %v", i, err)
		}
		sats = append(sats, sat)
	}
	t.Cleanup(func() {
		for _, s := range sats {
			s.Close()
		}
		seed.Close()
		srv.Close()
	})
	return seed, sats
}

func TestJoinRemoteCrossProcessTransactions(t *testing.T) {
	seed, sats := multiProcess(t, Config{RecycleInterval: -1}, 2)
	sat1, sat2 := sats[0], sats[1]

	// Tablespace creation from a satellite serializes at the seed, and the
	// name resolves identically in every process.
	space, err := sat1.CreateSpace("accounts")
	if err != nil {
		t.Fatal(err)
	}
	if sp2, err := sat2.CreateSpace("accounts"); err != nil || sp2 != space {
		t.Fatalf("satellite 2 sees space %d (%v), want %d", sp2, err, space)
	}
	if sp0, err := seed.SpaceID("accounts"); err != nil || sp0 != space {
		t.Fatalf("seed sees space %d (%v), want %d", sp0, err, space)
	}

	// Every process writes through its own node; every process reads every
	// write. This exercises the whole fusion stack over the socket: TSO and
	// TIT traffic, PLock negotiation between processes, DBP frame transfer,
	// remote WAL append/sync.
	writers := []struct {
		name string
		c    *Cluster
	}{{"seed", seed}, {"sat1", sat1}, {"sat2", sat2}}
	for i, w := range writers {
		n := w.c.Nodes()[0]
		tx, err := n.Begin()
		if err != nil {
			t.Fatalf("%s begin: %v", w.name, err)
		}
		if err := tx.Insert(space, []byte(fmt.Sprintf("k%d", i)), []byte(w.name)); err != nil {
			t.Fatalf("%s insert: %v", w.name, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("%s commit: %v", w.name, err)
		}
	}
	for _, rproc := range writers {
		n := rproc.c.Nodes()[0]
		tx, err := n.Begin()
		if err != nil {
			t.Fatal(err)
		}
		for i, w := range writers {
			v, err := tx.Get(space, []byte(fmt.Sprintf("k%d", i)))
			if err != nil || string(v) != w.name {
				t.Fatalf("%s reading k%d: %q %v (want %q)", rproc.name, i, v, err, w.name)
			}
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	// Write conflicts across processes resolve through Lock Fusion, not by
	// both committing.
	tx1, _ := sat1.Nodes()[0].Begin()
	if err := tx1.Upsert(space, []byte("hot"), []byte("from-sat1")); err != nil {
		t.Fatal(err)
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2, _ := sat2.Nodes()[0].Begin()
	v, err := tx2.GetForUpdate(space, []byte("hot"))
	if err != nil || string(v) != "from-sat1" {
		t.Fatalf("sat2 locked read: %q %v", v, err)
	}
	if err := tx2.Update(space, []byte("hot"), []byte("from-sat2")); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	txv, _ := seed.Nodes()[0].Begin()
	if v, err := txv.Get(space, []byte("hot")); err != nil || string(v) != "from-sat2" {
		t.Fatalf("seed sees %q %v", v, err)
	}
	_ = txv.Rollback()

	// The satellites' redo went through the shared store: the seed's view of
	// their streams is non-empty and durable.
	for _, sat := range sats {
		id := sat.Nodes()[0].ID()
		if end := seed.Store().LogEndLSN(id); end == 0 {
			t.Fatalf("satellite node %d has an empty redo stream at the seed", id)
		}
		if d := seed.Store().LogDurableLSN(id); d == 0 {
			t.Fatalf("satellite node %d never synced", id)
		}
	}
}

func TestJoinRemoteSeedOnlyOperations(t *testing.T) {
	_, sats := multiProcess(t, Config{RecycleInterval: -1}, 1)
	sat := sats[0]
	id := sat.Nodes()[0].ID()
	if err := sat.CrashNode(id); !errors.Is(err, ErrNotHosted) {
		t.Fatalf("CrashNode on satellite: %v", err)
	}
	if _, err := sat.RestartNode(id); !errors.Is(err, ErrNotHosted) {
		t.Fatalf("RestartNode on satellite: %v", err)
	}
	if err := sat.Checkpoint(); !errors.Is(err, ErrNotHosted) {
		t.Fatalf("Checkpoint on satellite: %v", err)
	}
	// Stats must not panic without the PMFS sections, and the satellite's
	// node must be visible in its own snapshot.
	s := sat.Stats()
	if len(s.Nodes) != 1 || s.Nodes[0].Node != int(id) {
		t.Fatalf("satellite stats nodes: %+v", s.Nodes)
	}
}

func TestJoinRemoteNodeIDsAreClusterUnique(t *testing.T) {
	seed, sats := multiProcess(t, Config{RecycleInterval: -1}, 2)
	seen := map[common.NodeID]bool{seed.Nodes()[0].ID(): true}
	for _, sat := range sats {
		id := sat.Nodes()[0].ID()
		if seen[id] {
			t.Fatalf("node id %d allocated twice", id)
		}
		seen[id] = true
	}
	// A node added at the seed after the joins continues the same sequence.
	n, err := seed.AddNode()
	if err != nil {
		t.Fatal(err)
	}
	if seen[n.ID()] {
		t.Fatalf("seed AddNode reused id %d", n.ID())
	}
}

func TestJoinRemoteSurvivesSeedSideCommitLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	seed, sats := multiProcess(t, Config{}, 1)
	sat := sats[0]
	space, err := seed.CreateSpace("load")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 2)
	work := func(c *Cluster, who string) {
		n := c.Nodes()[0]
		for i := 0; i < 40; i++ {
			tx, err := n.Begin()
			if err != nil {
				done <- fmt.Errorf("%s begin: %w", who, err)
				return
			}
			key := []byte(fmt.Sprintf("%s/%03d", who, i))
			if err := tx.Upsert(space, key, []byte(time.Now().Format(time.RFC3339Nano))); err != nil {
				_ = tx.Rollback()
				done <- fmt.Errorf("%s upsert: %w", who, err)
				return
			}
			if err := tx.Commit(); err != nil {
				done <- fmt.Errorf("%s commit: %w", who, err)
				return
			}
		}
		done <- nil
	}
	go work(seed, "seed")
	go work(sat, "sat")
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// Both processes see all 80 rows.
	for _, c := range []*Cluster{seed, sat} {
		tx, _ := c.Nodes()[0].Begin()
		kvs, err := tx.Scan(space, nil, nil, 0)
		if err != nil || len(kvs) != 80 {
			t.Fatalf("scan: %v, %d rows", err, len(kvs))
		}
		_ = tx.Commit()
	}
}

// TestRemoteElasticity drains a satellite-hosted node through the seed's
// admin service, checks both processes' topology views agree, and rejoins —
// reusing the drained slot across the process boundary.
func TestRemoteElasticity(t *testing.T) {
	seed, sats := multiProcess(t, Config{RecycleInterval: -1}, 1)
	sat := sats[0]
	satID := sat.Nodes()[0].ID()

	space, err := sat.CreateSpace("t")
	if err != nil {
		t.Fatal(err)
	}
	satPut := func(n *Node, key string) {
		t.Helper()
		tx, err := n.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Upsert(space, []byte(key), []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	satPut(sat.Nodes()[0], "from-sat")

	// Both processes see the same membership rows; Hosted is per-process.
	satTop, err := sat.Topology()
	if err != nil {
		t.Fatal(err)
	}
	seedTop, err := seed.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if satTop.Epoch != seedTop.Epoch || len(satTop.Nodes) != len(seedTop.Nodes) {
		t.Fatalf("topology mismatch: sat %+v vs seed %+v", satTop, seedTop)
	}
	for _, ni := range satTop.Nodes {
		wantHosted := common.NodeID(ni.ID) == satID
		if ni.Hosted != wantHosted {
			t.Fatalf("sat view of node %d: hosted=%v, want %v", ni.ID, ni.Hosted, wantHosted)
		}
	}

	// A satellite can only drain its own nodes.
	if err := sat.DrainNode(seed.Nodes()[0].ID()); !errors.Is(err, ErrNotHosted) {
		t.Fatalf("satellite draining seed node: %v, want ErrNotHosted", err)
	}
	// Drain the satellite's node from inside the satellite: membership
	// transitions, min-view removal, and server-side cleanup all ride RPCs.
	if err := sat.DrainNode(satID); err != nil {
		t.Fatalf("satellite drain: %v", err)
	}
	seedTop2, err := seed.Topology()
	if err != nil {
		t.Fatal(err)
	}
	for _, ni := range seedTop2.Nodes {
		if common.NodeID(ni.ID) == satID && ni.State != NodeDrained {
			t.Fatalf("seed sees drained node as %s", ni.State)
		}
	}
	if v, err := get(t, seed.Nodes()[0], space, "from-sat"); err != nil || v != "v" {
		t.Fatalf("seed read after satellite drain: %q, %v", v, err)
	}

	// Rejoin from the satellite process reuses the drained slot.
	n2, err := sat.AddNode()
	if err != nil {
		t.Fatal(err)
	}
	if n2.ID() != satID {
		t.Fatalf("rejoin allocated node %d, want reused slot %d", n2.ID(), satID)
	}
	satPut(n2, "after-rejoin")
	if v, err := get(t, seed.Nodes()[0], space, "after-rejoin"); err != nil || v != "v" {
		t.Fatalf("seed read after rejoin: %q, %v", v, err)
	}
}
