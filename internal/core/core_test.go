package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"polardbmp/internal/common"
)

// testCluster builds an n-node cluster with a table named "t".
func testCluster(t testing.TB, n int) (*Cluster, common.SpaceID) {
	t.Helper()
	c := NewCluster(Config{
		LockWaitTimeout: 2 * time.Second,
		RecycleInterval: 5 * time.Millisecond,
	})
	for i := 0; i < n; i++ {
		if _, err := c.AddNode(); err != nil {
			t.Fatal(err)
		}
	}
	sp, err := c.CreateSpace("t")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, sp
}

func mustCommit(t testing.TB, tx *Tx) {
	t.Helper()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func put(t testing.TB, n *Node, sp common.SpaceID, key, val string) {
	t.Helper()
	tx, err := n.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Upsert(sp, []byte(key), []byte(val)); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
}

func get(t testing.TB, n *Node, sp common.SpaceID, key string) (string, error) {
	t.Helper()
	tx, err := n.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Commit()
	v, err := tx.Get(sp, []byte(key))
	return string(v), err
}

func TestSingleNodeCRUD(t *testing.T) {
	c, sp := testCluster(t, 1)
	n := c.Node(1)

	tx, err := n.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(sp, []byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	// Own write visible before commit.
	if v, err := tx.Get(sp, []byte("a")); err != nil || string(v) != "1" {
		t.Fatalf("own read: %q %v", v, err)
	}
	mustCommit(t, tx)

	if v, err := get(t, n, sp, "a"); err != nil || v != "1" {
		t.Fatalf("get a = %q, %v", v, err)
	}

	// Update.
	tx, _ = n.Begin()
	if err := tx.Update(sp, []byte("a"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	if v, _ := get(t, n, sp, "a"); v != "2" {
		t.Fatalf("after update: %q", v)
	}

	// Duplicate insert.
	tx, _ = n.Begin()
	if err := tx.Insert(sp, []byte("a"), []byte("x")); !errors.Is(err, common.ErrKeyExists) {
		t.Fatalf("dup insert err = %v", err)
	}
	tx.Rollback()

	// Delete.
	tx, _ = n.Begin()
	if err := tx.Delete(sp, []byte("a")); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	if _, err := get(t, n, sp, "a"); !errors.Is(err, common.ErrNotFound) {
		t.Fatalf("after delete err = %v", err)
	}

	// Update of missing key.
	tx, _ = n.Begin()
	if err := tx.Update(sp, []byte("zz"), []byte("x")); !errors.Is(err, common.ErrNotFound) {
		t.Fatalf("update missing err = %v", err)
	}
	tx.Rollback()
}

func TestRollbackUndoesWrites(t *testing.T) {
	c, sp := testCluster(t, 1)
	n := c.Node(1)
	put(t, n, sp, "k", "v0")

	tx, _ := n.Begin()
	if err := tx.Update(sp, []byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(sp, []byte("new"), []byte("n1")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if v, _ := get(t, n, sp, "k"); v != "v0" {
		t.Fatalf("k after rollback = %q", v)
	}
	if _, err := get(t, n, sp, "new"); !errors.Is(err, common.ErrNotFound) {
		t.Fatalf("new after rollback: %v", err)
	}
	// Tx is finished.
	if err := tx.Commit(); !errors.Is(err, common.ErrTxDone) {
		t.Fatalf("commit after rollback: %v", err)
	}
}

func TestCrossNodeVisibility(t *testing.T) {
	c, sp := testCluster(t, 2)
	put(t, c.Node(1), sp, "x", "from-node-1")
	if v, err := get(t, c.Node(2), sp, "x"); err != nil || v != "from-node-1" {
		t.Fatalf("node 2 read: %q %v", v, err)
	}
	// And back.
	put(t, c.Node(2), sp, "x", "from-node-2")
	if v, _ := get(t, c.Node(1), sp, "x"); v != "from-node-2" {
		t.Fatalf("node 1 read after peer update: %q", v)
	}
}

func TestUncommittedInvisibleAcrossNodes(t *testing.T) {
	c, sp := testCluster(t, 2)
	put(t, c.Node(1), sp, "k", "committed")

	tx1, _ := c.Node(1).Begin()
	if err := tx1.Update(sp, []byte("k"), []byte("dirty")); err != nil {
		t.Fatal(err)
	}
	// Node 2 must see the old committed version (snapshot via undo chain).
	if v, err := get(t, c.Node(2), sp, "k"); err != nil || v != "committed" {
		t.Fatalf("node 2 sees %q, %v", v, err)
	}
	mustCommit(t, tx1)
	if v, _ := get(t, c.Node(2), sp, "k"); v != "dirty" {
		t.Fatalf("node 2 after commit sees %q", v)
	}
}

func TestSnapshotIsolationFixedView(t *testing.T) {
	c, sp := testCluster(t, 2)
	put(t, c.Node(1), sp, "k", "v0")

	si, err := c.Node(2).BeginIso(SnapshotIsolation)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := si.Get(sp, []byte("k")); string(v) != "v0" {
		t.Fatalf("si first read %q", v)
	}
	put(t, c.Node(1), sp, "k", "v1")
	// SI keeps the old view; RC sees the new value.
	if v, _ := si.Get(sp, []byte("k")); string(v) != "v0" {
		t.Fatalf("si second read %q, want v0", v)
	}
	mustCommit(t, si)
	if v, _ := get(t, c.Node(2), sp, "k"); v != "v1" {
		t.Fatalf("rc read %q, want v1", v)
	}
}

func TestWriteConflictAcrossNodesWaits(t *testing.T) {
	c, sp := testCluster(t, 2)
	put(t, c.Node(1), sp, "k", "v0")

	tx1, _ := c.Node(1).Begin()
	if err := tx1.Update(sp, []byte("k"), []byte("a")); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		tx2, err := c.Node(2).Begin()
		if err != nil {
			done <- err
			return
		}
		if err := tx2.Update(sp, []byte("k"), []byte("b")); err != nil {
			done <- err
			return
		}
		done <- tx2.Commit()
	}()
	// tx2 must block on the row lock.
	select {
	case err := <-done:
		t.Fatalf("tx2 finished while tx1 held the row lock: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
	mustCommit(t, tx1)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("tx2 never unblocked")
	}
	if v, _ := get(t, c.Node(1), sp, "k"); v != "b" {
		t.Fatalf("final value %q, want b (tx2 last)", v)
	}
}

func TestDeadlockAcrossNodes(t *testing.T) {
	c, sp := testCluster(t, 2)
	put(t, c.Node(1), sp, "r1", "v")
	put(t, c.Node(1), sp, "r2", "v")

	tx1, _ := c.Node(1).Begin()
	tx2, _ := c.Node(2).Begin()
	if err := tx1.Update(sp, []byte("r1"), []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Update(sp, []byte("r2"), []byte("b")); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() { errs <- tx1.Update(sp, []byte("r2"), []byte("a2")) }()
	time.Sleep(50 * time.Millisecond)
	go func() { errs <- tx2.Update(sp, []byte("r1"), []byte("b2")) }()

	// Exactly one must get a deadlock error; resolve by rolling it back.
	var deadlocked, ok int
	for i := 0; i < 2; i++ {
		err := <-errs
		switch {
		case errors.Is(err, common.ErrDeadlock):
			deadlocked++
			// victim rolls back, releasing its locks
			if deadlocked == 1 && ok == 0 {
				// roll back whichever transaction was the victim
			}
		case err == nil:
			ok++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
		if deadlocked == 1 && i == 0 {
			// Roll back the victim so the survivor can proceed.
			// We don't know which tx it was; try both safely below.
			tx1.Rollback()
			tx2.Rollback()
		}
	}
	if deadlocked != 1 || ok != 1 {
		t.Fatalf("deadlocked=%d ok=%d, want exactly one of each", deadlocked, ok)
	}
}

func TestScan(t *testing.T) {
	c, sp := testCluster(t, 2)
	n := c.Node(1)
	for i := 0; i < 50; i++ {
		put(t, n, sp, fmt.Sprintf("k%03d", i), fmt.Sprintf("v%d", i))
	}
	tx, _ := c.Node(2).Begin()
	defer tx.Commit()
	kvs, err := tx.Scan(sp, []byte("k010"), []byte("k020"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 10 {
		t.Fatalf("scan returned %d rows, want 10", len(kvs))
	}
	if string(kvs[0].Key) != "k010" || string(kvs[9].Key) != "k019" {
		t.Fatalf("range wrong: %q..%q", kvs[0].Key, kvs[9].Key)
	}
	// Limit.
	kvs, _ = tx.Scan(sp, nil, nil, 7)
	if len(kvs) != 7 {
		t.Fatalf("limited scan = %d rows", len(kvs))
	}
}

func TestBTreeSplitsManyKeys(t *testing.T) {
	c, sp := testCluster(t, 1)
	n := c.Node(1)
	const rows = 2000
	for i := 0; i < rows; i++ {
		tx, err := n.Begin()
		if err != nil {
			t.Fatal(err)
		}
		key := fmt.Sprintf("key-%06d", i*7919%rows) // scattered order
		if err := tx.Upsert(sp, []byte(key), make([]byte, 100)); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		mustCommit(t, tx)
	}
	tree, err := n.tree(sp)
	if err != nil {
		t.Fatal(err)
	}
	h, err := tree.Height()
	if err != nil {
		t.Fatal(err)
	}
	if h < 1 {
		t.Fatalf("tree height %d after %d rows; no splits happened?", h, rows)
	}
	// Every key readable.
	tx, _ := n.Begin()
	defer tx.Commit()
	kvs, err := tx.Scan(sp, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != rows {
		t.Fatalf("scan found %d rows, want %d", len(kvs), rows)
	}
}

func TestConcurrentMultiNodeWritesDisjoint(t *testing.T) {
	c, sp := testCluster(t, 4)
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for i, n := range c.Nodes() {
		wg.Add(1)
		go func(n *Node, base int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tx, err := n.Begin()
				if err != nil {
					errCh <- err
					return
				}
				key := fmt.Sprintf("n%d-k%04d", base, j)
				if err := tx.Insert(sp, []byte(key), []byte("v")); err != nil {
					errCh <- err
					return
				}
				if err := tx.Commit(); err != nil {
					errCh <- err
					return
				}
			}
		}(n, i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	tx, _ := c.Node(1).Begin()
	defer tx.Commit()
	kvs, err := tx.Scan(sp, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 400 {
		t.Fatalf("total rows = %d, want 400", len(kvs))
	}
}

func TestConcurrentMultiNodeWritesSharedKeys(t *testing.T) {
	c, sp := testCluster(t, 4)
	n1 := c.Node(1)
	const keys = 10
	for i := 0; i < keys; i++ {
		put(t, n1, sp, fmt.Sprintf("shared-%d", i), "0")
	}
	var wg sync.WaitGroup
	var commits, retries int64
	var mu sync.Mutex
	for _, n := range c.Nodes() {
		for th := 0; th < 2; th++ {
			wg.Add(1)
			go func(n *Node, seed int) {
				defer wg.Done()
				for j := 0; j < 50; j++ {
					key := fmt.Sprintf("shared-%d", (seed+j)%keys)
					for {
						tx, err := n.Begin()
						if err != nil {
							t.Error(err)
							return
						}
						err = tx.Update(sp, []byte(key), []byte(fmt.Sprintf("%d", j)))
						if err == nil {
							err = tx.Commit()
						} else {
							tx.Rollback()
						}
						if err == nil {
							mu.Lock()
							commits++
							mu.Unlock()
							break
						}
						if common.IsRetryable(err) {
							mu.Lock()
							retries++
							mu.Unlock()
							continue
						}
						t.Errorf("key %s: %v", key, err)
						return
					}
				}
			}(n, th*31)
		}
	}
	wg.Wait()
	if commits != 400 {
		t.Fatalf("commits = %d, want 400 (retries %d)", commits, retries)
	}
	// All keys still readable with last-committed values.
	tx, _ := n1.Begin()
	defer tx.Commit()
	for i := 0; i < keys; i++ {
		if _, err := tx.Get(sp, []byte(fmt.Sprintf("shared-%d", i))); err != nil {
			t.Fatalf("key %d unreadable: %v", i, err)
		}
	}
}

func TestReadOnlyCommitCheap(t *testing.T) {
	c, sp := testCluster(t, 1)
	n := c.Node(1)
	put(t, n, sp, "k", "v")
	syncsBefore := c.store.Stats().LogSyncs.Load()
	for i := 0; i < 10; i++ {
		tx, _ := n.Begin()
		if _, err := tx.Get(sp, []byte("k")); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
	}
	if got := c.store.Stats().LogSyncs.Load(); got != syncsBefore {
		t.Fatalf("read-only commits forced %d log syncs", got-syncsBefore)
	}
}

func TestTombstonePurgeAndReinsert(t *testing.T) {
	c, sp := testCluster(t, 1)
	n := c.Node(1)
	put(t, n, sp, "k", "v1")
	tx, _ := n.Begin()
	if err := tx.Delete(sp, []byte("k")); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	// Re-insert over the tombstone.
	tx, _ = n.Begin()
	if err := tx.Insert(sp, []byte("k"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	if v, _ := get(t, n, sp, "k"); v != "v2" {
		t.Fatalf("after reinsert: %q", v)
	}
	// Purge with an up-to-date min view trims the chain.
	if _, err := n.tf.ReportMinView(); err != nil {
		t.Fatal(err)
	}
	removed, err := n.PurgeSpace(sp)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("purge removed nothing")
	}
	if v, _ := get(t, n, sp, "k"); v != "v2" {
		t.Fatalf("after purge: %q", v)
	}
}

func TestCheckpointAndColdStart(t *testing.T) {
	c, sp := testCluster(t, 2)
	for i := 0; i < 100; i++ {
		put(t, c.Node(1+i%2), sp, fmt.Sprintf("k%03d", i), fmt.Sprintf("v%d", i))
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Logs truncated: streams empty.
	for _, n := range c.Nodes() {
		if c.store.LogStartLSN(n.id) != c.store.LogDurableLSN(n.id) {
			t.Fatalf("node %d log not truncated", n.id)
		}
	}
	// All data must be in storage now: verify through tree walk.
	si, ok := c.lookupSpaceByID(sp)
	if !ok {
		t.Fatal("space missing")
	}
	rows, err := VerifyTree(c.store, si.Anchor)
	if err != nil {
		t.Fatal(err)
	}
	if rows != 100 {
		t.Fatalf("storage tree has %d rows, want 100", rows)
	}
}

func TestInputValidation(t *testing.T) {
	c, sp := testCluster(t, 1)
	tx, _ := c.Node(1).Begin()
	defer tx.Rollback()
	if err := tx.Insert(sp, nil, []byte("v")); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := tx.Insert(sp, []byte("k"), make([]byte, MaxRowSize+1)); err == nil {
		t.Fatal("oversized row accepted")
	}
	if _, err := tx.Get(999, []byte("k")); !errors.Is(err, common.ErrNotFound) {
		t.Fatalf("unknown space err = %v", err)
	}
}

func TestUpsertSemantics(t *testing.T) {
	c, sp := testCluster(t, 1)
	n := c.Node(1)
	// Upsert inserts when missing...
	tx, _ := n.Begin()
	if err := tx.Upsert(sp, []byte("u"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	// ...replaces when present...
	tx, _ = n.Begin()
	if err := tx.Upsert(sp, []byte("u"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	if v, _ := get(t, n, sp, "u"); v != "2" {
		t.Fatalf("after upsert: %q", v)
	}
	// ...and revives tombstones.
	tx, _ = n.Begin()
	if err := tx.Delete(sp, []byte("u")); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	tx, _ = n.Begin()
	if err := tx.Upsert(sp, []byte("u"), []byte("3")); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	if v, _ := get(t, n, sp, "u"); v != "3" {
		t.Fatalf("after revive: %q", v)
	}
}

func TestGetForUpdateSemantics(t *testing.T) {
	c, sp := testCluster(t, 2)
	put(t, c.Node(1), sp, "k", "v0")
	tx, _ := c.Node(1).Begin()
	v, err := tx.GetForUpdate(sp, []byte("k"))
	if err != nil || string(v) != "v0" {
		t.Fatalf("gfu = %q, %v", v, err)
	}
	// Re-locking our own row is a no-op.
	if _, err := tx.GetForUpdate(sp, []byte("k")); err != nil {
		t.Fatal(err)
	}
	// A missing key is an error.
	if _, err := tx.GetForUpdate(sp, []byte("missing")); !errors.Is(err, common.ErrNotFound) {
		t.Fatalf("missing gfu err = %v", err)
	}
	// The lock blocks a peer writer until we finish.
	done := make(chan error, 1)
	go func() {
		tx2, err := c.Node(2).Begin()
		if err != nil {
			done <- err
			return
		}
		if err := tx2.Update(sp, []byte("k"), []byte("steal")); err != nil {
			tx2.Rollback()
			done <- err
			return
		}
		done <- tx2.Commit()
	}()
	select {
	case err := <-done:
		t.Fatalf("peer write finished under our lock: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
	tx.Rollback() // releases the lock without changing the value
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if v, _ := get(t, c.Node(1), sp, "k"); v != "steal" {
		t.Fatalf("final = %q", v)
	}
}

func TestScanBoundsAcrossPages(t *testing.T) {
	c, sp := testCluster(t, 1)
	n := c.Node(1)
	payload := make([]byte, 200)
	for i := 0; i < 600; i++ {
		tx, _ := n.Begin()
		if err := tx.Insert(sp, []byte(fmt.Sprintf("k%05d", i)), payload); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
	}
	tx, _ := n.Begin()
	defer tx.Commit()
	// A range spanning multiple leaves.
	kvs, err := tx.Scan(sp, []byte("k00100"), []byte("k00400"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 300 {
		t.Fatalf("scan = %d rows, want 300", len(kvs))
	}
	if string(kvs[0].Key) != "k00100" || string(kvs[len(kvs)-1].Key) != "k00399" {
		t.Fatalf("bounds: %q..%q", kvs[0].Key, kvs[len(kvs)-1].Key)
	}
	// Empty range.
	kvs, _ = tx.Scan(sp, []byte("zzz"), nil, 0)
	if len(kvs) != 0 {
		t.Fatalf("empty range returned %d rows", len(kvs))
	}
}

func TestMultiSpaceTransactionAtomicity(t *testing.T) {
	c, _ := testCluster(t, 2)
	spA, err := c.CreateSpace("A")
	if err != nil {
		t.Fatal(err)
	}
	spB, err := c.CreateSpace("B")
	if err != nil {
		t.Fatal(err)
	}
	// One transaction writes both spaces; rollback undoes both.
	tx, _ := c.Node(1).Begin()
	if err := tx.Insert(spA, []byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(spB, []byte("b"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	tx.Rollback()
	for _, sp := range []common.SpaceID{spA, spB} {
		tx2, _ := c.Node(2).Begin()
		if _, err := tx2.Get(sp, []byte("a")); !errors.Is(err, common.ErrNotFound) {
			if _, err2 := tx2.Get(sp, []byte("b")); !errors.Is(err2, common.ErrNotFound) {
				t.Fatalf("rolled-back rows visible in space %d", sp)
			}
		}
		tx2.Commit()
	}
	// And commit lands in both, visible cross-node, durable across a
	// full-cluster crash.
	tx, _ = c.Node(1).Begin()
	tx.Insert(spA, []byte("a"), []byte("1"))
	tx.Insert(spB, []byte("b"), []byte("2"))
	mustCommit(t, tx)
	c.CrashAll()
	if err := c.RecoverAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddNode(); err != nil {
		t.Fatal(err)
	}
	tx3, _ := c.Node(1).Begin()
	defer tx3.Commit()
	if v, err := tx3.Get(spA, []byte("a")); err != nil || string(v) != "1" {
		t.Fatalf("A after recovery: %q %v", v, err)
	}
	if v, err := tx3.Get(spB, []byte("b")); err != nil || string(v) != "2" {
		t.Fatalf("B after recovery: %q %v", v, err)
	}
}
