package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"polardbmp/internal/btree"
	"polardbmp/internal/bufferfusion"
	"polardbmp/internal/common"
	"polardbmp/internal/lockfusion"
	"polardbmp/internal/membership"
	"polardbmp/internal/metrics"
	"polardbmp/internal/page"
	"polardbmp/internal/rdma"
	"polardbmp/internal/trace"
	"polardbmp/internal/txfusion"
	"polardbmp/internal/wal"
)

// trxHWInterval/trxHWSlack govern the persisted transaction-id watermark: a
// restarted node resumes allocation above every id its previous incarnation
// could have used, so a global transaction id never aliases across a crash.
const (
	trxHWInterval = 4096
	trxHWSlack    = 2 * trxHWInterval
)

// Node is one primary: a complete database instance (buffer pool,
// transaction manager, log writer, B-tree access layer) wired to PMFS.
type Node struct {
	id common.NodeID
	c  *Cluster
	ep *rdma.Endpoint

	tf   *txfusion.Client
	pl   *lockfusion.PLockClient
	rl   *lockfusion.RLockClient
	lbp  *bufferfusion.Client
	wal  *wal.Writer
	llsn wal.LLSNCounter

	// stamp carries the node's incarnation epoch onto every fusion-service
	// request; agent is the node's lease/failure-detection worker.
	stamp *common.EpochStamp
	agent *membership.Agent

	// tracer is the node's commit-path span tracer; nil (the default)
	// disables tracing at a one-pointer-check cost per hook.
	tracer *trace.Tracer

	trxCtr   atomic.Uint64
	activeTx atomic.Int64
	live     atomic.Bool
	// draining refuses new transactions (Begin returns ErrDraining) while a
	// graceful drain waits out the in-flight ones; commits keep working.
	draining atomic.Bool
	// deferredRollbacks is set while post-crash rollbacks wait on another
	// crashed node's fence; TIT recycling pauses so the fence semantics
	// stay sound for new transactions.
	deferredRollbacks atomic.Bool

	treeMu sync.Mutex
	trees  map[common.SpaceID]*btree.Tree

	stopBG   chan struct{}
	bgDone   sync.WaitGroup
	stopOnce sync.Once

	// Stats for the figure harnesses.
	Commits   metrics.Counter
	Aborts    metrics.Counter
	Deadlocks metrics.Counter
	// DeferredAborts counts live rollbacks that could not reach every page
	// (peer crash fence, partition) and finished in the background; the TIT
	// slot stays active until the compensation lands.
	DeferredAborts metrics.Counter
	// Conflicts counts OCC validation failures (retryable
	// ErrWriteConflict aborts; always zero under 2PL).
	Conflicts metrics.Counter
	// TSOSolo/TSOGroup split commit-timestamp grants between the solo
	// fetch-add path and flat-combined group rounds.
	TSOSolo  metrics.Counter
	TSOGroup metrics.Counter
	// DeadlineAborts counts transactions that failed because their latency
	// budget expired (ErrDeadlineExceeded — never retried).
	DeadlineAborts metrics.Counter
	TxLatency      metrics.Histogram
}

// newNode registers a node on the fabric and wires its PMFS clients. With
// recovering=true the TIT recovery fence is raised; the caller must run
// recoverSelf before the node serves transactions.
func (c *Cluster) newNode(id common.NodeID, recovering bool) (*Node, error) {
	ep := c.fabric.Register(id)
	n := &Node{
		id:     id,
		c:      c,
		ep:     ep,
		trees:  make(map[common.SpaceID]*btree.Tree),
		stopBG: make(chan struct{}),
	}
	n.tf = txfusion.NewClient(ep, c.fabric, txfusion.Config{
		TITSlots:           c.cfg.TITSlots,
		LamportReuse:       !c.cfg.DisableLamport,
		CTSCacheSize:       1 << 14,
		DisableSpecCTS:     c.cfg.DisableSpecCTS,
		DisableAdaptiveTSO: c.cfg.DisableAdaptiveTSO,
	})
	if recovering {
		n.tf.SetRecovering(true)
	}
	lcfg := lockfusion.Config{
		WaitTimeout:        c.cfg.LockWaitTimeout,
		DisableLazyRelease: c.cfg.DisableLazyPLock,
	}
	n.pl = lockfusion.NewPLockClient(ep, c.fabric, lcfg)
	n.rl = lockfusion.NewRLockClient(ep, c.fabric, n.tf, lcfg)
	n.lbp = bufferfusion.NewClient(ep, c.fabric, c.store, c.cfg.LBPFrames)
	n.lbp.SetStorageMode(c.cfg.StoragePageSync)
	if c.cfg.HedgeDelayFloor != 0 {
		n.lbp.SetHedgeDelayFloor(c.cfg.HedgeDelayFloor)
	}
	rp := c.cfg.retryPolicy()
	n.tf.SetRetryPolicy(rp)
	n.pl.SetRetryPolicy(rp)
	n.rl.SetRetryPolicy(rp)
	n.lbp.SetRetryPolicy(rp)
	n.wal = wal.NewWriter(c.store, id)
	if c.pipeWake != nil {
		n.wal.AttachPipeline(c.pipeWake)
	}

	// Tracing: one tracer per node, attached to every subsystem that
	// classifies its own stages. The per-source fabric counters give span
	// op/byte attribution.
	if c.cfg.Trace != nil {
		n.tracer = trace.New(id, *c.cfg.Trace, c.fabric.SrcStats(id))
		n.tf.SetTracer(n.tracer)
		n.pl.SetTracer(n.tracer)
		n.lbp.SetTracer(n.tracer)
		n.wal.SetTracer(n.tracer)
	}

	// Membership: stamp every fusion request with the incarnation epoch and
	// join the lease table. The agent's renew/detect loops run only under
	// SelfHeal; joining and stamping are unconditional so the epoch gate
	// always sees current incarnations.
	n.stamp = &common.EpochStamp{}
	n.tf.SetEpochStamp(n.stamp)
	n.pl.SetEpochStamp(n.stamp)
	n.rl.SetEpochStamp(n.stamp)
	n.lbp.SetEpochStamp(n.stamp)
	n.agent = membership.NewAgent(id, common.PMFSNode, c.fabric, n.stamp, membership.Config{
		RenewInterval: c.cfg.LeaseRenewInterval,
		LeaseTimeout:  c.cfg.LeaseTimeout,
	})
	n.agent.SetRetryPolicy(rp)
	if !c.remote {
		// The takeover pipeline drives the fusion servers directly; a
		// satellite can detect and evict a dead peer but a seed-side
		// survivor must run the recovery.
		n.agent.SetOnTakeover(func(dead common.NodeID, epoch common.Epoch) {
			c.takeover(dead, epoch, n)
		})
	}
	// Commit-ambiguity resolution: any process may ask this node for the
	// fate of one of its transactions (journal + TIT; see txstatus.go).
	ep.Serve(ServiceTxStatus, n.handleTxStatus)
	if err := n.joinCluster(); err != nil {
		ep.Deregister()
		return nil, err
	}
	if c.cfg.SelfHeal {
		n.agent.Start()
	}

	// Wire the cross-layer hooks: force-log-before-push (§4.2) and
	// flush-dirty-page-before-PLock-release (§4.3.1).
	// Forcing only to the page's covering LSN (not the whole log end) makes
	// the post-commit and revoke-time flushes of already-durable pages free:
	// they no longer wait on other threads' in-flight appends.
	n.lbp.SetForceLog(func(upTo common.LSN) {
		if upTo == 0 {
			upTo = n.wal.End()
		}
		n.wal.Sync(upTo)
	})
	n.pl.SetRevokeHandler(func(pg common.PageID, held lockfusion.Mode) error {
		if held == lockfusion.ModeX {
			// A failed push vetoes the release (see RevokeFunc): a peer
			// must never be granted a page whose latest image is still
			// only in this node's LBP.
			return n.lbp.PushByID(pg)
		}
		return nil
	})

	// Resume transaction ids above the persisted watermark, and seed the
	// speculative-CTS recycle floor there: every id at or below it is
	// finished (or never allocated), and ids are strictly monotone across
	// incarnations, so peers' cached floors stay sound.
	base := c.loadMetaTrxHW(id)
	n.trxCtr.Store(uint64(base))
	c.storeMetaTrxHW(id, base+trxHWSlack)
	n.tf.InitTrxFloor(base)

	n.live.Store(true)
	if !recovering {
		n.startBackground()
	}
	return n, nil
}

// joinCluster registers the node with the membership table, waiting out a
// takeover of this id's previous incarnation (Join is refused while the slot
// is fenced, so a restart cannot overlap the survivor replaying its log) or
// a still-completing drain of it (Join is refused mid-drain for the same
// no-overlap reason).
func (n *Node) joinCluster() error {
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := n.agent.Join()
		if err == nil {
			return nil
		}
		if (!errors.Is(err, common.ErrFenced) && !errors.Is(err, common.ErrDraining)) ||
			time.Now().After(deadline) {
			return fmt.Errorf("core: node %d join: %w", n.id, err)
		}
		time.Sleep(n.c.cfg.LeaseRenewInterval)
	}
}

// leaseCheck fail-fasts a commit when this incarnation lost its lease: an
// evicted node must observe its own eviction and abort rather than publish.
// No-op unless SelfHeal is on (without the detector nobody evicts anyone).
func (n *Node) leaseCheck() error {
	if !n.c.cfg.SelfHeal {
		return nil
	}
	if err := n.agent.CheckValid(); err != nil {
		return fmt.Errorf("core: node %d: %w", n.id, err)
	}
	return nil
}

// ID returns the node id.
func (n *Node) ID() common.NodeID { return n.id }

// Live reports whether the node is serving.
func (n *Node) Live() bool { return n.live.Load() }

// LBP exposes the node's buffer pool stats (harness/inspection).
func (n *Node) LBP() *bufferfusion.Client { return n.lbp }

// PLocks exposes the node's PLock client stats (harness/inspection).
func (n *Node) PLocks() *lockfusion.PLockClient { return n.pl }

// TxFusion exposes the node's Transaction Fusion client (harness).
func (n *Node) TxFusion() *txfusion.Client { return n.tf }

// Tracer returns the node's commit-path tracer (nil when tracing is off).
func (n *Node) Tracer() *trace.Tracer { return n.tracer }

// ForceLogSync forces the node's redo stream durable to its current end
// (test/replication hook).
func (n *Node) ForceLogSync() { n.wal.Sync(n.wal.End()) }

func (n *Node) startBackground() {
	if n.c.cfg.RecycleInterval > 0 {
		n.bgDone.Add(1)
		go func() {
			defer n.bgDone.Done()
			tick := time.NewTicker(n.c.cfg.RecycleInterval)
			defer tick.Stop()
			for {
				select {
				case <-n.stopBG:
					return
				case <-tick.C:
					if n.live.Load() && !n.deferredRollbacks.Load() {
						_, _ = n.tf.ReportMinView()
					}
				}
			}
		}()
	}
	if n.c.cfg.PurgeInterval > 0 {
		n.bgDone.Add(1)
		go func() {
			defer n.bgDone.Done()
			tick := time.NewTicker(n.c.cfg.PurgeInterval)
			defer tick.Stop()
			for {
				select {
				case <-n.stopBG:
					return
				case <-tick.C:
					if !n.live.Load() || n.deferredRollbacks.Load() {
						continue
					}
					// Purge the spaces this node has opened trees for.
					n.treeMu.Lock()
					spaces := make([]common.SpaceID, 0, len(n.trees))
					for sp := range n.trees {
						spaces = append(spaces, sp)
					}
					n.treeMu.Unlock()
					for _, sp := range spaces {
						if !n.live.Load() {
							return
						}
						_, _ = n.PurgeSpace(sp)
					}
				}
			}
		}()
	}
}

func (n *Node) stopBackground() {
	n.stopOnce.Do(func() { close(n.stopBG) })
	n.bgDone.Wait()
}

// crash kills the node: fences all its clients so zombie goroutines cannot
// touch shared state, and deregisters it from the fabric.
func (n *Node) crash() {
	n.live.Store(false)
	n.agent.Stop()
	n.stopBackground()
	n.tf.Close()
	n.pl.Close()
	n.lbp.Close()
	n.wal.Close()
	n.ep.Deregister()
}

// nextTrx allocates a node-local transaction id, persisting the watermark
// every trxHWInterval allocations.
func (n *Node) nextTrx() common.TrxID {
	id := common.TrxID(n.trxCtr.Add(1))
	if uint64(id)%trxHWInterval == 0 {
		n.c.storeMetaTrxHW(n.id, id+trxHWSlack)
	}
	return id
}

// tree returns the node's handle on a space's B-tree.
func (n *Node) tree(space common.SpaceID) (*btree.Tree, error) {
	n.treeMu.Lock()
	t := n.trees[space]
	n.treeMu.Unlock()
	if t != nil {
		return t, nil
	}
	si, ok := n.c.lookupSpaceByID(space)
	if !ok {
		return nil, fmt.Errorf("core: space %d: %w", space, common.ErrNotFound)
	}
	t = btree.New((*pager)(n), space, si.Anchor)
	n.treeMu.Lock()
	n.trees[space] = t
	n.treeMu.Unlock()
	return t, nil
}

// createTree builds a fresh B-tree for a new space and returns its anchor.
func (n *Node) createTree(space common.SpaceID) (common.PageID, error) {
	anchor, err := btree.Create((*pager)(n), space)
	if err != nil {
		return 0, err
	}
	n.treeMu.Lock()
	n.trees[space] = btree.New((*pager)(n), space, anchor)
	n.treeMu.Unlock()
	return anchor, nil
}

// resolveCTS implements Algorithm 1's entry point for a row version: the
// stamped CTS if present, otherwise the TIT lookup. Unreachable owners
// resolve by fate: while the owner is crashed and unrecovered its versions
// count as still active (CSNMax, the §4.4 fence semantic); once a survivor's
// takeover finished, every in-doubt version was removed and every
// in-recovery commit stamped, so a version still unstamped can only belong
// to a transaction that finished before the last checkpoint — visible to
// all (CSNMin).
func (n *Node) resolveCTS(v *page.Version) common.CSN {
	if v.CTS != common.CSNInit {
		return v.CTS
	}
	if v.Trx.Zero() {
		return common.CSNMin
	}
	cts, err := n.tf.GetTrxCTS(v.Trx)
	if err != nil {
		if n.c.recoveredPeer(v.Trx.Node) {
			return common.CSNMin
		}
		return common.CSNMax
	}
	return cts
}

// batchResolver returns a version-resolution function equivalent to
// resolveCTS but scoped to one page: every unstamped foreign version on the
// page is pre-resolved through one vectored TIT read per owning node
// (GetTrxCTSBatch), so the per-version calls that follow are pure map
// lookups. Transactions the batch could not reach resolve by the same fate
// rule as resolveCTS. Pages with nothing to look up fall back to resolveCTS
// untouched — the common case once commit-time stamping has run.
func (n *Node) batchResolver(pg *page.Page) func(*page.Version) common.CSN {
	var gs []common.GTrxID
	for ri := range pg.Rows {
		row := &pg.Rows[ri]
		for vi := range row.Versions {
			v := &row.Versions[vi]
			if v.CTS == common.CSNInit && !v.Trx.Zero() {
				gs = append(gs, v.Trx)
			}
		}
	}
	if len(gs) == 0 {
		return n.resolveCTS
	}
	m := n.tf.GetTrxCTSBatch(gs)
	return func(v *page.Version) common.CSN {
		if v.CTS != common.CSNInit {
			return v.CTS
		}
		if v.Trx.Zero() {
			return common.CSNMin
		}
		if cts, ok := m[v.Trx]; ok {
			return cts
		}
		// The owner was unreachable during the batch: resolve by fate,
		// exactly like resolveCTS's error path.
		if n.c.recoveredPeer(v.Trx.Node) {
			return common.CSNMin
		}
		return common.CSNMax
	}
}

// PurgeSpace trims version chains across a space using the current global
// minimum view (the purge/vacuum path). Returns versions removed.
func (n *Node) PurgeSpace(space common.SpaceID) (int, error) {
	t, err := n.tree(space)
	if err != nil {
		return 0, err
	}
	gmv := n.tf.LastGMV()
	removed := 0
	var emptied [][]byte // a key routed to each fully-purged leaf
	ref, err := t.First(lockfusion.ModeX)
	if err != nil {
		return 0, err
	}
	var lastKey []byte
	for ref != nil {
		before := removed
		if len(ref.Page.Rows) > 0 {
			lastKey = append(lastKey[:0], ref.Page.Rows[0].Key...)
		}
		removed += ref.Page.Purge(gmv, n.batchResolver(ref.Page))
		if removed != before {
			ref.Opaque.(*bufferfusion.Frame).Dirty = true
		}
		if len(ref.Page.Rows) == 0 && lastKey != nil {
			emptied = append(emptied, append([]byte(nil), lastKey...))
		}
		ref, err = t.Next(ref, lockfusion.ModeX)
		if err != nil {
			return removed, err
		}
	}
	// Shrink pass: unlink the leaves the purge emptied.
	for _, key := range emptied {
		if _, err := t.UnlinkEmptyLeaf(key); err != nil {
			return removed, err
		}
	}
	return removed, nil
}
