package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"polardbmp/internal/common"
	"polardbmp/internal/membership"
)

// TestDrainBasics walks one graceful drain end to end: admission closes, an
// in-flight transaction commits, the node's writes stay visible, no recovery
// machinery runs, and the freed slot is reused by the next join.
func TestDrainBasics(t *testing.T) {
	c, sp := testCluster(t, 3)
	for i := 0; i < 20; i++ {
		put(t, c.Node(2), sp, fmt.Sprintf("k%02d", i), "v")
	}

	// An in-flight transaction begun before the drain must commit while the
	// drain waits (its lease stays valid).
	victim := c.Node(2)
	tx, err := victim.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Upsert(sp, []byte("inflight"), []byte("ok")); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- c.DrainNode(2) }()
	// Admission closes promptly even while the drain waits on us.
	begunAfter := time.Now().Add(2 * time.Second)
	for !victim.Draining() {
		if time.Now().After(begunAfter) {
			t.Fatal("draining flag never rose")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := victim.Begin(); !errors.Is(err, ErrDraining) {
		t.Fatalf("Begin on draining node: %v, want ErrDraining", err)
	}
	mustCommit(t, tx)
	if err := <-done; err != nil {
		t.Fatalf("drain: %v", err)
	}

	// The node is gone from the map; the table says drained; no takeover ran.
	if c.Node(2) != nil {
		t.Fatal("drained node still in the node map")
	}
	if st := c.Members().State(2); st != membership.StateDrained {
		t.Fatalf("slot state = %s, want drained", membership.StateName(st))
	}
	if got := c.Stats().Membership.Takeovers; got != 0 {
		t.Fatalf("takeovers = %d after a graceful drain, want 0", got)
	}

	// Everything it wrote — including the transaction that rode through the
	// drain — reads back from the survivors, with no redo replay anywhere.
	for _, ni := range []int{1, 3} {
		for i := 0; i < 20; i++ {
			if v, err := get(t, c.Node(ni), sp, fmt.Sprintf("k%02d", i)); err != nil || v != "v" {
				t.Fatalf("node %d: k%02d = %q, %v", ni, i, v, err)
			}
		}
		if v, err := get(t, c.Node(ni), sp, "inflight"); err != nil || v != "ok" {
			t.Fatalf("node %d: inflight = %q, %v", ni, v, err)
		}
	}

	// Idempotence / error surface.
	if err := c.DrainNode(2); !errors.Is(err, common.ErrNodeDown) {
		t.Fatalf("drain of drained node: %v, want ErrNodeDown", err)
	}
	if err := c.DrainNode(99); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("drain of unknown node: %v, want ErrUnknownNode", err)
	}

	// The next join reuses the drained slot and serves immediately.
	n, err := c.AddNode()
	if err != nil {
		t.Fatal(err)
	}
	if n.ID() != 2 {
		t.Fatalf("rejoin allocated node %d, want reused slot 2", n.ID())
	}
	if v, err := get(t, n, sp, "inflight"); err != nil || v != "ok" {
		t.Fatalf("rejoined node: inflight = %q, %v", v, err)
	}
	put(t, n, sp, "after-rejoin", "ok")
}

// TestRemoveNodeFreesSlot: RemoveNode drains a live node and frees its slot;
// a crashed node is removable once recovery marked it down.
func TestRemoveNodeFreesSlot(t *testing.T) {
	c, sp := testCluster(t, 2)
	put(t, c.Node(2), sp, "a", "1")

	if err := c.RemoveNode(2); err != nil {
		t.Fatal(err)
	}
	if st := c.Members().State(2); st != membership.StateFree {
		t.Fatalf("slot state = %s, want free", membership.StateName(st))
	}
	if err := c.RemoveNode(99); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("remove unknown: %v, want ErrUnknownNode", err)
	}
	if v, err := get(t, c.Node(1), sp, "a"); err != nil || v != "1" {
		t.Fatalf("survivor read: %q, %v", v, err)
	}
}

// TestTopologySnapshot checks the snapshot's states, epoch monotonicity, and
// session counts across a join/drain cycle.
func TestTopologySnapshot(t *testing.T) {
	c, sp := testCluster(t, 2)

	top, err := c.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if len(top.Nodes) != 2 {
		t.Fatalf("nodes = %d, want 2", len(top.Nodes))
	}
	for _, ni := range top.Nodes {
		if ni.State != NodeActive || !ni.Hosted {
			t.Fatalf("node %d: state=%s hosted=%v, want active hosted", ni.ID, ni.State, ni.Hosted)
		}
		if ni.Incarnation == 0 {
			t.Fatalf("node %d: zero incarnation", ni.ID)
		}
	}

	// Sessions reflects in-flight transactions on hosted nodes.
	tx, err := c.Node(1).Begin()
	if err != nil {
		t.Fatal(err)
	}
	top2, _ := c.Topology()
	if top2.Nodes[0].Sessions != 1 {
		t.Fatalf("node 1 sessions = %d, want 1", top2.Nodes[0].Sessions)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	_ = sp

	// Drain: the epoch advances monotonically and the state lands on
	// drained.
	if err := c.DrainNode(2); err != nil {
		t.Fatal(err)
	}
	top3, _ := c.Topology()
	if top3.Epoch <= top.Epoch {
		t.Fatalf("epoch %d did not advance past %d over a drain", top3.Epoch, top.Epoch)
	}
	var found bool
	for _, ni := range top3.Nodes {
		if ni.ID == 2 {
			found = true
			if ni.State != NodeDrained || ni.Hosted {
				t.Fatalf("node 2: state=%s hosted=%v, want drained un-hosted", ni.State, ni.Hosted)
			}
		}
	}
	if !found {
		t.Fatal("drained node missing from topology")
	}
	if b, err := c.TopologyJSON(); err != nil || len(b) == 0 {
		t.Fatalf("TopologyJSON: %q, %v", b, err)
	}
}

// TestElasticDrainUnderLoad is the tentpole invariant: an 8-node cluster
// under continuous load loses and regains nodes through graceful drains, and
// not one transaction aborts for a membership reason. ErrDraining at Begin
// is admission control, not an abort — the load generator reroutes it.
// Topology epochs observed during the churn are strictly monotone.
func TestElasticDrainUnderLoad(t *testing.T) {
	c, sp := selfHealCluster(t, 8)

	const workers = 8
	var (
		stop            atomic.Bool
		membershipFails atomic.Int64
		commits         atomic.Int64
		rerouted        atomic.Int64
		wg              sync.WaitGroup
	)
	// pick returns a live node, preferring the workers' view of the world;
	// the orchestrator updates it around each drain.
	var pickMu sync.Mutex
	pool := c.Nodes()
	pick := func(i int) *Node {
		pickMu.Lock()
		defer pickMu.Unlock()
		return pool[i%len(pool)]
	}
	setPool := func(ns []*Node) {
		pickMu.Lock()
		pool = ns
		pickMu.Unlock()
	}
	isMembership := func(err error) bool {
		return errors.Is(err, common.ErrStaleEpoch) || errors.Is(err, common.ErrFenced) ||
			errors.Is(err, common.ErrNodeDown)
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				n := pick(w + i)
				tx, err := n.Begin()
				if err != nil {
					if errors.Is(err, ErrDraining) {
						rerouted.Add(1)
						continue // route to another primary next round
					}
					if isMembership(err) {
						membershipFails.Add(1)
					}
					continue
				}
				key := fmt.Sprintf("w%d-%04d", w, i%256)
				err = tx.Upsert(sp, []byte(key), []byte("v"))
				if err == nil {
					err = tx.Commit()
				} else {
					_ = tx.Rollback()
				}
				switch {
				case err == nil:
					commits.Add(1)
				case isMembership(err):
					membershipFails.Add(1)
				case common.IsRetryable(err) || errors.Is(err, common.ErrDeadlock):
					// contention; next round retries
				default:
					t.Errorf("worker %d: unexpected error: %v", w, err)
					return
				}
			}
		}(w)
	}

	// Churn: drain a node, verify it left, re-add it, three times over —
	// sampling the topology epoch at each step for monotonicity.
	lastEpoch := uint64(0)
	sampleEpoch := func() {
		top, err := c.Topology()
		if err != nil {
			t.Fatal(err)
		}
		if top.Epoch < lastEpoch {
			t.Fatalf("topology epoch went backwards: %d after %d", top.Epoch, lastEpoch)
		}
		lastEpoch = top.Epoch
	}
	sampleEpoch()
	for cycle := 0; cycle < 3; cycle++ {
		victim := common.NodeID(cycle%4 + 2)
		// Shrink the workers' pool to the others, then drain under whatever
		// stragglers still race in.
		var rest []*Node
		for _, n := range c.Nodes() {
			if n.ID() != victim {
				rest = append(rest, n)
			}
		}
		setPool(rest)
		if err := c.DrainNode(victim); err != nil {
			t.Fatalf("cycle %d: drain node %d: %v", cycle, victim, err)
		}
		sampleEpoch()
		n, err := c.AddNode()
		if err != nil {
			t.Fatalf("cycle %d: rejoin: %v", cycle, err)
		}
		if n.ID() != victim {
			t.Fatalf("cycle %d: rejoin allocated %d, want reused slot %d", cycle, n.ID(), victim)
		}
		setPool(c.Nodes())
		sampleEpoch()
		time.Sleep(20 * time.Millisecond) // let load resettle across 8 nodes
	}

	stop.Store(true)
	wg.Wait()

	if got := membershipFails.Load(); got != 0 {
		t.Fatalf("%d transactions aborted for membership reasons during graceful drains, want 0", got)
	}
	if commits.Load() == 0 {
		t.Fatal("load generator never committed")
	}
	st := c.Stats()
	if st.Membership.Takeovers != 0 {
		t.Fatalf("takeovers = %d, want 0 (drains must not look like crashes)", st.Membership.Takeovers)
	}
	top, err := c.Topology()
	if err != nil {
		t.Fatal(err)
	}
	active := 0
	for _, ni := range top.Nodes {
		if ni.State == NodeActive {
			active++
		}
	}
	if active != 8 {
		t.Fatalf("active nodes = %d after churn, want 8", active)
	}
	t.Logf("commits=%d rerouted=%d epochs<=%d", commits.Load(), rerouted.Load(), lastEpoch)
}

// TestElasticCyclesNoLeaks: twenty join/drain cycles neither leak goroutines
// nor consume fresh slots — the drained slot is reused every time, so the
// node-id watermark stays put.
func TestElasticCyclesNoLeaks(t *testing.T) {
	c, sp := testCluster(t, 2)
	put(t, c.Node(1), sp, "seed", "v")

	runtime.GC()
	base := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		n, err := c.AddNode()
		if err != nil {
			t.Fatalf("cycle %d: add: %v", i, err)
		}
		if n.ID() != 3 {
			t.Fatalf("cycle %d: allocated node %d, want reused slot 3", i, n.ID())
		}
		put(t, n, sp, fmt.Sprintf("c%02d", i), "v")
		if err := c.DrainNode(n.ID()); err != nil {
			t.Fatalf("cycle %d: drain: %v", i, err)
		}
	}

	// Slots: exactly the two permanent nodes live, one drained slot parked.
	top, err := c.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if len(top.Nodes) != 3 {
		t.Fatalf("topology rows = %d after 20 cycles, want 3", len(top.Nodes))
	}

	// Goroutines: drained nodes' background loops must all have exited.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > base {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutines = %d after 20 cycles, base %d\n%s",
			got, base, buf[:runtime.Stack(buf, true)])
	}

	// Everything every transient node wrote is still there.
	for i := 0; i < 20; i++ {
		if v, err := get(t, c.Node(1), sp, fmt.Sprintf("c%02d", i)); err != nil || v != "v" {
			t.Fatalf("c%02d = %q, %v", i, v, err)
		}
	}
}
