package core

import (
	"fmt"
	"time"

	"polardbmp/internal/bufferfusion"
	"polardbmp/internal/common"
	"polardbmp/internal/lockfusion"
	"polardbmp/internal/membership"
	"polardbmp/internal/page"
	"polardbmp/internal/wal"
)

// noteTakeoverErr records the latest failed-takeover diagnostic for stats
// (a completed takeover clears it).
func (c *Cluster) noteTakeoverErr(dead common.NodeID, err error) {
	c.takeoverErrMu.Lock()
	defer c.takeoverErrMu.Unlock()
	if err == nil {
		c.takeoverErr = ""
		return
	}
	c.takeoverErr = fmt.Sprintf("node %d: %v", dead, err)
}

// peerTrx is one of a dead node's transactions as reconstructed from its
// durable redo stream by the takeover scan.
type peerTrx struct {
	g        common.GTrxID
	undo     []undoEntry
	finished bool
	cts      common.CSN // logged commit timestamp; 0 for aborted
}

// takeover is the surviving-node recovery pipeline (the paper's §4.4 crash
// recovery run online by a peer instead of the restarted node): after the
// membership table fenced dead under a new cluster epoch, the winning
// survivor repairs the dead node's shared state so the cluster keeps serving
// without waiting for a restart.
func (c *Cluster) takeover(dead common.NodeID, epoch common.Epoch, survivor *Node) {
	// Serialize takeovers without deadlocking against our own fencing:
	// under severe scheduling starvation two nodes can evict each other
	// across successive epochs, and the mutex holder's STONITH of this
	// survivor waits (via agent.Stop) for this very goroutine. Poll with
	// TryLock and abandon the takeover once this survivor is no longer
	// live — the winner that fenced us owns any remaining repair.
	for !c.takeoverMu.TryLock() {
		if !survivor.Live() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	defer c.takeoverMu.Unlock()
	if !survivor.Live() {
		return
	}
	if c.members.State(dead) != membership.StateFenced {
		return // duplicate callback: another survivor already finished
	}
	start := time.Now()

	// STONITH: the "dead" node may be merely slow; kill its process first
	// so no zombie thread extends the log or publishes state mid-takeover.
	// (Its fabric requests are already rejected by the epoch gate.)
	c.mu.Lock()
	n := c.nodes[dead]
	delete(c.nodes, dead)
	c.mu.Unlock()
	if n != nil {
		n.crash()
	}

	// Fence the redo stream and discard its un-synced tail: the durable
	// prefix is now immutable and owned by this takeover.
	c.store.FenceLog(dead)
	c.store.LogCrashVolatile(dead)

	// Declared-crash cleanup (what CrashNode does for an operator): keep
	// the PLock fence up, clear the dead node's wait edges so blocked
	// peers retry, drop its DBP registrations, unblock the min view.
	c.lockSrv.PLock.MarkDead(dead)
	c.lockSrv.DropNodeRLock(uint16(dead))
	c.bufSrv.DropNode(uint16(dead))
	c.removeMinView(dead)

	trxs, err := survivor.recoverPeer(dead)
	if err != nil {
		// Fail safe: the PLock fence stays up (the dead node's X pages
		// remain unreachable) and the slot stays Fenced. Re-open the log
		// so a later RestartNode can still run self-recovery over the
		// intact stream — or the detector's fenced-slot sweep retries the
		// takeover after its cooldown. Record the failure so a stuck slot
		// is diagnosable from /stats instead of silent.
		c.store.UnfenceLog(dead)
		c.takeoverFails.Inc()
		c.noteTakeoverErr(dead, err)
		return
	}

	// The fenced pages are repaired in storage; lift the fence so the
	// engine paths below — and every peer — can reach them again.
	c.lockSrv.DropNodePLock(uint16(dead))
	c.lockSrv.PLock.ClearDead(dead)

	survivor.finishPeerRecovery(trxs)

	// Journal every reconstructed fate BEFORE marking the node recovered:
	// the commit-ambiguity protocol polls "active" until recovery completes,
	// then expects the seed's journal to hold the answer (txstatus.go). An
	// unfinished transaction was rolled back above — for its client the
	// commit record never became durable, so "aborted" is the truth, not a
	// guess.
	for _, st := range trxs {
		if st.finished && st.cts != 0 {
			c.txlog.record(st.g, st.cts)
		} else {
			c.txlog.record(st.g, 0)
		}
	}

	// Only now may readers resolve the dead node's remaining unstamped
	// versions as checkpoint-old (CSNMin): everything younger was stamped
	// or removed above.
	c.members.MarkRecovered(dead)
	c.store.LogTruncate(dead, c.store.LogDurableLSN(dead))
	c.store.UnfenceLog(dead)
	c.takeovers.Inc()
	c.noteTakeoverErr(dead, nil)
	c.takeoverDur.Observe(time.Since(start))
}

// recoverPeer replays a fenced dead node's durable redo stream while its
// PLock fence is still up. The fence set — pages the dead node held X PLocks
// on — is exactly where its latest changes may exist only in its log
// (flush-before-release pushed every released page), so those pages are
// rebuilt in storage: stale DBP frames reclaimed, redo applied, and the dead
// node's own versions resolved in-image (committed stamped with the logged
// CTS, in-doubt removed). Returns the reconstructed transaction outcomes for
// the engine-path finish.
func (n *Node) recoverPeer(dead common.NodeID) ([]*peerTrx, error) {
	c := n.c

	// Pass 1: scan the stream for transaction outcomes, retaining the page
	// mutations for replay. Folding the dead node's LLSNs into our counter
	// keeps our future records ordered after everything we replay.
	trxs := make(map[common.GTrxID]*peerTrx)
	var order []*peerTrx
	var recs []*wal.Record
	sr := wal.NewStreamReader(c.store, dead, c.store.LogStartLSN(dead), 0)
	for {
		rec, err := sr.Next()
		if err != nil {
			return nil, err
		}
		if rec == nil {
			break
		}
		n.llsn.Observe(rec.LLSN)
		switch rec.Type {
		case wal.RecInsert, wal.RecRollback, wal.RecPageImage:
			recs = append(recs, rec)
		}
		if rec.Trx.Zero() || rec.Trx.Node != dead {
			continue
		}
		st := trxs[rec.Trx]
		if st == nil {
			st = &peerTrx{g: rec.Trx}
			trxs[rec.Trx] = st
			order = append(order, st)
		}
		switch rec.Type {
		case wal.RecInsert:
			st.undo = append(st.undo, undoEntry{space: rec.Space, key: rec.Key})
		case wal.RecCommit:
			st.finished = true
			st.cts = rec.CTS
		case wal.RecAbort:
			st.finished = true
		}
	}

	fenced := c.lockSrv.PLock.HeldBy(dead)
	inFence := make(map[common.PageID]bool)
	var fencedX []common.PageID
	for pg, mode := range fenced {
		if mode == lockfusion.ModeX {
			inFence[pg] = true
			fencedX = append(fencedX, pg)
		}
	}

	// Reclaim the fenced pages' DBP frames (flushing non-stale dirty state)
	// so the storage image is the single base the replay builds on.
	c.bufSrv.Reclaim(fencedX)

	// Pass 2: replay the retained records onto the fenced pages' storage
	// images in log order; applyRecord's LLSN rule keeps this idempotent
	// against changes already pushed before the crash.
	images := make(map[common.PageID]*page.Page)
	for _, rec := range recs {
		if !inFence[rec.Page] {
			continue
		}
		pg := images[rec.Page]
		if pg == nil {
			img, err := c.store.ReadPage(rec.Page)
			if err == nil {
				if pg, err = page.Unmarshal(img); err != nil {
					return nil, err
				}
			} else if rec.Type == wal.RecPageImage {
				// Created after the last checkpoint: the creation image
				// is the first record for the page.
				pg = page.New(rec.Page, rec.Space, page.TypeLeaf)
			} else {
				// A mutation record must follow the page's creation (in
				// the log or a checkpoint); nothing to apply it to.
				continue
			}
			images[rec.Page] = pg
		}
		var dirty bool
		applyRecord(pg, rec, &dirty)
	}

	// Resolve the dead node's versions in-image and publish the repaired
	// pages; peers fault them in from storage once the fence lifts. The
	// replay accumulated one version per logged insert — under a hot-key
	// workload that is far more history than any snapshot can reach — so
	// apply the engine's Purge rule at the cluster's min view, exactly as
	// the live write path would have, before marshaling into a frame.
	gmv := n.tf.LastGMV()
	for _, pg := range images {
		resolvePeerVersions(pg, dead, trxs)
		pg.Purge(gmv, n.batchResolver(pg))
	}
	for id, pg := range images {
		img, err := pg.Marshal()
		if err != nil {
			return nil, err
		}
		if err := c.store.WritePage(id, img); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// resolvePeerVersions settles every version the dead node wrote on a
// replayed page: committed versions get their logged CTS, in-doubt versions
// (no commit record survived, so the client never got an acknowledgement)
// are removed, aborted leftovers are removed, and versions from before the
// retained log finished under an earlier checkpoint — visible to all.
func resolvePeerVersions(pg *page.Page, dead common.NodeID, trxs map[common.GTrxID]*peerTrx) {
	rows := pg.Rows[:0]
	for ri := range pg.Rows {
		r := &pg.Rows[ri]
		keep := r.Versions[:0]
		for vi := range r.Versions {
			v := r.Versions[vi]
			if v.Trx.Zero() || v.Trx.Node != dead || v.CTS != common.CSNInit {
				keep = append(keep, v)
				continue
			}
			st := trxs[v.Trx]
			switch {
			case st == nil:
				v.CTS = common.CSNMin // pre-checkpoint commit
				keep = append(keep, v)
			case !st.finished:
				// in-doubt: drop the version (rollback)
			case st.cts != 0:
				v.CTS = st.cts
				keep = append(keep, v)
			default:
				// aborted: its compensation record should already have
				// removed this; drop the leftover either way
			}
		}
		r.Versions = keep
		if len(r.Versions) > 0 {
			rows = append(rows, *r)
		}
	}
	pg.Rows = rows
}

// finishPeerRecovery settles the dead node's transactions on pages outside
// the fence set through the normal engine paths (rows may have migrated
// across pages since they were written): in-doubt versions are rolled back
// with compensation records, committed-but-unstamped versions get their CTS
// so readers stop treating them as active. Entries behind a second crashed
// node's fence are retried for a bounded time; leftovers resolve through the
// membership fate rule once that node recovers too.
func (n *Node) finishPeerRecovery(trxs []*peerTrx) {
	deadline := time.Now().Add(10 * time.Second)
	for _, st := range trxs {
		if st.finished {
			if st.cts != 0 {
				n.stampPeerCTS(st)
			}
			continue
		}
		undo := st.undo
		for len(undo) > 0 {
			rest := n.rollbackEntries(st.g, undo)
			if len(rest) == len(undo) && time.Now().After(deadline) {
				break
			}
			undo = rest
			if len(undo) > 0 {
				time.Sleep(5 * time.Millisecond)
			}
		}
	}
	n.wal.Sync(n.wal.End())
}

// stampPeerCTS stamps a committed transaction's surviving versions wherever
// its rows live now.
func (n *Node) stampPeerCTS(st *peerTrx) {
	seen := make(map[string]bool, len(st.undo))
	for _, e := range st.undo {
		k := fmt.Sprintf("%d/%s", e.space, e.key)
		if seen[k] {
			continue
		}
		seen[k] = true
		t, err := n.tree(e.space)
		if err != nil {
			continue
		}
		ref, err := t.LeafSafe(e.key, lockfusion.ModeX)
		if err != nil {
			continue
		}
		if ref.Page.StampCTS(st.g, st.cts) > 0 {
			ref.Opaque.(*bufferfusion.Frame).Dirty = true
		}
		n.releasePager(ref)
	}
}
