package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"polardbmp/internal/chaos"
	"polardbmp/internal/common"
	"polardbmp/internal/membership"
)

// selfHealCluster builds a cluster with lease-based failure detection on.
// The lease timeout must be generous: under -race on a loaded single-core
// host the scheduler can starve a perfectly healthy node's renew goroutine
// for tens of milliseconds, and a spurious eviction fails the test.
func selfHealCluster(t testing.TB, n int) (*Cluster, common.SpaceID) {
	t.Helper()
	c := NewCluster(Config{
		LockWaitTimeout:    2 * time.Second,
		RecycleInterval:    5 * time.Millisecond,
		SelfHeal:           true,
		LeaseRenewInterval: 10 * time.Millisecond,
		LeaseTimeout:       400 * time.Millisecond,
	})
	for i := 0; i < n; i++ {
		if _, err := c.AddNode(); err != nil {
			t.Fatal(err)
		}
	}
	sp, err := c.CreateSpace("t")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, sp
}

func waitTakeovers(t testing.TB, c *Cluster, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for c.Stats().Membership.Takeovers < want {
		if time.Now().After(deadline) {
			st := c.Stats()
			t.Fatalf("takeovers = %d after 10s, want >= %d (epoch=%d bumps=%d renewals=%d)",
				st.Membership.Takeovers, want, st.Membership.Epoch, st.Membership.EpochBumps, st.Membership.LeaseRenewals)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSelfHealTakeover is the headline scenario: a node is fail-stopped with
// no notification whatsoever (KillNode, not CrashNode); the survivors must
// detect the silence through the lease table, fence the node under a new
// epoch, recover its committed writes and roll back its in-doubt transaction
// — all without any operator call — and the node must be able to rejoin.
func TestSelfHealTakeover(t *testing.T) {
	c, sp := selfHealCluster(t, 3)

	for i := 0; i < 30; i++ {
		put(t, c.Node(i%3+1), sp, fmt.Sprintf("k%03d", i), fmt.Sprintf("v%d", i))
	}
	// Leave an in-doubt transaction on the victim: redo durable, no commit
	// record. Survivor-side takeover must roll it back.
	n3 := c.Node(3)
	tx, err := n3.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(sp, []byte("ghost"), []byte("boo")); err != nil {
		t.Fatal(err)
	}
	n3.wal.Sync(n3.wal.End())

	epoch0 := c.Stats().Membership.Epoch
	if err := c.KillNode(3); err != nil {
		t.Fatal(err)
	}
	waitTakeovers(t, c, 1)

	st := c.Stats()
	if st.Membership.Epoch <= epoch0 {
		t.Fatalf("epoch %d did not advance past %d", st.Membership.Epoch, epoch0)
	}
	if st.Membership.EpochBumps < 1 {
		t.Fatalf("EpochBumps = %d, want >= 1", st.Membership.EpochBumps)
	}
	if st.Membership.TakeoverMean <= 0 {
		t.Fatalf("TakeoverMean = %v, want > 0", st.Membership.TakeoverMean)
	}

	// Survivors serve everything the dead node committed; its in-doubt
	// insert is gone. No RestartNode has happened.
	for ni := 1; ni <= 2; ni++ {
		for i := 0; i < 30; i++ {
			key := fmt.Sprintf("k%03d", i)
			want := fmt.Sprintf("v%d", i)
			if v, err := get(t, c.Node(ni), sp, key); err != nil || v != want {
				t.Fatalf("node %d: %s = %q, %v (want %q)", ni, key, v, err, want)
			}
		}
		if _, err := get(t, c.Node(ni), sp, "ghost"); !errors.Is(err, common.ErrNotFound) {
			t.Fatalf("node %d: in-doubt insert resurfaced: %v", ni, err)
		}
		put(t, c.Node(ni), sp, fmt.Sprintf("after-%d", ni), "ok")
	}

	// The dead node rejoins under a fresh incarnation epoch and serves.
	n3b, err := c.RestartNode(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		key := fmt.Sprintf("k%03d", i)
		if v, err := get(t, n3b, sp, key); err != nil || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("restarted node: %s = %q, %v", key, v, err)
		}
	}
	put(t, n3b, sp, "rejoined", "yes")
	if v, _ := get(t, c.Node(1), sp, "rejoined"); v != "yes" {
		t.Fatal("write from the rejoined node not visible to peers")
	}
}

// TestRestartNodeUnderSurvivorTraffic rejoins a taken-over node while the
// survivors are committing at full tilt: the restart must not disturb them,
// and the rejoined node must see every row committed meanwhile.
func TestRestartNodeUnderSurvivorTraffic(t *testing.T) {
	c, sp := selfHealCluster(t, 3)
	put(t, c.Node(3), sp, "pre", "crash")
	if err := c.KillNode(3); err != nil {
		t.Fatal(err)
	}
	waitTakeovers(t, c, 1)

	var (
		mu        sync.Mutex
		committed []string
		stop      = make(chan struct{})
		wg        sync.WaitGroup
	)
	for ni := 1; ni <= 2; ni++ {
		ni := ni
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("t%d-k%04d", ni, i)
				tx, err := c.Node(ni).Begin()
				if err != nil {
					t.Errorf("node %d begin: %v", ni, err)
					return
				}
				if err := tx.Upsert(sp, []byte(key), []byte("v")); err != nil {
					t.Errorf("node %d upsert: %v", ni, err)
					_ = tx.Rollback()
					return
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("node %d commit: %v", ni, err)
					return
				}
				mu.Lock()
				committed = append(committed, key)
				mu.Unlock()
			}
		}()
	}

	time.Sleep(20 * time.Millisecond) // let traffic build
	n3, err := c.RestartNode(3)
	if err != nil {
		close(stop)
		wg.Wait()
		t.Fatal(err)
	}
	put(t, n3, sp, "during", "traffic") // the rejoined node serves immediately
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()

	mu.Lock()
	keys := append([]string(nil), committed...)
	mu.Unlock()
	if len(keys) == 0 {
		t.Fatal("survivors committed nothing")
	}
	for _, key := range append(keys, "pre", "during") {
		if v, err := get(t, n3, sp, key); err != nil || v != firstOf(key) {
			t.Fatalf("rejoined node: %s = %q, %v", key, v, err)
		}
	}
}

func firstOf(key string) string {
	switch key {
	case "pre":
		return "crash"
	case "during":
		return "traffic"
	}
	return "v"
}

// TestZombieCommitRejected fences a node while it has a transaction in
// flight and asserts the commit-time lease self-check aborts the
// transaction with ErrStaleEpoch instead of publishing it.
func TestZombieCommitRejected(t *testing.T) {
	c, sp := selfHealCluster(t, 2)
	n2 := c.Node(2)
	tx, err := n2.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(sp, []byte("zombie"), []byte("w")); err != nil {
		t.Fatal(err)
	}

	// Evict node 2 through the membership table the way a survivor would:
	// observe its heartbeat, then fence it. The heartbeat may advance
	// between the read and the eviction (a false suspicion); retry until
	// the observation sticks.
	conn := c.fabric.From(1)
	tbl := c.Members()
	won := false
	var evictEpoch common.Epoch
	for i := 0; i < 10000 && !won; i++ {
		var slot [24]byte
		if err := conn.Read(common.PMFSNode, membership.Region, membership.SlotOff(2), slot[:]); err != nil {
			t.Fatal(err)
		}
		hb := binary.LittleEndian.Uint64(slot[8:16])
		won, evictEpoch = tbl.Evict(1, 2, hb, tbl.CurrentEpoch())
	}
	if !won {
		t.Fatal("could not win the eviction")
	}

	// The zombie's agent latches its eviction on its next renewal tick.
	deadline := time.Now().Add(5 * time.Second)
	for !n2.agent.Evicted() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !n2.agent.Evicted() {
		t.Fatal("agent never observed its own eviction")
	}

	// The zombie is rejected either by the epoch gate (ErrStaleEpoch, before
	// any survivor finishes the takeover) or by the takeover's STONITH
	// (ErrNodeDown: node 1's detector notices the fenced slot and completes
	// the recovery on its own — it does not wait for the eviction winner).
	zombieRejected := func(err error) bool {
		return errors.Is(err, common.ErrStaleEpoch) || errors.Is(err, common.ErrNodeDown)
	}
	if err := tx.Commit(); !zombieRejected(err) {
		t.Fatalf("zombie commit = %v, want ErrStaleEpoch or ErrNodeDown", err)
	}
	if _, err := n2.Begin(); !zombieRejected(err) {
		t.Fatalf("begin on evicted node = %v, want ErrStaleEpoch or ErrNodeDown", err)
	}

	// An eviction winner owns the takeover, but any survivor's detector may
	// have finished it already; running it again is an idempotent no-op.
	c.takeover(2, evictEpoch, c.Node(1))
	if _, err := get(t, c.Node(1), sp, "zombie"); !errors.Is(err, common.ErrNotFound) {
		t.Fatalf("zombie write published: %v", err)
	}
}

// TestSlowNodeLosesLeaseAndAborts is the slow-but-alive regression: chaos
// delays every fabric op touching node 3 far past the lease timeout, so the
// survivors genuinely evict it while its process is still running with a
// transaction in flight. The stalled transaction must abort — via the lease
// self-check or the takeover's STONITH — and its write must never surface.
func TestSlowNodeLosesLeaseAndAborts(t *testing.T) {
	c, sp := selfHealCluster(t, 3)
	n3 := c.Node(3)
	tx, err := n3.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(sp, []byte("slow-zombie"), []byte("w")); err != nil {
		t.Fatal(err)
	}

	epoch0 := c.Stats().Membership.Epoch
	// The injected delay must exceed the lease timeout by a wide margin or
	// the crawling heartbeats still arrive in time.
	eng := chaos.MustNew(1, chaos.SlowNodePlan(3, time.Second))
	eng.Install(c.Fabric(), nil)
	waitTakeovers(t, c, 1)
	chaos.Uninstall(c.Fabric(), nil)

	err = tx.Commit()
	if err == nil {
		t.Fatal("commit on an evicted node succeeded")
	}
	if !errors.Is(err, common.ErrStaleEpoch) && !errors.Is(err, common.ErrNodeDown) &&
		!errors.Is(err, common.ErrClosed) && !errors.Is(err, common.ErrTxDone) {
		t.Fatalf("evicted commit = %v, want a fencing/shutdown error", err)
	}
	st := c.Stats()
	if st.Membership.Epoch <= epoch0 {
		t.Fatalf("epoch %d did not advance past %d", st.Membership.Epoch, epoch0)
	}
	for ni := 1; ni <= 2; ni++ {
		if _, err := get(t, c.Node(ni), sp, "slow-zombie"); !errors.Is(err, common.ErrNotFound) {
			t.Fatalf("node %d: evicted node's write published: %v", ni, err)
		}
	}
}

// TestCrashRestartTypedErrors pins the crash/restart API contract: unknown
// ids are ErrUnknownNode, double-crashes are idempotent ErrNodeDown, and
// neither has side effects.
func TestCrashRestartTypedErrors(t *testing.T) {
	c, sp := testCluster(t, 2)
	put(t, c.Node(1), sp, "k", "v")

	if err := c.CrashNode(0); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("CrashNode(0) = %v, want ErrUnknownNode", err)
	}
	if err := c.CrashNode(99); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("CrashNode(99) = %v, want ErrUnknownNode", err)
	}
	if err := c.KillNode(99); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("KillNode(99) = %v, want ErrUnknownNode", err)
	}
	if _, err := c.RestartNode(99); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("RestartNode(99) = %v, want ErrUnknownNode", err)
	}

	if err := c.CrashNode(2); err != nil {
		t.Fatalf("CrashNode(2) = %v", err)
	}
	if err := c.CrashNode(2); !errors.Is(err, common.ErrNodeDown) {
		t.Fatalf("second CrashNode(2) = %v, want ErrNodeDown", err)
	}
	if err := c.KillNode(2); !errors.Is(err, common.ErrNodeDown) {
		t.Fatalf("KillNode on down node = %v, want ErrNodeDown", err)
	}

	// The errors had no side effects: node 1 still serves, node 2 restarts.
	if v, err := get(t, c.Node(1), sp, "k"); err != nil || v != "v" {
		t.Fatalf("node 1 disturbed: %q, %v", v, err)
	}
	if _, err := c.RestartNode(2); err != nil {
		t.Fatalf("RestartNode(2) = %v", err)
	}
	if _, err := c.RestartNode(2); err == nil {
		t.Fatal("RestartNode on a live node succeeded")
	}
}
