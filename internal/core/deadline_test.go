package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"polardbmp/internal/common"
)

// TestTxDeadlineRowLockAbort: a deadline-bounded transaction parked behind
// another transaction's row lock must give up with ErrDeadlineExceeded when
// its budget runs out — well before the cluster-wide LockWaitTimeout
// backstop — and the abort must be visible in the overload stats.
func TestTxDeadlineRowLockAbort(t *testing.T) {
	c, sp := testCluster(t, 2)
	n0, n1 := c.Node(1), c.Node(2)

	put(t, n0, sp, "k", "v0")

	// tx1 takes the row X lock and sits on it.
	tx1, err := n0.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx1.Update(sp, []byte("k"), []byte("held")); err != nil {
		t.Fatal(err)
	}

	before := c.Stats().Overload.DeadlineAborts

	tx2, err := n1.BeginDeadline(ReadCommitted, common.DeadlineAfter(60*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err = tx2.Update(sp, []byte("k"), []byte("bounded"))
	elapsed := time.Since(start)
	if !errors.Is(err, common.ErrDeadlineExceeded) {
		t.Fatalf("bounded update behind row lock: err = %v, want ErrDeadlineExceeded", err)
	}
	// The 2s LockWaitTimeout backstop must not be what fired.
	if elapsed > time.Second {
		t.Fatalf("bounded update took %v; deadline (60ms) should have bounded the wait", elapsed)
	}
	tx2.Rollback()

	if after := c.Stats().Overload.DeadlineAborts; after <= before {
		t.Errorf("Overload.DeadlineAborts = %d, want > %d", after, before)
	}

	// The held lock is still good: tx1 commits, and a fresh bounded tx with
	// an ample budget succeeds.
	mustCommit(t, tx1)
	tx3, err := n1.BeginDeadline(ReadCommitted, common.DeadlineAfter(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if err := tx3.Update(sp, []byte("k"), []byte("after")); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx3)
	if v, err := get(t, n0, sp, "k"); err != nil || v != "after" {
		t.Fatalf("get after bounded commit: %q, %v", v, err)
	}
}

// TestBeginDeadlineExpired: an already-spent budget fails at Begin, before
// any TIT slot or trace state is allocated.
func TestBeginDeadlineExpired(t *testing.T) {
	c, _ := testCluster(t, 1)
	dl := common.DeadlineAt(time.Now().Add(-time.Millisecond))
	if _, err := c.Node(1).BeginDeadline(ReadCommitted, dl); !errors.Is(err, common.ErrDeadlineExceeded) {
		t.Fatalf("BeginDeadline(expired) = %v, want ErrDeadlineExceeded", err)
	}
}

// TestDeadlineTxUsesPrivateTrees pins the routing invariant the zero-cost
// claim rests on: an unbounded untraced transaction walks the node's shared
// trees, while a deadline-bounded one builds private trees over tracePager
// so the budget rides into PLock acquires and page fetches.
func TestDeadlineTxUsesPrivateTrees(t *testing.T) {
	c, sp := testCluster(t, 1)
	n := c.Node(1)
	put(t, n, sp, "k", "v")

	plain, err := n.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Rollback()
	shared, err := n.tree(sp)
	if err != nil {
		t.Fatal(err)
	}
	if pt, err := plain.tree(sp); err != nil || pt != shared {
		t.Fatalf("unbounded tx tree = %p (err %v), want shared %p", pt, err, shared)
	}

	bounded, err := n.BeginDeadline(ReadCommitted, common.DeadlineAfter(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	defer bounded.Rollback()
	if pt, err := bounded.tree(sp); err != nil || pt == shared {
		t.Fatalf("bounded tx tree = %p (err %v), want private (shared is %p)", pt, err, shared)
	}
}

// TestDeadlineCheckZeroAllocs is the alloc guard for the statement/commit
// deadline checkpoints: on an untraced transaction with no budget set,
// checkDeadline must be allocation-free, so threading it through Get, Scan,
// the write path, and Commit adds nothing to the hot path. (The Deadline
// type's own methods are covered by TestDeadlineZeroAllocs in common.)
func TestDeadlineCheckZeroAllocs(t *testing.T) {
	c, _ := testCluster(t, 1)
	tx, err := c.Node(1).Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback()

	if avg := testing.AllocsPerRun(1000, func() {
		if err := tx.checkDeadline(); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("checkDeadline (no deadline, untraced): %.1f allocs/op, want 0", avg)
	}
}

// TestCommitAllocBudget locks down allocations on the warm untraced
// no-deadline single-row update commit — the same fixture as
// TestCommitFabricOpBudget, measured in allocs instead of fabric verbs. The
// budget has headroom over the measured value; what it catches is a change
// that quietly routes the unbounded path through private trees or adds
// per-statement allocation to the deadline checkpoints.
func TestCommitAllocBudget(t *testing.T) {
	c := NewCluster(Config{
		LockWaitTimeout: 2 * time.Second,
		RecycleInterval: -1,
	})
	for i := 0; i < 2; i++ {
		if _, err := c.AddNode(); err != nil {
			t.Fatal(err)
		}
	}
	sp, err := c.CreateSpace("t")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	n := c.Node(1)

	for i := 0; i < 5; i++ {
		put(t, n, sp, "k", fmt.Sprintf("warm%d", i))
	}

	i := 0
	avg := testing.AllocsPerRun(64, func() {
		tx, err := n.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Update(sp, []byte("k"), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		i++
	})
	t.Logf("warm untraced update commit: %.1f allocs/op", avg)
	const budget = 48
	if avg > budget {
		t.Errorf("warm untraced update commit: %.1f allocs/op, budget %d", avg, budget)
	}
}
