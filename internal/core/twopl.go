package core

import (
	"errors"
	"fmt"
	"time"

	"polardbmp/internal/bufferfusion"
	"polardbmp/internal/common"
	"polardbmp/internal/lockfusion"
	"polardbmp/internal/page"
	"polardbmp/internal/trace"
)

// twoPL is the paper's pessimistic engine (§4.3.2): a write claims its row
// at statement time by prepending a version under the X leaf PLock, and
// conflicting writers wait through Lock Fusion. Commit needs no validation —
// every written row is already exclusively owned — so Prepare is a no-op and
// the commit pipeline runs directly.
type twoPL struct{}

func (twoPL) Name() string { return CC2PL }

// StagedRead: 2PL stages nothing — own writes live in the pages and are
// picked up by version-chain visibility (visibleValue treats own-trx
// versions as always visible).
func (twoPL) StagedRead(*Tx, common.SpaceID, []byte) ([]byte, bool, bool) {
	return nil, false, false
}

func (twoPL) StagedRange(*Tx, common.SpaceID, []byte, []byte) []stagedKV { return nil }

// Prepare: nothing to validate; row claims happened statement-time.
func (twoPL) Prepare(*Tx) error { return nil }

// Write implements the locking write path of §4.3.2: descend to the leaf
// under X PLock; if the row's newest version belongs to another active
// transaction, wait through Lock Fusion and retry; otherwise prepend the
// new version (writing our g_trx_id claims the row lock).
func (twoPL) Write(tx *Tx, space common.SpaceID, key, value []byte, op writeOp) error {
	t, err := tx.tree(space)
	if err != nil {
		return err
	}
	need := len(key) + len(value) + 64
	for attempt := 0; ; attempt++ {
		if attempt > 0 && attempt%64 == 0 {
			// Pathological contention (e.g. a holder mid-recovery):
			// back off instead of spinning on the fabric.
			time.Sleep(time.Millisecond)
		}
		ref, err := t.LeafSafe(key, lockfusion.ModeX)
		if err != nil {
			return err
		}
		frame := ref.Opaque.(*bufferfusion.Frame)

		// Make room first: purge dead versions (refreshing the global
		// minimum view synchronously if the stale one isn't enough),
		// then split if needed. A single hot row whose version chain
		// fills the page cannot be split; its old versions become
		// purgeable as soon as concurrent views advance, so back off
		// and retry.
		if ref.Page.SizeEstimate()+need > page.SplitThreshold {
			if ref.Page.Purge(tx.n.tf.LastGMV(), tx.n.batchResolver(ref.Page)) > 0 {
				frame.Dirty = true
			}
			if ref.Page.SizeEstimate()+need > page.SplitThreshold {
				if _, err := tx.n.tf.ReportMinView(); err == nil {
					if ref.Page.Purge(tx.n.tf.LastGMV(), tx.n.batchResolver(ref.Page)) > 0 {
						frame.Dirty = true
					}
				}
			}
			if ref.Page.SizeEstimate()+need > page.SplitThreshold {
				canSplit := len(ref.Page.Rows) >= 2
				tx.n.releasePager(ref)
				if !canSplit {
					time.Sleep(200 * time.Microsecond)
					continue
				}
				if err := t.SplitFor(key, need); err != nil {
					return err
				}
				continue
			}
		}

		row := ref.Page.Find(key)
		var head *page.Version
		if row != nil {
			head = row.Head()
		}

		// Row-lock check: the newest version's writer still active?
		if head != nil && head.Trx != tx.g && !head.Trx.Zero() && head.CTS == common.CSNInit {
			if cts := tx.n.resolveCTS(head); cts == common.CSNMax {
				holder := head.Trx
				tx.n.releasePager(ref)
				wtok := tx.tr.Start()
				err := tx.n.rl.WaitForDeadline(tx.g, holder, tx.deadline)
				tx.tr.Observe(trace.StageRowLockWait, wtok)
				if err != nil {
					if errors.Is(err, common.ErrDeadlock) {
						tx.n.Deadlocks.Inc()
					} else if errors.Is(err, common.ErrDeadlineExceeded) {
						tx.n.DeadlineAborts.Inc()
						tx.tr.Mark(trace.StageDeadlineAbort, wtok)
					}
					return err
				}
				continue // re-examine the row
			}
		}

		// Existence semantics against the latest (now unlocked or our
		// own) version.
		exists := head != nil && !head.Deleted
		switch op {
		case opInsert:
			if exists {
				tx.n.releasePager(ref)
				return fmt.Errorf("core: key %q: %w", key, common.ErrKeyExists)
			}
		case opUpdate, opDelete, opLockRow:
			if !exists {
				tx.n.releasePager(ref)
				return fmt.Errorf("core: key %q: %w", key, common.ErrNotFound)
			}
		}
		if op == opLockRow {
			if head.Trx == tx.g {
				// Already locked by us; nothing to do.
				tx.n.releasePager(ref)
				return nil
			}
			value = append([]byte(nil), head.Value...)
		}

		tx.mutate(ref, frame, space, key, value, op == opDelete)
		tx.n.releasePager(ref)
		return nil
	}
}
