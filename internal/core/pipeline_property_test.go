package core

import (
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"polardbmp/internal/common"
	"polardbmp/internal/storage"
)

// pipelineCluster builds an n-node cluster with enough injected log-flush
// latency that the commit pipeline engages (SyncLatency >= pipeFastRound).
func pipelineCluster(t testing.TB, n int, logAppend time.Duration) (*Cluster, common.SpaceID) {
	t.Helper()
	c := NewCluster(Config{
		StorageLatency:  storage.Latency{LogAppend: logAppend},
		LockWaitTimeout: 5 * time.Second,
		RecycleInterval: 5 * time.Millisecond,
	})
	for i := 0; i < n; i++ {
		if _, err := c.AddNode(); err != nil {
			t.Fatal(err)
		}
	}
	sp, err := c.CreateSpace("t")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, sp
}

// TestPropertyCTSNotVisibleBeforeDurableStall pins the §14 durability
// ordering: pipelined group commit must not let any other node resolve a
// transaction's CTS before the transaction's commit record is durable.
// Storage is stalled (every log sync of the writer's stream delayed 80ms),
// a writer commits into the stall, and node 2 observes two ways:
//
//   - a direct TIT probe of the writer's transaction (GetTrxCTS), which must
//     keep answering "still active" for as long as the stalled sync holds
//     the commit record short of durability;
//   - page reads of the row, where any sighting of the new value is checked
//     against the stream's frontiers at return time.
//
// Both checks use the same race-free invariant: the durable frontier only
// grows, so if an observation of the committed state returns while
// durable < end, the publication necessarily ran ahead of the log_sync
// durability point. (A wall-clock window would be wrong here: a page read
// that starts inside the stall blocks on the flush-before-PLock-release
// force-log and legitimately returns the new value after durability.)
func TestPropertyCTSNotVisibleBeforeDurableStall(t *testing.T) {
	c, sp := pipelineCluster(t, 2, 200*time.Microsecond)
	put(t, c.Node(1), sp, "k", "old")

	var stall atomic.Bool
	c.store.SetInjector(func(op common.FaultOp) common.FaultDecision {
		if op.Class == common.FaultLogSync && stall.Load() {
			return common.FaultDecision{Delay: 80 * time.Millisecond}
		}
		return common.FaultDecision{}
	})
	stall.Store(true)
	// A round that entered the store before the stall flipped is not
	// delayed, and its durable capture at completion would legitimately
	// cover the writer's append. Let in-flight rounds drain so every round
	// covering the commit below goes through the stalled path.
	time.Sleep(20 * time.Millisecond)

	w := c.Node(1).wal
	gtrx := make(chan common.GTrxID, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		tx, err := c.Node(1).Begin()
		if err != nil {
			t.Error(err)
			return
		}
		if err := tx.Update(sp, []byte("k"), []byte("new")); err != nil {
			tx.Rollback()
			t.Error(err)
			return
		}
		gtrx <- tx.GTrxID()
		if err := tx.Commit(); err != nil {
			t.Error(err)
		}
	}()
	g := <-gtrx

	// Page observer: every sighting of "new" must find the commit record
	// already durable. Runs in its own goroutine because a read that
	// arrives mid-stall parks ~80ms on the revoke-path log force.
	pstop := make(chan struct{})
	var pwg sync.WaitGroup
	pwg.Add(1)
	go func() {
		defer pwg.Done()
		for {
			got, err := get(t, c.Node(2), sp, "k")
			if err != nil {
				t.Error(err)
				return
			}
			if got == "new" {
				if d, e := w.Durable(), w.End(); d < e {
					t.Errorf("saw %q before the writer's log_sync durability point (durable=%d end=%d)", got, d, e)
				}
				return
			}
			select {
			case <-pstop:
				return
			case <-time.After(2 * time.Millisecond):
			}
		}
	}()

	// TIT observer: poll the transaction's CTS from node 2. While the
	// stalled sync holds the commit record short of durability the slot
	// must answer CSNMax ("active"); once a committed CSN is visible the
	// durable frontier must already cover the append frontier.
	activePolls := 0
	for committed := false; !committed && !t.Failed(); {
		cts, err := c.Node(2).TxFusion().GetTrxCTS(g)
		if err != nil {
			t.Fatal(err)
		}
		if cts < common.CSNMax {
			committed = true
			if d, e := w.Durable(), w.End(); d < e {
				t.Errorf("CTS %d visible from node 2 before durability (durable=%d end=%d)", cts, d, e)
			}
		} else {
			activePolls++
			time.Sleep(time.Millisecond)
		}
		// Lift the stall once the stalled window has been well observed so
		// the commit (and this loop) can finish.
		if activePolls == 50 {
			stall.Store(false)
		}
	}
	stall.Store(false)
	<-done
	close(pstop)
	pwg.Wait()
	if t.Failed() {
		return
	}
	// The stall must have produced a real observation window: dozens of
	// polls answered "active" while the sync was held up.
	if activePolls < 10 {
		t.Fatalf("stall produced no observation window (%d active polls)", activePolls)
	}
	// With the stall lifted the update must become visible to node 2.
	var got string
	for i := 0; i < 400; i++ {
		var err error
		got, err = get(t, c.Node(2), sp, "k")
		if err != nil {
			t.Fatal(err)
		}
		if got == "new" {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if got != "new" {
		t.Fatalf("update never became visible after stall: %q", got)
	}
	if w.Durable() < w.End() {
		t.Fatalf("commit finished with durable=%d < end=%d", w.Durable(), w.End())
	}
	if c.Stats().Commit.PipelineRounds == 0 {
		t.Fatal("commit pipeline never ran a round")
	}
}

// TestPropertyPipelineCorrectUnderChaosDelays drives both CC engines through
// the pipeline's degraded paths: a fault injector delays every per-stream
// log sync by a random 0–3ms and, by its mere presence, forces every batch
// round to fall back to per-stream syncs (the "drop" path). Counters bumped
// from every node must end exactly at the commit count (no lost updates, no
// commit acknowledged without its effects), and a reader's observations of
// each counter must be monotone (no CTS visible early, then retracted).
func TestPropertyPipelineCorrectUnderChaosDelays(t *testing.T) {
	for _, cc := range []string{CC2PL, CCOCC} {
		cc := cc
		t.Run(cc, func(t *testing.T) {
			c := NewCluster(Config{
				CC:              cc,
				StorageLatency:  storage.Latency{LogAppend: 100 * time.Microsecond},
				LockWaitTimeout: 5 * time.Second,
				RecycleInterval: 5 * time.Millisecond,
			})
			t.Cleanup(c.Close)
			const nodes = 3
			for i := 0; i < nodes; i++ {
				if _, err := c.AddNode(); err != nil {
					t.Fatal(err)
				}
			}
			sp, err := c.CreateSpace("t")
			if err != nil {
				t.Fatal(err)
			}
			for n := 1; n <= nodes; n++ {
				put(t, c.Node(1), sp, fmt.Sprintf("ctr%d", n), "0")
			}

			var rngMu sync.Mutex
			rng := rand.New(rand.NewSource(7))
			c.store.SetInjector(func(op common.FaultOp) common.FaultDecision {
				if op.Class != common.FaultLogSync {
					return common.FaultDecision{}
				}
				rngMu.Lock()
				d := time.Duration(rng.Intn(3000)) * time.Microsecond
				rngMu.Unlock()
				return common.FaultDecision{Delay: d}
			})

			commits := make([]atomic.Int64, nodes+1)
			var wg sync.WaitGroup
			for n := 1; n <= nodes; n++ {
				wg.Add(1)
				go func(n int) {
					defer wg.Done()
					node := c.Node(n)
					key := []byte(fmt.Sprintf("ctr%d", n))
					for i := 0; i < 25; i++ {
						for {
							tx, err := node.Begin()
							if err != nil {
								t.Error(err)
								return
							}
							raw, err := tx.GetForUpdate(sp, key)
							if err != nil {
								tx.Rollback()
								if common.IsRetryable(err) {
									continue
								}
								t.Error(err)
								return
							}
							v, _ := strconv.Atoi(string(raw))
							err = tx.Update(sp, key, []byte(strconv.Itoa(v+1)))
							if err == nil {
								err = tx.Commit()
							} else {
								tx.Rollback()
							}
							if err == nil {
								commits[n].Add(1)
								break
							}
							if !common.IsRetryable(err) {
								t.Error(err)
								return
							}
						}
					}
				}(n)
			}

			// Reader: per-counter observations must never regress.
			stop := make(chan struct{})
			var rwg sync.WaitGroup
			rwg.Add(1)
			go func() {
				defer rwg.Done()
				last := make([]int, nodes+1)
				for {
					select {
					case <-stop:
						return
					default:
					}
					for n := 1; n <= nodes; n++ {
						got, err := get(t, c.Node(2), sp, fmt.Sprintf("ctr%d", n))
						if err != nil {
							t.Error(err)
							return
						}
						v, _ := strconv.Atoi(got)
						if v < last[n] {
							t.Errorf("ctr%d regressed: %d after %d", n, v, last[n])
							return
						}
						last[n] = v
					}
				}
			}()

			wg.Wait()
			close(stop)
			rwg.Wait()
			if t.Failed() {
				return
			}
			for n := 1; n <= nodes; n++ {
				got, err := get(t, c.Node((n%nodes)+1), sp, fmt.Sprintf("ctr%d", n))
				if err != nil {
					t.Fatal(err)
				}
				if got != strconv.Itoa(int(commits[n].Load())) {
					t.Fatalf("ctr%d = %s, commits = %d (engine %s)", n, got, commits[n].Load(), cc)
				}
			}
		})
	}
}
