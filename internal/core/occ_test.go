package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"polardbmp/internal/common"
)

func newOCCCluster(t *testing.T, nodes int) (*Cluster, common.SpaceID) {
	t.Helper()
	c := NewCluster(Config{CC: CCOCC})
	for i := 0; i < nodes; i++ {
		if _, err := c.AddNode(); err != nil {
			t.Fatalf("AddNode: %v", err)
		}
	}
	sp, err := c.CreateSpace("t")
	if err != nil {
		t.Fatalf("CreateSpace: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c, sp
}

// TestOCCReadYourWrites: staged writes must shadow the pages for the
// transaction's own point reads and scans before commit, and land for
// everyone after.
func TestOCCReadYourWrites(t *testing.T) {
	c, sp := newOCCCluster(t, 1)
	n := c.Node(1)
	tx, err := n.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(sp, []byte("a"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	got, err := tx.Get(sp, []byte("a"))
	if err != nil || string(got) != "v1" {
		t.Fatalf("own staged read = %q, %v", got, err)
	}
	if err := tx.Update(sp, []byte("a"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	kvs, err := tx.Scan(sp, []byte("a"), nil, 10)
	if err != nil || len(kvs) != 1 || string(kvs[0].Value) != "v2" {
		t.Fatalf("own staged scan = %v, %v", kvs, err)
	}
	if err := tx.Delete(sp, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Get(sp, []byte("a")); !errors.Is(err, common.ErrNotFound) {
		t.Fatalf("staged delete read err = %v, want ErrNotFound", err)
	}
	// Re-insert and commit; the row must be visible cluster-wide.
	if err := tx.Insert(sp, []byte("a"), []byte("v3")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2, err := n.Begin()
	if err != nil {
		t.Fatal(err)
	}
	got, err = tx2.Get(sp, []byte("a"))
	if err != nil || string(got) != "v3" {
		t.Fatalf("post-commit read = %q, %v", got, err)
	}
	_ = tx2.Rollback()
}

// TestOCCFirstUpdaterWins: two transactions staging a write against the same
// base version — the second committer must fail validation with the
// retryable ErrWriteConflict and apply nothing.
func TestOCCFirstUpdaterWins(t *testing.T) {
	c, sp := newOCCCluster(t, 2)
	n1, n2 := c.Node(1), c.Node(2)
	seed, err := n1.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Insert(sp, []byte("k"), []byte("0")); err != nil {
		t.Fatal(err)
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}

	t1, err := n1.Begin()
	if err != nil {
		t.Fatal(err)
	}
	t2, err := n2.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := t1.Update(sp, []byte("k"), []byte("t1")); err != nil {
		t.Fatal(err)
	}
	if err := t2.Update(sp, []byte("k"), []byte("t2")); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatalf("first committer: %v", err)
	}
	err = t2.Commit()
	if !errors.Is(err, common.ErrWriteConflict) {
		t.Fatalf("second committer err = %v, want ErrWriteConflict", err)
	}
	if !common.IsRetryable(err) {
		t.Fatalf("conflict not retryable: %v", err)
	}
	if got := n2.Conflicts.Load(); got == 0 {
		t.Fatal("Conflicts counter not incremented")
	}
	check, err := n2.Begin()
	if err != nil {
		t.Fatal(err)
	}
	got, err := check.Get(sp, []byte("k"))
	if err != nil || string(got) != "t1" {
		t.Fatalf("winner's value = %q, %v", got, err)
	}
	_ = check.Rollback()
}

// TestOCCGetForUpdateConflict: GetForUpdate stages an identity write, so a
// read-modify-write race loses at commit instead of losing the update.
func TestOCCGetForUpdateConflict(t *testing.T) {
	c, sp := newOCCCluster(t, 2)
	n1, n2 := c.Node(1), c.Node(2)
	seed, err := n1.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Insert(sp, []byte("cnt"), []byte("0")); err != nil {
		t.Fatal(err)
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}

	t1, _ := n1.Begin()
	t2, _ := n2.Begin()
	if _, err := t1.GetForUpdate(sp, []byte("cnt")); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.GetForUpdate(sp, []byte("cnt")); err != nil {
		t.Fatal(err)
	}
	if err := t1.Update(sp, []byte("cnt"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	// t2's staged identity write was based on the old head: must conflict
	// even though t2 never re-wrote the key.
	if err := t2.Commit(); !errors.Is(err, common.ErrWriteConflict) {
		t.Fatalf("racing GetForUpdate commit err = %v, want ErrWriteConflict", err)
	}
}

// TestOCCConcurrentCounter: N workers increment one counter with app-level
// conflict retries; the final value must equal the number of successful
// commits (no lost updates).
func TestOCCConcurrentCounter(t *testing.T) {
	c, sp := newOCCCluster(t, 4)
	seed, _ := c.Node(1).Begin()
	if err := seed.Insert(sp, []byte("cnt"), []byte{0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}
	const workers, increments = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := c.Node(w%4 + 1)
			for i := 0; i < increments; i++ {
				for {
					tx, err := n.Begin()
					if err != nil {
						t.Error(err)
						return
					}
					v, err := tx.GetForUpdate(sp, []byte("cnt"))
					if err == nil {
						nv := []byte{v[0] + 1, v[1]}
						if nv[0] == 0 {
							nv[1] = v[1] + 1
						}
						err = tx.Update(sp, []byte("cnt"), nv)
					}
					if err == nil {
						err = tx.Commit()
					} else {
						_ = tx.Rollback()
					}
					if err == nil {
						break
					}
					if !common.IsRetryable(err) {
						t.Errorf("worker %d: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	tx, _ := c.Node(1).Begin()
	v, err := tx.Get(sp, []byte("cnt"))
	if err != nil {
		t.Fatal(err)
	}
	got := int(v[0]) + 256*int(v[1])
	if want := workers * increments; got != want {
		t.Fatalf("counter = %d, want %d (lost updates)", got, want)
	}
	_ = tx.Rollback()
}

// TestOCCScanOverlayMerge exercises mergeStaged's three paths (replace,
// delete-shadow, splice) against committed rows.
func TestOCCScanOverlayMerge(t *testing.T) {
	c, sp := newOCCCluster(t, 1)
	n := c.Node(1)
	seed, _ := n.Begin()
	for i := 0; i < 5; i++ {
		k := []byte(fmt.Sprintf("k%02d", i))
		if err := seed.Insert(1, k, []byte("old")); err != nil {
			t.Fatal(err)
		}
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}
	tx, _ := n.Begin()
	if err := tx.Update(sp, []byte("k01"), []byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete(sp, []byte("k03")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(sp, []byte("k02x"), []byte("ins")); err != nil {
		t.Fatal(err)
	}
	kvs, err := tx.Scan(sp, []byte("k00"), []byte("k99"), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"k00": "old", "k01": "new", "k02": "old", "k02x": "ins", "k04": "old"}
	if len(kvs) != len(want) {
		t.Fatalf("scan returned %d rows, want %d: %v", len(kvs), len(want), kvs)
	}
	for i, kv := range kvs {
		if i > 0 && string(kvs[i-1].Key) >= string(kv.Key) {
			t.Fatalf("scan out of order at %d: %v", i, kvs)
		}
		if want[string(kv.Key)] != string(kv.Value) {
			t.Fatalf("key %q = %q, want %q", kv.Key, kv.Value, want[string(kv.Key)])
		}
	}
	_ = tx.Rollback()
}
