package core

import (
	"fmt"
	"testing"
	"time"
)

// TestCommitFabricOpBudget locks down the per-commit fabric cost of the hot
// path: a warmed single-row read-committed update commit on a quiet 2-node
// cluster. The batching work (doorbell verbs, TSO group allocation, vectored
// CTS stamping/push) exists to keep these numbers small; a regression that
// splits a batch back into per-item verbs trips this test.
//
// The documented budget per commit (see DESIGN.md §9); the warm
// uncontended path measures reads=0, writes=0, atomics=1, rpcs=0 — the
// whole commit is one TSO fetch-add, because the commit-time page push is
// reserved for pages a peer is waiting on:
//
//   - atomics ≤ 1: one TSO fetch-add (zero when the commit-time combiner
//     folds it into a neighbour's block);
//   - reads ≤ 1: commit-path TIT/GMV lookups; warm caches need none;
//   - writes ≤ 2: one vectored doorbell push of every contended touched
//     page image, plus headroom for a TIT write when the slot is remote;
//   - RPCs ≤ 3: the two Buffer Fusion control batches (prepare-push,
//     pushed) that bracket the vectored image write, plus headroom for one
//     lock RPC when lazy retention misses.
//
// Background TIT recycling is disabled so the deltas below belong to the
// measured commit alone.
func TestCommitFabricOpBudget(t *testing.T) {
	c := NewCluster(Config{
		LockWaitTimeout: 2 * time.Second,
		RecycleInterval: -1, // no background min-view / recycle traffic
	})
	for i := 0; i < 2; i++ {
		if _, err := c.AddNode(); err != nil {
			t.Fatal(err)
		}
	}
	sp, err := c.CreateSpace("t")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	n := c.Node(1)

	put(t, n, sp, "k", "v0")
	// Warm the path: lazy PLocks held, LBP frames resident, Lamport
	// timestamp cache and Buffer Fusion directory populated.
	for i := 0; i < 4; i++ {
		put(t, n, sp, "k", fmt.Sprintf("warm%d", i))
	}

	const commits = 8
	before := c.Stats()
	for i := 0; i < commits; i++ {
		tx, err := n.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Update(sp, []byte("k"), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
	}
	after := c.Stats()

	per := func(a, b int64) float64 { return float64(a-b) / commits }
	reads := per(after.Fabric.Reads, before.Fabric.Reads)
	writes := per(after.Fabric.Writes, before.Fabric.Writes)
	atomics := per(after.Fabric.Atomics, before.Fabric.Atomics)
	rpcs := per(after.Fabric.RPCs, before.Fabric.RPCs)
	t.Logf("per-commit fabric ops: reads=%.2f writes=%.2f atomics=%.2f rpcs=%.2f",
		reads, writes, atomics, rpcs)

	if atomics > 1 {
		t.Errorf("atomics/commit = %.2f, budget 1 (TSO fetch-add)", atomics)
	}
	if reads > 1 {
		t.Errorf("reads/commit = %.2f, budget 1", reads)
	}
	if writes > 2 {
		t.Errorf("writes/commit = %.2f, budget 2 (vectored push + TIT headroom)", writes)
	}
	if rpcs > 3 {
		t.Errorf("rpcs/commit = %.2f, budget 3 (prepare-push/pushed batches + lock headroom)", rpcs)
	}
}
