package core

import (
	"fmt"

	"polardbmp/internal/btree"
	"polardbmp/internal/bufferfusion"
	"polardbmp/internal/common"
	"polardbmp/internal/lockfusion"
	"polardbmp/internal/page"
	"polardbmp/internal/wal"
)

// pager adapts a Node to btree.Pager: every page access stacks the PLock
// (inter-node), the LBP fetch with coherence (Buffer Fusion), and the frame
// latch (intra-node), in that order; LLSNs of read pages fold into the
// node's counter (§4.4).
type pager Node

func (p *pager) node() *Node { return (*Node)(p) }

// Acquire implements btree.Pager.
func (p *pager) Acquire(pg common.PageID, mode lockfusion.Mode) (*btree.Ref, error) {
	n := p.node()
	if err := n.pl.Acquire(pg, mode); err != nil {
		return nil, err
	}
	f, err := n.lbp.Get(pg)
	if err != nil {
		n.pl.Release(pg)
		return nil, err
	}
	if mode == lockfusion.ModeX {
		f.Mu.Lock()
	} else {
		f.Mu.RLock()
	}
	// Read f.Pg only under the latch: a concurrent coherence refresh may
	// have replaced the decoded page.
	n.llsn.Observe(f.Pg.LLSN)
	return &btree.Ref{Page: f.Pg, Mode: mode, Opaque: f}, nil
}

// Release implements btree.Pager.
func (p *pager) Release(ref *btree.Ref) {
	n := p.node()
	f := ref.Opaque.(*bufferfusion.Frame)
	if ref.Mode == lockfusion.ModeX {
		f.Mu.Unlock()
	} else {
		f.Mu.RUnlock()
	}
	id := f.ID()
	n.lbp.Unpin(f)
	n.pl.Release(id)
}

// AllocPage implements btree.Pager: a fresh page, X-locked, latched, dirty.
func (p *pager) AllocPage(space common.SpaceID, t page.Type, level uint8) (*btree.Ref, error) {
	n := p.node()
	id := n.c.store.AllocPage()
	if err := n.pl.Acquire(id, lockfusion.ModeX); err != nil {
		return nil, err
	}
	pg := page.New(id, space, t)
	pg.Level = level
	f, err := n.lbp.NewPage(pg)
	if err != nil {
		n.pl.Release(id)
		return nil, err
	}
	f.Mu.Lock()
	return &btree.Ref{Page: f.Pg, Mode: lockfusion.ModeX, Opaque: f}, nil
}

// LogImage implements btree.Pager: physical logging for SMOs and page
// creation. The caller holds the page in X.
func (p *pager) LogImage(ref *btree.Ref) {
	n := p.node()
	llsn := n.llsn.Next()
	ref.Page.LLSN = llsn
	img, err := ref.Page.Marshal()
	if err != nil {
		// Only a missed split or an over-large row can get here; both
		// are engine bugs, not runtime conditions.
		panic(fmt.Sprintf("core: node %d: %v", n.id, err))
	}
	end := n.wal.Append(&wal.Record{
		Type:  wal.RecPageImage,
		Node:  n.id,
		LLSN:  llsn,
		Page:  ref.Page.ID,
		Space: ref.Page.Space,
		Image: img,
	})
	f := ref.Opaque.(*bufferfusion.Frame)
	f.Dirty = true
	if end > f.FlushLSN {
		f.FlushLSN = end
	}
}
