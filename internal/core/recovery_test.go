package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"polardbmp/internal/common"
)

func TestNodeRestartDurability(t *testing.T) {
	c, sp := testCluster(t, 2)
	// Committed data from node 1, including un-checkpointed pages.
	for i := 0; i < 50; i++ {
		put(t, c.Node(1), sp, fmt.Sprintf("k%03d", i), fmt.Sprintf("v%d", i))
	}
	c.CrashNode(1)
	n1, err := c.RestartNode(1)
	if err != nil {
		t.Fatal(err)
	}
	// The fence is lifted after recovery: peers write again immediately.
	put(t, c.Node(2), sp, "peer", "alive")
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%03d", i)
		want := fmt.Sprintf("v%d", i)
		if v, err := get(t, n1, sp, key); err != nil || v != want {
			t.Fatalf("%s after restart = %q, %v", key, v, err)
		}
	}
	if v, _ := get(t, n1, sp, "peer"); v != "alive" {
		t.Fatal("peer write lost")
	}
}

func TestNodeCrashRollsBackUncommitted(t *testing.T) {
	c, sp := testCluster(t, 2)
	put(t, c.Node(1), sp, "k", "committed")

	// Node 1 leaves an uncommitted update behind, then crashes.
	tx, _ := c.Node(1).Begin()
	if err := tx.Update(sp, []byte("k"), []byte("uncommitted")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(sp, []byte("ghost"), []byte("boo")); err != nil {
		t.Fatal(err)
	}
	// Force the dirty state into the log (simulates the log racing ahead
	// of the commit record).
	c.Node(1).wal.Sync(c.Node(1).wal.End())
	c.CrashNode(1)

	if _, err := c.RestartNode(1); err != nil {
		t.Fatal(err)
	}
	if v, err := get(t, c.Node(2), sp, "k"); err != nil || v != "committed" {
		t.Fatalf("k after recovery = %q, %v", v, err)
	}
	if _, err := get(t, c.Node(2), sp, "ghost"); !errors.Is(err, common.ErrNotFound) {
		t.Fatalf("ghost row survived recovery: %v", err)
	}
}

func TestCrashedNodeRowsResolveAfterRecovery(t *testing.T) {
	c, sp := testCluster(t, 2)
	put(t, c.Node(1), sp, "k", "old")

	tx, _ := c.Node(1).Begin()
	if err := tx.Update(sp, []byte("k"), []byte("locked")); err != nil {
		t.Fatal(err)
	}
	c.Node(1).wal.Sync(c.Node(1).wal.End())
	// Push the dirty page so node 2 can physically see the row while the
	// writer is still uncommitted.
	if err := c.Node(1).lbp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	c.CrashNode(1)

	// A writer on node 2 must not be able to steal the row silently: it
	// blocks (page fenced / holder unknown) and eventually times out or
	// succeeds after restart. Restart in parallel.
	res := make(chan error, 1)
	go func() {
		tx2, err := c.Node(2).Begin()
		if err != nil {
			res <- err
			return
		}
		if err := tx2.Update(sp, []byte("k"), []byte("new")); err != nil {
			tx2.Rollback()
			res <- err
			return
		}
		res <- tx2.Commit()
	}()
	time.Sleep(50 * time.Millisecond)
	if _, err := c.RestartNode(1); err != nil {
		t.Fatal(err)
	}
	if err := <-res; err != nil && !common.IsRetryable(err) {
		t.Fatalf("node 2 writer: %v", err)
	}
	// After recovery the row is consistent: the crashed writer's version
	// was rolled back, so the value is either still old (writer timed
	// out) or new — never "locked".
	v, err := get(t, c.Node(1), sp, "k")
	if err != nil || (v != "old" && v != "new") {
		t.Fatalf("post-recovery k = %q, %v", v, err)
	}
}

func TestNodeCrashUnderLoadNoDataLoss(t *testing.T) {
	c, sp := testCluster(t, 2)
	var committed sync.Map
	var seq atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	worker := func(nodeID common.NodeID) {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			n := c.Node(int(nodeID))
			if n == nil || !n.Live() {
				time.Sleep(time.Millisecond)
				continue
			}
			id := seq.Add(1)
			key := fmt.Sprintf("n%d-%06d", nodeID, id)
			tx, err := n.Begin()
			if err != nil {
				continue
			}
			if err := tx.Insert(sp, []byte(key), []byte("v")); err != nil {
				tx.Rollback()
				continue
			}
			if err := tx.Commit(); err == nil {
				committed.Store(key, true)
			}
		}
	}
	wg.Add(2)
	go worker(1)
	go worker(2)

	time.Sleep(100 * time.Millisecond)
	c.CrashNode(1)
	time.Sleep(50 * time.Millisecond)
	if _, err := c.RestartNode(1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Every committed key must be durable and visible from node 2.
	tx, err := c.Node(2).Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Commit()
	missing := 0
	committed.Range(func(k, _ any) bool {
		if _, err := tx.Get(sp, []byte(k.(string))); err != nil {
			missing++
			t.Errorf("committed key %s lost: %v", k, err)
		}
		return missing < 10
	})
}

func TestFullClusterRecovery(t *testing.T) {
	c, sp := testCluster(t, 3)
	// Interleave writes from all nodes, including updates to shared keys
	// so per-page logs span all three streams.
	for round := 0; round < 30; round++ {
		for i, n := range c.Nodes() {
			put(t, n, sp, fmt.Sprintf("own-%d-%02d", i, round), fmt.Sprintf("r%d", round))
			put(t, n, sp, "shared", fmt.Sprintf("node%d-round%d", i, round))
		}
	}
	wantShared, _ := get(t, c.Node(1), sp, "shared")

	// Leave an uncommitted transaction hanging at crash time.
	tx, _ := c.Node(2).Begin()
	if err := tx.Update(sp, []byte("shared"), []byte("uncommitted")); err != nil {
		t.Fatal(err)
	}
	c.Node(2).wal.Sync(c.Node(2).wal.End())

	c.CrashAll()
	if err := c.RecoverAll(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.AddNode(); err != nil {
			t.Fatal(err)
		}
	}
	if v, err := get(t, c.Node(1), sp, "shared"); err != nil || v != wantShared {
		t.Fatalf("shared after cluster recovery = %q, %v (want %q)", v, err, wantShared)
	}
	for i := 0; i < 3; i++ {
		for round := 0; round < 30; round++ {
			key := fmt.Sprintf("own-%d-%02d", i, round)
			if v, err := get(t, c.Node(1+i), sp, key); err != nil || v != fmt.Sprintf("r%d", round) {
				t.Fatalf("%s = %q, %v", key, v, err)
			}
		}
	}
	// The recovered tree must be structurally sound.
	si, _ := c.lookupSpaceByID(sp)
	if _, err := VerifyTree(c.store, si.Anchor); err != nil {
		t.Fatal(err)
	}
}

func TestFullClusterRecoveryWithSplits(t *testing.T) {
	c, sp := testCluster(t, 2)
	// Enough data to force splits across both nodes' logs.
	for i := 0; i < 600; i++ {
		n := c.Node(1 + i%2)
		put(t, n, sp, fmt.Sprintf("key-%05d", i), string(make([]byte, 64)))
	}
	c.CrashAll()
	if err := c.RecoverAll(); err != nil {
		t.Fatal(err)
	}
	si, _ := c.lookupSpaceByID(sp)
	rows, err := VerifyTree(c.store, si.Anchor)
	if err != nil {
		t.Fatal(err)
	}
	if rows != 600 {
		t.Fatalf("recovered tree has %d rows, want 600", rows)
	}
	// Fresh nodes can read everything.
	if _, err := c.AddNode(); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1, 299, 598, 599} {
		if _, err := get(t, c.Node(1), sp, fmt.Sprintf("key-%05d", i)); err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
	}
}

func TestRecoveryFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz-style test skipped in -short")
	}
	for seed := int64(0); seed < 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			c, sp := testCluster(t, 2)
			expect := map[string]string{}
			for i := 0; i < 200; i++ {
				n := c.Node(1 + rng.Intn(2))
				key := fmt.Sprintf("k%03d", rng.Intn(60))
				val := fmt.Sprintf("v%d", i)
				tx, err := n.Begin()
				if err != nil {
					t.Fatal(err)
				}
				if err := tx.Upsert(sp, []byte(key), []byte(val)); err != nil {
					tx.Rollback()
					continue
				}
				if rng.Intn(10) == 0 {
					tx.Rollback()
					continue
				}
				if err := tx.Commit(); err == nil {
					expect[key] = val
				}
			}
			c.CrashAll()
			if err := c.RecoverAll(); err != nil {
				t.Fatal(err)
			}
			if _, err := c.AddNode(); err != nil {
				t.Fatal(err)
			}
			for key, want := range expect {
				if v, err := get(t, c.Node(1), sp, key); err != nil || v != want {
					t.Fatalf("%s = %q, %v (want %q)", key, v, err, want)
				}
			}
		})
	}
}

func TestRestartPreservesTrxIDMonotonicity(t *testing.T) {
	c, sp := testCluster(t, 1)
	put(t, c.Node(1), sp, "k", "v")
	tx, _ := c.Node(1).Begin()
	gBefore := tx.GTrxID()
	tx.Rollback()
	c.CrashNode(1)
	n, err := c.RestartNode(1)
	if err != nil {
		t.Fatal(err)
	}
	tx2, _ := n.Begin()
	defer tx2.Rollback()
	if tx2.GTrxID().Trx <= gBefore.Trx {
		t.Fatalf("trx id %d not above pre-crash %d", tx2.GTrxID().Trx, gBefore.Trx)
	}
}

// TestCrashStorm subjects a 3-node cluster to a randomized sequence of
// single-node crashes and restarts while writers run on the surviving
// nodes, then verifies every acknowledged commit and full tree integrity.
func TestCrashStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("storm test skipped in -short")
	}
	for seed := int64(0); seed < 2; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			c, sp := testCluster(t, 3)
			var committed sync.Map
			var seq atomic.Int64
			stop := make(chan struct{})
			var wg sync.WaitGroup

			for nodeID := 1; nodeID <= 3; nodeID++ {
				wg.Add(1)
				go func(nodeID int) {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						n := c.Node(nodeID)
						if n == nil || !n.Live() {
							time.Sleep(time.Millisecond)
							continue
						}
						key := fmt.Sprintf("n%d-%06d", nodeID, seq.Add(1))
						tx, err := n.Begin()
						if err != nil {
							continue
						}
						if err := tx.Insert(sp, []byte(key), []byte("v")); err != nil {
							tx.Rollback()
							continue
						}
						if err := tx.Commit(); err == nil {
							committed.Store(key, true)
						}
					}
				}(nodeID)
			}

			// The storm: crash/restart random nodes, occasionally two at
			// once, always restarting before the next round.
			for round := 0; round < 4; round++ {
				time.Sleep(time.Duration(20+rng.Intn(40)) * time.Millisecond)
				victims := []common.NodeID{common.NodeID(1 + rng.Intn(3))}
				if rng.Intn(3) == 0 {
					other := common.NodeID(1 + rng.Intn(3))
					if other != victims[0] {
						victims = append(victims, other)
					}
				}
				for _, v := range victims {
					c.CrashNode(v)
				}
				time.Sleep(time.Duration(rng.Intn(20)) * time.Millisecond)
				for _, v := range victims {
					if _, err := c.RestartNode(v); err != nil {
						t.Fatalf("round %d: restart node %d: %v", round, v, err)
					}
				}
			}
			close(stop)
			wg.Wait()

			// Every acknowledged commit must be visible from every node.
			total := 0
			committed.Range(func(_, _ any) bool { total++; return true })
			if total == 0 {
				t.Fatal("storm committed nothing")
			}
			for nodeID := 1; nodeID <= 3; nodeID++ {
				tx, err := c.Node(nodeID).Begin()
				if err != nil {
					t.Fatal(err)
				}
				missing := 0
				committed.Range(func(k, _ any) bool {
					if _, err := tx.Get(sp, []byte(k.(string))); err != nil {
						t.Errorf("node %d: committed key %s: %v", nodeID, k, err)
						missing++
					}
					return missing < 5
				})
				tx.Commit()
				if missing > 0 {
					t.Fatalf("node %d lost %d+ committed keys of %d", nodeID, missing, total)
				}
			}
			// Structural integrity via a full-cluster recovery pass.
			c.CrashAll()
			if err := c.RecoverAll(); err != nil {
				t.Fatal(err)
			}
			si, _ := c.lookupSpaceByID(sp)
			if _, err := VerifyTree(c.store, si.Anchor); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRollbackDeferredWhenPageUnreachable: a live rollback that cannot reach
// one of its pages (here: the page migrated to a peer and the storage fetch
// fails, as in a network partition) must NOT free the transaction's TIT
// slot. A freed slot resolves CSNMin — "committed, visible to all" — which
// would publish the rolled-back version the moment the fault heals. The
// rollback has to park the leftover undo entries, keep the slot active (the
// version stays invisible), and finish the compensation in the background
// once the page is reachable again.
func TestRollbackDeferredWhenPageUnreachable(t *testing.T) {
	c, sp := testCluster(t, 2)
	n1, n2 := c.Node(1), c.Node(2)
	put(t, n1, sp, "k", "orig")

	tx, err := n1.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Update(sp, []byte("k"), []byte("bad")); err != nil {
		t.Fatal(err)
	}

	// Steal the page mid-transaction: node 2 writes a sibling row, which
	// revokes node 1's X PLock and moves the page (with the uncommitted
	// "bad" version on it) to node 2. Node 1's rollback must now re-fetch
	// the page image to compensate.
	put(t, n2, sp, "k2", "x")

	// Partition node 1: every fabric op it issues and every storage page
	// read fail, so the rollback can neither re-acquire the PLock nor
	// re-fetch the page image — exactly a network partition's view.
	var blocked atomic.Bool
	blocked.Store(true)
	c.fabric.SetInjector(func(op common.FaultOp) common.FaultDecision {
		if op.Src == 1 && blocked.Load() {
			return common.FaultDecision{Err: common.ErrInjected}
		}
		return common.FaultDecision{}
	})
	c.store.SetInjector(func(op common.FaultOp) common.FaultDecision {
		if op.Class == common.FaultPageRead && blocked.Load() {
			return common.FaultDecision{Err: common.ErrInjected}
		}
		return common.FaultDecision{}
	})

	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := n1.DeferredAborts.Load(); got != 1 {
		t.Fatalf("DeferredAborts = %d, want 1 (rollback with an unreachable page must defer)", got)
	}
	// The slot is still active, so the leaked "bad" version stays invisible.
	if v, err := get(t, n2, sp, "k"); err != nil || v != "orig" {
		t.Fatalf("read during deferred rollback = %q, %v; want orig (aborted version leaked)", v, err)
	}

	// Heal. The background compensation must remove the version and free
	// the slot; a writer parked on the row's active version then proceeds.
	blocked.Store(false)
	put(t, n2, sp, "k", "after")
	if v, err := get(t, n2, sp, "k"); err != nil || v != "after" {
		t.Fatalf("read after heal = %q, %v; want after", v, err)
	}
	if v, err := get(t, n1, sp, "k"); err != nil || v != "after" {
		t.Fatalf("read after heal via node 1 = %q, %v; want after", v, err)
	}
}
