package core

import "polardbmp/internal/common"

// CC engine names accepted by Config.CC.
const (
	// CC2PL is the paper's pessimistic design: statement-time row claims
	// under X PLocks with commit-time CTS stamping (§4.1/§4.3).
	CC2PL = "2pl"
	// CCOCC is the optimistic engine: statements stage writes locally and
	// validation + apply happen under leaf PLocks only at commit.
	CCOCC = "occ"
)

// ValidCC reports whether name is a known concurrency-control engine.
func ValidCC(name string) bool { return name == CC2PL || name == CCOCC }

// ccEngine is a concurrency-control strategy (DESIGN.md §14). Both engines
// share the node substrate — B-tree over Buffer Fusion, PLocks through Lock
// Fusion, TIT/TSO through Transaction Fusion — and the entire commit
// pipeline (Tx.commitPipeline): TSO grant, commit-record force, TIT publish,
// CTS stamping. They differ only in WHEN a write claims its row.
type ccEngine interface {
	// Name returns the Config.CC name the engine registers under.
	Name() string
	// Write performs one mutation (opInsert..opLockRow) under the engine's
	// protocol: 2PL claims the row immediately (prepend under X leaf), OCC
	// stages the write in the transaction until commit.
	Write(tx *Tx, space common.SpaceID, key, value []byte, op writeOp) error
	// StagedRead returns the transaction's own pending write of key when
	// the engine stages writes client-side, so reads observe the
	// transaction's earlier statements (read-your-writes). ok=false means
	// no staged entry; under 2PL own writes live in the page itself.
	StagedRead(tx *Tx, space common.SpaceID, key []byte) (val []byte, deleted, ok bool)
	// StagedRange returns the transaction's staged writes with
	// from <= key < to (to==nil unbounded) in key order, for Scan overlay.
	StagedRange(tx *Tx, space common.SpaceID, from, to []byte) []stagedKV
	// Prepare runs the engine's pre-pipeline commit work. 2PL has none
	// (rows were claimed statement-time); OCC validates the staged set
	// under sorted X leaf PLocks and applies it, returning the retryable
	// common.ErrWriteConflict when a row moved under the transaction.
	// After a nil return the transaction's versions are in the pages and
	// the shared commit pipeline makes them durable and visible.
	Prepare(tx *Tx) error
}

// stagedKV is one staged write surfaced to Scan's overlay merge.
type stagedKV struct {
	key     []byte
	value   []byte
	deleted bool
}

// newCCEngine maps a Config.CC name to its engine. Unknown names fall back
// to 2PL — the constructors have no error path; commands validate the flag
// with ValidCC before building a cluster.
func newCCEngine(name string) ccEngine {
	if name == CCOCC {
		return occEngine{}
	}
	return twoPL{}
}
