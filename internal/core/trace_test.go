package core

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"polardbmp/internal/common"
	"polardbmp/internal/trace"
)

// tracedCluster builds an n-node cluster with the commit-path tracer on.
func tracedCluster(t testing.TB, n int, cfg trace.Config) (*Cluster, common.SpaceID) {
	t.Helper()
	c := NewCluster(Config{
		LockWaitTimeout: 2 * time.Second,
		RecycleInterval: 5 * time.Millisecond,
		Trace:           &cfg,
	})
	for i := 0; i < n; i++ {
		if _, err := c.AddNode(); err != nil {
			t.Fatal(err)
		}
	}
	sp, err := c.CreateSpace("t")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, sp
}

// TestTraceCommitPipeline drives cross-node traffic on a traced cluster and
// checks the whole observability surface: merged stage aggregates in
// ClusterStats, per-node stage snapshots, Tx.Info span timelines with
// commit-path stages, and the recent-trace ring.
func TestTraceCommitPipeline(t *testing.T) {
	c, sp := tracedCluster(t, 2, trace.Config{})

	for i := 0; i < 20; i++ {
		n := c.Node(1 + i%2)
		put(t, n, sp, fmt.Sprintf("k%d", i), "v")
	}
	// Cross-node read forces remote PLock negotiation and DBP transfers.
	if v, err := get(t, c.Node(2), sp, "k0"); err != nil || v != "v" {
		t.Fatalf("cross-node read: %q %v", v, err)
	}

	st := c.Stats()
	if len(st.Stages) == 0 {
		t.Fatal("ClusterStats.Stages empty on a traced cluster")
	}
	byName := map[string]trace.StageSnapshot{}
	for _, s := range st.Stages {
		byName[s.Stage] = s
	}
	for _, want := range []string{"begin", "plock_local", "log_append", "log_sync", "cts_stamp", "commit"} {
		if byName[want].Count == 0 {
			t.Errorf("stage %s never observed: %+v", want, st.Stages)
		}
	}
	if byName["tso_solo"].Count+byName["tso_group"].Count == 0 {
		t.Error("no TSO allocations observed")
	}
	if byName["commit"].Count < 20 {
		t.Errorf("commit stage count = %d, want >= 20", byName["commit"].Count)
	}
	// The cluster merge must cover both nodes' aggregates.
	var perNode int64
	for _, ns := range st.Nodes {
		if len(ns.Stages) == 0 {
			t.Errorf("node %d has no stage snapshot", ns.Node)
		}
		for _, s := range ns.Stages {
			if s.Stage == "commit" {
				perNode += s.Count
			}
		}
	}
	if perNode != byName["commit"].Count {
		t.Errorf("merged commit count %d != sum of per-node %d", byName["commit"].Count, perNode)
	}

	// The snapshot must be JSON-marshalable (the mpshell/mpbench wire form).
	if _, err := json.Marshal(st); err != nil {
		t.Fatalf("ClusterStats not marshalable: %v", err)
	}

	// A traced transaction exposes its span timeline through Info.
	tx, err := c.Node(1).Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Upsert(sp, []byte("traced"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	info := tx.Info()
	if !info.Done || info.CTS == 0 || info.Trace == nil {
		t.Fatalf("Info = %+v, want done with CTS and trace", info)
	}
	stages := map[string]bool{}
	for _, sp := range info.Trace.Spans {
		stages[sp.Stage] = true
	}
	for _, want := range []string{"begin", "log_append", "cts_stamp"} {
		if !stages[want] {
			t.Errorf("span %s missing from Info timeline: %+v", want, info.Trace.Spans)
		}
	}
	if !info.Trace.Committed || info.Trace.CTS != info.CTS {
		t.Errorf("trace summary disagrees with tx: %+v", info.Trace)
	}

	if c.Node(1).Tracer().RecentCount() == 0 {
		t.Error("recent-trace ring empty after commits")
	}
}

// TestTraceSlowTxLog checks that a sub-threshold transaction stays out of
// the slow log and that ClusterStats surfaces entries once the (tiny)
// threshold trips.
func TestTraceSlowTxLog(t *testing.T) {
	c, sp := tracedCluster(t, 1, trace.Config{SlowTxThreshold: time.Nanosecond})
	put(t, c.Node(1), sp, "k", "v")
	st := c.Stats()
	if len(st.SlowTxs) == 0 {
		t.Fatal("no slow transactions logged under a 1ns threshold")
	}
	if st.SlowTxs[0].TotalNS <= 0 {
		t.Fatalf("slow tx has no duration: %+v", st.SlowTxs[0])
	}
}

// TestTraceDisabled checks the default path: no tracer, no stage data, and
// Tx.Info still works (without a span timeline).
func TestTraceDisabled(t *testing.T) {
	c, sp := testCluster(t, 1)
	tx, err := c.Node(1).Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Upsert(sp, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	info := tx.Info()
	if info.Trace != nil {
		t.Fatalf("untraced tx has a trace: %+v", info.Trace)
	}
	if !info.Done || info.CTS == 0 {
		t.Fatalf("Info = %+v", info)
	}
	st := c.Stats()
	if len(st.Stages) != 0 || len(st.SlowTxs) != 0 {
		t.Fatalf("untraced cluster reports stages/slow txs: %+v", st)
	}
	if c.Node(1).Tracer() != nil {
		t.Fatal("tracer non-nil on untraced cluster")
	}
}
