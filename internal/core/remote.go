// Multi-process clusters: a seed process hosts the shared substrate (PMFS +
// store) and any number of satellite processes join over the socket fabric,
// each running a full primary node whose every cross-node interaction —
// fusion RPCs, one-sided region reads, membership leases, storage I/O —
// rides the wire to the seed. This is the paper's deployment shape: compute
// nodes are processes, PolarFusion and PolarStore are elsewhere.
package core

import (
	"encoding/json"
	"fmt"

	"polardbmp/internal/common"
	"polardbmp/internal/membership"
	"polardbmp/internal/rdma"
	"polardbmp/internal/storage"
	"polardbmp/internal/wire"
)

// ServiceCluster is the cluster-administration RPC service the seed serves
// on the PMFS endpoint. It covers the operations a satellite cannot do
// locally: allocating and freeing cluster-unique node slots, serializing
// tablespace creation against the seed's space directory lock, the
// server-side half of a graceful drain, and the cluster topology snapshot.
const ServiceCluster = "pmfs.cluster"

// Cluster admin opcodes (first payload byte). Append-only: satellites of
// mixed builds share the wire.
const (
	aopAllocNode    uint8 = 1 // [] -> [id u16]
	aopCreateSpace  uint8 = 2 // [name str] -> [space u32]
	aopDrainCleanup uint8 = 3 // [node u16] -> []
	aopTopology     uint8 = 4 // [] -> [topology json]
	aopFreeNode     uint8 = 5 // [node u16] -> []
	aopTxStatus     uint8 = 6 // [gtrx] -> [outcome u8, cts u64]
)

// handleAdmin serves ServiceCluster on the seed. Responses are
// [status][result] in the wire status encoding.
func (c *Cluster) handleAdmin(req []byte) ([]byte, error) {
	result, err := c.adminOp(req)
	return append(wire.AppendStatus(nil, err), result...), nil
}

func (c *Cluster) adminOp(req []byte) ([]byte, error) {
	rd := wire.NewReader(req)
	switch op := rd.U8(); op {
	case aopAllocNode:
		id, err := c.allocNodeID()
		if err != nil {
			return nil, err
		}
		return wire.AppendU16(nil, uint16(id)), nil
	case aopCreateSpace:
		name := rd.Str()
		if err := rd.Err(); err != nil {
			return nil, err
		}
		space, err := c.CreateSpace(name)
		if err != nil {
			return nil, err
		}
		return wire.AppendU32(nil, uint32(space)), nil
	case aopDrainCleanup:
		node := rd.U16()
		if err := rd.Err(); err != nil {
			return nil, err
		}
		if err := membership.CheckNode(common.NodeID(node)); err != nil {
			return nil, err
		}
		c.lockSrv.DropNode(node)
		c.bufSrv.DropNode(node)
		return nil, nil
	case aopTopology:
		return c.TopologyJSON()
	case aopTxStatus:
		g, _, err := common.UnmarshalGTrxID(rd.Rest())
		if err != nil {
			return nil, err
		}
		out, cts, err := c.TxStatus(g)
		if err != nil {
			return nil, err
		}
		return wire.AppendU64(append([]byte(nil), uint8(out)), uint64(cts)), nil
	case aopFreeNode:
		node := rd.U16()
		if err := rd.Err(); err != nil {
			return nil, err
		}
		if err := c.members.Free(common.NodeID(node)); err != nil {
			return nil, err
		}
		return nil, nil
	default:
		return nil, fmt.Errorf("core: admin op %d: %w", op, common.ErrNoService)
	}
}

// adminCall performs one admin RPC from a satellite, retrying transient
// fabric faults and decoding the status header.
func (c *Cluster) adminCall(req []byte) ([]byte, error) {
	var result []byte
	err := common.Retry(c.cfg.retryPolicy(), func() error {
		resp, err := c.fabric.Call(common.PMFSNode, ServiceCluster, req)
		if err != nil {
			return err
		}
		rd := wire.NewReader(resp)
		if err := wire.DecodeStatus(rd); err != nil {
			return err
		}
		result = append([]byte(nil), rd.Rest()...)
		return nil
	})
	return result, err
}

// createSpaceRemote forwards CreateSpace to the seed, which runs it under
// its space directory lock through one of its own nodes.
func (c *Cluster) createSpaceRemote(name string) (common.SpaceID, error) {
	out, err := c.adminCall(wire.AppendString([]byte{aopCreateSpace}, name))
	if err != nil {
		return 0, fmt.Errorf("core: create space %q at seed: %w", name, err)
	}
	return common.SpaceID(wire.NewReader(out).U32()), nil
}

// allocNodeRemote reserves a node slot through the seed's admin service and
// advances the local allocation watermark past it.
func (c *Cluster) allocNodeRemote() (common.NodeID, error) {
	out, err := c.adminCall([]byte{aopAllocNode})
	if err != nil {
		return 0, fmt.Errorf("core: alloc node at seed: %w", err)
	}
	id := common.NodeID(wire.NewReader(out).U16())
	if id == 0 {
		return 0, fmt.Errorf("core: alloc node at seed: seed allocated node 0")
	}
	c.mu.Lock()
	if id >= c.nextNode {
		c.nextNode = id + 1
	}
	c.mu.Unlock()
	return id, nil
}

// drainCleanupRemote asks the seed to drop a cleanly-drained node from the
// fusion servers' tracking structures.
func (c *Cluster) drainCleanupRemote(id common.NodeID) error {
	req := wire.AppendU16([]byte{aopDrainCleanup}, uint16(id))
	if _, err := c.adminCall(req); err != nil {
		return fmt.Errorf("core: drain cleanup at seed: %w", err)
	}
	return nil
}

// freeNodeRemote asks the seed to free a drained/down node's membership slot.
func (c *Cluster) freeNodeRemote(id common.NodeID) error {
	req := wire.AppendU16([]byte{aopFreeNode}, uint16(id))
	if _, err := c.adminCall(req); err != nil {
		return fmt.Errorf("core: free node %d at seed: %w", id, err)
	}
	return nil
}

// topologyRemote fetches the seed's topology snapshot and overlays the nodes
// this satellite hosts (the seed cannot see a satellite's session counts).
func (c *Cluster) topologyRemote() (Topology, error) {
	out, err := c.adminCall([]byte{aopTopology})
	if err != nil {
		return Topology{}, fmt.Errorf("core: topology at seed: %w", err)
	}
	var t Topology
	if err := json.Unmarshal(out, &t); err != nil {
		return Topology{}, fmt.Errorf("core: topology at seed: %w", err)
	}
	// Hosted/Sessions in the seed's answer describe the seed's process;
	// rewrite them for this one.
	for i := range t.Nodes {
		t.Nodes[i].Hosted = false
		t.Nodes[i].Sessions = 0
	}
	c.overlayHosted(&t)
	return t, nil
}

// JoinRemote joins an existing cluster's fabric at addr (a seed process's
// mpserver -fabric listener) and brings up one primary node in this process.
// The returned Cluster is the satellite's handle: it hosts no PMFS and no
// store, and seed-only operations (crash orchestration, checkpoint,
// recovery) return ErrNotHosted. nc, when non-nil, receives the peer links'
// frame counters.
//
// The satellite's node id is allocated by the seed, so every JoinRemote —
// including a restarted satellite process — comes up as a fresh node; the
// old incarnation's streams and locks are recovered by the seed's takeover
// machinery, not by the new process.
func JoinRemote(cfg Config, addr string, nc *wire.NetCounters) (*Cluster, *Node, error) {
	cfg.fill()
	c := &Cluster{
		cfg:    cfg,
		fabric: rdma.NewFabric(cfg.FabricLatency),
		nodes:  make(map[common.NodeID]*Node),
		remote: true,
	}
	c.cc = newCCEngine(cfg.CC)
	peer, err := rdma.DialPeer(c.fabric, addr, rdma.PeerConfig{Name: "satellite", Counters: nc})
	if err != nil {
		return nil, nil, fmt.Errorf("core: join %s: %w", addr, err)
	}
	c.fabric.AttachDefault(peer)
	c.peer = peer

	fail := func(err error) (*Cluster, *Node, error) {
		_ = peer.Close()
		return nil, nil, err
	}
	id, err := c.allocNodeRemote()
	if err != nil {
		return fail(fmt.Errorf("core: join %s: %w", addr, err))
	}
	rs := storage.NewRemote(c.fabric.From(id))
	if cfg.FenceTTL > 0 {
		rs.SetFenceTTL(cfg.FenceTTL)
	}
	c.store = rs
	c.view = membership.NewRemoteView(c.fabric.From(id))

	// Announce before the node serves transactions: once it can hold locks
	// and DBP frames, the seed must be able to call back into this process
	// (PLock revocation, frame transfer) over the accepted links.
	if err := peer.Announce(id); err != nil {
		return fail(fmt.Errorf("core: join %s: announce node %d: %w", addr, id, err))
	}
	n, err := c.newNode(id, false)
	if err != nil {
		return fail(fmt.Errorf("core: join %s: %w", addr, err))
	}
	c.mu.Lock()
	c.nodes[id] = n
	c.mu.Unlock()
	return c, n, nil
}
