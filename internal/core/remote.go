// Multi-process clusters: a seed process hosts the shared substrate (PMFS +
// store) and any number of satellite processes join over the socket fabric,
// each running a full primary node whose every cross-node interaction —
// fusion RPCs, one-sided region reads, membership leases, storage I/O —
// rides the wire to the seed. This is the paper's deployment shape: compute
// nodes are processes, PolarFusion and PolarStore are elsewhere.
package core

import (
	"fmt"

	"polardbmp/internal/common"
	"polardbmp/internal/membership"
	"polardbmp/internal/rdma"
	"polardbmp/internal/storage"
	"polardbmp/internal/wire"
)

// ServiceCluster is the cluster-administration RPC service the seed serves
// on the PMFS endpoint. It covers the two operations a satellite cannot do
// locally: allocating a cluster-unique node id and serializing tablespace
// creation against the seed's space directory lock.
const ServiceCluster = "pmfs.cluster"

// Cluster admin opcodes (first payload byte).
const (
	aopAllocNode   uint8 = 1 // [] -> [id u16]
	aopCreateSpace uint8 = 2 // [name str] -> [space u32]
)

// handleAdmin serves ServiceCluster on the seed. Responses are
// [status][result] in the wire status encoding.
func (c *Cluster) handleAdmin(req []byte) ([]byte, error) {
	result, err := c.adminOp(req)
	return append(wire.AppendStatus(nil, err), result...), nil
}

func (c *Cluster) adminOp(req []byte) ([]byte, error) {
	rd := wire.NewReader(req)
	switch op := rd.U8(); op {
	case aopAllocNode:
		c.mu.Lock()
		id := c.nextNode
		c.nextNode++
		c.mu.Unlock()
		return wire.AppendU16(nil, uint16(id)), nil
	case aopCreateSpace:
		name := rd.Str()
		if err := rd.Err(); err != nil {
			return nil, err
		}
		space, err := c.CreateSpace(name)
		if err != nil {
			return nil, err
		}
		return wire.AppendU32(nil, uint32(space)), nil
	default:
		return nil, fmt.Errorf("core: admin op %d: %w", op, common.ErrNoService)
	}
}

// adminCall performs one admin RPC from a satellite, retrying transient
// fabric faults and decoding the status header.
func (c *Cluster) adminCall(req []byte) ([]byte, error) {
	var result []byte
	err := common.Retry(c.cfg.retryPolicy(), func() error {
		resp, err := c.fabric.Call(common.PMFSNode, ServiceCluster, req)
		if err != nil {
			return err
		}
		rd := wire.NewReader(resp)
		if err := wire.DecodeStatus(rd); err != nil {
			return err
		}
		result = append([]byte(nil), rd.Rest()...)
		return nil
	})
	return result, err
}

// createSpaceRemote forwards CreateSpace to the seed, which runs it under
// its space directory lock through one of its own nodes.
func (c *Cluster) createSpaceRemote(name string) (common.SpaceID, error) {
	out, err := c.adminCall(wire.AppendString([]byte{aopCreateSpace}, name))
	if err != nil {
		return 0, fmt.Errorf("core: create space %q at seed: %w", name, err)
	}
	return common.SpaceID(wire.NewReader(out).U32()), nil
}

// JoinRemote joins an existing cluster's fabric at addr (a seed process's
// mpserver -fabric listener) and brings up one primary node in this process.
// The returned Cluster is the satellite's handle: it hosts no PMFS and no
// store, and seed-only operations (crash orchestration, checkpoint,
// recovery) return ErrNotHosted. nc, when non-nil, receives the peer links'
// frame counters.
//
// The satellite's node id is allocated by the seed, so every JoinRemote —
// including a restarted satellite process — comes up as a fresh node; the
// old incarnation's streams and locks are recovered by the seed's takeover
// machinery, not by the new process.
func JoinRemote(cfg Config, addr string, nc *wire.NetCounters) (*Cluster, *Node, error) {
	cfg.fill()
	c := &Cluster{
		cfg:    cfg,
		fabric: rdma.NewFabric(cfg.FabricLatency),
		nodes:  make(map[common.NodeID]*Node),
		remote: true,
	}
	c.cc = newCCEngine(cfg.CC)
	peer, err := rdma.DialPeer(c.fabric, addr, rdma.PeerConfig{Name: "satellite", Counters: nc})
	if err != nil {
		return nil, nil, fmt.Errorf("core: join %s: %w", addr, err)
	}
	c.fabric.AttachDefault(peer)
	c.peer = peer

	fail := func(err error) (*Cluster, *Node, error) {
		_ = peer.Close()
		return nil, nil, err
	}
	out, err := c.adminCall([]byte{aopAllocNode})
	if err != nil {
		return fail(fmt.Errorf("core: join %s: alloc node: %w", addr, err))
	}
	id := common.NodeID(wire.NewReader(out).U16())
	if id == 0 {
		return fail(fmt.Errorf("core: join %s: seed allocated node 0", addr))
	}
	c.nextNode = id + 1
	rs := storage.NewRemote(c.fabric.From(id))
	if cfg.FenceTTL > 0 {
		rs.SetFenceTTL(cfg.FenceTTL)
	}
	c.store = rs
	c.view = membership.NewRemoteView(c.fabric.From(id))

	// Announce before the node serves transactions: once it can hold locks
	// and DBP frames, the seed must be able to call back into this process
	// (PLock revocation, frame transfer) over the accepted links.
	if err := peer.Announce(id); err != nil {
		return fail(fmt.Errorf("core: join %s: announce node %d: %w", addr, id, err))
	}
	n, err := c.newNode(id, false)
	if err != nil {
		return fail(fmt.Errorf("core: join %s: %w", addr, err))
	}
	c.mu.Lock()
	c.nodes[id] = n
	c.mu.Unlock()
	return c, n, nil
}
