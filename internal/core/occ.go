package core

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"polardbmp/internal/bufferfusion"
	"polardbmp/internal/common"
	"polardbmp/internal/lockfusion"
	"polardbmp/internal/page"
)

// occEngine is the optimistic engine (DESIGN.md §14): statements never take
// X leaf PLocks and never wait on row locks. A write is staged in the
// transaction's private write set after a one-sided S-mode existence read;
// Prepare then revalidates every staged row under X leaf PLocks acquired in
// global (space,key) order — a row whose newest version changed since
// staging, or whose writer is still in flight, fails with the retryable
// common.ErrWriteConflict (first-updater-wins, matching how Aurora-MM
// surfaces conflicts) — and applies the set through the same logged
// version-prepend as 2PL. The shared commit pipeline then makes it durable.
//
// Statements are therefore pure one-sided reads (leaf fetch + TIT lookups);
// all write-side fabric traffic concentrates at commit.
type occEngine struct{}

func (occEngine) Name() string { return CCOCC }

// occWrite is one staged mutation plus the validation fingerprint taken at
// stage time: the identity of the row's newest version (zero GTrxID for an
// absent row) and whether that version's writer was still active.
type occWrite struct {
	value   []byte
	deleted bool
	// baseTrx identifies the row's head version when the write was staged;
	// commit-time validation fails if the head changed.
	baseTrx common.GTrxID
	// baseActive records a foreign in-flight head at stage time. Such a
	// write always conflicts: even if the writer commits (head identity
	// unchanged), our value was derived from the version beneath it and
	// applying would lose its update.
	baseActive bool
}

// occState is a transaction's staged write set, keyed by space then key.
type occState struct {
	set   map[common.SpaceID]map[string]*occWrite
	count int
}

func (tx *Tx) occState() *occState {
	if tx.occ == nil {
		tx.occ = &occState{set: make(map[common.SpaceID]map[string]*occWrite)}
	}
	return tx.occ
}

func (st *occState) get(space common.SpaceID, key []byte) *occWrite {
	if st == nil {
		return nil
	}
	return st.set[space][string(key)]
}

func (st *occState) put(space common.SpaceID, key []byte, w *occWrite) {
	m := st.set[space]
	if m == nil {
		m = make(map[string]*occWrite)
		st.set[space] = m
	}
	m[string(key)] = w
	st.count++
}

func (occEngine) StagedRead(tx *Tx, space common.SpaceID, key []byte) ([]byte, bool, bool) {
	w := tx.occ.get(space, key)
	if w == nil {
		return nil, false, false
	}
	return append([]byte(nil), w.value...), w.deleted, true
}

func (occEngine) StagedRange(tx *Tx, space common.SpaceID, from, to []byte) []stagedKV {
	if tx.occ == nil {
		return nil
	}
	var out []stagedKV
	for k, w := range tx.occ.set[space] {
		key := []byte(k)
		if bytes.Compare(key, from) < 0 || (to != nil && bytes.Compare(key, to) >= 0) {
			continue
		}
		out = append(out, stagedKV{key: key, value: w.value, deleted: w.deleted})
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i].key, out[j].key) < 0 })
	return out
}

// Write stages one mutation. The existence check reads the row's newest
// settled (committed or own) version under an S leaf; no lock is taken and
// no waiting happens — a foreign in-flight head is simply fingerprinted and
// will conflict at Prepare.
func (occEngine) Write(tx *Tx, space common.SpaceID, key, value []byte, op writeOp) error {
	st := tx.occState()
	if w := st.get(space, key); w != nil {
		// Re-write of an already-staged key: existence semantics run
		// against the staged entry.
		exists := !w.deleted
		switch op {
		case opInsert:
			if exists {
				return fmt.Errorf("core: key %q: %w", key, common.ErrKeyExists)
			}
		case opUpdate, opDelete, opLockRow:
			if !exists {
				return fmt.Errorf("core: key %q: %w", key, common.ErrNotFound)
			}
		}
		if op != opLockRow {
			w.value = append([]byte(nil), value...)
			w.deleted = op == opDelete
		}
		return nil
	}
	t, err := tx.tree(space)
	if err != nil {
		return err
	}
	ref, err := t.LeafSafe(key, lockfusion.ModeS)
	if err != nil {
		return err
	}
	var (
		baseTrx    common.GTrxID
		baseActive bool
		exists     bool
		curVal     []byte
	)
	if row := ref.Page.Find(key); row != nil {
		if head := row.Head(); head != nil {
			baseTrx = head.Trx
			if head.Trx != tx.g && !head.Trx.Zero() && head.CTS == common.CSNInit &&
				tx.n.resolveCTS(head) == common.CSNMax {
				baseActive = true
			}
		}
		// Newest settled version decides existence and the opLockRow
		// value: skipping in-flight foreign heads keeps uncommitted data
		// out of GetForUpdate results.
		for i := range row.Versions {
			v := &row.Versions[i]
			if v.Trx != tx.g && v.CTS == common.CSNInit && tx.n.resolveCTS(v) == common.CSNMax {
				continue
			}
			if !v.Deleted {
				exists = true
				curVal = append([]byte(nil), v.Value...)
			}
			break
		}
	}
	tx.n.releasePager(ref)
	switch op {
	case opInsert:
		if exists {
			return fmt.Errorf("core: key %q: %w", key, common.ErrKeyExists)
		}
	case opUpdate, opDelete, opLockRow:
		if !exists {
			return fmt.Errorf("core: key %q: %w", key, common.ErrNotFound)
		}
	}
	if op == opLockRow {
		value = curVal
	}
	st.put(space, key, &occWrite{
		value:      append([]byte(nil), value...),
		deleted:    op == opDelete,
		baseTrx:    baseTrx,
		baseActive: baseActive,
	})
	tx.writes = true
	return nil
}

// Prepare validates and applies the staged set: rows are claimed one at a
// time in global (space,key) order — X leaf, fingerprint check, logged
// version-prepend, release. An applied prepend IS the row claim (other
// writers now see an in-flight foreign head), so the sequence is 2PL
// acquisition deferred to commit; it cannot deadlock because OCC never
// waits — a moved or in-flight head fails with the retryable
// common.ErrWriteConflict, and the caller's rollback compensates any rows
// already claimed. Claiming in sorted order keeps conflict cycles between
// concurrent committers deterministic (the lower-ordered one wins).
func (e occEngine) Prepare(tx *Tx) error {
	st := tx.occ
	if st == nil || st.count == 0 {
		return nil
	}
	type item struct {
		space common.SpaceID
		key   []byte
		w     *occWrite
	}
	items := make([]item, 0, st.count)
	for space, m := range st.set {
		for k, w := range m {
			items = append(items, item{space: space, key: []byte(k), w: w})
		}
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].space != items[j].space {
			return items[i].space < items[j].space
		}
		return bytes.Compare(items[i].key, items[j].key) < 0
	})
	conflict := func(key []byte) error {
		tx.n.Conflicts.Inc()
		return fmt.Errorf("core: occ validate key %q: %w", key, common.ErrWriteConflict)
	}

	for _, it := range items {
		t, err := tx.tree(it.space)
		if err != nil {
			return err
		}
		need := len(it.key) + len(it.w.value) + 64
		for attempt := 0; ; attempt++ {
			if attempt > 0 && attempt%64 == 0 {
				time.Sleep(time.Millisecond)
			}
			if err := tx.checkDeadline(); err != nil {
				return err
			}
			ref, err := t.LeafSafe(it.key, lockfusion.ModeX)
			if err != nil {
				return err
			}
			frame := ref.Opaque.(*bufferfusion.Frame)

			// Room for the prepend (same purge/split dance as 2PL).
			if ref.Page.SizeEstimate()+need > page.SplitThreshold {
				if ref.Page.Purge(tx.n.tf.LastGMV(), tx.n.batchResolver(ref.Page)) > 0 {
					frame.Dirty = true
				}
				if ref.Page.SizeEstimate()+need > page.SplitThreshold {
					if _, err := tx.n.tf.ReportMinView(); err == nil {
						if ref.Page.Purge(tx.n.tf.LastGMV(), tx.n.batchResolver(ref.Page)) > 0 {
							frame.Dirty = true
						}
					}
				}
				if ref.Page.SizeEstimate()+need > page.SplitThreshold {
					canSplit := len(ref.Page.Rows) >= 2
					tx.n.releasePager(ref)
					if !canSplit {
						time.Sleep(200 * time.Microsecond)
						continue
					}
					if err := t.SplitFor(it.key, need); err != nil {
						return err
					}
					continue
				}
			}

			// Validate: the head must be exactly the version fingerprinted
			// at stage time, and must not be a foreign writer still in
			// flight (OCC never waits — conflict and let the app retry).
			var head *page.Version
			if row := ref.Page.Find(it.key); row != nil {
				head = row.Head()
			}
			var cur common.GTrxID
			if head != nil {
				cur = head.Trx
			}
			if it.w.baseActive || cur != it.w.baseTrx {
				tx.n.releasePager(ref)
				return conflict(it.key)
			}
			if head != nil && head.Trx != tx.g && !head.Trx.Zero() && head.CTS == common.CSNInit &&
				tx.n.resolveCTS(head) == common.CSNMax {
				tx.n.releasePager(ref)
				return conflict(it.key)
			}
			tx.mutate(ref, frame, it.space, it.key, it.w.value, it.w.deleted)
			tx.n.releasePager(ref)
			break
		}
	}
	return nil
}
