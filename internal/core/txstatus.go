// Transaction-outcome resolution: the server side of commit-ambiguity
// recovery. A client whose connection died after sending COMMIT cannot know
// whether the server finished the pipeline; the wire layer hands it
// ErrCommitAmbiguous and the transaction's GTrxID, and resolution lands here.
// The TIT alone cannot answer — a recycled slot (CSNMin) means "committed and
// visible to all" OR "aborted" — so every process keeps a bounded journal of
// recent transaction outcomes (committed CTS or abort), fed by the commit
// pipeline, rollback, and the takeover scan of a dead peer's log. Resolution
// walks: local journal → owner's TIT → owner's journal over the fabric →
// membership fate rule → the seed's post-takeover journal.
package core

import (
	"fmt"
	"sync"

	"polardbmp/internal/common"
	"polardbmp/internal/wire"
)

// TxOutcome is a resolved transaction fate.
type TxOutcome uint8

const (
	// TxOutcomeUnknown means no layer could decide: the transaction finished
	// so long ago that its outcome left every journal window. Callers treat
	// it as a resolution failure, never as a guess.
	TxOutcomeUnknown TxOutcome = iota
	// TxOutcomeActive means the transaction has not finished yet (or its
	// owner is fenced mid-takeover and the fate is pending); poll again.
	TxOutcomeActive
	// TxOutcomeCommitted means the commit record is durable and the CTS
	// published; the reported CTS is CSNMin for a read-only commit.
	TxOutcomeCommitted
	// TxOutcomeAborted means the transaction rolled back (including in-doubt
	// transactions a survivor's takeover resolved by removal).
	TxOutcomeAborted
)

func (o TxOutcome) String() string {
	switch o {
	case TxOutcomeActive:
		return "active"
	case TxOutcomeCommitted:
		return "committed"
	case TxOutcomeAborted:
		return "aborted"
	default:
		return "unknown"
	}
}

// ServiceTxStatus is the per-node fabric RPC resolving one of the node's own
// transactions from its journal + TIT. Request: [GTrxID]. Response:
// [status][outcome u8][cts u64]. Registered on every node's endpoint, so a
// satellite's transactions are resolvable from any process (routed
// transitively through the seed like every other fabric verb).
const ServiceTxStatus = "core.txstatus"

// txJournalSize bounds the per-process outcome journal. The ring holds the
// most recent finished transactions — orders of magnitude more than can be
// in the commit-ambiguity window at once (the window is one connection's
// death-to-resolve latency).
const txJournalSize = 1 << 15

// txJournal is the bounded outcome journal: g → committed CTS, or 0 for
// aborted. Eviction is FIFO over a fixed ring so steady-state inserts reuse
// map cells instead of growing the table (the commit path records here and
// is allocation-budgeted in CI).
type txJournal struct {
	mu   sync.Mutex
	m    map[common.GTrxID]common.CSN
	ring []common.GTrxID
	next int
}

func (j *txJournal) record(g common.GTrxID, cts common.CSN) {
	if g.Zero() {
		return
	}
	j.mu.Lock()
	if j.m == nil {
		j.m = make(map[common.GTrxID]common.CSN, txJournalSize)
		j.ring = make([]common.GTrxID, txJournalSize)
	}
	if _, ok := j.m[g]; !ok {
		if old := j.ring[j.next]; !old.Zero() {
			delete(j.m, old)
		}
		j.ring[j.next] = g
		j.next = (j.next + 1) % txJournalSize
	}
	j.m[g] = cts
	j.mu.Unlock()
}

func (j *txJournal) lookup(g common.GTrxID) (common.CSN, bool) {
	j.mu.Lock()
	cts, ok := j.m[g]
	j.mu.Unlock()
	return cts, ok
}

// journalOutcome maps a journal entry to its outcome.
func journalOutcome(cts common.CSN) (TxOutcome, common.CSN) {
	if cts == 0 {
		return TxOutcomeAborted, 0
	}
	return TxOutcomeCommitted, cts
}

// TxStatus resolves the fate of transaction g from anywhere in the cluster.
// It never guesses: the answer is TxOutcomeCommitted/TxOutcomeAborted only
// when a journal entry or a published CTS proves it, TxOutcomeActive while
// the transaction (or its owner's takeover) is still in flight, and
// TxOutcomeUnknown when the outcome predates every journal window. The
// returned CSN is the commit timestamp for committed transactions.
func (c *Cluster) TxStatus(g common.GTrxID) (TxOutcome, common.CSN, error) {
	if g.Zero() {
		return TxOutcomeUnknown, 0, fmt.Errorf("core: tx status: zero transaction id")
	}
	// 1. This process finished it recently (we host the owner, or a takeover
	//    here resolved it).
	if cts, ok := c.txlog.lookup(g); ok {
		out, cts := journalOutcome(cts)
		return out, cts, nil
	}
	c.mu.Lock()
	owner := c.nodes[g.Node]
	var probe *Node
	for id := common.NodeID(1); id < c.nextNode; id++ {
		if n := c.nodes[id]; n != nil && n.live.Load() {
			probe = n
			break
		}
	}
	c.mu.Unlock()
	// 2. We host the owning node: its journal already missed (shared with the
	//    cluster journal above), so the TIT is the ground truth.
	if owner != nil && owner.live.Load() {
		return owner.txStatusTIT(g)
	}
	// 3. The owner lives in another process: ask it directly (journal + TIT
	//    on its side). Transient fabric faults are retried.
	if out, cts, err := c.txStatusRemote(g); err == nil {
		return out, cts, nil
	}
	// 4. The owner's process is unreachable. While its takeover has not
	//    completed the fate is pending — the caller polls until a survivor
	//    resolves every in-flight transaction.
	if !c.recoveredPeer(g.Node) {
		return TxOutcomeActive, 0, nil
	}
	// 5. Recovered: the takeover recorded every reconstructed outcome in the
	//    seed's journal (step 1 on the seed; an admin hop from a satellite).
	if c.members != nil {
		if cts, ok := c.txlog.lookup(g); ok {
			out, cts := journalOutcome(cts)
			return out, cts, nil
		}
	} else if out, cts, err := c.txStatusSeed(g); err == nil && out != TxOutcomeUnknown {
		return out, cts, nil
	}
	// 6. Last resort: the TIT through any local node. A post-recovery
	//    recycled slot is honest ambiguity (finished, outcome aged out).
	if probe == nil {
		return TxOutcomeUnknown, 0, fmt.Errorf("core: tx status %v: no live local node", g)
	}
	return probe.txStatusTIT(g)
}

// txStatusTIT classifies g from the TIT state alone (Algorithm 1 semantics):
// a published CTS proves the commit, CSNMax means active or fenced-pending,
// and a recycled slot (CSNMin) is unresolvable here — the transaction
// finished, but committed-visible-to-all and aborted look identical.
func (n *Node) txStatusTIT(g common.GTrxID) (TxOutcome, common.CSN, error) {
	cts, err := n.tf.GetTrxCTS(g)
	if err != nil {
		return TxOutcomeUnknown, 0, err
	}
	switch cts {
	case common.CSNMax:
		return TxOutcomeActive, 0, nil
	case common.CSNMin:
		return TxOutcomeUnknown, 0, nil
	default:
		return TxOutcomeCommitted, cts, nil
	}
}

// handleTxStatus serves ServiceTxStatus for one hosted node: journal first
// (the cluster journal holds this process's outcomes), then the TIT.
func (n *Node) handleTxStatus(req []byte) ([]byte, error) {
	g, _, err := common.UnmarshalGTrxID(req)
	if err != nil {
		return wire.AppendStatus(nil, err), nil
	}
	var out TxOutcome
	var cts common.CSN
	if jcts, ok := n.c.txlog.lookup(g); ok {
		out, cts = journalOutcome(jcts)
	} else if out, cts, err = n.txStatusTIT(g); err != nil {
		return wire.AppendStatus(nil, err), nil
	}
	resp := wire.AppendStatus(nil, nil)
	resp = append(resp, uint8(out))
	return wire.AppendU64(resp, uint64(cts)), nil
}

// txStatusRemote asks the owning node's process over the fabric.
func (c *Cluster) txStatusRemote(g common.GTrxID) (TxOutcome, common.CSN, error) {
	req := g.Marshal(nil)
	var out TxOutcome
	var cts common.CSN
	err := common.Retry(c.cfg.retryPolicy(), func() error {
		resp, err := c.fabric.Call(g.Node, ServiceTxStatus, req)
		if err != nil {
			return err
		}
		rd := wire.NewReader(resp)
		if err := wire.DecodeStatus(rd); err != nil {
			return err
		}
		out = TxOutcome(rd.U8())
		cts = common.CSN(rd.U64())
		return rd.Err()
	})
	if err != nil {
		return TxOutcomeUnknown, 0, err
	}
	return out, cts, nil
}

// txStatusSeed asks the seed's admin service (satellite-side leg of step 5:
// the takeover that resolved a dead peer ran on the seed, so its journal
// holds the outcome).
func (c *Cluster) txStatusSeed(g common.GTrxID) (TxOutcome, common.CSN, error) {
	out, err := c.adminCall(g.Marshal([]byte{aopTxStatus}))
	if err != nil {
		return TxOutcomeUnknown, 0, fmt.Errorf("core: tx status %v at seed: %w", g, err)
	}
	rd := wire.NewReader(out)
	outcome := TxOutcome(rd.U8())
	cts := common.CSN(rd.U64())
	if err := rd.Err(); err != nil {
		return TxOutcomeUnknown, 0, err
	}
	return outcome, cts, nil
}
