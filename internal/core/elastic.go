// Elastic topology: the online join/drain admin surface. AddNode
// (cluster.go) is the join half; this file holds the graceful-drain half and
// the Topology snapshot both halves are observed through.
//
// A graceful drain is the inverse of a crash: instead of fencing first and
// recovering after, the node stops admitting work, finishes what is in
// flight, hands every shared resource back in an orderly way, and only then
// fences its incarnation. Nothing is left for a survivor to take over — no
// redo to replay, no locks to break, no in-doubt transactions to resolve —
// so a drain costs the cluster zero recovery work and zero aborts.
package core

import (
	"encoding/json"
	"fmt"
	"time"

	"polardbmp/internal/common"
	"polardbmp/internal/membership"
)

// NodeState is a topology-level node state, the external vocabulary over the
// membership table's slot states.
type NodeState string

const (
	// NodeActive: live and serving transactions.
	NodeActive NodeState = "active"
	// NodeJoining: slot reserved, node not yet serving.
	NodeJoining NodeState = "joining"
	// NodeDraining: refusing new transactions, finishing in-flight ones.
	NodeDraining NodeState = "draining"
	// NodeDrained: gracefully gone; the slot is reusable by a future join.
	NodeDrained NodeState = "drained"
	// NodeCrashed: fenced or down; recovery (not reuse) owns the slot.
	NodeCrashed NodeState = "crashed"
)

// NodeInfo is one node's row in a Topology snapshot.
type NodeInfo struct {
	ID          int       `json:"id"`
	State       NodeState `json:"state"`
	Incarnation uint64    `json:"incarnation"`
	// Sessions is the node's in-flight transaction count — known only for
	// nodes hosted by the answering process (zero elsewhere).
	Sessions int64 `json:"sessions"`
	// Hosted marks nodes running in this process.
	Hosted bool `json:"hosted,omitempty"`
}

// Topology is a point-in-time view of cluster membership. Epoch is the
// membership cluster epoch: it bumps on every join, eviction, and drain
// transition, so two snapshots with equal epochs describe the same
// topology and epochs observed over time are monotone.
type Topology struct {
	Epoch uint64     `json:"epoch"`
	Nodes []NodeInfo `json:"nodes"`
}

// nodeStateOf maps a membership slot state to the topology vocabulary.
func nodeStateOf(s uint64) NodeState {
	switch s {
	case membership.StateLive:
		return NodeActive
	case membership.StateJoining:
		return NodeJoining
	case membership.StateDraining:
		return NodeDraining
	case membership.StateDrained:
		return NodeDrained
	default: // Fenced, Down
		return NodeCrashed
	}
}

// Topology snapshots the cluster membership. On the seed the membership
// table answers directly; a satellite asks the seed and overlays the nodes
// it hosts itself. A node that was killed but not yet evicted still reports
// active — the lease table is the single source of truth, and until a
// detector fences the silence that is what the table honestly says.
func (c *Cluster) Topology() (Topology, error) {
	if c.members == nil {
		return c.topologyRemote()
	}
	epoch, slots := c.members.Snapshot()
	t := Topology{Epoch: uint64(epoch), Nodes: make([]NodeInfo, 0, len(slots))}
	for _, si := range slots {
		t.Nodes = append(t.Nodes, NodeInfo{
			ID:          int(si.Node),
			State:       nodeStateOf(si.State),
			Incarnation: uint64(si.Inc),
		})
	}
	c.overlayHosted(&t)
	return t, nil
}

// TopologyJSON returns the Topology snapshot marshaled for the wire and the
// daemons' HTTP endpoints.
func (c *Cluster) TopologyJSON() ([]byte, error) {
	t, err := c.Topology()
	if err != nil {
		return nil, err
	}
	return json.Marshal(t)
}

// overlayHosted fills the per-process fields of a topology snapshot: which
// nodes this process hosts and their in-flight session counts. A hosted
// node's local draining flag is also folded in, covering the instant between
// the flag flip and the table transition.
func (c *Cluster) overlayHosted(t *Topology) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range t.Nodes {
		ni := &t.Nodes[i]
		n := c.nodes[common.NodeID(ni.ID)]
		if n == nil {
			continue
		}
		ni.Hosted = true
		ni.Sessions = n.activeTx.Load()
		if ni.State == NodeActive && n.draining.Load() {
			ni.State = NodeDraining
		}
	}
}

// DrainNode gracefully removes node id from the cluster: it stops admitting
// new transactions, waits out the in-flight ones (bounded by
// Config.DrainTimeout), flushes every dirty page it owns, releases its
// lazily-retained page locks, makes its log durable, and fences its
// incarnation cleanly. No takeover runs and no redo is replayed — the slot
// it held becomes reusable by a future AddNode.
//
// Under load the invariant is: zero transactions abort for membership
// reasons. In-flight work admitted before the drain keeps committing
// (the drain's lease stays valid until the last one finished); work arriving
// after sees ErrDraining at Begin and routes to another primary.
//
// A process can only drain nodes it hosts (ErrNotHosted otherwise; drive the
// drain through the hosting daemon's admin API instead). If the in-flight
// work does not finish within DrainTimeout, DrainNode returns
// ErrDeadlineExceeded with the node left draining: admission stays closed
// and the drain may be retried.
func (c *Cluster) DrainNode(id common.NodeID) error {
	if !c.knownNode(id) {
		return fmt.Errorf("core: drain node %d: %w", id, ErrUnknownNode)
	}
	c.mu.Lock()
	n := c.nodes[id]
	c.mu.Unlock()
	if n == nil {
		if c.remote {
			return fmt.Errorf("core: drain node %d: %w", id, ErrNotHosted)
		}
		return fmt.Errorf("core: drain node %d: %w", id, common.ErrNodeDown)
	}

	// Close admission. The CAS is deliberately not a guard: a drain retried
	// after a DrainTimeout failure finds the flag already set and proceeds.
	// Begin's handshake (tx.go) guarantees that once the flag is visible no
	// new transaction slips in: Begin increments activeTx before loading the
	// flag, we set the flag before loading activeTx, so a transaction our
	// load missed must have seen the flag and bowed out.
	n.draining.CompareAndSwap(false, true)
	if err := n.agent.StartDrain(); err != nil {
		return fmt.Errorf("core: drain node %d: %w", id, err)
	}

	// Wait out the in-flight transactions. Their commits keep working: a
	// draining incarnation still passes the epoch gate and the lease
	// self-check.
	deadline := time.Now().Add(c.cfg.DrainTimeout)
	for n.activeTx.Load() != 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("core: drain node %d: %d transactions still in flight: %w",
				id, n.activeTx.Load(), common.ErrDeadlineExceeded)
		}
		time.Sleep(200 * time.Microsecond)
	}

	// Quiesced. Hand everything back while the incarnation is still valid.
	n.stopBackground()
	_, _ = n.tf.ReportMinView() // publish the final (empty) view
	if err := n.lbp.FlushAll(); err != nil {
		return fmt.Errorf("core: drain node %d: flush LBP: %w", id, err)
	}
	// Release the lazy-release PLock cache. With no active transactions
	// every reference count is zero, so one pass normally empties it; the
	// short retry loop covers a revoke racing the drain.
	for i := 0; n.pl.Retained() > 0; i++ {
		n.pl.ReleaseAll()
		if n.pl.Retained() == 0 {
			break
		}
		if i >= 50 {
			return fmt.Errorf("core: drain node %d: %d page locks still held",
				id, n.pl.Retained())
		}
		time.Sleep(time.Millisecond)
	}
	n.wal.Sync(n.wal.End())
	c.removeMinView(id)

	// Fence the incarnation cleanly: stop the lease loops, then move the
	// slot to Drained (epoch gate closes; the slot becomes allocatable).
	n.live.Store(false)
	n.agent.Stop()
	if err := n.agent.FinishDrain(); err != nil {
		return fmt.Errorf("core: drain node %d: %w", id, err)
	}

	// Server-side cleanup is orderly bookkeeping, not crash recovery: drop
	// the node from lock tables and DBP copy-sets. Everything it owned is
	// already flushed and released, so this is reclamation of empty
	// tracking state — MarkDead/LogCrashVolatile (the crash path) never run.
	if err := c.drainCleanup(id); err != nil {
		return fmt.Errorf("core: drain node %d: cleanup: %w", id, err)
	}

	// Local teardown, same fencing as crash() but after the orderly part.
	n.tf.Close()
	n.pl.Close()
	n.lbp.Close()
	n.wal.Close()
	n.ep.Deregister()

	c.mu.Lock()
	delete(c.nodes, id)
	c.mu.Unlock()
	c.refreshPmfsTracers()
	return nil
}

// drainCleanup drops a cleanly-drained node from the fusion servers' tracking
// structures: directly on the seed, via the seed's admin service from a
// satellite.
func (c *Cluster) drainCleanup(id common.NodeID) error {
	if !c.remote {
		c.lockSrv.DropNode(uint16(id))
		c.bufSrv.DropNode(uint16(id))
		return nil
	}
	return c.drainCleanupRemote(id)
}

// RemoveNode takes node id out of the topology for good, freeing its
// membership slot. A live hosted node is gracefully drained first; a node
// already drained or down (post-recovery) has only its slot freed. Removing
// a node whose takeover is still running fails — the fence must clear
// (recovery finish) before the slot can be reused.
func (c *Cluster) RemoveNode(id common.NodeID) error {
	if !c.knownNode(id) {
		return fmt.Errorf("core: remove node %d: %w", id, ErrUnknownNode)
	}
	c.mu.Lock()
	hosted := c.nodes[id] != nil
	c.mu.Unlock()
	if hosted {
		if err := c.DrainNode(id); err != nil {
			return err
		}
	}
	if c.members != nil {
		if err := c.members.Free(id); err != nil {
			return fmt.Errorf("core: remove node %d: %w", id, err)
		}
		return nil
	}
	return c.freeNodeRemote(id)
}

// Draining reports whether the node has stopped admitting new transactions.
func (n *Node) Draining() bool { return n.draining.Load() }

// Remote reports whether this process is a satellite (hosts no PMFS).
func (c *Cluster) Remote() bool { return c.remote }
