package core

import (
	"sync"
	"time"

	"polardbmp/internal/common"
	"polardbmp/internal/wal"
)

// Pipelined group commit (DESIGN.md §14). A commit's durability point is a
// storage log-sync round; classically each committer that finds the durable
// frontier behind runs a round itself and pays the full round latency.
// Because storage marks durable *everything appended before a round
// completes* (wal.Writer group-commit contract), rounds can instead be kept
// in flight continuously by a dedicated syncer: a committer that appends
// while a round is running rides that round's completion and pays only the
// residual. The syncer keeps up to pipeDepth rounds in flight, started half
// a round apart, so a completion lands every round/pipeDepth and the
// expected residual drops to round/(2·pipeDepth). One syncer per cluster —
// rather than per stream — keeps the goroutine and timer load flat: the
// per-node log streams are independent files that a real log store flushes
// concurrently, so a single latency charge (storage.LogSyncBatch) covers one
// round for every hot stream.

const (
	// pipeHotWindow is how long after its last append a stream keeps
	// receiving speculative rounds, so the next commit in a steady stream
	// lands inside one. Past the window the stream is idle and costs
	// nothing.
	pipeHotWindow = 250 * time.Millisecond
	// pipeFastRound: below this configured round latency the pipeline buys
	// nothing over self-run syncs (an unthrottled in-memory store) and the
	// syncer is never started.
	pipeFastRound = 50 * time.Microsecond
	// pipeDepth is how many staggered rounds the syncer keeps in flight.
	// Completions land every round/pipeDepth, so the expected rider residual
	// is round/(2·pipeDepth).
	pipeDepth = 4
)

// startLogPipeline launches the cluster's group-commit syncer. It stays off
// when disabled by config, when the store cannot report its round latency
// (remote satellite stores), or when rounds are cheaper than the scheduling
// cost of riding one.
func (c *Cluster) startLogPipeline() {
	if c.cfg.DisableCommitPipeline {
		return
	}
	type syncLatency interface{ SyncLatency() time.Duration }
	sl, ok := c.store.(syncLatency)
	if !ok || sl.SyncLatency() < pipeFastRound {
		return
	}
	c.pipeWake = make(chan struct{}, 1)
	c.pipeStop = make(chan struct{})
	c.pipeStagger = sl.SyncLatency() / pipeDepth
	go c.logPipeline()
}

// stopLogPipeline terminates the syncer (idempotent; in-flight rounds drain
// on their own).
func (c *Cluster) stopLogPipeline() {
	if c.pipeStop != nil {
		c.pipeOnce.Do(func() { close(c.pipeStop) })
	}
}

// logPipeline is the syncer loop: while any stream is hot it launches a sync
// round over every hot stream each stagger interval, keeping pipeDepth
// rounds in flight; with nothing hot it parks on the writers' append kick.
func (c *Cluster) logPipeline() {
	type syncBatcher interface {
		LogSyncBatch([]common.NodeID, []common.LSN) bool
	}
	batcher, _ := c.store.(syncBatcher)
	inflight := make(chan struct{}, pipeDepth)
	var hot []*wal.Writer
	var hotIDs []common.NodeID
	timer := time.NewTimer(pipeHotWindow)
	defer timer.Stop()
	for {
		select {
		case <-c.pipeStop:
			return
		default:
		}
		hot, hotIDs = hot[:0], hotIDs[:0]
		c.mu.Lock()
		for id, n := range c.nodes {
			if n.wal.PipelineHot(pipeHotWindow) {
				hot = append(hot, n.wal)
				hotIDs = append(hotIDs, id)
			}
		}
		c.mu.Unlock()
		if len(hot) == 0 {
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(pipeHotWindow)
			select {
			case <-c.pipeStop:
				return
			case <-c.pipeWake:
			case <-timer.C:
			}
			continue
		}
		inflight <- struct{}{} // cap staggered rounds at pipeDepth
		ws := append([]*wal.Writer(nil), hot...)
		ids := append([]common.NodeID(nil), hotIDs...)
		durables := make([]common.LSN, len(ws))
		for _, w := range ws {
			w.BeginRound()
		}
		go func() {
			defer func() { <-inflight }()
			c.syncRound(batcher, ws, ids, durables)
			c.pipeRounds.Add(1)
		}()
		// Stagger gate: hold the next round back until at least
		// round/pipeDepth has passed since this one started, but pace on the
		// writers' append kicks rather than a timer — a sub-millisecond
		// sleep oversleeps to timer granularity under load, which would
		// collapse the stagger back to a full round, while append kicks
		// arrive far more often than the stagger and cost nothing. Waiting
		// on kicks is also correct at the edge: with no further appends
		// there is nothing left to cover (any append kicks before or after
		// this round's durable capture; before is covered by it, after
		// lands here and opens the next round).
		start := time.Now()
		for {
			select {
			case <-c.pipeStop:
				return
			case <-c.pipeWake:
			}
			if time.Since(start) >= c.pipeStagger {
				break
			}
		}
	}
}

// syncRound runs one log-sync round over the given streams and publishes
// each stream's new durable frontier.
func (c *Cluster) syncRound(batcher interface {
	LogSyncBatch([]common.NodeID, []common.LSN) bool
}, ws []*wal.Writer, ids []common.NodeID, durables []common.LSN) {
	if batcher != nil && batcher.LogSyncBatch(ids, durables) {
		for i, w := range ws {
			w.EndRound(durables[i])
		}
		return
	}
	if len(ws) == 1 {
		ws[0].EndRound(c.store.LogSync(ids[0]))
		return
	}
	// Per-stream rounds (fault injection): a stalled stream must not hold
	// back the others' durability, so each round ends as its own stream's
	// sync returns.
	var wg sync.WaitGroup
	for i := range ws {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ws[i].EndRound(c.store.LogSync(ids[i]))
		}(i)
	}
	wg.Wait()
}
