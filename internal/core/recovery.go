package core

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"polardbmp/internal/common"
	"polardbmp/internal/lockfusion"
	"polardbmp/internal/page"
	"polardbmp/internal/storage"
	"polardbmp/internal/txfusion"
	"polardbmp/internal/wal"
)

// recoverSelf is the single-node restart path (§5.5): with the TIT recovery
// fence up and the node's pre-crash PLocks still fencing its pages, replay
// the node's own redo stream — most pages are still in the DBP, so this
// rarely touches storage — roll back its uncommitted transactions, then
// lift the fences and start serving.
func (n *Node) recoverSelf() error {
	type trxState struct {
		undo     []undoEntry
		finished bool
		cts      common.CSN // commit timestamp, if committed
	}
	trxs := make(map[common.GTrxID]*trxState)
	var order []common.GTrxID

	// Pass 1: scan the stream for transaction outcomes, so the replay pass
	// can resolve this node's own pre-crash versions without the TIT
	// (whose fence deliberately reports them as active to peers).
	sr := wal.NewStreamReader(n.c.store, n.id, n.c.store.LogStartLSN(n.id), 0)
	for {
		rec, err := sr.Next()
		if err != nil {
			return err
		}
		if rec == nil {
			break
		}
		n.llsn.Observe(rec.LLSN)
		if uint64(rec.Trx.Trx) >= n.trxCtr.Load() && rec.Trx.Node == n.id {
			// Defensive: the persisted watermark must already cover
			// every logged id.
			n.trxCtr.Store(uint64(rec.Trx.Trx) + 1)
		}
		switch rec.Type {
		case wal.RecInsert:
			st := trxs[rec.Trx]
			if st == nil {
				st = &trxState{}
				trxs[rec.Trx] = st
				order = append(order, rec.Trx)
			}
			st.undo = append(st.undo, undoEntry{space: rec.Space, key: rec.Key})
		case wal.RecCommit, wal.RecAbort:
			st := trxs[rec.Trx]
			if st == nil {
				st = &trxState{}
				trxs[rec.Trx] = st
			}
			st.finished = true
			if rec.Type == wal.RecCommit {
				st.cts = rec.CTS
			}
		}
	}

	// resolve is replay's CTS oracle: own pre-crash commits come from the
	// log; everything else goes through the normal path.
	resolve := func(v *page.Version) common.CSN {
		if v.Trx.Node == n.id {
			if st := trxs[v.Trx]; st != nil {
				if st.cts != 0 {
					return st.cts
				}
				return common.CSNMax // uncommitted: rolled back below
			}
			// Not in the retained log: finished before the last
			// checkpoint, so visible to all.
			if v.CTS != common.CSNInit {
				return v.CTS
			}
			return common.CSNMin
		}
		return n.resolveCTS(v)
	}

	// Refresh the global minimum view so replay-time purges have a real
	// bound (a fresh client still holds the initial sentinel).
	if _, err := n.tf.ReportMinView(); err != nil {
		return err
	}

	// Pass 2: replay page changes in LSN order.
	sr = wal.NewStreamReader(n.c.store, n.id, n.c.store.LogStartLSN(n.id), 0)
	for {
		rec, err := sr.Next()
		if err != nil {
			return err
		}
		if rec == nil {
			break
		}
		switch rec.Type {
		case wal.RecInsert, wal.RecRollback, wal.RecPageImage:
			if err := n.replayPage(rec, resolve); err != nil {
				return err
			}
		}
	}

	// Publish every recovered page before peers regain access.
	if err := n.lbp.FlushAll(); err != nil {
		return err
	}

	// Roll back uncommitted pre-crash transactions through the normal
	// engine path (their rows may have migrated to other pages since).
	// Rows on pages fenced by ANOTHER crashed node cannot be reached yet;
	// those rollbacks are deferred until that node's recovery lifts its
	// fence, and our TIT fence stays up so the affected transactions keep
	// resolving as active in the meantime.
	type deferred struct {
		g    common.GTrxID
		undo []undoEntry
	}
	var pending []deferred
	for _, g := range order {
		st := trxs[g]
		if st.finished {
			continue
		}
		rest := n.rollbackEntries(g, st.undo)
		if len(rest) > 0 {
			pending = append(pending, deferred{g, rest})
			continue
		}
		n.wal.Append(&wal.Record{Type: wal.RecAbort, Node: n.id, LLSN: n.llsn.Next(), Trx: g})
	}
	n.wal.Sync(n.wal.End())
	if err := n.lbp.FlushAll(); err != nil {
		return err
	}

	// Lift the page fences (our pages are consistent and published); the
	// TIT fence lifts with them unless rollbacks were deferred.
	n.pl.ReleaseAll()
	n.c.lockSrv.DropNodePLock(uint16(n.id))
	n.c.lockSrv.PLock.ClearDead(n.id)
	// Re-seed the recycle floor in case the log scan bumped the id counter
	// past the persisted watermark: pre-crash ids below the counter are all
	// resolved by this recovery and would otherwise pin the floor forever.
	n.tf.InitTrxFloor(common.TrxID(n.trxCtr.Load()))
	if len(pending) == 0 {
		n.tf.SetRecovering(false)
	} else {
		n.deferredRollbacks.Store(true)
		n.bgDone.Add(1)
		go func() {
			defer n.bgDone.Done()
			for len(pending) > 0 && n.live.Load() {
				kept := pending[:0]
				for _, d := range pending {
					rest := n.rollbackEntries(d.g, d.undo)
					if len(rest) > 0 {
						kept = append(kept, deferred{d.g, rest})
						continue
					}
					n.wal.Append(&wal.Record{Type: wal.RecAbort, Node: n.id, LLSN: n.llsn.Next(), Trx: d.g})
				}
				pending = kept
				if len(pending) > 0 {
					time.Sleep(20 * time.Millisecond)
				}
			}
			if n.live.Load() {
				n.wal.Sync(n.wal.End())
				n.tf.SetRecovering(false)
				n.deferredRollbacks.Store(false)
			}
		}()
	}
	n.startBackground()
	return nil
}

// replayPage applies one redo record to its page if the page's LLSN shows
// the change is missing. Pages are reached through the normal PLock + LBP
// path: the crashed incarnation's PLocks are idempotently re-granted to us,
// preserving the fence against other nodes.
func (n *Node) replayPage(rec *wal.Record, resolve func(*page.Version) common.CSN) error {
	// X is required only when the record actually applies, and then the
	// page is one the crashed incarnation held X on — so the grant is an
	// instant reclaim. Everywhere else S suffices, which avoids waiting
	// behind live nodes' S holds during recovery.
	mode := lockfusion.ModeX
	if err := n.pl.Acquire(rec.Page, mode); err != nil {
		if errors.Is(err, common.ErrFenced) {
			// The page is fenced by ANOTHER crashed node, so our own
			// incarnation did not hold it at crash time — which means
			// this record was pushed (flush-before-release) and is
			// already reflected in the DBP/storage image. Skip.
			return nil
		}
		return err
	}
	defer n.pl.Release(rec.Page)
	f, err := n.lbp.Get(rec.Page)
	if err != nil {
		if rec.Type == wal.RecPageImage && errors.Is(err, common.ErrNotFound) {
			// The page existed only in our lost memory; rebuild it
			// from the image record.
			pg, err := page.Unmarshal(rec.Image)
			if err != nil {
				return err
			}
			f, err := n.lbp.NewPage(pg)
			if err != nil {
				return err
			}
			n.lbp.Unpin(f)
			return nil
		}
		return err
	}
	defer n.lbp.Unpin(f)
	f.Mu.Lock()
	defer f.Mu.Unlock()
	applyRecord(f.Pg, rec, &f.Dirty)
	// Live purges are not logged, so replay onto an older base image can
	// rebuild version chains longer than the page ever held; trim them
	// the same way the live path would, resolving this node's own
	// pre-crash commits from the log outcomes.
	if f.Pg.SizeEstimate() > page.SplitThreshold {
		// Foreign versions go through the page-scoped vectored resolver;
		// our own pre-crash commits still resolve from the log outcomes.
		batch := n.batchResolver(f.Pg)
		res := func(v *page.Version) common.CSN {
			if v.Trx.Node == n.id {
				return resolve(v)
			}
			return batch(v)
		}
		if f.Pg.Purge(n.tf.LastGMV(), res) > 0 {
			f.Dirty = true
		}
	}
	return nil
}

// applyRecord applies rec to pg when rec.LLSN > pg.LLSN (replay idempotence
// rule of §4.4). dirty is set when the page changed.
func applyRecord(pg *page.Page, rec *wal.Record, dirty *bool) {
	if rec.LLSN <= pg.LLSN {
		return
	}
	switch rec.Type {
	case wal.RecInsert:
		pg.InsertVersion(rec.Key, page.Version{
			Trx:     rec.Trx,
			CTS:     common.CSNInit,
			Deleted: rec.Deleted,
			Value:   append([]byte(nil), rec.Value...),
		})
		pg.LLSN = rec.LLSN
	case wal.RecRollback:
		pg.RollbackVersion(rec.Key, rec.Trx)
		pg.LLSN = rec.LLSN
	case wal.RecPageImage:
		img, err := page.Unmarshal(rec.Image)
		if err == nil {
			*pg = *img
		}
	default:
		return
	}
	*dirty = true
}

// RecoverCluster rebuilds the database from shared storage alone after a
// full-cluster crash (CrashAll): every node's redo stream is merged in
// LLSN_bound order (§4.4), redo is applied to the storage page images,
// uncommitted transactions are rolled back using the logged versions, the
// TSO is reseeded above the largest durable CTS, and the logs are
// truncated. Nodes are then re-added fresh by the caller.
func RecoverCluster(store storage.API, txSrv *txfusion.Server) error {
	r := &clusterRecovery{
		store: store,
		pages: make(map[common.PageID]*page.Page),
		dirty: make(map[common.PageID]bool),
	}
	return r.run(txSrv)
}

// RecoverAll is the cluster-level convenience wrapper.
func (c *Cluster) RecoverAll() error {
	err := RecoverCluster(c.store, c.txSrv)
	if c.pmfsRep != nil {
		// Recovery reseeds the TSO with a local write that bypasses the
		// replicated path; re-baseline the follower mirrors on the result.
		c.pmfsRep.Resync()
	}
	return err
}

type clusterRecovery struct {
	store storage.API
	pages map[common.PageID]*page.Page
	dirty map[common.PageID]bool
}

func (r *clusterRecovery) page(id common.PageID) (*page.Page, error) {
	if pg, ok := r.pages[id]; ok {
		return pg, nil
	}
	img, err := r.store.ReadPage(id)
	if err != nil {
		return nil, err
	}
	pg, err := page.Unmarshal(img)
	if err != nil {
		return nil, err
	}
	r.pages[id] = pg
	return pg, nil
}

func (r *clusterRecovery) run(txSrv *txfusion.Server) error {
	var readers []*wal.StreamReader
	for _, node := range r.store.LogNodes() {
		readers = append(readers, wal.NewStreamReader(r.store, node, r.store.LogStartLSN(node), 0))
	}
	merge := wal.NewMergeReader(readers...)

	type trxState struct {
		inserts  []*wal.Record
		finished bool
	}
	trxs := make(map[common.GTrxID]*trxState)
	commitCTS := make(map[common.GTrxID]common.CSN)
	var order []common.GTrxID
	var maxCTS common.CSN

	for {
		rec, err := merge.Next()
		if err != nil {
			return err
		}
		if rec == nil {
			break
		}
		switch rec.Type {
		case wal.RecInsert, wal.RecRollback:
			pg, err := r.page(rec.Page)
			if err != nil {
				return fmt.Errorf("recovery: page %d for record LLSN %d: %w", rec.Page, rec.LLSN, err)
			}
			d := r.dirty[rec.Page]
			applyRecord(pg, rec, &d)
			r.dirty[rec.Page] = d
			if rec.Type == wal.RecInsert {
				st := trxs[rec.Trx]
				if st == nil {
					st = &trxState{}
					trxs[rec.Trx] = st
					order = append(order, rec.Trx)
				}
				st.inserts = append(st.inserts, rec)
			}
		case wal.RecPageImage:
			pg := r.pages[rec.Page]
			if pg == nil {
				// May exist only in storage, or be brand new.
				img, err := r.store.ReadPage(rec.Page)
				if err == nil {
					if pg, err = page.Unmarshal(img); err != nil {
						return err
					}
				} else {
					pg = page.New(rec.Page, rec.Space, page.TypeLeaf)
				}
				r.pages[rec.Page] = pg
			}
			d := r.dirty[rec.Page]
			applyRecord(pg, rec, &d)
			r.dirty[rec.Page] = d
		case wal.RecCommit, wal.RecAbort:
			st := trxs[rec.Trx]
			if st == nil {
				st = &trxState{}
				trxs[rec.Trx] = st
			}
			st.finished = true
			if rec.Type == wal.RecCommit {
				commitCTS[rec.Trx] = rec.CTS
			}
			if rec.CTS > maxCTS {
				maxCTS = rec.CTS
			}
		}
	}

	// Undo pass: roll back uncommitted transactions. Rows may have moved
	// across pages via SMOs, so locate each key by descending the
	// recovered tree.
	for _, g := range order {
		st := trxs[g]
		if st.finished {
			continue
		}
		for i := len(st.inserts) - 1; i >= 0; i-- {
			rec := st.inserts[i]
			leaf, err := r.findLeaf(rec.Space, rec.Key)
			if err != nil {
				return fmt.Errorf("recovery: rollback %v key %q: %w", g, rec.Key, err)
			}
			if leaf != nil && leaf.RollbackVersion(rec.Key, g) {
				r.dirty[leaf.ID] = true
			}
		}
	}

	// Visibility finalization: every version that survived the undo pass
	// was written by a committed transaction, but its CTS may be
	// unstamped and its writer's TIT is gone. Stamp it now — with the
	// logged commit timestamp, or CSNMin when even the commit record was
	// checkpointed away — so recovered rows resolve without any TIT.
	ctsFor := func(g common.GTrxID) common.CSN {
		if st := trxs[g]; st != nil {
			// Rolled-back writers left no versions; finished ones
			// here are committed.
			if c, ok := commitCTS[g]; ok {
				return c
			}
		}
		return common.CSNMin
	}
	for _, id := range r.store.PageIDs() {
		if _, loaded := r.pages[id]; !loaded {
			if _, err := r.page(id); err != nil {
				return err
			}
		}
	}
	for id, pg := range r.pages {
		for ri := range pg.Rows {
			for vi := range pg.Rows[ri].Versions {
				v := &pg.Rows[ri].Versions[vi]
				if v.CTS == common.CSNInit && !v.Trx.Zero() {
					v.CTS = ctsFor(v.Trx)
					r.dirty[id] = true
				}
			}
		}
		// With every version stamped, trim the chains replay may have
		// over-grown (live purges are unlogged): at this point there
		// are no active transactions, so only each row's newest
		// committed version is reachable.
		if pg.SizeEstimate() > page.SplitThreshold {
			if pg.Purge(maxCTS, func(v *page.Version) common.CSN { return v.CTS }) > 0 {
				r.dirty[id] = true
			}
		}
	}

	// Write back every changed page, reseed the TSO, truncate the logs.
	for id, pg := range r.pages {
		if !r.dirty[id] {
			continue
		}
		img, err := pg.Marshal()
		if err != nil {
			return err
		}
		if err := r.store.WritePage(id, img); err != nil {
			return err
		}
	}
	if txSrv != nil {
		if maxCTS < common.CSNMin {
			maxCTS = common.CSNMin
		}
		txSrv.SetTSO(maxCTS)
	}
	for _, node := range r.store.LogNodes() {
		r.store.LogTruncate(node, r.store.LogDurableLSN(node))
	}
	return nil
}

// findLeaf descends the recovered tree for space to the leaf owning key,
// using the anchor from the space directory. Returns nil if the space is
// unknown (orphaned records from an unfinished CreateSpace).
func (r *clusterRecovery) findLeaf(space common.SpaceID, key []byte) (*page.Page, error) {
	dir := decodeSpaceDir(r.store.GetMeta(spaceDirKey))
	var anchor common.PageID
	for _, si := range dir {
		if si.Space == space {
			anchor = si.Anchor
			break
		}
	}
	if anchor == common.InvalidPageID {
		return nil, nil
	}
	cur, err := r.page(anchor)
	if err != nil {
		return nil, err
	}
	for depth := 0; depth < 64; depth++ {
		if cur.Type == page.TypeLeaf {
			return cur, nil
		}
		child := cur.ChildFor(key)
		if child == common.InvalidPageID {
			return nil, fmt.Errorf("recovery: space %d: no route for key: %w", space, common.ErrCorrupt)
		}
		if cur, err = r.page(child); err != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("recovery: space %d: descent too deep: %w", space, common.ErrCorrupt)
}

// VerifyTree walks a space's recovered tree in storage and checks ordering
// and leaf-chain invariants; a post-recovery diagnostic used by tests.
func VerifyTree(store storage.API, anchor common.PageID) (rows int, err error) {
	load := func(id common.PageID) (*page.Page, error) {
		img, err := store.ReadPage(id)
		if err != nil {
			return nil, err
		}
		return page.Unmarshal(img)
	}
	a, err := load(anchor)
	if err != nil {
		return 0, err
	}
	cur, err := load(a.ChildFor(nil))
	if err != nil {
		return 0, err
	}
	for cur.Type != page.TypeLeaf {
		child := cur.ChildFor(nil)
		if child == common.InvalidPageID {
			return 0, fmt.Errorf("verify: empty internal page %d", cur.ID)
		}
		if cur, err = load(child); err != nil {
			return 0, err
		}
	}
	var last []byte
	for {
		for i := range cur.Rows {
			if last != nil && bytes.Compare(cur.Rows[i].Key, last) <= 0 {
				return rows, fmt.Errorf("verify: key order violation on page %d", cur.ID)
			}
			last = cur.Rows[i].Key
			rows++
		}
		if cur.Next == common.InvalidPageID {
			return rows, nil
		}
		if cur, err = load(cur.Next); err != nil {
			return rows, err
		}
	}
}
