package common

import "time"

// Fault injection plumbing shared by the fabric (internal/rdma) and the
// shared store (internal/storage). Both expose a SetInjector hook; the
// chaos engine (internal/chaos) implements FaultInjector and drives every
// per-op fault decision from a single seed so a failure run is replayable.
//
// The types live here — at the bottom of the import graph — so that one
// injector can serve both layers without rdma/storage importing chaos.

// AnyNode marks an unknown or unspecified initiating node in a FaultOp.
// Raw Fabric verbs (no bound source) and storage page ops report it.
const AnyNode NodeID = 0xFFFE

// StorageNode is the pseudo node id used as the destination of shared
// storage operations in fault descriptors. The store is not a fabric
// endpoint, but giving it an address lets one reachability matrix cover
// "node X lost its storage path" alongside node↔node partitions.
const StorageNode NodeID = 0xFFFD

// Fault op layers.
const (
	FaultLayerRDMA    = "rdma"
	FaultLayerStorage = "storage"
)

// Fault op classes. RDMA classes mirror the fabric verbs; storage classes
// mirror the store's I/O entry points.
const (
	FaultRead      = "read"      // one-sided READ
	FaultWrite     = "write"     // one-sided WRITE
	FaultAtomic    = "atomic"    // CAS / FETCH-ADD
	FaultRPC       = "rpc"       // two-sided call
	FaultPageRead  = "pageread"  // storage page read
	FaultPageWrite = "pagewrite" // storage page write
	FaultLogSync   = "logsync"   // storage log force (delay-only)
	FaultLogRead   = "logread"   // storage log read
)

// FaultOp describes one operation about to execute, in enough detail for
// selector matching and for the structured fault event log.
type FaultOp struct {
	Layer string // FaultLayerRDMA or FaultLayerStorage
	Class string // one of the Fault* class constants
	Src   NodeID // initiating node; AnyNode when the caller is unbound
	Dst   NodeID // target node; StorageNode for storage ops
	Name  string // region name, RPC service, or storage stream label
	Len   int    // payload size in bytes (0 when not applicable)
}

// FaultDecision is an injector's verdict for one operation. The zero value
// means "no fault": the op proceeds normally.
type FaultDecision struct {
	// Delay is extra latency injected before the op executes.
	Delay time.Duration
	// Err, when non-nil, fails the op without executing it (after Delay).
	// Use ErrInjected for transient faults and ErrUnreachable for
	// partitions so hardened clients classify them as retryable.
	Err error
	// DropReply (RPC only) executes the handler but fails the response,
	// exercising retry idempotency. Ignored when Err is set.
	DropReply bool
	// Duplicate executes an idempotent one-sided READ/WRITE twice,
	// simulating duplicate delivery. Ignored for atomics and RPCs.
	Duplicate bool
}

// FaultInjector decides the fault treatment of one operation. It is called
// on the op's issuing goroutine and must be safe for concurrent use.
type FaultInjector func(op FaultOp) FaultDecision
