package common

import (
	"encoding/binary"
	"errors"
	"sync/atomic"
)

// Epoch is a cluster membership epoch: a monotonically increasing counter
// bumped every time the membership changes (a node joins, or a survivor
// evicts a suspect). A node learns its incarnation epoch when it joins and
// stamps it on every fusion-service request; PMFS rejects requests carrying
// an epoch that no longer names a live incarnation, fencing out zombies
// that were evicted while merely slow.
type Epoch uint64

// ErrStaleEpoch reports a request stamped with an evicted incarnation's
// epoch. It is deliberately NOT transient (Retry fails fast) and NOT
// retryable at the application level: the issuing node has been fenced out
// of the cluster and must abort, not retry — retrying would be exactly the
// zombie behaviour the epoch exists to stop.
var ErrStaleEpoch = errors.New("polardbmp: stale cluster epoch")

// EpochGate validates a request's (node, epoch) stamp against the current
// membership. A nil gate (membership not wired) accepts everything; gated
// servers must also accept epoch 0, which marks system-internal or
// pre-membership requests.
type EpochGate func(node NodeID, e Epoch) error

// EpochStamp is a node's current incarnation epoch, shared by all of its
// fusion clients. A nil *EpochStamp is valid and stamps nothing, so
// clients built outside a cluster (unit tests) keep the legacy wire format.
type EpochStamp struct{ v atomic.Uint64 }

// Load returns the current epoch (0 until the node joins).
func (s *EpochStamp) Load() Epoch {
	if s == nil {
		return 0
	}
	return Epoch(s.v.Load())
}

// Store publishes a new incarnation epoch.
func (s *EpochStamp) Store(e Epoch) { s.v.Store(uint64(e)) }

// Stamp appends the current epoch to a fusion request. Requests keep their
// fixed-size prefix, so servers that predate stamping parse them unchanged;
// stamped servers read the 8 trailing bytes with TrailingEpoch.
func (s *EpochStamp) Stamp(req []byte) []byte {
	if s == nil {
		return req
	}
	return binary.LittleEndian.AppendUint64(req, s.v.Load())
}

// TrailingEpoch extracts the epoch stamped after a request's fixed base
// length, or 0 when the request is unstamped.
func TrailingEpoch(req []byte, base int) Epoch {
	if len(req) < base+8 {
		return 0
	}
	return Epoch(binary.LittleEndian.Uint64(req[base:]))
}
