package common

import "time"

// Deadline is a per-transaction time budget. The zero value means
// "unbounded": every check on it is a single struct-field test with no
// clock read and no allocation, which is what keeps the no-deadline commit
// hot path free (the alloc guard in deadline_test.go pins this).
//
// A non-zero Deadline carries the monotonic reading time.Now embeds, so
// expiry checks are wall-clock-adjustment safe. Deadlines propagate by
// value: every layer from the engine down to the fabric verbs receives the
// same point in time, so the budget is end-to-end rather than per-hop.
type Deadline struct {
	t time.Time
}

// DeadlineAfter returns a deadline d from now. Non-positive budgets return
// the zero (unbounded) Deadline.
func DeadlineAfter(d time.Duration) Deadline {
	if d <= 0 {
		return Deadline{}
	}
	return Deadline{t: time.Now().Add(d)}
}

// DeadlineAt returns a deadline at the given instant.
func DeadlineAt(t time.Time) Deadline { return Deadline{t: t} }

// IsZero reports whether the deadline is unbounded.
func (d Deadline) IsZero() bool { return d.t.IsZero() }

// Expired reports whether the deadline has passed. The zero Deadline never
// expires and is checked without reading the clock.
func (d Deadline) Expired() bool {
	return !d.t.IsZero() && !time.Now().Before(d.t)
}

// Remaining returns the time left and whether the deadline is bounded at
// all. A bounded, already-expired deadline returns a non-positive duration.
func (d Deadline) Remaining() (time.Duration, bool) {
	if d.t.IsZero() {
		return 0, false
	}
	return time.Until(d.t), true
}

// Err returns ErrDeadlineExceeded if the deadline has passed, nil
// otherwise. It is the standard guard at blocking-operation entry points:
//
//	if err := dl.Err(); err != nil { return err }
func (d Deadline) Err() error {
	if d.Expired() {
		return ErrDeadlineExceeded
	}
	return nil
}
