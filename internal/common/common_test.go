package common

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestGTrxIDRoundTrip(t *testing.T) {
	g := GTrxID{Node: 3, Trx: 987654321, Slot: 42, Version: 7}
	b := g.Marshal(nil)
	if len(b) != GTrxIDSize {
		t.Fatalf("marshaled size = %d, want %d", len(b), GTrxIDSize)
	}
	got, rest, err := UnmarshalGTrxID(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != g {
		t.Fatalf("round trip: got %v want %v", got, g)
	}
	if len(rest) != 0 {
		t.Fatalf("rest = %d bytes, want 0", len(rest))
	}
}

func TestGTrxIDRoundTripProperty(t *testing.T) {
	f := func(node uint16, trx uint64, slot, ver uint32) bool {
		g := GTrxID{Node: NodeID(node), Trx: TrxID(trx), Slot: slot, Version: ver}
		got, _, err := UnmarshalGTrxID(g.Marshal(nil))
		return err == nil && got == g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGTrxIDMarshalAppends(t *testing.T) {
	prefix := []byte{0xAA, 0xBB}
	g := GTrxID{Node: 1, Trx: 2, Slot: 3, Version: 4}
	b := g.Marshal(prefix)
	if len(b) != 2+GTrxIDSize {
		t.Fatalf("len = %d", len(b))
	}
	got, _, err := UnmarshalGTrxID(b[2:])
	if err != nil || got != g {
		t.Fatalf("got %v err %v", got, err)
	}
}

func TestUnmarshalGTrxIDShort(t *testing.T) {
	_, _, err := UnmarshalGTrxID(make([]byte, GTrxIDSize-1))
	if !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("err = %v, want ErrShortBuffer", err)
	}
}

func TestGTrxIDZero(t *testing.T) {
	if !(GTrxID{}).Zero() {
		t.Fatal("zero value not Zero()")
	}
	if (GTrxID{Node: 1}).Zero() {
		t.Fatal("non-zero value is Zero()")
	}
}

func TestIsRetryable(t *testing.T) {
	for _, err := range []error{ErrDeadlock, ErrWriteConflict, ErrLockTimeout} {
		if !IsRetryable(err) {
			t.Errorf("%v should be retryable", err)
		}
	}
	for _, err := range []error{ErrNotFound, ErrCorrupt, ErrNodeDown, nil} {
		if IsRetryable(err) {
			t.Errorf("%v should not be retryable", err)
		}
	}
}

func TestCSNSentinelOrdering(t *testing.T) {
	if !(CSNInit < CSNMin && CSNMin < CSNMax) {
		t.Fatal("CSN sentinels must order Init < Min < Max")
	}
}
