// Package common holds identifiers, constants and binary helpers shared by
// every polardbmp subsystem. It sits at the bottom of the import graph and
// must not import any other internal package.
package common

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// NodeID identifies a primary node in the cluster. PMFS itself uses the
// reserved id PMFSNode.
type NodeID uint16

// PMFSNode is the fabric address of the Polar Multi-Primary Fusion Server.
const PMFSNode NodeID = 0xFFFF

// PageID identifies a page in the shared storage / buffer pools. Pages are
// allocated from a cluster-wide counter kept on shared storage so that ids
// never collide across nodes.
type PageID uint64

// InvalidPageID marks "no page" (e.g. an absent child or overflow pointer).
const InvalidPageID PageID = 0

// SpaceID identifies a tablespace (one B-tree index: a table's primary index
// or one of its secondary indexes).
type SpaceID uint32

// TrxID is a node-local transaction id. It is unique and monotonically
// increasing within one node's lifetime (it restarts from a persisted high
// watermark after recovery).
type TrxID uint64

// CSN is a commit sequence number (the paper's CTS — commit timestamp)
// drawn from the global Timestamp Oracle.
type CSN uint64

const (
	// CSNInit is the initial CTS of a transaction / row version: the
	// transaction has not committed (or the row's CTS was never stamped).
	CSNInit CSN = 0
	// CSNMin indicates "visible to every snapshot" (the owning TIT slot
	// was recycled, which only happens once the transaction's changes are
	// visible to all active views).
	CSNMin CSN = 1
	// CSNMax indicates "visible to no snapshot except the owner" (the
	// owning transaction is still active).
	CSNMax CSN = ^CSN(0)
)

// LLSN is the logical log sequence number of §4.4: a node-local counter that
// establishes a partial order across nodes such that all redo records for
// one page are ordered by LLSN in generation order.
type LLSN uint64

// LSN is a node-local physical log sequence number; it doubles as the byte
// offset of a record within that node's redo log file.
type LSN uint64

// GTrxID is the global transaction id of §4.1: {node_id, trx_id, slot_id,
// version}. With it, any node can locate the owning TIT slot (local or via a
// one-sided RDMA read) and decide the transaction's state.
type GTrxID struct {
	Node    NodeID
	Trx     TrxID
	Slot    uint32
	Version uint32
}

// GTrxIDSize is the marshaled size of a GTrxID.
const GTrxIDSize = 2 + 8 + 4 + 4

// Zero reports whether g is the zero id (no transaction).
func (g GTrxID) Zero() bool { return g == GTrxID{} }

func (g GTrxID) String() string {
	return fmt.Sprintf("g{n%d t%d s%d v%d}", g.Node, g.Trx, g.Slot, g.Version)
}

// Marshal appends the binary form of g to b.
func (g GTrxID) Marshal(b []byte) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(g.Node))
	b = binary.LittleEndian.AppendUint64(b, uint64(g.Trx))
	b = binary.LittleEndian.AppendUint32(b, g.Slot)
	b = binary.LittleEndian.AppendUint32(b, g.Version)
	return b
}

// UnmarshalGTrxID decodes a GTrxID from the front of b and returns the rest.
func UnmarshalGTrxID(b []byte) (GTrxID, []byte, error) {
	if len(b) < GTrxIDSize {
		return GTrxID{}, b, ErrShortBuffer
	}
	g := GTrxID{
		Node:    NodeID(binary.LittleEndian.Uint16(b)),
		Trx:     TrxID(binary.LittleEndian.Uint64(b[2:])),
		Slot:    binary.LittleEndian.Uint32(b[10:]),
		Version: binary.LittleEndian.Uint32(b[14:]),
	}
	return g, b[GTrxIDSize:], nil
}

// Shared error values. Subsystems wrap these with context; callers test with
// errors.Is.
var (
	ErrShortBuffer   = errors.New("polardbmp: short buffer")
	ErrCorrupt       = errors.New("polardbmp: corrupt data")
	ErrNodeDown      = errors.New("polardbmp: node is down")
	ErrNotFound      = errors.New("polardbmp: not found")
	ErrKeyExists     = errors.New("polardbmp: key already exists")
	ErrDeadlock      = errors.New("polardbmp: deadlock detected")
	ErrFenced        = errors.New("polardbmp: page fenced by crashed node")
	ErrLockTimeout   = errors.New("polardbmp: lock wait timeout")
	ErrWriteConflict = errors.New("polardbmp: write conflict") // OCC baseline abort
	ErrTxDone        = errors.New("polardbmp: transaction already finished")
	ErrClosed        = errors.New("polardbmp: closed")
	ErrReadOnly      = errors.New("polardbmp: read-only transaction")

	// ErrDeadlineExceeded means a transaction exhausted its Deadline budget.
	// It is deliberately NOT retryable and NOT transient: the budget is
	// end-to-end, so once it is spent, neither the communication layer nor
	// the application should try again — the transaction aborts, releases
	// its locks, and the caller decides with a fresh budget.
	ErrDeadlineExceeded = errors.New("polardbmp: transaction deadline exceeded")

	// ErrOverloaded means a fusion server shed the request at admission
	// because the target stripe's queue was full. It is transient (the
	// communication layer retries it with jittered backoff, by which time
	// the queue has usually drained) and retryable (a transaction that
	// still fails after backoff may be retried whole by the application).
	ErrOverloaded = errors.New("polardbmp: fusion server overloaded")

	// Fabric/storage addressing errors (typed so retry logic can classify
	// them with errors.Is instead of string matching).
	ErrNoRegion    = errors.New("polardbmp: no such memory region")
	ErrNoService   = errors.New("polardbmp: no such rpc service")
	ErrOutOfBounds = errors.New("polardbmp: region access out of bounds")

	// Transient communication faults (chaos-injected). These are the only
	// errors IsTransient accepts: the communication layer retries them with
	// backoff, unlike crash fences and deadlocks which must fail fast.
	ErrInjected    = errors.New("polardbmp: injected transient fault")
	ErrUnreachable = errors.New("polardbmp: destination unreachable")

	// ErrUnknownNode reports a node id outside the membership table or never
	// allocated — and, from slot allocation, a table with no free slot left.
	// Every bounds path across membership/core returns this one sentinel so
	// callers on either side of a socket can classify it with errors.Is.
	ErrUnknownNode = errors.New("polardbmp: unknown node id")

	// ErrCommitAmbiguous means a commit request was sent but the connection
	// died before the outcome came back: the server may or may not have
	// committed. It is deliberately NOT retryable and NOT transient — blindly
	// re-running the transaction could double-apply it. The caller must
	// resolve the real outcome (wire.Client.ResolveTx / core.TxStatus) before
	// deciding anything.
	ErrCommitAmbiguous = errors.New("polardbmp: commit outcome unknown")

	// ErrDraining means the target node is gracefully draining and refuses
	// new transactions. It is deliberately NOT retryable against the same
	// node (the drain only moves forward); callers — the gateway, a load
	// balancer, an application retry loop — should route the transaction to
	// another primary instead.
	ErrDraining = errors.New("polardbmp: node is draining")
)

// IsRetryable reports whether err represents a transient transaction failure
// the application is expected to retry (deadlock / OCC conflict / lock
// timeout / admission-control shed), matching how Aurora-MM surfaces write
// conflicts (§2.3). ErrDeadlineExceeded is deliberately absent: the budget
// was the application's own bound, so retrying inside it is meaningless.
func IsRetryable(err error) bool {
	return errors.Is(err, ErrDeadlock) || errors.Is(err, ErrWriteConflict) ||
		errors.Is(err, ErrLockTimeout) || errors.Is(err, ErrFenced) ||
		errors.Is(err, ErrOverloaded)
}
