package common

import (
	"errors"
	"fmt"
	"testing"
)

func TestIsTransient(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{ErrInjected, true},
		{ErrUnreachable, true},
		{fmt.Errorf("wrapped: %w", ErrInjected), true},
		{fmt.Errorf("deep: %w", fmt.Errorf("wrap: %w", ErrUnreachable)), true},
		{ErrNodeDown, false},
		{ErrFenced, false},
		{ErrDeadlock, false},
		{ErrLockTimeout, false},
		{ErrNoRegion, false},
		{ErrNoService, false},
		{ErrOutOfBounds, false},
		{nil, false},
		{errors.New("arbitrary"), false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestRetrySucceedsAfterTransients(t *testing.T) {
	attempts := 0
	err := Retry(RetryPolicy{MaxAttempts: 5, BaseDelay: 1, MaxDelay: 2}, func() error {
		attempts++
		if attempts < 3 {
			return fmt.Errorf("flaky: %w", ErrInjected)
		}
		return nil
	})
	if err != nil || attempts != 3 {
		t.Fatalf("err=%v attempts=%d", err, attempts)
	}
}

func TestRetryExhaustionPreservesSentinel(t *testing.T) {
	attempts := 0
	err := Retry(RetryPolicy{MaxAttempts: 4, BaseDelay: 1, MaxDelay: 2}, func() error {
		attempts++
		return fmt.Errorf("always: %w", ErrUnreachable)
	})
	if attempts != 4 {
		t.Fatalf("attempts = %d, want 4", attempts)
	}
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("exhausted error lost its sentinel: %v", err)
	}
}

func TestRetryFailsFastOnPermanentErrors(t *testing.T) {
	for _, perm := range []error{ErrNodeDown, ErrFenced, ErrDeadlock, ErrNotFound} {
		attempts := 0
		err := Retry(DefaultRetryPolicy(), func() error {
			attempts++
			return perm
		})
		if attempts != 1 {
			t.Fatalf("%v retried %d times", perm, attempts)
		}
		if !errors.Is(err, perm) {
			t.Fatalf("permanent error rewritten: %v", err)
		}
	}
}

func TestNoRetryPolicySingleAttempt(t *testing.T) {
	attempts := 0
	err := Retry(NoRetryPolicy(), func() error {
		attempts++
		return ErrInjected
	})
	if attempts != 1 {
		t.Fatalf("NoRetryPolicy ran %d attempts", attempts)
	}
	// The error passes through unwrapped: no misleading "exhausted" text.
	if !errors.Is(err, ErrInjected) || err.Error() != ErrInjected.Error() {
		t.Fatalf("NoRetryPolicy error = %v", err)
	}
}

func TestRetryNilOnFirstTry(t *testing.T) {
	attempts := 0
	if err := Retry(DefaultRetryPolicy(), func() error { attempts++; return nil }); err != nil || attempts != 1 {
		t.Fatalf("err=%v attempts=%d", err, attempts)
	}
}

// A stale-epoch rejection means this node incarnation has been fenced out:
// retrying can never succeed (the epoch only moves further away), so the
// fusion clients' retry loops must surface it on the first attempt, and the
// application must not treat it as a retry-the-transaction error either.
func TestRetryFailsFastOnStaleEpoch(t *testing.T) {
	attempts := 0
	err := Retry(DefaultRetryPolicy(), func() error {
		attempts++
		return fmt.Errorf("lockfusion: plock: %w", ErrStaleEpoch)
	})
	if attempts != 1 {
		t.Fatalf("stale epoch retried %d times, want fail-fast", attempts)
	}
	if !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale epoch sentinel lost: %v", err)
	}
	if IsTransient(ErrStaleEpoch) {
		t.Fatal("IsTransient(ErrStaleEpoch) = true")
	}
	if IsRetryable(ErrStaleEpoch) {
		t.Fatal("IsRetryable(ErrStaleEpoch) = true")
	}
}
