package common

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// RetryPolicy bounds the transient-fault retry loop used by the RPC and
// one-sided client paths. The zero value retries with the defaults; use
// NoRetryPolicy to disable retrying entirely.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts (first try included).
	// 0 means DefaultRetryAttempts; 1 disables retrying.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; it doubles per
	// attempt (with jitter) up to MaxDelay. 0 means the default.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. 0 means the default.
	MaxDelay time.Duration
}

// Retry defaults: sized for a µs-scale fabric, so even eight attempts cost
// well under a storage I/O.
const (
	DefaultRetryAttempts = 8
	defaultRetryBase     = 20 * time.Microsecond
	defaultRetryMax      = 2 * time.Millisecond
)

// DefaultRetryPolicy returns the production retry policy.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: DefaultRetryAttempts,
		BaseDelay:   defaultRetryBase,
		MaxDelay:    defaultRetryMax,
	}
}

// NoRetryPolicy disables retrying: every transient fault surfaces to the
// caller on the first attempt (chaos ablations, fail-fast deployments).
func NoRetryPolicy() RetryPolicy { return RetryPolicy{MaxAttempts: 1} }

func (p RetryPolicy) fill() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = DefaultRetryAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = defaultRetryBase
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = defaultRetryMax
	}
	return p
}

// IsTransient reports whether err is a transient fabric/storage fault that
// the communication layer itself should retry: an injected fault, a
// partition, or an admission-control shed (the jittered backoff below IS
// the overload back-pressure mechanism). Crash fences (ErrNodeDown,
// ErrFenced), deadlocks, deadline expiry, and protocol errors are
// deliberately excluded — those must fail fast so the engine's
// crash-recovery and abort paths keep their semantics.
func IsTransient(err error) bool {
	return errors.Is(err, ErrInjected) || errors.Is(err, ErrUnreachable) ||
		errors.Is(err, ErrOverloaded)
}

// jitterState drives the backoff jitter without math/rand's global lock.
// A fixed seed keeps runs reproducible when ops are issued serially.
var jitterState atomic.Uint64

func init() { jitterState.Store(0x9E3779B97F4A7C15) }

func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	// splitmix64 step.
	z := jitterState.Add(0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return time.Duration(z % uint64(d))
}

// Retry runs op, retrying transient failures (per IsTransient) with
// exponential backoff plus equal jitter, up to p.MaxAttempts attempts.
// Non-transient errors — crash fences, deadlocks, not-found — return
// immediately. The final transient error is wrapped (errors.Is still
// matches ErrInjected/ErrUnreachable) with the attempt count.
func Retry(p RetryPolicy, op func() error) error {
	return RetryDeadline(p, Deadline{}, op)
}

// RetryDeadline is Retry bounded by a caller deadline: the loop never
// sleeps into an exhausted budget. When the next backoff would meet or
// cross the deadline, it returns immediately with the last transient error
// wrapped in ErrDeadlineExceeded (errors.Is matches both), because a
// deadline-bounded caller is better served by a prompt typed failure than
// by one more attempt it can no longer use. A zero Deadline makes this
// identical to Retry.
func RetryDeadline(p RetryPolicy, dl Deadline, op func() error) error {
	err := op()
	if err == nil || !IsTransient(err) {
		return err
	}
	p = p.fill()
	if p.MaxAttempts <= 1 {
		return err
	}
	delay := p.BaseDelay
	for attempt := 2; attempt <= p.MaxAttempts; attempt++ {
		sleep := delay/2 + jitter(delay/2)
		if rem, bounded := dl.Remaining(); bounded && sleep >= rem {
			return fmt.Errorf("retry budget exhausted after %d attempts: %w (last: %w)",
				attempt-1, ErrDeadlineExceeded, err)
		}
		time.Sleep(sleep)
		if err = op(); err == nil || !IsTransient(err) {
			return err
		}
		if delay *= 2; delay > p.MaxDelay {
			delay = p.MaxDelay
		}
	}
	return fmt.Errorf("retries exhausted after %d attempts: %w", p.MaxAttempts, err)
}
