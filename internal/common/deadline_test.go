package common

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestDeadlineZeroValue(t *testing.T) {
	var dl Deadline
	if !dl.IsZero() {
		t.Fatal("zero Deadline must report IsZero")
	}
	if dl.Expired() {
		t.Fatal("zero Deadline must never expire")
	}
	if err := dl.Err(); err != nil {
		t.Fatalf("zero Deadline Err = %v", err)
	}
	if _, bounded := dl.Remaining(); bounded {
		t.Fatal("zero Deadline must be unbounded")
	}
	if !DeadlineAfter(0).IsZero() || !DeadlineAfter(-time.Second).IsZero() {
		t.Fatal("non-positive budgets must produce the unbounded Deadline")
	}
}

func TestDeadlineExpiry(t *testing.T) {
	dl := DeadlineAfter(time.Hour)
	if dl.IsZero() || dl.Expired() {
		t.Fatal("fresh one-hour deadline must be bounded and unexpired")
	}
	if rem, bounded := dl.Remaining(); !bounded || rem <= 0 || rem > time.Hour {
		t.Fatalf("Remaining = %v bounded=%v", rem, bounded)
	}
	past := DeadlineAt(time.Now().Add(-time.Millisecond))
	if !past.Expired() {
		t.Fatal("past deadline must be expired")
	}
	if !errors.Is(past.Err(), ErrDeadlineExceeded) {
		t.Fatalf("past deadline Err = %v", past.Err())
	}
	if rem, bounded := past.Remaining(); !bounded || rem > 0 {
		t.Fatalf("expired Remaining = %v bounded=%v", rem, bounded)
	}
}

// TestDeadlineZeroAllocs pins the cost of the no-deadline hot path: the
// checks the commit path performs on an unset Deadline must not allocate
// (and, structurally, never read the clock). This is the deadline analogue
// of trace's TestNilTracerZeroAllocs.
func TestDeadlineZeroAllocs(t *testing.T) {
	var dl Deadline
	allocs := testing.AllocsPerRun(1000, func() {
		if dl.Expired() {
			t.Fatal("unreachable")
		}
		if err := dl.Err(); err != nil {
			t.Fatal("unreachable")
		}
		if !dl.IsZero() {
			t.Fatal("unreachable")
		}
	})
	if allocs != 0 {
		t.Fatalf("unset Deadline checks allocate %.1f/op, want 0", allocs)
	}
	// A set deadline is the slow path but must still be allocation-free.
	set := DeadlineAfter(time.Hour)
	allocs = testing.AllocsPerRun(1000, func() {
		if set.Expired() {
			t.Fatal("unreachable")
		}
	})
	if allocs != 0 {
		t.Fatalf("set Deadline check allocates %.1f/op, want 0", allocs)
	}
}

func TestErrorClassification(t *testing.T) {
	if !IsTransient(ErrOverloaded) {
		t.Fatal("ErrOverloaded must be transient (Retry absorbs it with backoff)")
	}
	if !IsRetryable(ErrOverloaded) {
		t.Fatal("ErrOverloaded must be application-retryable")
	}
	if IsTransient(ErrDeadlineExceeded) || IsRetryable(ErrDeadlineExceeded) {
		t.Fatal("ErrDeadlineExceeded must be neither transient nor retryable")
	}
	wrapped := fmt.Errorf("ctx: %w", ErrOverloaded)
	if !IsTransient(wrapped) || !IsRetryable(wrapped) {
		t.Fatal("classification must survive wrapping")
	}
}

func TestRetryDeadlineStopsAtBudget(t *testing.T) {
	calls := 0
	start := time.Now()
	dl := DeadlineAfter(200 * time.Microsecond)
	err := RetryDeadline(RetryPolicy{MaxAttempts: 50, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}, dl,
		func() error { calls++; return fmt.Errorf("flaky: %w", ErrInjected) })
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, must still wrap the last transient error", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("RetryDeadline slept %v past a 200µs budget", elapsed)
	}
	if calls == 0 || calls >= 50 {
		t.Fatalf("calls = %d, want a handful bounded by the budget", calls)
	}
}

func TestRetryDeadlineZeroIsPlainRetry(t *testing.T) {
	calls := 0
	err := RetryDeadline(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond},
		Deadline{}, func() error {
			calls++
			if calls < 3 {
				return ErrInjected
			}
			return nil
		})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want success on attempt 3", err, calls)
	}
}

func TestRetryAbsorbsOverloadedShed(t *testing.T) {
	calls := 0
	err := Retry(RetryPolicy{MaxAttempts: 4, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond},
		func() error {
			calls++
			if calls < 3 {
				return fmt.Errorf("shed: %w", ErrOverloaded)
			}
			return nil
		})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want the shed absorbed by backoff", err, calls)
	}
}
