package workload

import (
	"fmt"
	"math/rand"
	"sync/atomic"
)

// ProdMix is the synthetic stand-in for the Alibaba trading-service trace
// (§5.2, Figure 10; DESIGN.md substitution S5): memory-intensive, a 3:2:5
// insert:update:select statement mix, well-partitioned at the application
// level (each node works its own key range), with a handful of statements
// per transaction.
type ProdMix struct {
	// Nodes is the cluster size the key space is partitioned for.
	Nodes int
	// HotRows is the per-node working set receiving updates/selects.
	HotRows int
	// StatementsPerTx (trades bundle a few statements).
	StatementsPerTx int
	// ValueSize is the order-record payload size.
	ValueSize int
	// Pacer injects per-statement service time (figure harness).
	Pacer

	table  Table
	nextID [64]atomic.Uint64 // per-node insert sequence
}

// DefaultProdMix returns a box-scale configuration.
func DefaultProdMix(nodes int) *ProdMix {
	return &ProdMix{Nodes: nodes, HotRows: 2000, StatementsPerTx: 5, ValueSize: 200}
}

func (p *ProdMix) key(node int, id uint64) []byte {
	return []byte(fmt.Sprintf("trade-%02d-%012d", node, id))
}

// Load creates the trade table and seeds each node's hot rows.
func (p *ProdMix) Load(db DB) error {
	tab, err := db.CreateTable("prod_trades")
	if err != nil {
		return err
	}
	p.table = tab
	const batch = 200
	for node := 0; node < p.Nodes; node++ {
		for base := 0; base < p.HotRows; base += batch {
			tx, err := db.Begin(node % db.NodeCount())
			if err != nil {
				return err
			}
			for i := base; i < base+batch && i < p.HotRows; i++ {
				if err := tx.Insert(p.table, p.key(node, uint64(i)), make([]byte, p.ValueSize)); err != nil {
					tx.Rollback()
					return err
				}
			}
			if err := tx.Commit(); err != nil {
				return err
			}
		}
		p.nextID[node].Store(uint64(p.HotRows))
	}
	return nil
}

// TxFunc returns the 3:2:5 insert:update:select generator, partitioned so
// node nd only touches its own trades.
func (p *ProdMix) TxFunc(node, thread int) TxFunc {
	rng := rand.New(rand.NewSource(int64(node)*27644437 + int64(thread)*613 + 5))
	return func(db DB, nd int) error {
		part := nd % p.Nodes
		tx, err := db.Begin(nd)
		if err != nil {
			return err
		}
		abort := func(err error) error { tx.Rollback(); return err }
		ps := p.Pacer.begin()
		for s := 0; s < p.StatementsPerTx; s++ {
			ps.pace()
			switch r := rng.Intn(10); {
			case r < 3: // insert (30%)
				id := p.nextID[part].Add(1)
				if err := tx.Insert(p.table, p.key(part, id), make([]byte, p.ValueSize)); err != nil && !isKeyExists(err) {
					return abort(err)
				}
			case r < 5: // update (20%)
				id := uint64(rng.Intn(p.HotRows))
				if err := tx.Update(p.table, p.key(part, id), make([]byte, p.ValueSize)); err != nil && !isNotFound(err) {
					return abort(err)
				}
			default: // select (50%)
				hi := p.nextID[part].Load()
				if hi == 0 {
					hi = 1
				}
				id := uint64(rng.Int63n(int64(hi)))
				if _, err := tx.Get(p.table, p.key(part, id)); err != nil && !isNotFound(err) {
					return abort(err)
				}
			}
		}
		return tx.Commit()
	}
}
