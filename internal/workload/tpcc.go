package workload

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math/rand"
	"sync/atomic"
)

// TPCC implements the TPC-C benchmark (§5.2 "TPC-C performance within a
// large-scale cluster"): the full warehouse schema and the standard 5-
// transaction mix with zero think/keying time, as the paper configures it.
// Warehouses are range-partitioned across nodes (contiguous runs of
// warehouse ids share a home node, so their B-tree leaves are node-local);
// ~11% of transactions cross warehouses, exactly the property the paper
// leans on.
type TPCC struct {
	// Warehouses total (paper: large; scale down per box).
	Warehouses int
	// DistrictsPerWarehouse (spec: 10).
	Districts int
	// CustomersPerDistrict (spec: 3000; scale down).
	Customers int
	// ItemCount (spec: 100000; scale down).
	Items int
	// NewOrderOnly restricts the mix to New-Order (for pure tpmC runs).
	NewOrderOnly bool
	// Pacer injects per-statement service time (figure harness).
	Pacer
	// NewOrderCommits counts committed New-Order transactions (the tpmC
	// numerator of Figure 9).
	NewOrderCommits atomic.Int64

	warehouse, district, customer, stock, item, orders, orderLine, newOrder, history Table
}

// DefaultTPCC returns a box-scale configuration.
func DefaultTPCC(warehouses int) *TPCC {
	return &TPCC{
		Warehouses: warehouses,
		Districts:  10,
		Customers:  60,
		Items:      500,
	}
}

// pad produces the fixed filler that stands in for TPC-C's wide rows
// (W_STREET/W_CITY/... on warehouse, likewise district): without it every
// warehouse row lands on one page and Payment's W_YTD update becomes a
// global hotspot no real TPC-C deployment has.
func pad(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = 'p'
	}
	return string(b)
}

func u64key(parts ...uint64) []byte {
	b := make([]byte, 0, len(parts)*8)
	for _, p := range parts {
		b = binary.BigEndian.AppendUint64(b, p)
	}
	return b
}

// jsonVal encodes a row payload; TPC-C rows are structured, and JSON keeps
// the harness honest about real row sizes without a schema layer.
func jsonVal(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}

type wRow struct {
	Name string  `json:"name"`
	Tax  float64 `json:"tax"`
	YTD  float64 `json:"ytd"`
	Pad  string  `json:"pad"`
}

type dRow struct {
	Name    string  `json:"name"`
	Tax     float64 `json:"tax"`
	YTD     float64 `json:"ytd"`
	NextOID uint64  `json:"next_o_id"`
	Pad     string  `json:"pad"`
}

type cRow struct {
	Name     string  `json:"name"`
	Credit   string  `json:"credit"`
	Balance  float64 `json:"balance"`
	Payments int     `json:"payments"`
	Pad      string  `json:"pad"`
}

type sRow struct {
	Quantity int    `json:"qty"`
	YTD      int    `json:"ytd"`
	Orders   int    `json:"orders"`
	Pad      string `json:"pad"`
}

type iRow struct {
	Name  string  `json:"name"`
	Price float64 `json:"price"`
}

type oRow struct {
	CID     uint64 `json:"c_id"`
	Lines   int    `json:"lines"`
	AllLoc  bool   `json:"all_local"`
	Carrier int    `json:"carrier"`
}

type olRow struct {
	IID    uint64  `json:"i_id"`
	Supply uint64  `json:"supply_w"`
	Qty    int     `json:"qty"`
	Amount float64 `json:"amount"`
}

// Load creates and populates the nine TPC-C tables.
func (t *TPCC) Load(db DB) error {
	var err error
	mk := func(name string) Table {
		if err != nil {
			return nil
		}
		var tab Table
		tab, err = db.CreateTable("tpcc_" + name)
		return tab
	}
	t.warehouse = mk("warehouse")
	t.district = mk("district")
	t.customer = mk("customer")
	t.stock = mk("stock")
	t.item = mk("item")
	t.orders = mk("orders")
	t.orderLine = mk("order_line")
	t.newOrder = mk("new_order")
	t.history = mk("history")
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(7))
	// Items are global; load through node 0.
	const batch = 200
	loadBatched := func(node, count int, put func(tx Tx, i int) error) error {
		for base := 0; base < count; base += batch {
			tx, err := db.Begin(node)
			if err != nil {
				return err
			}
			for i := base; i < base+batch && i < count; i++ {
				if err := put(tx, i); err != nil {
					tx.Rollback()
					return err
				}
			}
			if err := tx.Commit(); err != nil {
				return err
			}
		}
		return nil
	}
	if err := loadBatched(0, t.Items, func(tx Tx, i int) error {
		return tx.Insert(t.item, u64key(uint64(i)), jsonVal(iRow{Name: fmt.Sprintf("item-%d", i), Price: 1 + rng.Float64()*99}))
	}); err != nil {
		return err
	}
	for w := 0; w < t.Warehouses; w++ {
		node := t.homeNode(w, db.NodeCount())
		if err := loadBatched(node, 1, func(tx Tx, _ int) error {
			return tx.Insert(t.warehouse, u64key(uint64(w)), jsonVal(wRow{Name: fmt.Sprintf("w%d", w), Tax: 0.05, Pad: pad(1800)}))
		}); err != nil {
			return err
		}
		if err := loadBatched(node, t.Districts, func(tx Tx, d int) error {
			return tx.Insert(t.district, u64key(uint64(w), uint64(d)), jsonVal(dRow{Name: fmt.Sprintf("d%d", d), Tax: 0.05, NextOID: 1, Pad: pad(900)}))
		}); err != nil {
			return err
		}
		for d := 0; d < t.Districts; d++ {
			d := d
			if err := loadBatched(node, t.Customers, func(tx Tx, c int) error {
				return tx.Insert(t.customer, u64key(uint64(w), uint64(d), uint64(c)),
					jsonVal(cRow{Name: fmt.Sprintf("c%d", c), Credit: "GC", Balance: -10, Pad: pad(300)}))
			}); err != nil {
				return err
			}
		}
		if err := loadBatched(node, t.Items, func(tx Tx, i int) error {
			return tx.Insert(t.stock, u64key(uint64(w), uint64(i)), jsonVal(sRow{Quantity: 50 + rng.Intn(50), Pad: pad(150)}))
		}); err != nil {
			return err
		}
	}
	return nil
}

// homeNode maps a warehouse to its home primary: contiguous ranges, so
// adjacent warehouses (and their adjacent B-tree leaves) share a node.
func (t *TPCC) homeNode(w, nodes int) int {
	per := (t.Warehouses + nodes - 1) / nodes
	n := w / per
	if n >= nodes {
		n = nodes - 1
	}
	return n
}

// TxFunc returns the standard-mix transaction generator for node/thread:
// 45% New-Order, 43% Payment, 4% each Order-Status / Delivery / Stock-Level.
func (t *TPCC) TxFunc(node, thread int) TxFunc {
	rng := rand.New(rand.NewSource(int64(node)*7907 + int64(thread)*104729 + 3))
	return func(db DB, nd int) error {
		if t.NewOrderOnly {
			return t.NewOrder(db, nd, rng)
		}
		switch p := rng.Intn(100); {
		case p < 45:
			return t.NewOrder(db, nd, rng)
		case p < 88:
			return t.Payment(db, nd, rng)
		case p < 92:
			return t.OrderStatus(db, nd, rng)
		case p < 96:
			return t.Delivery(db, nd, rng)
		default:
			return t.StockLevel(db, nd, rng)
		}
	}
}

// homeWarehouse picks a warehouse homed on node nd (range partitioning).
func (t *TPCC) homeWarehouse(rng *rand.Rand, nd, nodes int) int {
	if t.Warehouses <= nodes {
		return nd % t.Warehouses
	}
	per := (t.Warehouses + nodes - 1) / nodes
	lo := nd * per
	hi := lo + per
	if hi > t.Warehouses {
		hi = t.Warehouses
	}
	if lo >= hi {
		return nd % t.Warehouses
	}
	return lo + rng.Intn(hi-lo)
}

// NewOrder runs one New-Order transaction on node nd (tpmC unit). Per spec,
// ~1% of order lines reference a remote warehouse's stock, giving the ~10%
// cross-warehouse transaction rate the paper cites.
func (t *TPCC) NewOrder(db DB, nd int, rng *rand.Rand) error {
	tx, err := db.Begin(nd)
	if err != nil {
		return err
	}
	abort := func(err error) error { tx.Rollback(); return err }
	ps := t.Pacer.begin()

	w := t.homeWarehouse(rng, nd, db.NodeCount())
	d := rng.Intn(t.Districts)
	c := rng.Intn(t.Customers)

	// District: read and bump next order id (the per-district hotspot) —
	// a locking read, or two New-Orders would allocate the same o_id.
	dKey := u64key(uint64(w), uint64(d))
	dRaw, err := tx.GetForUpdate(t.district, dKey)
	if err != nil {
		return abort(err)
	}
	var dist dRow
	if err := json.Unmarshal(dRaw, &dist); err != nil {
		return abort(err)
	}
	ps.pace()
	oid := dist.NextOID
	dist.NextOID++
	if err := tx.Update(t.district, dKey, jsonVal(dist)); err != nil {
		return abort(err)
	}

	// Customer + warehouse reads.
	if _, err := tx.Get(t.customer, u64key(uint64(w), uint64(d), uint64(c))); err != nil {
		return abort(err)
	}
	if _, err := tx.Get(t.warehouse, u64key(uint64(w))); err != nil {
		return abort(err)
	}

	lines := 5 + rng.Intn(11)
	allLocal := true
	for l := 0; l < lines; l++ {
		item := rng.Intn(t.Items)
		supplyW := w
		if rng.Intn(100) == 0 && t.Warehouses > 1 { // 1% remote per line
			supplyW = rng.Intn(t.Warehouses)
			if supplyW != w {
				allLocal = false
			}
		}
		iRaw, err := tx.Get(t.item, u64key(uint64(item)))
		if err != nil {
			return abort(err)
		}
		var it iRow
		if err := json.Unmarshal(iRaw, &it); err != nil {
			return abort(err)
		}
		sKey := u64key(uint64(supplyW), uint64(item))
		sRaw, err := tx.GetForUpdate(t.stock, sKey)
		if err != nil {
			return abort(err)
		}
		var st sRow
		if err := json.Unmarshal(sRaw, &st); err != nil {
			return abort(err)
		}
		ps.pace()
		qty := 1 + rng.Intn(10)
		if st.Quantity >= qty+10 {
			st.Quantity -= qty
		} else {
			st.Quantity = st.Quantity - qty + 91
		}
		st.YTD += qty
		st.Orders++
		if err := tx.Update(t.stock, sKey, jsonVal(st)); err != nil {
			return abort(err)
		}
		olKey := u64key(uint64(w), uint64(d), oid, uint64(l))
		if err := tx.Insert(t.orderLine, olKey,
			jsonVal(olRow{IID: uint64(item), Supply: uint64(supplyW), Qty: qty, Amount: it.Price * float64(qty)})); err != nil {
			return abort(err)
		}
	}
	oKey := u64key(uint64(w), uint64(d), oid)
	if err := tx.Insert(t.orders, oKey, jsonVal(oRow{CID: uint64(c), Lines: lines, AllLoc: allLocal})); err != nil {
		return abort(err)
	}
	if err := tx.Insert(t.newOrder, oKey, []byte("1")); err != nil {
		return abort(err)
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	t.NewOrderCommits.Add(1)
	return nil
}

// Payment updates warehouse/district YTD and the customer balance; 15% of
// payments come from a remote customer (cross-warehouse write).
func (t *TPCC) Payment(db DB, nd int, rng *rand.Rand) error {
	tx, err := db.Begin(nd)
	if err != nil {
		return err
	}
	abort := func(err error) error { tx.Rollback(); return err }
	ps := t.Pacer.begin()
	w := t.homeWarehouse(rng, nd, db.NodeCount())
	d := rng.Intn(t.Districts)
	cw, cd := w, d
	if rng.Intn(100) < 15 && t.Warehouses > 1 {
		cw = rng.Intn(t.Warehouses)
		cd = rng.Intn(t.Districts)
	}
	c := rng.Intn(t.Customers)
	amount := 1 + rng.Float64()*4999

	wKey := u64key(uint64(w))
	wRaw, err := tx.GetForUpdate(t.warehouse, wKey)
	if err != nil {
		return abort(err)
	}
	var wh wRow
	if err := json.Unmarshal(wRaw, &wh); err != nil {
		return abort(err)
	}
	wh.YTD += amount
	if err := tx.Update(t.warehouse, wKey, jsonVal(wh)); err != nil {
		return abort(err)
	}

	dKey := u64key(uint64(w), uint64(d))
	dRaw, err := tx.GetForUpdate(t.district, dKey)
	if err != nil {
		return abort(err)
	}
	var dist dRow
	if err := json.Unmarshal(dRaw, &dist); err != nil {
		return abort(err)
	}
	dist.YTD += amount
	if err := tx.Update(t.district, dKey, jsonVal(dist)); err != nil {
		return abort(err)
	}

	cKey := u64key(uint64(cw), uint64(cd), uint64(c))
	cRaw, err := tx.GetForUpdate(t.customer, cKey)
	if err != nil {
		return abort(err)
	}
	var cust cRow
	if err := json.Unmarshal(cRaw, &cust); err != nil {
		return abort(err)
	}
	ps.pace()
	cust.Balance -= amount
	cust.Payments++
	if err := tx.Update(t.customer, cKey, jsonVal(cust)); err != nil {
		return abort(err)
	}
	hKey := u64key(uint64(cw), uint64(cd), uint64(c), uint64(rng.Int63()))
	if err := tx.Insert(t.history, hKey, jsonVal(map[string]float64{"amount": amount})); err != nil {
		return abort(err)
	}
	return tx.Commit()
}

// OrderStatus reads a customer's latest order and its lines (read-only).
func (t *TPCC) OrderStatus(db DB, nd int, rng *rand.Rand) error {
	tx, err := db.Begin(nd)
	if err != nil {
		return err
	}
	abort := func(err error) error { tx.Rollback(); return err }
	w := t.homeWarehouse(rng, nd, db.NodeCount())
	d := rng.Intn(t.Districts)
	c := rng.Intn(t.Customers)
	if _, err := tx.Get(t.customer, u64key(uint64(w), uint64(d), uint64(c))); err != nil {
		return abort(err)
	}
	// Scan the district's recent orders for this customer.
	from := u64key(uint64(w), uint64(d))
	to := u64key(uint64(w), uint64(d)+1)
	if _, err := tx.Scan(t.orders, from, to, 20); err != nil {
		return abort(err)
	}
	return tx.Commit()
}

// Delivery consumes up to 10 queued new-orders for a warehouse.
func (t *TPCC) Delivery(db DB, nd int, rng *rand.Rand) error {
	tx, err := db.Begin(nd)
	if err != nil {
		return err
	}
	abort := func(err error) error { tx.Rollback(); return err }
	w := t.homeWarehouse(rng, nd, db.NodeCount())
	from := u64key(uint64(w))
	to := u64key(uint64(w) + 1)
	pending, err := tx.Scan(t.newOrder, from, to, 10)
	if err != nil {
		return abort(err)
	}
	for _, kv := range pending {
		if err := tx.Delete(t.newOrder, kv.Key); err != nil && !isNotFound(err) {
			return abort(err)
		}
	}
	return tx.Commit()
}

// StockLevel counts recently-sold items below a threshold (read-only scan).
func (t *TPCC) StockLevel(db DB, nd int, rng *rand.Rand) error {
	tx, err := db.Begin(nd)
	if err != nil {
		return err
	}
	abort := func(err error) error { tx.Rollback(); return err }
	w := t.homeWarehouse(rng, nd, db.NodeCount())
	from := u64key(uint64(w))
	to := u64key(uint64(w) + 1)
	rows, err := tx.Scan(t.stock, from, to, 50)
	if err != nil {
		return abort(err)
	}
	low := 0
	for _, kv := range rows {
		var st sRow
		if json.Unmarshal(kv.Value, &st) == nil && st.Quantity < 15 {
			low++
		}
	}
	return tx.Commit()
}
