// Package workload provides the benchmark workloads of §5.1 — SysBench
// (with the Taurus-MM shared-tables scheme), TPC-C, TATP and the Alibaba
// production mix — over an engine-neutral driver interface so the same
// generators run against PolarDB-MP and every baseline.
package workload

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"polardbmp/internal/common"
	"polardbmp/internal/metrics"
)

// DB is the engine-neutral surface a workload drives. PolarDB-MP and each
// baseline provide an adapter.
type DB interface {
	// NodeCount returns the number of live primaries.
	NodeCount() int
	// Begin starts a transaction on the i-th (0-based) primary.
	Begin(node int) (Tx, error)
	// CreateTable creates (or opens) a named table and returns its handle.
	CreateTable(name string) (Table, error)
}

// Table identifies a table to the engine.
type Table interface {
	Space() common.SpaceID
}

// Tx is an engine-neutral transaction.
type Tx interface {
	Get(t Table, key []byte) ([]byte, error)
	// GetForUpdate is a locking read (SELECT ... FOR UPDATE).
	GetForUpdate(t Table, key []byte) ([]byte, error)
	Insert(t Table, key, value []byte) error
	Update(t Table, key, value []byte) error
	Delete(t Table, key []byte) error
	Scan(t Table, from, to []byte, limit int) ([]KV, error)
	Commit() error
	Rollback() error
}

// KV mirrors core.KV without importing it.
type KV struct {
	Key   []byte
	Value []byte
}

// Runner executes a workload's transaction mix against a DB.
type Runner struct {
	// Threads per node.
	Threads int
	// Duration of the measured run.
	Duration time.Duration
	// Warmup run before measuring (optional).
	Warmup time.Duration
	// MaxRetries bounds per-transaction retries on retryable errors.
	MaxRetries int
	// Timeline, when non-nil, receives per-interval commit counts.
	Timeline *metrics.Timeline
	// OnError receives non-retryable errors (optional).
	OnError func(error)
}

// TxFunc runs one transaction attempt on the given node using rng-free
// thread-local state owned by the generator.
type TxFunc func(db DB, node int) error

// Pacer injects a per-statement service-time pause (scaled-time simulation
// support; see the figure harness). The zero value is free.
//
// Pacing is deadline-based per transaction: each statement sleeps to an
// absolute schedule (begin + n×StatementDelay) rather than for a relative
// StatementDelay. A relative sleep under load oversleeps by the scheduler's
// wake-up latency, and over a dozen statements that drift accumulates into
// milliseconds of unmodeled service time; sleeping to the schedule credits
// one statement's oversleep against the next, so a transaction's injected
// service time stays at statements×StatementDelay as the model intends.
type Pacer struct {
	// StatementDelay is the per-statement service time.
	StatementDelay time.Duration
}

// begin starts one transaction's statement schedule.
func (p Pacer) begin() paceState {
	if p.StatementDelay <= 0 {
		return paceState{}
	}
	return paceState{deadline: time.Now(), delay: p.StatementDelay}
}

// paceState is a single transaction's pacing schedule (not concurrency-safe;
// one per transaction attempt).
type paceState struct {
	deadline time.Time
	delay    time.Duration
}

// pace charges one statement's service time, sleeping only up to the
// schedule. Past-due deadlines (accumulated oversleep) cost nothing.
func (ps *paceState) pace() {
	if ps.delay <= 0 {
		return
	}
	ps.deadline = ps.deadline.Add(ps.delay)
	if d := time.Until(ps.deadline); d > 0 {
		time.Sleep(d)
	}
}

// Result is a workload run's outcome. Aborts counts every aborted attempt
// (deadlocks, OCC conflicts, lock timeouts), including ones later retried
// successfully.
type Result struct {
	Commits int64
	Aborts  int64
	Errors  int64
	Elapsed time.Duration
	Latency *metrics.Histogram
}

// TPS returns committed transactions per second.
func (r Result) TPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Commits) / r.Elapsed.Seconds()
}

// Run drives nextTx (per-thread transaction factory) across all nodes and
// threads for the configured duration.
func (r Runner) Run(db DB, nextTx func(node, thread int) TxFunc) Result {
	if r.Threads <= 0 {
		r.Threads = 1
	}
	if r.MaxRetries <= 0 {
		r.MaxRetries = 64
	}
	nodes := db.NodeCount()

	run := func(d time.Duration, measured bool) Result {
		ctx, cancel := context.WithTimeout(context.Background(), d)
		defer cancel()
		var commits, aborts, errs atomic.Int64
		lat := &metrics.Histogram{}
		var wg sync.WaitGroup
		for node := 0; node < nodes; node++ {
			for th := 0; th < r.Threads; th++ {
				wg.Add(1)
				go func(node, th int) {
					defer wg.Done()
					txf := nextTx(node, th)
					for ctx.Err() == nil {
						start := time.Now()
						err, retries := r.runOne(db, node, txf)
						aborts.Add(retries)
						switch {
						case err == nil:
							commits.Add(1)
							if measured {
								lat.Observe(time.Since(start))
								if r.Timeline != nil {
									r.Timeline.Tick(1)
								}
							}
						case common.IsRetryable(err):
							aborts.Add(1)
						default:
							errs.Add(1)
							if r.OnError != nil {
								r.OnError(err)
							}
						}
					}
				}(node, th)
			}
		}
		start := time.Now()
		wg.Wait()
		return Result{
			Commits: commits.Load(),
			Aborts:  aborts.Load(),
			Errors:  errs.Load(),
			Elapsed: time.Since(start),
			Latency: lat,
		}
	}

	if r.Warmup > 0 {
		run(r.Warmup, false)
	}
	return run(r.Duration, true)
}

// runOne executes one logical transaction with bounded retries on
// retryable failures (deadlock / OCC conflict / lock timeout), the way the
// paper describes applications handling Aurora-MM-style conflict errors.
// It returns the final error and the number of aborted attempts.
func (r Runner) runOne(db DB, node int, txf TxFunc) (error, int64) {
	var err error
	for attempt := 0; attempt <= r.MaxRetries; attempt++ {
		err = txf(db, node)
		if err == nil || !common.IsRetryable(err) {
			return err, int64(attempt)
		}
	}
	return err, int64(r.MaxRetries)
}
