package workload_test

import (
	"testing"
	"time"

	"polardbmp/internal/adapter"
	"polardbmp/internal/core"
	"polardbmp/internal/workload"
)

func newDB(t testing.TB, nodes int) *adapter.PolarDB {
	t.Helper()
	db, err := adapter.NewPolarDB(core.Config{RecycleInterval: 10 * time.Millisecond}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Cluster.Close)
	return db
}

func TestSysbenchLoadAndRun(t *testing.T) {
	db := newDB(t, 2)
	sb := workload.DefaultSysbench(workload.SysbenchReadWrite, 2, 30)
	sb.TablesPerGroup = 2
	sb.RowsPerTable = 200
	if err := sb.Load(db); err != nil {
		t.Fatal(err)
	}
	var firstErr error
	r := workload.Runner{
		Threads:  2,
		Duration: 200 * time.Millisecond,
		OnError: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	res := r.Run(db, sb.TxFunc)
	if firstErr != nil {
		t.Fatalf("workload error: %v", firstErr)
	}
	if res.Commits == 0 {
		t.Fatal("no transactions committed")
	}
	if res.Errors != 0 {
		t.Fatalf("%d non-retryable errors", res.Errors)
	}
}

func TestSysbenchKinds(t *testing.T) {
	for _, kind := range []workload.SysbenchKind{
		workload.SysbenchReadOnly, workload.SysbenchWriteOnly,
	} {
		t.Run(kind.String(), func(t *testing.T) {
			db := newDB(t, 1)
			sb := workload.DefaultSysbench(kind, 1, 50)
			sb.TablesPerGroup = 1
			sb.RowsPerTable = 100
			if err := sb.Load(db); err != nil {
				t.Fatal(err)
			}
			res := workload.Runner{Threads: 2, Duration: 100 * time.Millisecond}.Run(db, sb.TxFunc)
			if res.Commits == 0 || res.Errors != 0 {
				t.Fatalf("commits=%d errors=%d", res.Commits, res.Errors)
			}
		})
	}
}

func TestTPCCLoadAndRun(t *testing.T) {
	db := newDB(t, 2)
	tp := workload.DefaultTPCC(4)
	tp.Customers = 20
	tp.Items = 100
	if err := tp.Load(db); err != nil {
		t.Fatal(err)
	}
	var firstErr error
	res := workload.Runner{
		Threads:  2,
		Duration: 300 * time.Millisecond,
		OnError: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}.Run(db, tp.TxFunc)
	if firstErr != nil {
		t.Fatalf("workload error: %v", firstErr)
	}
	if res.Commits == 0 {
		t.Fatal("no TPC-C transactions committed")
	}
}

func TestTATPLoadAndRun(t *testing.T) {
	db := newDB(t, 2)
	ta := workload.DefaultTATP(2)
	ta.SubscribersPerNode = 300
	if err := ta.Load(db); err != nil {
		t.Fatal(err)
	}
	var firstErr error
	res := workload.Runner{
		Threads:  2,
		Duration: 200 * time.Millisecond,
		OnError: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}.Run(db, ta.TxFunc)
	if firstErr != nil {
		t.Fatalf("workload error: %v", firstErr)
	}
	if res.Commits == 0 {
		t.Fatal("no TATP transactions committed")
	}
}

func TestProdMixLoadAndRun(t *testing.T) {
	db := newDB(t, 2)
	pm := workload.DefaultProdMix(2)
	pm.HotRows = 200
	if err := pm.Load(db); err != nil {
		t.Fatal(err)
	}
	var firstErr error
	res := workload.Runner{
		Threads:  2,
		Duration: 200 * time.Millisecond,
		OnError: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}.Run(db, pm.TxFunc)
	if firstErr != nil {
		t.Fatalf("workload error: %v", firstErr)
	}
	if res.Commits == 0 {
		t.Fatal("no prodmix transactions committed")
	}
}
