package workload

import (
	"errors"

	"polardbmp/internal/common"
)

// isNotFound reports a benign missing-row outcome (a concurrently deleted
// sysbench row, etc.).
func isNotFound(err error) bool { return errors.Is(err, common.ErrNotFound) }

// isKeyExists reports a benign duplicate-insert outcome (a concurrent
// delete/insert pair on the same sysbench row).
func isKeyExists(err error) bool { return errors.Is(err, common.ErrKeyExists) }
