package workload

import (
	"fmt"
	"math/rand"
)

// SysbenchKind selects the SysBench OLTP variant (§5.2).
type SysbenchKind int

const (
	// SysbenchReadOnly is oltp_read_only: point selects only.
	SysbenchReadOnly SysbenchKind = iota
	// SysbenchReadWrite is oltp_read_write: selects + index updates +
	// delete/insert pairs.
	SysbenchReadWrite
	// SysbenchWriteOnly is oltp_write_only: updates + delete/insert pairs.
	SysbenchWriteOnly
)

func (k SysbenchKind) String() string {
	switch k {
	case SysbenchReadOnly:
		return "read-only"
	case SysbenchReadWrite:
		return "read-write"
	case SysbenchWriteOnly:
		return "write-only"
	}
	return "?"
}

// Sysbench models the adapted SysBench of §5.1: tables are divided into N+1
// groups for an N-node cluster — group i is private to node i; the last
// group is shared — and SharedPct percent of queries target the shared
// group.
type Sysbench struct {
	Kind SysbenchKind
	// Nodes is the cluster size N.
	Nodes int
	// TablesPerGroup (paper: 40; scale down for single-box runs).
	TablesPerGroup int
	// RowsPerTable (paper: 1M; scale down).
	RowsPerTable int
	// SharedPct is the percentage of queries against the shared group.
	SharedPct int
	// PointSelects / IndexUpdates / DeleteInserts per transaction
	// (sysbench defaults: 10 / 1 / 1; write-only drops the selects).
	PointSelects  int
	IndexUpdates  int
	DeleteInserts int
	// ValueSize is the row payload size (sysbench c/pad ~ 120 bytes).
	ValueSize int
	// Pacer injects per-statement service time (figure harness).
	Pacer

	tables map[string]Table
}

// DefaultSysbench returns a paper-shaped configuration scaled to one box.
func DefaultSysbench(kind SysbenchKind, nodes, sharedPct int) *Sysbench {
	return &Sysbench{
		Kind:           kind,
		Nodes:          nodes,
		TablesPerGroup: 4,
		RowsPerTable:   2000,
		SharedPct:      sharedPct,
		PointSelects:   10,
		IndexUpdates:   1,
		DeleteInserts:  1,
		ValueSize:      120,
	}
}

func (s *Sysbench) tableName(group, idx int) string {
	return fmt.Sprintf("sbtest_g%d_t%d", group, idx)
}

// sharedGroup is the group index of the shared tables (groups 0..Nodes-1
// are private to the corresponding node).
func (s *Sysbench) sharedGroup() int { return s.Nodes }

func sbKey(row int) []byte { return []byte(fmt.Sprintf("%010d", row)) }

func sbValue(rng *rand.Rand, size int) []byte {
	v := make([]byte, size)
	const alpha = "abcdefghijklmnopqrstuvwxyz0123456789"
	for i := range v {
		v[i] = alpha[rng.Intn(len(alpha))]
	}
	return v
}

// Load creates all table groups and bulk-loads rows through the available
// nodes. Call once before Run.
func (s *Sysbench) Load(db DB) error {
	if s.tables == nil {
		s.tables = make(map[string]Table)
	}
	rng := rand.New(rand.NewSource(42))
	for group := 0; group <= s.Nodes; group++ {
		for ti := 0; ti < s.TablesPerGroup; ti++ {
			name := s.tableName(group, ti)
			tab, err := db.CreateTable(name)
			if err != nil {
				return err
			}
			s.tables[name] = tab
			// Load through the owning node (shared group via node 0).
			node := group % db.NodeCount()
			if group == s.sharedGroup() {
				node = 0
			}
			const batch = 200
			for base := 0; base < s.RowsPerTable; base += batch {
				tx, err := db.Begin(node)
				if err != nil {
					return err
				}
				for row := base; row < base+batch && row < s.RowsPerTable; row++ {
					if err := tx.Insert(tab, sbKey(row), sbValue(rng, s.ValueSize)); err != nil {
						tx.Rollback()
						return fmt.Errorf("sysbench load %s row %d: %w", name, row, err)
					}
				}
				if err := tx.Commit(); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// pickTable chooses the table for the next query: SharedPct% from the
// shared group, the rest from the node's private group.
func (s *Sysbench) pickTable(rng *rand.Rand, node int) Table {
	group := node % s.Nodes
	if rng.Intn(100) < s.SharedPct {
		group = s.sharedGroup()
	}
	return s.tables[s.tableName(group, rng.Intn(s.TablesPerGroup))]
}

// TxFunc returns the per-thread transaction generator for node/thread.
func (s *Sysbench) TxFunc(node, thread int) TxFunc {
	rng := rand.New(rand.NewSource(int64(node)*1009 + int64(thread)*9176 + 1))
	return func(db DB, nd int) error {
		tx, err := db.Begin(nd)
		if err != nil {
			return err
		}
		abort := func(err error) error {
			tx.Rollback()
			return err
		}
		ps := s.Pacer.begin()
		if s.Kind != SysbenchWriteOnly {
			for i := 0; i < s.PointSelects; i++ {
				tab := s.pickTable(rng, nd)
				if _, err := tx.Get(tab, sbKey(rng.Intn(s.RowsPerTable))); err != nil && !isNotFound(err) {
					return abort(err)
				}
				ps.pace()
			}
		}
		if s.Kind != SysbenchReadOnly {
			for i := 0; i < s.IndexUpdates; i++ {
				tab := s.pickTable(rng, nd)
				key := sbKey(rng.Intn(s.RowsPerTable))
				if err := tx.Update(tab, key, sbValue(rng, s.ValueSize)); err != nil && !isNotFound(err) {
					return abort(err)
				}
				ps.pace()
			}
			for i := 0; i < s.DeleteInserts; i++ {
				tab := s.pickTable(rng, nd)
				key := sbKey(rng.Intn(s.RowsPerTable))
				if err := tx.Delete(tab, key); err != nil && !isNotFound(err) {
					return abort(err)
				}
				ps.pace()
				if err := tx.Insert(tab, key, sbValue(rng, s.ValueSize)); err != nil && !isKeyExists(err) {
					return abort(err)
				}
				ps.pace()
			}
		}
		return tx.Commit()
	}
}
