package workload

import (
	"fmt"
	"math/rand"
	"sync/atomic"
)

// GSI is the global-secondary-index workload of §5.4 (Figure 13): sustained
// random inserts into a table carrying k global secondary indexes. On a
// shared-nothing system each insert touches the primary partition plus one
// partition per index, forcing two-phase commit; on PolarDB-MP the secondary
// indexes are just additional B-trees maintained by the same single-node
// transaction.
type GSI struct {
	// Indexes is the number of global secondary indexes (0..8 in Fig 13).
	Indexes int
	// ValueSize is the row payload.
	ValueSize int
	// PreloadRows seeds the primary and index trees before measurement so
	// they have realistic fan-out (an empty index would make every node
	// collide on a handful of leaves).
	PreloadRows int
	// Pacer injects per-statement service time (figure harness).
	Pacer

	primary Table
	indexes []Table
	seq     [64]atomic.Uint64
}

// DefaultGSI returns the Figure 13 workload with k indexes.
func DefaultGSI(k int) *GSI { return &GSI{Indexes: k, ValueSize: 100, PreloadRows: 1500} }

// Load creates the primary table and its k index tables.
func (g *GSI) Load(db DB) error {
	var err error
	if g.primary, err = db.CreateTable(fmt.Sprintf("gsi%d_primary", g.Indexes)); err != nil {
		return err
	}
	g.indexes = g.indexes[:0]
	for i := 0; i < g.Indexes; i++ {
		idx, err := db.CreateTable(fmt.Sprintf("gsi%d_idx%d", g.Indexes, i))
		if err != nil {
			return err
		}
		g.indexes = append(g.indexes, idx)
	}
	// Preload without pacing: grow the trees to realistic fan-out.
	rng := rand.New(rand.NewSource(97))
	const batch = 100
	for base := 0; base < g.PreloadRows; base += batch {
		tx, err := db.Begin(0)
		if err != nil {
			return err
		}
		for i := base; i < base+batch && i < g.PreloadRows; i++ {
			id := g.seq[0].Add(1)
			pk := []byte(fmt.Sprintf("row-%02d-%012d", 0, id))
			val := make([]byte, g.ValueSize)
			rng.Read(val)
			if err := tx.Insert(g.primary, pk, val); err != nil {
				tx.Rollback()
				return err
			}
			for j, idx := range g.indexes {
				sk := []byte(fmt.Sprintf("attr%d-%08d-%s", j, rng.Intn(1e8), pk))
				if err := tx.Insert(idx, sk, pk); err != nil {
					tx.Rollback()
					return err
				}
			}
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	return nil
}

// TxFunc returns the insert generator: one primary row plus one entry per
// secondary index, all in one transaction.
func (g *GSI) TxFunc(node, thread int) TxFunc {
	rng := rand.New(rand.NewSource(int64(node)*52361 + int64(thread)*797 + 23))
	return func(db DB, nd int) error {
		id := g.seq[nd%len(g.seq)].Add(1)
		ps := g.Pacer.begin()
		pk := []byte(fmt.Sprintf("row-%02d-%012d", nd, id))
		tx, err := db.Begin(nd)
		if err != nil {
			return err
		}
		// Fixed per-transaction cost: client round trip, SQL parsing and
		// commit processing. In production this dominates a single-row
		// insert, which is why adding one GSI costs the paper's systems
		// only ~20% — the marginal index write is small against it.
		ps.pace()
		ps.pace()
		ps.pace()
		abort := func(err error) error { tx.Rollback(); return err }
		val := make([]byte, g.ValueSize)
		rng.Read(val)
		if err := tx.Insert(g.primary, pk, val); err != nil {
			return abort(err)
		}
		ps.pace()
		for i, idx := range g.indexes {
			// Secondary key: random attribute value + pk for uniqueness.
			sk := []byte(fmt.Sprintf("attr%d-%08d-%s", i, rng.Intn(1e8), pk))
			if err := tx.Insert(idx, sk, pk); err != nil {
				return abort(err)
			}
			ps.pace()
		}
		return tx.Commit()
	}
}
