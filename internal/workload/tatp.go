package workload

import (
	"encoding/binary"
	"fmt"
	"math/rand"
)

// TATP implements the Telecom Application Transaction Processing benchmark
// (§5.2, Figure 8): subscriber-keyed tables and the standard 7-transaction
// mix (80% reads / 20% writes). Subscribers are range-partitioned across
// nodes, which is why the paper sees linear scalability: each data page ends
// up exclusively accessed by one node.
type TATP struct {
	// SubscribersPerNode (paper: 20M; scale down).
	SubscribersPerNode int
	// Nodes in the cluster.
	Nodes int
	// Pacer injects per-statement service time (figure harness).
	Pacer

	subscriber, accessInfo, specialFacility, callForwarding Table
}

// DefaultTATP returns a box-scale configuration.
func DefaultTATP(nodes int) *TATP {
	return &TATP{SubscribersPerNode: 4000, Nodes: nodes}
}

func (t *TATP) total() int { return t.SubscribersPerNode * t.Nodes }

// subKey returns the subscriber key; subscribers are range-partitioned so
// node i owns [i*SubscribersPerNode, (i+1)*SubscribersPerNode).
func subKey(id int) []byte {
	return binary.BigEndian.AppendUint64(nil, uint64(id))
}

// Load creates and populates the four TATP tables through their home nodes.
func (t *TATP) Load(db DB) error {
	var err error
	mk := func(name string) Table {
		if err != nil {
			return nil
		}
		var tab Table
		tab, err = db.CreateTable("tatp_" + name)
		return tab
	}
	t.subscriber = mk("subscriber")
	t.accessInfo = mk("access_info")
	t.specialFacility = mk("special_facility")
	t.callForwarding = mk("call_forwarding")
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(11))
	const batch = 200
	for node := 0; node < t.Nodes; node++ {
		lo := node * t.SubscribersPerNode
		hi := lo + t.SubscribersPerNode
		for base := lo; base < hi; base += batch {
			tx, err := db.Begin(node % db.NodeCount())
			if err != nil {
				return err
			}
			for s := base; s < base+batch && s < hi; s++ {
				key := subKey(s)
				if err := tx.Insert(t.subscriber, key,
					[]byte(fmt.Sprintf(`{"sub":%d,"bit1":%d,"vlr":%d}`, s, rng.Intn(2), rng.Intn(1<<16)))); err != nil {
					tx.Rollback()
					return err
				}
				if err := tx.Insert(t.accessInfo, key, []byte(`{"a1":1,"a2":2}`)); err != nil {
					tx.Rollback()
					return err
				}
				if err := tx.Insert(t.specialFacility, key, []byte(`{"sf":1,"active":1}`)); err != nil {
					tx.Rollback()
					return err
				}
			}
			if err := tx.Commit(); err != nil {
				return err
			}
		}
	}
	return nil
}

// TxFunc returns the standard TATP mix for node/thread. Subscribers are
// drawn from the node's own partition (the paper's well-partitioned setup).
func (t *TATP) TxFunc(node, thread int) TxFunc {
	rng := rand.New(rand.NewSource(int64(node)*6151 + int64(thread)*3079 + 17))
	return func(db DB, nd int) error {
		lo := (nd % t.Nodes) * t.SubscribersPerNode
		s := lo + rng.Intn(t.SubscribersPerNode)
		key := subKey(s)
		tx, err := db.Begin(nd)
		if err != nil {
			return err
		}
		abort := func(err error) error { tx.Rollback(); return err }
		ps := t.Pacer.begin()
		ps.pace()
		switch p := rng.Intn(100); {
		case p < 35: // GetSubscriberData
			if _, err := tx.Get(t.subscriber, key); err != nil {
				return abort(err)
			}
		case p < 45: // GetNewDestination
			if _, err := tx.Get(t.specialFacility, key); err != nil && !isNotFound(err) {
				return abort(err)
			}
			if _, err := tx.Get(t.callForwarding, key); err != nil && !isNotFound(err) {
				return abort(err)
			}
		case p < 80: // GetAccessData
			if _, err := tx.Get(t.accessInfo, key); err != nil {
				return abort(err)
			}
		case p < 82: // UpdateSubscriberData
			if err := tx.Update(t.specialFacility, key, []byte(`{"sf":1,"active":0}`)); err != nil && !isNotFound(err) {
				return abort(err)
			}
		case p < 96: // UpdateLocation
			if err := tx.Update(t.subscriber, key,
				[]byte(fmt.Sprintf(`{"sub":%d,"vlr":%d}`, s, rng.Intn(1<<16)))); err != nil {
				return abort(err)
			}
		case p < 98: // InsertCallForwarding
			if err := tx.Insert(t.callForwarding, key, []byte(`{"start":8,"end":17}`)); err != nil && !isKeyExists(err) {
				return abort(err)
			}
		default: // DeleteCallForwarding
			if err := tx.Delete(t.callForwarding, key); err != nil && !isNotFound(err) {
				return abort(err)
			}
		}
		return tx.Commit()
	}
}
