// Package bufferfusion implements Buffer Fusion (§4.2): a distributed
// buffer pool (DBP) in PMFS disaggregated shared memory plus per-node local
// buffer pools (LBP) kept coherent through remote invalidation.
//
// Data pages move between nodes through the DBP: a node pushes a modified
// page into a DBP frame with a one-sided RDMA write (after forcing its redo
// to storage) and Buffer Fusion invalidates every other node's copy by
// one-sided writes to their invalid flags; a node that later needs the page
// pulls the frame with a one-sided read. Storage I/O happens only on a DBP
// miss or background flush, which is the architectural difference from
// log-replay designs like Taurus-MM (§2.3).
package bufferfusion

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"polardbmp/internal/common"
	"polardbmp/internal/metrics"
	"polardbmp/internal/page"
	"polardbmp/internal/rdma"
	"polardbmp/internal/storage"
)

// Fabric names.
const (
	RegionDBP   = "pmfs.dbp"     // frame array on PMFS
	RegionInval = "lbp.inval"    // per-node invalid-flag array
	ServiceBuf  = "bufferfusion" // PMFS RPC service
)

// Invalid-flag word values (written remotely by PMFS).
const (
	flagValid   = 0 // local copy is current
	flagStale   = 1 // newer version in the DBP: re-read via r_addr
	flagDropped = 2 // page left the DBP: full re-fetch via RPC
)

// storagePseudoFrame marks a push that bypassed the DBP (storage mode).
const storagePseudoFrame = 0x7FFFFFFF

// RPC ops.
const (
	opLookup      = 1 // node, page -> found?, frame
	opPreparePush = 2 // node, page -> frame (pinned)
	opPushed      = 3 // node, page, frame -> ok (unpin, invalidate others)
	opUnregister  = 4 // node, page
)

// Server is the PMFS side of Buffer Fusion: the DBP frames and the page
// directory tracking, per page, its frame, the nodes holding copies, and the
// addresses of their invalid flags (§4.2, Figure 4). The directory is
// striped by page id, each stripe owning a disjoint share of the DBP frames
// (its own free list and LRU), so concurrent pushes and lookups from
// different nodes only contend when they touch the same stripe.
type Server struct {
	fabric      rdma.Conn
	retry       common.RetryPolicy
	gate        common.EpochGate
	dbp         *rdma.Region
	store       storage.API
	frames      int
	storageMode bool

	stripes []*bufStripe

	// admit bounds concurrently admitted lookups per stripe (<=0 disables
	// shedding). Only lookups shed: push completions and unregisters are
	// cleanup whose rejection would leak pins or flag slots.
	admit atomic.Int64

	// Stats for the figure harnesses and ablations.
	Hits          metrics.Counter
	Misses        metrics.Counter
	Pushes        metrics.Counter
	Invalidations metrics.Counter
	Evictions     metrics.Counter
	// Sheds counts lookups rejected by admission control.
	Sheds metrics.Counter
}

// bufStripe is one directory shard. Frames in [base, base+count) belong to
// this stripe exclusively; free holds global frame numbers.
type bufStripe struct {
	mu    sync.Mutex
	base  int
	count int
	dir   map[common.PageID]*dirEntry
	byFr  []*dirEntry // frame-base -> entry (nil = free)
	free  []int
	lru   *list.List // *dirEntry, most-recent at back

	// inflight counts lookups currently admitted to this stripe (queued on
	// mu or executing) for load shedding.
	inflight atomic.Int64
}

// bufAdmitDefault bounds concurrently admitted lookups per stripe.
const bufAdmitDefault = 64

// bufStripeCount picks the shard count: tiny pools (unit tests sized to
// force eviction) keep a single stripe so global LRU order is preserved;
// bench-sized pools shard 8 ways.
func bufStripeCount(frames int) int {
	if frames < 256 {
		return 1
	}
	return 8
}

func (s *Server) stripeFor(pg common.PageID) *bufStripe {
	return s.stripes[uint64(pg)%uint64(len(s.stripes))]
}

type dirEntry struct {
	page  common.PageID
	frame int
	pins  int
	dirty bool // newer than the storage image
	// copies: node -> invalid-flag index in that node's RegionInval.
	copies map[common.NodeID]uint32
	lruEl  *list.Element
}

// NewServerMode attaches Buffer Fusion with an explicit page-sync mode.
// With storageMode=true the DBP is bypassed: pushes write the page image to
// shared storage and fetches read it back, while the directory still tracks
// copies for invalidation — the log-ship/page-store synchronization model of
// Taurus-MM (§2.3), used by the baseline and the DBP ablation.
func NewServerMode(ep *rdma.Endpoint, fabric *rdma.Fabric, store storage.API, frames int, storageMode bool) *Server {
	s := NewServer(ep, fabric, store, frames)
	s.storageMode = storageMode
	return s
}

// NewServer attaches Buffer Fusion to the PMFS endpoint with the given
// number of DBP frames.
func NewServer(ep *rdma.Endpoint, fabric *rdma.Fabric, store storage.API, frames int) *Server {
	if frames <= 0 {
		frames = 4096
	}
	s := &Server{
		fabric: fabric.From(ep.Node()),
		retry:  common.DefaultRetryPolicy(),
		dbp:    ep.RegisterRegion(RegionDBP, frames*page.FrameSize),
		store:  store,
		frames: frames,
	}
	s.admit.Store(bufAdmitDefault)
	s.initStripes()
	ep.Serve(ServiceBuf, s.handle)
	return s
}

func (s *Server) initStripes() {
	n := bufStripeCount(s.frames)
	s.stripes = make([]*bufStripe, n)
	base := 0
	for i := 0; i < n; i++ {
		count := s.frames / n
		if i < s.frames%n {
			count++
		}
		st := &bufStripe{
			base:  base,
			count: count,
			dir:   make(map[common.PageID]*dirEntry),
			byFr:  make([]*dirEntry, count),
			lru:   list.New(),
		}
		st.free = make([]int, count)
		for j := range st.free {
			st.free[j] = base + count - 1 - j
		}
		s.stripes[i] = st
		base += count
	}
}

// SetRetryPolicy overrides the transient-fault retry policy for the
// server's invalidation writes (chaos ablations disable it).
func (s *Server) SetRetryPolicy(p common.RetryPolicy) { s.retry = p }

// SetEpochGate installs the membership epoch gate: stamped requests from
// evicted incarnations are rejected with ErrStaleEpoch before they can
// push, pin, or unregister pages.
func (s *Server) SetEpochGate(g common.EpochGate) { s.gate = g }

// SetAdmissionLimit bounds concurrently admitted lookups per directory
// stripe; over-limit lookups are shed with ErrOverloaded instead of queuing
// on the stripe mutex. n <= 0 disables shedding.
func (s *Server) SetAdmissionLimit(n int) { s.admit.Store(int64(n)) }

func bufReq(op byte, node common.NodeID, pg common.PageID, frame uint32, aux uint32) []byte {
	b := make([]byte, 19)
	b[0] = op
	binary.LittleEndian.PutUint16(b[1:], uint16(node))
	binary.LittleEndian.PutUint64(b[3:], uint64(pg))
	binary.LittleEndian.PutUint32(b[11:], frame)
	binary.LittleEndian.PutUint32(b[15:], aux)
	return b
}

func (s *Server) handle(req []byte) ([]byte, error) {
	if len(req) < 19 {
		return nil, common.ErrShortBuffer
	}
	node := common.NodeID(binary.LittleEndian.Uint16(req[1:]))
	pg := common.PageID(binary.LittleEndian.Uint64(req[3:]))
	frame := binary.LittleEndian.Uint32(req[11:])
	aux := binary.LittleEndian.Uint32(req[15:])
	if s.gate != nil {
		if err := s.gate(node, common.TrailingEpoch(req, 19)); err != nil {
			return nil, err
		}
	}
	switch req[0] {
	case opLookup:
		// Admission control: only lookups are shed. Push completions and
		// unregisters are cleanup whose rejection would leak pins or copy
		// registrations, and preparePush is coherence-critical (a node must
		// be able to flush a dirty frame before releasing its PLock).
		if lim := s.admit.Load(); lim > 0 {
			st := s.stripeFor(pg)
			if st.inflight.Add(1) > lim {
				st.inflight.Add(-1)
				s.Sheds.Inc()
				return nil, fmt.Errorf("bufferfusion: lookup stripe of page %d over admission bound %d: %w",
					pg, lim, common.ErrOverloaded)
			}
			defer st.inflight.Add(-1)
		}
		fr, ok, clean := s.lookup(node, pg, aux)
		resp := make([]byte, 6)
		if ok {
			resp[0] = 1
			binary.LittleEndian.PutUint32(resp[1:], uint32(fr))
			if clean {
				resp[5] = 1
			}
		}
		return resp, nil
	case opPreparePush:
		fr, err := s.preparePush(node, pg, aux)
		if err != nil {
			return nil, err
		}
		resp := make([]byte, 5)
		resp[0] = 1
		binary.LittleEndian.PutUint32(resp[1:], uint32(fr))
		return resp, nil
	case opPushed:
		s.pushed(node, pg, int(frame), aux == 1)
		return nil, nil
	case opUnregister:
		s.unregister(node, pg)
		return nil, nil
	default:
		return nil, fmt.Errorf("bufferfusion: unknown op %d", req[0])
	}
}

// lookup registers node (with its invalid-flag index) as a copy holder and
// returns the page's frame, if present. clean reports that the storage
// image is as new as the DBP frame (the frame was pushed from a storage
// read, or has been flushed since its last dirty push), which lets the
// client hedge a slow DBP read with a storage read without risking a stale
// image. The bit is stable for the caller: it holds a covering PLock, so no
// other node can push a newer image while the fetch is in flight.
func (s *Server) lookup(node common.NodeID, pg common.PageID, invalIdx uint32) (int, bool, bool) {
	st := s.stripeFor(pg)
	st.mu.Lock()
	defer st.mu.Unlock()
	e := st.dir[pg]
	if e == nil {
		if s.storageMode {
			// Track the copy for future invalidation even though
			// the data itself travels through storage.
			e = &dirEntry{page: pg, frame: -1, copies: make(map[common.NodeID]uint32)}
			e.lruEl = st.lru.PushBack(e)
			st.dir[pg] = e
			e.copies[node] = invalIdx
		}
		s.Misses.Inc()
		return 0, false, false
	}
	e.copies[node] = invalIdx
	st.lru.MoveToBack(e.lruEl)
	if s.storageMode {
		s.Misses.Inc()
		return 0, false, false
	}
	s.Hits.Inc()
	return e.frame, true, !e.dirty
}

// preparePush pins (allocating if needed) the page's frame so the caller can
// one-sided-write the image without racing eviction.
func (s *Server) preparePush(node common.NodeID, pg common.PageID, invalIdx uint32) (int, error) {
	st := s.stripeFor(pg)
	st.mu.Lock()
	defer st.mu.Unlock()
	e := st.dir[pg]
	if s.storageMode {
		if e == nil {
			e = &dirEntry{page: pg, frame: -1, copies: make(map[common.NodeID]uint32)}
			e.lruEl = st.lru.PushBack(e)
			st.dir[pg] = e
		}
		e.pins++
		e.copies[node] = invalIdx
		return storagePseudoFrame, nil
	}
	if e == nil {
		fr, err := s.allocFrameLocked(st)
		if err != nil {
			return 0, err
		}
		e = &dirEntry{page: pg, frame: fr, copies: make(map[common.NodeID]uint32)}
		e.lruEl = st.lru.PushBack(e)
		st.dir[pg] = e
		st.byFr[fr-st.base] = e
	}
	e.pins++
	e.copies[node] = invalIdx
	st.lru.MoveToBack(e.lruEl)
	return e.frame, nil
}

// pushed completes a push: unpin, mark dirty, and remotely invalidate every
// other node's copy through the stored invalid-flag addresses. clean marks
// a push whose image was just read from storage (a fetch registering the
// page in the DBP): it never downgrades an already-dirty entry — it only
// refrains from dirtying one, keeping the storage-hedge bit conservative.
func (s *Server) pushed(node common.NodeID, pg common.PageID, frame int, clean bool) {
	st := s.stripeFor(pg)
	st.mu.Lock()
	e := st.dir[pg]
	if e == nil || (!s.storageMode && e.frame != frame) {
		st.mu.Unlock()
		return
	}
	if e.pins > 0 {
		e.pins--
	}
	if !s.storageMode && !clean {
		e.dirty = true
	}
	type target struct {
		node common.NodeID
		idx  uint32
	}
	var targets []target
	for n, idx := range e.copies {
		if n != node {
			targets = append(targets, target{n, idx})
		}
	}
	st.mu.Unlock()
	s.Pushes.Inc()
	// The invalidation write is the coherence-critical op of §4.2: a copy
	// holder that misses it would keep serving the stale image. Retried
	// until delivered (the write is idempotent) — only a crashed holder,
	// whose cache dies with it, is allowed to miss one.
	for _, t := range targets {
		s.Invalidations.Inc()
		s.writeInval(t.node, t.idx, flagStale)
	}
}

// writeInval sets a copy holder's invalid flag, retrying transient faults.
func (s *Server) writeInval(node common.NodeID, idx uint32, flag uint64) {
	_ = common.Retry(s.retry, func() error {
		return s.fabric.Write64(node, RegionInval, int(idx)*8, flag)
	})
}

func (s *Server) unregister(node common.NodeID, pg common.PageID) {
	st := s.stripeFor(pg)
	st.mu.Lock()
	if e := st.dir[pg]; e != nil {
		delete(e.copies, node)
	}
	st.mu.Unlock()
}

// allocFrameLocked returns a free frame from st, evicting the stripe's
// coldest unpinned page if necessary (its image goes to storage first; its
// redo was already forced before the push, per §4.2).
func (s *Server) allocFrameLocked(st *bufStripe) (int, error) {
	if n := len(st.free); n > 0 {
		fr := st.free[n-1]
		st.free = st.free[:n-1]
		return fr, nil
	}
	for el := st.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*dirEntry)
		if e.pins > 0 {
			continue
		}
		s.evictLocked(st, e)
		return e.frame, nil
	}
	return 0, fmt.Errorf("bufferfusion: all %d DBP frames of stripe pinned", st.count)
}

// evictLocked removes e from the directory, flushing its image to storage if
// dirty and notifying copy holders that the page left the DBP.
func (s *Server) evictLocked(st *bufStripe, e *dirEntry) {
	s.Evictions.Inc()
	if e.dirty {
		img := make([]byte, page.FrameSize)
		if err := s.dbp.LocalRead(e.frame*page.FrameSize, img); err == nil {
			if n := imageLen(img); n > 0 {
				_ = s.store.WritePage(e.page, img[4:n])
			}
		}
	}
	for n, idx := range e.copies {
		s.writeInval(n, idx, flagDropped)
	}
	delete(st.dir, e.page)
	st.byFr[e.frame-st.base] = nil
	st.lru.Remove(e.lruEl)
}

// imageLen returns the end offset (including the 4-byte length prefix) of
// the page image at the front of a frame, or 0 if the frame doesn't hold a
// valid image. Frame layout: pages are written with a 4-byte length prefix
// by the LBP client; the image itself is frame[4:imageLen].
func imageLen(frame []byte) int {
	if len(frame) < 4 {
		return 0
	}
	n := int(binary.LittleEndian.Uint32(frame))
	if n <= 0 || n+4 > len(frame) {
		return 0
	}
	return n + 4
}

// FlushAll writes every dirty DBP page to storage (checkpoint support).
func (s *Server) FlushAll() error {
	for _, st := range s.stripes {
		st.mu.Lock()
		var entries []*dirEntry
		for _, e := range st.dir {
			if e.dirty {
				entries = append(entries, e)
			}
		}
		st.mu.Unlock()
		for _, e := range entries {
			img := make([]byte, page.FrameSize)
			st.mu.Lock()
			cur := st.dir[e.page]
			if cur != e {
				st.mu.Unlock()
				continue
			}
			err := s.dbp.LocalRead(e.frame*page.FrameSize, img)
			e.dirty = false
			st.mu.Unlock()
			if err != nil {
				return err
			}
			if n := imageLen(img); n > 0 {
				if err := s.store.WritePage(e.page, img[4:n]); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// DropNode removes node from every page's copy set (crash cleanup). The DBP
// content itself survives: that is what makes node restarts fast (§5.5).
func (s *Server) DropNode(node uint16) {
	n := common.NodeID(node)
	for _, st := range s.stripes {
		st.mu.Lock()
		for _, e := range st.dir {
			delete(e.copies, n)
		}
		st.mu.Unlock()
	}
}

// Reclaim force-evicts the given pages from the DBP during takeover: dirty
// images are flushed to storage, every cached copy is invalidated with
// flagDropped, pins are cleared (only the crashed node could have held
// them — callers pass pages the dead node held exclusively), and the frames
// return to the free list. Survivors re-fetch from storage after the
// takeover replay rebuilds the images there.
func (s *Server) Reclaim(pages []common.PageID) {
	for _, pg := range pages {
		st := s.stripeFor(pg)
		st.mu.Lock()
		e := st.dir[pg]
		if e == nil {
			st.mu.Unlock()
			continue
		}
		e.pins = 0
		if s.storageMode {
			for n, idx := range e.copies {
				s.writeInval(n, idx, flagDropped)
			}
			delete(st.dir, pg)
			st.lru.Remove(e.lruEl)
			st.mu.Unlock()
			continue
		}
		s.evictLocked(st, e)
		st.free = append(st.free, e.frame)
		st.mu.Unlock()
	}
}

// Reset discards all DBP state (full-cluster crash simulation: disaggregated
// memory is volatile; only storage survives).
func (s *Server) Reset() {
	for _, st := range s.stripes {
		st.mu.Lock()
		st.dir = make(map[common.PageID]*dirEntry)
		st.byFr = make([]*dirEntry, st.count)
		st.free = st.free[:0]
		for i := st.base + st.count - 1; i >= st.base; i-- {
			st.free = append(st.free, i)
		}
		st.lru.Init()
		st.mu.Unlock()
	}
}

// Contains reports whether the DBP currently holds pg (tests).
func (s *Server) Contains(pg common.PageID) bool {
	st := s.stripeFor(pg)
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.dir[pg] != nil
}

// Len returns the number of pages resident in the DBP.
func (s *Server) Len() int {
	n := 0
	for _, st := range s.stripes {
		st.mu.Lock()
		n += len(st.dir)
		st.mu.Unlock()
	}
	return n
}
