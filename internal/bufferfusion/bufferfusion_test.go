package bufferfusion

import (
	"fmt"
	"testing"

	"polardbmp/internal/common"
	"polardbmp/internal/page"
	"polardbmp/internal/rdma"
	"polardbmp/internal/storage"
)

type bfCluster struct {
	fabric *rdma.Fabric
	store  *storage.Store
	srv    *Server
	lbp    []*Client
}

func newBFCluster(t testing.TB, nodes, dbpFrames, lbpFrames int) *bfCluster {
	t.Helper()
	fabric := rdma.NewFabric(rdma.Latency{})
	store := storage.New(storage.Latency{})
	srv := NewServer(fabric.Register(common.PMFSNode), fabric, store, dbpFrames)
	c := &bfCluster{fabric: fabric, store: store, srv: srv}
	for i := 0; i < nodes; i++ {
		ep := fabric.Register(common.NodeID(i + 1))
		c.lbp = append(c.lbp, NewClient(ep, fabric, store, lbpFrames))
	}
	return c
}

func makePage(id common.PageID, val string) *page.Page {
	p := page.New(id, 1, page.TypeLeaf)
	p.InsertVersion([]byte("k"), page.Version{Value: []byte(val)})
	return p
}

func storePage(t testing.TB, s *storage.Store, p *page.Page) {
	t.Helper()
	img, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WritePage(p.ID, img); err != nil {
		t.Fatal(err)
	}
}

func TestGetFromStorageAndDBPRegistration(t *testing.T) {
	c := newBFCluster(t, 2, 16, 16)
	storePage(t, c.store, makePage(1, "v0"))

	f, err := c.lbp[0].Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if string(f.Pg.Find([]byte("k")).Head().Value) != "v0" {
		t.Fatal("wrong content from storage")
	}
	c.lbp[0].Unpin(f)
	if !c.srv.Contains(1) {
		t.Fatal("loaded page not registered in DBP")
	}
	if c.lbp[0].StorageReads.Load() != 1 {
		t.Fatalf("storage reads = %d", c.lbp[0].StorageReads.Load())
	}

	// Node 2 must now get it from the DBP, not storage.
	before := c.store.Stats().PageReads.Load()
	f2, err := c.lbp[1].Get(1)
	if err != nil {
		t.Fatal(err)
	}
	c.lbp[1].Unpin(f2)
	if c.store.Stats().PageReads.Load() != before {
		t.Fatal("second node read from storage instead of DBP")
	}
	if c.lbp[1].DBPReads.Load() != 1 {
		t.Fatalf("DBP reads = %d", c.lbp[1].DBPReads.Load())
	}
}

func TestPushInvalidatesPeers(t *testing.T) {
	c := newBFCluster(t, 2, 16, 16)
	storePage(t, c.store, makePage(1, "v0"))

	// Both nodes cache the page.
	f1, _ := c.lbp[0].Get(1)
	f2, _ := c.lbp[1].Get(1)
	c.lbp[1].Unpin(f2)

	// Node 1 modifies and pushes (engine would hold the X PLock here).
	f1.Mu.Lock()
	f1.Pg.InsertVersion([]byte("k"), page.Version{Value: []byte("v1")})
	f1.Pg.LLSN = 2
	f1.Dirty = true
	if err := c.lbp[0].Push(f1); err != nil {
		t.Fatal(err)
	}
	f1.Mu.Unlock()
	c.lbp[0].Unpin(f1)

	// Node 2's next Get must observe the invalidation and refresh.
	f2b, err := c.lbp[1].Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(f2b.Pg.Find([]byte("k")).Head().Value); got != "v1" {
		t.Fatalf("node 2 sees %q after push, want v1", got)
	}
	c.lbp[1].Unpin(f2b)
	if c.lbp[1].Refreshes.Load() != 1 {
		t.Fatalf("refreshes = %d", c.lbp[1].Refreshes.Load())
	}
	if c.srv.Invalidations.Load() != 1 {
		t.Fatalf("invalidations = %d", c.srv.Invalidations.Load())
	}
	// Storage was never touched by the transfer.
	if c.store.Stats().PageWrites.Load() != 1 { // only the initial storePage
		t.Fatalf("page writes = %d", c.store.Stats().PageWrites.Load())
	}
}

func TestNewPageAndPush(t *testing.T) {
	c := newBFCluster(t, 2, 16, 16)
	p := makePage(7, "fresh")
	f, err := c.lbp[0].NewPage(p)
	if err != nil {
		t.Fatal(err)
	}
	f.Mu.Lock()
	if err := c.lbp[0].Push(f); err != nil {
		t.Fatal(err)
	}
	f.Mu.Unlock()
	c.lbp[0].Unpin(f)
	// Peer reads it from the DBP even though storage never saw it.
	f2, err := c.lbp[1].Get(7)
	if err != nil {
		t.Fatal(err)
	}
	if string(f2.Pg.Find([]byte("k")).Head().Value) != "fresh" {
		t.Fatal("peer got wrong content")
	}
	c.lbp[1].Unpin(f2)
	if c.store.Stats().PageReads.Load() != 0 {
		t.Fatal("peer read storage for a DBP-resident page")
	}
}

func TestDBPEvictionFlushesToStorage(t *testing.T) {
	c := newBFCluster(t, 1, 4, 64)
	// Create 8 pages through one node; DBP holds only 4.
	for i := 1; i <= 8; i++ {
		p := makePage(common.PageID(i), fmt.Sprintf("v%d", i))
		f, err := c.lbp[0].NewPage(p)
		if err != nil {
			t.Fatal(err)
		}
		f.Mu.Lock()
		if err := c.lbp[0].Push(f); err != nil {
			t.Fatal(err)
		}
		f.Mu.Unlock()
		c.lbp[0].Unpin(f)
	}
	if c.srv.Len() > 4 {
		t.Fatalf("DBP holds %d pages with 4 frames", c.srv.Len())
	}
	if c.srv.Evictions.Load() < 4 {
		t.Fatalf("evictions = %d", c.srv.Evictions.Load())
	}
	// Evicted pages must be readable from storage.
	for i := 1; i <= 4; i++ {
		if !c.store.HasPage(common.PageID(i)) && !c.srv.Contains(common.PageID(i)) {
			t.Fatalf("page %d lost", i)
		}
	}
}

func TestDroppedFlagFullRefetch(t *testing.T) {
	c := newBFCluster(t, 1, 2, 16)
	// Cache page 1, then flood the DBP so page 1 is evicted (dropped).
	storePage(t, c.store, makePage(1, "v0"))
	f, _ := c.lbp[0].Get(1)
	c.lbp[0].Unpin(f)
	for i := 2; i <= 5; i++ {
		p := makePage(common.PageID(i), "x")
		nf, err := c.lbp[0].NewPage(p)
		if err != nil {
			t.Fatal(err)
		}
		nf.Mu.Lock()
		c.lbp[0].Push(nf)
		nf.Mu.Unlock()
		c.lbp[0].Unpin(nf)
	}
	if c.srv.Contains(1) {
		t.Skip("page 1 survived eviction; LRU kept it")
	}
	// Access after drop: full re-fetch (from storage) must succeed.
	f2, err := c.lbp[0].Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if string(f2.Pg.Find([]byte("k")).Head().Value) != "v0" {
		t.Fatal("refetched wrong content")
	}
	c.lbp[0].Unpin(f2)
}

func TestLBPEvictionPushesDirty(t *testing.T) {
	c := newBFCluster(t, 1, 64, 2)
	var frames []*Frame
	for i := 1; i <= 2; i++ {
		p := makePage(common.PageID(i), "d")
		f, err := c.lbp[0].NewPage(p)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	for _, f := range frames {
		c.lbp[0].Unpin(f) // dirty, unpinned
	}
	// Installing a third page forces eviction of a dirty one -> DBP push.
	storePage(t, c.store, makePage(3, "v3"))
	f3, err := c.lbp[0].Get(3)
	if err != nil {
		t.Fatal(err)
	}
	c.lbp[0].Unpin(f3)
	if c.lbp[0].Len() > 2 {
		t.Fatalf("LBP len = %d", c.lbp[0].Len())
	}
	if !c.srv.Contains(1) && !c.srv.Contains(2) {
		t.Fatal("evicted dirty page not pushed to DBP")
	}
}

func TestFlushAllAndServerFlush(t *testing.T) {
	c := newBFCluster(t, 1, 16, 16)
	p := makePage(1, "dirty")
	f, _ := c.lbp[0].NewPage(p)
	c.lbp[0].Unpin(f)
	if err := c.lbp[0].FlushAll(); err != nil {
		t.Fatal(err)
	}
	if !c.srv.Contains(1) {
		t.Fatal("FlushAll did not push to DBP")
	}
	if err := c.srv.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if !c.store.HasPage(1) {
		t.Fatal("server FlushAll did not reach storage")
	}
	img, _ := c.store.ReadPage(1)
	q, err := page.Unmarshal(img)
	if err != nil || string(q.Find([]byte("k")).Head().Value) != "dirty" {
		t.Fatalf("storage content wrong: %v", err)
	}
}

func TestServerResetSimulatesDBPLoss(t *testing.T) {
	c := newBFCluster(t, 1, 16, 16)
	storePage(t, c.store, makePage(1, "v0"))
	f, _ := c.lbp[0].Get(1)
	c.lbp[0].Unpin(f)
	c.srv.Reset()
	if c.srv.Contains(1) || c.srv.Len() != 0 {
		t.Fatal("reset did not clear the DBP")
	}
}

func TestConcurrentGetSinglePage(t *testing.T) {
	c := newBFCluster(t, 1, 16, 16)
	storePage(t, c.store, makePage(1, "v0"))
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			f, err := c.lbp[0].Get(1)
			if err == nil {
				c.lbp[0].Unpin(f)
			}
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// The stampede must coalesce into one storage read.
	if got := c.store.Stats().PageReads.Load(); got != 1 {
		t.Fatalf("storage reads = %d, want 1", got)
	}
}

func TestGetMissingPage(t *testing.T) {
	c := newBFCluster(t, 1, 16, 16)
	if _, err := c.lbp[0].Get(999); err == nil {
		t.Fatal("get of missing page should fail")
	}
	// A failed load must not leave a poisoned frame behind.
	if c.lbp[0].Len() != 0 {
		t.Fatal("failed load left a frame")
	}
	storePage(t, c.store, makePage(999, "late"))
	f, err := c.lbp[0].Get(999)
	if err != nil {
		t.Fatal(err)
	}
	c.lbp[0].Unpin(f)
}

// --- storage-mode (log-ship baseline path) ----------------------------------

func newStorageModeCluster(t testing.TB, nodes int) *bfCluster {
	t.Helper()
	fabric := rdma.NewFabric(rdma.Latency{})
	store := storage.New(storage.Latency{})
	srv := NewServerMode(fabric.Register(common.PMFSNode), fabric, store, 16, true)
	c := &bfCluster{fabric: fabric, store: store, srv: srv}
	for i := 0; i < nodes; i++ {
		ep := fabric.Register(common.NodeID(i + 1))
		cl := NewClient(ep, fabric, store, 16)
		cl.SetStorageMode(true)
		c.lbp = append(c.lbp, cl)
	}
	return c
}

func TestStorageModePushGoesToStorage(t *testing.T) {
	c := newStorageModeCluster(t, 2)
	p := makePage(1, "v1")
	f, err := c.lbp[0].NewPage(p)
	if err != nil {
		t.Fatal(err)
	}
	f.Mu.Lock()
	if err := c.lbp[0].Push(f); err != nil {
		t.Fatal(err)
	}
	f.Mu.Unlock()
	c.lbp[0].Unpin(f)
	// The page image landed in shared storage, not a DBP frame.
	if !c.store.HasPage(1) {
		t.Fatal("push did not reach storage")
	}
	// A peer fetch reads storage (and pays the log-replay read).
	reads := c.store.Stats().PageReads.Load()
	logReads := c.store.Stats().LogReads.Load()
	f2, err := c.lbp[1].Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if string(f2.Pg.Find([]byte("k")).Head().Value) != "v1" {
		t.Fatal("peer read wrong content")
	}
	c.lbp[1].Unpin(f2)
	if c.store.Stats().PageReads.Load() != reads+1 {
		t.Fatal("peer fetch did not read storage")
	}
	if c.store.Stats().LogReads.Load() != logReads+1 {
		t.Fatal("peer fetch did not charge the log-replay read")
	}
}

func TestStorageModeInvalidationStillWorks(t *testing.T) {
	c := newStorageModeCluster(t, 2)
	storePage(t, c.store, makePage(1, "v0"))
	f1, _ := c.lbp[0].Get(1)
	c.lbp[0].Unpin(f1)
	f2, _ := c.lbp[1].Get(1)
	c.lbp[1].Unpin(f2)

	// Node 1 updates and pushes through storage; node 2's copy must be
	// invalidated and refreshed on next access.
	f1b, _ := c.lbp[0].Get(1)
	f1b.Mu.Lock()
	f1b.Pg.InsertVersion([]byte("k"), page.Version{Value: []byte("v1")})
	f1b.Pg.LLSN = 5
	f1b.Dirty = true
	if err := c.lbp[0].Push(f1b); err != nil {
		t.Fatal(err)
	}
	f1b.Mu.Unlock()
	c.lbp[0].Unpin(f1b)

	f2b, err := c.lbp[1].Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(f2b.Pg.Find([]byte("k")).Head().Value); got != "v1" {
		t.Fatalf("node 2 sees %q after storage-mode push", got)
	}
	c.lbp[1].Unpin(f2b)
}
