package bufferfusion

import (
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"polardbmp/internal/common"
	"polardbmp/internal/metrics"
	"polardbmp/internal/page"
	"polardbmp/internal/rdma"
	"polardbmp/internal/storage"
	"polardbmp/internal/trace"
)

// ForceLogFunc forces the node's redo log to durable storage at least up to
// upTo, the highest LSN covering the page being pushed; the engine installs
// it so a dirty page never reaches the DBP ahead of its log (§4.2: "before
// flushing a dirty page to the DBP, PolarDB-MP also forces the corresponding
// logs to storage"). upTo == 0 means the page carries unlogged-only changes
// (purges, CTS stamps) or predates FlushLSN tracking; implementations must
// then fall back to a conservative full-log force.
type ForceLogFunc func(upTo common.LSN)

// Frame is one LBP slot: the decoded page, its coherence metadata (the
// valid flag lives in the node's RegionInval at index idx; r_addr is the
// page's DBP frame), and the local latch used by the engine.
type Frame struct {
	// Mu is the node-local page latch (intra-node concurrency; PLocks
	// handle inter-node access).
	Mu sync.RWMutex
	// Pg is the cached page. Access under Mu.
	Pg *page.Page
	// Dirty marks local modifications not yet pushed to the DBP. Access
	// under Mu.
	Dirty bool
	// FlushLSN is the end LSN of the newest log record reflected in Pg (0
	// if every unflushed change is unlogged, e.g. purges and CTS stamps).
	// Forcing the log to FlushLSN — rather than to the whole log's end —
	// is what makes a revoke-time flush of an already-durable page free.
	// Access under Mu.
	FlushLSN common.LSN

	id       common.PageID
	idx      uint32 // invalid-flag index in RegionInval
	dbpFrame int    // r_addr: the page's DBP frame; -1 if unknown
	pins     int
	lruEl    *list.Element

	// loading is closed once the initial fetch completes; loadErr is
	// valid after that (the channel close is the happens-before edge).
	loading chan struct{}
	loadErr error
}

// ID returns the frame's page id.
func (f *Frame) ID() common.PageID { return f.id }

// Client is a node's local buffer pool (LBP) with Buffer Fusion coherence.
type Client struct {
	node        common.NodeID
	fabric      rdma.Conn
	retry       common.RetryPolicy
	stamp       *common.EpochStamp
	inval       *rdma.Region
	store       storage.API
	capacity    int
	forceLog    ForceLogFunc
	storageMode bool
	closed      atomic.Bool
	tr          *trace.Tracer

	// dbpReadEWMA tracks typical one-sided DBP read latency (ns) so the
	// hedge delay derives from the node's observed latency profile.
	dbpReadEWMA atomic.Int64
	// hedgeFloor is the minimum hedge delay in ns (-1 disables hedging).
	hedgeFloor atomic.Int64

	mu     sync.Mutex
	frames map[common.PageID]*Frame
	lru    *list.List // *Frame, most-recent at back

	// Stats for harnesses.
	LocalHits    metrics.Counter
	DBPReads     metrics.Counter
	StorageReads metrics.Counter
	PushesOut    metrics.Counter
	Refreshes    metrics.Counter
	// HedgesFired counts fetches whose primary DBP read outlived the hedge
	// delay; HedgeWins counts those where the hedge responded first.
	HedgesFired metrics.Counter
	HedgeWins   metrics.Counter
}

// NewClient creates the node's LBP with the given frame capacity and
// registers its invalid-flag region.
func NewClient(ep *rdma.Endpoint, fabric *rdma.Fabric, store storage.API, capacity int) *Client {
	if capacity <= 0 {
		capacity = 1024
	}
	c := &Client{
		node:     ep.Node(),
		fabric:   fabric.From(ep.Node()),
		retry:    common.DefaultRetryPolicy(),
		inval:    ep.RegisterRegion(RegionInval, capacity*8),
		store:    store,
		capacity: capacity,
		frames:   make(map[common.PageID]*Frame),
		lru:      list.New(),
	}
	c.hedgeFloor.Store(int64(hedgeFloorDefault))
	return c
}

// hedgeFloorDefault is the minimum hedge delay: far above a healthy
// simulated-fabric read (sub-microsecond) so hedges only fire on genuine
// fail-slow stalls, yet far below a storage round trip's worth of stall.
const hedgeFloorDefault = time.Millisecond

// SetHedgeDelayFloor overrides the minimum hedge delay for fail-slow DBP
// reads. The effective delay is max(floor, 8x the node's DBP-read latency
// EWMA). d <= 0 disables hedging entirely.
func (c *Client) SetHedgeDelayFloor(d time.Duration) {
	if d <= 0 {
		c.hedgeFloor.Store(-1)
		return
	}
	c.hedgeFloor.Store(int64(d))
}

// hedgeDelay returns the current hedge delay, or ok=false when hedging is
// disabled.
func (c *Client) hedgeDelay() (time.Duration, bool) {
	floor := c.hedgeFloor.Load()
	if floor < 0 {
		return 0, false
	}
	d := 8 * c.dbpReadEWMA.Load()
	if d < floor {
		d = floor
	}
	return time.Duration(d), true
}

// noteDBPRead folds one successful DBP read latency into the EWMA
// (weight 1/8). Races between concurrent readers lose samples, never
// corrupt: the value is always some recent sample mix.
func (c *Client) noteDBPRead(d time.Duration) {
	ns := d.Nanoseconds()
	if ns <= 0 {
		ns = 1
	}
	old := c.dbpReadEWMA.Load()
	if old == 0 {
		c.dbpReadEWMA.Store(ns)
		return
	}
	c.dbpReadEWMA.Store(old + (ns-old)/8)
}

// SetForceLog installs the engine's log-force hook (must be set before the
// node serves traffic).
func (c *Client) SetForceLog(f ForceLogFunc) { c.forceLog = f }

// SetRetryPolicy overrides the transient-fault retry policy (chaos
// ablations disable it).
func (c *Client) SetRetryPolicy(p common.RetryPolicy) { c.retry = p }

// SetEpochStamp makes the client stamp requests with the node's incarnation
// epoch so PMFS can fence evicted incarnations.
func (c *Client) SetEpochStamp(s *common.EpochStamp) { c.stamp = s }

// SetTracer attaches the node's commit-path tracer (nil disables). Page
// fills are observed as StageFrameDBP (one-sided read from the distributed
// buffer pool) or StageFrameStorage; LBP hits as StageFrameLocal.
func (c *Client) SetTracer(t *trace.Tracer) { c.tr = t }

// FetchKind classifies where GetEx found the page.
type FetchKind uint8

const (
	// FetchHit: the page was cached and valid in the LBP (a stale frame
	// refreshed in place also reports FetchHit; the refresh itself is
	// observed in the stage aggregates).
	FetchHit FetchKind = iota
	// FetchDBP: filled from the distributed buffer pool.
	FetchDBP
	// FetchStorage: filled from shared storage.
	FetchStorage
)

// SetStorageMode switches the client to the log-ship baseline's page-sync
// path: pushes write page images to shared storage, fetches read them back
// (plus a log-read charge standing in for the replay Taurus-MM performs).
func (c *Client) SetStorageMode(on bool) { c.storageMode = on }

// Get returns the frame for pg, pinned. The caller must Unpin it. The
// caller must already hold the page's PLock in a covering mode: PLock
// ordering is what makes the valid-flag check race-free (a writer cannot
// push a new version while we hold S).
func (c *Client) Get(pg common.PageID) (*Frame, error) {
	f, _, err := c.GetEx(pg)
	return f, err
}

// GetEx is Get plus classification of where the page came from.
func (c *Client) GetEx(pg common.PageID) (*Frame, FetchKind, error) {
	return c.getEx(pg, common.Deadline{})
}

// GetDeadline is Get bounded by the caller's transaction budget: the fetch
// refuses to start once dl has expired and its fabric verbs, retry backoff,
// and storage reads all stop at the budget with ErrDeadlineExceeded. A
// concurrent fetch of the same page by another caller is awaited without a
// bound — it runs under that caller's own budget.
func (c *Client) GetDeadline(pg common.PageID, dl common.Deadline) (*Frame, error) {
	f, _, err := c.getEx(pg, dl)
	return f, err
}

// GetDeadlineEx is GetDeadline plus fetch classification.
func (c *Client) GetDeadlineEx(pg common.PageID, dl common.Deadline) (*Frame, FetchKind, error) {
	return c.getEx(pg, dl)
}

func (c *Client) getEx(pg common.PageID, dl common.Deadline) (*Frame, FetchKind, error) {
	if err := dl.Err(); err != nil {
		return nil, FetchHit, err
	}
	if c.closed.Load() {
		return nil, FetchHit, fmt.Errorf("bufferfusion: node %d LBP: %w", c.node, common.ErrClosed)
	}
	tok := c.tr.Start()
	c.mu.Lock()
	f := c.frames[pg]
	if f != nil {
		f.pins++
		c.lru.MoveToBack(f.lruEl)
		c.mu.Unlock()
		<-f.loading
		if f.loadErr != nil {
			c.Unpin(f)
			return nil, FetchHit, f.loadErr
		}
		if err := c.ensureValid(f); err != nil {
			c.Unpin(f)
			return nil, FetchHit, err
		}
		c.LocalHits.Inc()
		c.tr.Observe(trace.StageFrameLocal, tok)
		return f, FetchHit, nil
	}

	// Install a placeholder so concurrent getters of the same page wait
	// on one fetch instead of stampeding, and release c.mu across the
	// fetch I/O.
	if len(c.frames) >= c.capacity {
		if err := c.evictOneLocked(); err != nil {
			c.mu.Unlock()
			return nil, FetchHit, err
		}
	}
	f = &Frame{id: pg, idx: c.freeIdxLocked(), dbpFrame: -1, pins: 1, loading: make(chan struct{})}
	f.lruEl = c.lru.PushBack(f)
	c.frames[pg] = f
	c.mu.Unlock()

	// Mark valid before registering as a copy holder so no invalidation
	// window is lost (the PLock held by our caller excludes real writers
	// anyway; only DBP eviction races this, and the ID check below
	// handles it).
	if err := c.inval.LocalWrite64(int(f.idx)*8, flagValid); err != nil {
		return nil, FetchHit, c.failLoad(f, err)
	}
	p, dbpFrame, kind, err := c.fetch(pg, f.idx, dl)
	if err != nil {
		return nil, kind, c.failLoad(f, err)
	}
	f.Pg = p
	f.dbpFrame = dbpFrame
	close(f.loading)
	return f, kind, nil
}

// failLoad publishes a failed initial fetch and removes the placeholder.
func (c *Client) failLoad(f *Frame, err error) error {
	f.loadErr = err
	close(f.loading)
	c.mu.Lock()
	if c.frames[f.id] == f {
		delete(c.frames, f.id)
		c.lru.Remove(f.lruEl)
	}
	f.pins--
	c.mu.Unlock()
	return err
}

// ensureValid checks the frame's invalid flag and refreshes the page from
// the DBP (flag=stale) or re-fetches it entirely (flag=dropped).
func (c *Client) ensureValid(f *Frame) error {
	flag, err := c.inval.LocalRead64(int(f.idx) * 8)
	if err != nil {
		return err
	}
	if flag == flagValid {
		return nil
	}
	f.Mu.Lock()
	defer f.Mu.Unlock()
	// Re-check under the latch; a concurrent getter may have refreshed.
	flag, err = c.inval.LocalRead64(int(f.idx) * 8)
	if err != nil {
		return err
	}
	if flag == flagValid {
		return nil
	}
	if f.Dirty {
		panic(fmt.Sprintf("bufferfusion: node %d page %d invalidated while dirty (PLock protocol violation)",
			c.node, f.id))
	}
	c.Refreshes.Inc()
	if flag == flagStale && f.dbpFrame >= 0 && !c.storageMode {
		tok := c.tr.Start()
		if p, err := c.readDBPFrame(f.dbpFrame, common.Deadline{}); err == nil && p.ID == f.id {
			f.Pg = p
			c.tr.Observe(trace.StageFrameDBP, tok)
			return c.inval.LocalWrite64(int(f.idx)*8, flagValid)
		}
		// Frame was recycled under us; fall through to a full fetch.
	}
	p, dbpFrame, _, err := c.fetch(f.id, f.idx, common.Deadline{})
	if err != nil {
		return err
	}
	f.Pg = p
	f.dbpFrame = dbpFrame
	return c.inval.LocalWrite64(int(f.idx)*8, flagValid)
}

// freeIdxLocked finds an unused invalid-flag index.
func (c *Client) freeIdxLocked() uint32 {
	used := make([]bool, c.capacity)
	for _, f := range c.frames {
		if int(f.idx) < len(used) {
			used[f.idx] = true
		}
	}
	for i, u := range used {
		if !u {
			return uint32(i)
		}
	}
	panic("bufferfusion: no free invalid-flag index despite eviction")
}

// fetch implements the page-access path of §4.2: DBP lookup (registering
// this node as a copy holder), one-sided read on hit (hedged against
// fail-slow stalls); storage read then register+push on miss. A non-zero
// dl bounds every verb, retry backoff, and storage read.
func (c *Client) fetch(pg common.PageID, invalIdx uint32, dl common.Deadline) (*page.Page, int, FetchKind, error) {
	tok := c.tr.Start()
	fab := c.fabric.WithDeadline(dl)
	// Lookup is idempotent (re-registering the same copy holder is a
	// no-op), so transient faults retry safely. A shed lookup
	// (ErrOverloaded) is also transient: the retry backoff is the client's
	// contribution to draining the overload.
	var resp []byte
	err := common.RetryDeadline(c.retry, dl, func() (e error) {
		resp, e = fab.Call(common.PMFSNode, ServiceBuf, c.stamp.Stamp(bufReq(opLookup, c.node, pg, 0, invalIdx)))
		return e
	})
	if err != nil {
		return nil, -1, FetchDBP, err
	}
	if len(resp) >= 5 && resp[0] == 1 {
		frame := int(binary.LittleEndian.Uint32(resp[1:]))
		clean := len(resp) >= 6 && resp[5] == 1
		p, hedged, err := c.readDBPFrameHedged(pg, frame, clean, dl)
		if hedged {
			c.tr.Observe(trace.StageHedgeFired, tok)
		}
		if err == nil && p.ID == pg {
			c.DBPReads.Inc()
			c.tr.Observe(trace.StageFrameDBP, tok)
			return p, frame, FetchDBP, nil
		}
		if errors.Is(err, common.ErrDeadlineExceeded) {
			return nil, -1, FetchDBP, err
		}
		// The frame was recycled between lookup and read; retry once
		// via storage (the eviction wrote the page there).
	}
	c.StorageReads.Inc()
	p, err := c.readPageFromStorage(pg, dl)
	if err != nil {
		return nil, -1, FetchStorage, err
	}
	if c.storageMode {
		// Log-ship model: obtaining the latest page costs the page
		// read plus fetching and applying the newer log records
		// (Taurus-MM's page-store + log-replay path, §2.3).
		var replay [512]byte
		_, _ = c.store.LogRead(c.node, c.store.LogStartLSN(c.node), replay[:])
		c.tr.Observe(trace.StageFrameStorage, tok)
		return p, storagePseudoFrame, FetchStorage, nil
	}
	// Register the loaded page into the DBP so peers can reach it without
	// storage I/O. The push is clean: the image came from storage, so the
	// directory entry stays hedgeable.
	frame, err := c.pushImage(p, invalIdx, true)
	if err != nil {
		return nil, -1, FetchStorage, err
	}
	c.tr.Observe(trace.StageFrameStorage, tok)
	return p, frame, FetchStorage, nil
}

// frameBufPool recycles frame-sized scratch buffers for DBP reads and
// pushes. The fabric copies synchronously and page.Unmarshal copies out, so
// a buffer is reusable the moment the verb returns — on the single-box
// simulator these per-transfer allocations were a measurable GC tax.
var frameBufPool = sync.Pool{
	New: func() any { b := make([]byte, page.FrameSize+4); return &b }, // +4: image length prefix
}

func (c *Client) readDBPFrame(frame int, dl common.Deadline) (*page.Page, error) {
	bp := frameBufPool.Get().(*[]byte)
	defer frameBufPool.Put(bp)
	buf := (*bp)[:page.FrameSize]
	fab := c.fabric.WithDeadline(dl)
	start := time.Now()
	if err := common.RetryDeadline(c.retry, dl, func() error {
		return fab.Read(common.PMFSNode, RegionDBP, frame*page.FrameSize, buf)
	}); err != nil {
		return nil, err
	}
	c.noteDBPRead(time.Since(start))
	n := imageLen(buf)
	if n == 0 {
		return nil, fmt.Errorf("bufferfusion: empty DBP frame %d: %w", frame, common.ErrNotFound)
	}
	return page.Unmarshal(buf[4:n])
}

// readPageFromStorage reads and decodes pg's image from shared storage,
// bounded by dl.
func (c *Client) readPageFromStorage(pg common.PageID, dl common.Deadline) (*page.Page, error) {
	var img []byte
	if err := common.RetryDeadline(c.retry, dl, func() (e error) {
		img, e = c.store.ReadPage(pg)
		return e
	}); err != nil {
		return nil, err
	}
	return page.Unmarshal(img)
}

// readDBPFrameHedged is the fail-slow-mitigated DBP read of the fetch path:
// if the primary one-sided read outlives the hedge delay (derived from the
// node's latency EWMA), a fallback is issued and the first usable response
// wins. The fallback reads shared storage when the server reported the
// frame clean (storage image provably as new as the frame), else it re-reads
// the DBP frame — a stale storage image must never be served. The loser
// cannot be cancelled on the simulated fabric; it drains into the buffered
// channel and is dropped, its cost visible through HedgesFired/HedgeWins.
func (c *Client) readDBPFrameHedged(pg common.PageID, frame int, clean bool, dl common.Deadline) (p *page.Page, hedged bool, err error) {
	delay, ok := c.hedgeDelay()
	if !ok {
		p, err = c.readDBPFrame(frame, dl)
		return p, false, err
	}
	type res struct {
		p        *page.Page
		err      error
		fallback bool
	}
	ch := make(chan res, 2)
	go func() {
		p, err := c.readDBPFrame(frame, dl)
		ch <- res{p: p, err: err}
	}()
	timer := time.NewTimer(delay)
	select {
	case r := <-ch:
		timer.Stop()
		return r.p, false, r.err
	case <-timer.C:
	}
	c.HedgesFired.Inc()
	go func() {
		r := res{fallback: true}
		if clean && !c.storageMode {
			r.p, r.err = c.readPageFromStorage(pg, dl)
		} else {
			r.p, r.err = c.readDBPFrame(frame, dl)
		}
		ch <- r
	}()
	first := <-ch
	if first.err == nil && first.p != nil && first.p.ID == pg {
		if first.fallback {
			c.HedgeWins.Inc()
		}
		return first.p, true, nil
	}
	// The first response was unusable (error, or a recycled frame holding
	// another page); give the straggler its chance before reporting.
	second := <-ch
	if second.err == nil && second.p != nil && second.p.ID == pg {
		if second.fallback {
			c.HedgeWins.Inc()
		}
		return second.p, true, nil
	}
	return first.p, true, first.err
}

// pushImage writes p into its (pinned) DBP frame and completes the push.
// clean marks a push whose image was just read from storage (fetch
// registration); dirty pushes (modified frames) pass false so the server
// marks the entry newer than its storage image.
func (c *Client) pushImage(p *page.Page, invalIdx uint32, clean bool) (int, error) {
	cleanAux := uint32(0)
	if clean {
		cleanAux = 1
	}
	if c.closed.Load() {
		// A zombie goroutine of a crashed node must never publish its
		// stale pages over the restarted incarnation's recovery.
		return -1, fmt.Errorf("bufferfusion: node %d LBP: %w", c.node, common.ErrClosed)
	}
	// Build [imageLen u32][image] in one pooled buffer: the frame layout
	// the DBP expects, with no intermediate copy.
	bp := frameBufPool.Get().(*[]byte)
	defer frameBufPool.Put(bp)
	buf, err := p.AppendTo(append((*bp)[:0], 0, 0, 0, 0))
	if err != nil {
		return -1, err
	}
	binary.LittleEndian.PutUint32(buf, uint32(len(buf)-4))
	img := buf[4:]
	if c.storageMode {
		if err := common.Retry(c.retry, func() error {
			return c.store.WritePage(p.ID, img)
		}); err != nil {
			return -1, err
		}
		if err := c.callBuf(bufReq(opPreparePush, c.node, p.ID, 0, invalIdx)); err != nil {
			return -1, err
		}
		if err := c.callBuf(bufReq(opPushed, c.node, p.ID, storagePseudoFrame, cleanAux)); err != nil {
			return -1, err
		}
		return storagePseudoFrame, nil
	}
	// A dropped prepare-push never reached the server; the server treats a
	// repeated prepare for the same (node, page) as a fresh pin of the same
	// push, so the retry converges instead of leaking frames.
	var resp []byte
	err = common.Retry(c.retry, func() (e error) {
		resp, e = c.fabric.Call(common.PMFSNode, ServiceBuf, c.stamp.Stamp(bufReq(opPreparePush, c.node, p.ID, 0, invalIdx)))
		return e
	})
	if err != nil {
		return -1, err
	}
	if len(resp) < 5 || resp[0] != 1 {
		return -1, fmt.Errorf("bufferfusion: prepare-push of page %d failed", p.ID)
	}
	frame := int(binary.LittleEndian.Uint32(resp[1:]))
	if err := common.Retry(c.retry, func() error {
		return c.fabric.Write(common.PMFSNode, RegionDBP, frame*page.FrameSize, buf)
	}); err != nil {
		return -1, err
	}
	if err := c.callBuf(bufReq(opPushed, c.node, p.ID, uint32(frame), cleanAux)); err != nil {
		return -1, err
	}
	return frame, nil
}

// callBuf sends one Buffer Fusion RPC with transient-fault retries,
// discarding the response. The request is epoch-stamped here.
func (c *Client) callBuf(req []byte) error {
	req = c.stamp.Stamp(req)
	return common.Retry(c.retry, func() error {
		_, err := c.fabric.Call(common.PMFSNode, ServiceBuf, req)
		return err
	})
}

// NewPage installs a freshly allocated page (engine-created, under X PLock)
// as a dirty frame, pinned.
func (c *Client) NewPage(p *page.Page) (*Frame, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.frames[p.ID] != nil {
		return nil, fmt.Errorf("bufferfusion: page %d already cached", p.ID)
	}
	if len(c.frames) >= c.capacity {
		if err := c.evictOneLocked(); err != nil {
			return nil, err
		}
	}
	idx := c.freeIdxLocked()
	if err := c.inval.LocalWrite64(int(idx)*8, flagValid); err != nil {
		return nil, err
	}
	f := &Frame{id: p.ID, idx: idx, dbpFrame: -1, Pg: p, Dirty: true, pins: 1,
		loading: closedChan}
	f.lruEl = c.lru.PushBack(f)
	c.frames[p.ID] = f
	return f, nil
}

// closedChan is a pre-closed channel for frames born fully loaded.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// Unpin releases one pin.
func (c *Client) Unpin(f *Frame) {
	c.mu.Lock()
	if f.pins <= 0 {
		c.mu.Unlock()
		panic("bufferfusion: unpin of unpinned frame")
	}
	f.pins--
	c.mu.Unlock()
}

// Push flushes f to the DBP (forcing redo first through the engine hook) and
// invalidates peer copies. Caller holds f.Mu and the page's X PLock.
func (c *Client) Push(f *Frame) error {
	if !f.Dirty {
		return nil
	}
	if c.forceLog != nil {
		c.forceLog(f.FlushLSN)
	}
	frame, err := c.pushImage(f.Pg, f.idx, false)
	if err != nil {
		return err
	}
	f.dbpFrame = frame
	f.Dirty = false
	c.PushesOut.Inc()
	return nil
}

// PushByID flushes the named page if it is cached and dirty (the PLock
// revoke path: flush before the lock leaves the node).
func (c *Client) PushByID(pg common.PageID) error {
	c.mu.Lock()
	f := c.frames[pg]
	if f != nil {
		f.pins++
	}
	c.mu.Unlock()
	if f == nil {
		return nil
	}
	defer c.Unpin(f)
	f.Mu.Lock()
	defer f.Mu.Unlock()
	return c.Push(f)
}

// PushMany flushes every named page that is cached and dirty through ONE
// doorbell-batched fabric exchange: a single log force covering the newest
// record on any of the pages, one CallBatch of prepare-push RPCs, one
// vectored write carrying every image, and one CallBatch of push
// completions — 2 RPCs + 1 one-sided write for the whole set instead of
// 2 RPCs + 1 write per page. Callers must hold a covering X PLock on every
// page (the commit-time stamp path does). Frames are latched in sorted page
// order for the whole exchange; that cannot deadlock engine paths because
// leaf-to-leaf btree transitions release before re-acquiring and
// latch-coupled descents only ever pair an internal page with one child.
func (c *Client) PushMany(ids []common.PageID) error {
	if c.storageMode {
		// The log-ship baseline has no DBP frames to batch into.
		var firstErr error
		for _, pg := range ids {
			if err := c.PushByID(pg); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	c.mu.Lock()
	fs := make([]*Frame, 0, len(ids))
	seen := make(map[common.PageID]bool, len(ids))
	for _, pg := range ids {
		if seen[pg] {
			continue
		}
		seen[pg] = true
		if f := c.frames[pg]; f != nil {
			f.pins++
			fs = append(fs, f)
		}
	}
	c.mu.Unlock()
	sort.Slice(fs, func(i, j int) bool { return fs[i].id < fs[j].id })
	for _, f := range fs {
		f.Mu.Lock()
	}
	done := func() {
		for _, f := range fs {
			f.Mu.Unlock()
		}
		for _, f := range fs {
			c.Unpin(f)
		}
	}
	var dirty []*Frame
	var upTo common.LSN
	for _, f := range fs {
		if f.Dirty {
			dirty = append(dirty, f)
			if f.FlushLSN > upTo {
				upTo = f.FlushLSN
			}
		}
	}
	if len(dirty) == 0 {
		done()
		return nil
	}
	if c.closed.Load() {
		done()
		return fmt.Errorf("bufferfusion: node %d LBP: %w", c.node, common.ErrClosed)
	}
	if c.forceLog != nil {
		c.forceLog(upTo)
	}
	// Phase 1: one batched prepare-push pins every target frame.
	reqs := make([][]byte, len(dirty))
	for i, f := range dirty {
		reqs[i] = c.stamp.Stamp(bufReq(opPreparePush, c.node, f.id, 0, f.idx))
	}
	var resps [][]byte
	err := common.Retry(c.retry, func() (e error) {
		resps, e = c.fabric.CallBatch(common.PMFSNode, ServiceBuf, reqs)
		return e
	})
	if err != nil {
		// One page's failure (e.g. all frames pinned) fails a whole batch;
		// give each page an independent chance on the per-page path.
		var firstErr error
		for _, f := range dirty {
			if e := c.Push(f); e != nil && firstErr == nil {
				firstErr = e
			}
		}
		done()
		return firstErr
	}
	frameNos := make([]int, len(dirty))
	for i, f := range dirty {
		if len(resps[i]) < 5 || resps[i][0] != 1 {
			done()
			return fmt.Errorf("bufferfusion: prepare-push of page %d failed", f.id)
		}
		frameNos[i] = int(binary.LittleEndian.Uint32(resps[i][1:]))
	}
	// Phase 2: one vectored write lands every image in its pinned frame.
	// Images are built in pooled buffers; the doorbell copies synchronously,
	// so they all return to the pool right after the verb.
	segs := make([]rdma.Seg, len(dirty))
	bufs := make([]*[]byte, 0, len(dirty))
	werr := error(nil)
	for i, f := range dirty {
		bp := frameBufPool.Get().(*[]byte)
		bufs = append(bufs, bp)
		buf, merr := f.Pg.AppendTo(append((*bp)[:0], 0, 0, 0, 0))
		if merr != nil {
			werr = merr
			break
		}
		binary.LittleEndian.PutUint32(buf, uint32(len(buf)-4))
		segs[i] = rdma.Seg{Off: frameNos[i] * page.FrameSize, Buf: buf}
	}
	if werr == nil {
		werr = common.Retry(c.retry, func() error {
			return c.fabric.WriteV(common.PMFSNode, RegionDBP, segs)
		})
	}
	for _, bp := range bufs {
		frameBufPool.Put(bp)
	}
	// Phase 3: one batched completion — sent even after a failed write so
	// the server-side pins taken in phase 1 never leak. A failed write
	// leaves Dirty set; the revoke-time flush redoes the page later (the
	// stale frame content is unreachable: we still hold the X PLock, and
	// imageLen guards eviction against a never-written frame).
	preqs := make([][]byte, len(dirty))
	for i, f := range dirty {
		// aux=0: batched pushes carry modified images, never clean ones.
		preqs[i] = c.stamp.Stamp(bufReq(opPushed, c.node, f.id, uint32(frameNos[i]), 0))
	}
	perr := common.Retry(c.retry, func() error {
		_, e := c.fabric.CallBatch(common.PMFSNode, ServiceBuf, preqs)
		return e
	})
	if werr == nil && perr == nil {
		for i, f := range dirty {
			f.dbpFrame = frameNos[i]
			f.Dirty = false
			c.PushesOut.Inc()
		}
	}
	done()
	if werr != nil {
		return werr
	}
	return perr
}

// evictOneLocked evicts the coldest unpinned frame, pushing it first if
// dirty (a page may leave the LBP only once it is in the DBP, §4.2).
// Called with c.mu held; c.mu is held on return but released internally.
func (c *Client) evictOneLocked() error {
	for attempt := 0; attempt < 8; attempt++ {
		// Pick a victim under the lock: coldest unpinned, fully loaded
		// frame.
		var victim *Frame
		for el := c.lru.Front(); el != nil; el = el.Next() {
			f := el.Value.(*Frame)
			if f.pins == 0 {
				victim = f
				break
			}
		}
		if victim == nil {
			return fmt.Errorf("bufferfusion: node %d LBP full with all %d frames pinned",
				c.node, c.capacity)
		}
		victim.pins++ // guard against concurrent eviction while we flush
		c.mu.Unlock()
		victim.Mu.Lock()
		err := c.Push(victim)
		victim.Mu.Unlock()
		c.mu.Lock()
		victim.pins--
		if err != nil {
			return err
		}
		if victim.pins > 0 || c.frames[victim.id] != victim {
			continue // re-pinned or already gone; pick another victim
		}
		delete(c.frames, victim.id)
		c.lru.Remove(victim.lruEl)
		pg, idx := victim.id, victim.idx
		c.mu.Unlock()
		// A lost unregister would leave PMFS invalidating a recycled flag
		// slot forever; retried, and idempotent on re-delivery.
		_ = c.callBuf(bufReq(opUnregister, c.node, pg, 0, idx))
		c.mu.Lock()
		return nil
	}
	return fmt.Errorf("bufferfusion: node %d eviction livelock", c.node)
}

// FlushAll pushes every dirty frame (checkpoint / clean shutdown).
func (c *Client) FlushAll() error {
	c.mu.Lock()
	var fs []*Frame
	for _, f := range c.frames {
		f.pins++
		fs = append(fs, f)
	}
	c.mu.Unlock()
	var firstErr error
	for _, f := range fs {
		f.Mu.Lock()
		if err := c.Push(f); err != nil && firstErr == nil {
			firstErr = err
		}
		f.Mu.Unlock()
		c.Unpin(f)
	}
	return firstErr
}

// Close fences the client after a node crash.
func (c *Client) Close() { c.closed.Store(true) }

// Len returns the number of cached frames.
func (c *Client) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.frames)
}

// Contains reports whether pg is cached (tests).
func (c *Client) Contains(pg common.PageID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.frames[pg] != nil
}
