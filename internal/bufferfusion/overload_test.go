package bufferfusion

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"polardbmp/internal/common"
	"polardbmp/internal/page"
)

// delayDBPReads installs a fabric injector stalling every one-sided DBP
// frame read by d (lookup RPCs and invalidation writes stay fast).
func delayDBPReads(c *bfCluster, d time.Duration) {
	c.fabric.SetInjector(func(op common.FaultOp) common.FaultDecision {
		if op.Class == common.FaultRead && op.Name == RegionDBP {
			return common.FaultDecision{Delay: d}
		}
		return common.FaultDecision{}
	})
}

// TestHedgedFetchStorageFallback simulates a fail-slow DBP path: the
// primary one-sided read stalls far past the hedge delay, the frame is
// clean (pushed from a storage read), so the hedge reads storage and wins.
func TestHedgedFetchStorageFallback(t *testing.T) {
	c := newBFCluster(t, 2, 16, 16)
	storePage(t, c.store, makePage(1, "v0"))

	// Node 1 loads from storage, registering the page in the DBP with a
	// clean push.
	f, err := c.lbp[0].Get(1)
	if err != nil {
		t.Fatal(err)
	}
	c.lbp[0].Unpin(f)

	delayDBPReads(c, 50*time.Millisecond)
	c.lbp[1].SetHedgeDelayFloor(2 * time.Millisecond)
	start := time.Now()
	f2, kind, err := c.lbp[1].GetEx(1)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 40*time.Millisecond {
		t.Fatalf("hedged fetch took %v, want well under the 50ms stall", elapsed)
	}
	if kind != FetchDBP {
		t.Fatalf("kind = %v, want FetchDBP", kind)
	}
	if got := string(f2.Pg.Find([]byte("k")).Head().Value); got != "v0" {
		t.Fatalf("hedged fetch content = %q, want v0", got)
	}
	c.lbp[1].Unpin(f2)
	if c.lbp[1].HedgesFired.Load() != 1 || c.lbp[1].HedgeWins.Load() != 1 {
		t.Fatalf("hedges fired/won = %d/%d, want 1/1",
			c.lbp[1].HedgesFired.Load(), c.lbp[1].HedgeWins.Load())
	}
}

// TestHedgeDirtyFrameNeverReadsStaleStorage pins the staleness guard: when
// the DBP frame is newer than the storage image, the hedge must re-read the
// DBP (slow as it is), never serve the stale storage copy.
func TestHedgeDirtyFrameNeverReadsStaleStorage(t *testing.T) {
	c := newBFCluster(t, 2, 16, 16)
	storePage(t, c.store, makePage(1, "old"))

	f, err := c.lbp[0].Get(1)
	if err != nil {
		t.Fatal(err)
	}
	f.Mu.Lock()
	f.Pg.InsertVersion([]byte("k"), page.Version{Value: []byte("new")})
	f.Dirty = true
	err = c.lbp[0].Push(f)
	f.Mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	c.lbp[0].Unpin(f)
	// Storage still holds "old"; the DBP frame holds "new" and is dirty.

	delayDBPReads(c, 10*time.Millisecond)
	c.lbp[1].SetHedgeDelayFloor(time.Millisecond)
	f2, err := c.lbp[1].Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(f2.Pg.Find([]byte("k")).Head().Value); got != "new" {
		t.Fatalf("fetch content = %q, want new (stale storage image served)", got)
	}
	c.lbp[1].Unpin(f2)
	if c.lbp[1].HedgesFired.Load() == 0 {
		t.Fatal("hedge never fired despite the stall")
	}
}

// TestLookupSheddingRecovers drives a stripe over its admission bound and
// verifies the shed surfaces as retryable ErrOverloaded, then that the
// client's transient-retry backoff absorbs a shed that drains mid-flight.
func TestLookupSheddingRecovers(t *testing.T) {
	c := newBFCluster(t, 1, 16, 16)
	storePage(t, c.store, makePage(1, "v0"))
	c.srv.SetAdmissionLimit(1)
	c.lbp[0].SetRetryPolicy(common.RetryPolicy{MaxAttempts: 3, BaseDelay: 100 * time.Microsecond, MaxDelay: time.Millisecond})

	// Saturate the stripe: every lookup now overflows the bound.
	st := c.srv.stripeFor(1)
	st.inflight.Add(1)
	_, err := c.lbp[0].Get(1)
	if !errors.Is(err, common.ErrOverloaded) {
		t.Fatalf("saturated lookup err = %v, want ErrOverloaded", err)
	}
	if c.srv.Sheds.Load() == 0 {
		t.Fatal("shed not counted")
	}

	// Drain the stripe while the client is backing off: the retry must
	// absorb the shed and the fetch succeed.
	var cleared atomic.Bool
	go func() {
		time.Sleep(200 * time.Microsecond)
		st.inflight.Add(-1)
		cleared.Store(true)
	}()
	c.lbp[0].SetRetryPolicy(common.RetryPolicy{MaxAttempts: 50, BaseDelay: 200 * time.Microsecond, MaxDelay: time.Millisecond})
	f, err := c.lbp[0].Get(1)
	if err != nil {
		t.Fatalf("fetch after drain: %v", err)
	}
	if !cleared.Load() {
		t.Fatal("fetch succeeded before the stripe drained")
	}
	c.lbp[0].Unpin(f)
}

// TestGetDeadline verifies the budget bounds the fetch path: an expired
// deadline refuses before any I/O, and a deadline that expires during
// transient-fault retries surfaces ErrDeadlineExceeded without falling
// through to an unbounded storage read.
func TestGetDeadline(t *testing.T) {
	c := newBFCluster(t, 2, 16, 16)
	storePage(t, c.store, makePage(1, "v0"))

	// Expired before starting: no storage I/O at all.
	_, err := c.lbp[0].GetDeadline(1, common.DeadlineAt(time.Now().Add(-time.Millisecond)))
	if !errors.Is(err, common.ErrDeadlineExceeded) {
		t.Fatalf("expired GetDeadline err = %v, want ErrDeadlineExceeded", err)
	}
	if c.lbp[0].StorageReads.Load() != 0 {
		t.Fatal("expired fetch still read storage")
	}

	// Register the page, then make DBP reads fail persistently: node 2's
	// deadline-bounded fetch must stop retrying at the budget instead of
	// silently escalating to storage.
	f, err := c.lbp[0].Get(1)
	if err != nil {
		t.Fatal(err)
	}
	c.lbp[0].Unpin(f)
	c.fabric.SetInjector(func(op common.FaultOp) common.FaultDecision {
		if op.Class == common.FaultRead && op.Name == RegionDBP {
			return common.FaultDecision{Err: common.ErrInjected}
		}
		return common.FaultDecision{}
	})
	c.lbp[1].SetHedgeDelayFloor(0) // isolate the deadline path
	c.lbp[1].SetRetryPolicy(common.RetryPolicy{MaxAttempts: 1000, BaseDelay: 5 * time.Millisecond, MaxDelay: 5 * time.Millisecond})
	start := time.Now()
	_, err = c.lbp[1].GetDeadline(1, common.DeadlineAfter(30*time.Millisecond))
	if !errors.Is(err, common.ErrDeadlineExceeded) {
		t.Fatalf("budgeted fetch err = %v, want ErrDeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("budgeted fetch took %v, want ~30ms", elapsed)
	}
	if c.lbp[1].StorageReads.Load() != 0 {
		t.Fatal("deadline-expired DBP fetch escalated to storage")
	}
}
