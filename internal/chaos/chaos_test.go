package chaos

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"polardbmp/internal/common"
	"polardbmp/internal/rdma"
	"polardbmp/internal/storage"
)

// syntheticOps builds a deterministic mixed op stream: three nodes issuing
// reads, writes, atomics and RPCs against PMFS and each other.
func syntheticOps(n int) []common.FaultOp {
	classes := []string{common.FaultRead, common.FaultWrite, common.FaultAtomic, common.FaultRPC}
	names := []string{"tit", "dbp", "tso", "lockfusion.plock"}
	ops := make([]common.FaultOp, n)
	for i := range ops {
		ops[i] = common.FaultOp{
			Layer: common.FaultLayerRDMA,
			Class: classes[i%len(classes)],
			Src:   common.NodeID(i%3 + 1),
			Dst:   common.PMFSNode,
			Name:  names[i%len(names)],
			Len:   64,
		}
	}
	return ops
}

// TestSeedDeterminism is the acceptance test of the subsystem: the same
// seed and plan over the same op sequence produce an identical event log,
// and a different seed produces a different one.
func TestSeedDeterminism(t *testing.T) {
	ops := syntheticOps(4000)
	run := func(seed int64) ([]Event, uint64) {
		e := MustNew(seed, SmokePlan())
		inj := e.Injector()
		for _, op := range ops {
			inj(op)
		}
		return e.Events(), e.Fingerprint()
	}
	ev1, fp1 := run(42)
	ev2, fp2 := run(42)
	if len(ev1) == 0 {
		t.Fatal("smoke plan injected nothing over 4000 ops")
	}
	if !reflect.DeepEqual(ev1, ev2) {
		t.Fatalf("same seed, different event logs: %d vs %d events", len(ev1), len(ev2))
	}
	if fp1 != fp2 {
		t.Fatalf("same seed, different fingerprints: %x vs %x", fp1, fp2)
	}
	if _, fp3 := run(43); fp3 == fp1 {
		t.Fatal("different seed produced an identical fault log")
	}
}

// TestConcurrentDeterminism verifies the replay property that motivates
// per-descriptor occurrence hashing: when the same per-node op streams are
// interleaved differently by the scheduler, the canonical event log and
// fingerprint still match a serial run exactly.
func TestConcurrentDeterminism(t *testing.T) {
	const perNode = 1500
	streams := make([][]common.FaultOp, 3)
	for nid := range streams {
		for i := 0; i < perNode; i++ {
			streams[nid] = append(streams[nid], common.FaultOp{
				Layer: common.FaultLayerRDMA,
				Class: []string{common.FaultRead, common.FaultWrite, common.FaultRPC}[i%3],
				Src:   common.NodeID(nid + 1),
				Dst:   common.PMFSNode,
				Name:  "tit",
			})
		}
	}
	// Rules with op-index windows would break this property by design, so
	// use a windowless plan.
	plan := SmokePlan()

	serial := MustNew(7, plan)
	injS := serial.Injector()
	for _, st := range streams {
		for _, op := range st {
			injS(op)
		}
	}

	conc := MustNew(7, plan)
	injC := conc.Injector()
	var wg sync.WaitGroup
	for _, st := range streams {
		st := st
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, op := range st {
				injC(op)
			}
		}()
	}
	wg.Wait()

	if serial.Fingerprint() != conc.Fingerprint() {
		t.Fatalf("interleaving changed the fault log: serial %d events fp=%x, concurrent %d events fp=%x",
			len(serial.Events()), serial.Fingerprint(), len(conc.Events()), conc.Fingerprint())
	}
	cs, cc := serial.CanonicalEvents(), conc.CanonicalEvents()
	if len(cs) != len(cc) {
		t.Fatalf("canonical log lengths differ: %d vs %d", len(cs), len(cc))
	}
	for i := range cs {
		// OpIndex is interleaving-dependent; everything else must match.
		cs[i].OpIndex, cc[i].OpIndex = 0, 0
		if !reflect.DeepEqual(cs[i], cc[i]) {
			t.Fatalf("canonical event %d differs: %+v vs %+v", i, cs[i], cc[i])
		}
	}
}

// TestRuleWindowAndMax checks FromOp/ToOp windows and the Max cap.
func TestRuleWindowAndMax(t *testing.T) {
	plan := Plan{
		Name: "windowed",
		Rules: []Rule{
			{Name: "mid", Prob: 1, FromOp: 10, ToOp: 20, Action: Action{Kind: ActDrop}},
			{Name: "capped", Prob: 1, FromOp: 30, Max: 5, Action: Action{Kind: ActDrop}},
		},
	}
	e := MustNew(1, plan)
	inj := e.Injector()
	op := common.FaultOp{Layer: common.FaultLayerRDMA, Class: common.FaultRead, Src: 1, Dst: 2, Name: "x"}
	for i := 0; i < 100; i++ {
		inj(op)
	}
	var mid, capped int
	for _, ev := range e.Events() {
		switch ev.Rule {
		case "mid":
			mid++
			if ev.OpIndex < 10 || ev.OpIndex > 20 {
				t.Fatalf("rule %q fired outside its window at op %d", ev.Rule, ev.OpIndex)
			}
		case "capped":
			capped++
		}
	}
	if mid != 11 {
		t.Fatalf("windowed rule fired %d times, want 11", mid)
	}
	if capped != 5 {
		t.Fatalf("capped rule fired %d times, want 5", capped)
	}
}

// TestRuleSelectors checks layer/class/node/target filtering.
func TestRuleSelectors(t *testing.T) {
	plan := Plan{
		Name: "selective",
		Rules: []Rule{
			{Name: "only-n2-plock", Layer: common.FaultLayerRDMA,
				Classes: []string{common.FaultRPC}, Src: []common.NodeID{2},
				Target: "lockfusion.plock", Prob: 1, Action: Action{Kind: ActDrop}},
		},
	}
	e := MustNew(1, plan)
	inj := e.Injector()
	match := common.FaultOp{Layer: common.FaultLayerRDMA, Class: common.FaultRPC,
		Src: 2, Dst: common.PMFSNode, Name: "lockfusion.plock"}
	if d := inj(match); !errors.Is(d.Err, common.ErrInjected) {
		t.Fatalf("matching op not dropped: %+v", d)
	}
	for _, miss := range []common.FaultOp{
		{Layer: common.FaultLayerStorage, Class: common.FaultRPC, Src: 2, Name: "lockfusion.plock"},
		{Layer: common.FaultLayerRDMA, Class: common.FaultRead, Src: 2, Name: "lockfusion.plock"},
		{Layer: common.FaultLayerRDMA, Class: common.FaultRPC, Src: 1, Name: "lockfusion.plock"},
		{Layer: common.FaultLayerRDMA, Class: common.FaultRPC, Src: 2, Name: "bufferfusion"},
	} {
		if d := inj(miss); d.Err != nil || d.Duplicate || d.DropReply {
			t.Fatalf("non-matching op faulted: %+v -> %+v", miss, d)
		}
	}
}

// TestPartition checks the reachability matrix: cross-group ops fail with
// ErrUnreachable inside the window, heal after it, and unlisted nodes
// (PMFS, storage) stay reachable throughout.
func TestPartition(t *testing.T) {
	plan := PartitionPlan([]common.NodeID{1}, []common.NodeID{2, 3}, 1, 50)
	e := MustNew(1, plan)
	inj := e.Injector()

	cross := common.FaultOp{Layer: common.FaultLayerRDMA, Class: common.FaultRPC, Src: 1, Dst: 2, Name: "x"}
	same := common.FaultOp{Layer: common.FaultLayerRDMA, Class: common.FaultRPC, Src: 2, Dst: 3, Name: "x"}
	toPMFS := common.FaultOp{Layer: common.FaultLayerRDMA, Class: common.FaultRead, Src: 1, Dst: common.PMFSNode, Name: "tso"}

	if d := inj(cross); !errors.Is(d.Err, common.ErrUnreachable) {
		t.Fatalf("cross-partition op not blocked: %+v", d)
	}
	if d := inj(same); d.Err != nil {
		t.Fatalf("same-group op blocked: %v", d.Err)
	}
	if d := inj(toPMFS); d.Err != nil {
		t.Fatalf("PMFS op blocked by a partition that does not list it: %v", d.Err)
	}
	// Burn past the window, then the cut heals.
	for e.OpCount() < 50 {
		inj(same)
	}
	if d := inj(cross); d.Err != nil {
		t.Fatalf("partition did not heal after ToOp: %v", d.Err)
	}
	// The block shows up in the event log as a partition event.
	var parts int
	for _, ev := range e.Events() {
		if ev.Rule == "partition" && ev.Action == "unreachable" {
			parts++
		}
	}
	if parts != 1 {
		t.Fatalf("partition events = %d, want 1", parts)
	}
}

// TestPlanValidation rejects malformed plans.
func TestPlanValidation(t *testing.T) {
	bad := []Plan{
		{Name: "p", Rules: []Rule{{Prob: 0.5, Action: Action{Kind: ActDrop}}}},            // no name
		{Name: "p", Rules: []Rule{{Name: "r", Prob: 1.5, Action: Action{Kind: ActDrop}}}}, // prob > 1
		{Name: "p", Rules: []Rule{{Name: "r", Prob: 0.5}}},                                // no action
		{Name: "p", Rules: []Rule{{Name: "r", Prob: 0.5, Action: Action{Kind: ActDelay}}}}, // delay without duration
		{Name: "p", Partitions: []Partition{{Groups: [][]common.NodeID{{1}}}}},             // one group
	}
	for i, p := range bad {
		if _, err := New(1, p); err == nil {
			t.Errorf("bad plan %d accepted", i)
		}
	}
	for _, name := range []string{"smoke", "drop", "lossy", "slownode", "stalledstorage", "none"} {
		p, err := PresetPlan(name)
		if err != nil {
			t.Fatalf("preset %q: %v", name, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("preset %q invalid: %v", name, err)
		}
	}
	if _, err := PresetPlan("bogus"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

// TestInstallOnFabricAndStore wires an engine to a real fabric and store
// and checks both layers consult it and log attributed events.
func TestInstallOnFabricAndStore(t *testing.T) {
	f := rdma.NewFabric(rdma.Latency{})
	ep := f.Register(1)
	ep.RegisterRegion("mem", 64)
	st := storage.New(storage.Latency{})
	id := st.AllocPage()
	if err := st.WritePage(id, []byte("img")); err != nil {
		t.Fatal(err)
	}

	e := MustNew(3, Plan{Name: "all", Rules: []Rule{
		{Name: "drop-everything", Prob: 1, Action: Action{Kind: ActDrop}},
	}})
	e.Install(f, st)
	if err := f.From(1).Write64(1, "mem", 0, 1); !errors.Is(err, common.ErrInjected) {
		t.Fatalf("fabric op not injected: %v", err)
	}
	if _, err := st.ReadPage(id); !errors.Is(err, common.ErrInjected) {
		t.Fatalf("storage op not injected: %v", err)
	}
	layers := map[string]bool{}
	for _, ev := range e.Events() {
		layers[ev.Op.Layer] = true
	}
	if !layers[common.FaultLayerRDMA] || !layers[common.FaultLayerStorage] {
		t.Fatalf("event log missing a layer: %v", layers)
	}

	Uninstall(f, st)
	before := e.OpCount()
	if err := f.From(1).Write64(1, "mem", 0, 1); err != nil {
		t.Fatalf("post-uninstall fabric op: %v", err)
	}
	if _, err := st.ReadPage(id); err != nil {
		t.Fatalf("post-uninstall storage op: %v", err)
	}
	if e.OpCount() != before {
		t.Fatal("engine still consulted after Uninstall")
	}
}

// TestDelayAction measures that ActDelay actually stalls the op.
func TestDelayAction(t *testing.T) {
	e := MustNew(1, Plan{Name: "slow", Rules: []Rule{
		{Name: "stall", Prob: 1, Action: Action{Kind: ActDelay, Delay: 5 * time.Millisecond}},
	}})
	f := rdma.NewFabric(rdma.Latency{})
	ep := f.Register(1)
	ep.RegisterRegion("mem", 8)
	e.Install(f, nil)
	start := time.Now()
	if err := f.From(1).Write64(1, "mem", 0, 1); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("delayed op finished in %v", d)
	}
}

// TestTimelineRendering sanity-checks the human-readable outputs.
func TestTimelineRendering(t *testing.T) {
	e := MustNew(9, Plan{Name: "tl", Rules: []Rule{
		{Name: "r", Prob: 1, Max: 2, Action: Action{Kind: ActDrop}},
	}})
	inj := e.Injector()
	for i := 0; i < 5; i++ {
		inj(common.FaultOp{Layer: common.FaultLayerRDMA, Class: common.FaultRead, Src: 1, Dst: 2, Name: "m"})
	}
	tl := e.Timeline()
	want := fmt.Sprintf("chaos plan %q seed 9: 2 faults over 5 ops", "tl")
	if len(tl) == 0 || tl[:len(want)] != want {
		t.Fatalf("timeline header = %q", tl)
	}
}
