// Package chaos is a seeded, deterministic fault-injection subsystem for
// the simulated RDMA fabric (internal/rdma) and disaggregated shared store
// (internal/storage). A chaos.Plan names fault rules — drop, delay,
// duplicate delivery, lost responses — with probability, op-window and
// node selectors, plus node↔node partition schedules; an Engine compiled
// from a plan and a single int64 seed makes every per-op decision by
// hashing (seed, rule, op descriptor, occurrence index), so a run is
// replayable: the same seed and plan over the same op sequence produce the
// same injected faults and an identical structured event log.
//
// DESIGN.md §6 promised "failure injection at random points under load";
// this package is that substrate, and the hardened retry paths in
// lockfusion/bufferfusion/txfusion/core are its consumers.
package chaos

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"polardbmp/internal/common"
	"polardbmp/internal/rdma"
	"polardbmp/internal/storage"
)

// Event is one injected fault, recorded in the engine's structured log.
type Event struct {
	// OpIndex is the global 1-based index of the faulted operation.
	OpIndex uint64
	// Rule names the firing rule, or "partition" for reachability cuts.
	Rule string
	// Action is the injected fault kind ("drop", "delay", ...,
	// "unreachable").
	Action string
	// Occ is the occurrence index of this op descriptor under this rule
	// (the deterministic replay coordinate).
	Occ uint64
	// Op is the faulted operation.
	Op common.FaultOp
}

func (e Event) String() string {
	return fmt.Sprintf("#%-6d %-12s %-10s %s/%s %v->%v %q",
		e.OpIndex, e.Rule, e.Action, e.Op.Layer, e.Op.Class, e.Op.Src, e.Op.Dst, e.Op.Name)
}

// Engine makes fault decisions for one run. Install it on a fabric and/or
// store, run the workload, then read Events for the fault timeline.
type Engine struct {
	seed  int64
	plan  Plan
	salts []uint64 // per-rule hash salt, derived from rule name

	ops atomic.Uint64 // global op counter (1-based indices)

	mu     sync.Mutex
	occ    map[occKey]uint64 // per-(rule, descriptor) occurrence counts
	fired  []uint64          // per-rule injection counts (Max enforcement)
	events []Event

	// crashFn executes ActCrashNode decisions; crashed dedupes per node so
	// a node is killed at most once however many rules name it.
	crashFn func(common.NodeID)
	crashed map[common.NodeID]bool
}

type occKey struct {
	rule int
	desc uint64
}

// New compiles a plan into an engine. The plan must Validate.
func New(seed int64, plan Plan) (*Engine, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		seed:  seed,
		plan:  plan,
		salts: make([]uint64, len(plan.Rules)),
		occ:   make(map[occKey]uint64),
		fired: make([]uint64, len(plan.Rules)),
	}
	for i, r := range plan.Rules {
		e.salts[i] = fnvHash(r.Name)
	}
	return e, nil
}

// MustNew is New for static plans (presets); it panics on invalid plans.
func MustNew(seed int64, plan Plan) *Engine {
	e, err := New(seed, plan)
	if err != nil {
		panic(err)
	}
	return e
}

// SetCrashHandler installs the function ActCrashNode decisions call (e.g.
// core.Cluster.KillNode). Without a handler, crashnode rules are recorded in
// the event log but have no effect. The handler runs on its own goroutine:
// killing a node from inside a fabric-op callback would deadlock on the very
// endpoint executing the op.
func (e *Engine) SetCrashHandler(fn func(common.NodeID)) {
	e.mu.Lock()
	e.crashFn = fn
	if e.crashed == nil {
		e.crashed = make(map[common.NodeID]bool)
	}
	e.mu.Unlock()
}

// Injector returns the decision function to install via SetInjector.
func (e *Engine) Injector() common.FaultInjector { return e.decide }

// Install attaches the engine to a fabric and/or store (either may be nil).
func (e *Engine) Install(f *rdma.Fabric, s storage.API) {
	if f != nil {
		f.SetInjector(e.decide)
	}
	if s != nil {
		s.SetInjector(e.decide)
	}
}

// Uninstall detaches injection so the run can be verified fault-free.
func Uninstall(f *rdma.Fabric, s storage.API) {
	if f != nil {
		f.SetInjector(nil)
	}
	if s != nil {
		s.SetInjector(nil)
	}
}

// decide is the common.FaultInjector: one deterministic verdict per op.
func (e *Engine) decide(op common.FaultOp) common.FaultDecision {
	idx := e.ops.Add(1)

	// Partitions first: an unreachable destination beats every rule.
	for _, p := range e.plan.Partitions {
		if p.blocks(op.Src, op.Dst, idx) {
			e.record(Event{OpIndex: idx, Rule: "partition", Action: "unreachable", Op: op})
			return common.FaultDecision{Err: common.ErrUnreachable}
		}
	}

	desc := descriptorHash(op)
	for ri := range e.plan.Rules {
		r := &e.plan.Rules[ri]
		if !r.matches(op, idx) {
			continue
		}
		// Occurrence index: how many times this rule has seen this op
		// descriptor. Decisions hash (seed, rule, descriptor, occurrence),
		// so they do not depend on the interleaving of unrelated ops.
		e.mu.Lock()
		k := occKey{ri, desc}
		occ := e.occ[k]
		e.occ[k] = occ + 1
		maxedOut := r.Max > 0 && e.fired[ri] >= r.Max
		e.mu.Unlock()
		if maxedOut || !fires(e.seed, e.salts[ri], desc, occ, r.Prob) {
			continue
		}
		e.mu.Lock()
		e.fired[ri]++
		e.mu.Unlock()
		e.record(Event{OpIndex: idx, Rule: r.Name, Action: r.Action.Kind.String(), Occ: occ, Op: op})
		d := common.FaultDecision{Delay: r.Action.Delay}
		switch r.Action.Kind {
		case ActDrop:
			d.Err = common.ErrInjected
		case ActDuplicate:
			d.Duplicate = true
		case ActDropReply:
			d.DropReply = true
		case ActCrashNode:
			e.crashNode(r.Action.Node)
			// The matched op itself proceeds untouched: the crash is a
			// side effect, not a verdict on this op.
			return common.FaultDecision{}
		}
		// First matching-and-firing rule wins: stacking several faults on
		// one op would make the event log ambiguous to replay.
		return d
	}
	return common.FaultDecision{}
}

func (e *Engine) record(ev Event) {
	e.mu.Lock()
	e.events = append(e.events, ev)
	e.mu.Unlock()
}

// crashNode runs the crash handler for node exactly once, asynchronously.
func (e *Engine) crashNode(node common.NodeID) {
	e.mu.Lock()
	fn := e.crashFn
	if fn == nil || e.crashed[node] {
		e.mu.Unlock()
		return
	}
	e.crashed[node] = true
	e.mu.Unlock()
	go fn(node)
}

// OpCount returns the number of operations inspected so far.
func (e *Engine) OpCount() uint64 { return e.ops.Load() }

// Events returns a copy of the fault log in injection order.
func (e *Engine) Events() []Event {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Event, len(e.events))
	copy(out, e.events)
	return out
}

// CanonicalEvents returns the fault log sorted by (rule, descriptor,
// occurrence): a concurrency-stable ordering. Two runs of the same seed,
// plan and workload op multiset produce identical canonical logs even when
// goroutine interleaving reorders the raw log.
func (e *Engine) CanonicalEvents() []Event {
	evs := e.Events()
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if da, db := descriptorHash(a.Op), descriptorHash(b.Op); da != db {
			return da < db
		}
		return a.Occ < b.Occ
	})
	return evs
}

// Fingerprint folds the canonical event log into one comparable value.
func (e *Engine) Fingerprint() uint64 {
	var fp uint64
	for _, ev := range e.Events() {
		h := fnv.New64a()
		fmt.Fprintf(h, "%s|%s|%d|%s|%s|%d|%d|%s",
			ev.Rule, ev.Action, ev.Occ, ev.Op.Layer, ev.Op.Class,
			ev.Op.Src, ev.Op.Dst, ev.Op.Name)
		fp += h.Sum64() // order-insensitive fold
	}
	return fp
}

// Timeline renders the raw fault log, one event per line.
func (e *Engine) Timeline() string {
	evs := e.Events()
	var b strings.Builder
	fmt.Fprintf(&b, "chaos plan %q seed %d: %d faults over %d ops\n",
		e.plan.Name, e.seed, len(evs), e.OpCount())
	for _, ev := range evs {
		b.WriteString("  ")
		b.WriteString(ev.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// --- deterministic decision hashing ----------------------------------------

func fnvHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// descriptorHash identifies an op stream: everything about the op except
// its position in time. Occurrence counters are kept per descriptor so the
// i-th identical op always gets the same verdict regardless of what other
// streams do around it.
func descriptorHash(op common.FaultOp) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d|%d|%s", op.Layer, op.Class, op.Src, op.Dst, op.Name)
	return h.Sum64()
}

// splitmix64 is the finalizer used to turn (seed, rule, descriptor,
// occurrence) into a uniform 64-bit value.
func splitmix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// fires decides rule activation: a pure function of the replay coordinate.
func fires(seed int64, ruleSalt, desc, occ uint64, prob float64) bool {
	if prob <= 0 {
		return false
	}
	if prob >= 1 {
		return true
	}
	v := splitmix64(uint64(seed) ^ splitmix64(ruleSalt^splitmix64(desc^occ)))
	u := float64(v>>11) / float64(1<<53)
	return u < prob
}
