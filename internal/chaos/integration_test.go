package chaos_test

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"polardbmp/internal/chaos"
	"polardbmp/internal/common"
	"polardbmp/internal/core"
)

// workloadResult is what one run of the multi-node read-write workload
// produced: the rows each node committed, the rows it rolled back, and any
// errors that were neither app-retryable (deadlock/conflict/timeout) nor
// handled by the transport retries — i.e. faults that leaked to the app.
type workloadResult struct {
	committed  map[string]string
	rolledBack []string
	leaked     []error
}

// runWorkload drives txPerNode transactions on each node concurrently:
// 2/3 committed upserts, 1/3 inserts that are rolled back. Nodes write
// disjoint key ranges (shared B-tree pages still force Buffer/Lock Fusion
// traffic) and read back a peer's keys each round to generate cross-node
// one-sided reads.
func runWorkload(t *testing.T, c *core.Cluster, sp common.SpaceID, nodes, txPerNode int) workloadResult {
	t.Helper()
	var mu sync.Mutex
	res := workloadResult{committed: make(map[string]string)}
	leak := func(err error) {
		mu.Lock()
		res.leaked = append(res.leaked, err)
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for ni := 1; ni <= nodes; ni++ {
		ni := ni
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := c.Node(ni)
			for i := 0; i < txPerNode; i++ {
				key := fmt.Sprintf("n%d-k%04d", ni, i)
				val := fmt.Sprintf("v%d-%d", ni, i)
				tx, err := n.Begin()
				if err != nil {
					leak(err)
					continue
				}
				if i%3 == 2 {
					// Uncommitted leg: insert then roll back.
					rbKey := "rb-" + key
					if err := tx.Insert(sp, []byte(rbKey), []byte("junk")); err != nil {
						if !common.IsRetryable(err) {
							leak(err)
						}
						_ = tx.Rollback()
						continue
					}
					if err := tx.Rollback(); err != nil {
						leak(err)
						continue
					}
					mu.Lock()
					res.rolledBack = append(res.rolledBack, rbKey)
					mu.Unlock()
					continue
				}
				if err := tx.Upsert(sp, []byte(key), []byte(val)); err != nil {
					if !common.IsRetryable(err) {
						leak(err)
					}
					_ = tx.Rollback()
					continue
				}
				if err := tx.Commit(); err != nil {
					if !common.IsRetryable(err) {
						leak(err)
					}
					continue
				}
				mu.Lock()
				res.committed[key] = val
				mu.Unlock()

				// Cross-node read of a peer's latest row.
				peer := c.Node(ni%nodes + 1)
				rtx, err := peer.Begin()
				if err != nil {
					leak(err)
					continue
				}
				pk := fmt.Sprintf("n%d-k%04d", ni, i)
				if _, err := rtx.Get(sp, []byte(pk)); err != nil &&
					!errors.Is(err, common.ErrNotFound) && !common.IsRetryable(err) {
					leak(err)
				}
				_ = rtx.Commit()
			}
		}()
	}
	wg.Wait()
	return res
}

// checkInvariants verifies, from every node, that committed rows are
// visible with their final values and rolled-back rows are absent.
func checkInvariants(t *testing.T, c *core.Cluster, sp common.SpaceID, nodes int, res workloadResult) {
	t.Helper()
	for ni := 1; ni <= nodes; ni++ {
		n := c.Node(ni)
		tx, err := n.Begin()
		if err != nil {
			t.Fatalf("node %d: begin verify tx: %v", ni, err)
		}
		for key, want := range res.committed {
			got, err := tx.Get(sp, []byte(key))
			if err != nil {
				t.Fatalf("node %d: committed key %q lost: %v", ni, key, err)
			}
			if string(got) != want {
				t.Fatalf("node %d: key %q = %q, want %q", ni, key, got, want)
			}
		}
		for _, key := range res.rolledBack {
			if _, err := tx.Get(sp, []byte(key)); !errors.Is(err, common.ErrNotFound) {
				t.Fatalf("node %d: rolled-back key %q resurfaced (err=%v)", ni, key, err)
			}
		}
		_ = tx.Commit()
	}
}

func chaosCluster(t *testing.T, nodes int, cfg core.Config) (*core.Cluster, common.SpaceID) {
	t.Helper()
	cfg.LockWaitTimeout = 5 * time.Second
	c := core.NewCluster(cfg)
	t.Cleanup(c.Close)
	for i := 0; i < nodes; i++ {
		if _, err := c.AddNode(); err != nil {
			t.Fatal(err)
		}
	}
	sp, err := c.CreateSpace("t")
	if err != nil {
		t.Fatal(err)
	}
	return c, sp
}

// TestWorkloadUnderSmokePlan is the headline integration test: a 3-node
// read-write workload under dropped, delayed and duplicated fabric ops.
// With the default retry policy no fault may leak to the application, and
// the durability / rollback / convergence invariants must hold.
func TestWorkloadUnderSmokePlan(t *testing.T) {
	const nodes = 3
	txPerNode := 120
	if testing.Short() {
		txPerNode = 40
	}
	c, sp := chaosCluster(t, nodes, core.Config{})
	eng := chaos.MustNew(1234, chaos.SmokePlan())
	eng.Install(c.Fabric(), c.Store())

	res := runWorkload(t, c, sp, nodes, txPerNode)

	// Verify on a quiet fabric: the invariants are about what the faults
	// left behind, not about racing further injection.
	chaos.Uninstall(c.Fabric(), c.Store())
	if len(res.leaked) > 0 {
		t.Fatalf("%d faults leaked through the retry layer; first: %v", len(res.leaked), res.leaked[0])
	}
	if len(res.committed) == 0 || len(res.rolledBack) == 0 {
		t.Fatalf("degenerate workload: %d committed, %d rolled back", len(res.committed), len(res.rolledBack))
	}
	if eng.OpCount() == 0 || len(eng.Events()) == 0 {
		t.Fatalf("chaos engine saw %d ops, injected %d faults — plan not exercised",
			eng.OpCount(), len(eng.Events()))
	}
	checkInvariants(t, c, sp, nodes, res)
}

// TestRetriesDisabledLeaksFaults is the ablation that justifies the retry
// layer: the identical workload and fault plan, but with DisableRetry set,
// must surface transient faults to the application (the invariant "no
// non-retryable errors reach the app" fails). The plan drops only
// side-effect-free one-sided ops (reads and atomics): dropped RPCs could
// wedge the run on lock waits, and dropped writes break the
// flush-before-PLock-release protocol itself — without retries that is a
// process-killing coherence panic, not a leaked error (demonstrated by
// cmd/mpchaos, not asserted here).
func TestRetriesDisabledLeaksFaults(t *testing.T) {
	const nodes = 3
	txPerNode := 80
	if testing.Short() {
		txPerNode = 30
	}
	plan := chaos.Plan{
		Name: "onesided-drop",
		Rules: []chaos.Rule{
			{Name: "drop-onesided", Layer: common.FaultLayerRDMA,
				Classes: []string{common.FaultRead, common.FaultAtomic},
				Prob:    0.05, Action: chaos.Action{Kind: chaos.ActDrop}},
		},
	}

	run := func(disable bool) workloadResult {
		cfg := core.Config{DisableRetry: disable}
		c, sp := chaosCluster(t, nodes, cfg)
		eng := chaos.MustNew(99, plan)
		eng.Install(c.Fabric(), c.Store())
		res := runWorkload(t, c, sp, nodes, txPerNode)
		chaos.Uninstall(c.Fabric(), c.Store())
		if eng.OpCount() == 0 || len(eng.Events()) == 0 {
			t.Fatalf("plan not exercised (%d ops, %d events)", eng.OpCount(), len(eng.Events()))
		}
		return res
	}

	if res := run(false); len(res.leaked) > 0 {
		t.Fatalf("with retries enabled %d faults leaked; first: %v", len(res.leaked), res.leaked[0])
	}
	res := run(true)
	if len(res.leaked) == 0 {
		t.Fatal("with retries disabled no fault leaked — the retry layer is not what absorbs them")
	}
	for _, err := range res.leaked {
		if !common.IsTransient(err) {
			t.Fatalf("leaked error is not the injected transient class: %v", err)
		}
	}
}

// TestWorkloadUnderLossyPlan turns on response loss for the idempotent
// PLock service plus duplicates and jitter: the re-grant path must absorb
// retried acquires without corrupting lock state.
func TestWorkloadUnderLossyPlan(t *testing.T) {
	if testing.Short() {
		t.Skip("lossy plan run covered by the smoke plan in -short mode")
	}
	const nodes = 3
	c, sp := chaosCluster(t, nodes, core.Config{})
	eng := chaos.MustNew(7, chaos.LossyPlan(0.03))
	eng.Install(c.Fabric(), nil)

	res := runWorkload(t, c, sp, nodes, 100)
	chaos.Uninstall(c.Fabric(), nil)
	if len(res.leaked) > 0 {
		t.Fatalf("%d faults leaked; first: %v", len(res.leaked), res.leaked[0])
	}
	checkInvariants(t, c, sp, nodes, res)
}

// TestWorkloadUnderFailSlowPlans exercises the two fail-slow presets end to
// end (previously only reachable through cmd/mpchaos): a crawling node and a
// browning-out store. Nothing crashes, so nothing may leak to the app; the
// cluster must converge once the faults stop; and closing the cluster must
// release every goroutine the degraded run parked (hedge losers, retry
// sleepers, lease loops) — a fail-slow window must not strand workers.
func TestWorkloadUnderFailSlowPlans(t *testing.T) {
	const nodes = 3
	txPerNode := 60
	if testing.Short() {
		txPerNode = 25
	}
	cases := []struct {
		name  string
		plan  chaos.Plan
		store bool // install on the storage layer too
	}{
		{"slownode", chaos.SlowNodePlan(1, 300*time.Microsecond), false},
		{"stalledstorage", chaos.StalledStoragePlan(200*time.Microsecond, 0.02), true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			base := runtime.NumGoroutine()
			c, sp := chaosCluster(t, nodes, core.Config{})
			eng := chaos.MustNew(42, tc.plan)
			if tc.store {
				eng.Install(c.Fabric(), c.Store())
			} else {
				eng.Install(c.Fabric(), nil)
			}

			res := runWorkload(t, c, sp, nodes, txPerNode)

			chaos.Uninstall(c.Fabric(), c.Store())
			if len(res.leaked) > 0 {
				t.Fatalf("%d faults leaked; first: %v", len(res.leaked), res.leaked[0])
			}
			if len(res.committed) == 0 || len(res.rolledBack) == 0 {
				t.Fatalf("degenerate workload: %d committed, %d rolled back",
					len(res.committed), len(res.rolledBack))
			}
			if eng.OpCount() == 0 || len(eng.Events()) == 0 {
				t.Fatalf("plan not exercised (%d ops, %d events)", eng.OpCount(), len(eng.Events()))
			}
			checkInvariants(t, c, sp, nodes, res)

			// Close is idempotent, so the chaosCluster cleanup stays a no-op.
			c.Close()
			deadline := time.Now().Add(5 * time.Second)
			for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
				time.Sleep(5 * time.Millisecond)
			}
			if g := runtime.NumGoroutine(); g > base {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak after Close: %d live, %d at start\n%s", g, base, buf[:n])
			}
		})
	}
}
