package chaos

import (
	"fmt"
	"time"

	"polardbmp/internal/common"
)

// ActionKind is what an injected fault does to the matched operation.
type ActionKind uint8

const (
	// ActDrop fails the op with ErrInjected without executing it.
	ActDrop ActionKind = iota + 1
	// ActDelay executes the op after extra latency.
	ActDelay
	// ActDuplicate executes an idempotent one-sided READ/WRITE twice.
	ActDuplicate
	// ActDropReply (RPC only) executes the handler but loses the response,
	// exercising retry idempotency on two-sided paths.
	ActDropReply
	// ActCrashNode fail-stops Action.Node (undeclared, via the engine's
	// crash handler) and lets the matched op proceed untouched. Fires at
	// most once regardless of Rule.Max.
	ActCrashNode
)

func (k ActionKind) String() string {
	switch k {
	case ActDrop:
		return "drop"
	case ActDelay:
		return "delay"
	case ActDuplicate:
		return "duplicate"
	case ActDropReply:
		return "drop-reply"
	case ActCrashNode:
		return "crashnode"
	}
	return fmt.Sprintf("action(%d)", k)
}

// Action is the fault applied when a rule fires.
type Action struct {
	Kind ActionKind
	// Delay is the injected latency for ActDelay (and an optional extra
	// delay preceding any other kind).
	Delay time.Duration
	// Node is the victim of ActCrashNode.
	Node common.NodeID
}

// Rule is one named fault source: a selector over operations plus a
// probability and an action. Empty selector fields match anything.
type Rule struct {
	// Name identifies the rule in the event log.
	Name string
	// Layer restricts the rule to common.FaultLayerRDMA or
	// common.FaultLayerStorage ("" = both).
	Layer string
	// Classes restricts the op classes (common.FaultRead, ... ; empty = all).
	Classes []string
	// Src / Dst restrict the initiating / target nodes (empty = any).
	Src []common.NodeID
	Dst []common.NodeID
	// Target restricts the region/service name ("" = any).
	Target string
	// Prob is the per-op fault probability in [0, 1].
	Prob float64
	// FromOp / ToOp bound the rule to a global op-index window.
	// ToOp == 0 means "until the end". Op indices are 1-based.
	FromOp, ToOp uint64
	// Max caps the number of injections (0 = unbounded).
	Max uint64
	// Action is what happens when the rule fires.
	Action Action
}

func (r *Rule) matches(op common.FaultOp, idx uint64) bool {
	if idx < r.FromOp || (r.ToOp > 0 && idx > r.ToOp) {
		return false
	}
	if r.Layer != "" && r.Layer != op.Layer {
		return false
	}
	if len(r.Classes) > 0 && !containsStr(r.Classes, op.Class) {
		return false
	}
	if len(r.Src) > 0 && !containsNode(r.Src, op.Src) {
		return false
	}
	if len(r.Dst) > 0 && !containsNode(r.Dst, op.Dst) {
		return false
	}
	if r.Target != "" && r.Target != op.Name {
		return false
	}
	return true
}

func containsStr(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func containsNode(xs []common.NodeID, x common.NodeID) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Partition is a node↔node reachability schedule: while active, ops whose
// source and destination fall in different groups fail with ErrUnreachable.
// Nodes absent from every group reach everyone (PMFS and storage stay
// reachable unless explicitly listed). The partition heals at ToOp.
type Partition struct {
	Groups       [][]common.NodeID
	FromOp, ToOp uint64 // op-index window; ToOp == 0 means "never heals"
}

func (p *Partition) groupOf(n common.NodeID) int {
	for i, g := range p.Groups {
		if containsNode(g, n) {
			return i
		}
	}
	return -1
}

// blocks reports whether the partition severs src→dst at op index idx.
func (p *Partition) blocks(src, dst common.NodeID, idx uint64) bool {
	if idx < p.FromOp || (p.ToOp > 0 && idx > p.ToOp) {
		return false
	}
	if src == common.AnyNode || dst == common.AnyNode {
		return false // unbound ops cannot be attributed to a side
	}
	gs, gd := p.groupOf(src), p.groupOf(dst)
	return gs >= 0 && gd >= 0 && gs != gd
}

// Plan is a complete fault schedule: named rules plus partition windows.
// The same plan and seed always reproduce the same fault decisions.
type Plan struct {
	Name       string
	Rules      []Rule
	Partitions []Partition
}

// Validate checks rule sanity so a bad plan fails loudly at install time.
func (p *Plan) Validate() error {
	for i, r := range p.Rules {
		if r.Name == "" {
			return fmt.Errorf("chaos: plan %q rule %d has no name", p.Name, i)
		}
		if r.Prob < 0 || r.Prob > 1 {
			return fmt.Errorf("chaos: plan %q rule %q probability %g outside [0,1]",
				p.Name, r.Name, r.Prob)
		}
		if r.Action.Kind < ActDrop || r.Action.Kind > ActCrashNode {
			return fmt.Errorf("chaos: plan %q rule %q has invalid action", p.Name, r.Name)
		}
		if r.Action.Kind == ActDelay && r.Action.Delay <= 0 {
			return fmt.Errorf("chaos: plan %q rule %q delay action without delay", p.Name, r.Name)
		}
		if r.Action.Kind == ActCrashNode && r.Action.Node == 0 {
			return fmt.Errorf("chaos: plan %q rule %q crashnode action without a node", p.Name, r.Name)
		}
	}
	for i, part := range p.Partitions {
		if len(part.Groups) < 2 {
			return fmt.Errorf("chaos: plan %q partition %d needs at least two groups", p.Name, i)
		}
	}
	return nil
}

// --- preset plans -----------------------------------------------------------

// SmokePlan is a light everything-at-once plan for CI: a few percent of
// fabric ops dropped, delayed, or duplicated. Hardened retry paths must
// shrug it off.
func SmokePlan() Plan {
	return Plan{
		Name: "smoke",
		Rules: []Rule{
			{Name: "drop-rpc", Layer: common.FaultLayerRDMA,
				Classes: []string{common.FaultRPC}, Prob: 0.03,
				Action: Action{Kind: ActDrop}},
			{Name: "drop-onesided", Layer: common.FaultLayerRDMA,
				Classes: []string{common.FaultRead, common.FaultWrite, common.FaultAtomic},
				Prob:    0.03, Action: Action{Kind: ActDrop}},
			{Name: "jitter", Layer: common.FaultLayerRDMA, Prob: 0.05,
				Action: Action{Kind: ActDelay, Delay: 200 * time.Microsecond}},
			{Name: "dup-onesided", Layer: common.FaultLayerRDMA,
				Classes: []string{common.FaultRead, common.FaultWrite},
				Prob:    0.02, Action: Action{Kind: ActDuplicate}},
		},
	}
}

// DropPlan drops the given fraction of all fabric ops (request loss).
func DropPlan(prob float64) Plan {
	return Plan{
		Name: "drop",
		Rules: []Rule{
			{Name: "drop-all", Layer: common.FaultLayerRDMA, Prob: prob,
				Action: Action{Kind: ActDrop}},
		},
	}
}

// LossyPlan models a lossy fabric: request loss, response loss on the
// idempotent lock service, duplicates, and latency jitter.
func LossyPlan(prob float64) Plan {
	return Plan{
		Name: "lossy",
		Rules: []Rule{
			{Name: "drop-req", Layer: common.FaultLayerRDMA, Prob: prob,
				Action: Action{Kind: ActDrop}},
			{Name: "lose-plock-reply", Layer: common.FaultLayerRDMA,
				Classes: []string{common.FaultRPC}, Target: "lockfusion.plock",
				Prob:    prob / 2, Action: Action{Kind: ActDropReply}},
			{Name: "dup", Layer: common.FaultLayerRDMA,
				Classes: []string{common.FaultRead, common.FaultWrite},
				Prob:    prob, Action: Action{Kind: ActDuplicate}},
			{Name: "jitter", Layer: common.FaultLayerRDMA, Prob: prob,
				Action: Action{Kind: ActDelay, Delay: 100 * time.Microsecond}},
		},
	}
}

// SlowNodePlan makes every fabric op touching node crawl (a degraded NIC
// or an overloaded host).
func SlowNodePlan(node common.NodeID, delay time.Duration) Plan {
	return Plan{
		Name: "slownode",
		Rules: []Rule{
			{Name: "slow-to", Layer: common.FaultLayerRDMA,
				Dst: []common.NodeID{node}, Prob: 1,
				Action: Action{Kind: ActDelay, Delay: delay}},
			{Name: "slow-from", Layer: common.FaultLayerRDMA,
				Src: []common.NodeID{node}, Prob: 1,
				Action: Action{Kind: ActDelay, Delay: delay}},
		},
	}
}

// StalledStoragePlan stalls a fraction of storage I/O (a brownout of the
// disaggregated store) and fails a smaller fraction of page reads.
func StalledStoragePlan(stall time.Duration, dropProb float64) Plan {
	return Plan{
		Name: "stalledstorage",
		Rules: []Rule{
			{Name: "stall-io", Layer: common.FaultLayerStorage, Prob: 1,
				Action: Action{Kind: ActDelay, Delay: stall}},
			{Name: "fail-pageread", Layer: common.FaultLayerStorage,
				Classes: []string{common.FaultPageRead}, Prob: dropProb,
				Action: Action{Kind: ActDrop}},
		},
	}
}

// BrownoutPlan models a gray-failure brownout: nothing crashes and nothing
// partitions — everything just gets slow. A fraction of storage I/O stalls,
// every fabric op touching one node crawls (a degraded NIC; heartbeats keep
// flowing, so the node is fail-slow, never fail-stopped), and a small
// fraction of one-sided DBP frame reads stall hard (the bimodal tail that
// makes hedged reads pay off — a uniform slowdown would just raise the
// latency EWMA and with it the hedge delay). The graceful-degradation
// machinery (deadline budgets, admission control, hedging, fail-slow
// suspicion) must keep goodput up and tail latency bounded under this plan.
func BrownoutPlan(slow common.NodeID, linkDelay, storageStall, dbpStall time.Duration) Plan {
	return Plan{
		Name: "brownout",
		Rules: []Rule{
			{Name: "stall-storage", Layer: common.FaultLayerStorage, Prob: 0.2,
				Action: Action{Kind: ActDelay, Delay: storageStall}},
			{Name: "slow-link-to", Layer: common.FaultLayerRDMA,
				Dst: []common.NodeID{slow}, Prob: 1,
				Action: Action{Kind: ActDelay, Delay: linkDelay}},
			{Name: "slow-link-from", Layer: common.FaultLayerRDMA,
				Src: []common.NodeID{slow}, Prob: 1,
				Action: Action{Kind: ActDelay, Delay: linkDelay}},
			{Name: "stall-dbp-read", Layer: common.FaultLayerRDMA,
				Classes: []string{common.FaultRead}, Target: "pmfs.dbp", Prob: 0.05,
				Action: Action{Kind: ActDelay, Delay: dbpStall}},
		},
	}
}

// CrashNodePlan fail-stops node once the global op index reaches atOp — an
// undeclared mid-workload crash. The harness must install a crash handler
// (Engine.SetCrashHandler) and is expected to let the cluster's lease-based
// failure detection notice and recover, not to intervene itself.
func CrashNodePlan(node common.NodeID, atOp uint64) Plan {
	return Plan{
		Name: "crashnode",
		Rules: []Rule{
			{Name: "crash-node", FromOp: atOp, Prob: 1, Max: 1,
				Action: Action{Kind: ActCrashNode, Node: node}},
		},
	}
}

// PmfsFailoverPlan fail-stops one replica of the replicated shared-memory
// tier once the global op index reaches atOp, under light fabric noise (the
// drops and jitter exercise the duplicate-suppression and retry paths while
// the failover is in flight). The harness's crash handler routes the
// ActCrashNode on common.PMFSNode to Cluster.KillPMFSReplica instead of a
// database-node kill. Invariants the harness must gate on: zero lost
// committed transactions, a TSO that stays monotonic across the failover
// (all commit CSNs distinct), and a pmfs epoch that advances exactly once.
func PmfsFailoverPlan(atOp uint64) Plan {
	return Plan{
		Name: "pmfsfailover",
		Rules: []Rule{
			{Name: "kill-replica", FromOp: atOp, Prob: 1, Max: 1,
				Action: Action{Kind: ActCrashNode, Node: common.PMFSNode}},
			{Name: "drop-verbs", Layer: common.FaultLayerRDMA, Prob: 0.01,
				Classes: []string{common.FaultRead, common.FaultWrite, common.FaultRPC},
				Action:  Action{Kind: ActDrop}},
			{Name: "jitter", Layer: common.FaultLayerRDMA, Prob: 0.05,
				Action: Action{Kind: ActDelay, Delay: 200 * time.Microsecond}},
		},
	}
}

// ElasticPlan is light fabric noise for topology-churn runs: while an
// orchestrator joins and drains nodes under load, a trickle of dropped verbs
// and latency jitter keeps the retry paths honest. The faults are deliberately
// mild — the thing under test is the elasticity invariant (zero transactions
// aborted for membership reasons during a graceful drain), and heavy loss
// would drown it in ordinary retry noise.
func ElasticPlan() Plan {
	return Plan{
		Name: "elastic",
		Rules: []Rule{
			{Name: "drop-verbs", Layer: common.FaultLayerRDMA, Prob: 0.01,
				Classes: []string{common.FaultRead, common.FaultWrite, common.FaultRPC},
				Action:  Action{Kind: ActDrop}},
			{Name: "jitter", Layer: common.FaultLayerRDMA, Prob: 0.05,
				Action: Action{Kind: ActDelay, Delay: 200 * time.Microsecond}},
		},
	}
}

// PartitionPlan splits the fabric into two reachability groups for the op
// window [fromOp, toOp], healing afterwards.
func PartitionPlan(a, b []common.NodeID, fromOp, toOp uint64) Plan {
	return Plan{
		Name: "partition",
		Partitions: []Partition{
			{Groups: [][]common.NodeID{a, b}, FromOp: fromOp, ToOp: toOp},
		},
	}
}

// PresetPlan resolves a plan by name (the cmd/mpchaos -plan values).
func PresetPlan(name string) (Plan, error) {
	switch name {
	case "smoke":
		return SmokePlan(), nil
	case "drop":
		return DropPlan(0.05), nil
	case "lossy":
		return LossyPlan(0.05), nil
	case "slownode":
		return SlowNodePlan(1, 500*time.Microsecond), nil
	case "stalledstorage":
		return StalledStoragePlan(300*time.Microsecond, 0.02), nil
	case "brownout":
		return BrownoutPlan(1, 10*time.Millisecond, 2*time.Millisecond, 10*time.Millisecond), nil
	case "elastic":
		return ElasticPlan(), nil
	case "none":
		return Plan{Name: "none"}, nil
	default:
		return Plan{}, fmt.Errorf("chaos: unknown preset plan %q", name)
	}
}
