package wal

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"polardbmp/internal/common"
	"polardbmp/internal/storage"
)

func g(n, t int) common.GTrxID {
	return common.GTrxID{Node: common.NodeID(n), Trx: common.TrxID(t), Slot: uint32(t), Version: 1}
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []*Record{
		{Type: RecInsert, Node: 1, LLSN: 10, Trx: g(1, 5), Page: 7, Space: 2,
			Key: []byte("k"), Value: []byte("v")},
		{Type: RecInsert, Node: 2, LLSN: 11, Trx: g(2, 6), Page: 8, Space: 2,
			Key: []byte("k2"), Deleted: true},
		{Type: RecPageImage, Node: 1, LLSN: 12, Trx: g(1, 5), Page: 9, Space: 3,
			Image: []byte{1, 2, 3}},
		{Type: RecCommit, Node: 1, LLSN: 13, Trx: g(1, 5), CTS: 99},
		{Type: RecAbort, Node: 2, LLSN: 14, Trx: g(2, 6)},
		{Type: RecRollback, Node: 2, LLSN: 15, Trx: g(2, 6), Page: 8, Space: 2,
			Key: []byte("k2")},
	}
	var buf []byte
	for _, r := range recs {
		buf = r.Marshal(buf)
	}
	for i, want := range recs {
		got, n, err := unmarshalOne(buf)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		buf = buf[n:]
		if got.Type != want.Type || got.Node != want.Node || got.LLSN != want.LLSN ||
			got.Trx != want.Trx || got.Page != want.Page || got.Space != want.Space ||
			got.CTS != want.CTS || got.Deleted != want.Deleted ||
			!bytes.Equal(got.Key, want.Key) || !bytes.Equal(got.Value, want.Value) ||
			!bytes.Equal(got.Image, want.Image) {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if len(buf) != 0 {
		t.Fatalf("%d leftover bytes", len(buf))
	}
}

func TestRecordIncomplete(t *testing.T) {
	r := &Record{Type: RecCommit, Node: 1, LLSN: 1, Trx: g(1, 1), CTS: 5}
	buf := r.Marshal(nil)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := unmarshalOne(buf[:cut]); err != errIncomplete {
			// Short prefixes with a plausible length header may decode
			// as corrupt, never as success.
			if err == nil {
				t.Fatalf("cut %d decoded successfully", cut)
			}
		}
	}
}

func TestLLSNCounter(t *testing.T) {
	var c LLSNCounter
	if c.Next() != 1 || c.Next() != 2 {
		t.Fatal("counter not incrementing from zero")
	}
	c.Observe(100)
	if got := c.Next(); got != 101 {
		t.Fatalf("after observe(100): next = %d", got)
	}
	c.Observe(50) // lower observation must not regress
	if got := c.Next(); got != 102 {
		t.Fatalf("after low observe: next = %d", got)
	}
	if c.Current() != 102 {
		t.Fatalf("current = %d", c.Current())
	}
}

func TestLLSNCounterConcurrent(t *testing.T) {
	var c LLSNCounter
	var mu sync.Mutex
	seen := map[common.LLSN]bool{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				l := c.Next()
				mu.Lock()
				if seen[l] {
					t.Errorf("duplicate LLSN %d", l)
				}
				seen[l] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestWriterReader(t *testing.T) {
	store := storage.New(storage.Latency{})
	w := NewWriter(store, 1)
	var end common.LSN
	for i := 0; i < 100; i++ {
		end = w.Append(&Record{Type: RecInsert, Node: 1, LLSN: common.LLSN(i + 1),
			Trx: g(1, i), Page: common.PageID(i % 7), Space: 1,
			Key: []byte(fmt.Sprintf("k%d", i)), Value: []byte("v")})
	}
	w.Sync(end)
	if w.Durable() < end {
		t.Fatalf("durable %d < %d", w.Durable(), end)
	}
	r := NewStreamReader(store, 1, 0, 64) // tiny chunks to exercise refill
	for i := 0; i < 100; i++ {
		rec, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if rec == nil {
			t.Fatalf("stream ended at %d", i)
		}
		if rec.LLSN != common.LLSN(i+1) {
			t.Fatalf("record %d has LLSN %d", i, rec.LLSN)
		}
	}
	rec, err := r.Next()
	if err != nil || rec != nil {
		t.Fatalf("expected clean EOF, got %v / %v", rec, err)
	}
}

func TestWriterGroupCommit(t *testing.T) {
	store := storage.New(storage.Latency{})
	w := NewWriter(store, 1)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			end := w.Append(&Record{Type: RecCommit, Node: 1, LLSN: common.LLSN(i + 1),
				Trx: g(1, i), CTS: common.CSN(i + 2)})
			w.Sync(end)
			if w.Durable() < end {
				t.Errorf("sync returned before durable")
			}
		}(i)
	}
	wg.Wait()
	if syncs := store.Stats().LogSyncs.Load(); syncs > 32 {
		t.Fatalf("group commit issued %d syncs for 32 commits", syncs)
	}
}

// TestMergeReaderOrder builds two streams whose records interleave LLSNs and
// checks the merge respects global LLSN order (stronger than the per-page
// requirement).
func TestMergeReaderOrder(t *testing.T) {
	store := storage.New(storage.Latency{})
	w1 := NewWriter(store, 1)
	w2 := NewWriter(store, 2)
	// Node 1 gets odd LLSNs, node 2 even: strictly increasing per stream.
	for i := 1; i <= 99; i += 2 {
		w1.Sync(w1.Append(&Record{Type: RecCommit, Node: 1, LLSN: common.LLSN(i), Trx: g(1, i), CTS: 1}))
	}
	for i := 2; i <= 100; i += 2 {
		w2.Sync(w2.Append(&Record{Type: RecCommit, Node: 2, LLSN: common.LLSN(i), Trx: g(2, i), CTS: 1}))
	}
	m := NewMergeReader(
		NewStreamReader(store, 1, 0, 128),
		NewStreamReader(store, 2, 0, 128),
	)
	var last common.LLSN
	count := 0
	for {
		rec, err := m.Next()
		if err != nil {
			t.Fatal(err)
		}
		if rec == nil {
			break
		}
		if rec.LLSN <= last {
			t.Fatalf("merge emitted LLSN %d after %d", rec.LLSN, last)
		}
		last = rec.LLSN
		count++
	}
	if count != 100 {
		t.Fatalf("merged %d records, want 100", count)
	}
}

// TestMergeReaderPerPageOrder simulates the real invariant: per-page LLSN
// order across random streams, with per-stream monotone LLSNs.
func TestMergeReaderPerPageOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		store := storage.New(storage.Latency{})
		nStreams := 2 + rng.Intn(3)
		writers := make([]*Writer, nStreams)
		for i := range writers {
			writers[i] = NewWriter(store, common.NodeID(i+1))
		}
		// Simulate pages bouncing between nodes: a global LLSN counter
		// per page; each write goes to a random stream with an LLSN
		// larger than both the page's last and the stream's last.
		pageLL := map[common.PageID]common.LLSN{}
		streamLL := make([]common.LLSN, nStreams)
		type key struct {
			page common.PageID
			llsn common.LLSN
		}
		total := 0
		for i := 0; i < 300; i++ {
			pg := common.PageID(rng.Intn(10) + 1)
			s := rng.Intn(nStreams)
			ll := streamLL[s]
			if pageLL[pg] > ll {
				ll = pageLL[pg]
			}
			ll++
			streamLL[s] = ll
			pageLL[pg] = ll
			w := writers[s]
			w.Sync(w.Append(&Record{Type: RecInsert, Node: common.NodeID(s + 1),
				LLSN: ll, Trx: g(s+1, i), Page: pg, Space: 1, Key: []byte("k")}))
			total++
		}
		readers := make([]*StreamReader, nStreams)
		for i := range readers {
			readers[i] = NewStreamReader(store, common.NodeID(i+1), 0, 256)
		}
		m := NewMergeReader(readers...)
		lastPerPage := map[common.PageID]common.LLSN{}
		count := 0
		for {
			rec, err := m.Next()
			if err != nil {
				return false
			}
			if rec == nil {
				break
			}
			if rec.LLSN <= lastPerPage[rec.Page] {
				return false
			}
			lastPerPage[rec.Page] = rec.LLSN
			count++
		}
		return count == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeReaderEmptyStream(t *testing.T) {
	store := storage.New(storage.Latency{})
	w := NewWriter(store, 1)
	w.Sync(w.Append(&Record{Type: RecCommit, Node: 1, LLSN: 1, Trx: g(1, 1), CTS: 1}))
	m := NewMergeReader(
		NewStreamReader(store, 1, 0, 0),
		NewStreamReader(store, 2, 0, 0), // never written
	)
	rec, err := m.Next()
	if err != nil || rec == nil || rec.LLSN != 1 {
		t.Fatalf("rec=%v err=%v", rec, err)
	}
	rec, err = m.Next()
	if err != nil || rec != nil {
		t.Fatalf("expected EOF, got %v / %v", rec, err)
	}
}

func TestStreamReaderFromOffset(t *testing.T) {
	store := storage.New(storage.Latency{})
	w := NewWriter(store, 1)
	r1 := &Record{Type: RecCommit, Node: 1, LLSN: 1, Trx: g(1, 1), CTS: 1}
	mid := w.Append(r1)
	end := w.Append(&Record{Type: RecCommit, Node: 1, LLSN: 2, Trx: g(1, 2), CTS: 2})
	w.Sync(end)
	r := NewStreamReader(store, 1, mid, 0)
	rec, err := r.Next()
	if err != nil || rec == nil || rec.LLSN != 2 {
		t.Fatalf("rec=%+v err=%v", rec, err)
	}
	if rec.LSN != mid {
		t.Fatalf("rec.LSN = %d, want %d", rec.LSN, mid)
	}
}

// TestRecordRoundTripProperty fuzzes record encode/decode across all types.
func TestRecordRoundTripProperty(t *testing.T) {
	f := func(typ uint8, node uint16, llsn uint64, trx uint64, pg uint64, space uint32,
		key, value []byte, deleted bool, cts uint64) bool {
		r := &Record{
			Type:    RecordType(typ%5 + 1),
			Node:    common.NodeID(node),
			LLSN:    common.LLSN(llsn),
			Trx:     common.GTrxID{Node: common.NodeID(node), Trx: common.TrxID(trx), Slot: uint32(trx), Version: uint32(llsn)},
			Page:    common.PageID(pg),
			Space:   common.SpaceID(space),
			Key:     key,
			Value:   value,
			Deleted: deleted,
			Image:   value,
			CTS:     common.CSN(cts),
		}
		buf := r.Marshal(nil)
		got, n, err := unmarshalOne(buf)
		if err != nil || n != len(buf) {
			return false
		}
		if got.Type != r.Type || got.Node != r.Node || got.LLSN != r.LLSN || got.Trx != r.Trx {
			return false
		}
		switch r.Type {
		case RecInsert:
			return got.Page == r.Page && got.Space == r.Space && got.Deleted == r.Deleted &&
				bytes.Equal(got.Key, r.Key) && bytes.Equal(got.Value, r.Value)
		case RecPageImage:
			return got.Page == r.Page && bytes.Equal(got.Image, r.Image)
		case RecCommit:
			return got.CTS == r.CTS
		case RecRollback:
			return got.Page == r.Page && bytes.Equal(got.Key, r.Key)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
