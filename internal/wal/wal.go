// Package wal implements PolarDB-MP's write-ahead logging and the LLSN
// scheme of §4.4.
//
// Each node owns an append-only redo stream in shared storage; within a
// stream, the LSN is the byte offset of the record. Across streams, records
// carry a logical log sequence number (LLSN) drawn from a node-local counter
// that folds in the LLSN of every page the node reads; because a page moves
// between nodes only under an X PLock, and the page carries its last LLSN,
// all records for one page are LLSN-ordered in generation order while
// unrelated pages impose no global order.
//
// Recovery never sorts whole logs: the MergeReader reads a bounded chunk
// from each stream, computes LLSN_bound — the minimum, over non-exhausted
// streams, of the last LLSN read — and releases only records at or below the
// bound, exactly the batching policy §4.4 describes.
//
// Before-images are not needed as separate undo files: user mutations are
// version-prepends, so rolling back is removing the transaction's newest
// version (DESIGN.md substitution S4); compensation is logged as Rollback
// records.
package wal

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"polardbmp/internal/common"
	"polardbmp/internal/storage"
	"polardbmp/internal/trace"
)

// RecordType discriminates redo record kinds.
type RecordType uint8

const (
	// RecInsert is the single user-mutation record: prepend a version
	// (possibly a tombstone) for Key on Page. Insert, update and delete
	// all reduce to it.
	RecInsert RecordType = iota + 1
	// RecPageImage carries a full page image; used for page creation and
	// structure modifications (splits/merges), which are physically
	// logged.
	RecPageImage
	// RecCommit marks Trx committed with CTS.
	RecCommit
	// RecAbort marks Trx aborted (all its versions already rolled back).
	RecAbort
	// RecRollback is a compensation record: the newest version of Key on
	// Page written by Trx was removed.
	RecRollback
)

// Record is one redo record.
type Record struct {
	Type RecordType
	Node common.NodeID
	LLSN common.LLSN
	LSN  common.LSN // byte offset in the node's stream; set by the reader/writer
	Trx  common.GTrxID

	// Page mutation fields (RecInsert / RecRollback / RecPageImage).
	Page    common.PageID
	Space   common.SpaceID
	Key     []byte
	Deleted bool
	Value   []byte
	Image   []byte // RecPageImage only

	CTS common.CSN // RecCommit only
}

// Marshal appends the record's wire form to b.
func (r *Record) Marshal(b []byte) []byte {
	start := len(b)
	b = append(b, 0, 0, 0, 0) // length placeholder
	b = append(b, byte(r.Type))
	b = binary.LittleEndian.AppendUint16(b, uint16(r.Node))
	b = binary.LittleEndian.AppendUint64(b, uint64(r.LLSN))
	b = r.Trx.Marshal(b)
	switch r.Type {
	case RecInsert:
		b = binary.LittleEndian.AppendUint64(b, uint64(r.Page))
		b = binary.LittleEndian.AppendUint32(b, uint32(r.Space))
		b = appendBytes(b, r.Key)
		if r.Deleted {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = appendBytes(b, r.Value)
	case RecPageImage:
		b = binary.LittleEndian.AppendUint64(b, uint64(r.Page))
		b = binary.LittleEndian.AppendUint32(b, uint32(r.Space))
		b = appendBytes(b, r.Image)
	case RecCommit:
		b = binary.LittleEndian.AppendUint64(b, uint64(r.CTS))
	case RecAbort:
		// no extra fields
	case RecRollback:
		b = binary.LittleEndian.AppendUint64(b, uint64(r.Page))
		b = binary.LittleEndian.AppendUint32(b, uint32(r.Space))
		b = appendBytes(b, r.Key)
	default:
		panic(fmt.Sprintf("wal: marshal of unknown record type %d", r.Type))
	}
	binary.LittleEndian.PutUint32(b[start:], uint32(len(b)-start))
	return b
}

func appendBytes(b, v []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(v)))
	return append(b, v...)
}

// unmarshalOne decodes the record at the front of b, returning it, the
// remainder, and the record's wire length.
func unmarshalOne(b []byte) (*Record, int, error) {
	if len(b) < 4 {
		return nil, 0, errIncomplete
	}
	total := int(binary.LittleEndian.Uint32(b))
	if total < 4 || total > len(b) {
		if total >= 4 {
			return nil, 0, errIncomplete
		}
		return nil, 0, fmt.Errorf("wal: bad record length %d: %w", total, common.ErrCorrupt)
	}
	body := b[4:total]
	r := &Record{}
	if len(body) < 1+2+8+common.GTrxIDSize {
		return nil, 0, fmt.Errorf("wal: truncated record header: %w", common.ErrCorrupt)
	}
	r.Type = RecordType(body[0])
	r.Node = common.NodeID(binary.LittleEndian.Uint16(body[1:]))
	r.LLSN = common.LLSN(binary.LittleEndian.Uint64(body[3:]))
	var err error
	r.Trx, body, err = common.UnmarshalGTrxID(body[11:])
	if err != nil {
		return nil, 0, err
	}
	switch r.Type {
	case RecInsert:
		if len(body) < 12 {
			return nil, 0, common.ErrCorrupt
		}
		r.Page = common.PageID(binary.LittleEndian.Uint64(body))
		r.Space = common.SpaceID(binary.LittleEndian.Uint32(body[8:]))
		body = body[12:]
		if r.Key, body, err = readBytes(body); err != nil {
			return nil, 0, err
		}
		if len(body) < 1 {
			return nil, 0, common.ErrCorrupt
		}
		r.Deleted = body[0] == 1
		body = body[1:]
		if r.Value, _, err = readBytes(body); err != nil {
			return nil, 0, err
		}
	case RecPageImage:
		if len(body) < 12 {
			return nil, 0, common.ErrCorrupt
		}
		r.Page = common.PageID(binary.LittleEndian.Uint64(body))
		r.Space = common.SpaceID(binary.LittleEndian.Uint32(body[8:]))
		if r.Image, _, err = readBytes(body[12:]); err != nil {
			return nil, 0, err
		}
	case RecCommit:
		if len(body) < 8 {
			return nil, 0, common.ErrCorrupt
		}
		r.CTS = common.CSN(binary.LittleEndian.Uint64(body))
	case RecAbort:
	case RecRollback:
		if len(body) < 12 {
			return nil, 0, common.ErrCorrupt
		}
		r.Page = common.PageID(binary.LittleEndian.Uint64(body))
		r.Space = common.SpaceID(binary.LittleEndian.Uint32(body[8:]))
		if r.Key, _, err = readBytes(body[12:]); err != nil {
			return nil, 0, err
		}
	default:
		return nil, 0, fmt.Errorf("wal: unknown record type %d: %w", r.Type, common.ErrCorrupt)
	}
	return r, total, nil
}

var errIncomplete = fmt.Errorf("wal: incomplete record")

func readBytes(b []byte) ([]byte, []byte, error) {
	if len(b) < 4 {
		return nil, b, common.ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if len(b) < n {
		return nil, b, common.ErrCorrupt
	}
	if n == 0 {
		return nil, b, nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out, b[n:], nil
}

// LLSNCounter is the node-local logical clock of §4.4.
type LLSNCounter struct {
	mu  sync.Mutex
	cur common.LLSN
}

// Observe folds a page's LLSN into the counter (called whenever the node
// reads a page from storage or the DBP).
func (c *LLSNCounter) Observe(l common.LLSN) {
	c.mu.Lock()
	if l > c.cur {
		c.cur = l
	}
	c.mu.Unlock()
}

// Next increments the counter and returns the new LLSN for a fresh record.
func (c *LLSNCounter) Next() common.LLSN {
	c.mu.Lock()
	c.cur++
	l := c.cur
	c.mu.Unlock()
	return l
}

// Current returns the counter without advancing it.
func (c *LLSNCounter) Current() common.LLSN {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cur
}

// Writer appends a node's redo records to its shared-storage stream with
// group commit: concurrent Sync callers ride a single storage sync. With the
// commit pipeline attached (AttachPipeline), an external syncer — one per
// cluster, see core — keeps sync rounds in flight while appends are
// arriving, bracketing each round with BeginRound/EndRound; committers then
// ride the next round completion instead of running a full storage round
// themselves. The pipeline moves only WHO runs the round — durability itself
// is still established by storage.LogSync, and callers still gate on
// Durable().
type Writer struct {
	store storage.API
	node  common.NodeID

	mu      sync.Mutex
	closed  bool
	nextLSN common.LSN

	syncMu   sync.Mutex
	synced   common.LSN
	syncCond *sync.Cond
	inflight int // storage sync rounds currently running (self-run + pipeline)

	// Pipeline state.
	pipeOn     atomic.Bool
	pipeKick   chan<- struct{} // wakes the cluster syncer on append
	pipeLastNS atomic.Int64    // wall nanos of the last append (hotness signal)
	rides      atomic.Int64    // syncs absorbed by an in-flight round
	tr         *trace.Tracer
}

// NewWriter creates a writer resuming at the stream's current durable end.
func NewWriter(store storage.API, node common.NodeID) *Writer {
	w := &Writer{store: store, node: node}
	w.nextLSN = store.LogDurableLSN(node)
	w.synced = w.nextLSN
	w.syncCond = sync.NewCond(&w.syncMu)
	return w
}

// SetTracer attaches the node's commit-path tracer (nil disables). Appends
// are observed as StageLogAppend; syncs that had to wait for durability as
// StageLogSync.
func (w *Writer) SetTracer(t *trace.Tracer) { w.tr = t }

// Append encodes and appends rec (setting rec.LSN), returning the LSN just
// past the record; the record is durable only after Sync reaches it.
func (w *Writer) Append(rec *Record) common.LSN {
	tok := w.tr.Start()
	buf := rec.Marshal(nil)
	w.mu.Lock()
	if w.closed {
		// A zombie thread of a crashed node: its stream now belongs to
		// the restarted incarnation; drop the record (the crash already
		// lost this transaction).
		end := w.nextLSN
		w.mu.Unlock()
		return end
	}
	rec.LSN = w.nextLSN
	lsn := w.store.LogAppend(w.node, buf)
	if lsn != w.nextLSN || w.store.LogFenced(w.node) {
		if w.store.LogFenced(w.node) {
			// A survivor fenced the stream for takeover: the append was
			// dropped at the storage layer (or raced LogCrashVolatile).
			// This writer belongs to an evicted incarnation — close it.
			w.closed = true
			end := w.nextLSN
			w.mu.Unlock()
			return end
		}
		w.mu.Unlock()
		panic(fmt.Sprintf("wal: writer lost track of stream offset: have %d want %d", lsn, w.nextLSN))
	}
	w.nextLSN += common.LSN(len(buf))
	end := w.nextLSN
	w.mu.Unlock()
	if w.pipeOn.Load() {
		w.pipeLastNS.Store(time.Now().UnixNano())
		select {
		case w.pipeKick <- struct{}{}:
		default:
		}
	}
	w.tr.Observe(trace.StageLogAppend, tok)
	return end
}

// Close fences the writer after a node crash: appends and syncs become
// no-ops so zombie threads cannot corrupt the stream. It also detaches the
// writer from the cluster commit pipeline.
func (w *Writer) Close() {
	w.mu.Lock()
	w.closed = true
	w.mu.Unlock()
	w.pipeOn.Store(false)
}

func (w *Writer) isClosed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.closed
}

// Sync makes the stream durable at least up to lsn. Concurrent callers are
// coalesced: any storage sync round in flight when Sync is called covers
// every byte already appended (durability is marked at round completion), so
// a caller rides the next completion and only self-runs a round when none is
// in flight.
func (w *Writer) Sync(lsn common.LSN) {
	if w.isClosed() || w.store.LogFenced(w.node) {
		return
	}
	tok := w.tr.Start()
	selfRan := false
	w.syncMu.Lock()
	waited := w.synced < lsn
	for w.synced < lsn {
		if w.inflight > 0 {
			w.syncCond.Wait()
			continue
		}
		selfRan = true
		w.inflight++
		w.syncMu.Unlock()
		durable := w.store.LogSync(w.node)
		fenced := w.store.LogFenced(w.node)
		w.syncMu.Lock()
		w.inflight--
		if durable > w.synced {
			w.synced = durable
		}
		w.syncCond.Broadcast()
		if fenced {
			// The stream was fenced for takeover mid-sync: the durable
			// frontier will never advance again; don't spin. Callers must
			// re-check Durable() before treating the commit as durable.
			break
		}
	}
	w.syncMu.Unlock()
	if waited {
		// Only syncs that found the durable frontier behind them are a
		// group-commit stage; no-op syncs behind an earlier force are free.
		// A wait fully absorbed by rounds someone else ran is the pipelined
		// flavor (residual wait); running our own round is the classic one.
		if !selfRan && w.pipeOn.Load() {
			w.rides.Add(1)
			w.tr.Observe(trace.StageLogPipeline, tok)
		} else {
			w.tr.Observe(trace.StageLogSync, tok)
		}
	}
}

// AttachPipeline connects the writer to the cluster's pipelined group-commit
// syncer: appends record a hotness timestamp and kick the syncer's wake
// channel, and durability waits absorbed by syncer rounds are classified as
// StageLogPipeline. The kick channel must be buffered; sends never block.
func (w *Writer) AttachPipeline(kick chan<- struct{}) {
	w.pipeKick = kick
	w.pipeOn.Store(true)
}

// BeginRound marks a pipeline sync round in flight for this stream, so
// concurrent Sync callers ride it instead of self-running a storage sync.
// Every BeginRound must be paired with EndRound.
func (w *Writer) BeginRound() {
	w.syncMu.Lock()
	w.inflight++
	w.syncMu.Unlock()
}

// EndRound completes a pipeline round, publishing the durable frontier the
// round established and waking riders.
func (w *Writer) EndRound(durable common.LSN) {
	w.syncMu.Lock()
	w.inflight--
	if durable > w.synced {
		w.synced = durable
	}
	w.syncCond.Broadcast()
	w.syncMu.Unlock()
}

// PipelineHot reports whether the stream saw an append within window (and is
// still attached to the pipeline); the cluster syncer only spends rounds on
// hot streams.
func (w *Writer) PipelineHot(window time.Duration) bool {
	if !w.pipeOn.Load() {
		return false
	}
	last := w.pipeLastNS.Load()
	return last != 0 && time.Since(time.Unix(0, last)) <= window
}

// Rides returns how many durability waits were fully absorbed by pipeline
// rounds (the StageLogPipeline count).
func (w *Writer) Rides() int64 { return w.rides.Load() }

// End returns the LSN just past the last appended record.
func (w *Writer) End() common.LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN
}

// Durable returns the durable frontier as known to the writer.
func (w *Writer) Durable() common.LSN {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	return w.synced
}

// StreamReader decodes one node's durable records in LSN order, reading the
// stream in bounded chunks.
type StreamReader struct {
	store storage.API
	node  common.NodeID
	pos   common.LSN
	buf   []byte
	eof   bool
	chunk int
}

// DefaultChunkSize is the recovery read granularity per stream.
const DefaultChunkSize = 256 * 1024

// NewStreamReader starts reading node's stream at from.
func NewStreamReader(store storage.API, node common.NodeID, from common.LSN, chunk int) *StreamReader {
	if chunk <= 0 {
		chunk = DefaultChunkSize
	}
	return &StreamReader{store: store, node: node, pos: from, chunk: chunk}
}

// Next returns the next record, or (nil, nil) at end of durable stream.
func (sr *StreamReader) Next() (*Record, error) {
	for {
		if rec, n, err := unmarshalOne(sr.buf); err == nil {
			rec.LSN = sr.pos
			sr.pos += common.LSN(n)
			sr.buf = sr.buf[n:]
			return rec, nil
		} else if err != errIncomplete {
			return nil, err
		}
		if sr.eof {
			if len(sr.buf) != 0 {
				// A torn tail can only be un-synced data, which
				// LogCrashVolatile discards; anything else is
				// corruption.
				return nil, fmt.Errorf("wal: %d trailing bytes in node %d stream: %w",
					len(sr.buf), sr.node, common.ErrCorrupt)
			}
			return nil, nil
		}
		tmp := make([]byte, sr.chunk)
		n, err := sr.store.LogRead(sr.node, sr.pos+common.LSN(len(sr.buf)), tmp)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			sr.eof = true
			continue
		}
		sr.buf = append(sr.buf, tmp[:n]...)
	}
}

// MergeReader yields records from many node streams in an order safe for
// replay: a record is released only when its LLSN is at or below LLSN_bound,
// the minimum of the per-stream last-read LLSNs over streams that may still
// hold earlier records (§4.4). Released records are globally sorted by LLSN,
// so same-page records apply in generation order.
type MergeReader struct {
	streams []*mergeStream
}

type mergeStream struct {
	r       *StreamReader
	pending []*Record
	done    bool
	lastLL  common.LLSN
}

// NewMergeReader merges the given per-node readers.
func NewMergeReader(readers ...*StreamReader) *MergeReader {
	m := &MergeReader{}
	for _, r := range readers {
		m.streams = append(m.streams, &mergeStream{r: r})
	}
	return m
}

// batchTarget is how many records each stream buffers per refill round.
const batchTarget = 512

// Next returns the next replay-safe record, or (nil, nil) when all streams
// are exhausted.
func (m *MergeReader) Next() (*Record, error) {
	for {
		// Refill any live stream with an empty buffer.
		for _, s := range m.streams {
			if s.done || len(s.pending) > 0 {
				continue
			}
			for len(s.pending) < batchTarget {
				rec, err := s.r.Next()
				if err != nil {
					return nil, err
				}
				if rec == nil {
					s.done = true
					break
				}
				s.pending = append(s.pending, rec)
				s.lastLL = rec.LLSN
			}
		}
		// LLSN_bound: remaining (unread) records in a live stream all
		// have LLSN > lastLL of that stream.
		bound := common.LLSN(^uint64(0))
		for _, s := range m.streams {
			if !s.done && s.lastLL < bound {
				bound = s.lastLL
			}
		}
		// Pick the globally smallest buffered LLSN within the bound.
		var best *mergeStream
		for _, s := range m.streams {
			if len(s.pending) == 0 {
				continue
			}
			if best == nil || s.pending[0].LLSN < best.pending[0].LLSN {
				best = s
			}
		}
		if best == nil {
			return nil, nil
		}
		if best.pending[0].LLSN > bound {
			// All buffered records exceed the bound, which can only
			// happen if a live stream hasn't produced anything yet;
			// loop to refill it.
			continue
		}
		rec := best.pending[0]
		best.pending = best.pending[1:]
		return rec, nil
	}
}
