package lockfusion

import (
	"errors"
	"testing"
	"time"

	"polardbmp/internal/common"
)

// TestPLockAdmissionShedsOverLimit drives one stripe past its admission
// bound and verifies the overflow request is rejected with ErrOverloaded
// (after the client's transient-retry backoff) while the admitted waiter is
// unaffected, and that the shed is counted.
func TestPLockAdmissionShedsOverLimit(t *testing.T) {
	tc := newTestCluster(t, 2, Config{})
	tc.srv.PLock.SetAdmissionLimit(1)

	// Node 1 holds X on two pages of the SAME stripe (stripeOf = pg % 16)
	// with live references, so remote requests queue behind revokes that
	// cannot complete until the references drop.
	if err := tc.pl[0].Acquire(1, ModeX); err != nil {
		t.Fatal(err)
	}
	if err := tc.pl[0].Acquire(17, ModeX); err != nil {
		t.Fatal(err)
	}

	// First remote acquire fills the stripe's single admission slot.
	first := make(chan error, 1)
	go func() { first <- tc.pl[1].Acquire(1, ModeX) }()
	deadlineWait := time.Now().Add(2 * time.Second)
	for tc.srv.PLock.QueuedWaiters() == 0 && time.Now().Before(deadlineWait) {
		time.Sleep(time.Millisecond)
	}

	// Second acquire on the same stripe must be shed, not queued.
	err := tc.pl[1].Acquire(17, ModeX)
	if !errors.Is(err, common.ErrOverloaded) {
		t.Fatalf("over-limit acquire err = %v, want ErrOverloaded", err)
	}
	if tc.srv.PLock.Sheds.Load() == 0 {
		t.Fatal("shed not counted")
	}

	// Draining the stripe lets both pages through again.
	tc.pl[0].Release(1)
	tc.pl[0].Release(17)
	select {
	case err := <-first:
		if err != nil {
			t.Fatalf("admitted waiter failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("admitted waiter never granted after release")
	}
	if err := tc.pl[1].Acquire(17, ModeX); err != nil {
		t.Fatalf("acquire after drain: %v", err)
	}
}

// TestPLockAcquireDeadlineExpiresInQueue parks a deadline-bounded acquire
// behind a busy holder and verifies the SERVER bounds the queue wait: the
// waiter comes back with ErrDeadlineExceeded well before the 10s backstop,
// and its queue slot is reclaimed.
func TestPLockAcquireDeadlineExpiresInQueue(t *testing.T) {
	tc := newTestCluster(t, 2, Config{})
	if err := tc.pl[0].Acquire(2, ModeX); err != nil {
		t.Fatal(err) // refs=1: the revoke cannot complete
	}
	start := time.Now()
	_, err := tc.pl[1].AcquireDeadlineEx(2, ModeX, common.DeadlineAfter(50*time.Millisecond))
	if !errors.Is(err, common.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline-bounded acquire took %v (backstop fired instead of budget)", elapsed)
	}
	// The dead waiter must not hold its FIFO slot: after the holder drains,
	// a fresh acquire succeeds.
	tc.pl[0].Release(2)
	if err := tc.pl[1].Acquire(2, ModeX); err != nil {
		t.Fatalf("acquire after expiry: %v", err)
	}
}

// TestRLockWaitForDeadline verifies the park timer is capped by the
// caller's budget (returning the non-retryable ErrDeadlineExceeded) while
// an unbounded wait still uses cfg.WaitTimeout -> ErrLockTimeout.
func TestRLockWaitForDeadline(t *testing.T) {
	tc := newTestCluster(t, 2, Config{WaitTimeout: 5 * time.Second})
	holder, _ := tc.tf[0].Begin(1)
	waiter, _ := tc.tf[1].Begin(2)

	start := time.Now()
	err := tc.rl[1].WaitForDeadline(waiter, holder, common.DeadlineAfter(50*time.Millisecond))
	if !errors.Is(err, common.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if errors.Is(err, common.ErrLockTimeout) {
		t.Fatal("budget-capped expiry must not be classified as a lock timeout")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("budget-capped wait took %v, want ~50ms", elapsed)
	}
	if tc.srv.RLock.WaitEdges() != 0 {
		t.Fatal("expired wait edge leaked")
	}
}
