// Package lockfusion implements Lock Fusion (§4.3): the PLock protocol for
// physical page consistency across nodes and the RLock protocol for
// transactional row locking.
//
// PLock is a node-granularity S/X page lock served by PMFS with FIFO grants,
// negotiation messages to lazy holders, and client-side lazy release: a node
// retains a PLock after its local reference count drops to zero and re-grants
// it locally until PMFS asks for it back (§4.3.1).
//
// RLock embeds the lock in the row itself (the newest version's g_trx_id);
// Lock Fusion keeps only the wait-for relation. A blocked transaction flags
// the holder's TIT slot (`ref`), registers a wait edge, and sleeps; the
// holder's commit/abort notifies Lock Fusion, which wakes the waiters
// (§4.3.2, Figure 6). Cycle detection over the wait-for table surfaces
// deadlock errors.
package lockfusion

import (
	"time"

	"polardbmp/internal/common"

	"polardbmp/internal/rdma"
)

// Fabric service names.
const (
	ServicePLock  = "lockfusion.plock"  // on PMFS
	ServiceRLock  = "lockfusion.rlock"  // on PMFS
	ServiceWake   = "lockfusion.wake"   // on each node: RLock wakeups
	ServiceRevoke = "lockfusion.revoke" // on each node: PLock negotiation
)

// Mode is a PLock mode.
type Mode uint8

const (
	// ModeS is a shared page lock (read).
	ModeS Mode = 1
	// ModeX is an exclusive page lock (write).
	ModeX Mode = 2
)

func (m Mode) String() string {
	switch m {
	case ModeS:
		return "S"
	case ModeX:
		return "X"
	}
	return "?"
}

// Covers reports whether holding m satisfies a request for want.
func (m Mode) Covers(want Mode) bool { return m >= want }

// compatible reports whether two modes can be held by different nodes at
// the same time.
func compatible(a, b Mode) bool { return a == ModeS && b == ModeS }

// Config tunes Lock Fusion clients.
type Config struct {
	// WaitTimeout bounds PLock and RLock waits (backstop behind deadlock
	// detection). Default 2s.
	WaitTimeout time.Duration
	// DisableLazyRelease turns off client-side PLock retention (§4.3.1),
	// so every unref returns the lock to PMFS. Used by the ablation bench.
	DisableLazyRelease bool
}

func (c *Config) fill() {
	if c.WaitTimeout <= 0 {
		c.WaitTimeout = 2 * time.Second
	}
}

// DefaultConfig returns production defaults (lazy release on).
func DefaultConfig() Config { return Config{WaitTimeout: 2 * time.Second} }

// Server bundles the PMFS-side PLock and RLock services.
type Server struct {
	PLock *PLockServer
	RLock *RLockServer
}

// NewServer attaches Lock Fusion to the PMFS endpoint.
func NewServer(ep *rdma.Endpoint, fabric *rdma.Fabric) *Server {
	return &Server{
		PLock: newPLockServer(ep, fabric),
		RLock: newRLockServer(ep, fabric),
	}
}

// SetRetryPolicy overrides the transient-fault retry policy for both
// server-initiated message paths (revokes and wakeups).
func (s *Server) SetRetryPolicy(p common.RetryPolicy) {
	s.PLock.SetRetryPolicy(p)
	s.RLock.SetRetryPolicy(p)
}

// SetEpochGate installs the membership epoch gate on both lock services.
func (s *Server) SetEpochGate(g common.EpochGate) {
	s.PLock.SetEpochGate(g)
	s.RLock.SetEpochGate(g)
}

// DropNode releases every PLock held or awaited by node and clears its
// RLock wait edges, waking foreign waiters blocked on its transactions.
func (s *Server) DropNode(node uint16) {
	s.PLock.dropNode(node)
	s.RLock.dropNode(node)
}

// DropNodeRLock clears only the RLock wait state of a crashed node. The
// node's PLocks are intentionally retained as a fence: pages whose latest
// version may exist only in the crashed node's log stay inaccessible to
// peers until that node's recovery replays them (§4.4 recovery policy).
func (s *Server) DropNodeRLock(node uint16) { s.RLock.dropNode(node) }

// DropNodePLock releases a node's remaining PLocks; called at the end of
// node recovery to lift the fence.
func (s *Server) DropNodePLock(node uint16) { s.PLock.dropNode(node) }
