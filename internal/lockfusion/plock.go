package lockfusion

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"polardbmp/internal/common"
	"polardbmp/internal/metrics"
	"polardbmp/internal/rdma"
)

// PLock RPC wire ops.
const (
	opPLockAcquire = 1 // node, page, mode -> grant (blocks until granted)
	opPLockRelease = 2 // node, page
	opRevoke       = 3 // (node service) page, wanted mode
)

func plockReqBuf(op byte, node common.NodeID, pg common.PageID, mode Mode) []byte {
	b := make([]byte, 12)
	b[0] = op
	binary.LittleEndian.PutUint16(b[1:], uint16(node))
	binary.LittleEndian.PutUint64(b[3:], uint64(pg))
	b[11] = byte(mode)
	return b
}

// PLockServer is the PMFS-side PLock manager: one entry per page, FIFO
// waiter queues, negotiation messages to lazy holders.
type PLockServer struct {
	fabric rdma.Conn
	retry  common.RetryPolicy
	gate   common.EpochGate

	mu      sync.Mutex
	entries map[common.PageID]*plockEntry
	dead    map[common.NodeID]bool

	// Grants counts lock grants; Negotiations counts revoke messages sent
	// (the message-overhead metric behind lazy release, §4.3.1).
	Grants       metrics.Counter
	Negotiations metrics.Counter
}

type plockEntry struct {
	holders map[common.NodeID]Mode
	queue   []*plockWaiter
	// revoked tracks holders already sent a negotiation message, to
	// avoid repeats while a release is in flight.
	revoked map[common.NodeID]bool
}

type plockWaiter struct {
	node    common.NodeID
	mode    Mode
	granted chan struct{}
	err     error // set before granted is closed on failure
}

func newPLockServer(ep *rdma.Endpoint, fabric *rdma.Fabric) *PLockServer {
	s := &PLockServer{
		fabric:  fabric.From(ep.Node()),
		retry:   common.DefaultRetryPolicy(),
		entries: make(map[common.PageID]*plockEntry),
		dead:    make(map[common.NodeID]bool),
	}
	ep.Serve(ServicePLock, s.handle)
	return s
}

// SetRetryPolicy overrides the transient-fault retry policy for revoke
// delivery (chaos ablations disable it).
func (s *PLockServer) SetRetryPolicy(p common.RetryPolicy) { s.retry = p }

// SetEpochGate installs the membership epoch gate: stamped requests from
// evicted incarnations are rejected with ErrStaleEpoch before they can
// mutate the lock table.
func (s *PLockServer) SetEpochGate(g common.EpochGate) { s.gate = g }

func (s *PLockServer) handle(req []byte) ([]byte, error) {
	if len(req) < 12 {
		return nil, common.ErrShortBuffer
	}
	node := common.NodeID(binary.LittleEndian.Uint16(req[1:]))
	pg := common.PageID(binary.LittleEndian.Uint64(req[3:]))
	mode := Mode(req[11])
	if s.gate != nil {
		if err := s.gate(node, common.TrailingEpoch(req, 12)); err != nil {
			return nil, err
		}
	}
	switch req[0] {
	case opPLockAcquire:
		return nil, s.acquire(node, pg, mode)
	case opPLockRelease:
		s.release(node, pg)
		return nil, nil
	default:
		return nil, fmt.Errorf("plock: unknown op %d", req[0])
	}
}

func (s *PLockServer) entry(pg common.PageID) *plockEntry {
	e := s.entries[pg]
	if e == nil {
		e = &plockEntry{
			holders: make(map[common.NodeID]Mode),
			revoked: make(map[common.NodeID]bool),
		}
		s.entries[pg] = e
	}
	return e
}

// acquire blocks until the PLock is granted to node. Grants are FIFO per
// page so a lazy holder cannot starve remote requesters (§4.3.1). A request
// conflicting with a crashed node's retained lock fails fast with ErrFenced
// (retryable): blocking would let live transactions hold-and-wait against a
// fence only that node's recovery can lift.
func (s *PLockServer) acquire(node common.NodeID, pg common.PageID, mode Mode) error {
	s.mu.Lock()
	e := s.entry(pg)
	if held, ok := e.holders[node]; ok && held.Covers(mode) {
		// Idempotent re-grant (e.g. the release raced a new acquire,
		// or a recovering incarnation reclaiming its fenced lock).
		s.mu.Unlock()
		return nil
	}
	for holder, held := range e.holders {
		// A fence only ever blocks OTHER nodes: the crashed holder's own
		// recovering incarnation reclaims through the idempotent path
		// above, and two dead nodes must not wait on each other.
		if holder != node && s.dead[holder] && !compatible(held, mode) {
			s.mu.Unlock()
			return fmt.Errorf("plock: page %d held by crashed node %d: %w",
				pg, holder, common.ErrFenced)
		}
	}
	w := &plockWaiter{node: node, mode: mode, granted: make(chan struct{})}
	e.queue = append(e.queue, w)
	revokees := s.tryGrantLocked(pg, e)
	s.mu.Unlock()
	s.sendRevokes(pg, revokees)

	select {
	case <-w.granted:
		return w.err
	case <-time.After(plockWaitBackstop):
		// Remove the waiter if still queued; if the grant raced the
		// timeout, accept it.
		s.mu.Lock()
		for i, q := range e.queue {
			if q == w {
				e.queue = append(e.queue[:i], e.queue[i+1:]...)
				s.mu.Unlock()
				return fmt.Errorf("plock: page %d mode %v for node %d: %w",
					pg, mode, node, common.ErrLockTimeout)
			}
		}
		s.mu.Unlock()
		<-w.granted
		return w.err
	}
}

// MarkDead records that node crashed: its retained PLocks become a fence
// that fails conflicting requests fast, and waiters already blocked behind
// it are failed so they release what they hold and retry.
func (s *PLockServer) MarkDead(node common.NodeID) {
	n := common.NodeID(node)
	var pending []pendingRevokes
	s.mu.Lock()
	s.dead[n] = true
	for pg, e := range s.entries {
		if _, holds := e.holders[n]; !holds {
			continue
		}
		kept := e.queue[:0]
		for _, w := range e.queue {
			if w.node != n && !compatible(e.holders[n], w.mode) {
				w.err = fmt.Errorf("plock: page %d held by crashed node %d: %w",
					pg, n, common.ErrFenced)
				close(w.granted)
				continue
			}
			kept = append(kept, w)
		}
		e.queue = kept
		pending = append(pending, pendingRevokes{pg, s.tryGrantLocked(pg, e)})
	}
	s.mu.Unlock()
	for _, p := range pending {
		s.sendRevokes(p.pg, p.targets)
	}
}

// pendingRevokes pairs a page with its queued negotiation messages.
type pendingRevokes struct {
	pg      common.PageID
	targets []revokeTarget
}

// ClearDead lifts the dead mark after the node's recovery completed.
func (s *PLockServer) ClearDead(node common.NodeID) {
	s.mu.Lock()
	delete(s.dead, common.NodeID(node))
	s.mu.Unlock()
}

// plockWaitBackstop bounds server-side waits. It is intentionally generous:
// engine-level acquisition order makes PLock deadlocks impossible, so this
// only fires on bugs or crashed holders not yet dropped.
const plockWaitBackstop = 10 * time.Second

// revokeTarget is one negotiation message to send once the table lock is
// released.
type revokeTarget struct {
	holder   common.NodeID
	wantNode common.NodeID
	wantMode Mode
}

// sendRevokes delivers negotiation messages outside the table lock (the
// holder's revoke handler may synchronously call back with a release).
// Revoke delivery is retried on transient fabric faults: a lost revoke
// would strand the waiter until the lazy holder releases on its own, and
// re-delivery is idempotent (it only sets the holder's revokePending flag).
func (s *PLockServer) sendRevokes(pg common.PageID, targets []revokeTarget) {
	for _, t := range targets {
		s.Negotiations.Inc()
		req := plockReqBuf(opRevoke, t.wantNode, pg, t.wantMode)
		_ = common.Retry(s.retry, func() error {
			_, err := s.fabric.Call(t.holder, ServiceRevoke, req)
			return err
		})
	}
}

// collectRevokeesLocked returns the holders that conflict with the queue
// head and have not yet been sent a negotiation message.
func (s *PLockServer) collectRevokeesLocked(e *plockEntry, head *plockWaiter) []revokeTarget {
	var out []revokeTarget
	for holder, held := range e.holders {
		if holder == head.node || s.dead[holder] {
			continue // dead holders cannot respond; the fence handles them
		}
		if !compatible(held, head.mode) && !e.revoked[holder] {
			e.revoked[holder] = true
			out = append(out, revokeTarget{holder: holder, wantNode: head.node, wantMode: head.mode})
		}
	}
	return out
}

// tryGrantLocked grants queue-head waiters while they are compatible with
// the remaining holders (and with each other: a run of S waiters is granted
// together). When it stops with a blocked head, it returns the negotiation
// messages the caller must send after unlocking — computed HERE, on every
// state change, because a waiter that becomes head only after earlier
// grants would otherwise never trigger negotiation and the queue would
// wedge behind a lazy holder.
func (s *PLockServer) tryGrantLocked(pg common.PageID, e *plockEntry) []revokeTarget {
	for len(e.queue) > 0 {
		w := e.queue[0]
		ok := true
		for holder, held := range e.holders {
			if holder == w.node {
				// The node's own (possibly weaker) holdership never
				// blocks its request: upgrades don't occur in the
				// live protocol (clients release before acquiring a
				// stronger mode), so this only fires when a
				// recovering incarnation reclaims its crashed
				// predecessor's lock in a stronger mode.
				continue
			}
			if !compatible(held, w.mode) {
				ok = false
				break
			}
		}
		if !ok {
			return s.collectRevokeesLocked(e, w)
		}
		if cur, isHolder := e.holders[w.node]; !isHolder || w.mode > cur {
			e.holders[w.node] = w.mode
		}
		delete(e.revoked, w.node)
		e.queue = e.queue[1:]
		s.Grants.Inc()
		close(w.granted)
	}
	return nil
}

// release removes node's hold on pg and grants any unblocked waiters.
func (s *PLockServer) release(node common.NodeID, pg common.PageID) {
	s.mu.Lock()
	e := s.entries[pg]
	if e == nil {
		s.mu.Unlock()
		return
	}
	delete(e.holders, node)
	delete(e.revoked, node)
	revokees := s.tryGrantLocked(pg, e)
	if len(e.holders) == 0 && len(e.queue) == 0 {
		delete(s.entries, pg)
	}
	s.mu.Unlock()
	s.sendRevokes(pg, revokees)
}

// dropNode force-releases everything node holds or awaits (crash cleanup).
func (s *PLockServer) dropNode(node uint16) {
	n := common.NodeID(node)
	var pending []pendingRevokes
	s.mu.Lock()
	delete(s.dead, n)
	for pg, e := range s.entries {
		delete(e.holders, n)
		delete(e.revoked, n)
		filtered := e.queue[:0]
		for _, w := range e.queue {
			if w.node == n {
				close(w.granted) // unblock; the caller's fabric call fails anyway
				continue
			}
			filtered = append(filtered, w)
		}
		e.queue = filtered
		pending = append(pending, pendingRevokes{pg, s.tryGrantLocked(pg, e)})
		if len(e.holders) == 0 && len(e.queue) == 0 {
			delete(s.entries, pg)
		}
	}
	s.mu.Unlock()
	for _, p := range pending {
		s.sendRevokes(p.pg, p.targets)
	}
}

// DebugDump renders the lock table state (diagnostics).
func (s *PLockServer) DebugDump() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := ""
	for pg, e := range s.entries {
		out += fmt.Sprintf("page %d: holders=%v revoked=%v queue=[", pg, e.holders, e.revoked)
		for _, w := range e.queue {
			out += fmt.Sprintf("{n%d %v} ", w.node, w.mode)
		}
		out += "]\n"
	}
	return out
}

// HeldBy returns every page node currently holds and in which mode. During
// takeover this is the fence set: the only pages whose latest contents may
// exist solely in the dead node's log (flush-before-release guarantees
// everything else was pushed before its lock left the node).
func (s *PLockServer) HeldBy(node common.NodeID) map[common.PageID]Mode {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[common.PageID]Mode)
	for pg, e := range s.entries {
		if m, ok := e.holders[node]; ok {
			out[pg] = m
		}
	}
	return out
}

// HolderCount returns the number of pages with at least one holder (tests).
func (s *PLockServer) HolderCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, e := range s.entries {
		if len(e.holders) > 0 {
			n++
		}
	}
	return n
}

// --- client ----------------------------------------------------------------

// RevokeFunc is called by the PLock client when PMFS asks the node to give a
// page back. The engine uses it to flush the dirty page to the DBP (forcing
// logs first) before the lock leaves the node (§4.2/§4.3.1). It runs before
// the release RPC is sent.
type RevokeFunc func(pg common.PageID, held Mode)

// PLockClient is a node's PLock manager: it tracks locks the node holds,
// reference counts from local threads, lazy retention, and pending revokes.
type PLockClient struct {
	node   common.NodeID
	fabric rdma.Conn
	cfg    Config
	retry  common.RetryPolicy
	stamp  *common.EpochStamp

	onRevoke RevokeFunc
	closed   atomic.Bool

	mu    sync.Mutex
	locks map[common.PageID]*localPLock
	// releasing tracks pages with an in-flight release RPC; a fresh
	// acquire for such a page must wait or the server could grant
	// against holdership the release is about to remove.
	releasing map[common.PageID]bool
	relCond   *sync.Cond

	// LocalGrants / RemoteAcquires measure the lazy-release fast path.
	LocalGrants    metrics.Counter
	RemoteAcquires metrics.Counter
}

type localPLock struct {
	mode          Mode
	refs          int
	revokePending bool
	// acquiring serializes remote acquisition for the same page from
	// multiple local threads.
	acquiring bool
	cond      *sync.Cond
}

// NewPLockClient registers the node's revoke service and returns the client.
func NewPLockClient(ep *rdma.Endpoint, fabric *rdma.Fabric, cfg Config) *PLockClient {
	cfg.fill()
	c := &PLockClient{
		node:      ep.Node(),
		fabric:    fabric.From(ep.Node()),
		retry:     common.DefaultRetryPolicy(),
		cfg:       cfg,
		locks:     make(map[common.PageID]*localPLock),
		releasing: make(map[common.PageID]bool),
	}
	c.relCond = sync.NewCond(&c.mu)
	ep.Serve(ServiceRevoke, c.handleRevoke)
	return c
}

// SetRevokeHandler installs the engine's flush-before-release hook. Must be
// called before the node serves traffic.
func (c *PLockClient) SetRevokeHandler(f RevokeFunc) { c.onRevoke = f }

// SetRetryPolicy overrides the transient-fault retry policy (chaos
// ablations disable it).
func (c *PLockClient) SetRetryPolicy(p common.RetryPolicy) { c.retry = p }

// SetEpochStamp makes the client stamp requests with the node's incarnation
// epoch so PMFS can fence evicted incarnations.
func (c *PLockClient) SetEpochStamp(s *common.EpochStamp) { c.stamp = s }

func (c *PLockClient) handleRevoke(req []byte) ([]byte, error) {
	if len(req) < 12 {
		return nil, common.ErrShortBuffer
	}
	pg := common.PageID(binary.LittleEndian.Uint64(req[3:]))
	c.mu.Lock()
	l := c.locks[pg]
	if l == nil {
		// Already released (race with our own release): nothing to do.
		c.mu.Unlock()
		return nil, nil
	}
	l.revokePending = true
	if l.refs > 0 || l.acquiring {
		// Busy, or a local thread is mid-acquisition (the server may
		// have just granted it): the next unref (or the acquiring
		// thread's release) performs the handover.
		c.mu.Unlock()
		return nil, nil
	}
	mode := l.mode
	delete(c.locks, pg)
	c.releasing[pg] = true
	c.mu.Unlock()
	c.releaseToServer(pg, mode)
	return nil, nil
}

// Acquire obtains the PLock for pg in the given mode for one local user.
// The fast path grants locally when the node already holds a covering mode
// and no negotiation is pending (§4.3.1); otherwise it RPCs Lock Fusion.
func (c *PLockClient) Acquire(pg common.PageID, mode Mode) error {
	if c.closed.Load() {
		return fmt.Errorf("plock: node %d client: %w", c.node, common.ErrClosed)
	}
	c.mu.Lock()
	for {
		if c.closed.Load() {
			c.mu.Unlock()
			return fmt.Errorf("plock: node %d client: %w", c.node, common.ErrClosed)
		}
		if c.releasing[pg] {
			c.relCond.Wait()
			continue
		}
		l := c.locks[pg]
		if l == nil {
			l = &localPLock{}
			l.cond = sync.NewCond(&c.mu)
			c.locks[pg] = l
		}
		if l.cond == nil {
			l.cond = sync.NewCond(&c.mu)
		}
		// Fast path: covering mode held, no revoke pending, and lazy
		// retention enabled (a fresh grant always passes through the
		// server, so refs>0 grants are always legal to share).
		if l.mode.Covers(mode) && !l.revokePending && (!c.cfg.DisableLazyRelease || l.refs > 0) {
			l.refs++
			c.mu.Unlock()
			c.LocalGrants.Inc()
			return nil
		}
		if l.revokePending || l.acquiring || (l.mode != 0 && !l.mode.Covers(mode)) {
			// Someone must first finish releasing or acquiring;
			// wait for the state to settle. (A non-covering held
			// mode means local S holders must drain before we can
			// fetch X — the no-upgrade rule.)
			if l.refs == 0 && l.revokePending && !l.acquiring {
				// We are the ones who must complete the revoke.
				mode0 := l.mode
				delete(c.locks, pg)
				c.releasing[pg] = true
				c.mu.Unlock()
				c.releaseToServer(pg, mode0)
				c.mu.Lock()
				continue
			}
			if l.refs == 0 && l.mode != 0 && !l.mode.Covers(mode) && !l.acquiring {
				// Voluntarily give back the weaker lock, then
				// acquire the stronger one fresh.
				mode0 := l.mode
				delete(c.locks, pg)
				c.releasing[pg] = true
				c.mu.Unlock()
				c.releaseToServer(pg, mode0)
				c.mu.Lock()
				continue
			}
			l.cond.Wait()
			continue
		}
		// Slow path: fetch from the server.
		l.acquiring = true
		c.mu.Unlock()
		c.RemoteAcquires.Inc()
		// The server's acquire path is idempotent (a holder re-acquiring is
		// re-granted), so lost requests and lost responses both retry safely.
		err := common.Retry(c.retry, func() error {
			_, e := c.fabric.Call(common.PMFSNode, ServicePLock,
				c.stamp.Stamp(plockReqBuf(opPLockAcquire, c.node, pg, mode)))
			return e
		})
		c.mu.Lock()
		l.acquiring = false
		if err != nil {
			if l.refs == 0 && l.mode == 0 {
				delete(c.locks, pg)
			}
			l.cond.Broadcast()
			c.mu.Unlock()
			return err
		}
		if mode > l.mode {
			l.mode = mode
		}
		l.refs++
		l.cond.Broadcast()
		c.mu.Unlock()
		return nil
	}
}

// Release drops one local reference. With lazy retention the node keeps the
// PLock; if PMFS asked for it back (or lazy retention is disabled), the last
// unref flushes via the revoke hook and releases it to the server.
func (c *PLockClient) Release(pg common.PageID) {
	c.mu.Lock()
	l := c.locks[pg]
	if l == nil || l.refs == 0 {
		c.mu.Unlock()
		if c.closed.Load() {
			// A zombie thread of a crashed node racing teardown; its
			// holdership is reclaimed by recovery's DropNodePLock.
			return
		}
		panic(fmt.Sprintf("plock: release of un-held page %d on node %d", pg, c.node))
	}
	l.refs--
	if l.refs > 0 {
		c.mu.Unlock()
		return
	}
	if !l.revokePending && !c.cfg.DisableLazyRelease {
		l.cond.Broadcast()
		c.mu.Unlock()
		return
	}
	mode := l.mode
	delete(c.locks, pg)
	c.releasing[pg] = true
	l.cond.Broadcast()
	c.mu.Unlock()
	c.releaseToServer(pg, mode)
}

// releaseToServer runs the engine flush hook and returns the lock to PMFS.
// Callers must have removed the page's map entry and set releasing[pg]
// under c.mu before calling, so no fresh acquire can overtake the release.
func (c *PLockClient) releaseToServer(pg common.PageID, mode Mode) {
	if c.closed.Load() {
		// A crashed node's zombie goroutine must not mutate server
		// state that now belongs to the node's restarted incarnation.
		c.mu.Lock()
		delete(c.releasing, pg)
		c.relCond.Broadcast()
		c.mu.Unlock()
		return
	}
	if c.onRevoke != nil {
		c.onRevoke(pg, mode)
	}
	// A dropped release would leave PMFS believing we still hold the lock,
	// stalling every waiter until the backstop: retry until delivered.
	_ = common.Retry(c.retry, func() error {
		_, err := c.fabric.Call(common.PMFSNode, ServicePLock,
			c.stamp.Stamp(plockReqBuf(opPLockRelease, c.node, pg, mode)))
		return err
	})
	c.mu.Lock()
	delete(c.releasing, pg)
	c.relCond.Broadcast()
	if l := c.locks[pg]; l != nil && l.cond != nil {
		l.cond.Broadcast()
	}
	c.mu.Unlock()
}

// ReleaseAll force-releases every retained lock (shutdown / ablation /
// cache-drop). Locks with live references are skipped.
func (c *PLockClient) ReleaseAll() {
	c.mu.Lock()
	var idle []struct {
		pg   common.PageID
		mode Mode
	}
	for pg, l := range c.locks {
		if l.refs == 0 {
			idle = append(idle, struct {
				pg   common.PageID
				mode Mode
			}{pg, l.mode})
			delete(c.locks, pg)
			c.releasing[pg] = true
		}
	}
	c.mu.Unlock()
	for _, e := range idle {
		c.releaseToServer(e.pg, e.mode)
	}
}

// Close fences the client after a node crash: no further acquisitions or
// server releases are issued.
func (c *PLockClient) Close() { c.closed.Store(true) }

// HeldMode returns the mode the node currently holds for pg (0 if none).
func (c *PLockClient) HeldMode(pg common.PageID) Mode {
	c.mu.Lock()
	defer c.mu.Unlock()
	if l := c.locks[pg]; l != nil {
		return l.mode
	}
	return 0
}
