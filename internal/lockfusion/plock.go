package lockfusion

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"polardbmp/internal/common"
	"polardbmp/internal/metrics"
	"polardbmp/internal/rdma"
	"polardbmp/internal/trace"
)

// PLock RPC wire ops.
const (
	opPLockAcquire  = 1 // node, page, mode -> grant (blocks until granted)
	opPLockRelease  = 2 // node, page
	opRevoke        = 3 // (node service) page, wanted mode
	opPLockReleaseN = 4 // node, count, count × (page, mode): batched release
	opRevokeN       = 5 // (node service) count, count × (page, wantNode, wantMode)
)

func plockReqBuf(op byte, node common.NodeID, pg common.PageID, mode Mode) []byte {
	b := make([]byte, 12)
	b[0] = op
	binary.LittleEndian.PutUint16(b[1:], uint16(node))
	binary.LittleEndian.PutUint64(b[3:], uint64(pg))
	b[11] = byte(mode)
	return b
}

// plockAcquireReqLen is the acquire request size: the 12-byte common header
// plus a uint32 wait budget in microseconds (0 = unbounded). The budget
// rides the wire so the SERVER can bound the waiter's queue time: a
// client-side timer alone would leave the abandoned waiter queued, holding
// its FIFO slot against peers, until the backstop fired.
const plockAcquireReqLen = 16

func plockAcquireReqBuf(node common.NodeID, pg common.PageID, mode Mode, budgetMicros uint32) []byte {
	b := make([]byte, plockAcquireReqLen)
	b[0] = opPLockAcquire
	binary.LittleEndian.PutUint16(b[1:], uint16(node))
	binary.LittleEndian.PutUint64(b[3:], uint64(pg))
	b[11] = byte(mode)
	binary.LittleEndian.PutUint32(b[12:], budgetMicros)
	return b
}

// deadlineBudgetMicros converts a deadline's remaining time to the uint32
// microsecond wire form: 0 for unbounded, clamped to [1, MaxUint32] when
// bounded (an already-expired budget still sends 1µs so the server answers
// promptly rather than treating it as unbounded).
func deadlineBudgetMicros(dl common.Deadline) uint32 {
	rem, bounded := dl.Remaining()
	if !bounded {
		return 0
	}
	us := rem.Microseconds()
	if us < 1 {
		return 1
	}
	if us > int64(^uint32(0)) {
		return ^uint32(0)
	}
	return uint32(us)
}

// relPage is one (page, held mode) element of a batched release.
type relPage struct {
	pg   common.PageID
	mode Mode
}

// plockReleaseNBuf encodes a batched release: header (op, node, count)
// followed by count fixed-size elements, with room left for the epoch stamp.
func plockReleaseNBuf(node common.NodeID, pages []relPage) []byte {
	b := make([]byte, 5, 5+9*len(pages)+8)
	b[0] = opPLockReleaseN
	binary.LittleEndian.PutUint16(b[1:], uint16(node))
	binary.LittleEndian.PutUint16(b[3:], uint16(len(pages)))
	for _, p := range pages {
		b = binary.LittleEndian.AppendUint64(b, uint64(p.pg))
		b = append(b, byte(p.mode))
	}
	return b
}

// revokeItem is one page's negotiation element inside a batched revoke.
type revokeItem struct {
	pg       common.PageID
	wantNode common.NodeID
	wantMode Mode
}

func revokeNBuf(items []revokeItem) []byte {
	b := make([]byte, 3, 3+11*len(items))
	b[0] = opRevokeN
	binary.LittleEndian.PutUint16(b[1:], uint16(len(items)))
	for _, it := range items {
		b = binary.LittleEndian.AppendUint64(b, uint64(it.pg))
		b = binary.LittleEndian.AppendUint16(b, uint16(it.wantNode))
		b = append(b, byte(it.wantMode))
	}
	return b
}

// plockStripes shards the server lock table. 16 stripes keeps the per-stripe
// collision probability negligible at the bench's 8 nodes × 3 threads (≤24
// concurrent requesters) while staying small enough that whole-table walks
// (MarkDead, HeldBy) stay cheap.
const plockStripes = 16

// PLockServer is the PMFS-side PLock manager: one entry per page, FIFO
// waiter queues, negotiation messages to lazy holders. The page table is
// striped so unrelated pages never contend on one mutex.
type PLockServer struct {
	fabric rdma.Conn
	retry  common.RetryPolicy
	gate   common.EpochGate

	stripes [plockStripes]plockStripe

	// dead is read under every stripe's grant path, so it lives behind its
	// own RWMutex. Lock order: stripe.mu, then deadMu (read side only);
	// writers (MarkDead/ClearDead/dropNode) take deadMu alone.
	deadMu sync.RWMutex
	dead   map[common.NodeID]bool

	// admit bounds concurrently admitted acquire requests per stripe
	// (<=0 disables shedding). Requests over the bound are rejected with
	// ErrOverloaded instead of queueing, so a hot stripe's queue — and the
	// latency of everything behind it — stays bounded under overload.
	admit atomic.Int64

	// Grants counts lock grants; Negotiations counts revoke RPCs sent (a
	// coalesced multi-page revoke counts once — it IS one message; the
	// message-overhead metric behind lazy release, §4.3.1).
	Grants       metrics.Counter
	Negotiations metrics.Counter
	// Sheds counts acquires rejected by admission control.
	Sheds metrics.Counter
}

type plockStripe struct {
	mu      sync.Mutex
	entries map[common.PageID]*plockEntry
	// inflight counts admitted acquire requests currently inside the
	// stripe (queued or granting); the admission bound compares against it.
	inflight atomic.Int64
}

type plockEntry struct {
	holders map[common.NodeID]Mode
	queue   []*plockWaiter
	// revoked records when each conflicting holder was last sent a
	// negotiation message: fresh entries suppress repeats while a release
	// is in flight, but an entry older than plockRevokeResend is re-sent.
	// Without the expiry a revoke lost to a network partition (delivery
	// retries span only milliseconds) would wedge the page forever — the
	// lazy holder never learns anyone wants it, and every later waiter is
	// suppressed by the stale mark.
	revoked map[common.NodeID]time.Time
}

// plockRevokeResend is how long a sent negotiation message suppresses
// re-sending. Normal release round-trips finish in microseconds, so the
// resend only fires when the revoke (or the answering release) was lost to
// a link fault; re-delivery is idempotent on the holder.
const plockRevokeResend = 250 * time.Millisecond

type plockWaiter struct {
	node    common.NodeID
	mode    Mode
	granted chan struct{}
	err     error // set before granted is closed on failure
}

// plockAdmitDefault is the per-stripe admission bound: far above the bench
// peak (8 nodes × 3 threads across 16 stripes), so shedding only engages
// under genuine overload.
const plockAdmitDefault = 64

func newPLockServer(ep *rdma.Endpoint, fabric *rdma.Fabric) *PLockServer {
	s := &PLockServer{
		fabric: fabric.From(ep.Node()),
		retry:  common.DefaultRetryPolicy(),
		dead:   make(map[common.NodeID]bool),
	}
	s.admit.Store(plockAdmitDefault)
	for i := range s.stripes {
		s.stripes[i].entries = make(map[common.PageID]*plockEntry)
	}
	ep.Serve(ServicePLock, s.handle)
	return s
}

// SetAdmissionLimit bounds concurrently admitted acquires per stripe;
// n <= 0 disables load shedding.
func (s *PLockServer) SetAdmissionLimit(n int) { s.admit.Store(int64(n)) }

func (s *PLockServer) stripeOf(pg common.PageID) *plockStripe {
	return &s.stripes[uint64(pg)%plockStripes]
}

func (s *PLockServer) isDead(node common.NodeID) bool {
	s.deadMu.RLock()
	d := s.dead[node]
	s.deadMu.RUnlock()
	return d
}

// SetRetryPolicy overrides the transient-fault retry policy for revoke
// delivery (chaos ablations disable it).
func (s *PLockServer) SetRetryPolicy(p common.RetryPolicy) { s.retry = p }

// SetEpochGate installs the membership epoch gate: stamped requests from
// evicted incarnations are rejected with ErrStaleEpoch before they can
// mutate the lock table.
func (s *PLockServer) SetEpochGate(g common.EpochGate) { s.gate = g }

func (s *PLockServer) handle(req []byte) ([]byte, error) {
	if len(req) < 1 {
		return nil, common.ErrShortBuffer
	}
	switch req[0] {
	case opPLockAcquire:
		if len(req) < plockAcquireReqLen {
			return nil, common.ErrShortBuffer
		}
		node := common.NodeID(binary.LittleEndian.Uint16(req[1:]))
		pg := common.PageID(binary.LittleEndian.Uint64(req[3:]))
		mode := Mode(req[11])
		budget := binary.LittleEndian.Uint32(req[12:])
		if s.gate != nil {
			if err := s.gate(node, common.TrailingEpoch(req, plockAcquireReqLen)); err != nil {
				return nil, err
			}
		}
		return nil, s.acquire(node, pg, mode, budget)
	case opPLockRelease:
		if len(req) < 12 {
			return nil, common.ErrShortBuffer
		}
		node := common.NodeID(binary.LittleEndian.Uint16(req[1:]))
		pg := common.PageID(binary.LittleEndian.Uint64(req[3:]))
		if s.gate != nil {
			if err := s.gate(node, common.TrailingEpoch(req, 12)); err != nil {
				return nil, err
			}
		}
		s.release(node, pg)
		return nil, nil
	case opPLockReleaseN:
		if len(req) < 5 {
			return nil, common.ErrShortBuffer
		}
		node := common.NodeID(binary.LittleEndian.Uint16(req[1:]))
		count := int(binary.LittleEndian.Uint16(req[3:]))
		base := 5 + 9*count
		if len(req) < base {
			return nil, common.ErrShortBuffer
		}
		if s.gate != nil {
			if err := s.gate(node, common.TrailingEpoch(req, base)); err != nil {
				return nil, err
			}
		}
		pages := make([]common.PageID, count)
		for i := 0; i < count; i++ {
			pages[i] = common.PageID(binary.LittleEndian.Uint64(req[5+9*i:]))
		}
		s.releaseN(node, pages)
		return nil, nil
	default:
		return nil, fmt.Errorf("plock: unknown op %d", req[0])
	}
}

func (st *plockStripe) entry(pg common.PageID) *plockEntry {
	e := st.entries[pg]
	if e == nil {
		e = &plockEntry{
			holders: make(map[common.NodeID]Mode),
			revoked: make(map[common.NodeID]time.Time),
		}
		st.entries[pg] = e
	}
	return e
}

// acquire blocks until the PLock is granted to node. Grants are FIFO per
// page so a lazy holder cannot starve remote requesters (§4.3.1). A request
// conflicting with a crashed node's retained lock fails fast with ErrFenced
// (retryable): blocking would let live transactions hold-and-wait against a
// fence only that node's recovery can lift.
//
// budgetMicros is the requester's remaining deadline budget (0 = none): the
// wait is capped at min(budget, backstop), and a budget-capped expiry
// returns ErrDeadlineExceeded — non-retryable, unlike the backstop's
// ErrLockTimeout — so the transaction's end-to-end bound holds even while
// it is queued here.
func (s *PLockServer) acquire(node common.NodeID, pg common.PageID, mode Mode, budgetMicros uint32) error {
	st := s.stripeOf(pg)
	if lim := s.admit.Load(); lim > 0 {
		if st.inflight.Add(1) > lim {
			st.inflight.Add(-1)
			s.Sheds.Inc()
			return fmt.Errorf("plock: stripe of page %d over admission bound %d: %w",
				pg, lim, common.ErrOverloaded)
		}
		defer st.inflight.Add(-1)
	}
	st.mu.Lock()
	e := st.entry(pg)
	if held, ok := e.holders[node]; ok && held.Covers(mode) {
		// Idempotent re-grant (e.g. the release raced a new acquire,
		// or a recovering incarnation reclaiming its fenced lock).
		st.mu.Unlock()
		return nil
	}
	for holder, held := range e.holders {
		// A fence only ever blocks OTHER nodes: the crashed holder's own
		// recovering incarnation reclaims through the idempotent path
		// above, and two dead nodes must not wait on each other.
		if holder != node && s.isDead(holder) && !compatible(held, mode) {
			st.mu.Unlock()
			return fmt.Errorf("plock: page %d held by crashed node %d: %w",
				pg, holder, common.ErrFenced)
		}
	}
	w := &plockWaiter{node: node, mode: mode, granted: make(chan struct{})}
	e.queue = append(e.queue, w)
	revokees := s.tryGrantLocked(e)
	st.mu.Unlock()
	s.sendRevokes([]pendingRevokes{{pg, revokees}})

	wait := plockWaitBackstop
	deadlineBound := false
	if budgetMicros > 0 {
		if b := time.Duration(budgetMicros) * time.Microsecond; b < wait {
			wait = b
			deadlineBound = true
		}
	}
	deadline := time.Now().Add(wait)
	for {
		tick := plockRevokeResend
		if rem := time.Until(deadline); rem < tick {
			tick = rem
		}
		select {
		case <-w.granted:
			return w.err
		case <-time.After(tick):
		}
		if time.Now().Before(deadline) {
			// Still waiting: the negotiation sent when we queued (or the
			// release answering it) may have been lost to a link fault.
			// Re-collect for the current head — the time-based suppression
			// in collectRevokeesLocked makes this at most one redelivery
			// per holder per resend interval, and redelivery is idempotent.
			st.mu.Lock()
			var revokees []revokeTarget
			if len(e.queue) > 0 {
				revokees = s.collectRevokeesLocked(e, e.queue[0])
			}
			st.mu.Unlock()
			s.sendRevokes([]pendingRevokes{{pg, revokees}})
			continue
		}
		// Expired: remove the waiter if still queued; if the grant raced
		// the timeout, accept it.
		st.mu.Lock()
		for i, q := range e.queue {
			if q == w {
				e.queue = append(e.queue[:i], e.queue[i+1:]...)
				st.mu.Unlock()
				if deadlineBound {
					return fmt.Errorf("plock: page %d mode %v for node %d: wait budget spent: %w",
						pg, mode, node, common.ErrDeadlineExceeded)
				}
				return fmt.Errorf("plock: page %d mode %v for node %d: %w",
					pg, mode, node, common.ErrLockTimeout)
			}
		}
		st.mu.Unlock()
		<-w.granted
		return w.err
	}
}

// MarkDead records that node crashed: its retained PLocks become a fence
// that fails conflicting requests fast, and waiters already blocked behind
// it are failed so they release what they hold and retry.
func (s *PLockServer) MarkDead(node common.NodeID) {
	n := common.NodeID(node)
	s.deadMu.Lock()
	s.dead[n] = true
	s.deadMu.Unlock()
	var pending []pendingRevokes
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		for pg, e := range st.entries {
			if _, holds := e.holders[n]; !holds {
				continue
			}
			kept := e.queue[:0]
			for _, w := range e.queue {
				if w.node != n && !compatible(e.holders[n], w.mode) {
					w.err = fmt.Errorf("plock: page %d held by crashed node %d: %w",
						pg, n, common.ErrFenced)
					close(w.granted)
					continue
				}
				kept = append(kept, w)
			}
			e.queue = kept
			pending = append(pending, pendingRevokes{pg, s.tryGrantLocked(e)})
		}
		st.mu.Unlock()
	}
	s.sendRevokes(pending)
}

// pendingRevokes pairs a page with its queued negotiation messages.
type pendingRevokes struct {
	pg      common.PageID
	targets []revokeTarget
}

// ClearDead lifts the dead mark after the node's recovery completed.
func (s *PLockServer) ClearDead(node common.NodeID) {
	s.deadMu.Lock()
	delete(s.dead, common.NodeID(node))
	s.deadMu.Unlock()
}

// plockWaitBackstop bounds server-side waits. It is intentionally generous:
// engine-level acquisition order makes PLock deadlocks impossible, so this
// only fires on bugs or crashed holders not yet dropped.
const plockWaitBackstop = 10 * time.Second

// revokeTarget is one negotiation message to send once the table lock is
// released.
type revokeTarget struct {
	holder   common.NodeID
	wantNode common.NodeID
	wantMode Mode
}

// sendRevokes delivers negotiation messages outside the table locks (the
// holder's revoke handler may synchronously call back with a release). All
// pages bound for the same holder coalesce into ONE opRevokeN RPC — the
// doorbell-batching analogue for negotiation traffic, which matters when a
// release or crash cleanup unblocks waiters on many pages at once.
// Revoke delivery is retried on transient fabric faults: a lost revoke
// would strand the waiter until the lazy holder releases on its own, and
// re-delivery is idempotent (it only sets the holder's revokePending flag).
func (s *PLockServer) sendRevokes(pending []pendingRevokes) {
	var byHolder map[common.NodeID][]revokeItem
	for _, p := range pending {
		for _, t := range p.targets {
			if byHolder == nil {
				byHolder = make(map[common.NodeID][]revokeItem)
			}
			byHolder[t.holder] = append(byHolder[t.holder],
				revokeItem{pg: p.pg, wantNode: t.wantNode, wantMode: t.wantMode})
		}
	}
	for holder, items := range byHolder {
		s.Negotiations.Inc()
		var req []byte
		if len(items) == 1 {
			req = plockReqBuf(opRevoke, items[0].wantNode, items[0].pg, items[0].wantMode)
		} else {
			req = revokeNBuf(items)
		}
		holder := holder
		_ = common.Retry(s.retry, func() error {
			_, err := s.fabric.Call(holder, ServiceRevoke, req)
			return err
		})
	}
}

// collectRevokeesLocked returns the holders that conflict with the queue
// head and have not yet been sent a negotiation message.
func (s *PLockServer) collectRevokeesLocked(e *plockEntry, head *plockWaiter) []revokeTarget {
	var out []revokeTarget
	for holder, held := range e.holders {
		if holder == head.node || s.isDead(holder) {
			continue // dead holders cannot respond; the fence handles them
		}
		if !compatible(held, head.mode) {
			if last, sent := e.revoked[holder]; !sent || time.Since(last) > plockRevokeResend {
				e.revoked[holder] = time.Now()
				out = append(out, revokeTarget{holder: holder, wantNode: head.node, wantMode: head.mode})
			}
		}
	}
	return out
}

// tryGrantLocked grants queue-head waiters while they are compatible with
// the remaining holders (and with each other: a run of S waiters is granted
// together). When it stops with a blocked head, it returns the negotiation
// messages the caller must send after unlocking — computed HERE, on every
// state change, because a waiter that becomes head only after earlier
// grants would otherwise never trigger negotiation and the queue would
// wedge behind a lazy holder. Callers hold the entry's stripe mutex.
func (s *PLockServer) tryGrantLocked(e *plockEntry) []revokeTarget {
	for len(e.queue) > 0 {
		w := e.queue[0]
		ok := true
		for holder, held := range e.holders {
			if holder == w.node {
				// The node's own (possibly weaker) holdership never
				// blocks its request: upgrades don't occur in the
				// live protocol (clients release before acquiring a
				// stronger mode), so this only fires when a
				// recovering incarnation reclaims its crashed
				// predecessor's lock in a stronger mode.
				continue
			}
			if !compatible(held, w.mode) {
				ok = false
				break
			}
		}
		if !ok {
			return s.collectRevokeesLocked(e, w)
		}
		if cur, isHolder := e.holders[w.node]; !isHolder || w.mode > cur {
			e.holders[w.node] = w.mode
		}
		delete(e.revoked, w.node)
		e.queue = e.queue[1:]
		s.Grants.Inc()
		close(w.granted)
	}
	return nil
}

// release removes node's hold on pg and grants any unblocked waiters.
func (s *PLockServer) release(node common.NodeID, pg common.PageID) {
	st := s.stripeOf(pg)
	st.mu.Lock()
	revokees := s.releaseOneLocked(st, node, pg)
	st.mu.Unlock()
	s.sendRevokes([]pendingRevokes{{pg, revokees}})
}

// releaseOneLocked is the stripe-locked body of release.
func (s *PLockServer) releaseOneLocked(st *plockStripe, node common.NodeID, pg common.PageID) []revokeTarget {
	e := st.entries[pg]
	if e == nil {
		return nil
	}
	delete(e.holders, node)
	delete(e.revoked, node)
	revokees := s.tryGrantLocked(e)
	if len(e.holders) == 0 && len(e.queue) == 0 {
		delete(st.entries, pg)
	}
	return revokees
}

// releaseN removes node's hold on every page in one table pass, grouping
// pages by stripe so each stripe mutex is taken once, then sends all
// resulting negotiation messages coalesced per holder.
func (s *PLockServer) releaseN(node common.NodeID, pages []common.PageID) {
	byStripe := make(map[*plockStripe][]common.PageID)
	for _, pg := range pages {
		st := s.stripeOf(pg)
		byStripe[st] = append(byStripe[st], pg)
	}
	var pending []pendingRevokes
	for st, pgs := range byStripe {
		st.mu.Lock()
		for _, pg := range pgs {
			pending = append(pending, pendingRevokes{pg, s.releaseOneLocked(st, node, pg)})
		}
		st.mu.Unlock()
	}
	s.sendRevokes(pending)
}

// dropNode force-releases everything node holds or awaits (crash cleanup).
func (s *PLockServer) dropNode(node uint16) {
	n := common.NodeID(node)
	s.deadMu.Lock()
	delete(s.dead, n)
	s.deadMu.Unlock()
	var pending []pendingRevokes
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		for pg, e := range st.entries {
			delete(e.holders, n)
			delete(e.revoked, n)
			filtered := e.queue[:0]
			for _, w := range e.queue {
				if w.node == n {
					close(w.granted) // unblock; the caller's fabric call fails anyway
					continue
				}
				filtered = append(filtered, w)
			}
			e.queue = filtered
			pending = append(pending, pendingRevokes{pg, s.tryGrantLocked(e)})
			if len(e.holders) == 0 && len(e.queue) == 0 {
				delete(st.entries, pg)
			}
		}
		st.mu.Unlock()
	}
	s.sendRevokes(pending)
}

// DebugDump renders the lock table state (diagnostics).
func (s *PLockServer) DebugDump() string {
	out := ""
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		for pg, e := range st.entries {
			out += fmt.Sprintf("page %d: holders=%v revoked=%v queue=[", pg, e.holders, e.revoked)
			for _, w := range e.queue {
				out += fmt.Sprintf("{n%d %v} ", w.node, w.mode)
			}
			out += "]\n"
		}
		st.mu.Unlock()
	}
	return out
}

// HeldBy returns every page node currently holds and in which mode. During
// takeover this is the fence set: the only pages whose latest contents may
// exist solely in the dead node's log (flush-before-release guarantees
// everything else was pushed before its lock left the node).
func (s *PLockServer) HeldBy(node common.NodeID) map[common.PageID]Mode {
	out := make(map[common.PageID]Mode)
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		for pg, e := range st.entries {
			if m, ok := e.holders[node]; ok {
				out[pg] = m
			}
		}
		st.mu.Unlock()
	}
	return out
}

// QueuedWaiters returns the number of blocked acquire waiters across all
// stripes (tests and overload diagnostics).
func (s *PLockServer) QueuedWaiters() int {
	n := 0
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		for _, e := range st.entries {
			n += len(e.queue)
		}
		st.mu.Unlock()
	}
	return n
}

// HolderCount returns the number of pages with at least one holder (tests).
func (s *PLockServer) HolderCount() int {
	n := 0
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		for _, e := range st.entries {
			if len(e.holders) > 0 {
				n++
			}
		}
		st.mu.Unlock()
	}
	return n
}

// --- client ----------------------------------------------------------------

// RevokeFunc is called by the PLock client when PMFS asks the node to give a
// page back. The engine uses it to flush the dirty page to the DBP (forcing
// logs first) before the lock leaves the node (§4.2/§4.3.1). It runs before
// the release RPC is sent. A non-nil error vetoes the release of that page:
// the hold is retained server-side, because handing the lock to a peer whose
// DBP image is missing the flush would fork the page's lineage. The one
// non-transient source of flush failure is this node crashing mid-revoke —
// retaining the hold is then exactly what keeps the page fenced until the
// restarted incarnation replays it.
type RevokeFunc func(pg common.PageID, held Mode) error

// PLockClient is a node's PLock manager: it tracks locks the node holds,
// reference counts from local threads, lazy retention, and pending revokes.
type PLockClient struct {
	node   common.NodeID
	fabric rdma.Conn
	cfg    Config
	retry  common.RetryPolicy
	stamp  *common.EpochStamp

	onRevoke RevokeFunc
	closed   atomic.Bool
	tr       *trace.Tracer

	mu    sync.Mutex
	locks map[common.PageID]*localPLock
	// releasing tracks pages with an in-flight release RPC; a fresh
	// acquire for such a page must wait or the server could grant
	// against holdership the release is about to remove.
	releasing map[common.PageID]bool
	relCond   *sync.Cond

	// LocalGrants / RemoteAcquires measure the lazy-release fast path.
	LocalGrants    metrics.Counter
	RemoteAcquires metrics.Counter
}

type localPLock struct {
	mode          Mode
	refs          int
	revokePending bool
	// acquiring serializes remote acquisition for the same page from
	// multiple local threads.
	acquiring bool
	cond      *sync.Cond
}

// NewPLockClient registers the node's revoke service and returns the client.
func NewPLockClient(ep *rdma.Endpoint, fabric *rdma.Fabric, cfg Config) *PLockClient {
	cfg.fill()
	c := &PLockClient{
		node:      ep.Node(),
		fabric:    fabric.From(ep.Node()),
		retry:     common.DefaultRetryPolicy(),
		cfg:       cfg,
		locks:     make(map[common.PageID]*localPLock),
		releasing: make(map[common.PageID]bool),
	}
	c.relCond = sync.NewCond(&c.mu)
	ep.Serve(ServiceRevoke, c.handleRevoke)
	return c
}

// SetRevokeHandler installs the engine's flush-before-release hook. Must be
// called before the node serves traffic.
func (c *PLockClient) SetRevokeHandler(f RevokeFunc) { c.onRevoke = f }

// SetRetryPolicy overrides the transient-fault retry policy (chaos
// ablations disable it).
func (c *PLockClient) SetRetryPolicy(p common.RetryPolicy) { c.retry = p }

// SetEpochStamp makes the client stamp requests with the node's incarnation
// epoch so PMFS can fence evicted incarnations.
func (c *PLockClient) SetEpochStamp(s *common.EpochStamp) { c.stamp = s }

// SetTracer attaches the node's commit-path tracer (nil disables). Every
// successful acquire is observed as StagePLockLocal (lazy-retention grant)
// or StagePLockRemote (Lock Fusion RPC, revoke waits included).
func (c *PLockClient) SetTracer(t *trace.Tracer) { c.tr = t }

func (c *PLockClient) handleRevoke(req []byte) ([]byte, error) {
	if len(req) < 1 {
		return nil, common.ErrShortBuffer
	}
	var pages []common.PageID
	switch req[0] {
	case opRevoke:
		if len(req) < 12 {
			return nil, common.ErrShortBuffer
		}
		pages = []common.PageID{common.PageID(binary.LittleEndian.Uint64(req[3:]))}
	case opRevokeN:
		if len(req) < 3 {
			return nil, common.ErrShortBuffer
		}
		count := int(binary.LittleEndian.Uint16(req[1:]))
		if len(req) < 3+11*count {
			return nil, common.ErrShortBuffer
		}
		pages = make([]common.PageID, count)
		for i := 0; i < count; i++ {
			pages[i] = common.PageID(binary.LittleEndian.Uint64(req[3+11*i:]))
		}
	default:
		return nil, fmt.Errorf("plock: unknown revoke op %d", req[0])
	}
	// Mark every page's revoke pending under ONE mutex hold, collecting the
	// idle ones we must hand back ourselves; busy pages (refs>0 or a local
	// thread mid-acquisition) hand over at their next unref.
	c.mu.Lock()
	var idle []relPage
	for _, pg := range pages {
		l := c.locks[pg]
		if l == nil {
			// Already released (race with our own release): nothing to do.
			continue
		}
		l.revokePending = true
		if l.refs > 0 || l.acquiring {
			continue
		}
		idle = append(idle, relPage{pg, l.mode})
		delete(c.locks, pg)
		c.releasing[pg] = true
	}
	c.mu.Unlock()
	c.releaseToServerN(idle)
	return nil, nil
}

// Acquire obtains the PLock for pg in the given mode for one local user.
// The fast path grants locally when the node already holds a covering mode
// and no negotiation is pending (§4.3.1); otherwise it RPCs Lock Fusion.
func (c *PLockClient) Acquire(pg common.PageID, mode Mode) error {
	_, err := c.AcquireEx(pg, mode)
	return err
}

// AcquireEx is Acquire plus classification: remote reports whether the
// grant needed a Lock Fusion RPC (slow path) rather than lazy retention.
func (c *PLockClient) AcquireEx(pg common.PageID, mode Mode) (remote bool, err error) {
	return c.AcquireDeadlineEx(pg, mode, common.Deadline{})
}

// AcquireDeadlineEx is AcquireEx bounded by the caller's deadline: the
// remaining budget rides the acquire RPC so the SERVER caps the queue wait
// (returning ErrDeadlineExceeded on expiry), and the retry loop around the
// RPC stops at the budget too. The local fast path is unaffected — a lock
// the node already holds costs no wait. A zero deadline is unbounded.
func (c *PLockClient) AcquireDeadlineEx(pg common.PageID, mode Mode, dl common.Deadline) (remote bool, err error) {
	if c.closed.Load() {
		return false, fmt.Errorf("plock: node %d client: %w", c.node, common.ErrClosed)
	}
	tok := c.tr.Start()
	c.mu.Lock()
	for {
		if c.closed.Load() {
			c.mu.Unlock()
			return false, fmt.Errorf("plock: node %d client: %w", c.node, common.ErrClosed)
		}
		if c.releasing[pg] {
			c.relCond.Wait()
			continue
		}
		l := c.locks[pg]
		if l == nil {
			l = &localPLock{}
			l.cond = sync.NewCond(&c.mu)
			c.locks[pg] = l
		}
		if l.cond == nil {
			l.cond = sync.NewCond(&c.mu)
		}
		// Fast path: covering mode held, no revoke pending, and lazy
		// retention enabled (a fresh grant always passes through the
		// server, so refs>0 grants are always legal to share).
		if l.mode.Covers(mode) && !l.revokePending && (!c.cfg.DisableLazyRelease || l.refs > 0) {
			l.refs++
			c.mu.Unlock()
			c.LocalGrants.Inc()
			c.tr.Observe(trace.StagePLockLocal, tok)
			return false, nil
		}
		if l.revokePending || l.acquiring || (l.mode != 0 && !l.mode.Covers(mode)) {
			// Someone must first finish releasing or acquiring;
			// wait for the state to settle. (A non-covering held
			// mode means local S holders must drain before we can
			// fetch X — the no-upgrade rule.)
			if l.refs == 0 && l.revokePending && !l.acquiring {
				// We are the ones who must complete the revoke.
				mode0 := l.mode
				delete(c.locks, pg)
				c.releasing[pg] = true
				c.mu.Unlock()
				c.releaseToServer(pg, mode0)
				c.mu.Lock()
				continue
			}
			if l.refs == 0 && l.mode != 0 && !l.mode.Covers(mode) && !l.acquiring {
				// Voluntarily give back the weaker lock, then
				// acquire the stronger one fresh.
				mode0 := l.mode
				delete(c.locks, pg)
				c.releasing[pg] = true
				c.mu.Unlock()
				c.releaseToServer(pg, mode0)
				c.mu.Lock()
				continue
			}
			l.cond.Wait()
			continue
		}
		// Slow path: fetch from the server.
		l.acquiring = true
		c.mu.Unlock()
		c.RemoteAcquires.Inc()
		// The server's acquire path is idempotent (a holder re-acquiring is
		// re-granted), so lost requests and lost responses both retry safely.
		// The wait budget is re-derived per attempt: a retry after backoff
		// must tell the server how much budget is actually left.
		fab := c.fabric.WithDeadline(dl)
		err := common.RetryDeadline(c.retry, dl, func() error {
			_, e := fab.Call(common.PMFSNode, ServicePLock,
				c.stamp.Stamp(plockAcquireReqBuf(c.node, pg, mode, deadlineBudgetMicros(dl))))
			return e
		})
		c.mu.Lock()
		l.acquiring = false
		if err != nil {
			if l.refs == 0 && l.mode == 0 {
				delete(c.locks, pg)
			}
			l.cond.Broadcast()
			c.mu.Unlock()
			return true, err
		}
		if mode > l.mode {
			l.mode = mode
		}
		l.refs++
		l.cond.Broadcast()
		c.mu.Unlock()
		c.tr.Observe(trace.StagePLockRemote, tok)
		return true, nil
	}
}

// Release drops one local reference. With lazy retention the node keeps the
// PLock; if PMFS asked for it back (or lazy retention is disabled), the last
// unref flushes via the revoke hook and releases it to the server.
func (c *PLockClient) Release(pg common.PageID) {
	c.mu.Lock()
	l := c.locks[pg]
	if l == nil || l.refs == 0 {
		c.mu.Unlock()
		if c.closed.Load() {
			// A zombie thread of a crashed node racing teardown; its
			// holdership is reclaimed by recovery's DropNodePLock.
			return
		}
		panic(fmt.Sprintf("plock: release of un-held page %d on node %d", pg, c.node))
	}
	l.refs--
	if l.refs > 0 {
		c.mu.Unlock()
		return
	}
	if !l.revokePending && !c.cfg.DisableLazyRelease {
		l.cond.Broadcast()
		c.mu.Unlock()
		return
	}
	mode := l.mode
	delete(c.locks, pg)
	c.releasing[pg] = true
	l.cond.Broadcast()
	c.mu.Unlock()
	c.releaseToServer(pg, mode)
}

// releaseToServer runs the engine flush hook and returns one lock to PMFS.
func (c *PLockClient) releaseToServer(pg common.PageID, mode Mode) {
	c.releaseToServerN([]relPage{{pg, mode}})
}

// releaseToServerN runs the engine flush hook for every page, then returns
// the whole set to PMFS in ONE release RPC. Callers must have removed each
// page's map entry and set releasing[pg] under c.mu before calling, so no
// fresh acquire can overtake the release. The flush hooks all complete
// BEFORE the RPC is sent: the server never learns of a release whose page
// image is still mid-flush, which is what makes batching safe against a
// concurrent re-grant to another node.
func (c *PLockClient) releaseToServerN(pages []relPage) {
	if len(pages) == 0 {
		return
	}
	if c.closed.Load() {
		// A crashed node's zombie goroutine must not mutate server
		// state that now belongs to the node's restarted incarnation.
		c.mu.Lock()
		for _, p := range pages {
			delete(c.releasing, p.pg)
		}
		c.relCond.Broadcast()
		c.mu.Unlock()
		return
	}
	if c.onRevoke != nil {
		kept := pages[:0]
		var vetoed []relPage
		for _, p := range pages {
			if err := c.onRevoke(p.pg, p.mode); err != nil {
				// Flush failed: the page image never reached the DBP,
				// so the lock must NOT leave this node. Dropping the
				// page from the release batch retains the server-side
				// hold; if the failure is a crash of this node, the
				// retained hold is what MarkDead fences until the
				// restarted incarnation replays the page.
				vetoed = append(vetoed, p)
				continue
			}
			kept = append(kept, p)
		}
		pages = kept
		if len(vetoed) > 0 {
			c.mu.Lock()
			for _, p := range vetoed {
				delete(c.releasing, p.pg)
			}
			c.relCond.Broadcast()
			c.mu.Unlock()
		}
		if len(pages) == 0 {
			return
		}
	}
	// A dropped release would leave PMFS believing we still hold the locks,
	// stalling every waiter until the backstop: retry until delivered. The
	// batch is idempotent (releasing an un-held page is a no-op), so a
	// duplicate delivery after a lost response is harmless.
	var req []byte
	if len(pages) == 1 {
		req = plockReqBuf(opPLockRelease, c.node, pages[0].pg, pages[0].mode)
	} else {
		req = plockReleaseNBuf(c.node, pages)
	}
	_ = common.Retry(c.retry, func() error {
		_, err := c.fabric.Call(common.PMFSNode, ServicePLock, c.stamp.Stamp(req))
		return err
	})
	c.mu.Lock()
	for _, p := range pages {
		delete(c.releasing, p.pg)
		if l := c.locks[p.pg]; l != nil && l.cond != nil {
			l.cond.Broadcast()
		}
	}
	c.relCond.Broadcast()
	c.mu.Unlock()
}

// ReleaseAll force-releases every retained lock (shutdown / ablation /
// cache-drop) in one batched RPC. Locks with live references are skipped.
func (c *PLockClient) ReleaseAll() {
	c.mu.Lock()
	var idle []relPage
	for pg, l := range c.locks {
		if l.refs == 0 {
			idle = append(idle, relPage{pg, l.mode})
			delete(c.locks, pg)
			c.releasing[pg] = true
		}
	}
	c.mu.Unlock()
	c.releaseToServerN(idle)
}

// Retained returns how many locks the client currently holds (the
// lazy-release cache plus any referenced locks) — the quantity a graceful
// drain must bring to zero before it fences the incarnation.
func (c *PLockClient) Retained() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.locks)
}

// Close fences the client after a node crash: no further acquisitions or
// server releases are issued.
func (c *PLockClient) Close() { c.closed.Store(true) }

// HeldMode returns the mode the node currently holds for pg (0 if none).
func (c *PLockClient) HeldMode(pg common.PageID) Mode {
	c.mu.Lock()
	defer c.mu.Unlock()
	if l := c.locks[pg]; l != nil {
		return l.mode
	}
	return 0
}

// RevokePending reports whether PMFS has asked for pg back (a peer is
// waiting on it). The engine uses it to decide which committed pages are
// worth pushing to the DBP eagerly.
func (c *PLockClient) RevokePending(pg common.PageID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	l := c.locks[pg]
	return l != nil && l.revokePending
}
