package lockfusion

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"polardbmp/internal/common"
)

// TestPLockStripedInterleavedStress hammers the striped PLock server from 8
// nodes with interleaved acquires, revokes (X conflicts force them), single
// releases and batched ReleaseAll, over enough pages to touch every stripe.
// Run under -race it checks the stripe locking, the separate dead-map lock
// and the batched revoke/release wire paths for data races; the X-holder
// counters check mutual exclusion survives the striping.
func TestPLockStripedInterleavedStress(t *testing.T) {
	const nodes = 8
	tc := newTestCluster(t, nodes, Config{})
	const pages = 4 * plockStripes // every stripe holds several entries
	var counters [pages]int64
	var wg sync.WaitGroup
	for n := 0; n < nodes; n++ {
		for th := 0; th < 2; th++ {
			wg.Add(1)
			go func(c *PLockClient, seed int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(seed)))
				for i := 0; i < 150; i++ {
					pg := common.PageID(rng.Intn(pages) + 1)
					if rng.Intn(3) == 0 {
						if err := c.Acquire(pg, ModeS); err != nil {
							t.Error(err)
							return
						}
						if v := atomic.LoadInt64(&counters[pg-1]); v != 0 {
							t.Errorf("page %d: S granted with %d X holders", pg, v)
						}
						c.Release(pg)
					} else {
						if err := c.Acquire(pg, ModeX); err != nil {
							t.Error(err)
							return
						}
						if v := atomic.AddInt64(&counters[pg-1], 1); v != 1 {
							t.Errorf("page %d: %d concurrent X holders", pg, v)
						}
						atomic.AddInt64(&counters[pg-1], -1)
						c.Release(pg)
					}
					if rng.Intn(40) == 0 {
						c.ReleaseAll() // batched release races in-flight revokes
					}
				}
			}(tc.pl[n], n*131+th*17)
		}
	}
	wg.Wait()
	for n := 0; n < nodes; n++ {
		tc.pl[n].ReleaseAll()
	}
	if got := tc.srv.PLock.HolderCount(); got != 0 {
		t.Fatalf("after ReleaseAll everywhere, %d pages still held:\n%s",
			got, tc.srv.PLock.DebugDump())
	}
}

// TestBatchedReleaseNotBeforeFlush pins the batching safety invariant: a
// batched release must not tell the server about a page whose revoke flush
// hook is still running, because the server would re-grant the page to
// another node that could then read a stale image. Node A holds several
// pages whose (slow) flush hooks record completion; node B's concurrent
// acquires — which arrive as one coalesced revoke batch — must each observe
// their page's flush finished before the grant returns, even while A's own
// ReleaseAll races the revoke for the same pages.
func TestBatchedReleaseNotBeforeFlush(t *testing.T) {
	tc := newTestCluster(t, 2, Config{})
	a, b := tc.pl[0], tc.pl[1]
	const pages = 6
	var flushed, inFlush [pages]atomic.Bool
	a.SetRevokeHandler(func(pg common.PageID, held Mode) error {
		i := int(pg) - 1
		inFlush[i].Store(true)
		time.Sleep(2 * time.Millisecond) // widen the mid-flush window
		inFlush[i].Store(false)
		flushed[i].Store(true)
		return nil
	})
	for pg := common.PageID(1); pg <= pages; pg++ {
		if err := a.Acquire(pg, ModeX); err != nil {
			t.Fatal(err)
		}
		a.Release(pg) // lazy retention: A still holds X at the node level
	}

	var wg sync.WaitGroup
	for pg := common.PageID(1); pg <= pages; pg++ {
		wg.Add(1)
		go func(pg common.PageID) {
			defer wg.Done()
			if err := b.Acquire(pg, ModeX); err != nil {
				t.Error(err)
				return
			}
			if inFlush[int(pg)-1].Load() {
				t.Errorf("page %d granted while A's flush hook mid-flight", pg)
			}
			if !flushed[int(pg)-1].Load() {
				t.Errorf("page %d granted before A's flush hook completed", pg)
			}
			b.Release(pg)
		}(pg)
	}
	// A's own batched release races the incoming revoke batch; whichever
	// path wins must run the flush hooks before the server hears anything.
	go a.ReleaseAll()
	wg.Wait()
}
