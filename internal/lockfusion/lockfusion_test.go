package lockfusion

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"polardbmp/internal/common"
	"polardbmp/internal/rdma"
	"polardbmp/internal/txfusion"
)

type testCluster struct {
	fabric *rdma.Fabric
	srv    *Server
	tf     []*txfusion.Client
	pl     []*PLockClient
	rl     []*RLockClient
}

func newTestCluster(t testing.TB, n int, cfg Config) *testCluster {
	t.Helper()
	fabric := rdma.NewFabric(rdma.Latency{})
	pmfs := fabric.Register(common.PMFSNode)
	txfusion.NewServer(pmfs, fabric)
	tc := &testCluster{fabric: fabric, srv: NewServer(pmfs, fabric)}
	for i := 0; i < n; i++ {
		ep := fabric.Register(common.NodeID(i + 1))
		tf := txfusion.NewClient(ep, fabric, txfusion.Config{})
		tc.tf = append(tc.tf, tf)
		tc.pl = append(tc.pl, NewPLockClient(ep, fabric, cfg))
		tc.rl = append(tc.rl, NewRLockClient(ep, fabric, tf, cfg))
	}
	return tc
}

func TestPLockBasic(t *testing.T) {
	tc := newTestCluster(t, 1, Config{})
	c := tc.pl[0]
	if err := c.Acquire(1, ModeX); err != nil {
		t.Fatal(err)
	}
	if c.HeldMode(1) != ModeX {
		t.Fatalf("held mode = %v", c.HeldMode(1))
	}
	c.Release(1)
	// Lazy retention: still held at node level.
	if c.HeldMode(1) != ModeX {
		t.Fatal("lazy release dropped the lock")
	}
	// Local re-grant must not hit the server again.
	before := tc.srv.PLock.Grants.Load()
	if err := c.Acquire(1, ModeS); err != nil {
		t.Fatal(err)
	}
	c.Release(1)
	if tc.srv.PLock.Grants.Load() != before {
		t.Fatal("local re-grant went to the server")
	}
	if c.LocalGrants.Load() == 0 {
		t.Fatal("local grant not counted")
	}
}

func TestPLockSharedAcrossNodes(t *testing.T) {
	tc := newTestCluster(t, 2, Config{})
	if err := tc.pl[0].Acquire(5, ModeS); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- tc.pl[1].Acquire(5, ModeS) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("S/S across nodes blocked")
	}
	tc.pl[0].Release(5)
	tc.pl[1].Release(5)
}

// A negotiation message lost to a link partition must be re-sent once the
// link heals: the blocked waiter re-collects stale revokes on its resend
// tick, so a lazy holder that never heard the first revoke still releases.
// Before the resend existed, the one-shot revoked mark wedged the page until
// the wait backstop.
func TestPLockRevokeResendAfterPartition(t *testing.T) {
	tc := newTestCluster(t, 2, Config{})
	var revoked atomic.Int32
	tc.pl[0].SetRevokeHandler(func(pg common.PageID, held Mode) error {
		revoked.Add(1)
		return nil
	})
	if err := tc.pl[0].Acquire(9, ModeX); err != nil {
		t.Fatal(err)
	}
	tc.pl[0].Release(9) // lazily retained

	// Partition the server→node-1 revoke path: delivery retries exhaust in
	// milliseconds, so the first negotiation is lost outright.
	var partitioned atomic.Bool
	partitioned.Store(true)
	tc.fabric.SetInjector(func(op common.FaultOp) common.FaultDecision {
		if partitioned.Load() && op.Name == ServiceRevoke && op.Dst == 1 {
			return common.FaultDecision{Err: common.ErrUnreachable}
		}
		return common.FaultDecision{}
	})

	done := make(chan error, 1)
	go func() { done <- tc.pl[1].Acquire(9, ModeX) }()

	// The revoke is lost while the partition holds; the waiter must not be
	// granted (node 1 still holds X and was never asked to release).
	select {
	case err := <-done:
		t.Fatalf("acquire finished during the partition: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
	if revoked.Load() != 0 {
		t.Fatalf("revoke delivered through the partition (%d)", revoked.Load())
	}

	partitioned.Store(false)
	// Heal: the waiter's next resend tick re-collects the stale revoke and
	// this time it reaches node 1, which releases its lazy hold.
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * plockRevokeResend):
		t.Fatal("waiter still blocked after heal: lost revoke never re-sent")
	}
	if revoked.Load() == 0 {
		t.Fatal("revoke handler never ran after heal")
	}
	tc.pl[1].Release(9)
}

func TestPLockConflictAndNegotiation(t *testing.T) {
	tc := newTestCluster(t, 2, Config{})
	var revoked atomic.Int32
	tc.pl[0].SetRevokeHandler(func(pg common.PageID, held Mode) error {
		revoked.Add(1)
		return nil
	})
	if err := tc.pl[0].Acquire(9, ModeX); err != nil {
		t.Fatal(err)
	}
	tc.pl[0].Release(9) // lazily retained

	// Node 2 wants X: PMFS must negotiate node 1's lazy X away.
	if err := tc.pl[1].Acquire(9, ModeX); err != nil {
		t.Fatal(err)
	}
	if revoked.Load() != 1 {
		t.Fatalf("revoke hook ran %d times, want 1", revoked.Load())
	}
	if tc.pl[0].HeldMode(9) != 0 {
		t.Fatal("node 1 still holds the PLock after negotiation")
	}
	tc.pl[1].Release(9)
	if tc.srv.PLock.Negotiations.Load() == 0 {
		t.Fatal("negotiation not counted")
	}
}

func TestPLockBusyHolderReleasesOnUnref(t *testing.T) {
	tc := newTestCluster(t, 2, Config{})
	if err := tc.pl[0].Acquire(3, ModeX); err != nil {
		t.Fatal(err) // node 1 busy (refs=1)
	}
	got := make(chan error, 1)
	go func() { got <- tc.pl[1].Acquire(3, ModeX) }()
	// Node 2's request must stay blocked while node 1 is using the page.
	select {
	case err := <-got:
		t.Fatalf("X granted while conflicting X in use (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	tc.pl[0].Release(3) // refs drop to 0 with a revoke pending -> release
	select {
	case err := <-got:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("lock never handed over")
	}
	tc.pl[1].Release(3)
}

func TestPLockNoLazyRelease(t *testing.T) {
	tc := newTestCluster(t, 1, Config{DisableLazyRelease: true})
	c := tc.pl[0]
	if err := c.Acquire(1, ModeX); err != nil {
		t.Fatal(err)
	}
	c.Release(1)
	if c.HeldMode(1) != 0 {
		t.Fatal("lock retained with lazy release disabled")
	}
	if tc.srv.PLock.HolderCount() != 0 {
		t.Fatal("server still records a holder")
	}
}

func TestPLockXThenSLocalDowngradeUse(t *testing.T) {
	tc := newTestCluster(t, 1, Config{})
	c := tc.pl[0]
	if err := c.Acquire(1, ModeX); err != nil {
		t.Fatal(err)
	}
	c.Release(1)
	// Lazy X covers a local S request.
	if err := c.Acquire(1, ModeS); err != nil {
		t.Fatal(err)
	}
	c.Release(1)
}

func TestPLockSLocalThenXUpgradesViaRelease(t *testing.T) {
	tc := newTestCluster(t, 1, Config{})
	c := tc.pl[0]
	if err := c.Acquire(1, ModeS); err != nil {
		t.Fatal(err)
	}
	c.Release(1) // lazy S retained
	// X on a lazily-held S: client gives S back, then fetches X.
	if err := c.Acquire(1, ModeX); err != nil {
		t.Fatal(err)
	}
	if c.HeldMode(1) != ModeX {
		t.Fatalf("held = %v", c.HeldMode(1))
	}
	c.Release(1)
}

func TestPLockFIFONoStarvation(t *testing.T) {
	tc := newTestCluster(t, 3, Config{})
	// Node 1 holds X lazily. Nodes 2 and 3 queue for X; both must get it.
	if err := tc.pl[0].Acquire(7, ModeX); err != nil {
		t.Fatal(err)
	}
	tc.pl[0].Release(7)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := tc.pl[i+1].Acquire(7, ModeX); err != nil {
				errs[i] = err
				return
			}
			time.Sleep(10 * time.Millisecond)
			tc.pl[i+1].Release(7)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i+2, err)
		}
	}
}

func TestPLockConcurrentStress(t *testing.T) {
	tc := newTestCluster(t, 4, Config{})
	const pages = 8
	var counters [pages]int64
	var wg sync.WaitGroup
	for n := 0; n < 4; n++ {
		for th := 0; th < 4; th++ {
			wg.Add(1)
			go func(c *PLockClient, seed int) {
				defer wg.Done()
				for i := 0; i < 100; i++ {
					pg := common.PageID((seed+i)%pages + 1)
					if err := c.Acquire(pg, ModeX); err != nil {
						t.Error(err)
						return
					}
					// X must be exclusive across the cluster.
					v := atomic.AddInt64(&counters[pg-1], 1)
					if v != 1 {
						t.Errorf("page %d: %d concurrent X holders", pg, v)
					}
					atomic.AddInt64(&counters[pg-1], -1)
					c.Release(pg)
				}
			}(tc.pl[n], n*31+th*7)
		}
	}
	wg.Wait()
}

func TestPLockDropNode(t *testing.T) {
	tc := newTestCluster(t, 2, Config{})
	if err := tc.pl[0].Acquire(4, ModeX); err != nil {
		t.Fatal(err)
	}
	// Node 1 "crashes" without releasing.
	tc.srv.DropNode(1)
	done := make(chan error, 1)
	go func() { done <- tc.pl[1].Acquire(4, ModeX) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("lock of crashed node not released")
	}
}

// --- RLock ------------------------------------------------------------------

func TestRLockWaitAndWake(t *testing.T) {
	tc := newTestCluster(t, 2, Config{WaitTimeout: 5 * time.Second})
	holder, _ := tc.tf[0].Begin(1)
	waiter, _ := tc.tf[1].Begin(2)

	woken := make(chan error, 1)
	go func() { woken <- tc.rl[1].WaitFor(waiter, holder) }()
	time.Sleep(20 * time.Millisecond)
	select {
	case err := <-woken:
		t.Fatalf("waiter returned early: %v", err)
	default:
	}

	// Holder commits: ref flag must be set, and notification wakes waiter.
	cts, _ := tc.tf[0].NextCommitCSN()
	waiters, err := tc.tf[0].Commit(holder, cts)
	if err != nil {
		t.Fatal(err)
	}
	if !waiters {
		t.Fatal("ref flag not observed at commit")
	}
	tc.rl[0].NotifyCommitted(holder)
	select {
	case err := <-woken:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter never woken")
	}
	if tc.srv.RLock.WaitEdges() != 0 {
		t.Fatal("wait edge leaked")
	}
}

func TestRLockHolderAlreadyFinished(t *testing.T) {
	tc := newTestCluster(t, 2, Config{})
	holder, _ := tc.tf[0].Begin(1)
	cts, _ := tc.tf[0].NextCommitCSN()
	tc.tf[0].Commit(holder, cts)
	waiter, _ := tc.tf[1].Begin(2)
	// WaitFor on a finished holder must return immediately (flag fails).
	start := time.Now()
	if err := tc.rl[1].WaitFor(waiter, holder); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("WaitFor blocked on a finished holder")
	}
}

func TestRLockDeadlockDetection(t *testing.T) {
	tc := newTestCluster(t, 2, Config{WaitTimeout: 5 * time.Second})
	t1, _ := tc.tf[0].Begin(1)
	t2, _ := tc.tf[1].Begin(2)

	// t1 waits for t2 ...
	go func() { tc.rl[0].WaitFor(t1, t2) }()
	time.Sleep(50 * time.Millisecond)
	// ... and t2 waiting for t1 closes the cycle: t2 must get ErrDeadlock.
	err := tc.rl[1].WaitFor(t2, t1)
	if !errors.Is(err, common.ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	if tc.srv.RLock.Deadlocks.Load() != 1 {
		t.Fatalf("deadlock counter = %d", tc.srv.RLock.Deadlocks.Load())
	}
	// Unblock t1 by finishing t2.
	tc.tf[1].Finish(t2)
	tc.rl[1].NotifyCommitted(t2)
}

func TestRLockDeadlockThreeWay(t *testing.T) {
	tc := newTestCluster(t, 3, Config{WaitTimeout: 5 * time.Second})
	t1, _ := tc.tf[0].Begin(1)
	t2, _ := tc.tf[1].Begin(2)
	t3, _ := tc.tf[2].Begin(3)
	go func() { tc.rl[0].WaitFor(t1, t2) }()
	go func() { tc.rl[1].WaitFor(t2, t3) }()
	time.Sleep(50 * time.Millisecond)
	if err := tc.rl[2].WaitFor(t3, t1); !errors.Is(err, common.ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	tc.tf[2].Finish(t3)
	tc.rl[2].NotifyCommitted(t3)
	time.Sleep(20 * time.Millisecond)
	tc.tf[1].Finish(t2)
	tc.rl[1].NotifyCommitted(t2)
}

func TestRLockTimeout(t *testing.T) {
	tc := newTestCluster(t, 2, Config{WaitTimeout: 50 * time.Millisecond})
	holder, _ := tc.tf[0].Begin(1)
	waiter, _ := tc.tf[1].Begin(2)
	err := tc.rl[1].WaitFor(waiter, holder)
	if !errors.Is(err, common.ErrLockTimeout) {
		t.Fatalf("err = %v, want ErrLockTimeout", err)
	}
	if tc.srv.RLock.WaitEdges() != 0 {
		t.Fatal("timed-out wait edge leaked")
	}
}

func TestRLockDropNodeWakesForeignWaiters(t *testing.T) {
	tc := newTestCluster(t, 2, Config{WaitTimeout: 5 * time.Second})
	holder, _ := tc.tf[0].Begin(1)
	waiter, _ := tc.tf[1].Begin(2)
	woken := make(chan error, 1)
	go func() { woken <- tc.rl[1].WaitFor(waiter, holder) }()
	time.Sleep(50 * time.Millisecond)
	tc.srv.DropNode(1)
	select {
	case err := <-woken:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter on crashed holder never woken")
	}
}

func TestPLockFencedFailFast(t *testing.T) {
	tc := newTestCluster(t, 3, Config{})
	// Node 1 holds X, then "crashes" (MarkDead) without releasing.
	if err := tc.pl[0].Acquire(11, lockfusion_ModeX()); err != nil {
		t.Fatal(err)
	}
	tc.srv.PLock.MarkDead(1)
	// A fresh conflicting request fails fast with a retryable fence error.
	start := time.Now()
	err := tc.pl[1].Acquire(11, lockfusion_ModeX())
	if !errors.Is(err, common.ErrFenced) {
		t.Fatalf("err = %v, want ErrFenced", err)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("fenced request blocked instead of failing fast")
	}
	if !common.IsRetryable(err) {
		t.Fatal("fence error must be retryable")
	}
	// Compatible requests (S vs the dead node's S) still work.
	if err := tc.pl[2].Acquire(12, lockfusion_ModeS()); err != nil {
		t.Fatal(err)
	}
	// Recovery lifts the fence.
	tc.srv.PLock.dropNode(1)
	tc.srv.PLock.ClearDead(1)
	if err := tc.pl[1].Acquire(11, lockfusion_ModeX()); err != nil {
		t.Fatal(err)
	}
	tc.pl[1].Release(11)
}

func TestPLockMarkDeadWakesQueuedWaiters(t *testing.T) {
	tc := newTestCluster(t, 2, Config{})
	if err := tc.pl[0].Acquire(5, lockfusion_ModeX()); err != nil {
		t.Fatal(err) // busy: refs held
	}
	got := make(chan error, 1)
	go func() { got <- tc.pl[1].Acquire(5, lockfusion_ModeX()) }()
	time.Sleep(50 * time.Millisecond)
	// The holder dies while the waiter is queued: the waiter must be
	// failed fast with a fence error, not left to the backstop timeout.
	tc.srv.PLock.MarkDead(1)
	select {
	case err := <-got:
		if !errors.Is(err, common.ErrFenced) {
			t.Fatalf("queued waiter err = %v, want ErrFenced", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued waiter not failed by MarkDead")
	}
}

// helpers keeping the test body readable
func lockfusion_ModeX() Mode { return ModeX }
func lockfusion_ModeS() Mode { return ModeS }
