package lockfusion

import (
	"fmt"
	"sync"
	"time"

	"polardbmp/internal/common"
	"polardbmp/internal/metrics"
	"polardbmp/internal/rdma"
	"polardbmp/internal/txfusion"
)

// RLock RPC wire ops (ServiceRLock on PMFS, ServiceWake on nodes).
const (
	opWaitFor    = 1 // waiter gtrx, holder gtrx -> ok | deadlock
	opCancelWait = 2 // waiter gtrx
	opCommitted  = 3 // holder gtrx (holder finished; wake its waiters)
	opWake       = 4 // waiter gtrx (node-side)
)

// RLockServer keeps only the wait-for relation (§4.3.2): which transaction
// waits for which, plus where to send the wakeup. Lock state itself lives in
// the rows.
type RLockServer struct {
	fabric rdma.Conn
	retry  common.RetryPolicy
	gate   common.EpochGate

	mu sync.Mutex
	// edges maps waiter -> holder (a transaction waits for at most one
	// lock at a time under two-phase row locking).
	edges map[common.GTrxID]common.GTrxID
	// waiters maps holder -> the set of transactions waiting for it.
	waiters map[common.GTrxID][]common.GTrxID

	// Deadlocks counts victims chosen by cycle detection.
	Deadlocks metrics.Counter
	// Waits counts registered wait edges.
	Waits metrics.Counter
}

func newRLockServer(ep *rdma.Endpoint, fabric *rdma.Fabric) *RLockServer {
	s := &RLockServer{
		fabric:  fabric.From(ep.Node()),
		retry:   common.DefaultRetryPolicy(),
		edges:   make(map[common.GTrxID]common.GTrxID),
		waiters: make(map[common.GTrxID][]common.GTrxID),
	}
	ep.Serve(ServiceRLock, s.handle)
	return s
}

// SetRetryPolicy overrides the transient-fault retry policy for wakeup
// delivery (chaos ablations disable it).
func (s *RLockServer) SetRetryPolicy(p common.RetryPolicy) { s.retry = p }

// SetEpochGate installs the membership epoch gate; stamped requests from
// evicted incarnations are rejected with ErrStaleEpoch.
func (s *RLockServer) SetEpochGate(g common.EpochGate) { s.gate = g }

func marshalTwoG(op byte, a, b common.GTrxID) []byte {
	buf := make([]byte, 0, 1+2*common.GTrxIDSize)
	buf = append(buf, op)
	buf = a.Marshal(buf)
	buf = b.Marshal(buf)
	return buf
}

func (s *RLockServer) handle(req []byte) ([]byte, error) {
	if len(req) < 1+common.GTrxIDSize {
		return nil, common.ErrShortBuffer
	}
	a, rest, err := common.UnmarshalGTrxID(req[1:])
	if err != nil {
		return nil, err
	}
	// The first gtrx always belongs to the calling node (the waiter for
	// waitFor/cancelWait, the holder for committed).
	if s.gate != nil {
		if err := s.gate(a.Node, common.TrailingEpoch(req, 1+2*common.GTrxIDSize)); err != nil {
			return nil, err
		}
	}
	switch req[0] {
	case opWaitFor:
		holder, _, err := common.UnmarshalGTrxID(rest)
		if err != nil {
			return nil, err
		}
		if s.waitFor(a, holder) {
			return []byte{1}, nil // registered
		}
		return []byte{0}, nil // deadlock: caller is the victim
	case opCancelWait:
		s.cancelWait(a)
		return nil, nil
	case opCommitted:
		s.committed(a)
		return nil, nil
	default:
		return nil, fmt.Errorf("rlock: unknown op %d", req[0])
	}
}

// waitFor registers waiter->holder unless it would close a cycle, in which
// case the waiter is the victim and false is returned.
func (s *RLockServer) waitFor(waiter, holder common.GTrxID) bool {
	s.mu.Lock()
	// Walk the holder's own wait chain; reaching the waiter means a cycle.
	cur, steps := holder, 0
	for steps < 1024 {
		next, ok := s.edges[cur]
		if !ok {
			break
		}
		if next == waiter {
			s.mu.Unlock()
			s.Deadlocks.Inc()
			return false
		}
		cur = next
		steps++
	}
	s.edges[waiter] = holder
	s.waiters[holder] = append(s.waiters[holder], waiter)
	s.mu.Unlock()
	s.Waits.Inc()
	return true
}

func (s *RLockServer) cancelWait(waiter common.GTrxID) {
	s.mu.Lock()
	holder, ok := s.edges[waiter]
	if ok {
		delete(s.edges, waiter)
		list := s.waiters[holder]
		for i, w := range list {
			if w == waiter {
				s.waiters[holder] = append(list[:i], list[i+1:]...)
				break
			}
		}
		if len(s.waiters[holder]) == 0 {
			delete(s.waiters, holder)
		}
	}
	s.mu.Unlock()
}

// committed is the holder's commit/abort notification (Figure 6 step: "T10
// notifies Lock Fusion that it has committed"): wake every waiter.
func (s *RLockServer) committed(holder common.GTrxID) {
	s.mu.Lock()
	list := s.waiters[holder]
	delete(s.waiters, holder)
	for _, w := range list {
		delete(s.edges, w)
	}
	s.mu.Unlock()
	// Wakeups must survive transient faults: a lost wake parks the waiter
	// until its timeout. Re-delivery is idempotent (waking an absent waiter
	// is a no-op).
	for _, w := range list {
		req := marshalTwoG(opWake, w, holder)
		_ = common.Retry(s.retry, func() error {
			_, err := s.fabric.Call(w.Node, ServiceWake, req)
			return err
		})
	}
}

// dropNode clears wait state involving a crashed node: its transactions
// stop waiting, and transactions waiting on them are woken (they will
// re-examine the row; the crashed node's writes are rolled back by
// recovery).
func (s *RLockServer) dropNode(node uint16) {
	n := common.NodeID(node)
	s.mu.Lock()
	var wake []common.GTrxID
	for waiter, holder := range s.edges {
		if waiter.Node == n || holder.Node == n {
			delete(s.edges, waiter)
			list := s.waiters[holder]
			for i, w := range list {
				if w == waiter {
					s.waiters[holder] = append(list[:i], list[i+1:]...)
					break
				}
			}
			if waiter.Node != n {
				wake = append(wake, waiter)
			}
		}
	}
	for holder := range s.waiters {
		if holder.Node == n && len(s.waiters[holder]) == 0 {
			delete(s.waiters, holder)
		}
	}
	s.mu.Unlock()
	for _, w := range wake {
		req := marshalTwoG(opWake, w, common.GTrxID{})
		_ = common.Retry(s.retry, func() error {
			_, err := s.fabric.Call(w.Node, ServiceWake, req)
			return err
		})
	}
}

// WaitEdges returns the current number of wait-for edges (tests).
func (s *RLockServer) WaitEdges() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.edges)
}

// --- client ----------------------------------------------------------------

// RLockClient is a node's side of the RLock protocol: it parks blocked
// transactions and wakes them on ServiceWake notifications.
type RLockClient struct {
	node   common.NodeID
	fabric rdma.Conn
	tf     *txfusion.Client
	cfg    Config
	retry  common.RetryPolicy
	stamp  *common.EpochStamp

	mu     sync.Mutex
	parked map[common.GTrxID]chan struct{}

	// WaitRounds counts blocking waits; Timeouts counts backstop firings.
	WaitRounds metrics.Counter
	Timeouts   metrics.Counter
}

// NewRLockClient registers the node's wake service and returns the client.
func NewRLockClient(ep *rdma.Endpoint, fabric *rdma.Fabric, tf *txfusion.Client, cfg Config) *RLockClient {
	cfg.fill()
	c := &RLockClient{
		node:   ep.Node(),
		fabric: fabric.From(ep.Node()),
		retry:  common.DefaultRetryPolicy(),
		tf:     tf,
		cfg:    cfg,
		parked: make(map[common.GTrxID]chan struct{}),
	}
	ep.Serve(ServiceWake, c.handleWake)
	return c
}

// SetRetryPolicy overrides the transient-fault retry policy (chaos
// ablations disable it).
func (c *RLockClient) SetRetryPolicy(p common.RetryPolicy) { c.retry = p }

// SetEpochStamp makes the client stamp requests with the node's incarnation
// epoch so PMFS can fence evicted incarnations.
func (c *RLockClient) SetEpochStamp(s *common.EpochStamp) { c.stamp = s }

func (c *RLockClient) handleWake(req []byte) ([]byte, error) {
	if len(req) < 1+common.GTrxIDSize {
		return nil, common.ErrShortBuffer
	}
	waiter, _, err := common.UnmarshalGTrxID(req[1:])
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	ch := c.parked[waiter]
	delete(c.parked, waiter)
	c.mu.Unlock()
	if ch != nil {
		close(ch)
	}
	return nil, nil
}

// WaitFor blocks transaction waiter until holder finishes (§4.3.2): it sets
// the ref flag on the holder's TIT slot, registers the wait edge with Lock
// Fusion, double-checks the holder is still active (closing the
// flag-vs-commit race), then parks. It returns nil when the caller should
// re-check the row, ErrDeadlock when the waiter was chosen as victim.
func (c *RLockClient) WaitFor(waiter, holder common.GTrxID) error {
	return c.WaitForDeadline(waiter, holder, common.Deadline{})
}

// WaitForDeadline is WaitFor with the park bounded by the caller's
// deadline: the timer is min(cfg.WaitTimeout, remaining budget), and a
// budget-capped expiry returns ErrDeadlineExceeded (non-retryable) rather
// than ErrLockTimeout, after retracting the wait edge. Deadlock detection
// is unaffected — the cycle check runs at registration, before any wait,
// so a short budget never masks a deadlock verdict (the victim is chosen
// eagerly, not by timeout). A zero deadline is plain WaitFor.
func (c *RLockClient) WaitForDeadline(waiter, holder common.GTrxID, dl common.Deadline) error {
	// Step 1 (Figure 6): flag the holder's transaction metadata so its
	// commit path knows someone is waiting.
	flagged, err := c.tf.SetRefFlag(holder)
	if err != nil {
		// Holder's node unreachable (crashed): back off briefly; the
		// row will be resolved by recovery.
		time.Sleep(time.Millisecond)
		return nil
	}
	if !flagged {
		return nil // holder already finished; re-check the row
	}

	ch := make(chan struct{})
	c.mu.Lock()
	c.parked[waiter] = ch
	c.mu.Unlock()
	cleanup := func() {
		c.mu.Lock()
		delete(c.parked, waiter)
		c.mu.Unlock()
	}

	// Step 2: register the wait-for edge. Dropped requests never reached
	// the server, so retrying cannot double-register.
	var resp []byte
	err = common.RetryDeadline(c.retry, dl, func() (e error) {
		resp, e = c.fabric.Call(common.PMFSNode, ServiceRLock, c.stamp.Stamp(marshalTwoG(opWaitFor, waiter, holder)))
		return e
	})
	if err != nil {
		cleanup()
		return err
	}
	if len(resp) < 1 || resp[0] == 0 {
		cleanup()
		return fmt.Errorf("rlock: %v waiting for %v: %w", waiter, holder, common.ErrDeadlock)
	}

	// Step 3: the holder may have committed between the flag and the
	// registration; its notification would have found no edge. Re-check.
	active, err := c.tf.IsActive(holder)
	if err == nil && !active {
		c.cancelWait(waiter, holder)
		cleanup()
		return nil
	}

	c.WaitRounds.Inc()
	wait := c.cfg.WaitTimeout
	deadlineBound := false
	if rem, bounded := dl.Remaining(); bounded && rem < wait {
		if rem < 0 {
			rem = 0
		}
		wait = rem
		deadlineBound = true
	}
	select {
	case <-ch:
		return nil
	case <-time.After(wait):
		c.Timeouts.Inc()
		c.cancelWait(waiter, holder)
		cleanup()
		if deadlineBound {
			return fmt.Errorf("rlock: %v waiting for %v: wait budget spent: %w",
				waiter, holder, common.ErrDeadlineExceeded)
		}
		return fmt.Errorf("rlock: %v waiting for %v: %w", waiter, holder, common.ErrLockTimeout)
	}
}

// cancelWait retracts a wait edge; losing it would leak the edge until the
// holder commits, so transient faults are retried (cancel is idempotent).
func (c *RLockClient) cancelWait(waiter, holder common.GTrxID) {
	_ = common.Retry(c.retry, func() error {
		_, err := c.fabric.Call(common.PMFSNode, ServiceRLock, c.stamp.Stamp(marshalTwoG(opCancelWait, waiter, holder)))
		return err
	})
}

// NotifyCommitted tells Lock Fusion that holder finished; called by the
// engine when commit/abort observes the TIT ref flag set. A lost
// notification parks every waiter until timeout, so it is retried.
func (c *RLockClient) NotifyCommitted(holder common.GTrxID) {
	_ = common.Retry(c.retry, func() error {
		_, err := c.fabric.Call(common.PMFSNode, ServiceRLock, c.stamp.Stamp(marshalTwoG(opCommitted, holder, common.GTrxID{})))
		return err
	})
}
