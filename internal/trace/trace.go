// Package trace is the commit-path span tracer: an always-on, low-overhead
// decomposition of transaction latency into the PMFS stages the paper's
// evaluation (§6) argues in — TSO fetch, TIT reads, Lock Fusion RPCs, Buffer
// Fusion page transfers, log force — with per-span fabric-op and byte
// attribution on top of the rdma.Stats counters.
//
// The design splits two concerns:
//
//   - Per-stage aggregates: every stage occurrence anywhere on a node
//     (transaction or background) is observed exactly once into a lock-free
//     histogram, at the single choke point that classifies it — inside the
//     PLock client for local-vs-remote acquires, inside Buffer Fusion for
//     DBP-vs-storage fetches, inside the WAL writer for append/sync, inside
//     Transaction Fusion for solo-vs-group TSO allocation, and in core for
//     the stages only the transaction sees (begin, row-lock wait, CTS
//     stamp, whole commit).
//   - Per-transaction traces: a TxTrace records a bounded span timeline for
//     one transaction (the expensive events: remote lock fetches, page
//     transfers, log forces, TSO, stamping), kept in a bounded ring of
//     recent traces per node plus a slow-transaction log.
//
// A nil *Tracer (and the nil *TxTrace it hands out) is the disabled tracer:
// every method nil-checks its receiver, so instrumentation call sites are
// unconditional and the disabled cost is one pointer test with zero
// allocations (verified by TestNilTracerZeroAllocs and the alloc-budget
// benchmark).
package trace

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"polardbmp/internal/common"
	"polardbmp/internal/rdma"
)

// Stage labels one segment of the commit pipeline.
type Stage uint8

const (
	// StageBegin is Begin: TIT slot allocation plus read-view setup.
	StageBegin Stage = iota
	// StagePLockLocal is a PLock granted from lazy retention (no fabric).
	StagePLockLocal
	// StagePLockRemote is a PLock fetched through Lock Fusion; the server
	// completes any holder revoke (including its flush) before replying,
	// so revoke waits are inside this stage.
	StagePLockRemote
	// StageRowLockWait is a row-lock wait on another active writer.
	StageRowLockWait
	// StageFrameLocal is an LBP hit (page already cached and valid).
	StageFrameLocal
	// StageFrameDBP is a page fetched from the distributed buffer pool
	// with a one-sided read.
	StageFrameDBP
	// StageFrameStorage is a page filled from shared storage.
	StageFrameStorage
	// StageLogAppend is one redo append (row mutations and the commit
	// record alike).
	StageLogAppend
	// StageLogSync is a group-commit log force that had to wait for
	// durability (no-op syncs behind the durable frontier are not counted).
	StageLogSync
	// StageTSOSolo is a commit CSN obtained by a combiner leader whose
	// round held only itself (one fetch-add, one beneficiary).
	StageTSOSolo
	// StageTSOGroup is a commit CSN granted out of a flat-combined round
	// (the round's single fetch-add covered k committers).
	StageTSOGroup
	// StageCTSStamp is commit-time CTS stamping plus the vectored push of
	// peer-waited pages.
	StageCTSStamp
	// StageCommit is the whole transaction, begin to finish.
	StageCommit
	// StageShed is an admission-control rejection observed by a client: a
	// fusion-server stripe was over its queue bound and returned
	// ErrOverloaded (the duration is the time spent reaching the verdict,
	// backoff included).
	StageShed
	// StageHedgeFired counts DBP frame reads whose primary one-sided read
	// outlived the hedge delay, triggering a fallback read (§ fail-slow
	// mitigation). The duration is the whole hedged fetch.
	StageHedgeFired
	// StageDeadlineAbort is a transaction aborted because its Deadline
	// budget expired; the duration is begin-to-abort, i.e. how much budget
	// the transaction burned before the abort checkpoint caught it.
	StageDeadlineAbort
	// StagePmfsReplicate is the replication tax on one PMFS-bound verb: the
	// time spent mirroring the op to the follower replicas and collecting
	// the quorum, measured by the pmfsrep layer and attributed to the
	// issuing node. The op counters stay zero on purpose — replication acks
	// ride the same doorbell batch as the leader op, so the verb's fabric
	// cost is already counted by the stage that issued it.
	StagePmfsReplicate
	// StageLogPipeline is a durability wait absorbed by the pipelined
	// group-commit syncer: the committer's frontier was covered by a sync
	// round already in flight (or started by the background syncer), so it
	// paid only the residual wait instead of running a full round itself.
	// StageLogSync keeps counting the syncs that had to run their own round.
	StageLogPipeline
	// StageCTSSpec is a speculative CTS resolution: the reader proved
	// visibility from the peer's recycle floor (every trx id at or below the
	// floor is finished and GMV-covered) without the one-sided TIT read.
	StageCTSSpec

	numStages
)

// NumStages is the number of defined stages.
const NumStages = int(numStages)

var stageNames = [numStages]string{
	"begin", "plock_local", "plock_remote", "rowlock_wait",
	"frame_local", "frame_dbp", "frame_storage",
	"log_append", "log_sync", "tso_solo", "tso_group",
	"cts_stamp", "commit",
	"shed", "hedge_fired", "deadline_abort", "pmfs_replicate",
	"log_pipeline", "cts_spec",
}

// String returns the stage's snake_case name (the JSON identity).
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// StageNames returns the full stage taxonomy in declaration order.
func StageNames() []string { return append([]string(nil), stageNames[:]...) }

// OpCounts is a fabric-operation footprint: verbs and bytes, matching the
// rdma.Stats counters (vectored verbs count one op per doorbell).
type OpCounts struct {
	Reads      int64 `json:"reads"`
	Writes     int64 `json:"writes"`
	Atomics    int64 `json:"atomics"`
	RPCs       int64 `json:"rpcs"`
	BytesRead  int64 `json:"bytes_read"`
	BytesWrite int64 `json:"bytes_write"`
}

func (o OpCounts) sub(b OpCounts) OpCounts {
	return OpCounts{
		Reads: o.Reads - b.Reads, Writes: o.Writes - b.Writes,
		Atomics: o.Atomics - b.Atomics, RPCs: o.RPCs - b.RPCs,
		BytesRead: o.BytesRead - b.BytesRead, BytesWrite: o.BytesWrite - b.BytesWrite,
	}
}

// Add accumulates b into o.
func (o *OpCounts) Add(b OpCounts) {
	o.Reads += b.Reads
	o.Writes += b.Writes
	o.Atomics += b.Atomics
	o.RPCs += b.RPCs
	o.BytesRead += b.BytesRead
	o.BytesWrite += b.BytesWrite
}

// Total returns the verb count (ops, not bytes).
func (o OpCounts) Total() int64 { return o.Reads + o.Writes + o.Atomics + o.RPCs }

// histBuckets is the histogram resolution: power-of-two latency buckets,
// bucket i holding durations with bits.Len64(ns) == i, i.e. [2^(i-1), 2^i).
// 64 buckets cover every possible int64 nanosecond value, observation is a
// single atomic add, and merging is bucket-wise addition — exactly
// associative and commutative, which is what lets per-node histograms fold
// into cluster-wide ones in any order.
const histBuckets = 64

// Histogram is a lock-free latency histogram with power-of-two buckets.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.buckets[bits.Len64(uint64(ns))&(histBuckets-1)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Snapshot captures the histogram into its mergeable value form.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	return s
}

// HistSnapshot is a point-in-time histogram value. Merge is associative and
// commutative: (a⊕b)⊕c == a⊕(b⊕c) field-for-field.
type HistSnapshot struct {
	Buckets [histBuckets]int64
	Count   int64
	Sum     int64 // nanoseconds
	Max     int64 // nanoseconds
}

// Merge folds o into s.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
}

// Mean returns the average observed duration.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / s.Count)
}

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1):
// the geometric midpoint of the bucket the quantile lands in, clamped to
// the observed maximum.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, b := range s.Buckets {
		cum += b
		if cum >= rank {
			var mid int64
			switch {
			case i == 0:
				mid = 0
			case i == 1:
				mid = 1
			default:
				mid = 3 << (i - 2) // midpoint of [2^(i-1), 2^i)
			}
			if mid > s.Max {
				mid = s.Max
			}
			return time.Duration(mid)
		}
	}
	return time.Duration(s.Max)
}

// Config tunes a node's tracer. The zero value gives the defaults.
type Config struct {
	// RingSize bounds the per-node ring of recent transaction traces
	// (default 256).
	RingSize int
	// SlowTxThreshold, when positive, logs every transaction at least
	// this slow into the slow-transaction ring.
	SlowTxThreshold time.Duration
	// SlowLogSize bounds the slow-transaction ring (default 64).
	SlowLogSize int
}

func (c *Config) fill() {
	if c.RingSize <= 0 {
		c.RingSize = 256
	}
	if c.SlowLogSize <= 0 {
		c.SlowLogSize = 64
	}
}

// stageAgg is one stage's node-level aggregate: a latency histogram plus
// the fabric ops attributed to the stage.
type stageAgg struct {
	hist Histogram
	ops  [6]atomic.Int64 // reads, writes, atomics, rpcs, bytesR, bytesW
}

// Tracer is one node's span collector. A nil *Tracer is the valid disabled
// tracer; all methods are safe on it.
type Tracer struct {
	node   common.NodeID
	cfg    Config
	fabric *rdma.Stats // the node's per-source fabric counters (may be nil)

	stages [numStages]stageAgg

	ringMu    sync.Mutex
	ring      []*TxTrace // len == cfg.RingSize, wraps
	ringNext  int
	ringTotal uint64

	slowMu    sync.Mutex
	slow      []*TxTrace // len == cfg.SlowLogSize, wraps
	slowNext  int
	slowTotal uint64
}

// New builds a tracer for node. fabric is the node's per-source rdma.Stats
// (rdma.Fabric.SrcStats) used for span op attribution; nil disables op
// attribution but not timing.
func New(node common.NodeID, cfg Config, fabric *rdma.Stats) *Tracer {
	cfg.fill()
	return &Tracer{
		node:   node,
		cfg:    cfg,
		fabric: fabric,
		ring:   make([]*TxTrace, cfg.RingSize),
		slow:   make([]*TxTrace, cfg.SlowLogSize),
	}
}

// Node returns the owning node id (0 on a nil tracer).
func (t *Tracer) Node() common.NodeID {
	if t == nil {
		return 0
	}
	return t.node
}

// Enabled reports whether tracing is on.
func (t *Tracer) Enabled() bool { return t != nil }

// SlowTxThreshold returns the configured slow-transaction threshold.
func (t *Tracer) SlowTxThreshold() time.Duration {
	if t == nil {
		return 0
	}
	return t.cfg.SlowTxThreshold
}

// Token marks the start of a stage: a timestamp plus a fabric-op snapshot.
// The zero Token (from a nil tracer) is inert.
type Token struct {
	start time.Time
	ops   OpCounts
	valid bool
}

func (t *Tracer) snapOps() OpCounts {
	if t.fabric == nil {
		return OpCounts{}
	}
	r, w, a, p, br, bw := t.fabric.Snapshot()
	return OpCounts{Reads: r, Writes: w, Atomics: a, RPCs: p, BytesRead: br, BytesWrite: bw}
}

// Start opens a stage measurement. On a nil tracer it returns the inert
// zero Token without reading the clock.
func (t *Tracer) Start() Token {
	if t == nil {
		return Token{}
	}
	return Token{start: time.Now(), ops: t.snapOps(), valid: true}
}

// Observe closes a stage measurement into the node aggregate: latency into
// the stage histogram, the fabric-op delta since Start into the stage's op
// counters. Inert on a nil tracer or zero Token.
func (t *Tracer) Observe(stage Stage, tok Token) {
	if t == nil || !tok.valid {
		return
	}
	t.observe(stage, time.Since(tok.start), t.snapOps().sub(tok.ops))
}

// ObserveStage folds one externally measured duration into a stage's node
// aggregate with no fabric-op attribution — the hook for layers (pmfsrep)
// that measure latency themselves and whose verbs are already counted by the
// issuing stage. Inert on a nil tracer.
func (t *Tracer) ObserveStage(stage Stage, d time.Duration) {
	if t == nil {
		return
	}
	t.observe(stage, d, OpCounts{})
}

func (t *Tracer) observe(stage Stage, d time.Duration, ops OpCounts) {
	agg := &t.stages[stage]
	agg.hist.Observe(d)
	agg.ops[0].Add(ops.Reads)
	agg.ops[1].Add(ops.Writes)
	agg.ops[2].Add(ops.Atomics)
	agg.ops[3].Add(ops.RPCs)
	agg.ops[4].Add(ops.BytesRead)
	agg.ops[5].Add(ops.BytesWrite)
}

// --- per-transaction traces -------------------------------------------------

// MaxSpans bounds one transaction's recorded span timeline; later spans are
// counted in Dropped instead. The timeline records the expensive events
// (remote lock fetches, page transfers, log forces, TSO, stamping) — fast
// local hits are visible in the node aggregates instead.
const MaxSpans = 48

// Span is one recorded stage occurrence inside a transaction.
type Span struct {
	Stage Stage
	Start time.Duration // offset from the transaction's begin
	Dur   time.Duration
	Ops   OpCounts
}

// TxTrace is one transaction's span timeline. It is owned by the
// transaction's goroutine until FinishTx publishes it; a nil *TxTrace is
// the valid disabled trace.
type TxTrace struct {
	tr *Tracer

	G         common.GTrxID
	Begin     time.Time
	Total     time.Duration
	CTS       common.CSN
	Committed bool
	Spans     []Span
	Dropped   int
}

// StartTx opens a trace for transaction g that began at begin. Returns nil
// on a nil tracer.
func (t *Tracer) StartTx(g common.GTrxID, begin time.Time) *TxTrace {
	if t == nil {
		return nil
	}
	return &TxTrace{tr: t, G: g, Begin: begin, Spans: make([]Span, 0, 8)}
}

// Start opens a stage measurement against the owning tracer; inert on nil.
func (tt *TxTrace) Start() Token {
	if tt == nil {
		return Token{}
	}
	return tt.tr.Start()
}

// Mark records a span on the transaction timeline WITHOUT feeding the node
// aggregate — for stages whose aggregate observation happens inside the
// subsystem that executed them (lock client, Buffer Fusion, WAL, TSO), so
// each occurrence is aggregated exactly once.
func (tt *TxTrace) Mark(stage Stage, tok Token) {
	if tt == nil || !tok.valid {
		return
	}
	tt.addSpan(stage, tok, time.Since(tok.start))
}

// Observe records a span AND feeds the node aggregate — for the stages only
// core sees (begin, row-lock wait, CTS stamp).
func (tt *TxTrace) Observe(stage Stage, tok Token) {
	if tt == nil || !tok.valid {
		return
	}
	d := time.Since(tok.start)
	tt.tr.observe(stage, d, tt.tr.snapOps().sub(tok.ops))
	tt.addSpan(stage, tok, d)
}

func (tt *TxTrace) addSpan(stage Stage, tok Token, d time.Duration) {
	if len(tt.Spans) >= MaxSpans {
		tt.Dropped++
		return
	}
	tt.Spans = append(tt.Spans, Span{
		Stage: stage,
		Start: tok.start.Sub(tt.Begin),
		Dur:   d,
		Ops:   tt.tr.snapOps().sub(tok.ops),
	})
}

// FinishTx closes the trace: observes the whole-transaction latency into
// StageCommit, publishes the trace into the recent ring, and logs it into
// the slow ring when it crossed the threshold. The caller must not touch tt
// afterwards.
func (t *Tracer) FinishTx(tt *TxTrace, cts common.CSN, committed bool) {
	if t == nil || tt == nil {
		return
	}
	tt.Total = time.Since(tt.Begin)
	tt.CTS = cts
	tt.Committed = committed
	var ops OpCounts
	for i := range tt.Spans {
		ops.Add(tt.Spans[i].Ops)
	}
	t.observe(StageCommit, tt.Total, ops)

	t.ringMu.Lock()
	t.ring[t.ringNext] = tt
	t.ringNext = (t.ringNext + 1) % len(t.ring)
	t.ringTotal++
	t.ringMu.Unlock()

	if thr := t.cfg.SlowTxThreshold; thr > 0 && tt.Total >= thr {
		t.slowMu.Lock()
		t.slow[t.slowNext] = tt
		t.slowNext = (t.slowNext + 1) % len(t.slow)
		t.slowTotal++
		t.slowMu.Unlock()
	}
}

// --- snapshots --------------------------------------------------------------

// StageData is one stage's mergeable aggregate.
type StageData struct {
	Hist HistSnapshot
	Ops  OpCounts
}

// StagesDump is a node's full per-stage aggregate in mergeable form.
type StagesDump struct {
	Stages [numStages]StageData
}

// Merge folds o into d (associative, commutative).
func (d *StagesDump) Merge(o *StagesDump) {
	if o == nil {
		return
	}
	for i := range d.Stages {
		d.Stages[i].Hist.Merge(o.Stages[i].Hist)
		d.Stages[i].Ops.Add(o.Stages[i].Ops)
	}
}

// Dump captures the tracer's per-stage aggregates. Nil-safe (returns nil).
func (t *Tracer) Dump() *StagesDump {
	if t == nil {
		return nil
	}
	var d StagesDump
	for i := range t.stages {
		agg := &t.stages[i]
		d.Stages[i].Hist = agg.hist.Snapshot()
		d.Stages[i].Ops = OpCounts{
			Reads: agg.ops[0].Load(), Writes: agg.ops[1].Load(),
			Atomics: agg.ops[2].Load(), RPCs: agg.ops[3].Load(),
			BytesRead: agg.ops[4].Load(), BytesWrite: agg.ops[5].Load(),
		}
	}
	return &d
}

// StageSnapshot is one stage's summarized aggregate, JSON-shaped for the
// BENCH_*-style dumps (durations in nanoseconds).
type StageSnapshot struct {
	Stage   string        `json:"stage"`
	Count   int64         `json:"count"`
	TotalNS int64         `json:"total_ns"`
	Mean    time.Duration `json:"mean_ns"`
	P50     time.Duration `json:"p50_ns"`
	P95     time.Duration `json:"p95_ns"`
	P99     time.Duration `json:"p99_ns"`
	Max     time.Duration `json:"max_ns"`
	Ops     OpCounts      `json:"ops"`
}

// Snapshots summarizes a dump, omitting stages never observed. Nil-safe.
func (d *StagesDump) Snapshots() []StageSnapshot {
	if d == nil {
		return nil
	}
	var out []StageSnapshot
	for i := range d.Stages {
		h := d.Stages[i].Hist
		if h.Count == 0 {
			continue
		}
		out = append(out, StageSnapshot{
			Stage:   Stage(i).String(),
			Count:   h.Count,
			TotalNS: h.Sum,
			Mean:    h.Mean(),
			P50:     h.Quantile(0.50),
			P95:     h.Quantile(0.95),
			P99:     h.Quantile(0.99),
			Max:     time.Duration(h.Max),
			Ops:     d.Stages[i].Ops,
		})
	}
	return out
}

// StageSnapshots summarizes this tracer's aggregates. Nil-safe.
func (t *Tracer) StageSnapshots() []StageSnapshot { return t.Dump().Snapshots() }

// SpanSummary is one span in JSON-shaped form.
type SpanSummary struct {
	Stage   string        `json:"stage"`
	StartNS time.Duration `json:"start_ns"`
	DurNS   time.Duration `json:"dur_ns"`
	Ops     OpCounts      `json:"ops"`
}

// TxSummary is one transaction trace in JSON-shaped form.
type TxSummary struct {
	GTrx      string        `json:"gtrx"`
	Node      uint16        `json:"node"`
	CTS       uint64        `json:"cts,omitempty"`
	Committed bool          `json:"committed"`
	TotalNS   time.Duration `json:"total_ns"`
	Spans     []SpanSummary `json:"spans,omitempty"`
	Dropped   int           `json:"spans_dropped,omitempty"`
}

// Summary renders the trace (valid before or after FinishTx on the owning
// goroutine, or after FinishTx from any goroutine holding the ring lock).
// Nil-safe (returns the zero summary).
func (tt *TxTrace) Summary() TxSummary {
	if tt == nil {
		return TxSummary{}
	}
	s := TxSummary{
		GTrx:      tt.G.String(),
		Node:      uint16(tt.G.Node),
		CTS:       uint64(tt.CTS),
		Committed: tt.Committed,
		TotalNS:   tt.Total,
		Dropped:   tt.Dropped,
	}
	for _, sp := range tt.Spans {
		s.Spans = append(s.Spans, SpanSummary{
			Stage: sp.Stage.String(), StartNS: sp.Start, DurNS: sp.Dur, Ops: sp.Ops,
		})
	}
	return s
}

// Recent returns up to n of the most recent finished traces, newest first.
// Nil-safe.
func (t *Tracer) Recent(n int) []TxSummary {
	if t == nil || n <= 0 {
		return nil
	}
	t.ringMu.Lock()
	defer t.ringMu.Unlock()
	if n > len(t.ring) {
		n = len(t.ring)
	}
	var out []TxSummary
	for i := 1; i <= n; i++ {
		tt := t.ring[((t.ringNext-i)%len(t.ring)+len(t.ring))%len(t.ring)]
		if tt == nil {
			break
		}
		out = append(out, tt.Summary())
	}
	return out
}

// RecentCount returns how many traces FinishTx has published. Nil-safe.
func (t *Tracer) RecentCount() uint64 {
	if t == nil {
		return 0
	}
	t.ringMu.Lock()
	defer t.ringMu.Unlock()
	return t.ringTotal
}

// Slow returns the slow-transaction log, newest first. Nil-safe.
func (t *Tracer) Slow() []TxSummary {
	if t == nil {
		return nil
	}
	t.slowMu.Lock()
	defer t.slowMu.Unlock()
	var out []TxSummary
	for i := 1; i <= len(t.slow); i++ {
		tt := t.slow[((t.slowNext-i)%len(t.slow)+len(t.slow))%len(t.slow)]
		if tt == nil {
			break
		}
		out = append(out, tt.Summary())
	}
	return out
}
