package trace

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"polardbmp/internal/common"
	"polardbmp/internal/rdma"
)

// TestHistogramMergeAssociativity checks the property the cluster-wide
// stage merge relies on: snapshots merge associatively and commutatively,
// field for field.
func TestHistogramMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	hs := make([]*Histogram, 3)
	for i := range hs {
		hs[i] = &Histogram{}
		for j := 0; j < 500; j++ {
			hs[i].Observe(time.Duration(rng.Int63n(int64(200 * time.Millisecond))))
		}
	}
	a, b, c := hs[0].Snapshot(), hs[1].Snapshot(), hs[2].Snapshot()

	left := a // (a ⊕ b) ⊕ c
	left.Merge(b)
	left.Merge(c)

	bc := b // a ⊕ (b ⊕ c)
	bc.Merge(c)
	right := a
	right.Merge(bc)

	if !reflect.DeepEqual(left, right) {
		t.Fatalf("merge not associative:\n left=%+v\nright=%+v", left, right)
	}

	ba := b // commutativity: b ⊕ a == a ⊕ b
	ba.Merge(a)
	ab := a
	ab.Merge(b)
	if !reflect.DeepEqual(ab, ba) {
		t.Fatalf("merge not commutative")
	}
	if left.Count != a.Count+b.Count+c.Count {
		t.Fatalf("merged count %d want %d", left.Count, a.Count+b.Count+c.Count)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 1000; i++ {
		h.Observe(1 * time.Millisecond)
	}
	h.Observe(100 * time.Millisecond)
	s := h.Snapshot()
	if p50 := s.Quantile(0.5); p50 < 512*time.Microsecond || p50 > 2*time.Millisecond {
		t.Fatalf("p50 = %v, want ~1ms", p50)
	}
	if max := time.Duration(s.Max); max != 100*time.Millisecond {
		t.Fatalf("max = %v", max)
	}
	if s.Quantile(1.0) > 100*time.Millisecond {
		t.Fatalf("q1.0 exceeds observed max")
	}
}

// TestRingWraparound hammers FinishTx from several goroutines (run under
// -race) and checks the recent ring stays bounded, newest-first, and
// internally consistent after wrapping many times.
func TestRingWraparound(t *testing.T) {
	tr := New(1, Config{RingSize: 8, SlowTxThreshold: 1, SlowLogSize: 4}, &rdma.Stats{})
	const goroutines, per = 4, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				gid := common.GTrxID{Node: common.NodeID(g), Trx: common.TrxID(i + 1)}
				tt := tr.StartTx(gid, time.Now())
				tok := tt.Start()
				tt.Observe(StageBegin, tok)
				tr.FinishTx(tt, common.CSN(i+1), true)
			}
		}(g)
	}
	wg.Wait()

	if got := tr.RecentCount(); got != goroutines*per {
		t.Fatalf("published %d traces, want %d", got, goroutines*per)
	}
	recent := tr.Recent(100)
	if len(recent) != 8 {
		t.Fatalf("ring returned %d traces, want ring size 8", len(recent))
	}
	for _, s := range recent {
		if s.GTrx == "" || len(s.Spans) != 1 || s.Spans[0].Stage != "begin" {
			t.Fatalf("corrupt trace in ring: %+v", s)
		}
	}
	slow := tr.Slow()
	if len(slow) == 0 || len(slow) > 4 {
		t.Fatalf("slow log has %d entries, want 1..4", len(slow))
	}
}

func TestSlowTxThreshold(t *testing.T) {
	tr := New(1, Config{SlowTxThreshold: 50 * time.Millisecond}, nil)

	fast := tr.StartTx(common.GTrxID{Node: 1, Trx: 1}, time.Now())
	tr.FinishTx(fast, 1, true)
	if got := len(tr.Slow()); got != 0 {
		t.Fatalf("fast tx logged as slow (%d entries)", got)
	}

	slow := tr.StartTx(common.GTrxID{Node: 1, Trx: 2}, time.Now().Add(-time.Second))
	tr.FinishTx(slow, 2, true)
	got := tr.Slow()
	if len(got) != 1 || got[0].TotalNS < 50*time.Millisecond {
		t.Fatalf("slow tx not logged: %+v", got)
	}
}

// TestSpanOpAttribution drives the per-source fabric counters between Start
// and Observe and checks the delta lands on the span and the stage
// aggregate.
func TestSpanOpAttribution(t *testing.T) {
	var src rdma.Stats
	tr := New(3, Config{}, &src)
	tt := tr.StartTx(common.GTrxID{Node: 3, Trx: 9}, time.Now())

	tok := tt.Start()
	src.Reads.Inc()
	src.Reads.Inc()
	src.BytesRead.Add(8192)
	src.RPCs.Inc()
	tt.Observe(StageCTSStamp, tok)
	tr.FinishTx(tt, 7, true)

	sum := tt.Summary()
	if len(sum.Spans) != 1 {
		t.Fatalf("want 1 span, got %d", len(sum.Spans))
	}
	ops := sum.Spans[0].Ops
	if ops.Reads != 2 || ops.BytesRead != 8192 || ops.RPCs != 1 || ops.Writes != 0 {
		t.Fatalf("span ops = %+v", ops)
	}
	snaps := tr.StageSnapshots()
	var found bool
	for _, s := range snaps {
		if s.Stage == "cts_stamp" {
			found = true
			if s.Ops.Reads != 2 || s.Ops.RPCs != 1 {
				t.Fatalf("aggregate ops = %+v", s.Ops)
			}
		}
	}
	if !found {
		t.Fatalf("cts_stamp missing from snapshots: %+v", snaps)
	}
}

func TestSpanBound(t *testing.T) {
	tr := New(1, Config{}, nil)
	tt := tr.StartTx(common.GTrxID{Node: 1, Trx: 1}, time.Now())
	for i := 0; i < MaxSpans+10; i++ {
		tt.Mark(StageFrameDBP, tt.Start())
	}
	if len(tt.Spans) != MaxSpans || tt.Dropped != 10 {
		t.Fatalf("spans=%d dropped=%d", len(tt.Spans), tt.Dropped)
	}
}

func TestStagesDumpMerge(t *testing.T) {
	t1 := New(1, Config{}, nil)
	t2 := New(2, Config{}, nil)
	t1.Observe(StageLogSync, t1.Start())
	t2.Observe(StageLogSync, t2.Start())
	t2.Observe(StageTSOGroup, t2.Start())

	d := t1.Dump()
	d.Merge(t2.Dump())
	snaps := d.Snapshots()
	byName := map[string]StageSnapshot{}
	for _, s := range snaps {
		byName[s.Stage] = s
	}
	if byName["log_sync"].Count != 2 {
		t.Fatalf("merged log_sync count = %d, want 2", byName["log_sync"].Count)
	}
	if byName["tso_group"].Count != 1 {
		t.Fatalf("merged tso_group count = %d, want 1", byName["tso_group"].Count)
	}
	// Merging a nil dump is a no-op.
	d.Merge(nil)
	if got := d.Snapshots(); len(got) != len(snaps) {
		t.Fatalf("nil merge changed dump")
	}
}

// hookSequence is the exact set of tracer touch points the commit hot path
// executes: shared by the disabled-path alloc test and benchmark.
func hookSequence(tr *Tracer) {
	tt := tr.StartTx(common.GTrxID{Node: 1, Trx: 1}, time.Time{})
	tok := tt.Start()
	tt.Observe(StageBegin, tok)
	btok := tr.Start()
	tr.Observe(StagePLockLocal, btok)
	tok2 := tt.Start()
	tt.Mark(StageTSOSolo, tok2)
	tt.Observe(StageCTSStamp, tok2)
	tr.FinishTx(tt, 0, true)
}

// TestNilTracerZeroAllocs asserts the disabled tracer's hot-path hooks are
// allocation-free: one pointer check each, no time.Now, no escapes.
func TestNilTracerZeroAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		hookSequence(tr)
	})
	if allocs != 0 {
		t.Fatalf("nil-tracer hook sequence allocates %v allocs/op, want 0", allocs)
	}
}

// BenchmarkTracerDisabledCommitHooks is the CI alloc-budget smoke: the full
// per-commit hook sequence against a nil tracer. Expect 0 B/op, 0 allocs/op.
func BenchmarkTracerDisabledCommitHooks(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hookSequence(tr)
	}
}

// BenchmarkTracerEnabledCommitHooks bounds the enabled-tracer overhead for
// the same sequence (expect ~1 trace alloc + span appends per op).
func BenchmarkTracerEnabledCommitHooks(b *testing.B) {
	tr := New(1, Config{}, &rdma.Stats{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hookSequence(tr)
	}
}
