package rdma

import (
	"errors"
	"net"
	"testing"
	"time"

	"polardbmp/internal/common"
	"polardbmp/internal/wire"
)

// shortKeepalive makes half-open detection fast enough for tests. Must run
// before any link is created (tickers capture the interval at start).
func shortKeepalive(t *testing.T, interval time.Duration, misses int) {
	t.Helper()
	oi, om := keepaliveIntervalNs.Load(), keepaliveMisses.Load()
	keepaliveIntervalNs.Store(int64(interval))
	keepaliveMisses.Store(int32(misses))
	t.Cleanup(func() { keepaliveIntervalNs.Store(oi); keepaliveMisses.Store(om) })
}

func shortBackoff(t *testing.T, min, max time.Duration) {
	t.Helper()
	omin, omax := redialBackoffMin, redialBackoffMax
	redialBackoffMin, redialBackoffMax = min, max
	t.Cleanup(func() { redialBackoffMin, redialBackoffMax = omin, omax })
}

func TestLinkFaultPartitionAndHeal(t *testing.T) {
	shortBackoff(t, 5*time.Millisecond, 50*time.Millisecond)
	fa, fb, _, _ := twoProcessFabric(t)
	fa.Register(1).RegisterRegion("mem", 64)
	conn := fb.From(2)
	if err := conn.Read(1, "mem", 0, make([]byte, 8)); err != nil {
		t.Fatalf("pre-fault read: %v", err)
	}

	// Partition the satellite away from the seed: live links die, dials are
	// refused, and every verb degrades to the transient ErrUnreachable.
	if err := fb.SetLinkFault("", FaultPartition, time.Minute); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "partition to cut verbs", func() bool {
		return errors.Is(conn.Read(1, "mem", 0, make([]byte, 8)), common.ErrUnreachable)
	})
	if err := conn.Read(1, "mem", 0, make([]byte, 8)); !common.IsTransient(err) {
		t.Fatalf("partitioned verb must stay transient: %v", err)
	}

	// Healing restores service: redials go through once the backoff window
	// of the slot round-robin picks expires.
	if err := fb.SetLinkFault("", "heal", 0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "heal to restore verbs", func() bool {
		return conn.Read(1, "mem", 0, make([]byte, 8)) == nil
	})
}

func TestLinkFaultPartitionKillsAcceptorSide(t *testing.T) {
	shortBackoff(t, 5*time.Millisecond, 50*time.Millisecond)
	fa, fb, peer, _ := twoProcessFabric(t)
	fa.Register(1).RegisterRegion("mem", 64)
	fb.Register(2).RegisterRegion("tit", 64)
	if err := peer.Announce(2); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "reverse route", func() bool { return fa.transportFor(2) != fa.local })

	// A rule installed on the ACCEPTOR (the seed) matching the dialer's
	// advertised name kills the accepted links, cutting reverse verbs; the
	// dialer's reconnects are killed on arrival while the rule stands.
	if err := fa.SetLinkFault("sat", FaultPartition, time.Minute); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "reverse verbs cut", func() bool {
		return errors.Is(fa.From(1).Write64(2, "tit", 0, 7), common.ErrUnreachable)
	})
	if err := fa.SetLinkFault("sat", "heal", 0); err != nil {
		t.Fatal(err)
	}
	// The acceptor never dials: reverse routes come back when the dialer's
	// own traffic re-establishes the uplink, so keep the satellite talking.
	waitFor(t, "reverse verbs healed", func() bool {
		_ = fb.From(2).Read(1, "mem", 0, make([]byte, 8))
		return fa.From(1).Write64(2, "tit", 0, 7) == nil
	})
}

func TestLinkFaultBlackholeDetectedByKeepalive(t *testing.T) {
	shortKeepalive(t, 20*time.Millisecond, 2)
	shortBackoff(t, 5*time.Millisecond, 50*time.Millisecond)
	fa, fb, _, _ := twoProcessFabric(t)
	fa.Register(1).RegisterRegion("mem", 64)
	conn := fb.From(2)
	if err := conn.Read(1, "mem", 0, make([]byte, 8)); err != nil {
		t.Fatalf("pre-fault read: %v", err)
	}

	// A black hole swallows frames without closing the TCP connection: the
	// in-flight verb must NOT hang forever — idle detection tears the link
	// down and wakes the waiter with a transient error.
	if err := fb.SetLinkFault("", FaultBlackhole, time.Minute); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- conn.Read(1, "mem", 0, make([]byte, 8)) }()
	select {
	case err := <-done:
		if !common.IsTransient(err) {
			t.Fatalf("black-holed verb must fail transient, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("black-holed verb hung: keepalive never fired")
	}

	fb.Faults().Clear("")
	waitFor(t, "heal after blackhole", func() bool {
		return conn.Read(1, "mem", 0, make([]byte, 8)) == nil
	})
}

func TestLinkFaultFlap(t *testing.T) {
	of := flapIntervalNs.Load()
	flapIntervalNs.Store(int64(20 * time.Millisecond))
	t.Cleanup(func() { flapIntervalNs.Store(of) })
	shortBackoff(t, time.Millisecond, 10*time.Millisecond)

	fa := NewFabric(Latency{})
	fb := NewFabric(Latency{})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeFabric(fa, lis, "seed", &wire.NetCounters{})
	nc := &wire.NetCounters{}
	peer, err := DialPeer(fb, lis.Addr().String(), PeerConfig{Name: "sat", Conns: 1, Counters: nc})
	if err != nil {
		t.Fatal(err)
	}
	fb.AttachDefault(peer)
	t.Cleanup(func() { _ = peer.Close(); srv.Close() })
	fa.Register(1).RegisterRegion("mem", 64)
	conn := fb.From(2)

	if err := conn.Read(1, "mem", 0, make([]byte, 8)); err != nil {
		t.Fatalf("pre-fault read: %v", err)
	}

	if err := fb.SetLinkFault("", FaultFlap, 150*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Under flap the link oscillates: kills force redials, so the dialed-
	// connection counter keeps growing while the rule stands. Loopback
	// redials are near-instant, so observe churn, not verb failures.
	dialed := func() int64 { return nc.Snapshot().ConnsDialed }
	start := dialed()
	deadline := time.Now().Add(2 * time.Second)
	for dialed() < start+2 {
		if time.Now().After(deadline) {
			t.Fatalf("flap rule never churned the link: dialed %d -> %d", start, dialed())
		}
		_ = conn.Read(1, "mem", 0, make([]byte, 8)) // keep traffic flowing
		time.Sleep(2 * time.Millisecond)
	}
	waitFor(t, "flap to expire and heal", func() bool {
		return conn.Read(1, "mem", 0, make([]byte, 8)) == nil
	})
}

func TestLinkFaultValidation(t *testing.T) {
	f := NewFabric(Latency{})
	if err := f.SetLinkFault("x", "melt", time.Second); err == nil {
		t.Fatal("bogus mode accepted")
	}
	if err := f.SetLinkFault("x", FaultPartition, 0); err == nil {
		t.Fatal("zero duration accepted")
	}
	if err := f.SetLinkFault("x", FaultPartition, time.Minute); err != nil {
		t.Fatal(err)
	}
	snap := f.Faults().Snapshot()
	if len(snap) != 1 || snap[0].Mode != FaultPartition || snap[0].Peer != "x" {
		t.Fatalf("snapshot %+v", snap)
	}
	if n := f.Faults().Clear("x"); n != 1 {
		t.Fatalf("cleared %d rules", n)
	}
	if len(f.Faults().Snapshot()) != 0 {
		t.Fatal("rules survived clear")
	}
}

func TestRedialBackoffBounds(t *testing.T) {
	// Doubling from the floor, clamped at the ceiling.
	cur := time.Duration(0)
	var seq []time.Duration
	for i := 0; i < 10; i++ {
		cur = nextBackoff(cur)
		seq = append(seq, cur)
	}
	if seq[0] != redialBackoffMin {
		t.Fatalf("first backoff %v, want %v", seq[0], redialBackoffMin)
	}
	for i := 1; i < len(seq); i++ {
		if seq[i] < seq[i-1] {
			t.Fatalf("backoff not monotone: %v", seq)
		}
		if seq[i] > redialBackoffMax {
			t.Fatalf("backoff exceeded max: %v", seq)
		}
	}
	if seq[len(seq)-1] != redialBackoffMax {
		t.Fatalf("backoff never reached max: %v", seq)
	}
	// Jitter stays within ±25%.
	for i := 0; i < 1000; i++ {
		d := jittered(time.Second)
		if d < 750*time.Millisecond || d > 1250*time.Millisecond {
			t.Fatalf("jitter out of bounds: %v", d)
		}
	}
}
