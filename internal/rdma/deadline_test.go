package rdma

import (
	"errors"
	"testing"
	"time"

	"polardbmp/internal/common"
)

// TestConnWithDeadline verifies that an expired-deadline connection refuses
// every verb with ErrDeadlineExceeded before touching the fabric, and that
// the base connection (and an unexpired copy) still works.
func TestConnWithDeadline(t *testing.T) {
	f := NewFabric(Latency{})
	ep := f.Register(7)
	ep.RegisterRegion("r", 64)
	ep.Serve("svc", func(req []byte) ([]byte, error) { return req, nil })

	base := f.From(9)
	live := base.WithDeadline(common.DeadlineAfter(time.Hour))
	dead := base.WithDeadline(common.DeadlineAt(time.Now().Add(-time.Millisecond)))

	var b [8]byte
	if err := base.Read(7, "r", 0, b[:]); err != nil {
		t.Fatalf("base Read: %v", err)
	}
	if err := live.Read(7, "r", 0, b[:]); err != nil {
		t.Fatalf("live Read: %v", err)
	}

	checks := []struct {
		name string
		op   func() error
	}{
		{"Read", func() error { return dead.Read(7, "r", 0, b[:]) }},
		{"Write", func() error { return dead.Write(7, "r", 0, b[:]) }},
		{"CAS64", func() error { _, err := dead.CAS64(7, "r", 0, 0, 1); return err }},
		{"FetchAdd64", func() error { _, err := dead.FetchAdd64(7, "r", 0, 1); return err }},
		{"Call", func() error { _, err := dead.Call(7, "svc", []byte{1}); return err }},
		{"ReadV", func() error { return dead.ReadV(7, "r", []Seg{{Off: 0, Buf: b[:]}}) }},
		{"WriteV", func() error { return dead.WriteV(7, "r", []Seg{{Off: 0, Buf: b[:]}}) }},
		{"CallBatch", func() error { _, err := dead.CallBatch(7, "svc", [][]byte{{1}}); return err }},
	}
	r0, w0, a0, p0, _, _ := f.Stats().Snapshot()
	for _, c := range checks {
		if err := c.op(); !errors.Is(err, common.ErrDeadlineExceeded) {
			t.Fatalf("%s on expired conn: err = %v, want ErrDeadlineExceeded", c.name, err)
		}
	}
	r1, w1, a1, p1, _, _ := f.Stats().Snapshot()
	if r0 != r1 || w0 != w1 || a0 != a1 || p0 != p1 {
		t.Fatalf("expired-deadline verbs reached the fabric: ops %d/%d/%d/%d -> %d/%d/%d/%d",
			r0, w0, a0, p0, r1, w1, a1, p1)
	}
}
