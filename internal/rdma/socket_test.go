package rdma

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"polardbmp/internal/common"
	"polardbmp/internal/wire"
)

// twoProcessFabric wires two in-test fabrics through a real TCP socket the
// way two mpserver processes are wired: fa listens, fb dials and uses fa as
// its default route, and fb's hosted node is reverse-routable from fa.
func twoProcessFabric(t *testing.T) (fa, fb *Fabric, peer *Peer, srv *FabricServer) {
	t.Helper()
	fa = NewFabric(Latency{})
	fb = NewFabric(Latency{})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv = ServeFabric(fa, lis, "seed", &wire.NetCounters{})
	peer, err = DialPeer(fb, lis.Addr().String(), PeerConfig{Name: "sat", Conns: 2, Counters: &wire.NetCounters{}})
	if err != nil {
		t.Fatal(err)
	}
	fb.AttachDefault(peer)
	t.Cleanup(func() {
		_ = peer.Close()
		srv.Close()
	})
	return fa, fb, peer, srv
}

func waitFor(t *testing.T, what string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !pred() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSocketTransportVerbParity(t *testing.T) {
	fa, fb, _, _ := twoProcessFabric(t)
	epA := fa.Register(1)
	epA.RegisterRegion("mem", 4096)
	epA.Serve("echo", func(req []byte) ([]byte, error) {
		return append([]byte("re:"), req...), nil
	})

	conn := fb.From(2)

	// One-sided write then read round-trips through the socket.
	if err := conn.Write(1, "mem", 100, []byte("hello fabric")); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, 12)
	if err := conn.Read(1, "mem", 100, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(got) != "hello fabric" {
		t.Fatalf("read back %q", got)
	}

	// Atomics return the previous value and mutate remotely.
	if err := conn.Write64(1, "mem", 0, 41); err != nil {
		t.Fatal(err)
	}
	if prev, err := conn.FetchAdd64(1, "mem", 0, 1); err != nil || prev != 41 {
		t.Fatalf("fetchadd: %v prev=%d", err, prev)
	}
	if prev, err := conn.CAS64(1, "mem", 0, 42, 7); err != nil || prev != 42 {
		t.Fatalf("cas: %v prev=%d", err, prev)
	}
	if v, err := conn.Read64(1, "mem", 0); err != nil || v != 7 {
		t.Fatalf("read64: %v v=%d", err, v)
	}

	// Vectored verbs land every segment.
	segs := []Seg{{Off: 8, Buf: []byte("aaaa")}, {Off: 200, Buf: []byte("bb")}}
	if err := conn.WriteV(1, "mem", segs); err != nil {
		t.Fatalf("writev: %v", err)
	}
	rsegs := []Seg{{Off: 8, Buf: make([]byte, 4)}, {Off: 200, Buf: make([]byte, 2)}}
	if err := conn.ReadV(1, "mem", rsegs); err != nil {
		t.Fatalf("readv: %v", err)
	}
	if !bytes.Equal(rsegs[0].Buf, []byte("aaaa")) || !bytes.Equal(rsegs[1].Buf, []byte("bb")) {
		t.Fatalf("readv got %q %q", rsegs[0].Buf, rsegs[1].Buf)
	}

	// RPC and batched RPC.
	resp, err := conn.Call(1, "echo", []byte("ping"))
	if err != nil || string(resp) != "re:ping" {
		t.Fatalf("call: %v %q", err, resp)
	}
	resps, err := conn.CallBatch(1, "echo", [][]byte{[]byte("a"), []byte("b")})
	if err != nil || len(resps) != 2 || string(resps[0]) != "re:a" || string(resps[1]) != "re:b" {
		t.Fatalf("callbatch: %v %q", err, resps)
	}
}

func TestSocketTransportErrorMapping(t *testing.T) {
	fa, fb, _, srv := twoProcessFabric(t)
	epA := fa.Register(1)
	epA.RegisterRegion("mem", 64)
	epA.Serve("boom", func(req []byte) ([]byte, error) {
		return nil, fmt.Errorf("shed: %w", common.ErrOverloaded)
	})
	conn := fb.From(2)

	if err := conn.Read(1, "nope", 0, make([]byte, 8)); !errors.Is(err, common.ErrNoRegion) {
		t.Fatalf("want ErrNoRegion, got %v", err)
	}
	if err := conn.Read(1, "mem", 60, make([]byte, 8)); !errors.Is(err, common.ErrOutOfBounds) {
		t.Fatalf("want ErrOutOfBounds, got %v", err)
	}
	if err := conn.Read(9, "mem", 0, make([]byte, 8)); !errors.Is(err, common.ErrNodeDown) {
		t.Fatalf("unknown node: want ErrNodeDown, got %v", err)
	}
	if _, err := conn.Call(1, "boom", nil); !errors.Is(err, common.ErrOverloaded) {
		t.Fatalf("want ErrOverloaded across the wire, got %v", err)
	}
	// Typed errors must stay retry-classified exactly as in-process.
	if _, err := conn.Call(1, "boom", nil); !common.IsTransient(err) {
		t.Fatalf("ErrOverloaded lost its transient classification: %v", err)
	}

	srv.Close()
	waitFor(t, "link teardown", func() bool {
		err := conn.Read(1, "mem", 0, make([]byte, 8))
		return errors.Is(err, common.ErrUnreachable)
	})
	if err := conn.Read(1, "mem", 0, make([]byte, 8)); !common.IsTransient(err) {
		t.Fatal("dead peer must be a transient failure")
	}
}

func TestSocketTransportReverseRouting(t *testing.T) {
	fa, fb, peer, _ := twoProcessFabric(t)
	fa.Register(1).RegisterRegion("mem", 64)
	// The satellite registers its node AFTER dialing and announces it; the
	// seed can then issue verbs to it over the accepted connections.
	epB := fb.Register(2)
	epB.RegisterRegion("tit", 128)
	epB.Serve("revoke", func(req []byte) ([]byte, error) { return []byte("ok"), nil })
	if err := peer.Announce(2); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "reverse route", func() bool {
		return fa.transportFor(2) != fa.local
	})
	if err := fa.From(1).Write64(2, "tit", 8, 77); err != nil {
		t.Fatalf("seed->satellite write: %v", err)
	}
	if v, err := fb.From(2).Read64(2, "tit", 8); err != nil || v != 77 {
		t.Fatalf("satellite local read: %v %d", err, v)
	}
	resp, err := fa.From(1).Call(2, "revoke", []byte("x"))
	if err != nil || string(resp) != "ok" {
		t.Fatalf("seed->satellite rpc: %v %q", err, resp)
	}
}

func TestSocketTransportPipelining(t *testing.T) {
	fa, fb, _, _ := twoProcessFabric(t)
	epA := fa.Register(1)
	epA.RegisterRegion("mem", 8*64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			conn := fb.From(common.NodeID(2))
			for i := 0; i < 50; i++ {
				off := g * 64
				if err := conn.Write64(1, "mem", off, uint64(g*1000+i)); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				v, err := conn.Read64(1, "mem", off)
				if err != nil || v != uint64(g*1000+i) {
					t.Errorf("read: %v v=%d", err, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestSocketTransportStats(t *testing.T) {
	fa, fb, _, _ := twoProcessFabric(t)
	fa.Register(1).RegisterRegion("mem", 64)
	conn := fb.From(2)
	if err := conn.Write(1, "mem", 0, make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	if err := conn.Read(1, "mem", 0, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	// Issuing fabric accounts globally and per-source, as in-process.
	r, w, _, _, br, bw := fb.Stats().Snapshot()
	if r != 1 || w != 1 || br != 16 || bw != 32 {
		t.Fatalf("issuer fabric stats r=%d w=%d br=%d bw=%d", r, w, br, bw)
	}
	sr, sw, _, _, _, _ := fb.SrcStats(2).Snapshot()
	if sr != 1 || sw != 1 {
		t.Fatalf("per-source stats r=%d w=%d", sr, sw)
	}
	// The serving fabric accounts the executed verbs too (its own view).
	ar, aw, _, _, _, _ := fa.Stats().Snapshot()
	if ar != 1 || aw != 1 {
		t.Fatalf("server fabric stats r=%d w=%d", ar, aw)
	}
}

func TestSocketTransportInjectionAtIssuer(t *testing.T) {
	fa, fb, _, _ := twoProcessFabric(t)
	fa.Register(1).RegisterRegion("mem", 64)
	var drops int
	var mu sync.Mutex
	fb.SetInjector(func(op common.FaultOp) common.FaultDecision {
		mu.Lock()
		defer mu.Unlock()
		if op.Class == common.FaultRead && drops == 0 {
			drops++
			return common.FaultDecision{Err: common.ErrInjected}
		}
		return common.FaultDecision{}
	})
	conn := fb.From(2)
	err := conn.Read(1, "mem", 0, make([]byte, 8))
	if !errors.Is(err, common.ErrInjected) {
		t.Fatalf("issuer-side injection must fire before the wire: %v", err)
	}
	if err := conn.Read(1, "mem", 0, make([]byte, 8)); err != nil {
		t.Fatalf("after injection: %v", err)
	}
}
