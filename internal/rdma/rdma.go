// Package rdma simulates the RDMA network PolarDB-MP is co-designed with
// (§2.5, §3): registered memory regions addressable by one-sided verbs
// (READ/WRITE/CAS/FETCH-ADD) plus an RDMA-based RPC layer.
//
// The simulation is an in-process fabric. Each node registers named byte
// regions; remote nodes access them only through fabric verbs, never through
// shared Go pointers, so op counts and the memory-vs-storage latency gap the
// paper's evaluation relies on are preserved (DESIGN.md substitution S1).
// Latency injection is configurable; with zero injected latency an in-process
// verb costs a few hundred nanoseconds, which stands in for the 1-3µs of a
// real one-sided op while shared storage I/O is simulated at ~150µs.
package rdma

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"polardbmp/internal/common"
	"polardbmp/internal/metrics"
)

// Handler serves one RPC method. The request buffer must not be retained.
type Handler func(req []byte) ([]byte, error)

// Latency configures injected delays per verb class. Zero values inject
// nothing (the in-process cost itself models the fast fabric).
type Latency struct {
	OneSided time.Duration // READ/WRITE/CAS/FETCH-ADD
	RPC      time.Duration // request/response round trip
}

func (l Latency) sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// Stats counts fabric operations, for the paper's message-overhead arguments
// (e.g. lazy PLock release, §4.3.1) and the ablation benches.
type Stats struct {
	Reads      metrics.Counter
	Writes     metrics.Counter
	Atomics    metrics.Counter
	RPCs       metrics.Counter
	BytesRead  metrics.Counter
	BytesWrite metrics.Counter
}

// Snapshot returns the current counter values. Vectored verbs (ReadV /
// WriteV / CallBatch) count as ONE op in reads/writes/rpcs — the doorbell is
// the unit the op-budget arguments are made in — while the byte counters
// accumulate every segment.
func (s *Stats) Snapshot() (reads, writes, atomics, rpcs, bytesRead, bytesWrite int64) {
	return s.Reads.Load(), s.Writes.Load(), s.Atomics.Load(), s.RPCs.Load(),
		s.BytesRead.Load(), s.BytesWrite.Load()
}

// Reset zeroes all counters.
func (s *Stats) Reset() {
	s.Reads.Reset()
	s.Writes.Reset()
	s.Atomics.Reset()
	s.RPCs.Reset()
	s.BytesRead.Reset()
	s.BytesWrite.Reset()
}

// Fabric connects a set of endpoints. It is safe for concurrent use.
type Fabric struct {
	latency Latency
	stats   Stats
	// inj holds a common.FaultInjector consulted before every verb
	// (nil function value when injection is off).
	inj atomic.Value

	mu        sync.RWMutex
	endpoints map[common.NodeID]*Endpoint

	// srcStats mirrors the fabric-wide counters per issuing node, so the
	// tracer can attribute ops and bytes to the node that spent them.
	srcMu    sync.Mutex
	srcStats map[common.NodeID]*Stats

	// local is the in-process transport (boxed once so the hot path never
	// allocates); routes holds the optional remote routing table, nil in
	// single-process deployments so transportFor is one atomic load.
	local    Transport
	routes   routesPtr
	routesMu sync.Mutex

	// faults is the connection-level fault registry for this fabric's socket
	// links (faults.go); zero value means chaos off.
	faults LinkFaults
}

// NewFabric creates an empty fabric with the given latency model.
func NewFabric(latency Latency) *Fabric {
	f := &Fabric{
		latency:   latency,
		endpoints: make(map[common.NodeID]*Endpoint),
	}
	f.local = &procTransport{f: f}
	return f
}

// Stats exposes the fabric's operation counters.
func (f *Fabric) Stats() *Stats { return &f.stats }

// SrcStats returns the per-source counters for ops issued as node. The
// counters survive node crash/restart (they are cumulative per identity)
// and are shared by every Conn bound to that source. Ops issued through the
// raw Fabric methods (unbound source) are not attributed.
func (f *Fabric) SrcStats(node common.NodeID) *Stats {
	f.srcMu.Lock()
	defer f.srcMu.Unlock()
	if f.srcStats == nil {
		f.srcStats = make(map[common.NodeID]*Stats)
	}
	s := f.srcStats[node]
	if s == nil {
		s = &Stats{}
		f.srcStats[node] = s
	}
	return s
}

// SetInjector installs (or, with nil, removes) a fault injector consulted
// before every fabric verb. Safe to call while ops are in flight.
func (f *Fabric) SetInjector(inj common.FaultInjector) { f.inj.Store(inj) }

// inject consults the installed injector for one op. It sleeps injected
// delays, returns a non-nil error for dropped/unreachable ops, and reports
// the duplicate/drop-reply directives for the caller to apply.
func (f *Fabric) inject(class string, src, dst common.NodeID, name string, n int) (dup, dropReply bool, err error) {
	v := f.inj.Load()
	if v == nil {
		return false, false, nil
	}
	inj, _ := v.(common.FaultInjector)
	if inj == nil {
		return false, false, nil
	}
	d := inj(common.FaultOp{
		Layer: common.FaultLayerRDMA, Class: class,
		Src: src, Dst: dst, Name: name, Len: n,
	})
	if d.Delay > 0 {
		time.Sleep(d.Delay)
	}
	if d.Err != nil {
		return false, false, fmt.Errorf("rdma: %s %q @ node %d: %w", class, name, dst, d.Err)
	}
	return d.Duplicate, d.DropReply, nil
}

// Conn is a source-bound view of the fabric: the same verbs, but every op
// carries the issuing node's identity so fault injection can model node↔node
// partitions and slow links. Consumers that know their node should prefer a
// Conn; the raw Fabric methods issue ops with an unbound (AnyNode) source.
type Conn struct {
	f   *Fabric
	src common.NodeID
	ss  *Stats // per-source mirror of the fabric counters
	dl  common.Deadline
}

// From returns a Conn issuing ops as src.
func (f *Fabric) From(src common.NodeID) Conn {
	return Conn{f: f, src: src, ss: f.SrcStats(src)}
}

// Fabric returns the underlying fabric.
func (c Conn) Fabric() *Fabric { return c.f }

// WithDeadline returns a copy of the connection that refuses to issue NEW
// verbs once dl expires, failing them with ErrDeadlineExceeded before they
// reach the wire. Verbs already in flight are not interrupted (one-sided
// RDMA has no cancel); the point is that a deadline-bounded caller stops
// consuming fabric budget the moment its own budget is gone. Conn is a
// value, so this is allocation-free and the base connection is unchanged.
func (c Conn) WithDeadline(dl common.Deadline) Conn {
	c.dl = dl
	return c
}

// Read performs a one-sided read of len(dst) bytes from (node, region, off).
func (c Conn) Read(node common.NodeID, region string, off int, dst []byte) error {
	if err := c.dl.Err(); err != nil {
		return err
	}
	return c.f.read(c.src, node, region, off, dst, c.ss)
}

// Write performs a one-sided write of src to (node, region, off).
func (c Conn) Write(node common.NodeID, region string, off int, src []byte) error {
	if err := c.dl.Err(); err != nil {
		return err
	}
	return c.f.write(c.src, node, region, off, src, c.ss)
}

// Read64 reads an 8-byte little-endian word.
func (c Conn) Read64(node common.NodeID, region string, off int) (uint64, error) {
	var b [8]byte
	if err := c.Read(node, region, off, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// Write64 writes an 8-byte little-endian word.
func (c Conn) Write64(node common.NodeID, region string, off int, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return c.Write(node, region, off, b[:])
}

// CAS64 atomically compares-and-swaps the word at (node, region, off).
func (c Conn) CAS64(node common.NodeID, region string, off int, old, new uint64) (uint64, error) {
	if err := c.dl.Err(); err != nil {
		return 0, err
	}
	return c.f.cas64(c.src, node, region, off, old, new, c.ss)
}

// FetchAdd64 atomically adds delta to the word at (node, region, off).
func (c Conn) FetchAdd64(node common.NodeID, region string, off int, delta uint64) (uint64, error) {
	if err := c.dl.Err(); err != nil {
		return 0, err
	}
	return c.f.fetchAdd64(c.src, node, region, off, delta, c.ss)
}

// Call invokes an RPC service method on node.
func (c Conn) Call(node common.NodeID, service string, req []byte) ([]byte, error) {
	if err := c.dl.Err(); err != nil {
		return nil, err
	}
	return c.f.call(c.src, node, service, req, c.ss)
}

// Register creates (or revives) the endpoint for node. Registering an id
// that already has a live endpoint panics: that is a wiring bug.
func (f *Fabric) Register(node common.NodeID) *Endpoint {
	f.mu.Lock()
	defer f.mu.Unlock()
	if ep, ok := f.endpoints[node]; ok && !ep.isDown() {
		panic(fmt.Sprintf("rdma: node %d already registered", node))
	}
	ep := &Endpoint{
		node:     node,
		fabric:   f,
		regions:  make(map[string]*Region),
		services: make(map[string]Handler),
	}
	f.endpoints[node] = ep
	return ep
}

// lookup returns the live endpoint for node.
func (f *Fabric) lookup(node common.NodeID) (*Endpoint, error) {
	f.mu.RLock()
	ep := f.endpoints[node]
	f.mu.RUnlock()
	if ep == nil || ep.isDown() {
		return nil, fmt.Errorf("rdma: node %d: %w", node, common.ErrNodeDown)
	}
	return ep, nil
}

// Read performs a one-sided read of len(dst) bytes from (node, region, off).
func (f *Fabric) Read(node common.NodeID, region string, off int, dst []byte) error {
	return f.read(common.AnyNode, node, region, off, dst, nil)
}

func (f *Fabric) read(src, node common.NodeID, region string, off int, dst []byte, ss *Stats) error {
	dup, _, err := f.inject(common.FaultRead, src, node, region, len(dst))
	if err != nil {
		return err
	}
	return f.transportFor(node).Read(src, node, region, off, dst, dup, ss)
}

// Write performs a one-sided write of src to (node, region, off).
func (f *Fabric) Write(node common.NodeID, region string, off int, src []byte) error {
	return f.write(common.AnyNode, node, region, off, src, nil)
}

func (f *Fabric) write(src, node common.NodeID, region string, off int, data []byte, ss *Stats) error {
	dup, _, err := f.inject(common.FaultWrite, src, node, region, len(data))
	if err != nil {
		return err
	}
	return f.transportFor(node).Write(src, node, region, off, data, dup, ss)
}

// Read64 reads an 8-byte little-endian word.
func (f *Fabric) Read64(node common.NodeID, region string, off int) (uint64, error) {
	var b [8]byte
	if err := f.Read(node, region, off, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// Write64 writes an 8-byte little-endian word.
func (f *Fabric) Write64(node common.NodeID, region string, off int, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return f.Write(node, region, off, b[:])
}

// CAS64 atomically compares-and-swaps the word at (node, region, off).
// It returns the value observed before the operation; the swap happened iff
// that equals old.
func (f *Fabric) CAS64(node common.NodeID, region string, off int, old, new uint64) (uint64, error) {
	return f.cas64(common.AnyNode, node, region, off, old, new, nil)
}

func (f *Fabric) cas64(src, node common.NodeID, region string, off int, old, new uint64, ss *Stats) (uint64, error) {
	// Atomics are never duplicated: they are not idempotent.
	if _, _, err := f.inject(common.FaultAtomic, src, node, region, 8); err != nil {
		return 0, err
	}
	return f.transportFor(node).CAS64(src, node, region, off, old, new, ss)
}

// FetchAdd64 atomically adds delta to the word at (node, region, off) and
// returns the previous value.
func (f *Fabric) FetchAdd64(node common.NodeID, region string, off int, delta uint64) (uint64, error) {
	return f.fetchAdd64(common.AnyNode, node, region, off, delta, nil)
}

func (f *Fabric) fetchAdd64(src, node common.NodeID, region string, off int, delta uint64, ss *Stats) (uint64, error) {
	if _, _, err := f.inject(common.FaultAtomic, src, node, region, 8); err != nil {
		return 0, err
	}
	return f.transportFor(node).FetchAdd64(src, node, region, off, delta, ss)
}

// Call invokes an RPC service method on node. The response buffer is owned
// by the caller.
func (f *Fabric) Call(node common.NodeID, service string, req []byte) ([]byte, error) {
	return f.call(common.AnyNode, node, service, req, nil)
}

func (f *Fabric) call(src, node common.NodeID, service string, req []byte, ss *Stats) ([]byte, error) {
	_, dropReply, err := f.inject(common.FaultRPC, src, node, service, len(req))
	if err != nil {
		return nil, err
	}
	return f.transportFor(node).Call(src, node, service, req, dropReply, ss)
}

func errNodeDiedDuringCall(node common.NodeID) error {
	return fmt.Errorf("rdma: node %d died during call: %w", node, common.ErrNodeDown)
}

func errReplyLost(service string, node common.NodeID) error {
	return fmt.Errorf("rdma: rpc %q @ node %d: response lost: %w", service, node, common.ErrInjected)
}

// Endpoint is one node's attachment to the fabric: its registered memory
// regions and RPC services.
type Endpoint struct {
	node   common.NodeID
	fabric *Fabric

	mu       sync.RWMutex
	down     bool
	regions  map[string]*Region
	services map[string]Handler
}

// Node returns the endpoint's node id.
func (ep *Endpoint) Node() common.NodeID { return ep.node }

// RegisterRegion allocates and registers a memory region of size bytes.
func (ep *Endpoint) RegisterRegion(name string, size int) *Region {
	r := &Region{buf: make([]byte, size)}
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if _, dup := ep.regions[name]; dup {
		panic(fmt.Sprintf("rdma: node %d region %q already registered", ep.node, name))
	}
	ep.regions[name] = r
	return r
}

// Serve registers an RPC handler under the given service name.
func (ep *Endpoint) Serve(service string, h Handler) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	ep.services[service] = h
}

// Deregister tears the endpoint down, simulating a node crash: all verbs and
// calls targeting it fail with ErrNodeDown until the node re-registers.
func (ep *Endpoint) Deregister() {
	ep.mu.Lock()
	ep.down = true
	ep.mu.Unlock()
}

func (ep *Endpoint) isDown() bool {
	ep.mu.RLock()
	defer ep.mu.RUnlock()
	return ep.down
}

func (ep *Endpoint) service(name string) (Handler, error) {
	ep.mu.RLock()
	h := ep.services[name]
	ep.mu.RUnlock()
	if h == nil {
		return nil, fmt.Errorf("rdma: node %d service %q: %w", ep.node, name, common.ErrNoService)
	}
	return h, nil
}

func (ep *Endpoint) region(name string) (*Region, error) {
	ep.mu.RLock()
	r := ep.regions[name]
	ep.mu.RUnlock()
	if r == nil {
		return nil, fmt.Errorf("rdma: node %d region %q: %w", ep.node, name, common.ErrNoRegion)
	}
	return r, nil
}

// Region is a registered memory region. The owner may access it directly
// (local memory); remote nodes go through fabric verbs. All accesses are
// internally synchronized at word/range granularity by a region lock, which
// stands in for PCIe atomicity of the real NIC.
type Region struct {
	mu  sync.RWMutex
	buf []byte
}

// Size returns the region's length in bytes.
func (r *Region) Size() int {
	return len(r.buf)
}

func (r *Region) check(off, n int) error {
	if off < 0 || n < 0 || off+n > len(r.buf) {
		return fmt.Errorf("rdma: access [%d,%d) outside region of %d bytes: %w",
			off, off+n, len(r.buf), common.ErrOutOfBounds)
	}
	return nil
}

func (r *Region) read(off int, dst []byte) error {
	if err := r.check(off, len(dst)); err != nil {
		return err
	}
	r.mu.RLock()
	copy(dst, r.buf[off:])
	r.mu.RUnlock()
	return nil
}

func (r *Region) write(off int, src []byte) error {
	if err := r.check(off, len(src)); err != nil {
		return err
	}
	r.mu.Lock()
	copy(r.buf[off:], src)
	r.mu.Unlock()
	return nil
}

func (r *Region) cas64(off int, old, new uint64) (uint64, error) {
	if err := r.check(off, 8); err != nil {
		return 0, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := binary.LittleEndian.Uint64(r.buf[off:])
	if cur == old {
		binary.LittleEndian.PutUint64(r.buf[off:], new)
	}
	return cur, nil
}

func (r *Region) fetchAdd64(off int, delta uint64) (uint64, error) {
	if err := r.check(off, 8); err != nil {
		return 0, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := binary.LittleEndian.Uint64(r.buf[off:])
	binary.LittleEndian.PutUint64(r.buf[off:], cur+delta)
	return cur, nil
}

// LocalRead reads from the region without fabric accounting: the owner
// touching its own registered memory.
func (r *Region) LocalRead(off int, dst []byte) error { return r.read(off, dst) }

// LocalWrite writes to the region without fabric accounting.
func (r *Region) LocalWrite(off int, src []byte) error { return r.write(off, src) }

// LocalCAS64 CASes a word in the owner's own region.
func (r *Region) LocalCAS64(off int, old, new uint64) (uint64, error) {
	return r.cas64(off, old, new)
}

// LocalRead64 reads a word from the owner's own region.
func (r *Region) LocalRead64(off int) (uint64, error) {
	var b [8]byte
	if err := r.read(off, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// LocalWrite64 writes a word to the owner's own region.
func (r *Region) LocalWrite64(off int, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return r.write(off, b[:])
}
