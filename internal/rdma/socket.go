package rdma

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"polardbmp/internal/common"
	"polardbmp/internal/wire"
)

// Socket transport: fabric verbs between OS processes over TCP, speaking the
// wire frame codec. The protocol is symmetric after the handshake — either
// end may issue verb requests — so a satellite's dialed uplink doubles as the
// seed's reverse route to the satellite's endpoints (TIT reads, revoke RPCs,
// invalidation pushes) without a listener on the satellite.
//
// Handshake: the dialer opens N connections and sends a hello control frame
// on each (protocol version, a process-unique peer id, its process name and
// the node ids it hosts); the acceptor verifies the version, groups the
// connections of one peer id into a single logical peer, answers with a
// hello-ack and attaches a route for every announced node. Nodes registered
// after dialing (a satellite learns its id from the seed) are announced late
// via an announce control frame.
//
// Requests are pipelined: every frame carries a correlation id, each request
// is served in its own goroutine, and responses are matched to waiters by
// id, so one connection sustains many in-flight verbs like a QP with a deep
// send queue.

// FabricProtoVersion is the peer-link protocol version. The handshake
// refuses mismatched peers so frame-format changes fail loudly at connect
// time rather than corrupting verbs mid-stream.
const FabricProtoVersion uint16 = 1

// Fabric-peer opcodes (wire.KindRequest).
const (
	fopRead uint8 = iota + 1
	fopWrite
	fopReadV
	fopWriteV
	fopCAS
	fopFAA
	fopCall
	fopCallBatch
)

// Control opcodes (wire.KindControl).
const (
	copHello uint8 = iota + 1
	copHelloAck
	copAnnounce
	copPing
)

// Keepalive: both ends of a link send copPing every keepalive interval and
// track the arrival time of the last frame of any kind. A link that has
// received nothing for keepaliveMisses intervals is declared half-open and
// failed with ErrUnreachable — TCP alone can take many minutes to notice a
// peer that vanished without a FIN (SIGKILL of the process leaves a FIN, but
// a dropped switch, a black-holed route, or injected FaultBlackhole do not).
// Atomics because tests shorten them while links from earlier tests are
// still winding down.
var (
	keepaliveIntervalNs atomic.Int64
	keepaliveMisses     atomic.Int32
)

func init() {
	keepaliveIntervalNs.Store(int64(time.Second))
	keepaliveMisses.Store(3)
}

func errPeerUnreachable(detail string) error {
	return fmt.Errorf("rdma: peer %s: %w", detail, common.ErrUnreachable)
}

// linkResp is one matched response: the status+result payload (owned by the
// receiver) or the connection error that killed the wait.
type linkResp struct {
	payload []byte
	err     error
}

// peerLink is one framed TCP connection. Both ends run the same read loop:
// responses wake the matching waiter, requests execute against the local
// fabric in their own goroutine.
type peerLink struct {
	f    *Fabric
	c    net.Conn
	nc   *wire.NetCounters
	name string // remote's advertised name, for error detail

	wmu  sync.Mutex
	wbuf []byte

	nextID  atomic.Uint64
	pmu     sync.Mutex
	pending map[uint64]chan linkResp
	closed  bool

	// lastRecv is the unix-nano arrival time of the last frame (any kind);
	// the keepalive loop fails the link when it goes stale.
	lastRecv atomic.Int64

	// rp is the acceptor-side connection group this link belongs to (nil on
	// dialed links); onClose removes the link from its owner.
	rp      *remotePeer
	onClose func(*peerLink)
}

func newPeerLink(f *Fabric, c net.Conn, nc *wire.NetCounters) *peerLink {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetKeepAlive(true)
		_ = tc.SetKeepAlivePeriod(15 * time.Second)
	}
	l := &peerLink{f: f, c: c, nc: nc, pending: make(map[uint64]chan linkResp)}
	l.lastRecv.Store(time.Now().UnixNano())
	return l
}

// start registers the link with the fabric's fault registry and runs its
// read and keepalive loops. Called once per link, after the handshake.
func (l *peerLink) start() {
	l.f.faults.register(l)
	go l.readLoop()
	go l.keepaliveLoop()
}

// keepaliveLoop pings the remote and enforces the idle bound until the link
// dies. The interval and miss budget are captured once at start.
func (l *peerLink) keepaliveLoop() {
	interval := time.Duration(keepaliveIntervalNs.Load())
	misses := int(keepaliveMisses.Load())
	t := time.NewTicker(interval)
	defer t.Stop()
	for range t.C {
		if !l.alive() {
			return
		}
		idle := time.Since(time.Unix(0, l.lastRecv.Load()))
		if idle > time.Duration(misses)*interval {
			l.fail(fmt.Errorf("rdma: link %s: no frames for %v (half-open)", l.name, idle.Round(time.Millisecond)))
			return
		}
		if err := l.send(wire.Frame{Kind: wire.KindControl, Op: copPing}); err != nil {
			l.fail(err)
			return
		}
	}
}

// send writes one frame (serialized against concurrent senders). A
// black-holed link reports success without writing — exactly what a
// half-open TCP connection does until its send buffer fills.
func (l *peerLink) send(fr wire.Frame) error {
	if l.f.faults.drop(l.name) {
		return nil
	}
	l.wmu.Lock()
	defer l.wmu.Unlock()
	var err error
	l.wbuf, err = wire.WriteFrame(l.c, l.wbuf, fr)
	if err != nil {
		return err
	}
	l.nc.FrameOut(fr.WireSize())
	return nil
}

// call issues one request and blocks for its response payload.
func (l *peerLink) call(op uint8, payload []byte) ([]byte, error) {
	id := l.nextID.Add(1)
	ch := make(chan linkResp, 1)
	l.pmu.Lock()
	if l.closed {
		l.pmu.Unlock()
		return nil, errPeerUnreachable(l.name + " (link closed)")
	}
	l.pending[id] = ch
	l.pmu.Unlock()
	if err := l.send(wire.Frame{Kind: wire.KindRequest, Op: op, ID: id, Payload: payload}); err != nil {
		l.pmu.Lock()
		delete(l.pending, id)
		l.pmu.Unlock()
		l.fail(err)
		return nil, errPeerUnreachable(l.name + ": " + err.Error())
	}
	r := <-ch
	if r.err != nil {
		return nil, errPeerUnreachable(l.name + ": " + r.err.Error())
	}
	rd := wire.NewReader(r.payload)
	if err := wire.DecodeStatus(rd); err != nil {
		return nil, err
	}
	return rd.Rest(), nil
}

// fail tears the link down and wakes every waiter with err.
func (l *peerLink) fail(err error) {
	l.pmu.Lock()
	if l.closed {
		l.pmu.Unlock()
		return
	}
	l.closed = true
	waiters := l.pending
	l.pending = nil
	l.pmu.Unlock()
	_ = l.c.Close()
	l.f.faults.deregister(l)
	for _, ch := range waiters {
		ch <- linkResp{err: err}
	}
	l.nc.ConnClosed()
	if l.onClose != nil {
		l.onClose(l)
	}
}

func (l *peerLink) alive() bool {
	l.pmu.Lock()
	defer l.pmu.Unlock()
	return !l.closed
}

// readLoop demultiplexes incoming frames until the connection dies.
func (l *peerLink) readLoop() {
	var buf []byte
	for {
		fr, b, err := wire.ReadFrame(l.c, buf)
		if err != nil {
			if errors.Is(err, wire.ErrBadFrame) || errors.Is(err, wire.ErrFrameTooLarge) {
				l.nc.CodecError()
			}
			l.fail(err)
			return
		}
		buf = b
		if l.f.faults.drop(l.name) {
			// Black hole: the frame arrived but the chaos rule says this link
			// is dead to the world — discard it without refreshing lastRecv,
			// so idle detection fires here too.
			continue
		}
		l.lastRecv.Store(time.Now().UnixNano())
		l.nc.FrameIn(fr.WireSize())
		switch fr.Kind {
		case wire.KindResponse:
			l.pmu.Lock()
			ch := l.pending[fr.ID]
			delete(l.pending, fr.ID)
			l.pmu.Unlock()
			if ch != nil {
				cp := make([]byte, len(fr.Payload))
				copy(cp, fr.Payload)
				ch <- linkResp{payload: cp}
			}
		case wire.KindRequest:
			cp := make([]byte, len(fr.Payload))
			copy(cp, fr.Payload)
			go l.serveRequest(fr.Op, fr.ID, cp)
		case wire.KindControl:
			switch fr.Op {
			case copAnnounce:
				l.handleAnnounce(fr.Payload)
			case copPing:
				// Receiving it already refreshed lastRecv; nothing to answer —
				// the remote runs its own ping loop.
			}
		default:
			l.nc.CodecError()
			l.fail(fmt.Errorf("wire: unknown frame kind %d", fr.Kind))
			return
		}
	}
}

// handleAnnounce attaches routes for nodes the remote registered after the
// handshake (a satellite announcing its freshly allocated node id).
func (l *peerLink) handleAnnounce(payload []byte) {
	if l.rp == nil {
		return
	}
	rd := wire.NewReader(payload)
	k := int(rd.U16())
	for i := 0; i < k && rd.Err() == nil; i++ {
		l.rp.addNode(common.NodeID(rd.U16()))
	}
}

// serveRequest executes one incoming verb against the local fabric and sends
// the response. Injection, latency and stats apply at this fabric exactly as
// for a locally issued verb, with the op attributed to the original source.
func (l *peerLink) serveRequest(op uint8, id uint64, payload []byte) {
	l.nc.EnterOp()
	result, err := l.execute(op, payload)
	l.nc.LeaveOp()
	resp := wire.AppendStatus(nil, err)
	resp = append(resp, result...)
	if serr := l.send(wire.Frame{Kind: wire.KindResponse, Op: op, ID: id, Payload: resp}); serr != nil {
		l.fail(serr)
	}
}

func (l *peerLink) srcStats(src common.NodeID) *Stats {
	if src == common.AnyNode {
		return nil
	}
	return l.f.SrcStats(src)
}

func (l *peerLink) execute(op uint8, payload []byte) ([]byte, error) {
	rd := wire.NewReader(payload)
	src := common.NodeID(rd.U16())
	node := common.NodeID(rd.U16())
	name := rd.Str()
	ss := l.srcStats(src)
	switch op {
	case fopRead:
		off := int(rd.U64())
		n := int(rd.U32())
		if err := rd.Err(); err != nil {
			return nil, err
		}
		if n < 0 || n > wire.MaxFrame {
			return nil, fmt.Errorf("wire: read of %d bytes: %w", n, common.ErrOutOfBounds)
		}
		dst := make([]byte, n)
		if err := l.f.read(src, node, name, off, dst, ss); err != nil {
			return nil, err
		}
		return dst, nil
	case fopWrite:
		off := int(rd.U64())
		data := rd.Bytes()
		if err := rd.Err(); err != nil {
			return nil, err
		}
		return nil, l.f.write(src, node, name, off, data, ss)
	case fopReadV:
		k := int(rd.U32())
		segs := make([]Seg, 0, k)
		total := 0
		for i := 0; i < k; i++ {
			off := int(rd.U64())
			n := int(rd.U32())
			if n < 0 || total+n > wire.MaxFrame {
				return nil, fmt.Errorf("wire: readv of %d bytes: %w", total+n, common.ErrOutOfBounds)
			}
			total += n
			segs = append(segs, Seg{Off: off, Buf: make([]byte, n)})
		}
		if err := rd.Err(); err != nil {
			return nil, err
		}
		if err := l.f.readV(src, node, name, segs, ss); err != nil {
			return nil, err
		}
		out := make([]byte, 0, total)
		for _, s := range segs {
			out = append(out, s.Buf...)
		}
		return out, nil
	case fopWriteV:
		k := int(rd.U32())
		segs := make([]Seg, 0, k)
		for i := 0; i < k; i++ {
			off := int(rd.U64())
			segs = append(segs, Seg{Off: off, Buf: rd.Bytes()})
		}
		if err := rd.Err(); err != nil {
			return nil, err
		}
		return nil, l.f.writeV(src, node, name, segs, ss)
	case fopCAS, fopFAA:
		off := int(rd.U64())
		a := rd.U64()
		b := rd.U64()
		if err := rd.Err(); err != nil {
			return nil, err
		}
		var prev uint64
		var err error
		if op == fopCAS {
			prev, err = l.f.cas64(src, node, name, off, a, b, ss)
		} else {
			prev, err = l.f.fetchAdd64(src, node, name, off, a, ss)
		}
		if err != nil {
			return nil, err
		}
		return wire.AppendU64(nil, prev), nil
	case fopCall:
		req := rd.Bytes()
		if err := rd.Err(); err != nil {
			return nil, err
		}
		return l.f.call(src, node, name, req, ss)
	case fopCallBatch:
		k := int(rd.U32())
		reqs := make([][]byte, 0, k)
		for i := 0; i < k; i++ {
			reqs = append(reqs, rd.Bytes())
		}
		if err := rd.Err(); err != nil {
			return nil, err
		}
		resps, err := l.f.callBatch(src, node, name, reqs, ss)
		if err != nil {
			return nil, err
		}
		out := wire.AppendU32(nil, uint32(len(resps)))
		for _, r := range resps {
			out = wire.AppendBytes(out, r)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("wire: fabric op %d: %w", op, common.ErrNoService)
	}
}

// --- verb encoding (issuer side) --------------------------------------------

func verbHeader(src, node common.NodeID, name string) []byte {
	b := wire.AppendU16(nil, uint16(src))
	b = wire.AppendU16(b, uint16(node))
	return wire.AppendString(b, name)
}

// linkPicker abstracts "give me a live link" over the dialer-side pool and
// the acceptor-side connection group, so both share one verb implementation.
type linkPicker interface {
	pick() (*peerLink, error)
	detail() string
}

// netTransport implements Transport over a linkPicker.
type netTransport struct {
	links linkPicker
	// fstats points at the issuing fabric's global counters so remote verbs
	// account exactly like local ones.
	fstats *Stats
}

func (t *netTransport) Close() error { return nil }

func (t *netTransport) do(op uint8, payload []byte) ([]byte, error) {
	l, err := t.links.pick()
	if err != nil {
		return nil, err
	}
	return l.call(op, payload)
}

func (t *netTransport) Read(src, node common.NodeID, region string, off int, dst []byte, dup bool, ss *Stats) error {
	p := verbHeader(src, node, region)
	p = wire.AppendU64(p, uint64(off))
	p = wire.AppendU32(p, uint32(len(dst)))
	for pass := 0; ; pass++ {
		out, err := t.do(fopRead, p)
		if err != nil {
			return err
		}
		if len(out) != len(dst) {
			return fmt.Errorf("wire: read returned %d of %d bytes: %w", len(out), len(dst), common.ErrShortBuffer)
		}
		copy(dst, out)
		t.account(ss, func(s *Stats) { s.Reads.Inc(); s.BytesRead.Add(int64(len(dst))) })
		if !dup || pass == 1 {
			return nil
		}
	}
}

func (t *netTransport) Write(src, node common.NodeID, region string, off int, data []byte, dup bool, ss *Stats) error {
	p := verbHeader(src, node, region)
	p = wire.AppendU64(p, uint64(off))
	p = wire.AppendBytes(p, data)
	for pass := 0; ; pass++ {
		if _, err := t.do(fopWrite, p); err != nil {
			return err
		}
		t.account(ss, func(s *Stats) { s.Writes.Inc(); s.BytesWrite.Add(int64(len(data))) })
		if !dup || pass == 1 {
			return nil
		}
	}
}

func (t *netTransport) ReadV(src, node common.NodeID, region string, segs []Seg, dup bool, ss *Stats) error {
	p := verbHeader(src, node, region)
	p = wire.AppendU32(p, uint32(len(segs)))
	for _, s := range segs {
		p = wire.AppendU64(p, uint64(s.Off))
		p = wire.AppendU32(p, uint32(len(s.Buf)))
	}
	for pass := 0; ; pass++ {
		out, err := t.do(fopReadV, p)
		if err != nil {
			return err
		}
		if len(out) != segTotal(segs) {
			return fmt.Errorf("wire: readv returned %d of %d bytes: %w", len(out), segTotal(segs), common.ErrShortBuffer)
		}
		for _, s := range segs {
			copy(s.Buf, out[:len(s.Buf)])
			out = out[len(s.Buf):]
		}
		t.account(ss, func(s *Stats) { s.Reads.Inc(); s.BytesRead.Add(int64(segTotal(segs))) })
		if !dup || pass == 1 {
			return nil
		}
	}
}

func (t *netTransport) WriteV(src, node common.NodeID, region string, segs []Seg, dup bool, ss *Stats) error {
	p := verbHeader(src, node, region)
	p = wire.AppendU32(p, uint32(len(segs)))
	for _, s := range segs {
		p = wire.AppendU64(p, uint64(s.Off))
		p = wire.AppendBytes(p, s.Buf)
	}
	for pass := 0; ; pass++ {
		if _, err := t.do(fopWriteV, p); err != nil {
			return err
		}
		t.account(ss, func(s *Stats) { s.Writes.Inc(); s.BytesWrite.Add(int64(segTotal(segs))) })
		if !dup || pass == 1 {
			return nil
		}
	}
}

func (t *netTransport) atomic64(op uint8, src, node common.NodeID, region string, off int, a, b uint64, ss *Stats) (uint64, error) {
	p := verbHeader(src, node, region)
	p = wire.AppendU64(p, uint64(off))
	p = wire.AppendU64(p, a)
	p = wire.AppendU64(p, b)
	out, err := t.do(op, p)
	if err != nil {
		return 0, err
	}
	rd := wire.NewReader(out)
	prev := rd.U64()
	if err := rd.Err(); err != nil {
		return 0, err
	}
	t.account(ss, func(s *Stats) { s.Atomics.Inc() })
	return prev, nil
}

func (t *netTransport) CAS64(src, node common.NodeID, region string, off int, old, new uint64, ss *Stats) (uint64, error) {
	return t.atomic64(fopCAS, src, node, region, off, old, new, ss)
}

func (t *netTransport) FetchAdd64(src, node common.NodeID, region string, off int, delta uint64, ss *Stats) (uint64, error) {
	return t.atomic64(fopFAA, src, node, region, off, delta, 0, ss)
}

func (t *netTransport) Call(src, node common.NodeID, service string, req []byte, dropReply bool, ss *Stats) ([]byte, error) {
	p := verbHeader(src, node, service)
	p = wire.AppendBytes(p, req)
	out, err := t.do(fopCall, p)
	if err != nil {
		return nil, err
	}
	t.account(ss, func(s *Stats) { s.RPCs.Inc() })
	if dropReply {
		return nil, errReplyLost(service, node)
	}
	return out, nil
}

func (t *netTransport) CallBatch(src, node common.NodeID, service string, reqs [][]byte, dropReply bool, ss *Stats) ([][]byte, error) {
	p := verbHeader(src, node, service)
	p = wire.AppendU32(p, uint32(len(reqs)))
	for _, r := range reqs {
		p = wire.AppendBytes(p, r)
	}
	out, err := t.do(fopCallBatch, p)
	if err != nil {
		return nil, err
	}
	rd := wire.NewReader(out)
	k := int(rd.U32())
	resps := make([][]byte, 0, k)
	for i := 0; i < k; i++ {
		r := rd.Bytes()
		cp := make([]byte, len(r))
		copy(cp, r)
		resps = append(resps, cp)
	}
	if err := rd.Err(); err != nil {
		return nil, err
	}
	t.account(ss, func(s *Stats) { s.RPCs.Inc() })
	if dropReply {
		return nil, errReplyLost(service, node)
	}
	return resps, nil
}

// account applies fn to the issuing fabric's global counters and, when the
// op is source-bound, the per-source mirror — the same double bookkeeping
// the in-process transport does, applied on verb success.
func (t *netTransport) account(ss *Stats, fn func(*Stats)) {
	if t.fstats != nil {
		fn(t.fstats)
	}
	if ss != nil {
		fn(ss)
	}
}
